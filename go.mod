module riommu

go 1.22
