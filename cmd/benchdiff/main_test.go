package main

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeBench(t *testing.T, lines ...string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "bench.txt")
	if err := os.WriteFile(p, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestParseStripsGOMAXPROCSAndAverages(t *testing.T) {
	p := writeBench(t,
		"goos: linux",
		"BenchmarkWalk-8   1000   30.0 ns/op   0 B/op   2 allocs/op",
		"BenchmarkWalk-8   1000   50.0 ns/op   0 B/op   2 allocs/op",
		"BenchmarkOther    1000   10.0 ns/op",
		"PASS",
	)
	got, err := parse(p)
	if err != nil {
		t.Fatal(err)
	}
	w := got["BenchmarkWalk"]
	if w == nil {
		t.Fatal("BenchmarkWalk not found (GOMAXPROCS suffix not stripped?)")
	}
	if w.ns() != 40.0 {
		t.Errorf("mean ns/op = %g, want 40", w.ns())
	}
	if !w.hasAllocs || w.allocs() != 2 {
		t.Errorf("allocs = %g (hasAllocs=%v), want 2", w.allocs(), w.hasAllocs)
	}
	if got["BenchmarkOther"] == nil || got["BenchmarkOther"].hasAllocs {
		t.Error("BenchmarkOther missing or wrongly marked hasAllocs")
	}
}

// TestZeroOldMeanNoNaN is the regression test for the divide-by-zero: a 0
// ns/op old mean, and an old line that carries no ns/op pair at all, must
// both render finite values and must not trip the gate.
func TestZeroOldMeanNoNaN(t *testing.T) {
	oldP := writeBench(t,
		"BenchmarkInstant-8   1000000000   0 ns/op",
		"BenchmarkAllocOnly   1000   3 allocs/op",
	)
	newP := writeBench(t,
		"BenchmarkInstant-8   1000   12.5 ns/op",
		"BenchmarkAllocOnly   1000   3 allocs/op",
	)
	old, err := parse(oldP)
	if err != nil {
		t.Fatal(err)
	}
	if ao := old["BenchmarkAllocOnly"]; ao == nil || ao.nsN != 0 {
		t.Fatal("test premise broken: BenchmarkAllocOnly should parse with nsN == 0")
	}
	if got := old["BenchmarkAllocOnly"].ns(); got != 0 || math.IsNaN(got) {
		t.Errorf("ns() with no samples = %v, want 0", got)
	}
	cur, err := parse(newP)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if failed := diff(&buf, old, cur, 5); failed {
		t.Errorf("zero-baseline delta tripped the gate:\n%s", buf.String())
	}
	out := buf.String()
	for _, bad := range []string{"NaN", "Inf"} {
		if strings.Contains(out, bad) {
			t.Errorf("report contains %s:\n%s", bad, out)
		}
	}
}

func TestDiffRegressionGate(t *testing.T) {
	oldP := writeBench(t, "BenchmarkHot   1000   100 ns/op")
	newP := writeBench(t, "BenchmarkHot   1000   120 ns/op")
	old, _ := parse(oldP)
	cur, _ := parse(newP)

	var buf bytes.Buffer
	if !diff(&buf, old, cur, 10) {
		t.Error("20%% slowdown with -fail-over 10 did not fail")
	}
	if !strings.Contains(buf.String(), "REGRESSION") {
		t.Errorf("failing report lacks REGRESSION marker:\n%s", buf.String())
	}
	buf.Reset()
	if diff(&buf, old, cur, 25) {
		t.Error("20%% slowdown with -fail-over 25 failed")
	}
	buf.Reset()
	if diff(&buf, old, cur, 0) {
		t.Error("informational mode (fail-over 0) failed")
	}
}

func TestDiffAllocGateAndMissingBenchmarks(t *testing.T) {
	oldP := writeBench(t,
		"BenchmarkMap   1000   50 ns/op   0 allocs/op",
		"BenchmarkGone  1000   10 ns/op",
	)
	newP := writeBench(t,
		"BenchmarkMap   1000   50 ns/op   1 allocs/op",
		"BenchmarkNew   1000   20 ns/op",
	)
	old, _ := parse(oldP)
	cur, _ := parse(newP)
	var buf bytes.Buffer
	if !diff(&buf, old, cur, 0) {
		t.Error("allocs/op increase did not fail even in informational mode")
	}
	out := buf.String()
	if !strings.Contains(out, "ALLOC REGRESSION") {
		t.Errorf("report lacks ALLOC REGRESSION:\n%s", out)
	}
	if !strings.Contains(out, "gone") || !strings.Contains(out, "new") {
		t.Errorf("one-sided benchmarks not listed:\n%s", out)
	}
}
