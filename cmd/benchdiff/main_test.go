package main

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeBench(t *testing.T, lines ...string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "bench.txt")
	if err := os.WriteFile(p, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestParseStripsGOMAXPROCSAndAverages(t *testing.T) {
	p := writeBench(t,
		"goos: linux",
		"BenchmarkWalk-8   1000   30.0 ns/op   0 B/op   2 allocs/op",
		"BenchmarkWalk-8   1000   50.0 ns/op   0 B/op   2 allocs/op",
		"BenchmarkOther    1000   10.0 ns/op",
		"PASS",
	)
	got, err := parse(p)
	if err != nil {
		t.Fatal(err)
	}
	w := got["BenchmarkWalk"]
	if w == nil {
		t.Fatal("BenchmarkWalk not found (GOMAXPROCS suffix not stripped?)")
	}
	if w.ns() != 40.0 {
		t.Errorf("mean ns/op = %g, want 40", w.ns())
	}
	if !w.hasAllocs || w.allocs() != 2 {
		t.Errorf("allocs = %g (hasAllocs=%v), want 2", w.allocs(), w.hasAllocs)
	}
	if got["BenchmarkOther"] == nil || got["BenchmarkOther"].hasAllocs {
		t.Error("BenchmarkOther missing or wrongly marked hasAllocs")
	}
}

// TestZeroOldMeanNoNaN is the regression test for the divide-by-zero: a 0
// ns/op old mean, and an old line that carries no ns/op pair at all, must
// both render finite values and must not trip the gate.
func TestZeroOldMeanNoNaN(t *testing.T) {
	oldP := writeBench(t,
		"BenchmarkInstant-8   1000000000   0 ns/op",
		"BenchmarkAllocOnly   1000   3 allocs/op",
	)
	newP := writeBench(t,
		"BenchmarkInstant-8   1000   12.5 ns/op",
		"BenchmarkAllocOnly   1000   3 allocs/op",
	)
	old, err := parse(oldP)
	if err != nil {
		t.Fatal(err)
	}
	if ao := old["BenchmarkAllocOnly"]; ao == nil || ao.nsN != 0 {
		t.Fatal("test premise broken: BenchmarkAllocOnly should parse with nsN == 0")
	}
	if got := old["BenchmarkAllocOnly"].ns(); got != 0 || math.IsNaN(got) {
		t.Errorf("ns() with no samples = %v, want 0", got)
	}
	cur, err := parse(newP)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if failed := diff(&buf, old, cur, 5, nil); failed {
		t.Errorf("zero-baseline delta tripped the gate:\n%s", buf.String())
	}
	out := buf.String()
	for _, bad := range []string{"NaN", "Inf"} {
		if strings.Contains(out, bad) {
			t.Errorf("report contains %s:\n%s", bad, out)
		}
	}
}

func TestDiffRegressionGate(t *testing.T) {
	oldP := writeBench(t, "BenchmarkHot   1000   100 ns/op")
	newP := writeBench(t, "BenchmarkHot   1000   120 ns/op")
	old, _ := parse(oldP)
	cur, _ := parse(newP)

	var buf bytes.Buffer
	if !diff(&buf, old, cur, 10, nil) {
		t.Error("20%% slowdown with -fail-over 10 did not fail")
	}
	if !strings.Contains(buf.String(), "REGRESSION") {
		t.Errorf("failing report lacks REGRESSION marker:\n%s", buf.String())
	}
	buf.Reset()
	if diff(&buf, old, cur, 25, nil) {
		t.Error("20%% slowdown with -fail-over 25 failed")
	}
	buf.Reset()
	if diff(&buf, old, cur, 0, nil) {
		t.Error("informational mode (fail-over 0) failed")
	}
}

// TestGateSpec: per-benchmark floors from -gate override the blanket
// -fail-over threshold, annotate only while enforce is off, and fail hard
// once it is flipped on — including when a gated benchmark disappears.
func TestGateSpec(t *testing.T) {
	oldP := writeBench(t,
		"BenchmarkMapUnmapStrict   1000   100 ns/op",
		"BenchmarkLoose            1000   100 ns/op",
	)
	newP := writeBench(t,
		"BenchmarkMapUnmapStrict   1000   180 ns/op",
		"BenchmarkLoose            1000   180 ns/op",
	)
	old, _ := parse(oldP)
	cur, _ := parse(newP)
	spec := &gateSpec{MaxRegressionPct: map[string]float64{"BenchmarkMapUnmapStrict": 50}}

	// Informational phase: the 80% regression is over the 50% floor but only
	// annotated; the un-gated benchmark is untouched (fail-over 0).
	var buf bytes.Buffer
	if diff(&buf, old, cur, 0, spec) {
		t.Errorf("informational gate failed the run:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "gate (informational)") {
		t.Errorf("informational gate not annotated:\n%s", buf.String())
	}

	// Enforcing phase: same spec, enforce flipped on.
	spec.Enforce = true
	buf.Reset()
	if !diff(&buf, old, cur, 0, spec) {
		t.Errorf("enforcing gate passed an 80%% regression over a 50%% floor:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "GATE REGRESSION") {
		t.Errorf("enforcing report lacks GATE REGRESSION:\n%s", buf.String())
	}

	// A regression within the per-benchmark floor passes even though it would
	// trip a tighter blanket -fail-over: the spec takes precedence.
	newOK := writeBench(t,
		"BenchmarkMapUnmapStrict   1000   130 ns/op",
		"BenchmarkLoose            1000   100 ns/op",
	)
	curOK, _ := parse(newOK)
	buf.Reset()
	if diff(&buf, old, curOK, 10, spec) {
		t.Errorf("30%% regression under a 50%% floor failed:\n%s", buf.String())
	}

	// A gated benchmark missing from the new file trips the enforcing gate.
	newGone := writeBench(t, "BenchmarkLoose   1000   100 ns/op")
	curGone, _ := parse(newGone)
	buf.Reset()
	if !diff(&buf, old, curGone, 0, spec) {
		t.Errorf("gated benchmark vanished and the enforcing gate passed:\n%s", buf.String())
	}

	// loadGate round-trips the committed spec format.
	specPath := filepath.Join(t.TempDir(), "gate.json")
	if err := os.WriteFile(specPath, []byte(`{"enforce": false, "max_regression_pct": {"BenchmarkMapUnmapStrict": 50}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := loadGate(specPath)
	if err != nil {
		t.Fatal(err)
	}
	if g.Enforce || g.MaxRegressionPct["BenchmarkMapUnmapStrict"] != 50 {
		t.Errorf("loadGate = %+v", g)
	}
}

func TestDiffAllocGateAndMissingBenchmarks(t *testing.T) {
	oldP := writeBench(t,
		"BenchmarkMap   1000   50 ns/op   0 allocs/op",
		"BenchmarkGone  1000   10 ns/op",
	)
	newP := writeBench(t,
		"BenchmarkMap   1000   50 ns/op   1 allocs/op",
		"BenchmarkNew   1000   20 ns/op",
	)
	old, _ := parse(oldP)
	cur, _ := parse(newP)
	var buf bytes.Buffer
	if !diff(&buf, old, cur, 0, nil) {
		t.Error("allocs/op increase did not fail even in informational mode")
	}
	out := buf.String()
	if !strings.Contains(out, "ALLOC REGRESSION") {
		t.Errorf("report lacks ALLOC REGRESSION:\n%s", out)
	}
	if !strings.Contains(out, "gone") || !strings.Contains(out, "new") {
		t.Errorf("one-sided benchmarks not listed:\n%s", out)
	}
}
