// Command benchdiff compares two `go test -bench` output files and prints a
// per-benchmark delta table, in the spirit of benchstat but with no
// dependencies outside the standard library (the container this repo builds
// in has only the Go toolchain).
//
// Usage:
//
//	benchdiff [-fail-over PCT] [-gate spec.json] old.txt new.txt
//
// For every benchmark present in both files it reports the mean ns/op of old
// and new and the relative change. With -fail-over N the exit status is 1 if
// any benchmark slowed down by more than N percent; by default the output is
// purely informational. Benchmarks present in only one file are listed but
// never gate. allocs/op columns, when present, are compared the same way and
// always gate: any increase fails, because the hot paths are pinned at zero.
//
// -gate spec.json adds per-benchmark ns/op regression floors on top of the
// blanket -fail-over threshold:
//
//	{
//	  "enforce": false,
//	  "max_regression_pct": {"BenchmarkMapUnmapStrict": 50}
//	}
//
// A benchmark named in max_regression_pct is gated at its own floor instead
// of -fail-over, and a gated benchmark that disappears from the new file also
// trips. While "enforce" is false the gate only annotates the table (the
// informational phase that characterizes variance); flipping it to true turns
// the same spec into a hard exit-1 gate — no CI edit needed.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// gateSpec is the -gate file: named benchmarks get their own max ns/op
// regression percentage, enforced (exit 1) only once Enforce is flipped on.
type gateSpec struct {
	Enforce          bool               `json:"enforce"`
	MaxRegressionPct map[string]float64 `json:"max_regression_pct"`
}

func loadGate(path string) (*gateSpec, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var g gateSpec
	if err := json.Unmarshal(b, &g); err != nil {
		return nil, fmt.Errorf("gate spec %s: %w", path, err)
	}
	return &g, nil
}

// sample accumulates the measurements of one benchmark across -count runs.
type sample struct {
	nsSum     float64
	nsN       int
	allocsSum float64
	allocsN   int
	order     int // first-seen position, to keep output in file order
	hasAllocs bool
}

// ns returns the mean ns/op, or 0 when the benchmark contributed no ns/op
// samples at all (e.g. a line carrying only allocs/op) — 0/0 would otherwise
// poison the whole delta column with NaN.
func (s *sample) ns() float64 {
	if s.nsN == 0 {
		return 0
	}
	return s.nsSum / float64(s.nsN)
}
func (s *sample) allocs() float64 {
	if s.allocsN == 0 {
		return 0
	}
	return s.allocsSum / float64(s.allocsN)
}

// parse reads one `go test -bench` output file into name → sample. Benchmark
// lines look like:
//
//	BenchmarkWalk-8   38212345   31.23 ns/op   0 B/op   0 allocs/op
//
// The -8 GOMAXPROCS suffix is stripped so files from differently-sized
// machines still line up.
func parse(path string) (map[string]*sample, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string]*sample)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		s := out[name]
		if s == nil {
			s = &sample{order: len(out)}
			out[name] = s
		}
		// Scan "<value> <unit>" pairs after the iteration count.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				s.nsSum += v
				s.nsN++
			case "allocs/op":
				s.allocsSum += v
				s.allocsN++
				s.hasAllocs = true
			}
		}
	}
	return out, sc.Err()
}

// pct is the relative change in percent. A zero "before" mean (an
// instantaneous or sample-less benchmark) yields 0 rather than ±Inf/NaN: a
// baseline of zero can't express a meaningful ratio, and the absolute
// columns next to it tell the real story.
func pct(before, after float64) float64 {
	if before == 0 {
		return 0
	}
	return (after - before) / before * 100
}

// diff renders the per-benchmark comparison table to w and reports whether
// any gate tripped: ns/op regressions beyond failOver percent (0 disables),
// per-benchmark floors from the -gate spec, or any allocs/op increase. A nil
// gate means no spec was given.
func diff(w io.Writer, old, cur map[string]*sample, failOver float64, gate *gateSpec) bool {
	names := make([]string, 0, len(old))
	for n := range old {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool { return old[names[i]].order < old[names[j]].order })

	fmt.Fprintf(w, "%-34s %14s %14s %9s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	failed := false
	for _, n := range names {
		o, c := old[n], cur[n]
		limit, gated := 0.0, false
		if gate != nil {
			limit, gated = gate.MaxRegressionPct[n]
		}
		if c == nil {
			mark := ""
			if gated {
				// A gated benchmark that vanished would otherwise pass forever.
				if gate.Enforce {
					mark = "  GATE: missing from new"
					failed = true
				} else {
					mark = "  gate (informational): missing from new"
				}
			}
			fmt.Fprintf(w, "%-34s %14.1f %14s %9s%s\n", n, o.ns(), "-", "gone", mark)
			continue
		}
		d := pct(o.ns(), c.ns())
		mark := ""
		switch {
		case gated && d > limit:
			if gate.Enforce {
				mark = fmt.Sprintf("  GATE REGRESSION (> %+.1f%%)", limit)
				failed = true
			} else {
				mark = fmt.Sprintf("  gate (informational): over %+.1f%% floor", limit)
			}
		case !gated && failOver > 0 && d > failOver:
			mark = "  REGRESSION"
			failed = true
		}
		fmt.Fprintf(w, "%-34s %14.1f %14.1f %+8.1f%%%s\n", n, o.ns(), c.ns(), d, mark)
		if o.hasAllocs && c.hasAllocs && c.allocs() > o.allocs() {
			fmt.Fprintf(w, "%-34s %14.1f %14.1f allocs/op  ALLOC REGRESSION\n", "  └ allocs", o.allocs(), c.allocs())
			failed = true
		}
	}
	newNames := make([]string, 0, len(cur))
	for n := range cur {
		if old[n] == nil {
			newNames = append(newNames, n)
		}
	}
	sort.Slice(newNames, func(i, j int) bool { return cur[newNames[i]].order < cur[newNames[j]].order })
	for _, n := range newNames {
		fmt.Fprintf(w, "%-34s %14s %14.1f %9s\n", n, "-", cur[n].ns(), "new")
	}
	return failed
}

func main() {
	failOver := flag.Float64("fail-over", 0, "exit 1 if any benchmark slows down by more than this percent (0 = informational)")
	gatePath := flag.String("gate", "", "JSON spec with per-benchmark max ns/op regression percentages")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: benchdiff [-fail-over PCT] [-gate spec.json] old.txt new.txt\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	var gate *gateSpec
	if *gatePath != "" {
		var err error
		if gate, err = loadGate(*gatePath); err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
			os.Exit(2)
		}
	}
	old, err := parse(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	cur, err := parse(flag.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}

	if diff(os.Stdout, old, cur, *failOver, gate) {
		fmt.Fprintln(os.Stderr, "benchdiff: regressions detected")
		os.Exit(1)
	}
}
