package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"riommu/internal/parallel"
)

// TestAuditChaosGatePasses: the -chaos flag (implying -audit) runs hostile
// cells end to end, reports the chaos table, writes a complete JSON report
// and passes the isolation gate.
func TestAuditChaosGatePasses(t *testing.T) {
	if testing.Short() {
		t.Skip("full chaos campaign is slow under -short")
	}
	var out, errb bytes.Buffer
	rep := filepath.Join(t.TempDir(), "rep.json")
	code := run([]string{
		"-rounds", "10", "-rates", "0", "-modes", "strict",
		"-chaos", "all", "-parallel", "4", "-json", rep,
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d\nstderr:\n%s", code, errb.String())
	}
	if !strings.Contains(out.String(), "Chaos campaign") {
		t.Error("chaos table missing from output")
	}
	if !strings.Contains(errb.String(), "isolation gate passed") {
		t.Errorf("gate verdict missing from stderr:\n%s", errb.String())
	}
	b, err := os.ReadFile(rep)
	if err != nil {
		t.Fatal(err)
	}
	var r struct {
		Interrupted bool `json:"interrupted"`
	}
	if err := json.Unmarshal(b, &r); err != nil {
		t.Fatal(err)
	}
	if r.Interrupted {
		t.Error("complete run marked interrupted")
	}
}

// TestInterruptFlushesPartialReport: an interrupt mid-campaign yields exit
// 130 and a valid partial JSON report marked "interrupted": true.
func TestInterruptFlushesPartialReport(t *testing.T) {
	defer parallel.ResetInterrupt()
	var out, errb bytes.Buffer
	rep := filepath.Join(t.TempDir(), "rep.json")
	go func() {
		time.Sleep(50 * time.Millisecond)
		parallel.Interrupt()
	}()
	code := run([]string{"-rounds", "400", "-parallel", "2", "-json", rep}, &out, &errb)
	if code != 130 {
		t.Fatalf("exit %d, want 130\nstderr:\n%s", code, errb.String())
	}
	b, err := os.ReadFile(rep)
	if err != nil {
		t.Fatalf("partial report not written: %v", err)
	}
	var r struct {
		Interrupted bool `json:"interrupted"`
	}
	if err := json.Unmarshal(b, &r); err != nil {
		t.Fatalf("partial report is not valid JSON: %v", err)
	}
	if !r.Interrupted {
		t.Error("partial report not marked interrupted")
	}
}

// TestSignalSetsInterrupt: a real SIGINT delivered to the process trips the
// worker pool's cooperative cancellation flag.
func TestSignalSetsInterrupt(t *testing.T) {
	parallel.ResetInterrupt()
	stop := notifyInterrupt()
	defer stop()
	defer parallel.ResetInterrupt()
	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for !parallel.Interrupted() {
		if time.Now().After(deadline) {
			t.Fatal("SIGINT never reached the interrupt flag")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCheckpointResumeAfterInterrupt is the sharded-runtime acceptance
// check: kill the campaign mid-grid, re-run with -checkpoint, and the final
// -json report must be byte-identical to an uninterrupted serial run.
func TestCheckpointResumeAfterInterrupt(t *testing.T) {
	dir := t.TempDir()
	serialRep := filepath.Join(dir, "serial.json")
	resumedRep := filepath.Join(dir, "resumed.json")
	ckpt := filepath.Join(dir, "grid.ckpt")
	flags := func(rep string, extra ...string) []string {
		return append([]string{
			"-rounds", "400", "-rates", "0,0.01", "-modes", "strict,riommu",
			"-parallel", "1", "-json", rep,
		}, extra...)
	}

	var out, errb bytes.Buffer
	if code := run(flags(serialRep), &out, &errb); code != 0 {
		t.Fatalf("serial run: exit %d\nstderr:\n%s", code, errb.String())
	}

	// First pass: interrupt mid-grid. Whatever subset of cells completed is
	// in the checkpoint; the resume must fill in exactly the rest. (The full
	// grid takes ~100 ms serial, so the signal lands mid-grid; if scheduling
	// ever lets the run win the race, the resume is a no-op and the
	// byte-identity assertion still holds.)
	go func() {
		time.Sleep(25 * time.Millisecond)
		parallel.Interrupt()
	}()
	out.Reset()
	errb.Reset()
	code := run(flags(resumedRep, "-checkpoint", ckpt), &out, &errb)
	if code != 130 && code != 0 {
		t.Fatalf("interrupted run: exit %d\nstderr:\n%s", code, errb.String())
	}
	parallel.ResetInterrupt()

	out.Reset()
	errb.Reset()
	if code := run(flags(resumedRep, "-checkpoint", ckpt), &out, &errb); code != 0 {
		t.Fatalf("resumed run: exit %d\nstderr:\n%s", code, errb.String())
	}

	want, err := os.ReadFile(serialRep)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(resumedRep)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("resumed report differs from the uninterrupted serial run")
	}
}

// TestShardedGridRenders: shard passes over one checkpoint file; the shard
// that completes the grid renders the full report, earlier shards exit 0
// with a progress summary only.
func TestShardedGridRenders(t *testing.T) {
	dir := t.TempDir()
	serialRep := filepath.Join(dir, "serial.json")
	shardRep := filepath.Join(dir, "shard.json")
	ckpt := filepath.Join(dir, "grid.ckpt")
	base := []string{"-rounds", "6", "-rates", "0", "-modes", "strict,riommu", "-parallel", "1"}

	var out, errb bytes.Buffer
	if code := run(append(base, "-json", serialRep), &out, &errb); code != 0 {
		t.Fatalf("serial run: exit %d\nstderr:\n%s", code, errb.String())
	}

	out.Reset()
	errb.Reset()
	if code := run(append(base, "-json", shardRep, "-shard", "0/2", "-checkpoint", ckpt), &out, &errb); code != 0 {
		t.Fatalf("shard 0/2: exit %d\nstderr:\n%s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "shard 0/2 done") {
		t.Errorf("shard 0/2 summary missing from stderr:\n%s", errb.String())
	}
	if out.Len() != 0 {
		t.Error("incomplete shard rendered tables")
	}
	if _, err := os.Stat(shardRep); err == nil {
		t.Error("incomplete shard wrote a -json report")
	}

	out.Reset()
	errb.Reset()
	if code := run(append(base, "-json", shardRep, "-shard", "1/2", "-checkpoint", ckpt), &out, &errb); code != 0 {
		t.Fatalf("shard 1/2: exit %d\nstderr:\n%s", code, errb.String())
	}
	if !strings.Contains(out.String(), "NIC campaign") {
		t.Error("final shard did not render the campaign tables")
	}

	want, err := os.ReadFile(serialRep)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(shardRep)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("sharded report differs from the serial run")
	}

	// A sharded run without a checkpoint is refused up front.
	out.Reset()
	errb.Reset()
	if code := run(append(base, "-shard", "0/2"), &out, &errb); code != 1 {
		t.Errorf("shard without checkpoint: exit %d, want 1", code)
	}
}

// TestBadChaosFlag: unknown scenarios are a usage error.
func TestBadChaosFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-chaos", "nonsense"}, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if code := run([]string{"-intchaos", "nonsense"}, &out, &errb); code != 2 {
		t.Fatalf("-intchaos nonsense: exit %d, want 2", code)
	}
	if code := run([]string{"-hotplug", "nonsense"}, &out, &errb); code != 2 {
		t.Fatalf("-hotplug nonsense: exit %d, want 2", code)
	}
}

// TestIntChaosHotplugGatePasses: the -intchaos/-hotplug flags (implying
// -audit) run hostile-MSI and topology-churn cells across all presentation
// modes, report both new tables, write a complete JSON report, and pass
// both the isolation gate and the interrupt gate.
func TestIntChaosHotplugGatePasses(t *testing.T) {
	if testing.Short() {
		t.Skip("full interrupt/hot-plug campaign is slow under -short")
	}
	var out, errb bytes.Buffer
	rep := filepath.Join(t.TempDir(), "rep.json")
	code := run([]string{
		"-rounds", "12", "-rates", "0", "-modes", "strict",
		"-intchaos", "all", "-hotplug", "all", "-parallel", "4", "-json", rep,
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d\nstderr:\n%s", code, errb.String())
	}
	if !strings.Contains(out.String(), "Interrupt chaos campaign") {
		t.Error("interrupt chaos table missing from output")
	}
	if !strings.Contains(out.String(), "Hot-plug campaign") {
		t.Error("hot-plug table missing from output")
	}
	if !strings.Contains(errb.String(), "isolation gate passed") {
		t.Errorf("isolation gate verdict missing from stderr:\n%s", errb.String())
	}
	if !strings.Contains(errb.String(), "interrupt gate passed") {
		t.Errorf("interrupt gate verdict missing from stderr:\n%s", errb.String())
	}
	b, err := os.ReadFile(rep)
	if err != nil {
		t.Fatal(err)
	}
	var r struct {
		Interrupted bool `json:"interrupted"`
		Cells       []struct {
			ID      string             `json:"cell"`
			Metrics map[string]float64 `json:"metrics"`
		} `json:"cells"`
	}
	if err := json.Unmarshal(b, &r); err != nil {
		t.Fatal(err)
	}
	if r.Interrupted {
		t.Error("complete run marked interrupted")
	}
	var sawInt, sawPlug bool
	for _, c := range r.Cells {
		if strings.Contains(c.ID, "intchaos=") {
			sawInt = true
			if _, ok := c.Metrics["int_blocked"]; !ok {
				t.Errorf("%s: int_blocked metric missing", c.ID)
			}
		}
		if strings.Contains(c.ID, "hotplug=") {
			sawPlug = true
			if _, ok := c.Metrics["mttr_cycles"]; !ok {
				t.Errorf("%s: mttr_cycles metric missing", c.ID)
			}
		}
	}
	if !sawInt || !sawPlug {
		t.Errorf("report missing new cell kinds: intchaos=%v hotplug=%v", sawInt, sawPlug)
	}
}
