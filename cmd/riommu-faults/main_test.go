package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"riommu/internal/parallel"
)

// TestAuditChaosGatePasses: the -chaos flag (implying -audit) runs hostile
// cells end to end, reports the chaos table, writes a complete JSON report
// and passes the isolation gate.
func TestAuditChaosGatePasses(t *testing.T) {
	if testing.Short() {
		t.Skip("full chaos campaign is slow under -short")
	}
	var out, errb bytes.Buffer
	rep := filepath.Join(t.TempDir(), "rep.json")
	code := run([]string{
		"-rounds", "10", "-rates", "0", "-modes", "strict",
		"-chaos", "all", "-parallel", "4", "-json", rep,
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d\nstderr:\n%s", code, errb.String())
	}
	if !strings.Contains(out.String(), "Chaos campaign") {
		t.Error("chaos table missing from output")
	}
	if !strings.Contains(errb.String(), "isolation gate passed") {
		t.Errorf("gate verdict missing from stderr:\n%s", errb.String())
	}
	b, err := os.ReadFile(rep)
	if err != nil {
		t.Fatal(err)
	}
	var r struct {
		Interrupted bool `json:"interrupted"`
	}
	if err := json.Unmarshal(b, &r); err != nil {
		t.Fatal(err)
	}
	if r.Interrupted {
		t.Error("complete run marked interrupted")
	}
}

// TestInterruptFlushesPartialReport: an interrupt mid-campaign yields exit
// 130 and a valid partial JSON report marked "interrupted": true.
func TestInterruptFlushesPartialReport(t *testing.T) {
	defer parallel.ResetInterrupt()
	var out, errb bytes.Buffer
	rep := filepath.Join(t.TempDir(), "rep.json")
	go func() {
		time.Sleep(50 * time.Millisecond)
		parallel.Interrupt()
	}()
	code := run([]string{"-rounds", "400", "-parallel", "2", "-json", rep}, &out, &errb)
	if code != 130 {
		t.Fatalf("exit %d, want 130\nstderr:\n%s", code, errb.String())
	}
	b, err := os.ReadFile(rep)
	if err != nil {
		t.Fatalf("partial report not written: %v", err)
	}
	var r struct {
		Interrupted bool `json:"interrupted"`
	}
	if err := json.Unmarshal(b, &r); err != nil {
		t.Fatalf("partial report is not valid JSON: %v", err)
	}
	if !r.Interrupted {
		t.Error("partial report not marked interrupted")
	}
}

// TestSignalSetsInterrupt: a real SIGINT delivered to the process trips the
// worker pool's cooperative cancellation flag.
func TestSignalSetsInterrupt(t *testing.T) {
	parallel.ResetInterrupt()
	stop := notifyInterrupt()
	defer stop()
	defer parallel.ResetInterrupt()
	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for !parallel.Interrupted() {
		if time.Now().After(deadline) {
			t.Fatal("SIGINT never reached the interrupt flag")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestBadChaosFlag: unknown scenarios are a usage error.
func TestBadChaosFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-chaos", "nonsense"}, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if code := run([]string{"-intchaos", "nonsense"}, &out, &errb); code != 2 {
		t.Fatalf("-intchaos nonsense: exit %d, want 2", code)
	}
	if code := run([]string{"-hotplug", "nonsense"}, &out, &errb); code != 2 {
		t.Fatalf("-hotplug nonsense: exit %d, want 2", code)
	}
}

// TestIntChaosHotplugGatePasses: the -intchaos/-hotplug flags (implying
// -audit) run hostile-MSI and topology-churn cells across all presentation
// modes, report both new tables, write a complete JSON report, and pass
// both the isolation gate and the interrupt gate.
func TestIntChaosHotplugGatePasses(t *testing.T) {
	if testing.Short() {
		t.Skip("full interrupt/hot-plug campaign is slow under -short")
	}
	var out, errb bytes.Buffer
	rep := filepath.Join(t.TempDir(), "rep.json")
	code := run([]string{
		"-rounds", "12", "-rates", "0", "-modes", "strict",
		"-intchaos", "all", "-hotplug", "all", "-parallel", "4", "-json", rep,
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d\nstderr:\n%s", code, errb.String())
	}
	if !strings.Contains(out.String(), "Interrupt chaos campaign") {
		t.Error("interrupt chaos table missing from output")
	}
	if !strings.Contains(out.String(), "Hot-plug campaign") {
		t.Error("hot-plug table missing from output")
	}
	if !strings.Contains(errb.String(), "isolation gate passed") {
		t.Errorf("isolation gate verdict missing from stderr:\n%s", errb.String())
	}
	if !strings.Contains(errb.String(), "interrupt gate passed") {
		t.Errorf("interrupt gate verdict missing from stderr:\n%s", errb.String())
	}
	b, err := os.ReadFile(rep)
	if err != nil {
		t.Fatal(err)
	}
	var r struct {
		Interrupted bool `json:"interrupted"`
		Cells       []struct {
			ID      string             `json:"cell"`
			Metrics map[string]float64 `json:"metrics"`
		} `json:"cells"`
	}
	if err := json.Unmarshal(b, &r); err != nil {
		t.Fatal(err)
	}
	if r.Interrupted {
		t.Error("complete run marked interrupted")
	}
	var sawInt, sawPlug bool
	for _, c := range r.Cells {
		if strings.Contains(c.ID, "intchaos=") {
			sawInt = true
			if _, ok := c.Metrics["int_blocked"]; !ok {
				t.Errorf("%s: int_blocked metric missing", c.ID)
			}
		}
		if strings.Contains(c.ID, "hotplug=") {
			sawPlug = true
			if _, ok := c.Metrics["mttr_cycles"]; !ok {
				t.Errorf("%s: mttr_cycles metric missing", c.ID)
			}
		}
	}
	if !sawInt || !sawPlug {
		t.Errorf("report missing new cell kinds: intchaos=%v hotplug=%v", sawInt, sawPlug)
	}
}
