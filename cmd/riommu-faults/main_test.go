package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"riommu/internal/parallel"
)

// TestAuditChaosGatePasses: the -chaos flag (implying -audit) runs hostile
// cells end to end, reports the chaos table, writes a complete JSON report
// and passes the isolation gate.
func TestAuditChaosGatePasses(t *testing.T) {
	if testing.Short() {
		t.Skip("full chaos campaign is slow under -short")
	}
	var out, errb bytes.Buffer
	rep := filepath.Join(t.TempDir(), "rep.json")
	code := run([]string{
		"-rounds", "10", "-rates", "0", "-modes", "strict",
		"-chaos", "all", "-parallel", "4", "-json", rep,
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d\nstderr:\n%s", code, errb.String())
	}
	if !strings.Contains(out.String(), "Chaos campaign") {
		t.Error("chaos table missing from output")
	}
	if !strings.Contains(errb.String(), "isolation gate passed") {
		t.Errorf("gate verdict missing from stderr:\n%s", errb.String())
	}
	b, err := os.ReadFile(rep)
	if err != nil {
		t.Fatal(err)
	}
	var r struct {
		Interrupted bool `json:"interrupted"`
	}
	if err := json.Unmarshal(b, &r); err != nil {
		t.Fatal(err)
	}
	if r.Interrupted {
		t.Error("complete run marked interrupted")
	}
}

// TestInterruptFlushesPartialReport: an interrupt mid-campaign yields exit
// 130 and a valid partial JSON report marked "interrupted": true.
func TestInterruptFlushesPartialReport(t *testing.T) {
	defer parallel.ResetInterrupt()
	var out, errb bytes.Buffer
	rep := filepath.Join(t.TempDir(), "rep.json")
	go func() {
		time.Sleep(50 * time.Millisecond)
		parallel.Interrupt()
	}()
	code := run([]string{"-rounds", "400", "-parallel", "2", "-json", rep}, &out, &errb)
	if code != 130 {
		t.Fatalf("exit %d, want 130\nstderr:\n%s", code, errb.String())
	}
	b, err := os.ReadFile(rep)
	if err != nil {
		t.Fatalf("partial report not written: %v", err)
	}
	var r struct {
		Interrupted bool `json:"interrupted"`
	}
	if err := json.Unmarshal(b, &r); err != nil {
		t.Fatalf("partial report is not valid JSON: %v", err)
	}
	if !r.Interrupted {
		t.Error("partial report not marked interrupted")
	}
}

// TestSignalSetsInterrupt: a real SIGINT delivered to the process trips the
// worker pool's cooperative cancellation flag.
func TestSignalSetsInterrupt(t *testing.T) {
	parallel.ResetInterrupt()
	stop := notifyInterrupt()
	defer stop()
	defer parallel.ResetInterrupt()
	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for !parallel.Interrupted() {
		if time.Now().After(deadline) {
			t.Fatal("SIGINT never reached the interrupt flag")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestBadChaosFlag: unknown scenarios are a usage error.
func TestBadChaosFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-chaos", "nonsense"}, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}
