// Command riommu-faults runs deterministic fault-injection campaigns against
// the simulated systems: it sweeps fault rates across the safe protection
// modes (the strict baselines and both rIOMMU variants), drives supervised
// NIC / NVMe / SATA workloads through the injection window, and reports how
// the recovery layer held up — recovery success, cycles lost to recovery,
// and throughput degradation under the paper's performance model (§3.3).
//
// Usage:
//
//	riommu-faults [-seed N] [-rates r1,r2,...] [-modes m1,m2,...] [-rounds N]
//
// Every number in the output is a pure function of the flags: the engine is
// seeded, all backoff/watchdog time is virtual, and no wall clock or global
// randomness is consulted. Two runs with the same flags produce identical
// bytes, which makes the campaign diffable across code changes.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"riommu/internal/cycles"
	"riommu/internal/device"
	"riommu/internal/driver"
	"riommu/internal/faults"
	"riommu/internal/pci"
	"riommu/internal/perfmodel"
	"riommu/internal/sim"
	"riommu/internal/stats"
)

var (
	nicBDF  = pci.NewBDF(0, 3, 0)
	nvmeBDF = pci.NewBDF(0, 4, 0)
	sataBDF = pci.NewBDF(0, 5, 0)
)

// safeModes are the modes the recovery story covers: the deferred modes
// trade protection for speed and the pass-through modes have nothing to
// degrade to, so the campaign sticks to gap-free protection (§5.1).
var safeModes = []sim.Mode{sim.Strict, sim.StrictPlus, sim.RIOMMUMinus, sim.RIOMMU}

func parseModes(s string) ([]sim.Mode, error) {
	var out []sim.Mode
	for _, name := range strings.Split(s, ",") {
		name = strings.TrimSpace(name)
		found := false
		for _, m := range safeModes {
			if m.String() == name {
				out = append(out, m)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown or unsafe mode %q (want one of strict, strict+, riommu-, riommu)", name)
		}
	}
	return out, nil
}

func parseRates(s string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		r, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, err
		}
		if r < 0 || r > 1 {
			return nil, fmt.Errorf("rate %v out of [0,1]", r)
		}
		out = append(out, r)
	}
	return out, nil
}

// cell is one (mode, rate) campaign result.
type cell struct {
	injected    uint64
	sup         driver.RecoveryStats
	recCycles   uint64 // CPU cycles charged to recovery work
	cyclesPerTx float64
	gbps        float64
}

// nicCampaign soaks a supervised NIC under uniform injection at the given
// rate and returns the cell metrics.
func nicCampaign(mode sim.Mode, seed uint64, rate float64, rounds int, byClass *stats.Counters) (cell, error) {
	sys, err := sim.NewSystem(mode, 1<<15)
	if err != nil {
		return cell{}, err
	}
	f := sys.EnableFaults(faults.UniformConfig(seed, rate))
	drv, nic, err := sys.AttachNIC(device.ProfileBRCM, nicBDF)
	if err != nil {
		return cell{}, err
	}
	sup := sys.Supervise(nicBDF, drv)
	payload := make([]byte, 1024)
	for i := range payload {
		payload[i] = byte(i)
	}
	for round := 0; round < rounds; round++ {
		// Failed rounds are the campaign's subject, not an error: the
		// supervisor counts them and the watchdog clears any wedge.
		_ = sup.Do(func() error {
			if err := drv.Send(payload); err != nil {
				return err
			}
			if _, err := drv.PumpTx(2); err != nil {
				return err
			}
			if _, err := drv.ReapTx(); err != nil {
				return err
			}
			if err := drv.Deliver(payload); err != nil {
				return err
			}
			_, err := drv.ReapRx()
			return err
		})
		if _, err := sup.Watch(); err != nil {
			return cell{}, fmt.Errorf("watchdog recovery failed: %w", err)
		}
	}
	for _, c := range faults.Classes() {
		byClass.Add(c.String(), f.Count(c))
	}
	c := cell{
		injected:  f.TotalInjected(),
		sup:       sup.Stats,
		recCycles: sys.CPU.Total(cycles.Recovery),
	}
	if pkts := nic.TxPackets + nic.RxPackets; pkts > 0 {
		c.cyclesPerTx = float64(sys.CPU.Now()) / float64(pkts)
		c.gbps = perfmodel.Gbps(sys.Model, c.cyclesPerTx, device.ProfileBRCM.LineRateGbps)
	}
	return c, nil
}

// blockCampaign runs the same sweep against a block-device driver (NVMe or
// AHCI/SATA): a supervised write/complete loop under injection.
func blockCampaign(dev string, mode sim.Mode, seed uint64, rate float64, rounds int) (cell, error) {
	sys, err := sim.NewSystem(mode, 1<<14)
	if err != nil {
		return cell{}, err
	}
	f := sys.EnableFaults(faults.UniformConfig(seed, rate))
	payload := make([]byte, 512)
	for i := range payload {
		payload[i] = byte(i * 3)
	}

	var (
		target driver.Recoverable
		op     func() error
		bdf    pci.BDF
	)
	switch dev {
	case "nvme":
		bdf = nvmeBDF
		prot, err := sys.ProtectionFor(bdf, []uint32{4, 64, 64})
		if err != nil {
			return cell{}, err
		}
		d, err := driver.NewNVMeDriver(sys.Mem, prot, sys.Eng, bdf, 4096, 128, 8)
		if err != nil {
			return cell{}, err
		}
		lba := uint64(0)
		target = d
		op = func() error {
			if _, err := d.Write(lba%64, payload); err != nil {
				return err
			}
			lba++
			_, err := d.Poll(8)
			return err
		}
	case "sata":
		bdf = sataBDF
		prot, err := sys.ProtectionFor(bdf, []uint32{4, 64, 64})
		if err != nil {
			return cell{}, err
		}
		d := driver.NewSATADriver(sys.Mem, prot, sys.Eng, bdf, 4096, 256)
		// Same-binary deterministic: a fixed-seed source, never the
		// global math/rand state.
		rng := rand.New(rand.NewSource(int64(seed)))
		lba := uint64(0)
		target = d
		op = func() error {
			if _, err := d.SubmitWrite(lba%64, payload); err != nil {
				return err
			}
			lba++
			_, err := d.CompleteAll(rng)
			return err
		}
	default:
		return cell{}, fmt.Errorf("unknown block device %q", dev)
	}

	sup := sys.Supervise(bdf, target)
	for round := 0; round < rounds; round++ {
		_ = sup.Do(op)
		if _, err := sup.Watch(); err != nil {
			return cell{}, fmt.Errorf("watchdog recovery failed: %w", err)
		}
	}
	c := cell{
		injected:  f.TotalInjected(),
		sup:       sup.Stats,
		recCycles: sys.CPU.Total(cycles.Recovery),
	}
	if cmds := target.Progress(); cmds > 0 {
		c.cyclesPerTx = float64(sys.CPU.Now()) / float64(cmds)
	}
	return c, nil
}

func main() {
	var (
		seed   = flag.Uint64("seed", 42, "fault-engine seed (same seed => identical output)")
		rates  = flag.String("rates", "0,0.002,0.01,0.05", "comma-separated per-opportunity fault rates")
		modes  = flag.String("modes", "strict,strict+,riommu-,riommu", "comma-separated safe modes to sweep")
		rounds = flag.Int("rounds", 150, "workload rounds per campaign cell")
	)
	flag.Parse()

	ms, err := parseModes(*modes)
	if err != nil {
		fmt.Fprintln(os.Stderr, "riommu-faults:", err)
		os.Exit(2)
	}
	rs, err := parseRates(*rates)
	if err != nil {
		fmt.Fprintln(os.Stderr, "riommu-faults:", err)
		os.Exit(2)
	}

	fmt.Printf("riommu-faults: seed=%d rounds=%d (all clocks virtual; output is seed-deterministic)\n\n", *seed, *rounds)

	// NIC sweep. The fault-free (rate 0) run of each mode anchors the
	// throughput-degradation column.
	var byClass stats.Counters
	nicTab := stats.NewTable(
		fmt.Sprintf("NIC campaign — %s, %d rounds/cell", device.ProfileBRCM.Name, *rounds),
		"mode", "rate", "injected", "recov", "retries", "wdog", "degrade", "unrec", "cyc/pkt", "Gbps", "vs clean")
	nicTab.AlignLeft(0)
	for _, m := range ms {
		clean, err := nicCampaign(m, *seed, 0, *rounds, &stats.Counters{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "riommu-faults: %s clean run: %v\n", m, err)
			os.Exit(1)
		}
		for _, r := range rs {
			c, err := nicCampaign(m, *seed, r, *rounds, &byClass)
			if err != nil {
				fmt.Fprintf(os.Stderr, "riommu-faults: %s rate %v: %v\n", m, r, err)
				os.Exit(1)
			}
			vs := "n/a"
			if clean.gbps > 0 {
				vs = fmt.Sprintf("%.1f%%", 100*c.gbps/clean.gbps)
			}
			nicTab.Row(m.String(), fmt.Sprintf("%g", r), c.injected, c.sup.Recoveries, c.sup.Retries,
				c.sup.WatchdogFires, c.sup.Degradations, c.sup.Unrecovered,
				c.cyclesPerTx, c.gbps, vs)
		}
	}
	fmt.Println(nicTab)

	fmt.Println(byClass.Table("Injected faults by class (NIC sweep total)"))

	// Block-device sweep: NVMe and AHCI drivers under the same engine.
	blkTab := stats.NewTable(
		fmt.Sprintf("Block-device campaign — %d rounds/cell", *rounds),
		"device", "mode", "rate", "injected", "recov", "retries", "wdog", "unrec", "recovery cyc", "cyc/cmd")
	blkTab.AlignLeft(0).AlignLeft(1)
	for _, dev := range []string{"nvme", "sata"} {
		for _, m := range ms {
			for _, r := range rs {
				c, err := blockCampaign(dev, m, *seed, r, *rounds)
				if err != nil {
					fmt.Fprintf(os.Stderr, "riommu-faults: %s %s rate %v: %v\n", dev, m, r, err)
					os.Exit(1)
				}
				blkTab.Row(dev, m.String(), fmt.Sprintf("%g", r), c.injected, c.sup.Recoveries, c.sup.Retries,
					c.sup.WatchdogFires, c.sup.Unrecovered, c.recCycles, c.cyclesPerTx)
			}
		}
	}
	fmt.Println(blkTab)
}
