// Command riommu-faults runs deterministic fault-injection campaigns against
// the simulated systems: it sweeps fault rates across the safe protection
// modes (the strict baselines and both rIOMMU variants), drives supervised
// NIC / NVMe / SATA workloads through the injection window, and reports how
// the recovery layer held up — recovery success, cycles lost to recovery,
// and throughput degradation under the paper's performance model (§3.3).
//
// Usage:
//
//	riommu-faults [-seed N] [-rates r1,r2,...] [-modes m1,m2,...] [-rounds N]
//	              [-parallel N] [-json FILE]
//
// Every number in the output is a pure function of the flags: each cell's
// fault engine is seeded from the base seed and the cell's identity, all
// backoff/watchdog time is virtual, and no wall clock or global randomness
// is consulted. Two runs with the same flags produce identical bytes for
// any -parallel value, which makes the campaign diffable across code
// changes.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"riommu/internal/campaign"
	"riommu/internal/parallel"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("riommu-faults", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		seed    = fs.Uint64("seed", 42, "base campaign seed (same seed => identical output)")
		rates   = fs.String("rates", "0,0.002,0.01,0.05", "comma-separated per-opportunity fault rates")
		modes   = fs.String("modes", "strict,strict+,riommu-,riommu", "comma-separated safe modes to sweep")
		rounds  = fs.Int("rounds", 150, "workload rounds per campaign cell")
		workers = fs.Int("parallel", 0, "cell-level worker count (0 = GOMAXPROCS, 1 = serial)")
		jsonOut = fs.String("json", "", "write the machine-readable per-cell report to this file")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	ms, err := campaign.ParseModes(*modes)
	if err != nil {
		fmt.Fprintln(stderr, "riommu-faults:", err)
		return 2
	}
	rs, err := campaign.ParseRates(*rates)
	if err != nil {
		fmt.Fprintln(stderr, "riommu-faults:", err)
		return 2
	}

	opts := campaign.Options{
		Seed:    *seed,
		Rates:   rs,
		Modes:   ms,
		Rounds:  *rounds,
		Workers: parallel.Workers(*workers),
	}
	res, err := campaign.Run(opts)
	if err != nil {
		fmt.Fprintln(stderr, "riommu-faults:", err)
		return 1
	}

	fmt.Fprintf(stdout, "riommu-faults: seed=%d rounds=%d (all clocks virtual; output is seed-deterministic)\n\n",
		*seed, *rounds)
	fmt.Fprintln(stdout, res.Render())

	if *jsonOut != "" {
		if err := campaign.WriteJSON(*jsonOut, campaign.BuildReport(res)); err != nil {
			fmt.Fprintln(stderr, "riommu-faults:", err)
			return 1
		}
		fmt.Fprintf(stderr, "riommu-faults: wrote %s\n", *jsonOut)
	}
	return 0
}
