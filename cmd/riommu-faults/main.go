// Command riommu-faults runs deterministic fault-injection campaigns against
// the simulated systems: it sweeps fault rates across the safe protection
// modes (the strict baselines and both rIOMMU variants), drives supervised
// NIC / NVMe / SATA workloads through the injection window, and reports how
// the recovery layer held up — recovery success, cycles lost to recovery,
// and throughput degradation under the paper's performance model (§3.3).
//
// Usage:
//
//	riommu-faults [-seed N] [-rates r1,r2,...] [-modes m1,m2,...] [-rounds N]
//	              [-parallel N] [-json FILE] [-audit] [-chaos s1,s2,...|all]
//	              [-cores n1,n2,...] [-intchaos s1,s2,...|all] [-hotplug s1,s2,...|all]
//	              [-tenants n1,n2,...] [-tenantchaos s1,s2,...|all]
//	              [-churn n1,n2,...]
//
// -cores adds multi-queue scale-out cells: for each width > 1, every mode x
// rate combination soaks an MQNIC with that many queue pairs under one
// supervised recovery domain (the port recovers as a unit).
//
// -audit installs the shadow translation oracle in every cell: an
// independent record of the live mappings that verifies each DMA the
// devices perform, with zero effect on the measured virtual clocks.
//
// -chaos adds hostile-device cells (stale replay, overreach, read-only
// write, invalidation flood, cascade) across all protection modes including
// the deferred ones, quarantined by the supervisor's circuit breaker.
// -chaos implies -audit. After an audited run the isolation gate is
// enforced: any violation in a gap-free mode fails the command.
//
// -tenants adds multi-tenant two-stage cells: for each guest count >= 2,
// every hostile-tenant scenario (-tenantchaos, default all: stage-2 stale
// replay, GPA overreach, BDF spoofing, invalidation-queue flooding) runs
// against every presentation mode with that many guests sharing one
// hypervisor. Tenant 0 is hostile; the cross-tenant gate then requires
// zero cross-tenant accesses, the hostile tenant quarantined, and every
// victim tenant at exactly 100% availability — any miss fails the command.
//
// -churn adds fleet-traffic connection-churn cells: for each target
// connection count, every selected mode drives the internal/traffic engine
// (seeded open/close churn, mixed kernel/bypass fleet) with the shadow
// oracle attached, so the map/unmap storm regime is exercised and gated
// alongside the fault campaign.
//
// -intchaos adds hostile-MSI interrupt cells (unmapped-vector storms,
// spoofed-requester messages, stale-IRTE replay) across all seven
// presentation modes, judged by the interrupt shadow oracle. -hotplug adds
// topology-churn cells (attach storms, DMA before attach, surprise removal
// with state live) driving the device-lifecycle state machine. Both imply
// -audit and both are gated: a delivered interrupt the shadow table
// disowns, a ghost delivery after removal, or a surprise removal without a
// finite MTTR fails the command.
//
// Every number in the output is a pure function of the flags: each cell's
// fault engine is seeded from the base seed and the cell's identity, all
// backoff/watchdog time is virtual, and no wall clock or global randomness
// is consulted. Two runs with the same flags produce identical bytes for
// any -parallel value, which makes the campaign diffable across code
// changes.
//
// SIGINT/SIGTERM stop the campaign cooperatively: in-flight cells finish,
// the partial -json report is flushed with "interrupted": true, and the
// command exits 130.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"riommu/internal/campaign"
	"riommu/internal/chaos"
	"riommu/internal/parallel"
	"riommu/internal/profiling"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// notifyInterrupt translates SIGINT/SIGTERM into the worker pool's
// cooperative cancellation flag: in-flight cells finish, unstarted ones are
// skipped, and run flushes a partial report. The returned stop func
// detaches the handler (a second signal then kills the process normally).
func notifyInterrupt() (stop func()) {
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		for range sigc {
			parallel.Interrupt()
		}
	}()
	return func() {
		signal.Stop(sigc)
		close(sigc)
	}
}

func run(args []string, stdout, stderr io.Writer) int {
	parallel.ResetInterrupt()
	defer notifyInterrupt()()

	fs := flag.NewFlagSet("riommu-faults", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		seed     = fs.Uint64("seed", 42, "base campaign seed (same seed => identical output)")
		rates    = fs.String("rates", "0,0.002,0.01,0.05", "comma-separated per-opportunity fault rates")
		modes    = fs.String("modes", "strict,strict+,riommu-,riommu", "comma-separated safe modes to sweep")
		rounds   = fs.Int("rounds", 150, "workload rounds per campaign cell")
		workers  = fs.Int("parallel", 0, "cell-level worker count (0 = GOMAXPROCS, 1 = serial)")
		jsonOut  = fs.String("json", "", "write the machine-readable per-cell report to this file")
		auditOn  = fs.Bool("audit", false, "install the shadow translation oracle and enforce the isolation gate")
		chaosArg = fs.String("chaos", "", "comma-separated hostile-device scenarios, or \"all\" (implies -audit)")
		coresArg = fs.String("cores", "", "comma-separated multi-queue scale-out widths (e.g. \"2,4\"); adds mode x rate cells on an MQNIC with that many queue pairs")
		intArg   = fs.String("intchaos", "", "comma-separated hostile-MSI interrupt scenarios, or \"all\" (implies -audit)")
		plugArg  = fs.String("hotplug", "", "comma-separated hot-plug storm scenarios, or \"all\" (implies -audit)")
		tenArg   = fs.String("tenants", "", "comma-separated guest counts (e.g. \"3,8\"); adds hostile-tenant two-stage cells and enforces the cross-tenant gate")
		churnArg = fs.String("churn", "", "comma-separated fleet connection counts (e.g. \"2000,500000\"); adds audited connection-churn traffic cells per mode")
		tchArg   = fs.String("tenantchaos", "", "comma-separated hostile-tenant scenarios, or \"all\" (default all when -tenants is set)")
		cpuProf  = fs.String("cpuprofile", "", "write a CPU profile (runtime/pprof) to this file")
		memProf  = fs.String("memprofile", "", "write an allocs heap profile to this file on exit")
		shardArg = fs.String("shard", "", "compute only every K-th grid cell: \"i/K\" with 0 <= i < K (requires -checkpoint)")
		ckptArg  = fs.String("checkpoint", "", "versioned JSON checkpoint: completed cells are flushed here and restored on rerun; extra comma-separated files are merged read-only")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	stopProf, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(stderr, "riommu-faults:", err)
		return 2
	}
	// Deferred (not run at exit) so profiles are flushed before the 130 of an
	// interrupted run reaches os.Exit.
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(stderr, "riommu-faults:", err)
		}
	}()

	ms, err := campaign.ParseModes(*modes)
	if err != nil {
		fmt.Fprintln(stderr, "riommu-faults:", err)
		return 2
	}
	rs, err := campaign.ParseRates(*rates)
	if err != nil {
		fmt.Fprintln(stderr, "riommu-faults:", err)
		return 2
	}
	var scenarios []chaos.Scenario
	if *chaosArg != "" {
		scenarios, err = chaos.Parse(*chaosArg)
		if err != nil {
			fmt.Fprintln(stderr, "riommu-faults:", err)
			return 2
		}
		*auditOn = true // hostile cells are meaningless without the oracle
	}
	cores, err := campaign.ParseCores(*coresArg)
	if err != nil {
		fmt.Fprintln(stderr, "riommu-faults:", err)
		return 2
	}
	var intScenarios []chaos.IntScenario
	if *intArg != "" {
		intScenarios, err = chaos.ParseInt(*intArg)
		if err != nil {
			fmt.Fprintln(stderr, "riommu-faults:", err)
			return 2
		}
		*auditOn = true
	}
	var plugScenarios []string
	if *plugArg != "" {
		plugScenarios, err = campaign.ParseHotplug(*plugArg)
		if err != nil {
			fmt.Fprintln(stderr, "riommu-faults:", err)
			return 2
		}
		*auditOn = true
	}

	tenants, err := campaign.ParseTenants(*tenArg)
	if err != nil {
		fmt.Fprintln(stderr, "riommu-faults:", err)
		return 2
	}
	var tenantScenarios []chaos.TenantScenario
	if *tchArg != "" {
		if len(tenants) == 0 {
			fmt.Fprintln(stderr, "riommu-faults: -tenantchaos requires -tenants")
			return 2
		}
		tenantScenarios, err = chaos.ParseTenant(*tchArg)
		if err != nil {
			fmt.Fprintln(stderr, "riommu-faults:", err)
			return 2
		}
	}

	churn, err := campaign.ParseChurn(*churnArg)
	if err != nil {
		fmt.Fprintln(stderr, "riommu-faults:", err)
		return 2
	}

	shardIdx, shardCount, err := campaign.ParseShard(*shardArg)
	if err != nil {
		fmt.Fprintln(stderr, "riommu-faults:", err)
		return 2
	}
	var ckptPath string
	var mergePaths []string
	if *ckptArg != "" {
		parts := strings.Split(*ckptArg, ",")
		ckptPath = strings.TrimSpace(parts[0])
		for _, p := range parts[1:] {
			if p = strings.TrimSpace(p); p != "" {
				mergePaths = append(mergePaths, p)
			}
		}
	}

	opts := campaign.Options{
		Seed:     *seed,
		Rates:    rs,
		Modes:    ms,
		Rounds:   *rounds,
		Workers:  parallel.Workers(*workers),
		Audit:    *auditOn,
		Chaos:    scenarios,
		Cores:    cores,
		IntChaos: intScenarios,
		Hotplug:  plugScenarios,
		Tenants:  tenants,
		// Run defaults TenantChaos to every scenario when Tenants is set.
		TenantChaos: tenantScenarios,
		Churn:       churn,
		ShardIndex:  shardIdx,
		ShardCount:  shardCount,
		Checkpoint:  ckptPath,
		Merge:       mergePaths,
	}
	res, err := campaign.Run(opts)
	if parallel.Interrupted() {
		done := 0
		for i := range res.Keys {
			if res.Completed[i] {
				done++
			}
		}
		fmt.Fprintf(stderr, "riommu-faults: interrupted — %d of %d cells completed\n", done, len(res.Keys))
		if ckptPath != "" {
			fmt.Fprintf(stderr, "riommu-faults: completed cells saved; rerun with -checkpoint %s to resume\n", ckptPath)
		}
		if *jsonOut != "" {
			if werr := campaign.WriteJSON(*jsonOut, campaign.BuildReport(res)); werr != nil {
				fmt.Fprintln(stderr, "riommu-faults:", werr)
			} else {
				fmt.Fprintf(stderr, "riommu-faults: wrote partial report to %s\n", *jsonOut)
			}
		}
		return 130
	}
	if err != nil {
		fmt.Fprintln(stderr, "riommu-faults:", err)
		return 1
	}
	if !res.Complete() {
		// A shard finished its slice but the checkpoint does not yet cover
		// the grid: report/gates wait for the run that completes it.
		done := 0
		for i := range res.Keys {
			if res.Completed[i] {
				done++
			}
		}
		fmt.Fprintf(stderr, "riommu-faults: shard %d/%d done — %d of %d cells in %s\n",
			shardIdx, shardCount, done, len(res.Keys), ckptPath)
		return 0
	}

	fmt.Fprintf(stdout, "riommu-faults: seed=%d rounds=%d (all clocks virtual; output is seed-deterministic)\n\n",
		*seed, *rounds)
	fmt.Fprintln(stdout, res.Render())

	if *jsonOut != "" {
		if err := campaign.WriteJSON(*jsonOut, campaign.BuildReport(res)); err != nil {
			fmt.Fprintln(stderr, "riommu-faults:", err)
			return 1
		}
		fmt.Fprintf(stderr, "riommu-faults: wrote %s\n", *jsonOut)
	}

	if *auditOn {
		if fails := res.AuditViolationsGate(); len(fails) != 0 {
			for _, f := range fails {
				fmt.Fprintln(stderr, "riommu-faults: isolation gate:", f)
			}
			fmt.Fprintf(stderr, "riommu-faults: isolation gate failed (%d violation(s))\n", len(fails))
			return 1
		}
		fmt.Fprintln(stderr, "riommu-faults: isolation gate passed")
	}
	if len(intScenarios) > 0 || len(plugScenarios) > 0 {
		if fails := res.IntremapViolationsGate(); len(fails) != 0 {
			for _, f := range fails {
				fmt.Fprintln(stderr, "riommu-faults: interrupt gate:", f)
			}
			fmt.Fprintf(stderr, "riommu-faults: interrupt gate failed (%d violation(s))\n", len(fails))
			return 1
		}
		fmt.Fprintln(stderr, "riommu-faults: interrupt gate passed")
	}
	if len(tenants) > 0 {
		if fails := res.CrossTenantViolationsGate(); len(fails) != 0 {
			for _, f := range fails {
				fmt.Fprintln(stderr, "riommu-faults: cross-tenant gate:", f)
			}
			fmt.Fprintf(stderr, "riommu-faults: cross-tenant gate failed (%d violation(s))\n", len(fails))
			return 1
		}
		fmt.Fprintln(stderr, "riommu-faults: cross-tenant gate passed")
	}
	return 0
}
