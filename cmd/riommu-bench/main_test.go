package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"riommu/internal/parallel"
)

// TestInterruptFlushesPartialReport: an interrupt mid-run yields exit 130
// and a valid partial JSON report marked "interrupted": true containing
// only the experiments that finished.
func TestInterruptFlushesPartialReport(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real experiment prefix; slow under -short")
	}
	defer parallel.ResetInterrupt()
	var out, errb bytes.Buffer
	rep := filepath.Join(t.TempDir(), "rep.json")
	go func() {
		time.Sleep(50 * time.Millisecond)
		parallel.Interrupt()
	}()
	code := run([]string{"-quality", "quick", "-parallel", "2", "-json", rep}, &out, &errb)
	if code != 130 {
		t.Fatalf("exit %d, want 130\nstderr:\n%s", code, errb.String())
	}
	b, err := os.ReadFile(rep)
	if err != nil {
		t.Fatalf("partial report not written: %v", err)
	}
	var r struct {
		Interrupted bool `json:"interrupted"`
		Experiments []struct {
			ID string `json:"id"`
		} `json:"experiments"`
	}
	if err := json.Unmarshal(b, &r); err != nil {
		t.Fatalf("partial report is not valid JSON: %v", err)
	}
	if !r.Interrupted {
		t.Error("partial report not marked interrupted")
	}
}

// TestShardMergeByteIdentical: splitting a selection across -shard runs and
// folding the per-shard -json reports back together with -merge must produce
// the same bytes as one unsharded run. The selection is listed in registry
// (ID-sorted) order because that is the order -merge restores.
func TestShardMergeByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real experiments; slow under -short")
	}
	dir := t.TempDir()
	sel := "misspenalty,pathology,table1,table3"
	full := filepath.Join(dir, "full.json")
	shard0 := filepath.Join(dir, "shard0.json")
	shard1 := filepath.Join(dir, "shard1.json")
	merged := filepath.Join(dir, "merged.json")

	var out, errb bytes.Buffer
	if code := run([]string{"-exp", sel, "-json", full}, &out, &errb); code != 0 {
		t.Fatalf("full run: exit %d\nstderr:\n%s", code, errb.String())
	}
	for i, rep := range []string{shard0, shard1} {
		out.Reset()
		errb.Reset()
		shard := []string{"-exp", sel, "-shard", []string{"0/2", "1/2"}[i], "-json", rep}
		if code := run(shard, &out, &errb); code != 0 {
			t.Fatalf("shard %d/2: exit %d\nstderr:\n%s", i, code, errb.String())
		}
	}
	out.Reset()
	errb.Reset()
	if code := run([]string{"-merge", shard0 + "," + shard1, "-json", merged}, &out, &errb); code != 0 {
		t.Fatalf("merge: exit %d\nstderr:\n%s", code, errb.String())
	}

	want, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(merged)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("merged shard reports differ from the unsharded run")
	}

	// Merging the same shard twice would double-count experiments; refused.
	out.Reset()
	errb.Reset()
	if code := run([]string{"-merge", shard0 + "," + shard0, "-json", merged}, &out, &errb); code != 1 {
		t.Errorf("duplicate shard merge: exit %d, want 1", code)
	}
}

// TestListUnaffectedByInterruptPlumbing: the trivial -list path still works
// with the signal handler installed.
func TestListUnaffectedByInterruptPlumbing(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d\nstderr:\n%s", code, errb.String())
	}
	if out.Len() == 0 {
		t.Error("-list produced no output")
	}
}
