package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"riommu/internal/parallel"
)

// TestInterruptFlushesPartialReport: an interrupt mid-run yields exit 130
// and a valid partial JSON report marked "interrupted": true containing
// only the experiments that finished.
func TestInterruptFlushesPartialReport(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real experiment prefix; slow under -short")
	}
	defer parallel.ResetInterrupt()
	var out, errb bytes.Buffer
	rep := filepath.Join(t.TempDir(), "rep.json")
	go func() {
		time.Sleep(50 * time.Millisecond)
		parallel.Interrupt()
	}()
	code := run([]string{"-quality", "quick", "-parallel", "2", "-json", rep}, &out, &errb)
	if code != 130 {
		t.Fatalf("exit %d, want 130\nstderr:\n%s", code, errb.String())
	}
	b, err := os.ReadFile(rep)
	if err != nil {
		t.Fatalf("partial report not written: %v", err)
	}
	var r struct {
		Interrupted bool `json:"interrupted"`
		Experiments []struct {
			ID string `json:"id"`
		} `json:"experiments"`
	}
	if err := json.Unmarshal(b, &r); err != nil {
		t.Fatalf("partial report is not valid JSON: %v", err)
	}
	if !r.Interrupted {
		t.Error("partial report not marked interrupted")
	}
}

// TestListUnaffectedByInterruptPlumbing: the trivial -list path still works
// with the signal handler installed.
func TestListUnaffectedByInterruptPlumbing(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d\nstderr:\n%s", code, errb.String())
	}
	if out.Len() == 0 {
		t.Error("-list produced no output")
	}
}
