// Command riommu-bench regenerates the paper's tables and figures from the
// simulated systems.
//
// Usage:
//
//	riommu-bench [-quality quick|full] [-list] [-exp id[,id...]]
//
// With no -exp, every registered experiment runs in order. Output is the
// paper-style rendering of each table/figure, with the paper's own numbers
// alongside where the experiment embeds them.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"riommu/internal/experiments"
)

func main() {
	var (
		quality  = flag.String("quality", "quick", "run length: quick or full")
		list     = flag.Bool("list", false, "list experiments and exit")
		exp      = flag.String("exp", "", "comma-separated experiment ids (default: all)")
		parallel = flag.Bool("parallel", false, "run experiments concurrently (each owns its simulator)")
		csvDir   = flag.String("csv", "", "also export Figure 7/8/12 data series as CSV into this directory")
	)
	flag.Parse()

	q := experiments.Quick
	switch *quality {
	case "quick":
	case "full":
		q = experiments.Full
	default:
		fmt.Fprintf(os.Stderr, "riommu-bench: unknown quality %q (want quick or full)\n", *quality)
		os.Exit(2)
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-12s %s\n%-12s paper: %s\n", e.ID, e.Title, "", e.Paper)
		}
		return
	}

	if *csvDir != "" {
		if err := experiments.ExportCSV(*csvDir, q); err != nil {
			fmt.Fprintln(os.Stderr, "riommu-bench:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote figure7.csv, figure8.csv, figure12_{mlx,brcm}.csv to %s\n", *csvDir)
		if *exp == "" {
			return
		}
	}

	var selected []experiments.Experiment
	if *exp == "" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			e, err := experiments.Lookup(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(os.Stderr, "riommu-bench:", err)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	type result struct {
		out     string
		err     error
		elapsed time.Duration
	}
	results := make([]result, len(selected))
	if *parallel {
		// Each experiment builds its own simulated systems, so they are
		// fully independent and safe to run concurrently.
		var wg sync.WaitGroup
		for i, e := range selected {
			wg.Add(1)
			go func(i int, e experiments.Experiment) {
				defer wg.Done()
				start := time.Now()
				out, err := e.Run(q)
				results[i] = result{out: out, err: err, elapsed: time.Since(start)}
			}(i, e)
		}
		wg.Wait()
	} else {
		for i, e := range selected {
			start := time.Now()
			out, err := e.Run(q)
			results[i] = result{out: out, err: err, elapsed: time.Since(start)}
		}
	}

	for i, e := range selected {
		r := results[i]
		if r.err != nil {
			fmt.Fprintf(os.Stderr, "riommu-bench: %s: %v\n", e.ID, r.err)
			os.Exit(1)
		}
		fmt.Printf("=== %s — %s (%.1fs)\n", e.ID, e.Title, r.elapsed.Seconds())
		fmt.Printf("    paper: %s\n\n", e.Paper)
		fmt.Println(r.out)
	}
}
