// Command riommu-bench regenerates the paper's tables and figures from the
// simulated systems.
//
// Usage:
//
//	riommu-bench [-quality quick|full] [-parallel N] [-json FILE] [-list] [-exp id[,id...]]
//
// With no -exp, every registered experiment runs in order. Output is the
// paper-style rendering of each table/figure, with the paper's own numbers
// alongside where the experiment embeds them.
//
// -parallel N fans each experiment's cell grid across N workers (default:
// GOMAXPROCS; -parallel 1 forces the legacy serial path). Results are merged
// in grid order, so stdout and -json output are byte-identical for any
// worker count. Per-experiment wall-clock timing goes to stderr only, to
// keep stdout deterministic.
//
// -json FILE additionally writes the machine-readable per-cell report (the
// format the CI benchmark-regression gate diffs against BENCH_golden.json).
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"riommu/internal/experiments"
	"riommu/internal/parallel"
	"riommu/internal/profiling"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// notifyInterrupt translates SIGINT/SIGTERM into the worker pool's
// cooperative cancellation flag: in-flight cells finish, unstarted ones are
// skipped, and the caller flushes a partial report. The returned stop func
// detaches the handler (a second signal then kills the process normally).
func notifyInterrupt() (stop func()) {
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		for range sigc {
			parallel.Interrupt()
		}
	}()
	return func() {
		signal.Stop(sigc)
		close(sigc)
	}
}

func run(args []string, stdout, stderr io.Writer) int {
	parallel.ResetInterrupt()
	defer notifyInterrupt()()

	fs := flag.NewFlagSet("riommu-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		quality = fs.String("quality", "quick", "run length: quick or full")
		list    = fs.Bool("list", false, "list experiments and exit")
		exp     = fs.String("exp", "", "comma-separated experiment ids (default: all)")
		workers = fs.Int("parallel", 0, "cell-level worker count (0 = GOMAXPROCS, 1 = serial)")
		jsonOut = fs.String("json", "", "write the machine-readable per-cell report to this file")
		csvDir  = fs.String("csv", "", "also export Figure 7/8/12 data series as CSV into this directory")
		cpuProf = fs.String("cpuprofile", "", "write a CPU profile (runtime/pprof) to this file")
		memProf = fs.String("memprofile", "", "write an allocs heap profile to this file on exit")
		shard   = fs.String("shard", "", "run only every K-th selected experiment: \"i/K\" with 0 <= i < K")
		merge   = fs.String("merge", "", "merge comma-separated shard -json reports into -json FILE instead of running")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	stopProf, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(stderr, "riommu-bench:", err)
		return 2
	}
	// Deferred (not run at exit) so profiles are flushed before the 130 of an
	// interrupted run reaches os.Exit.
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(stderr, "riommu-bench:", err)
		}
	}()

	cfg := experiments.Config{Quality: experiments.Quick, Workers: parallel.Workers(*workers)}
	switch *quality {
	case "quick":
	case "full":
		cfg.Quality = experiments.Full
	default:
		fmt.Fprintf(stderr, "riommu-bench: unknown quality %q (want quick or full)\n", *quality)
		return 2
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Fprintf(stdout, "%-12s %s\n%-12s paper: %s\n", e.ID, e.Title, "", e.Paper)
		}
		return 0
	}

	if *csvDir != "" {
		if err := experiments.ExportCSV(*csvDir, cfg); err != nil {
			fmt.Fprintln(stderr, "riommu-bench:", err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote figure7.csv, figure8.csv, figure12_{mlx,brcm}.csv to %s\n", *csvDir)
		if *exp == "" && *jsonOut == "" {
			return 0
		}
	}

	if *merge != "" {
		if *jsonOut == "" {
			fmt.Fprintln(stderr, "riommu-bench: -merge needs -json FILE for the merged report")
			return 2
		}
		var reps []experiments.Report
		for _, p := range strings.Split(*merge, ",") {
			rep, err := experiments.ReadReport(strings.TrimSpace(p))
			if err != nil {
				fmt.Fprintln(stderr, "riommu-bench:", err)
				return 1
			}
			reps = append(reps, rep)
		}
		rep, err := experiments.MergeReports(reps)
		if err != nil {
			fmt.Fprintln(stderr, "riommu-bench:", err)
			return 1
		}
		if err := experiments.WriteJSON(*jsonOut, rep); err != nil {
			fmt.Fprintln(stderr, "riommu-bench:", err)
			return 1
		}
		fmt.Fprintf(stderr, "riommu-bench: merged %d shard report(s) into %s\n", len(reps), *jsonOut)
		return 0
	}

	var selected []experiments.Experiment
	if *exp == "" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			e, err := experiments.Lookup(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(stderr, "riommu-bench:", err)
				return 2
			}
			selected = append(selected, e)
		}
	}
	shardIdx, shardCount, err := parallel.ParseShard(*shard)
	if err != nil {
		fmt.Fprintln(stderr, "riommu-bench:", err)
		return 2
	}
	if shardCount > 1 {
		selected = experiments.Shard(selected, shardIdx, shardCount)
		fmt.Fprintf(stderr, "riommu-bench: shard %d/%d — %d experiment(s)\n", shardIdx, shardCount, len(selected))
	}

	start := time.Now()
	results := experiments.RunAll(cfg, selected)
	fmt.Fprintf(stderr, "riommu-bench: %d experiment(s), %d worker(s), %.1fs\n",
		len(selected), cfg.Workers, time.Since(start).Seconds())

	if parallel.Interrupted() {
		return flushPartial(cfg, results, *jsonOut, stderr)
	}

	// Report every failing experiment, not just the first: a grid error in
	// cell k must not hide an unrelated error in cell k+1's experiment.
	failed := 0
	for _, r := range results {
		if r.Err != nil {
			failed++
			fmt.Fprintf(stderr, "riommu-bench: %s: %v\n", r.Experiment.ID, r.Err)
		}
	}
	if failed > 0 {
		fmt.Fprintf(stderr, "riommu-bench: %d of %d experiments failed\n", failed, len(results))
		return 1
	}

	for _, r := range results {
		fmt.Fprintf(stdout, "=== %s — %s\n", r.Experiment.ID, r.Experiment.Title)
		fmt.Fprintf(stdout, "    paper: %s\n\n", r.Experiment.Paper)
		fmt.Fprintln(stdout, r.Output.Text)
	}

	if *jsonOut != "" {
		rep, err := experiments.BuildReport(cfg, results)
		if err != nil {
			fmt.Fprintln(stderr, "riommu-bench:", err)
			return 1
		}
		if err := experiments.WriteJSON(*jsonOut, rep); err != nil {
			fmt.Fprintln(stderr, "riommu-bench:", err)
			return 1
		}
		fmt.Fprintf(stderr, "riommu-bench: wrote %s\n", *jsonOut)
	}
	return 0
}

// flushPartial handles an interrupted run: every experiment that completed
// before the signal is preserved in a report marked "interrupted", and the
// exit code is the conventional 128+SIGINT.
func flushPartial(cfg experiments.Config, results []experiments.RunResult, jsonOut string, stderr io.Writer) int {
	done := 0
	for _, r := range results {
		if r.Err == nil {
			done++
		} else if !errors.Is(r.Err, parallel.ErrInterrupted) {
			fmt.Fprintf(stderr, "riommu-bench: %s: %v\n", r.Experiment.ID, r.Err)
		}
	}
	fmt.Fprintf(stderr, "riommu-bench: interrupted — %d of %d experiments completed\n", done, len(results))
	if jsonOut != "" {
		rep := experiments.BuildPartialReport(cfg, results)
		if err := experiments.WriteJSON(jsonOut, rep); err != nil {
			fmt.Fprintln(stderr, "riommu-bench:", err)
		} else {
			fmt.Fprintf(stderr, "riommu-bench: wrote partial report to %s\n", jsonOut)
		}
	}
	return 130
}
