// Command riommu-trace records DMA traces from a simulated networking run
// and evaluates the §5.4 TLB prefetchers over them.
//
// Usage:
//
//	riommu-trace record [-o trace.bin] [-format binary|json] [-messages N]
//	riommu-trace eval   [-i trace.bin] [-format binary|json] [-history N] [-baseline]
//	riommu-trace synth  [-o trace.bin] [-ring N] [-laps N] [-rings N] [-churn PCT]
package main

import (
	"flag"
	"fmt"
	"os"

	"riommu/internal/device"
	"riommu/internal/experiments"
	"riommu/internal/pci"
	"riommu/internal/prefetch"
	"riommu/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "record":
		record(os.Args[2:])
	case "eval":
		eval(os.Args[2:])
	case "synth":
		synth(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: riommu-trace record|eval|synth [flags]")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "riommu-trace:", err)
	os.Exit(1)
}

func writeTrace(tr *trace.Trace, path, format string) {
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if format == "json" {
		err = tr.WriteJSON(f)
	} else {
		err = tr.WriteBinary(f)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %d events to %s (%s)\n", tr.Len(), path, format)
}

func readTrace(path, format string) *trace.Trace {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	var tr *trace.Trace
	if format == "json" {
		tr, err = trace.ReadJSON(f)
	} else {
		tr, err = trace.ReadBinary(f)
	}
	if err != nil {
		fatal(err)
	}
	return tr
}

func record(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	out := fs.String("o", "trace.bin", "output file")
	format := fs.String("format", "binary", "binary or json")
	messages := fs.Int("messages", 50, "16KB messages to stream")
	_ = fs.Parse(args)

	profile := device.ProfileBRCM
	profile.BufferBytes = 4096
	q := experiments.Quick
	if *messages > 60 {
		q = experiments.Full
	}
	tr, err := experiments.CollectTrace(q, profile)
	if err != nil {
		fatal(err)
	}
	writeTrace(tr, *out, *format)
}

func synth(args []string) {
	fs := flag.NewFlagSet("synth", flag.ExitOnError)
	out := fs.String("o", "trace.bin", "output file")
	format := fs.String("format", "binary", "binary or json")
	ringPages := fs.Int("ring", 512, "pages per ring")
	laps := fs.Int("laps", 6, "times each ring cycles")
	rings := fs.Int("rings", 2, "interleaved rings")
	churn := fs.Int("churn", 10, "percent of refills that get a fresh page")
	_ = fs.Parse(args)

	tr := prefetch.SyntheticRingTrace(pci.NewBDF(0, 3, 0), *ringPages, *laps, *rings, *churn)
	writeTrace(tr, *out, *format)
}

func eval(args []string) {
	fs := flag.NewFlagSet("eval", flag.ExitOnError)
	in := fs.String("i", "trace.bin", "input file")
	format := fs.String("format", "binary", "binary or json")
	history := fs.Int("history", 4096, "prediction-structure size")
	baseline := fs.Bool("baseline", false, "use the prefetchers' original (history-purging) form")
	_ = fs.Parse(args)

	tr := readTrace(*in, *format)
	cfg := prefetch.Config{TLBEntries: 64, History: *history, RetainInvalidated: !*baseline}
	fmt.Printf("%d events, history=%d, baseline=%v\n", tr.Len(), *history, *baseline)
	for _, p := range prefetch.NewAll(cfg) {
		s := prefetch.Evaluate(p, tr)
		fmt.Printf("%-9s hit rate %.3f  (%d accesses, %d prefetches, %d suppressed)\n",
			p.Name(), s.HitRate(), s.Accesses, s.Prefetches, s.Suppressed)
	}
}
