// NVMe: PCIe SSDs are the paper's second target class (§4) — NVM Express
// queues impose the same strict in-order (un)mapping discipline as NIC
// rings. This example builds an NVMe device whose submission/completion
// queues and data buffers are all protected by the rIOMMU, writes and reads
// back blocks, and shows the per-command map/unmap flow.
package main

import (
	"bytes"
	"fmt"
	"log"

	"riommu/internal/core"
	"riommu/internal/cycles"
	"riommu/internal/device"
	"riommu/internal/dma"
	"riommu/internal/mem"
	"riommu/internal/pci"
)

func main() {
	mm, err := mem.New(4096 * mem.PageSize)
	if err != nil {
		log.Fatal(err)
	}
	clk := &cycles.Clock{}
	model := cycles.DefaultModel()
	hw := core.New(clk, &model, mm)
	bdf := pci.NewBDF(0, 4, 0)

	// Flat tables: ring 0 for the queue memory (persistent), ring 1 for the
	// per-command data buffers (single-use).
	drv, err := core.NewDriver(clk, &model, mm, hw, bdf, []uint32{8, 1024}, true)
	if err != nil {
		log.Fatal(err)
	}
	eng := dma.NewEngine(mm, hw)
	ssd := device.NewNVMe(bdf, eng, 4096, 1024) // 4 MiB namespace

	// Allocate the queue pair and map it persistently for the device.
	q, err := device.NewNVMeQueuePair(mm, 64)
	if err != nil {
		log.Fatal(err)
	}
	sqIOVA, err := drv.Map(0, q.SQPA(), q.SQBytes(), pci.DirBidi)
	if err != nil {
		log.Fatal(err)
	}
	cqIOVA, err := drv.Map(0, q.CQPA(), q.CQBytes(), pci.DirBidi)
	if err != nil {
		log.Fatal(err)
	}
	q.SetDeviceAddrs(sqIOVA, cqIOVA)
	fmt.Printf("queues mapped: SQ at %s, CQ at %s\n", core.IOVA(sqIOVA), core.IOVA(cqIOVA))

	// Write 8 blocks, each through a freshly mapped single-use buffer.
	var dataIOVAs []uint64
	for blk := uint64(0); blk < 8; blk++ {
		f, err := mm.AllocFrame()
		if err != nil {
			log.Fatal(err)
		}
		payload := bytes.Repeat([]byte{byte('A' + blk)}, 4096)
		if err := mm.Write(f.PA(), payload); err != nil {
			log.Fatal(err)
		}
		iova, err := drv.Map(1, f.PA(), 4096, pci.DirToDevice)
		if err != nil {
			log.Fatal(err)
		}
		dataIOVAs = append(dataIOVAs, iova)
		if _, err := q.Submit(iova, blk, 4096, device.NVMeOpWrite); err != nil {
			log.Fatal(err)
		}
	}
	n, err := ssd.ProcessSQ(q, 16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("device consumed %d write commands strictly in order\n", n)

	// Completions arrive in submission order; unmap the burst with one
	// rIOTLB invalidation on the last buffer.
	for i, iova := range dataIOVAs {
		c, ok, err := q.ReapCompletion(uint32(i))
		if err != nil || !ok || c.Status != device.NVMeStatusOK {
			log.Fatalf("completion %d: %+v ok=%v err=%v", i, c, ok, err)
		}
		if err := drv.Unmap(1, iova, 0, i == len(dataIOVAs)-1); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("burst of %d unmaps -> %d rIOTLB invalidation(s)\n",
		len(dataIOVAs), hw.Stats().Invalidations)

	// Read block 3 back through a read-mapped buffer.
	f, err := mm.AllocFrame()
	if err != nil {
		log.Fatal(err)
	}
	iova, err := drv.Map(1, f.PA(), 4096, pci.DirFromDevice)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := q.Submit(iova, 3, 4096, device.NVMeOpRead); err != nil {
		log.Fatal(err)
	}
	if _, err := ssd.ProcessSQ(q, 1); err != nil {
		log.Fatal(err)
	}
	got, err := mm.Read(f.PA(), 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("block 3 reads back as %q...\n", got)
	if err := drv.Unmap(1, iova, 0, true); err != nil {
		log.Fatal(err)
	}

	st := hw.Stats()
	fmt.Printf("\nstats: %d translations, %d prefetch hits (sequential queue discipline), %d faults\n",
		st.Translations, st.PrefetchHits, st.Faults)
}
