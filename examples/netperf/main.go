// Netperf: run the paper's headline experiment — Netperf TCP stream over the
// 40 Gbps Mellanox-profile NIC in all seven IOMMU modes — and print the
// throughput, CPU and cycles-per-packet comparison (Figure 12, top-left).
package main

import (
	"fmt"
	"log"

	"riommu/internal/device"
	"riommu/internal/sim"
	"riommu/internal/workload"
)

func main() {
	opts := workload.StreamOpts{Messages: 150, WarmupMessages: 80}
	fmt.Println("Netperf TCP stream, mlx profile (ConnectX3-like, 40 Gbps, 2 IOVAs/packet)")
	fmt.Printf("%-8s  %10s  %6s  %14s  %10s\n", "mode", "Gbps", "cpu%", "cycles/packet", "vs none")

	var none float64
	results := map[sim.Mode]workload.Result{}
	for _, m := range sim.AllModes() {
		r, err := workload.NetperfStream(m, device.ProfileMLX, opts)
		if err != nil {
			log.Fatal(err)
		}
		results[m] = r
		if m == sim.None {
			none = r.Throughput
		}
	}
	for _, m := range sim.AllModes() {
		r := results[m]
		fmt.Printf("%-8s  %10.2f  %5.0f%%  %14.0f  %9.2fx\n",
			m, r.Throughput, r.CPU*100, r.CyclesPerUnit, r.Throughput/none)
	}

	riommu := results[sim.RIOMMU]
	strict := results[sim.Strict]
	fmt.Printf("\nriommu/strict = %.2fx (paper: 7.56x);  riommu/none = %.2fx (paper: 0.77x)\n",
		riommu.Throughput/strict.Throughput, riommu.Throughput/none)
}
