// Storage: the block-device side of the paper (§4). An NVMe SSD — whose
// queues are consumed strictly in order, making it a natural rIOMMU target —
// and a SATA/AHCI disk — whose 32 slots complete out of order and need the
// MapAt extension — both run under full rIOMMU protection.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	"riommu/internal/core"
	"riommu/internal/cycles"
	"riommu/internal/dma"
	"riommu/internal/driver"
	"riommu/internal/mem"
	"riommu/internal/pci"
)

func main() {
	mm, err := mem.New(8192 * mem.PageSize)
	if err != nil {
		log.Fatal(err)
	}
	clk := &cycles.Clock{}
	model := cycles.DefaultModel()
	hw := core.New(clk, &model, mm)
	eng := dma.NewEngine(mm, hw)

	nvmeDemo(mm, clk, &model, hw, eng)
	fmt.Println()
	sataDemo(mm, clk, &model, hw, eng)
}

func nvmeDemo(mm *mem.PhysMem, clk *cycles.Clock, model *cycles.Model, hw *core.RIOMMU, eng *dma.Engine) {
	fmt.Println("== NVMe under rIOMMU (in-order queues, Map at the ring tail) ==")
	bdf := pci.NewBDF(0, 4, 0)
	prot, err := core.NewDriver(clk, model, mm, hw, bdf, []uint32{4, 512, 512}, true)
	if err != nil {
		log.Fatal(err)
	}
	d, err := driver.NewNVMeDriver(mm, prot, eng, bdf, 4096, 512, 64)
	if err != nil {
		log.Fatal(err)
	}

	before := clk.Now()
	const ops = 32
	for i := 0; i < ops; i++ {
		if _, err := d.Write(uint64(i), bytes.Repeat([]byte{byte(i)}, 4096)); err != nil {
			log.Fatal(err)
		}
	}
	done, err := d.Poll(ops)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d blocks; per-op CPU cost %.0f cycles (map+submit+unmap)\n",
		len(done), float64(clk.Now()-before)/ops)

	for i := 0; i < 4; i++ {
		if _, err := d.Read(uint64(i), 4096); err != nil {
			log.Fatal(err)
		}
	}
	reads, err := d.Poll(4)
	if err != nil {
		log.Fatal(err)
	}
	for i, c := range reads {
		fmt.Printf("  block %d: %d bytes, first byte %#02x\n", i, len(c.Data), c.Data[0])
	}
	st := hw.Stats()
	fmt.Printf("rIOMMU: %d translations, %d prefetch hits, %d invalidations (one per completion burst)\n",
		st.Translations, st.PrefetchHits, st.Invalidations)
	if err := d.Teardown(); err != nil {
		log.Fatal(err)
	}
}

func sataDemo(mm *mem.PhysMem, clk *cycles.Clock, model *cycles.Model, hw *core.RIOMMU, eng *dma.Engine) {
	fmt.Println("== SATA/AHCI under rIOMMU (out-of-order slots, MapAt extension) ==")
	bdf := pci.NewBDF(0, 5, 0)
	prot, err := core.NewDriver(clk, model, mm, hw, bdf, []uint32{4, 32, 32}, true)
	if err != nil {
		log.Fatal(err)
	}
	d := driver.NewSATADriver(mm, prot, eng, bdf, 4096, 2048)

	for i := 0; i < 12; i++ {
		if _, err := d.SubmitWrite(uint64(i*7), bytes.Repeat([]byte{byte('A' + i)}, 4096)); err != nil {
			log.Fatal(err)
		}
	}
	results, err := d.CompleteAll(rand.New(rand.NewSource(2015)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print("drive completed slots in order:")
	for _, r := range results {
		fmt.Printf(" %d", r.Slot)
	}
	fmt.Println()

	// Read two blocks back, again completing out of order.
	if _, err := d.SubmitRead(7, 4096); err != nil {
		log.Fatal(err)
	}
	if _, err := d.SubmitRead(70, 4096); err != nil {
		log.Fatal(err)
	}
	reads, err := d.CompleteAll(rand.New(rand.NewSource(7)))
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range reads {
		fmt.Printf("  slot %d read back first byte %q\n", r.Slot, r.Data[0])
	}
	fmt.Println("out-of-order unmaps stayed exact: each slot owns its own rPTE,")
	fmt.Println("so arbitrary completion order cannot corrupt another command's mapping.")
	if err := d.Teardown(rand.New(rand.NewSource(1))); err != nil {
		log.Fatal(err)
	}
}
