// Faultinjection: the security story of intra-OS protection (§2.1) — errant
// and malicious device DMAs against each protection mode. Shows which modes
// block which attacks, including the deferred-mode stale-IOTLB window and
// the page-sharing hole that only rIOMMU's byte-granular protection closes.
package main

import (
	"fmt"
	"log"

	"riommu/internal/driver"
	"riommu/internal/mem"
	"riommu/internal/pci"
	"riommu/internal/sim"
)

var bdf = pci.NewBDF(0, 3, 0)

func main() {
	modes := []sim.Mode{sim.Strict, sim.Defer, sim.RIOMMU, sim.None}
	fmt.Printf("%-34s", "attack")
	for _, m := range modes {
		fmt.Printf("  %-8s", m)
	}
	fmt.Println()

	attacks := []struct {
		name string
		run  func(*fixture) bool // true = DMA landed (protection failed)
	}{
		{"DMA to unmapped address", attackUnmapped},
		{"write via read-only mapping", attackDirection},
		{"use-after-unmap (burst closed)", attackUseAfterUnmap},
		{"overflow past buffer on same page", attackPageSharing},
	}
	for _, a := range attacks {
		fmt.Printf("%-34s", a.name)
		for _, m := range modes {
			fx := newFixture(m)
			landed := a.run(fx)
			verdict := "BLOCKED"
			if landed {
				verdict = "landed"
			}
			fmt.Printf("  %-8s", verdict)
		}
		fmt.Println()
	}
	fmt.Println("\nlanded = the errant DMA reached memory. Deferred mode trades the")
	fmt.Println("use-after-unmap window for speed; only rIOMMU blocks same-page overflow")
	fmt.Println("while staying fast (byte-granular rPTEs, §4).")
}

type fixture struct {
	sys  *sim.System
	prot driver.Protection
	buf  mem.PA
}

func newFixture(m sim.Mode) *fixture {
	sys, err := sim.NewSystem(m, 1<<13)
	if err != nil {
		log.Fatal(err)
	}
	prot, err := sys.ProtectionFor(bdf, []uint32{4, 64, 64})
	if err != nil {
		log.Fatal(err)
	}
	f, err := sys.Mem.AllocFrame()
	if err != nil {
		log.Fatal(err)
	}
	return &fixture{sys: sys, prot: prot, buf: f.PA()}
}

func attackUnmapped(fx *fixture) bool {
	// No mapping at all; the device guesses an address. In none mode the
	// "address" is physical and always reachable.
	target := uint64(fx.buf)
	if fx.sys.Mode != sim.None {
		target = 0x7f000 // an IOVA nothing mapped
	}
	return fx.sys.Eng.Write(bdf, target, []byte{0xee}) == nil
}

func attackDirection(fx *fixture) bool {
	iova, err := fx.prot.Map(driver.RingTx, fx.buf, 512, pci.DirToDevice)
	if err != nil {
		log.Fatal(err)
	}
	defer func() { _ = fx.prot.Unmap(driver.RingTx, iova, 512, true) }()
	return fx.sys.Eng.Write(bdf, iova, []byte{0xee}) == nil
}

func attackUseAfterUnmap(fx *fixture) bool {
	iova, err := fx.prot.Map(driver.RingRx, fx.buf, 512, pci.DirFromDevice)
	if err != nil {
		log.Fatal(err)
	}
	// Legitimate DMA warms the (r)IOTLB; then the OS unmaps and hands the
	// buffer up. A malicious device replays the old address.
	if err := fx.sys.Eng.Write(bdf, iova, []byte{0x01}); err != nil {
		log.Fatal(err)
	}
	if err := fx.prot.Unmap(driver.RingRx, iova, 512, true); err != nil {
		log.Fatal(err)
	}
	return fx.sys.Eng.Write(bdf, iova, []byte{0xee}) == nil
}

func attackPageSharing(fx *fixture) bool {
	// Two buffers share a page: [0,512) mapped for the device, [2048,2560)
	// belongs to someone else. The device overflows its buffer by writing
	// at offset 2048. Page-granular protection cannot tell the difference.
	iova, err := fx.prot.Map(driver.RingRx, fx.buf, 512, pci.DirFromDevice)
	if err != nil {
		log.Fatal(err)
	}
	defer func() { _ = fx.prot.Unmap(driver.RingRx, iova, 512, true) }()
	return fx.sys.Eng.Write(bdf, iova+2048, []byte{0xee}) == nil
}
