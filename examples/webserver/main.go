// Webserver: the Apache/ApacheBench scenario from the paper's intro — a web
// server whose request rate is throttled by DMA-protection overhead. Serves
// 1 KB and 1 MB static files in strict, rIOMMU and no-IOMMU modes on both
// NIC setups and reports requests/second (Figure 12, apache columns).
package main

import (
	"fmt"
	"log"

	"riommu/internal/device"
	"riommu/internal/sim"
	"riommu/internal/workload"
)

func main() {
	modes := []sim.Mode{sim.Strict, sim.DeferPlus, sim.RIOMMU, sim.None}
	files := []int{1024, 1 << 20}

	for _, nic := range []device.NICProfile{device.ProfileMLX, device.ProfileBRCM} {
		for _, size := range files {
			label := "1KB"
			reqs := 150
			if size >= 1<<20 {
				label = "1MB"
				reqs = 10
			}
			fmt.Printf("Apache %s files on %s (%0.f Gbps):\n", label, nic.Name, nic.LineRateGbps)
			var none float64
			for _, m := range modes {
				r, err := workload.Apache(m, nic, workload.ApacheOpts{
					FileBytes: size, Requests: reqs, Warmup: reqs / 4,
				})
				if err != nil {
					log.Fatal(err)
				}
				if m == sim.None {
					none = r.Throughput
				}
				fmt.Printf("  %-8s %9.0f req/s  cpu %3.0f%%\n", m, r.Throughput, r.CPU*100)
				if m == sim.None && none > 0 {
					fmt.Printf("  %-8s (protection-free optimum)\n", "")
				}
			}
			fmt.Println()
		}
	}
	fmt.Println("Safe DMA protection with rIOMMU costs a few percent on small files;")
	fmt.Println("strict baseline protection costs up to several fold on large transfers.")
}
