// Userlevel: the §5.3 scenario — kernel-bypass I/O that polls the device
// and sends raw frames, where latency is measured in fractions of a
// microsecond and the IOTLB miss penalty finally becomes visible. Compares
// the baseline IOMMU's radix-walk miss against the rIOMMU's prefetched flat
// table.
package main

import (
	"fmt"
	"log"

	"riommu/internal/driver"
	"riommu/internal/pci"
	"riommu/internal/sim"
)

const (
	poolBuffers = 1024
	sends       = 8192
)

func main() {
	fmt.Println("User-level polling I/O (§5.3): device-side translation cycles per send")
	fmt.Println()

	baseRand, baseHot := run(sim.Strict)
	fmt.Printf("baseline IOMMU, random buffer from %d premapped (IOTLB misses): %7.1f cy\n", poolBuffers, baseRand)
	fmt.Printf("baseline IOMMU, single hot buffer (IOTLB hits):                 %7.1f cy\n", baseHot)
	fmt.Printf("=> IOTLB miss penalty: %.0f cycles = %.2f us  (paper: ~1532 cy, ~0.5 us)\n\n",
		baseRand-baseHot, (baseRand-baseHot)/3100)

	rSeq, rRand := runRIOMMU()
	fmt.Printf("rIOMMU, in-order ring sends (prefetched next rPTE):             %7.1f cy\n", rSeq)
	fmt.Printf("rIOMMU, random out-of-order sends (one flat-table fetch):       %7.1f cy\n", rRand)
	fmt.Println("\nThe rIOMMU turns the occasional half-microsecond radix walk into either")
	fmt.Println("nothing (sequential use) or a single DRAM read (out-of-order use).")
}

// run measures baseline device-side cycles per send for random vs hot picks.
func run(mode sim.Mode) (randCy, hotCy float64) {
	sys, err := sim.NewSystem(mode, 1<<15)
	if err != nil {
		log.Fatal(err)
	}
	bdf := pci.NewBDF(0, 3, 0)
	prot, err := sys.ProtectionFor(bdf, []uint32{4, poolBuffers * 2, poolBuffers * 2})
	if err != nil {
		log.Fatal(err)
	}
	iovas := premap(sys, prot)

	lcg := uint64(0x2545F4914F6CDD1D)
	next := func() uint64 { lcg ^= lcg << 13; lcg ^= lcg >> 7; lcg ^= lcg << 17; return lcg }
	buf := make([]byte, 64)

	measure := func(pick func(i int) uint64) float64 {
		for i := 0; i < 64; i++ { // warm
			if err := sys.Eng.Read(bdf, pick(i), buf); err != nil {
				log.Fatal(err)
			}
		}
		before := sys.Dev.Now()
		for i := 0; i < sends; i++ {
			if err := sys.Eng.Read(bdf, pick(i), buf); err != nil {
				log.Fatal(err)
			}
		}
		return float64(sys.Dev.Now()-before) / sends
	}
	randCy = measure(func(int) uint64 { return iovas[next()%poolBuffers] })
	hotCy = measure(func(int) uint64 { return iovas[0] })
	return
}

// runRIOMMU measures rIOMMU device-side cycles for sequential vs random use.
func runRIOMMU() (seqCy, randCy float64) {
	sys, err := sim.NewSystem(sim.RIOMMU, 1<<15)
	if err != nil {
		log.Fatal(err)
	}
	bdf := pci.NewBDF(0, 3, 0)
	prot, err := sys.ProtectionFor(bdf, []uint32{4, poolBuffers * 2, poolBuffers * 2})
	if err != nil {
		log.Fatal(err)
	}
	iovas := premap(sys, prot)

	lcg := uint64(0x9E3779B97F4A7C15)
	next := func() uint64 { lcg ^= lcg << 13; lcg ^= lcg >> 7; lcg ^= lcg << 17; return lcg }
	buf := make([]byte, 64)
	measure := func(pick func(i int) uint64) float64 {
		before := sys.Dev.Now()
		for i := 0; i < sends; i++ {
			if err := sys.Eng.Read(bdf, pick(i), buf); err != nil {
				log.Fatal(err)
			}
		}
		return float64(sys.Dev.Now()-before) / sends
	}
	seqCy = measure(func(i int) uint64 { return iovas[i%poolBuffers] })
	randCy = measure(func(int) uint64 { return iovas[next()%poolBuffers] })
	return
}

func premap(sys *sim.System, prot driver.Protection) []uint64 {
	iovas := make([]uint64, poolBuffers)
	for i := range iovas {
		f, err := sys.Mem.AllocFrame()
		if err != nil {
			log.Fatal(err)
		}
		iovas[i], err = prot.Map(driver.RingTx, f.PA(), 2048, pci.DirToDevice)
		if err != nil {
			log.Fatal(err)
		}
	}
	return iovas
}
