// Quickstart: create an rIOMMU, attach a ring-based device, map a buffer at
// byte granularity, translate DMAs through the flat table, and watch the
// protection react — the minimal tour of the library's core API.
package main

import (
	"fmt"
	"log"

	"riommu/internal/core"
	"riommu/internal/cycles"
	"riommu/internal/mem"
	"riommu/internal/pci"
)

func main() {
	// A simulated machine: physical memory, a virtual CPU clock, the cost
	// model calibrated to the paper's measurements.
	mm, err := mem.New(1024 * mem.PageSize)
	if err != nil {
		log.Fatal(err)
	}
	clk := &cycles.Clock{}
	model := cycles.DefaultModel()

	// The rIOMMU hardware and the OS driver for one device with a single
	// 256-entry flat table (ring 0).
	hw := core.New(clk, &model, mm)
	dev := pci.NewBDF(0, 3, 0)
	drv, err := core.NewDriver(clk, &model, mm, hw, dev, []uint32{256}, true /* coherent walks */)
	if err != nil {
		log.Fatal(err)
	}

	// A 1500-byte packet buffer at an arbitrary (unaligned!) address:
	// rIOMMU protection is byte-granular, not page-granular.
	frame, err := mm.AllocFrame()
	if err != nil {
		log.Fatal(err)
	}
	bufPA := frame.PA() + 100

	iova, err := drv.Map(0, bufPA, 1500, pci.DirFromDevice)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mapped  pa=%#x size=1500 -> %s\n", uint64(bufPA), core.IOVA(iova))

	// The device translates the rIOVA through the flat table.
	pa, err := hw.Rtranslate(dev, core.IOVA(iova), pci.DirFromDevice)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("device translated offset 0    -> pa=%#x\n", uint64(pa))

	pa, err = hw.Rtranslate(dev, core.IOVA(iova).Add(1000), pci.DirFromDevice)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("device translated offset 1000 -> pa=%#x\n", uint64(pa))

	// Past the buffer's 1500 bytes: I/O page fault, even though the rest of
	// the page is valid memory. This is the fine-grained protection the
	// baseline IOMMU cannot provide (§4).
	if _, err := hw.Rtranslate(dev, core.IOVA(iova).Add(1500), pci.DirFromDevice); err != nil {
		fmt.Printf("offset 1500 faults as it should: %v\n", err)
	}

	// Wrong direction: the mapping allows device writes only.
	if _, err := hw.Rtranslate(dev, core.IOVA(iova), pci.DirToDevice); err != nil {
		fmt.Printf("device read faults as it should: %v\n", err)
	}

	// Unmap and close the burst: one rIOTLB invalidation, then the IOVA is
	// dead.
	if err := drv.Unmap(0, iova, 0, true /* end of burst */); err != nil {
		log.Fatal(err)
	}
	if _, err := hw.Rtranslate(dev, core.IOVA(iova), pci.DirFromDevice); err != nil {
		fmt.Printf("after unmap the IOVA is dead: %v\n", err)
	}

	st := hw.Stats()
	fmt.Printf("\nstats: %d translations, %d faults, %d invalidations, CPU spent %d cycles on (un)mapping\n",
		st.Translations, st.Faults, st.Invalidations, clk.Now())
}
