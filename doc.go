// Package riommu is a full reproduction of "rIOMMU: Efficient IOMMU for I/O
// Devices that Employ Ring Buffers" (Malka, Amit, Ben-Yehuda, Tsafrir —
// ASPLOS 2015) as a Go library.
//
// The paper proposes replacing the IOMMU's hierarchical page tables with
// per-ring flat tables for high-bandwidth devices (NICs, PCIe SSDs) that
// interact with the OS through circular rings: IOVAs become flat-table
// indices (allocation is two integer increments), the rIOTLB holds one
// entry per ring (every translation implicitly invalidates the previous
// one), and explicit invalidations happen only at the end of unmap bursts.
//
// This module implements the complete system: the rIOMMU (internal/core),
// the baseline Intel VT-d-style IOMMU with its four Linux protection modes
// (internal/baseline, internal/iommu, internal/pagetable, internal/iova,
// internal/iotlb), ring-based device models and drivers (internal/ring,
// internal/device, internal/driver, internal/dma), the paper's benchmarks
// (internal/workload) over a deterministic cycle-accounting simulator
// (internal/cycles, internal/sim), and an experiment harness that
// regenerates every table and figure of the evaluation
// (internal/experiments; cmd/riommu-bench).
//
// See README.md for a tour, DESIGN.md for the system inventory and
// methodology, and EXPERIMENTS.md for paper-versus-measured results.
package riommu
