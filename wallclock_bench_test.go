package riommu

// Wall-clock benchmarks of the simulator's hot paths, plus allocation
// regression tests that pin those paths at zero allocations per operation.
//
// Unlike bench_test.go — whose ReportMetric columns are *virtual* cycles and
// must stay byte-identical across optimizations — this file measures the
// simulator itself: ns/op and allocs/op of the map/unmap flows, the radix
// walk, the IOTLB hit path, and a whole campaign cell. The committed baseline
// lives in BENCH_wallclock.txt; `make bench-wallclock` compares a fresh run
// against it with cmd/benchdiff.
//
//	go test -run TestHotPathAllocs -bench 'MapUnmap|Walk|IOTLB|CampaignCell'

import (
	"testing"

	"riommu/internal/campaign"
	"riommu/internal/core"
	"riommu/internal/cycles"
	"riommu/internal/device"
	"riommu/internal/dma"
	"riommu/internal/iommu"
	"riommu/internal/iotlb"
	"riommu/internal/iova"
	"riommu/internal/mem"
	"riommu/internal/pagetable"
	"riommu/internal/pci"
	"riommu/internal/sim"
	"riommu/internal/traffic"

	baselinedrv "riommu/internal/baseline"
)

// newBaselineDriver builds a strict/defer-mode driver over fresh memory.
func newBaselineDriver(b *testing.B, mode baselinedrv.Mode) (*baselinedrv.Driver, *mem.PhysMem) {
	b.Helper()
	mm := mustMem(b, 4096*mem.PageSize)
	clk := &cycles.Clock{}
	model := cycles.DefaultModel()
	hier, err := pagetable.NewHierarchy(mm)
	if err != nil {
		b.Fatal(err)
	}
	hw := iommu.New(clk, &model, hier, 0)
	drv, err := baselinedrv.New(mode, clk, &model, mm, hw, pci.NewBDF(0, 3, 0), false)
	if err != nil {
		b.Fatal(err)
	}
	return drv, mm
}

func benchMapUnmap(b *testing.B, mode baselinedrv.Mode) {
	drv, mm := newBaselineDriver(b, mode)
	f, _ := mm.AllocFrame()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		iovaAddr, err := drv.Map(0, f.PA(), 1500, pci.DirFromDevice)
		if err != nil {
			b.Fatal(err)
		}
		if err := drv.Unmap(0, iovaAddr, 1500, true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMapUnmapStrict times one strict-mode map+unmap pair (Figure 4 +
// Figure 6 with inline per-entry invalidation).
func BenchmarkMapUnmapStrict(b *testing.B) { benchMapUnmap(b, baselinedrv.Strict) }

// BenchmarkMapUnmapDefer times the deferred-invalidation pair (bulk flush
// every 250 unmaps amortized into the mean).
func BenchmarkMapUnmapDefer(b *testing.B) { benchMapUnmap(b, baselinedrv.Defer) }

// BenchmarkMapUnmapRiommu times the rIOMMU driver's map+unmap pair (flat
// rPTE write, end-of-burst invalidation every 200 pairs).
func BenchmarkMapUnmapRiommu(b *testing.B) {
	mm := mustMem(b, 1024*mem.PageSize)
	clk := &cycles.Clock{}
	model := cycles.DefaultModel()
	hw := core.New(clk, &model, mm)
	drv, err := core.NewDriver(clk, &model, mm, hw, pci.NewBDF(0, 3, 0), []uint32{1024}, true)
	if err != nil {
		b.Fatal(err)
	}
	f, _ := mm.AllocFrame()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		iovaAddr, err := drv.Map(0, f.PA(), 1500, pci.DirFromDevice)
		if err != nil {
			b.Fatal(err)
		}
		if err := drv.Unmap(0, iovaAddr, 0, i%200 == 199); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWalk times a warm 4-level radix walk (tables resident, IOTLB not
// consulted) — the page-walker inner loop of the baseline miss path.
func BenchmarkWalk(b *testing.B) {
	mm := mustMem(b, 1024*mem.PageSize)
	clk := &cycles.Clock{}
	model := cycles.DefaultModel()
	sp, err := pagetable.NewSpace(mm, clk, &model, true)
	if err != nil {
		b.Fatal(err)
	}
	f, _ := mm.AllocFrame()
	const iovaAddr = 42 << mem.PageShift
	if err := sp.Map(iovaAddr, f, pci.DirBidi); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sp.Walk(iovaAddr, pci.DirFromDevice); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIOTLB times the baseline IOMMU's translation hit path: IOTLB
// lookup with LRU promotion, permission check, address composition.
func BenchmarkIOTLB(b *testing.B) {
	mm := mustMem(b, 1024*mem.PageSize)
	clk := &cycles.Clock{}
	model := cycles.DefaultModel()
	hier, err := pagetable.NewHierarchy(mm)
	if err != nil {
		b.Fatal(err)
	}
	hw := iommu.New(clk, &model, hier, 0)
	bdf := pci.NewBDF(0, 5, 0)
	sp, err := pagetable.NewSpace(mm, clk, &model, true)
	if err != nil {
		b.Fatal(err)
	}
	if err := hier.Attach(bdf, sp); err != nil {
		b.Fatal(err)
	}
	f, _ := mm.AllocFrame()
	const iovaAddr = 7 << mem.PageShift
	if err := sp.Map(iovaAddr, f, pci.DirBidi); err != nil {
		b.Fatal(err)
	}
	if _, err := hw.Translate(bdf, iovaAddr, 64, pci.DirFromDevice); err != nil {
		b.Fatal(err) // warm the entry
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hw.Translate(bdf, iovaAddr, 64, pci.DirFromDevice); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineReadU64 times the DMA engine's aligned-quadword fast path:
// descriptor and completion reads are 8-byte aligned and never cross a page,
// so ReadU64 does one translate + audit + copy without entering the chunked
// transfer loop. This pins the fast path against regressions (e.g. the chunk
// loop creeping back in).
func BenchmarkEngineReadU64(b *testing.B) {
	mm := mustMem(b, 1024*mem.PageSize)
	clk := &cycles.Clock{}
	model := cycles.DefaultModel()
	hier, err := pagetable.NewHierarchy(mm)
	if err != nil {
		b.Fatal(err)
	}
	hw := iommu.New(clk, &model, hier, 0)
	bdf := pci.NewBDF(0, 5, 0)
	sp, err := pagetable.NewSpace(mm, clk, &model, true)
	if err != nil {
		b.Fatal(err)
	}
	if err := hier.Attach(bdf, sp); err != nil {
		b.Fatal(err)
	}
	f, _ := mm.AllocFrame()
	const iovaAddr = 7 << mem.PageShift
	if err := sp.Map(iovaAddr, f, pci.DirBidi); err != nil {
		b.Fatal(err)
	}
	eng := dma.NewEngine(mm, hw)
	if _, err := eng.ReadU64(bdf, iovaAddr); err != nil {
		b.Fatal(err) // warm the IOTLB entry
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.ReadU64(bdf, iovaAddr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCampaignCell times one complete fault-campaign NIC cell — system
// construction, supervised rounds, teardown — the unit the campaign grid and
// CI chaos gate scale by.
func BenchmarkCampaignCell(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opts := campaign.Options{
			Seed:    42,
			Rates:   []float64{0},
			Modes:   []sim.Mode{sim.RIOMMU},
			Rounds:  10,
			Workers: 1,
		}
		if _, err := campaign.Run(opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTrafficCell times one complete fleet-traffic churn cell — engine
// construction, warmup and measured ticks over a mixed kernel/bypass
// connection table, teardown — the unit the figS2 sweep and the campaign
// -churn axis scale by.
func BenchmarkTrafficCell(b *testing.B) {
	cfg := traffic.Config{
		Mode:            sim.RIOMMU,
		Profile:         device.ProfileMLX,
		Seed:            42,
		TableSlots:      16,
		MeanFlowPackets: 4,
		BypassPermille:  250,
		Ticks:           6,
		WarmupTicks:     2,
		MsgsPerTick:     4,
		IncastEvery:     3,
		IncastFan:       6,
		Diurnal:         true,
		Audit:           true,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := traffic.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// TestHotPathAllocs pins the steady-state translation hot paths at zero
// allocations per operation: a regression here silently costs wall-clock
// across every experiment, so it hard-fails CI (satellite 3, PR 4).
func TestHotPathAllocs(t *testing.T) {
	t.Run("iotlb-hit", func(t *testing.T) {
		tlb := iotlb.New(64)
		key := iotlb.Key{BDF: pci.NewBDF(0, 3, 0), IOVAPFN: 7}
		tlb.Insert(key, iotlb.Entry{Frame: 9, Perm: pci.DirBidi})
		if n := testing.AllocsPerRun(200, func() {
			if _, ok := tlb.Lookup(key); !ok {
				t.Fatal("lookup missed")
			}
		}); n != 0 {
			t.Errorf("IOTLB hit allocates %.1f objects per op, want 0", n)
		}
	})

	t.Run("riotlb-hit", func(t *testing.T) {
		mm, err := mem.New(1024 * mem.PageSize)
		if err != nil {
			t.Fatal(err)
		}
		clk := &cycles.Clock{}
		model := cycles.DefaultModel()
		hw := core.New(clk, &model, mm)
		bdf := pci.NewBDF(0, 3, 0)
		drv, err := core.NewDriver(clk, &model, mm, hw, bdf, []uint32{64}, true)
		if err != nil {
			t.Fatal(err)
		}
		f, _ := mm.AllocFrame()
		iovaAddr, err := drv.Map(0, f.PA(), 1500, pci.DirFromDevice)
		if err != nil {
			t.Fatal(err)
		}
		iv := core.IOVA(iovaAddr)
		if _, err := hw.Rtranslate(bdf, iv, pci.DirFromDevice); err != nil {
			t.Fatal(err) // warm the rIOTLB entry
		}
		if n := testing.AllocsPerRun(200, func() {
			if _, err := hw.Rtranslate(bdf, iv, pci.DirFromDevice); err != nil {
				t.Fatal(err)
			}
		}); n != 0 {
			t.Errorf("rIOTLB hit allocates %.1f objects per op, want 0", n)
		}
	})

	t.Run("warm-radix-walk", func(t *testing.T) {
		mm, err := mem.New(1024 * mem.PageSize)
		if err != nil {
			t.Fatal(err)
		}
		clk := &cycles.Clock{}
		model := cycles.DefaultModel()
		sp, err := pagetable.NewSpace(mm, clk, &model, true)
		if err != nil {
			t.Fatal(err)
		}
		f, _ := mm.AllocFrame()
		const iovaAddr = 42 << mem.PageShift
		if err := sp.Map(iovaAddr, f, pci.DirBidi); err != nil {
			t.Fatal(err)
		}
		if n := testing.AllocsPerRun(200, func() {
			if _, _, err := sp.Walk(iovaAddr, pci.DirFromDevice); err != nil {
				t.Fatal(err)
			}
		}); n != 0 {
			t.Errorf("warm radix walk allocates %.1f objects per op, want 0", n)
		}
	})

	t.Run("iova-recycle", func(t *testing.T) {
		clk := &cycles.Clock{}
		model := cycles.DefaultModel()
		for _, tc := range []struct {
			name  string
			alloc iova.Allocator
		}{
			{"const", iova.NewConst(clk, &model, iova.DMA32PFN-1)},
			{"linux", iova.NewLinux(clk, &model, iova.DMA32PFN-1)},
		} {
			// Warm: the first alloc/free carves the range and sizes the
			// recycle stacks; steady state must then be allocation-free.
			pfn, err := tc.alloc.Alloc(1)
			if err != nil {
				t.Fatalf("%s: %v", tc.name, err)
			}
			if err := tc.alloc.Free(pfn); err != nil {
				t.Fatalf("%s: %v", tc.name, err)
			}
			if n := testing.AllocsPerRun(200, func() {
				p, err := tc.alloc.Alloc(1)
				if err != nil {
					t.Fatal(err)
				}
				if err := tc.alloc.Free(p); err != nil {
					t.Fatal(err)
				}
			}); n != 0 {
				t.Errorf("%s IOVA alloc/free recycle allocates %.1f objects per op, want 0", tc.name, n)
			}
		}
	})

	t.Run("iova-churn-storm", func(t *testing.T) {
		// Connection-churn shape: a window of live heavy-tailed ranges with
		// interleaved opens and closes, not a single ping-ponged size. Once
		// one storm has warmed the per-size free stacks, the constant-time
		// allocator's steady state must stay allocation-free.
		clk := &cycles.Clock{}
		model := cycles.DefaultModel()
		alloc := iova.NewConst(clk, &model, iova.DMA32PFN-1)
		rng := uint64(0x5eed)
		next := func() uint64 {
			rng += 0x9E3779B97F4A7C15
			z := rng
			z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
			z = (z ^ (z >> 27)) * 0x94D049BB133111EB
			return z ^ (z >> 31)
		}
		const window = 64
		live := make([]uint64, 0, window)
		step := func() {
			p, err := alloc.Alloc(1 + next()%4)
			if err != nil {
				t.Fatal(err)
			}
			live = append(live, p)
			if len(live) >= window {
				j := int(next() % uint64(len(live)))
				if err := alloc.Free(live[j]); err != nil {
					t.Fatal(err)
				}
				live[j] = live[len(live)-1]
				live = live[:len(live)-1]
			}
		}
		for i := 0; i < 4*window; i++ {
			step() // warm storm: carve the working set, size the stacks
		}
		if n := testing.AllocsPerRun(200, step); n != 0 {
			t.Errorf("warm churn-storm step allocates %.1f objects per op, want 0", n)
		}
	})
}
