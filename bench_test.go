package riommu

// One benchmark per table and figure of the paper's evaluation, plus
// per-operation microbenchmarks of the competing map/unmap primitives.
//
// The experiment benchmarks report the headline quantity of their
// table/figure through b.ReportMetric (virtual cycles or ratios); wall-clock
// ns/op measures only the simulator itself. Run with:
//
//	go test -bench=. -benchmem

import (
	"testing"

	"riommu/internal/core"
	"riommu/internal/cycles"
	"riommu/internal/device"
	"riommu/internal/experiments"
	"riommu/internal/iommu"
	"riommu/internal/mem"
	"riommu/internal/pagetable"
	"riommu/internal/pci"
	"riommu/internal/sim"
	"riommu/internal/workload"

	baselinedrv "riommu/internal/baseline"
)

// BenchmarkTable1 regenerates the (un)map cycle breakdown and reports the
// strict-mode IOVA-allocation cost (the paper's surprise finding).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunTable1(experiments.Serial(experiments.Quick))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.MapAlloc[sim.Strict], "strict-alloc-vcycles")
		b.ReportMetric(r.UnmapInv[sim.Strict], "strict-inv-vcycles")
	}
}

// BenchmarkFigure7 regenerates the per-packet cost stacks and reports
// C_strict/C_none (the paper's ~9.4x).
func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFigure7(experiments.Serial(experiments.Quick))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Total[sim.Strict]/r.CNone, "Cstrict/Cnone")
		b.ReportMetric(r.CNone, "Cnone-vcycles")
	}
}

// BenchmarkFigure8 regenerates the model-validation sweep and reports the
// worst model error across all points.
func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFigure8(experiments.Serial(experiments.Quick))
		if err != nil {
			b.Fatal(err)
		}
		worst := 0.0
		for _, p := range append(append([]experiments.Figure8Point{}, r.Sweep...), r.Modes...) {
			if p.ModelGbs == 0 {
				continue
			}
			e := (p.MeasuredGbs - p.ModelGbs) / p.ModelGbs
			if e < 0 {
				e = -e
			}
			if e > worst {
				worst = e
			}
		}
		b.ReportMetric(worst*100, "worst-model-err-%")
	}
}

// benchmarkStream is the shared driver for the Figure 12 stream panels.
func benchmarkStream(b *testing.B, profile device.NICProfile, mode sim.Mode) workload.Result {
	b.Helper()
	r, err := workload.NetperfStream(mode, profile, workload.StreamOpts{Messages: 80, WarmupMessages: 40})
	if err != nil {
		b.Fatal(err)
	}
	return r
}

// BenchmarkFigure12MLXStream reproduces the top-left panel's headline:
// riommu vs strict vs none throughput on the 40 Gbps NIC.
func BenchmarkFigure12MLXStream(b *testing.B) {
	for i := 0; i < b.N; i++ {
		strict := benchmarkStream(b, device.ProfileMLX, sim.Strict)
		riommu := benchmarkStream(b, device.ProfileMLX, sim.RIOMMU)
		none := benchmarkStream(b, device.ProfileMLX, sim.None)
		b.ReportMetric(riommu.Throughput/strict.Throughput, "riommu/strict")
		b.ReportMetric(riommu.Throughput/none.Throughput, "riommu/none")
		b.ReportMetric(riommu.Throughput, "riommu-Gbps")
	}
}

// BenchmarkFigure12BRCMStream reproduces the bottom-left panel: everything
// but strict saturates the 10 GbE line; CPU becomes the metric.
func BenchmarkFigure12BRCMStream(b *testing.B) {
	for i := 0; i < b.N; i++ {
		strict := benchmarkStream(b, device.ProfileBRCM, sim.Strict)
		riommu := benchmarkStream(b, device.ProfileBRCM, sim.RIOMMU)
		none := benchmarkStream(b, device.ProfileBRCM, sim.None)
		b.ReportMetric(strict.Throughput, "strict-Gbps")
		b.ReportMetric(riommu.Throughput, "riommu-Gbps")
		b.ReportMetric(riommu.CPU/none.CPU, "riommu/none-cpu")
	}
}

// BenchmarkFigure12Apache covers the apache panels (1KB request rate).
func BenchmarkFigure12Apache(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opts := workload.ApacheOpts{FileBytes: 1024, Requests: 80, Warmup: 20}
		strict, err := workload.Apache(sim.Strict, device.ProfileMLX, opts)
		if err != nil {
			b.Fatal(err)
		}
		riommu, err := workload.Apache(sim.RIOMMU, device.ProfileMLX, opts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(riommu.Throughput, "riommu-req/s")
		b.ReportMetric(riommu.Throughput/strict.Throughput, "riommu/strict")
	}
}

// BenchmarkFigure12Memcached covers the memcached panels.
func BenchmarkFigure12Memcached(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opts := workload.MemcachedOpts{Operations: 400, Warmup: 120}
		strict, err := workload.Memcached(sim.Strict, device.ProfileMLX, opts)
		if err != nil {
			b.Fatal(err)
		}
		riommu, err := workload.Memcached(sim.RIOMMU, device.ProfileMLX, opts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(riommu.Throughput, "riommu-ops/s")
		b.ReportMetric(riommu.Throughput/strict.Throughput, "riommu/strict")
	}
}

// BenchmarkFigure12RR covers the request-response panels.
func BenchmarkFigure12RR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opts := workload.RROpts{Transactions: 300, Warmup: 80}
		strict, err := workload.NetperfRR(sim.Strict, device.ProfileMLX, opts)
		if err != nil {
			b.Fatal(err)
		}
		riommu, err := workload.NetperfRR(sim.RIOMMU, device.ProfileMLX, opts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(riommu.Throughput/strict.Throughput, "riommu/strict")
		b.ReportMetric(riommu.LatencyMicros, "riommu-rtt-us")
	}
}

// BenchmarkTable2 regenerates the full normalized matrix (expensive).
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunTable2(experiments.Serial(experiments.Quick))
		if err != nil {
			b.Fatal(err)
		}
		key := experiments.BenchKey{Bench: "stream", NIC: "mlx"}
		b.ReportMetric(r.ThroughputRatio(key, sim.RIOMMU, sim.Strict), "mlx-stream-riommu/strict")
		b.ReportMetric(r.ThroughputRatio(key, sim.RIOMMU, sim.None), "mlx-stream-riommu/none")
	}
}

// BenchmarkTable3 regenerates the RR round-trip table.
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunTable3(experiments.Serial(experiments.Quick))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.RTT["mlx"][sim.Strict], "mlx-strict-rtt-us")
		b.ReportMetric(r.RTT["mlx"][sim.None], "mlx-none-rtt-us")
	}
}

// BenchmarkMissPenalty regenerates the §5.3 microbenchmark.
func BenchmarkMissPenalty(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunMissPenalty(experiments.Serial(experiments.Quick))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.MissPenaltyCycles, "miss-penalty-vcycles")
	}
}

// BenchmarkPrefetchers regenerates the §5.4 comparison.
func BenchmarkPrefetchers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunPrefetchers(experiments.Serial(experiments.Quick))
		if err != nil {
			b.Fatal(err)
		}
		big := r.Histories[len(r.Histories)-1]
		b.ReportMetric(r.HitRates["markov"][big], "markov-hit-rate")
		b.ReportMetric(r.RIOTLBHitRate, "riotlb-hit-rate")
	}
}

// BenchmarkBonnie regenerates the §4 SATA applicability check.
func BenchmarkBonnie(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunBonnie(experiments.Serial(experiments.Quick))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.MBps[sim.Strict]/r.MBps[sim.None], "strict/none")
	}
}

// --- Microbenchmarks of the competing primitives themselves. ---

// BenchmarkRIOMMUMapUnmap measures one rIOMMU map+unmap pair: wall time is
// simulator speed; the metric is the virtual cycles the pair costs the core.
func BenchmarkRIOMMUMapUnmap(b *testing.B) {
	mm := mustMem(b, 1024*mem.PageSize)
	clk := &cycles.Clock{}
	model := cycles.DefaultModel()
	hw := core.New(clk, &model, mm)
	bdf := pci.NewBDF(0, 3, 0)
	drv, err := core.NewDriver(clk, &model, mm, hw, bdf, []uint32{1024}, true)
	if err != nil {
		b.Fatal(err)
	}
	f, _ := mm.AllocFrame()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		iova, err := drv.Map(0, f.PA(), 1500, pci.DirFromDevice)
		if err != nil {
			b.Fatal(err)
		}
		if err := drv.Unmap(0, iova, 0, i%200 == 199); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(clk.Now())/float64(b.N), "vcycles/pair")
}

// BenchmarkBaselineMapUnmap measures the strict-mode pair for contrast.
func BenchmarkBaselineMapUnmap(b *testing.B) {
	mm := mustMem(b, 4096*mem.PageSize)
	clk := &cycles.Clock{}
	model := cycles.DefaultModel()
	hier, err := pagetable.NewHierarchy(mm)
	if err != nil {
		b.Fatal(err)
	}
	hw := iommu.New(clk, &model, hier, 0)
	bdf := pci.NewBDF(0, 3, 0)
	drv, err := baselinedrv.New(baselinedrv.Strict, clk, &model, mm, hw, bdf, false)
	if err != nil {
		b.Fatal(err)
	}
	f, _ := mm.AllocFrame()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		iova, err := drv.Map(0, f.PA(), 1500, pci.DirFromDevice)
		if err != nil {
			b.Fatal(err)
		}
		if err := drv.Unmap(0, iova, 1500, true); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(clk.Now())/float64(b.N), "vcycles/pair")
}

// BenchmarkRtranslate measures the rIOMMU hardware fast path (sequential
// translations served by the prefetched next rPTE).
func BenchmarkRtranslate(b *testing.B) {
	mm := mustMem(b, 1024*mem.PageSize)
	clk := &cycles.Clock{}
	model := cycles.DefaultModel()
	hw := core.New(clk, &model, mm)
	bdf := pci.NewBDF(0, 3, 0)
	drv, err := core.NewDriver(clk, &model, mm, hw, bdf, []uint32{1024}, true)
	if err != nil {
		b.Fatal(err)
	}
	f, _ := mm.AllocFrame()
	iovas := make([]core.IOVA, 512)
	for i := range iovas {
		v, err := drv.Map(0, f.PA(), 1500, pci.DirFromDevice)
		if err != nil {
			b.Fatal(err)
		}
		iovas[i] = core.IOVA(v)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hw.Rtranslate(bdf, iovas[i%len(iovas)], pci.DirFromDevice); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPathology regenerates the §3.2 allocator-pathology sweep.
func BenchmarkPathology(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunPathology(experiments.Serial(experiments.Quick))
		if err != nil {
			b.Fatal(err)
		}
		last := r.LiveSets[len(r.LiveSets)-1]
		b.ReportMetric(r.AvgAllocCycles[last], "alloc-vcycles@8k-live")
		b.ReportMetric(float64(r.MaxWalkNodes[last]), "worst-walk-nodes")
	}
}

// BenchmarkAblations regenerates the design-choice sweeps.
func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunAblations(experiments.Serial(experiments.Quick))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.BurstC[1]/r.BurstC[200], "burst1/burst200-C")
		b.ReportMetric(r.PrefetchHitRate, "prefetch-rate")
	}
}

// BenchmarkNVMe regenerates the NVMe extension experiment.
func BenchmarkNVMe(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunNVMe(experiments.Serial(experiments.Quick))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.KIOPS[sim.RIOMMU], "riommu-kiops")
		b.ReportMetric(r.KIOPS[sim.Strict], "strict-kiops")
	}
}
