package riommu

// End-to-end checks that every example application builds, runs, and prints
// the load-bearing results. The simulator is deterministic, so the key
// numbers are stable across runs and platforms.

import (
	"os/exec"
	"strings"
	"testing"
)

func runExample(t *testing.T, name string) string {
	t.Helper()
	cmd := exec.Command("go", "run", "./examples/"+name)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go run ./examples/%s: %v\n%s", name, err, out)
	}
	return string(out)
}

func wantContains(t *testing.T, out string, wants ...string) {
	t.Helper()
	for _, w := range wants {
		if !strings.Contains(out, w) {
			t.Errorf("output missing %q\n--- output:\n%s", w, out)
		}
	}
}

func TestExampleQuickstart(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go run")
	}
	out := runExample(t, "quickstart")
	wantContains(t, out,
		"mapped  pa=",
		"offset 1500 faults as it should",
		"device read faults as it should",
		"after unmap the IOVA is dead",
		"5 translations, 3 faults, 1 invalidations",
	)
}

func TestExampleNetperf(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go run")
	}
	out := runExample(t, "netperf")
	wantContains(t, out,
		"Netperf TCP stream, mlx profile",
		"20.48", // the none-mode anchor throughput
		"riommu/strict",
		"(paper: 7.56x)",
	)
}

func TestExampleWebserver(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go run")
	}
	out := runExample(t, "webserver")
	wantContains(t, out,
		"Apache 1KB files on mlx",
		"Apache 1MB files on brcm",
		"strict baseline protection costs up to several fold",
	)
}

func TestExampleNVMe(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go run")
	}
	out := runExample(t, "nvme")
	wantContains(t, out,
		"device consumed 8 write commands strictly in order",
		"burst of 8 unmaps -> 1 rIOTLB invalidation(s)",
		`block 3 reads back as "DDDDDDDD"`,
		"0 faults",
	)
}

func TestExampleStorage(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go run")
	}
	out := runExample(t, "storage")
	wantContains(t, out,
		"NVMe under rIOMMU",
		"SATA/AHCI under rIOMMU",
		"drive completed slots in order:",
		"out-of-order unmaps stayed exact",
	)
}

func TestExampleUserlevel(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go run")
	}
	out := runExample(t, "userlevel")
	wantContains(t, out,
		"IOTLB miss penalty",
		"paper: ~1532 cy",
		"in-order ring sends (prefetched next rPTE)",
	)
}

func TestExampleFaultinjection(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go run")
	}
	out := runExample(t, "faultinjection")
	// The full security matrix, row by row.
	wantContains(t, out,
		"DMA to unmapped address             BLOCKED   BLOCKED   BLOCKED   landed",
		"write via read-only mapping         BLOCKED   BLOCKED   BLOCKED   landed",
		"use-after-unmap (burst closed)      BLOCKED   landed    BLOCKED   landed",
		"overflow past buffer on same page   landed    landed    BLOCKED   landed",
	)
}
