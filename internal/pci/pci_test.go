package pci

import (
	"testing"
	"testing/quick"
)

func TestBDFRoundTrip(t *testing.T) {
	f := func(bus, dev, fn uint8) bool {
		b := NewBDF(bus, dev, fn)
		return b.Bus() == bus && b.Device() == dev&0x1f && b.Function() == fn&0x7
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBDFDevFn(t *testing.T) {
	b := NewBDF(0x3f, 0x1a, 0x5)
	if b.Bus() != 0x3f {
		t.Errorf("Bus = %#x", b.Bus())
	}
	if b.DevFn() != 0x1a<<3|0x5 {
		t.Errorf("DevFn = %#x", b.DevFn())
	}
	if b.String() != "3f:1a.5" {
		t.Errorf("String = %q", b.String())
	}
}

func TestDirAllows(t *testing.T) {
	cases := []struct {
		perm, req Dir
		want      bool
	}{
		{DirBidi, DirToDevice, true},
		{DirBidi, DirFromDevice, true},
		{DirBidi, DirBidi, true},
		{DirToDevice, DirToDevice, true},
		{DirToDevice, DirFromDevice, false},
		{DirFromDevice, DirToDevice, false},
		{DirFromDevice, DirFromDevice, true},
		{DirNone, DirToDevice, false},
		{DirNone, DirFromDevice, false},
		{DirBidi, DirNone, false}, // a DMA must have a direction
		{DirToDevice, DirBidi, false},
	}
	for _, c := range cases {
		if got := c.perm.Allows(c.req); got != c.want {
			t.Errorf("%v.Allows(%v) = %v, want %v", c.perm, c.req, got, c.want)
		}
	}
}

func TestDirString(t *testing.T) {
	names := map[Dir]string{
		DirNone:       "none",
		DirToDevice:   "to-device",
		DirFromDevice: "from-device",
		DirBidi:       "bidirectional",
		Dir(7):        "dir(7)",
	}
	for d, want := range names {
		if got := d.String(); got != want {
			t.Errorf("Dir(%d).String() = %q, want %q", uint8(d), got, want)
		}
	}
}
