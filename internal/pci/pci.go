// Package pci defines the identifiers the PCI protocol attaches to DMA
// transactions: the 16-bit bus-device-function request identifier and the DMA
// direction. These are shared by the baseline IOMMU, the rIOMMU, the DMA
// engine, and the device models.
package pci

import "fmt"

// BDF is the 16-bit PCI request identifier: 8-bit bus, 5-bit device, 3-bit
// function. Every DMA carries a BDF that the (r)IOMMU uses to locate the
// issuing device's translation structures.
type BDF uint16

// NewBDF assembles a BDF from its components. Out-of-range components are
// masked to their architectural widths.
func NewBDF(bus uint8, dev, fn uint8) BDF {
	return BDF(uint16(bus)<<8 | uint16(dev&0x1f)<<3 | uint16(fn&0x7))
}

// Bus returns the 8-bit bus number (indexes the IOMMU root table).
func (b BDF) Bus() uint8 { return uint8(b >> 8) }

// DevFn returns the 8-bit device+function concatenation (indexes the context
// table).
func (b BDF) DevFn() uint8 { return uint8(b) }

// Device returns the 5-bit device number.
func (b BDF) Device() uint8 { return uint8(b>>3) & 0x1f }

// Function returns the 3-bit function number.
func (b BDF) Function() uint8 { return uint8(b) & 0x7 }

// String renders the BDF in the conventional bb:dd.f form.
func (b BDF) String() string {
	return fmt.Sprintf("%02x:%02x.%d", b.Bus(), b.Device(), b.Function())
}

// Dir is a DMA direction, a 2-bit permission mask exactly as in the paper's
// rPTE.dir field: bit 0 allows device reads from memory (transmit), bit 1
// allows device writes to memory (receive).
type Dir uint8

const (
	// DirNone permits no access.
	DirNone Dir = 0
	// DirToDevice permits the device to read memory (Tx DMA).
	DirToDevice Dir = 1
	// DirFromDevice permits the device to write memory (Rx DMA).
	DirFromDevice Dir = 2
	// DirBidi permits both.
	DirBidi Dir = DirToDevice | DirFromDevice
)

// Allows reports whether a DMA of direction req is permitted under the
// permission mask d (the paper's `e.rpte.dir & dir` check).
func (d Dir) Allows(req Dir) bool { return req != 0 && d&req == req }

// String names the direction.
func (d Dir) String() string {
	switch d {
	case DirNone:
		return "none"
	case DirToDevice:
		return "to-device"
	case DirFromDevice:
		return "from-device"
	case DirBidi:
		return "bidirectional"
	default:
		return fmt.Sprintf("dir(%d)", uint8(d))
	}
}
