package prefetch

// Markov implements Markov prefetching [Joseph & Grunwald]: a transition
// table records which page historically followed each page; on an access to
// p, the successors recorded for p are prefetched.
type Markov struct {
	base
	table   *boundedMap
	prev    uint64
	prevGen uint64
	first   bool
}

// NewMarkov creates a Markov prefetcher.
func NewMarkov(cfg Config) *Markov {
	return &Markov{base: newBase(cfg), table: newBoundedMap(cfg.History), first: true}
}

// Name identifies the prefetcher.
func (m *Markov) Name() string { return "markov" }

// Access implements Prefetcher. The baseline variant only learns
// transitions whose source address is still mapped — an invalidated address
// has no PTE and the original designs assume a persistent address space —
// which is why single-use DMA streams leave them with no history to predict
// from (§5.4). The modified variant stores invalidated addresses.
func (m *Markov) Access(p uint64) bool {
	hit := m.lookup(p)
	// Baseline learning requires the source mapping to still be the same
	// live mapping it observed; a recycled address is a different mapping.
	if !m.first && (m.cfg.RetainInvalidated || (m.isMapped(m.prev) && m.generation(m.prev) == m.prevGen)) {
		m.table.add(m.prev, p)
	}
	m.prev, m.prevGen, m.first = p, m.generation(p), false
	for _, succ := range m.table.get(p) {
		m.prefetchInto(succ)
	}
	return hit
}

// Map implements Prefetcher.
func (m *Markov) Map(p uint64) { m.onMap(p) }

// Unmap implements Prefetcher. In the baseline variant the history entry is
// destroyed with the mapping; the modified variant retains it.
func (m *Markov) Unmap(p uint64) {
	m.onUnmap(p)
	if !m.cfg.RetainInvalidated {
		delete(m.table.m, p)
	}
}

// Recency implements recency-based preloading [Saulsbury et al.]: pages are
// kept on an LRU stack; when p is accessed, the pages that were its stack
// neighbors are prefetched, exploiting the observation that pages used
// together recur together.
type Recency struct {
	base
	stack *lruSet
}

// NewRecency creates a Recency prefetcher with an LRU stack of History pages.
func NewRecency(cfg Config) *Recency {
	return &Recency{base: newBase(cfg), stack: newLRUSet(cfg.History)}
}

// Name identifies the prefetcher.
func (r *Recency) Name() string { return "recency" }

// Access implements Prefetcher.
func (r *Recency) Access(p uint64) bool {
	hit := r.lookup(p)
	// Prefetch the stack neighbors of p as it is promoted.
	if n, ok := r.stack.nodes[p]; ok {
		if n.prev != nil {
			r.prefetchInto(n.prev.page)
		}
		if n.next != nil {
			r.prefetchInto(n.next.page)
		}
	}
	r.stack.Insert(p)
	r.stack.Touch(p)
	return hit
}

// Map implements Prefetcher.
func (r *Recency) Map(p uint64) { r.onMap(p) }

// Unmap implements Prefetcher.
func (r *Recency) Unmap(p uint64) {
	r.onUnmap(p)
	if !r.cfg.RetainInvalidated {
		r.stack.Remove(p)
	}
}

// Distance implements distance prefetching [Kandiraju & Sivasubramaniam]: a
// table keyed by the stride between consecutive accesses predicts the
// strides that follow, and the predicted pages are prefetched.
type Distance struct {
	base
	table *boundedMap
	prev  uint64
	delta uint64
	first bool
}

// distanceTableCap bounds the stride table. Compactness is the design's
// selling point — regular programs exhibit few distinct strides [Kandiraju &
// Sivasubramaniam] — and exactly the assumption scattered single-use DMA
// addresses violate, which is why the paper found Distance ineffective.
const distanceTableCap = 256

// NewDistance creates a Distance prefetcher.
func NewDistance(cfg Config) *Distance {
	capHist := cfg.History
	if capHist > distanceTableCap {
		capHist = distanceTableCap
	}
	return &Distance{base: newBase(cfg), table: newBoundedMap(capHist), first: true}
}

// Name identifies the prefetcher.
func (d *Distance) Name() string { return "distance" }

// Access implements Prefetcher.
func (d *Distance) Access(p uint64) bool {
	hit := d.lookup(p)
	if !d.first {
		nd := p - d.prev // modular delta; works for negative strides too
		if d.delta != 0 {
			d.table.add(d.delta, nd)
		}
		for _, next := range d.table.get(nd) {
			d.prefetchInto(p + next)
		}
		d.delta = nd
	}
	d.prev, d.first = p, false
	return hit
}

// Map implements Prefetcher.
func (d *Distance) Map(p uint64) { d.onMap(p) }

// Unmap implements Prefetcher. The baseline variant's stride history does
// not survive invalidation (the original proposal assumes a persistent
// address space); the modified variant retains it.
func (d *Distance) Unmap(p uint64) {
	d.onUnmap(p)
	if !d.cfg.RetainInvalidated {
		capHist := d.cfg.History
		if capHist > distanceTableCap {
			capHist = distanceTableCap
		}
		d.table = newBoundedMap(capHist)
		d.first = true
		d.delta = 0
	}
}

// NewAll returns one instance of each prefetcher under the same config, in
// the paper's order.
func NewAll(cfg Config) []Prefetcher {
	return []Prefetcher{NewMarkov(cfg), NewRecency(cfg), NewDistance(cfg)}
}
