// Package prefetch implements the three TLB prefetchers the paper compares
// against in §5.4 — Markov [Joseph & Grunwald, ISCA'97], Recency [Saulsbury
// et al., ISCA'00] and Distance [Kandiraju & Sivasubramaniam, ISCA'02] — as
// surveyed by Kandiraju & Sivasubramaniam. They are driven by DMA traces
// (package trace) exactly as the paper drove them with KVM/QEMU logs.
//
// The paper found the prefetchers' baseline versions ineffective, because
// IOVAs are invalidated immediately after use (nothing remains to predict
// from). Their modified versions retain invalidated addresses in their
// history but must verify each prediction is currently mapped before
// inserting it. We implement both via Config.RetainInvalidated.
package prefetch

import "riommu/internal/trace"

// Config shapes a prefetcher instance.
type Config struct {
	// TLBEntries is the size of the simulated IOTLB the prefetcher feeds.
	TLBEntries int
	// History bounds the prediction structure (the knob §5.4 sweeps: the
	// prefetchers only become effective when History exceeds the ring's
	// live-IOVA count).
	History int
	// RetainInvalidated keeps unmapped pages in the history (the paper's
	// modification); predictions are then filtered against the live
	// mapping set, modeling the mandated page-table check.
	RetainInvalidated bool
}

// DefaultConfig mirrors the paper's setting: a realistic IOTLB and a
// moderate history.
func DefaultConfig() Config {
	return Config{TLBEntries: 64, History: 1024, RetainInvalidated: true}
}

// Stats accumulates a prefetcher evaluation.
type Stats struct {
	Accesses    uint64
	Hits        uint64 // access found in TLB (demand-hit or prefetched)
	Prefetches  uint64 // predictions inserted
	Suppressed  uint64 // predictions dropped by the mapped-check
	Invalidates uint64
}

// HitRate returns Hits/Accesses.
func (s Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

// Prefetcher consumes a page-access stream and maintains a simulated TLB.
type Prefetcher interface {
	Name() string
	// Access records a translation of page p, returning whether it hit the
	// simulated TLB.
	Access(p uint64) bool
	// Map records an OS map of page p.
	Map(p uint64)
	// Unmap records an OS unmap of page p.
	Unmap(p uint64)
	// Stats returns the accumulated counters.
	Stats() Stats
}

// Evaluate drives a prefetcher with a recorded trace.
func Evaluate(p Prefetcher, tr *trace.Trace) Stats {
	for _, e := range tr.Events {
		switch e.Kind {
		case trace.EvTranslate:
			p.Access(e.Page)
		case trace.EvMap:
			p.Map(e.Page)
		case trace.EvUnmap:
			p.Unmap(e.Page)
		}
	}
	return p.Stats()
}

// base provides the shared TLB, mapped-set, and history bookkeeping. The
// mapped set tracks a generation number per live page, so predictors can
// distinguish "this page is mapped" from "the mapping I learned about is
// still the same one" — a single-use IOVA that was recycled is a different
// mapping even at the same address.
type base struct {
	cfg    Config
	stats  Stats
	tlb    *lruSet
	mapped map[uint64]uint64 // live page -> map generation
	genSeq uint64
}

func newBase(cfg Config) base {
	if cfg.TLBEntries <= 0 {
		cfg.TLBEntries = 64
	}
	if cfg.History <= 0 {
		cfg.History = 1024
	}
	return base{
		cfg:    cfg,
		tlb:    newLRUSet(cfg.TLBEntries),
		mapped: make(map[uint64]uint64),
	}
}

// isMapped reports whether p currently has a live mapping.
func (b *base) isMapped(p uint64) bool {
	_, ok := b.mapped[p]
	return ok
}

// generation returns p's live-mapping generation (0 if unmapped).
func (b *base) generation(p uint64) uint64 { return b.mapped[p] }

// lookup checks the TLB and counts the access.
func (b *base) lookup(p uint64) bool {
	b.stats.Accesses++
	if b.tlb.Contains(p) {
		b.stats.Hits++
		b.tlb.Touch(p)
		return true
	}
	b.tlb.Insert(p)
	return false
}

// prefetchInto inserts a prediction. Predictions of unmapped pages are
// always suppressed: filling an IOTLB entry requires a page-table walk, and
// the walk fails for an unmapped page. (This is the "mandated" check §5.4
// describes for the modified variants; for the baseline variants it is
// simply hardware physics.)
func (b *base) prefetchInto(p uint64) {
	if !b.isMapped(p) {
		b.stats.Suppressed++
		return
	}
	if !b.tlb.Contains(p) {
		b.tlb.Insert(p)
		b.stats.Prefetches++
	}
}

func (b *base) onMap(p uint64) {
	b.genSeq++
	b.mapped[p] = b.genSeq
}

func (b *base) onUnmap(p uint64) {
	delete(b.mapped, p)
	b.stats.Invalidates++
	// The OS invalidation always purges the TLB entry.
	b.tlb.Remove(p)
}

func (b *base) Stats() Stats { return b.stats }

// lruSet is a fixed-capacity LRU page set.
type lruSet struct {
	cap   int
	nodes map[uint64]*lruNode
	head  *lruNode
	tail  *lruNode
}

type lruNode struct {
	page       uint64
	prev, next *lruNode
}

func newLRUSet(capacity int) *lruSet {
	return &lruSet{cap: capacity, nodes: make(map[uint64]*lruNode, capacity)}
}

func (s *lruSet) Len() int { return len(s.nodes) }

func (s *lruSet) Contains(p uint64) bool {
	_, ok := s.nodes[p]
	return ok
}

func (s *lruSet) Insert(p uint64) {
	if _, ok := s.nodes[p]; ok {
		s.Touch(p)
		return
	}
	if len(s.nodes) >= s.cap {
		s.evict()
	}
	n := &lruNode{page: p}
	s.nodes[p] = n
	s.pushFront(n)
}

func (s *lruSet) Touch(p uint64) {
	n, ok := s.nodes[p]
	if !ok {
		return
	}
	s.unlink(n)
	s.pushFront(n)
}

func (s *lruSet) Remove(p uint64) {
	if n, ok := s.nodes[p]; ok {
		s.unlink(n)
		delete(s.nodes, p)
	}
}

func (s *lruSet) evict() {
	if s.tail != nil {
		s.Remove(s.tail.page)
	}
}

func (s *lruSet) pushFront(n *lruNode) {
	n.prev = nil
	n.next = s.head
	if s.head != nil {
		s.head.prev = n
	}
	s.head = n
	if s.tail == nil {
		s.tail = n
	}
}

func (s *lruSet) unlink(n *lruNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		s.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		s.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

// boundedMap is a FIFO-bounded map used for prediction tables.
type boundedMap struct {
	cap   int
	m     map[uint64][]uint64
	order []uint64
}

func newBoundedMap(capacity int) *boundedMap {
	return &boundedMap{cap: capacity, m: make(map[uint64][]uint64, capacity)}
}

func (b *boundedMap) get(k uint64) []uint64 { return b.m[k] }

// add appends v to k's successor list (max 2 distinct, most recent first).
func (b *boundedMap) add(k, v uint64) {
	lst, ok := b.m[k]
	if !ok {
		if len(b.m) >= b.cap {
			// Evict the oldest key.
			old := b.order[0]
			b.order = b.order[1:]
			delete(b.m, old)
		}
		b.order = append(b.order, k)
	}
	for i, x := range lst {
		if x == v {
			if i != 0 {
				lst[0], lst[i] = lst[i], lst[0]
				b.m[k] = lst
			}
			return
		}
	}
	lst = append([]uint64{v}, lst...)
	if len(lst) > 2 {
		lst = lst[:2]
	}
	b.m[k] = lst
}

func (b *boundedMap) len() int { return len(b.m) }
