package prefetch

import (
	"testing"

	"riommu/internal/pci"
	"riommu/internal/trace"
)

var dev = pci.NewBDF(0, 3, 0)

func TestLRUSet(t *testing.T) {
	s := newLRUSet(2)
	s.Insert(1)
	s.Insert(2)
	s.Touch(1)
	s.Insert(3) // evicts 2
	if s.Contains(2) {
		t.Error("LRU eviction failed")
	}
	if !s.Contains(1) || !s.Contains(3) {
		t.Error("wrong contents")
	}
	s.Remove(1)
	if s.Contains(1) || s.Len() != 1 {
		t.Error("Remove failed")
	}
	s.Touch(99) // no-op for absent page
	s.Insert(3) // re-insert promotes, no dup
	if s.Len() != 1 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestBoundedMap(t *testing.T) {
	b := newBoundedMap(2)
	b.add(1, 10)
	b.add(1, 11)
	b.add(1, 10) // promotes 10 to front
	got := b.get(1)
	if len(got) != 2 || got[0] != 10 || got[1] != 11 {
		t.Errorf("get(1) = %v", got)
	}
	b.add(2, 20)
	b.add(3, 30) // evicts key 1 (FIFO)
	if b.get(1) != nil {
		t.Error("FIFO eviction failed")
	}
	if b.len() != 2 {
		t.Errorf("len = %d", b.len())
	}
	// Successor list caps at 2.
	b.add(2, 21)
	b.add(2, 22)
	if l := b.get(2); len(l) != 2 || l[0] != 22 {
		t.Errorf("successors = %v", l)
	}
}

// TestBaselineVariantsIneffective reproduces §5.4's first finding: with
// invalidated addresses purged from history (the prefetchers' original
// form), the streaming DMA workload yields almost no hits.
func TestBaselineVariantsIneffective(t *testing.T) {
	tr := SyntheticRingTrace(dev, 512, 6, 2, 10)
	cfg := Config{TLBEntries: 64, History: 8192, RetainInvalidated: false}
	for _, p := range NewAll(cfg) {
		s := Evaluate(p, tr)
		if rate := s.HitRate(); rate > 0.05 {
			t.Errorf("%s baseline hit rate = %.2f, want ~0 (IOVAs are single-use)", p.Name(), rate)
		}
	}
}

// TestModifiedMarkovRecencyNeedLargeHistory reproduces the second finding:
// Markov and Recency predict most accesses, but only once their history
// exceeds the ring size; Distance stays ineffective.
func TestModifiedMarkovRecencyNeedLargeHistory(t *testing.T) {
	const ringPages = 512
	tr := SyntheticRingTrace(dev, ringPages, 6, 2, 10)

	small := Config{TLBEntries: 64, History: ringPages / 4, RetainInvalidated: true}
	large := Config{TLBEntries: 64, History: ringPages * 4, RetainInvalidated: true}

	for _, mk := range []func(Config) Prefetcher{
		func(c Config) Prefetcher { return NewMarkov(c) },
		func(c Config) Prefetcher { return NewRecency(c) },
	} {
		ps := Evaluate(mk(small), tr)
		pl := Evaluate(mk(large), tr)
		if ps.HitRate() > 0.3 {
			t.Errorf("%s with small history: hit rate %.2f, want low", mk(small).Name(), ps.HitRate())
		}
		if pl.HitRate() < 0.6 {
			t.Errorf("%s with history > ring: hit rate %.2f, want most accesses predicted", mk(large).Name(), pl.HitRate())
		}
	}

	d := Evaluate(NewDistance(large), tr)
	if d.HitRate() > 0.3 {
		t.Errorf("distance hit rate = %.2f; the paper found it ineffective", d.HitRate())
	}
}

// TestMappedCheckSuppressesStale: the mandated page-table check must keep
// unmapped predictions out of the TLB.
func TestMappedCheckSuppressesStale(t *testing.T) {
	tr := SyntheticRingTrace(dev, 64, 4, 1, 30)
	cfg := Config{TLBEntries: 64, History: 1024, RetainInvalidated: true}
	m := NewMarkov(cfg)
	s := Evaluate(m, tr)
	if s.Suppressed == 0 {
		t.Error("expected some predictions suppressed by the mapped-check")
	}
	// No stale entries: everything in the TLB at the end must be mapped.
	for page := range m.tlb.nodes {
		if !m.isMapped(page) {
			// The demand-insert on miss also caches the current access,
			// which is legitimately mapped at access time; after its unmap
			// the entry was purged. Anything left must be mapped.
			t.Errorf("unmapped page %#x cached", page)
		}
	}
}

func TestEvaluateCounters(t *testing.T) {
	tr := SyntheticRingTrace(dev, 16, 2, 1, 0)
	s := Evaluate(NewMarkov(DefaultConfig()), tr)
	if s.Accesses != 32 {
		t.Errorf("Accesses = %d, want 32", s.Accesses)
	}
	if s.Invalidates != 32 {
		t.Errorf("Invalidates = %d, want 32", s.Invalidates)
	}
}

func TestPrefetcherNames(t *testing.T) {
	names := map[string]bool{}
	for _, p := range NewAll(DefaultConfig()) {
		names[p.Name()] = true
	}
	for _, want := range []string{"markov", "recency", "distance"} {
		if !names[want] {
			t.Errorf("missing prefetcher %q", want)
		}
	}
}

func TestSequentialStrideWorkloadFavorsDistance(t *testing.T) {
	// Sanity check that Distance is not broken per se: on a persistent
	// stride-1 workload (no unmaps) it predicts nearly everything.
	tr := &trace.Trace{}
	for i := 0; i < 4096; i++ {
		p := uint64(0x1000+i%128) << 12
		if i < 128 {
			tr.Record(trace.EvMap, dev, p, pci.DirFromDevice)
		}
	}
	for i := 0; i < 4096; i++ {
		tr.Record(trace.EvTranslate, dev, uint64(0x1000+i%128)<<12, pci.DirFromDevice)
	}
	s := Evaluate(NewDistance(DefaultConfig()), tr)
	if s.HitRate() < 0.8 {
		t.Errorf("distance on persistent stride workload: hit rate %.2f, want high", s.HitRate())
	}
}
