package prefetch

import (
	"riommu/internal/pci"
	"riommu/internal/trace"
)

// SyntheticRingTrace synthesizes the streaming ring workload of §5.4: an Rx ring of
// pre-mapped single-use buffers. Each slot's buffer is translated once, then
// unmapped and immediately replaced by a freshly mapped buffer (the refill),
// so the ring stays full of mapped pages ahead of the access frontier.
// Slot pages are scattered (allocator-assigned, not sequential), and per lap
// a fraction `churnPct` of refills receive a brand-new page, modeling IOVA
// allocator drift. With rings > 1, accesses interleave across rings as real
// Rx/Tx traffic does.
func SyntheticRingTrace(bdf pci.BDF, ringPages, laps, rings, churnPct int) *trace.Trace {
	tr := &trace.Trace{}
	lcg := uint64(88172645463325252)
	next := func() uint64 {
		lcg ^= lcg << 13
		lcg ^= lcg >> 7
		lcg ^= lcg << 17
		return lcg
	}
	freshPage := func() uint64 { return (next() % (1 << 20) << 12) }

	// Assign scattered pages per slot per ring and pre-map the rings.
	pages := make([][]uint64, rings)
	for r := range pages {
		pages[r] = make([]uint64, ringPages)
		for i := range pages[r] {
			pages[r][i] = freshPage()
			tr.Record(trace.EvMap, bdf, pages[r][i], pci.DirFromDevice)
		}
	}
	// Rings drain in irregular interleaving, as real Rx/Tx traffic does:
	// each step services a pseudorandomly chosen ring's frontier. This
	// preserves per-address successor locality (Markov/Recency) but
	// destroys stride patterns (Distance), matching §5.4's findings.
	frontier := make([]int, rings)
	total := ringPages * laps * rings
	r, burst := 0, 0
	for step := 0; step < total; step++ {
		if burst == 0 { // bursty interleave: stay on one ring for a while
			r = int(next() % uint64(rings))
			burst = 4 + int(next()%28)
		}
		burst--
		i := frontier[r] % ringPages
		frontier[r]++
		p := pages[r][i]
		tr.Record(trace.EvTranslate, bdf, p, pci.DirFromDevice)
		tr.Record(trace.EvUnmap, bdf, p, pci.DirNone)
		// Refill: usually the same page is recycled (LIFO buffer pool +
		// allocator reuse); sometimes the allocator drifts.
		if int(next()%100) < churnPct {
			pages[r][i] = freshPage()
		}
		tr.Record(trace.EvMap, bdf, pages[r][i], pci.DirFromDevice)
	}
	return tr
}
