package mem

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Error("New(0) should fail")
	}
	if _, err := New(PageSize + 1); err == nil {
		t.Error("New(PageSize+1) should fail")
	}
	m, err := New(16 * PageSize)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if m.Size() != 16*PageSize {
		t.Errorf("Size = %d", m.Size())
	}
	if m.Frames() != 16 {
		t.Errorf("Frames = %d", m.Frames())
	}
	// Frame 0 reserved.
	if m.FreeFrames() != 15 {
		t.Errorf("FreeFrames = %d, want 15", m.FreeFrames())
	}
}

func TestNewTooSmallErrors(t *testing.T) {
	if _, err := New(1); err == nil {
		t.Error("New(1) did not return an error")
	}
}

func TestAllocFrameZeroesAndExhaustion(t *testing.T) {
	m := mustMem(t, 4*PageSize) // frames 1..3 usable
	seen := map[PFN]bool{}
	for i := 0; i < 3; i++ {
		f, err := m.AllocFrame()
		if err != nil {
			t.Fatalf("AllocFrame %d: %v", i, err)
		}
		if f == 0 {
			t.Fatal("allocated reserved frame 0")
		}
		if seen[f] {
			t.Fatalf("frame %d allocated twice", f)
		}
		seen[f] = true
		b, err := m.Read(f.PA(), PageSize)
		if err != nil {
			t.Fatal(err)
		}
		for _, x := range b {
			if x != 0 {
				t.Fatal("frame not zeroed")
			}
		}
	}
	if _, err := m.AllocFrame(); err == nil {
		t.Error("expected exhaustion error")
	}
}

func TestAllocFrameReZeroesRecycled(t *testing.T) {
	m := mustMem(t, 4*PageSize)
	f, _ := m.AllocFrame()
	if err := m.Write(f.PA(), []byte{0xff, 0xff}); err != nil {
		t.Fatal(err)
	}
	if err := m.FreeFrame(f); err != nil {
		t.Fatal(err)
	}
	// Drain and find the recycled frame again.
	for i := 0; i < 3; i++ {
		g, err := m.AllocFrame()
		if err != nil {
			t.Fatal(err)
		}
		b, _ := m.Read(g.PA(), 2)
		if b[0] != 0 || b[1] != 0 {
			t.Fatalf("recycled frame %d not zeroed", g)
		}
	}
}

func TestAllocFramesContiguous(t *testing.T) {
	m := mustMem(t, 16*PageSize)
	f, err := m.AllocFrames(4)
	if err != nil {
		t.Fatalf("AllocFrames(4): %v", err)
	}
	// The run must be contiguous and writable end to end.
	if err := m.Fill(f.PA(), 4*PageSize, 0xab); err != nil {
		t.Fatalf("Fill across run: %v", err)
	}
	if _, err := m.AllocFrames(0); err == nil {
		t.Error("AllocFrames(0) should fail")
	}
	if _, err := m.AllocFrames(100); err == nil {
		t.Error("AllocFrames(100) should fail on 16-frame memory")
	}
}

func TestAllocFramesSkipsHoles(t *testing.T) {
	m := mustMem(t, 8*PageSize)
	var frames []PFN
	for i := 0; i < 7; i++ {
		f, err := m.AllocFrame()
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, f)
	}
	// Free frames 2,3 and 5,6 (two 2-frame holes) plus a singleton.
	for _, f := range []PFN{frames[1], frames[2], frames[4], frames[5]} {
		if err := m.FreeFrame(f); err != nil {
			t.Fatal(err)
		}
	}
	f, err := m.AllocFrames(2)
	if err != nil {
		t.Fatalf("AllocFrames(2) with holes available: %v", err)
	}
	if err := m.Fill(f.PA(), 2*PageSize, 1); err != nil {
		t.Fatalf("hole not contiguous: %v", err)
	}
	if _, err := m.AllocFrames(3); err == nil {
		t.Error("AllocFrames(3) should fail: only 2-frame holes remain")
	}
}

func TestFreeFrameErrors(t *testing.T) {
	m := mustMem(t, 4*PageSize)
	if err := m.FreeFrame(0); err == nil {
		t.Error("freeing reserved frame 0 should fail")
	}
	if err := m.FreeFrame(2); err == nil {
		t.Error("freeing unallocated frame should fail")
	}
	if err := m.FreeFrame(99); err == nil {
		t.Error("freeing out-of-range frame should fail")
	}
	f, _ := m.AllocFrame()
	if err := m.FreeFrame(f); err != nil {
		t.Errorf("FreeFrame: %v", err)
	}
	if err := m.FreeFrame(f); err == nil {
		t.Error("double free should fail")
	}
}

func TestPinning(t *testing.T) {
	m := mustMem(t, 4*PageSize)
	f, _ := m.AllocFrame()
	pa := f.PA() + 100

	if m.Pinned(pa) {
		t.Error("fresh frame reported pinned")
	}
	if err := m.Pin(pa); err != nil {
		t.Fatalf("Pin: %v", err)
	}
	if !m.Pinned(pa) {
		t.Error("Pinned = false after Pin")
	}
	if err := m.FreeFrame(f); err == nil {
		t.Error("freeing pinned frame should fail")
	}
	if err := m.Pin(pa); err != nil { // pin count 2
		t.Fatal(err)
	}
	if err := m.Unpin(pa); err != nil {
		t.Fatal(err)
	}
	if !m.Pinned(pa) {
		t.Error("frame unpinned too early (count should be 1)")
	}
	if err := m.Unpin(pa); err != nil {
		t.Fatal(err)
	}
	if m.Pinned(pa) {
		t.Error("frame still pinned after balanced unpins")
	}
	if err := m.Unpin(pa); err == nil {
		t.Error("unpinning unpinned frame should fail")
	}
	if err := m.FreeFrame(f); err != nil {
		t.Errorf("FreeFrame after unpin: %v", err)
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	m := mustMem(t, 4*PageSize)
	f, _ := m.AllocFrame()
	pa := f.PA()

	want := []byte{1, 2, 3, 4, 5}
	if err := m.Write(pa+10, want); err != nil {
		t.Fatal(err)
	}
	got, err := m.Read(pa+10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Read = %v, want %v", got, want)
		}
	}
	dst := make([]byte, 5)
	if err := m.ReadInto(pa+10, dst); err != nil {
		t.Fatal(err)
	}
	if dst[4] != 5 {
		t.Errorf("ReadInto = %v", dst)
	}
}

func TestTypedAccessors(t *testing.T) {
	m := mustMem(t, 4*PageSize)
	f, _ := m.AllocFrame()
	pa := f.PA()

	if err := m.WriteU64(pa, 0xdeadbeefcafebabe); err != nil {
		t.Fatal(err)
	}
	v, err := m.ReadU64(pa)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xdeadbeefcafebabe {
		t.Errorf("ReadU64 = %#x", v)
	}
	if err := m.WriteU32(pa+8, 0x12345678); err != nil {
		t.Fatal(err)
	}
	w, err := m.ReadU32(pa + 8)
	if err != nil {
		t.Fatal(err)
	}
	if w != 0x12345678 {
		t.Errorf("ReadU32 = %#x", w)
	}
}

func TestAccessToUnallocatedFails(t *testing.T) {
	m := mustMem(t, 8*PageSize)
	// Frame 2 not allocated.
	if _, err := m.Read(PA(2*PageSize), 4); err == nil {
		t.Error("read of unallocated frame should fail")
	}
	if err := m.Write(PA(2*PageSize), []byte{1}); err == nil {
		t.Error("write to unallocated frame should fail")
	}
	if _, err := m.ReadU64(PA(m.Size() - 4)); err == nil {
		t.Error("read past end should fail")
	}
	// Range spanning allocated into unallocated must fail.
	f, _ := m.AllocFrame()
	if err := m.Fill(f.PA(), 2*PageSize, 1); err == nil {
		t.Error("fill spanning into unallocated frame should fail")
	}
	var ae *AccessError
	_, err := m.Read(PA(2*PageSize), 4)
	if !errors.As(err, &ae) {
		t.Errorf("error type = %T, want *AccessError", err)
	} else if ae.Error() == "" {
		t.Error("empty error string")
	}
}

func TestPFNConversions(t *testing.T) {
	if PFN(3).PA() != PA(3*PageSize) {
		t.Error("PFN.PA wrong")
	}
	if PFNOf(PA(3*PageSize+17)) != 3 {
		t.Error("PFNOf wrong")
	}
}

func TestCachelinesSpanned(t *testing.T) {
	cases := []struct {
		pa   PA
		size uint64
		want uint64
	}{
		{0, 0, 0},
		{0, 1, 1},
		{0, 64, 1},
		{0, 65, 2},
		{63, 2, 2},
		{64, 64, 1},
		{60, 8, 2},
		{0, 128, 2},
	}
	for _, c := range cases {
		if got := CachelinesSpanned(c.pa, c.size); got != c.want {
			t.Errorf("CachelinesSpanned(%d,%d) = %d, want %d", c.pa, c.size, got, c.want)
		}
	}
}

// Property: alloc/free/alloc cycles never hand out frame 0, never double
// allocate, and FreeFrames is conserved.
func TestAllocFreeProperty(t *testing.T) {
	f := func(ops []bool) bool {
		m := mustMem(t, 32*PageSize)
		live := map[PFN]bool{}
		var order []PFN
		for _, alloc := range ops {
			if alloc {
				fr, err := m.AllocFrame()
				if err != nil {
					if len(live) != 31 {
						return false // exhaustion only when truly full
					}
					continue
				}
				if fr == 0 || live[fr] {
					return false
				}
				live[fr] = true
				order = append(order, fr)
			} else if len(order) > 0 {
				fr := order[len(order)-1]
				order = order[:len(order)-1]
				if err := m.FreeFrame(fr); err != nil {
					return false
				}
				delete(live, fr)
			}
		}
		return m.FreeFrames() == 31-len(live)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: writes round-trip through reads at arbitrary in-frame offsets.
func TestWriteReadProperty(t *testing.T) {
	m := mustMem(t, 8*PageSize)
	f, _ := m.AllocFrame()
	base := f.PA()
	prop := func(off uint16, data []byte) bool {
		o := uint64(off) % (PageSize - 256)
		if len(data) > 256 {
			data = data[:256]
		}
		if err := m.Write(base+PA(o), data); err != nil {
			return false
		}
		got, err := m.Read(base+PA(o), uint64(len(data)))
		if err != nil {
			return false
		}
		for i := range data {
			if got[i] != data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
