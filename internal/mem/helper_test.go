package mem

import "testing"

// mustMem allocates simulated physical memory or fails the test.
func mustMem(tb testing.TB, bytes uint64) *PhysMem {
	tb.Helper()
	m, err := New(bytes)
	if err != nil {
		tb.Fatalf("mem.New(%d): %v", bytes, err)
	}
	return m
}
