// Package mem implements the simulated physical memory substrate: a frame
// allocator over a flat byte-addressable space, page pinning, and typed
// accessors. All simulated structures that the (r)IOMMU hardware reads —
// radix page tables, flat rIOMMU tables, DMA descriptors, target buffers —
// live inside a PhysMem so that translations and DMAs are exercised against
// real bytes rather than mocked.
package mem

import (
	"encoding/binary"
	"fmt"
	"sync"
)

// Architectural constants shared by the whole simulator (Intel x86-64 / VT-d).
const (
	// PageShift is log2 of the page size.
	PageShift = 12
	// PageSize is the 4 KiB page size.
	PageSize = 1 << PageShift
	// PageMask masks the offset-within-page bits.
	PageMask = PageSize - 1
	// CachelineSize is the size of one CPU cacheline.
	CachelineSize = 64
)

// PA is a physical address in the simulated memory.
type PA uint64

// PFN is a physical frame number (PA >> PageShift).
type PFN uint64

// PA returns the base physical address of the frame.
func (p PFN) PA() PA { return PA(p) << PageShift }

// PFNOf returns the frame number containing pa.
func PFNOf(pa PA) PFN { return PFN(pa >> PageShift) }

// AccessError describes an invalid physical memory access.
type AccessError struct {
	Op   string // "read", "write", "alloc", "free", "pin", "unpin"
	Addr PA
	Size uint64
	Why  string
}

func (e *AccessError) Error() string {
	return fmt.Sprintf("mem: %s [pa=%#x size=%d]: %s", e.Op, e.Addr, e.Size, e.Why)
}

// FaultHook is the memory fault-injection interface (implemented by
// faults.Engine). It is consulted only on the bulk Read/ReadInto/Write
// paths — the data paths DMAs and payload copies use — so metadata accessed
// through the typed accessors (page tables, queue cursors) stays intact and
// descriptor corruption is modeled separately at the device layer.
type FaultHook interface {
	// ReadFault may corrupt buf, the data just read from pa, in place.
	ReadFault(pa PA, buf []byte) bool
	// WriteFault may corrupt stored, the bytes just written at pa, in
	// place, and reports whether the cacheline at pa must be poisoned.
	WriteFault(pa PA, stored []byte) (poison bool)
}

// PhysMem is a simulated physical memory with a simple page-frame allocator.
// Frame 0 is reserved (so a zero PA can act as a null pointer in page
// tables). PhysMem is not safe for concurrent use.
//
// The free list is lazy: frames at or above the watermark have never been
// allocated and are handed out in ascending order without ever being
// materialized in a slice, while the free stack holds only explicitly freed
// frames. The observable allocation order is byte-identical to the eager
// descending free list this replaces (the deterministic-layout test pins
// it); the one operation whose legacy behavior a watermark cannot mirror —
// reserving a specific never-allocated frame while freed frames exist —
// materializes the full legacy list first and proceeds identically.
type PhysMem struct {
	data      []byte
	frames    int
	free      []PFN // LIFO stack of explicitly freed frames
	watermark PFN   // lazy mode: lowest never-allocated frame
	lazy      bool  // free list not materialized (the common case)
	alloced   []bool
	pinCount  []uint32
	dirty     []bool // dirty[f]: frame f's bytes may differ from zero

	bk *backing // pooled backing this instance borrowed (nil if fresh-only)

	hook   FaultHook
	poison map[uint64]struct{} // poisoned cacheline indices
}

// backing is the pooled per-instance state recycled between PhysMem worlds
// of the same size: the flat byte array plus the frame-metadata arrays.
// Reuse is observation-equivalent to freshly zeroed arrays: every read/write
// path checks that the touched frames are allocated, AllocFrame/AllocFrames
// zero each dirty frame as it is handed out, and New clears the metadata
// prefix the previous life touched. The dirty array persists across lives —
// it is precisely the memory of which recycled frames still hold stale
// bytes — so a frame that was allocated but never written (posted-but-unused
// RX buffers are the bulk of a NIC world) costs no memclr in the next life.
// Pooling exists because experiment and campaign grids build one
// multi-megabyte world per cell, and zeroing those arrays dominated the
// simulator's wall-clock time.
type backing struct {
	data     []byte
	alloced  []bool
	pinCount []uint32
	dirty    []bool
	hi       int // frames [0, hi) saw metadata traffic in earlier lives
}

// pools buckets backings by exact byte size, so a 128 MiB NIC world and a
// 64 MiB block world recycle independently instead of evicting each other.
var pools sync.Map // uint64 (size) -> *sync.Pool

func getBacking(size uint64) *backing {
	p, _ := pools.LoadOrStore(size, &sync.Pool{})
	pool := p.(*sync.Pool)
	frames := int(size / PageSize)
	if v := pool.Get(); v != nil {
		b := v.(*backing)
		// Clear only the metadata prefix earlier lives touched: the
		// watermark allocator hands frames out in ascending order, so
		// nothing above b.hi was ever set.
		clear(b.alloced[:b.hi])
		clear(b.pinCount[:b.hi])
		return b
	}
	return &backing{
		data:     make([]byte, size),
		alloced:  make([]bool, frames),
		pinCount: make([]uint32, frames),
		dirty:    make([]bool, frames),
	}
}

// New creates a physical memory of the given size in bytes, which must be a
// positive multiple of PageSize.
func New(size uint64) (*PhysMem, error) {
	if size == 0 || size%PageSize != 0 {
		return nil, &AccessError{Op: "alloc", Size: size, Why: "size must be a positive multiple of the page size"}
	}
	bk := getBacking(size)
	m := &PhysMem{
		data:      bk.data,
		frames:    int(size / PageSize),
		watermark: 1, // frame 0 is reserved
		lazy:      true,
		alloced:   bk.alloced,
		pinCount:  bk.pinCount,
		dirty:     bk.dirty,
		bk:        bk,
	}
	m.alloced[0] = true
	// Frame 0 is readable (it is marked allocated) but never handed out, so
	// it must read as zeros even on a recycled backing array.
	m.clearFrame(0)
	return m, nil
}

// clearFrame zeroes frame f's bytes unless they are already known zero.
func (m *PhysMem) clearFrame(f PFN) {
	if m.dirty[f] {
		base := uint64(f.PA())
		clear(m.data[base : base+PageSize])
		m.dirty[f] = false
	}
}

// Release returns the backing arrays to the per-size pool so the next
// PhysMem of the same size skips the large-allocation zeroing cost. The
// PhysMem — and every component holding it — must not be used afterwards.
// Releasing is optional; an unreleased PhysMem is simply garbage-collected.
func (m *PhysMem) Release() {
	if m.bk == nil || m.data == nil {
		m.data = nil
		return
	}
	hi := int(m.watermark)
	if !m.lazy {
		// A materialized free list hands frames out from the top, so the
		// whole metadata range may have been touched.
		hi = m.frames
	}
	if hi > m.bk.hi {
		m.bk.hi = hi
	}
	p, _ := pools.LoadOrStore(uint64(len(m.data)), &sync.Pool{})
	p.(*sync.Pool).Put(m.bk)
	m.data = nil
	m.bk = nil
}

// SetFaultHook installs (or, with nil, removes) the fault-injection hook.
func (m *PhysMem) SetFaultHook(h FaultHook) { m.hook = h }

// PoisonCacheline marks the cacheline containing pa poisoned: bulk reads
// covering it fail with an AccessError until the line is rewritten (the
// semantics of an uncorrectable ECC error).
func (m *PhysMem) PoisonCacheline(pa PA) {
	if m.poison == nil {
		m.poison = make(map[uint64]struct{})
	}
	m.poison[uint64(pa)/CachelineSize] = struct{}{}
}

// ClearPoison removes poison from every cacheline the range touches.
// Writes, fills, and frame allocation clear poison implicitly.
func (m *PhysMem) ClearPoison(pa PA, size uint64) {
	if len(m.poison) == 0 || size == 0 {
		return
	}
	first := uint64(pa) / CachelineSize
	last := (uint64(pa) + size - 1) / CachelineSize
	for l := first; l <= last; l++ {
		delete(m.poison, l)
	}
}

// PoisonedRange reports whether any cacheline in [pa, pa+size) is poisoned.
func (m *PhysMem) PoisonedRange(pa PA, size uint64) bool {
	if len(m.poison) == 0 || size == 0 {
		return false
	}
	first := uint64(pa) / CachelineSize
	last := (uint64(pa) + size - 1) / CachelineSize
	for l := first; l <= last; l++ {
		if _, ok := m.poison[l]; ok {
			return true
		}
	}
	return false
}

// checkPoison fails a read overlapping a poisoned cacheline.
func (m *PhysMem) checkPoison(pa PA, size uint64) error {
	if m.PoisonedRange(pa, size) {
		return &AccessError{Op: "read", Addr: pa, Size: size, Why: "poisoned cacheline (uncorrectable error)"}
	}
	return nil
}

// Size returns the total size of the memory in bytes.
func (m *PhysMem) Size() uint64 { return uint64(len(m.data)) }

// Frames returns the total number of page frames.
func (m *PhysMem) Frames() int { return m.frames }

// FreeFrames returns the number of currently unallocated frames.
func (m *PhysMem) FreeFrames() int {
	if m.lazy {
		return len(m.free) + m.frames - int(m.watermark)
	}
	return len(m.free)
}

// popFrame takes the next free frame in legacy order: the most recently
// freed frame first, then never-allocated frames in ascending order.
func (m *PhysMem) popFrame() (PFN, bool) {
	if n := len(m.free); n > 0 {
		f := m.free[n-1]
		m.free = m.free[:n-1]
		return f, true
	}
	if m.lazy && int(m.watermark) < m.frames {
		f := m.watermark
		m.watermark++
		return f, true
	}
	return 0, false
}

// AllocFrame allocates one zeroed page frame.
func (m *PhysMem) AllocFrame() (PFN, error) {
	f, ok := m.popFrame()
	if !ok {
		return 0, &AccessError{Op: "alloc", Why: "out of physical frames"}
	}
	m.alloced[f] = true
	m.clearFrame(f)
	m.ClearPoison(f.PA(), PageSize)
	return f, nil
}

// AllocFrames allocates n physically contiguous zeroed frames and returns the
// first PFN. Contiguity is required for multi-page rings and flat tables.
func (m *PhysMem) AllocFrames(n int) (PFN, error) {
	if n <= 0 {
		return 0, &AccessError{Op: "alloc", Why: "nonpositive frame count"}
	}
	if n == 1 {
		return m.AllocFrame()
	}
	// First-fit scan for a contiguous run of free frames.
	run := 0
	for f := 1; f < m.frames; f++ {
		if m.alloced[f] {
			run = 0
			continue
		}
		run++
		if run == n {
			first := PFN(f - n + 1)
			for i := 0; i < n; i++ {
				m.takeFrame(first + PFN(i))
				m.clearFrame(first + PFN(i))
			}
			m.ClearPoison(first.PA(), uint64(n)*PageSize)
			return first, nil
		}
	}
	return 0, &AccessError{Op: "alloc", Size: uint64(n) * PageSize, Why: "no contiguous run of free frames"}
}

// takeFrame removes f from the free list and marks it allocated.
func (m *PhysMem) takeFrame(f PFN) {
	if m.lazy && f >= m.watermark {
		if f == m.watermark && len(m.free) == 0 {
			// Legacy list's last element is exactly the watermark frame, so
			// the swap-remove degenerates to a pop.
			m.watermark++
			m.alloced[f] = true
			return
		}
		// Reserving a never-allocated frame out of order perturbs the legacy
		// list in a way a watermark cannot express; fall back to the eager
		// representation (rare: a contiguous multi-frame allocation after
		// frees, e.g. a device re-attach during recovery).
		m.materialize()
	}
	for i, g := range m.free {
		if g == f {
			m.free[i] = m.free[len(m.free)-1]
			m.free = m.free[:len(m.free)-1]
			break
		}
	}
	m.alloced[f] = true
}

// materialize converts the lazy free list into the legacy eager layout: the
// never-allocated frames in descending order followed by the freed-frame
// stack in push order. Pop and swap-remove then behave exactly as the
// original implementation did.
func (m *PhysMem) materialize() {
	full := make([]PFN, 0, m.frames-int(m.watermark)+len(m.free))
	for f := PFN(m.frames - 1); f >= m.watermark; f-- {
		full = append(full, f)
	}
	full = append(full, m.free...)
	m.free = full
	m.lazy = false
}

// FreeFrame releases a previously allocated frame. Freeing a pinned or
// unallocated frame is an error.
func (m *PhysMem) FreeFrame(f PFN) error {
	if err := m.checkFrame("free", f); err != nil {
		return err
	}
	if m.pinCount[f] > 0 {
		return &AccessError{Op: "free", Addr: f.PA(), Why: "frame is pinned"}
	}
	m.alloced[f] = false
	m.free = append(m.free, f)
	return nil
}

// Pin increments the pin count of the frame containing pa. Pinned frames
// model pages locked for in-flight DMA (the paper notes target pages must be
// pinned since DMAs are not restartable).
func (m *PhysMem) Pin(pa PA) error {
	f := PFNOf(pa)
	if err := m.checkFrame("pin", f); err != nil {
		return err
	}
	m.pinCount[f]++
	return nil
}

// Unpin decrements the pin count of the frame containing pa.
func (m *PhysMem) Unpin(pa PA) error {
	f := PFNOf(pa)
	if err := m.checkFrame("unpin", f); err != nil {
		return err
	}
	if m.pinCount[f] == 0 {
		return &AccessError{Op: "unpin", Addr: pa, Why: "frame is not pinned"}
	}
	m.pinCount[f]--
	return nil
}

// Pinned reports whether the frame containing pa has a nonzero pin count.
func (m *PhysMem) Pinned(pa PA) bool {
	f := PFNOf(pa)
	return int(f) < m.frames && m.pinCount[f] > 0
}

func (m *PhysMem) checkFrame(op string, f PFN) error {
	if int(f) >= m.frames {
		return &AccessError{Op: op, Addr: f.PA(), Why: "frame out of range"}
	}
	if f == 0 {
		return &AccessError{Op: op, Addr: 0, Why: "frame 0 is reserved"}
	}
	if !m.alloced[f] {
		return &AccessError{Op: op, Addr: f.PA(), Why: "frame not allocated"}
	}
	return nil
}

func (m *PhysMem) checkRange(op string, pa PA, size uint64) error {
	end := uint64(pa) + size
	if end < uint64(pa) || end > uint64(len(m.data)) {
		return &AccessError{Op: op, Addr: pa, Size: size, Why: "out of bounds"}
	}
	// Every touched frame must be allocated.
	for f := PFNOf(pa); uint64(f.PA()) < end; f++ {
		if !m.alloced[f] {
			return &AccessError{Op: op, Addr: pa, Size: size, Why: fmt.Sprintf("frame %#x not allocated", uint64(f))}
		}
	}
	return nil
}

// Read copies size bytes at pa into a fresh slice.
func (m *PhysMem) Read(pa PA, size uint64) ([]byte, error) {
	if err := m.checkRange("read", pa, size); err != nil {
		return nil, err
	}
	if err := m.checkPoison(pa, size); err != nil {
		return nil, err
	}
	out := make([]byte, size)
	copy(out, m.data[pa:uint64(pa)+size])
	if m.hook != nil {
		m.hook.ReadFault(pa, out)
	}
	return out, nil
}

// ReadInto copies len(dst) bytes at pa into dst.
func (m *PhysMem) ReadInto(pa PA, dst []byte) error {
	if err := m.checkRange("read", pa, uint64(len(dst))); err != nil {
		return err
	}
	if err := m.checkPoison(pa, uint64(len(dst))); err != nil {
		return err
	}
	copy(dst, m.data[pa:])
	if m.hook != nil {
		m.hook.ReadFault(pa, dst)
	}
	return nil
}

// Write copies src into memory at pa. A write repairs any poison its range
// covers; the fault hook may corrupt the stored bytes or re-poison the line.
func (m *PhysMem) Write(pa PA, src []byte) error {
	if err := m.checkRange("write", pa, uint64(len(src))); err != nil {
		return err
	}
	copy(m.data[pa:], src)
	m.markDirty(pa, uint64(len(src)))
	m.ClearPoison(pa, uint64(len(src)))
	if m.hook != nil {
		if m.hook.WriteFault(pa, m.data[pa:uint64(pa)+uint64(len(src))]) {
			m.PoisonCacheline(pa)
		}
	}
	return nil
}

// inFrameFast reports whether a width-byte access at pa stays inside one
// allocated frame — the metadata fast path (page-table entries, rPTEs,
// queue cursors are naturally aligned and never split pages). It subsumes
// checkRange for such accesses: in-bounds, single frame, frame allocated.
// Anything else (page-spanning, out of range) takes the legacy slow path.
func (m *PhysMem) inFrameFast(pa PA, width uint64) bool {
	i := uint64(pa)
	return i&PageMask <= PageSize-width &&
		i <= uint64(len(m.data))-width &&
		m.alloced[i>>PageShift]
}

// ReadU64 reads a little-endian uint64 at pa.
func (m *PhysMem) ReadU64(pa PA) (uint64, error) {
	if m.inFrameFast(pa, 8) {
		return binary.LittleEndian.Uint64(m.data[pa:]), nil
	}
	if err := m.checkRange("read", pa, 8); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(m.data[pa:]), nil
}

// WriteU64 writes a little-endian uint64 at pa.
func (m *PhysMem) WriteU64(pa PA, v uint64) error {
	if !m.inFrameFast(pa, 8) {
		if err := m.checkRange("write", pa, 8); err != nil {
			return err
		}
	}
	binary.LittleEndian.PutUint64(m.data[pa:], v)
	m.markDirty(pa, 8)
	return nil
}

// ReadU32 reads a little-endian uint32 at pa.
func (m *PhysMem) ReadU32(pa PA) (uint32, error) {
	if m.inFrameFast(pa, 4) {
		return binary.LittleEndian.Uint32(m.data[pa:]), nil
	}
	if err := m.checkRange("read", pa, 4); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(m.data[pa:]), nil
}

// WriteU32 writes a little-endian uint32 at pa.
func (m *PhysMem) WriteU32(pa PA, v uint32) error {
	if !m.inFrameFast(pa, 4) {
		if err := m.checkRange("write", pa, 4); err != nil {
			return err
		}
	}
	binary.LittleEndian.PutUint32(m.data[pa:], v)
	m.markDirty(pa, 4)
	return nil
}

// Fill sets size bytes at pa to b, repairing any poison in the range.
func (m *PhysMem) Fill(pa PA, size uint64, b byte) error {
	if err := m.checkRange("write", pa, size); err != nil {
		return err
	}
	for i := uint64(0); i < size; i++ {
		m.data[uint64(pa)+i] = b
	}
	m.markDirty(pa, size)
	m.ClearPoison(pa, size)
	return nil
}

// Span returns a mutable view of [pa, pa+size): the metadata fast path for
// simulated structures touched on every operation (descriptor rings, flat
// rPTE tables). The whole range must be allocated when the view is taken and
// stay allocated for the view's lifetime — it aliases the backing array
// directly, so it must not outlive a Release. Like the typed accessors,
// access through the view bypasses fault hooks and poison (metadata
// integrity is modeled at the device layer, and DMA paths to the same bytes
// still see every store). The range is conservatively marked dirty up front.
func (m *PhysMem) Span(pa PA, size uint64) ([]byte, error) {
	if err := m.checkRange("span", pa, size); err != nil {
		return nil, err
	}
	m.markDirty(pa, size)
	end := uint64(pa) + size
	return m.data[pa:end:end], nil
}

// markDirty records that the frames covering [pa, pa+size) no longer hold
// known-zero bytes; they will be memclr'd if reallocated (possibly in a
// later pooled life of the backing array). Callers have already
// bounds-checked the range. Writes outside the typed accessors, Write, and
// Fill do not exist: every data mutation flows through this closed set, so
// the dirty map is exact.
func (m *PhysMem) markDirty(pa PA, size uint64) {
	if size == 0 {
		return
	}
	first := uint64(pa) >> PageShift
	last := (uint64(pa) + size - 1) >> PageShift
	for f := first; f <= last; f++ {
		m.dirty[f] = true
	}
}

// CachelinesSpanned returns how many cachelines the byte range [pa, pa+size)
// touches; used to charge per-cacheline flush costs.
func CachelinesSpanned(pa PA, size uint64) uint64 {
	if size == 0 {
		return 0
	}
	first := uint64(pa) / CachelineSize
	last := (uint64(pa) + size - 1) / CachelineSize
	return last - first + 1
}
