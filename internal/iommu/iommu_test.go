package iommu

import (
	"testing"

	"riommu/internal/cycles"
	"riommu/internal/mem"
	"riommu/internal/pagetable"
	"riommu/internal/pci"
)

var dev = pci.NewBDF(0, 3, 0)

func setup(t *testing.T, tlbCap int) (*IOMMU, *pagetable.Space, *mem.PhysMem, *cycles.Clock) {
	t.Helper()
	mm := mustMem(t, 512*mem.PageSize)
	clk := &cycles.Clock{}
	model := cycles.DefaultModel()
	hier, err := pagetable.NewHierarchy(mm)
	if err != nil {
		t.Fatal(err)
	}
	u := New(clk, &model, hier, tlbCap)
	sp, err := pagetable.NewSpace(mm, clk, &model, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := hier.Attach(dev, sp); err != nil {
		t.Fatal(err)
	}
	return u, sp, mm, clk
}

func TestTranslateMissThenHit(t *testing.T) {
	u, sp, mm, clk := setup(t, 8)
	f, _ := mm.AllocFrame()
	if err := sp.Map(0x4000, f, pci.DirBidi); err != nil {
		t.Fatal(err)
	}

	before := clk.Total(cycles.DeviceSide)
	pa, err := u.Translate(dev, 0x4123, 64, pci.DirFromDevice)
	if err != nil {
		t.Fatal(err)
	}
	if pa != f.PA()+0x123 {
		t.Errorf("pa = %#x", pa)
	}
	missCost := clk.Total(cycles.DeviceSide) - before
	model := cycles.DefaultModel()
	if missCost != model.IOTLBMiss {
		t.Errorf("miss cost = %d, want %d", missCost, model.IOTLBMiss)
	}
	// Hit: no additional device-side cycles.
	before = clk.Total(cycles.DeviceSide)
	if _, err := u.Translate(dev, 0x4400, 64, pci.DirFromDevice); err != nil {
		t.Fatal(err)
	}
	if clk.Total(cycles.DeviceSide) != before {
		t.Error("IOTLB hit charged device cycles")
	}
	s := u.TLB().Stats()
	if s.Hits != 1 || s.Misses != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestTranslateFaults(t *testing.T) {
	u, sp, mm, _ := setup(t, 8)
	f, _ := mm.AllocFrame()
	if err := sp.Map(0x8000, f, pci.DirToDevice); err != nil {
		t.Fatal(err)
	}
	if _, err := u.Translate(dev, 0x9000, 8, pci.DirToDevice); err == nil {
		t.Error("unmapped IOVA must fault")
	}
	if _, err := u.Translate(dev, 0x8000, 8, pci.DirFromDevice); err == nil {
		t.Error("direction violation must fault (miss path)")
	}
	if _, err := u.Translate(dev, 0x8000, 8, pci.DirToDevice); err != nil {
		t.Fatal(err)
	}
	if _, err := u.Translate(dev, 0x8000, 8, pci.DirFromDevice); err == nil {
		t.Error("direction violation must fault (hit path)")
	}
	if _, err := u.Translate(dev, 0x8000, 0, pci.DirToDevice); err == nil {
		t.Error("zero-size access must fail")
	}
	if _, err := u.Translate(dev, 0x8ff0, 32, pci.DirToDevice); err == nil {
		t.Error("page-crossing access must fail")
	}
	if _, err := u.Translate(pci.NewBDF(9, 9, 9), 0x8000, 8, pci.DirToDevice); err == nil {
		t.Error("unknown device must fault")
	}
}

func TestEvictionRefetchesFromTables(t *testing.T) {
	u, sp, mm, _ := setup(t, 2) // tiny IOTLB
	frames := make([]mem.PFN, 4)
	for i := range frames {
		f, _ := mm.AllocFrame()
		frames[i] = f
		if err := sp.Map(uint64(0x10000+i*0x1000), f, pci.DirBidi); err != nil {
			t.Fatal(err)
		}
	}
	// Touch all four pages twice; with capacity 2 the second pass misses
	// again but still translates correctly from the tables.
	for pass := 0; pass < 2; pass++ {
		for i := range frames {
			pa, err := u.Translate(dev, uint64(0x10000+i*0x1000), 8, pci.DirFromDevice)
			if err != nil {
				t.Fatal(err)
			}
			if pa != frames[i].PA() {
				t.Errorf("pass %d page %d: pa = %#x", pass, i, pa)
			}
		}
	}
	if u.TLB().Stats().Evictions == 0 {
		t.Error("expected evictions with capacity 2")
	}
}

func TestPassThroughMode(t *testing.T) {
	u, _, _, clk := setup(t, 8)
	u.PassThrough = true
	pa, err := u.Translate(dev, 0xabc0, 8, pci.DirFromDevice)
	if err != nil || pa != 0xabc0 {
		t.Errorf("pass-through = %#x, %v", pa, err)
	}
	if clk.Total(cycles.DeviceSide) != 0 {
		t.Error("HWpt should not walk")
	}
}

func TestIdentity(t *testing.T) {
	pa, err := Identity{}.Translate(dev, 0x1234, 8, pci.DirBidi)
	if err != nil || pa != 0x1234 {
		t.Errorf("Identity = %#x, %v", pa, err)
	}
}
