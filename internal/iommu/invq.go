package iommu

import (
	"fmt"

	"riommu/internal/faults"
	"riommu/internal/iotlb"
	"riommu/internal/mem"
	"riommu/internal/pci"
)

// Queued invalidation: VT-d's actual invalidation interface. The OS does
// not poke IOTLB entries directly — it writes invalidation descriptors into
// an in-memory queue, advances a tail register, and (when it needs
// completion) appends a wait descriptor and spins on its status word. The
// ~2,127 cycles Table 1 charges per strict-mode unmap is exactly one
// submit + wait round trip through this machinery.
//
// InvDescriptor layout (16 bytes, simplified from the VT-d spec):
// word 0 packs the type (low 8 bits) and the BDF (bits 16..32);
// word 1 holds the IOVA page for per-entry invalidations, or the status
// address for wait descriptors.
const (
	invDescBytes = 16

	// Descriptor types.
	invTypeEntry  = 0x1 // invalidate one IOTLB entry
	invTypeGlobal = 0x2 // flush the whole IOTLB
	invTypeWait   = 0x5 // write 1 to the status address when reached
)

// InvQueue is the in-memory invalidation queue plus the hardware's
// processing logic. The simulated hardware drains the queue when a wait
// descriptor demands completion (real hardware drains asynchronously; the
// paper's cost model charges the full round trip to the waiting CPU either
// way). The queue is purely mechanical — the OS driver accounts the cycles.
type InvQueue struct {
	mm  *mem.PhysMem
	tlb *iotlb.IOTLB

	base   mem.PFN
	size   uint32 // descriptors
	head   uint32 // hardware cursor
	tail   uint32 // OS cursor
	status mem.PA // wait-descriptor status word

	// Processed counts drained descriptors (excluding waits).
	Processed uint64
	// Waits counts completed wait descriptors.
	Waits uint64

	// inj, when set, may drop or delay entry/global invalidations (modeling
	// hardware errata); wait descriptors are never perturbed, so the OS spin
	// loop always terminates. delayed holds invalidations deferred to the
	// start of the next drain.
	inj           *faults.Engine
	delayed       []iotlb.Key
	delayedGlobal bool
	// Dropped and Delayed count perturbed invalidation descriptors.
	Dropped, Delayed uint64

	aud InvObserver
}

// InvObserver mirrors applied invalidations into an external shadow tracker;
// *audit.Oracle satisfies it. Only invalidations that actually reach the
// IOTLB are mirrored — dropped or delayed descriptors are not, so the
// observer sees hardware truth, not OS intent.
type InvObserver interface {
	OnInvalidate(bdf pci.BDF, iovaPFN uint64)
	OnFlush()
}

// SetFaults installs the fault-injection engine (nil disables injection).
func (q *InvQueue) SetFaults(f *faults.Engine) { q.inj = f }

// SetAudit installs an invalidation observer (nil disables mirroring).
func (q *InvQueue) SetAudit(o InvObserver) { q.aud = o }

// NewInvQueue allocates a one-page queue (256 descriptors) plus a status word.
func NewInvQueue(mm *mem.PhysMem, tlb *iotlb.IOTLB) (*InvQueue, error) {
	qf, err := mm.AllocFrame()
	if err != nil {
		return nil, fmt.Errorf("iommu: allocating invalidation queue: %w", err)
	}
	sf, err := mm.AllocFrame()
	if err != nil {
		return nil, fmt.Errorf("iommu: allocating wait status: %w", err)
	}
	return &InvQueue{
		mm:     mm,
		tlb:    tlb,
		base:   qf,
		size:   mem.PageSize / invDescBytes,
		status: sf.PA(),
	}, nil
}

// Pending returns the descriptors the hardware has not drained yet.
func (q *InvQueue) Pending() uint32 { return (q.tail + q.size - q.head) % q.size }

func (q *InvQueue) slotPA(i uint32) mem.PA {
	return q.base.PA() + mem.PA((i%q.size)*invDescBytes)
}

// push writes one descriptor at the OS tail.
func (q *InvQueue) push(typ uint8, bdf pci.BDF, word1 uint64) error {
	if (q.tail+1)%q.size == q.head {
		// The queue never legitimately fills: the OS waits after small
		// batches. Treat it as a driver bug.
		return fmt.Errorf("iommu: invalidation queue full")
	}
	pa := q.slotPA(q.tail)
	if err := q.mm.WriteU64(pa, uint64(typ)|uint64(bdf)<<16); err != nil {
		return err
	}
	if err := q.mm.WriteU64(pa+8, word1); err != nil {
		return err
	}
	q.tail = (q.tail + 1) % q.size
	return nil
}

// SubmitEntry queues a single-entry invalidation (no wait).
func (q *InvQueue) SubmitEntry(bdf pci.BDF, iovaPFN uint64) error {
	return q.push(invTypeEntry, bdf, iovaPFN)
}

// SubmitGlobal queues a whole-IOTLB flush (no wait).
func (q *InvQueue) SubmitGlobal() error {
	return q.push(invTypeGlobal, 0, 0)
}

// Wait appends a wait descriptor, rings the tail register, and spins until
// the hardware writes the status word — the synchronous completion point
// whose ~2,127-cycle cost Table 1 measures (charged by the calling driver).
func (q *InvQueue) Wait() error {
	if err := q.mm.WriteU64(q.status, 0); err != nil {
		return err
	}
	if err := q.push(invTypeWait, 0, uint64(q.status)); err != nil {
		return err
	}
	if err := q.drain(); err != nil {
		return err
	}
	// The spin loop observes the status write.
	v, err := q.mm.ReadU64(q.status)
	if err != nil {
		return err
	}
	if v != 1 {
		return fmt.Errorf("iommu: wait descriptor did not complete (status=%d)", v)
	}
	return nil
}

// drain is the hardware side: consume descriptors from head to tail. Any
// invalidations a fault deferred during the previous drain are applied first,
// so a delayed invalidation opens exactly a one-drain stale window.
func (q *InvQueue) drain() error {
	if q.delayedGlobal {
		q.tlb.Flush()
		q.delayedGlobal = false
		q.Processed++
		if q.aud != nil {
			q.aud.OnFlush()
		}
	}
	for _, k := range q.delayed {
		q.tlb.Invalidate(k)
		q.Processed++
		if q.aud != nil {
			q.aud.OnInvalidate(k.BDF, k.IOVAPFN)
		}
	}
	q.delayed = q.delayed[:0]
	for q.head != q.tail {
		pa := q.slotPA(q.head)
		w0, err := q.mm.ReadU64(pa)
		if err != nil {
			return err
		}
		w1, err := q.mm.ReadU64(pa + 8)
		if err != nil {
			return err
		}
		switch uint8(w0) {
		case invTypeEntry:
			key := iotlb.Key{BDF: pci.BDF(w0 >> 16), IOVAPFN: w1}
			if q.inj.DropInvalidation(key.BDF, w1) {
				q.Dropped++
			} else if q.inj.DelayInvalidation(key.BDF, w1) {
				q.delayed = append(q.delayed, key)
				q.Delayed++
			} else {
				q.tlb.Invalidate(key)
				q.Processed++
				if q.aud != nil {
					q.aud.OnInvalidate(key.BDF, w1)
				}
			}
		case invTypeGlobal:
			if q.inj.DropInvalidation(0, 0) {
				q.Dropped++
			} else if q.inj.DelayInvalidation(0, 0) {
				q.delayedGlobal = true
				q.Delayed++
			} else {
				q.tlb.Flush()
				q.Processed++
				if q.aud != nil {
					q.aud.OnFlush()
				}
			}
		case invTypeWait:
			if err := q.mm.WriteU64(mem.PA(w1), 1); err != nil {
				return err
			}
			q.Waits++
		default:
			return fmt.Errorf("iommu: bad invalidation descriptor type %#x", uint8(w0))
		}
		q.head = (q.head + 1) % q.size
	}
	return nil
}
