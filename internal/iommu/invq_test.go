package iommu

import (
	"testing"

	"riommu/internal/iotlb"
	"riommu/internal/mem"
	"riommu/internal/pci"
)

func newInvQ(t *testing.T) (*InvQueue, *iotlb.IOTLB, *mem.PhysMem) {
	t.Helper()
	mm := mustMem(t, 64*mem.PageSize)
	tlb := iotlb.New(16)
	q, err := NewInvQueue(mm, tlb)
	if err != nil {
		t.Fatal(err)
	}
	return q, tlb, mm
}

func TestInvQueueEntryInvalidation(t *testing.T) {
	q, tlb, _ := newInvQ(t)
	d := pci.NewBDF(0, 3, 0)
	tlb.Insert(iotlb.Key{BDF: d, IOVAPFN: 7}, iotlb.Entry{Frame: 1, Perm: pci.DirBidi})
	tlb.Insert(iotlb.Key{BDF: d, IOVAPFN: 8}, iotlb.Entry{Frame: 2, Perm: pci.DirBidi})

	if err := q.SubmitEntry(d, 7); err != nil {
		t.Fatal(err)
	}
	// Submitted but not drained: the entry is still cached (the hardware
	// is asynchronous; the wait descriptor is the synchronization point).
	if _, ok := tlb.Lookup(iotlb.Key{BDF: d, IOVAPFN: 7}); !ok {
		t.Fatal("entry invalidated before the wait completed")
	}
	if err := q.Wait(); err != nil {
		t.Fatal(err)
	}
	if _, ok := tlb.Lookup(iotlb.Key{BDF: d, IOVAPFN: 7}); ok {
		t.Error("entry survived the queued invalidation")
	}
	if _, ok := tlb.Lookup(iotlb.Key{BDF: d, IOVAPFN: 8}); !ok {
		t.Error("unrelated entry purged")
	}
	if q.Processed != 1 || q.Waits != 1 {
		t.Errorf("counters: %d processed, %d waits", q.Processed, q.Waits)
	}
}

func TestInvQueueGlobalFlushBatch(t *testing.T) {
	q, tlb, _ := newInvQ(t)
	d := pci.NewBDF(0, 3, 0)
	for i := uint64(0); i < 8; i++ {
		tlb.Insert(iotlb.Key{BDF: d, IOVAPFN: i}, iotlb.Entry{Frame: mem.PFN(i), Perm: pci.DirBidi})
	}
	// Deferred-style batch: many entry descriptors, one global, one wait.
	for i := uint64(0); i < 4; i++ {
		if err := q.SubmitEntry(d, i); err != nil {
			t.Fatal(err)
		}
	}
	if err := q.SubmitGlobal(); err != nil {
		t.Fatal(err)
	}
	if q.Pending() != 5 {
		t.Errorf("Pending = %d, want 5", q.Pending())
	}
	if err := q.Wait(); err != nil {
		t.Fatal(err)
	}
	if tlb.Len() != 0 {
		t.Errorf("IOTLB holds %d entries after global flush", tlb.Len())
	}
	if q.Pending() != 0 {
		t.Error("descriptors left pending after wait")
	}
	if q.Processed != 5 {
		t.Errorf("Processed = %d, want 5", q.Processed)
	}
}

func TestInvQueueOrdering(t *testing.T) {
	// Descriptors drain strictly in order: an entry invalidation queued
	// after a global flush must still apply (it would purge a refilled
	// entry in real hardware).
	q, tlb, _ := newInvQ(t)
	d := pci.NewBDF(0, 3, 0)
	if err := q.SubmitGlobal(); err != nil {
		t.Fatal(err)
	}
	if err := q.SubmitEntry(d, 3); err != nil {
		t.Fatal(err)
	}
	// Insert after submit, before drain: the global must not remove it if
	// ordering were wrong... but our synchronous drain happens at Wait, so
	// both run now, global first.
	tlb.Insert(iotlb.Key{BDF: d, IOVAPFN: 3}, iotlb.Entry{Frame: 9, Perm: pci.DirBidi})
	if err := q.Wait(); err != nil {
		t.Fatal(err)
	}
	if _, ok := tlb.Lookup(iotlb.Key{BDF: d, IOVAPFN: 3}); ok {
		t.Error("entry descriptor after global flush did not apply in order")
	}
}

func TestInvQueueWraparound(t *testing.T) {
	q, tlb, _ := newInvQ(t)
	d := pci.NewBDF(0, 3, 0)
	// Push many batches so the queue cursor wraps its 256 slots.
	for round := 0; round < 300; round++ {
		tlb.Insert(iotlb.Key{BDF: d, IOVAPFN: uint64(round)}, iotlb.Entry{Frame: 1, Perm: pci.DirBidi})
		if err := q.SubmitEntry(d, uint64(round)); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if err := q.Wait(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if _, ok := tlb.Lookup(iotlb.Key{BDF: d, IOVAPFN: uint64(round)}); ok {
			t.Fatalf("round %d: entry survived", round)
		}
	}
	if q.Processed != 300 || q.Waits != 300 {
		t.Errorf("counters: %d/%d", q.Processed, q.Waits)
	}
}

func TestInvQueueOverflow(t *testing.T) {
	q, _, _ := newInvQ(t)
	d := pci.NewBDF(0, 3, 0)
	var err error
	for i := 0; i < 1000; i++ {
		if err = q.SubmitEntry(d, uint64(i)); err != nil {
			break
		}
	}
	if err == nil {
		t.Error("unbounded submits without wait should overflow the queue")
	}
}

func TestInvQueueBadDescriptor(t *testing.T) {
	q, _, mm := newInvQ(t)
	// Corrupt the queue memory directly (a buggy driver) and drain.
	if err := mm.WriteU64(q.slotPA(q.tail), 0xFF); err != nil {
		t.Fatal(err)
	}
	q.tail = (q.tail + 1) % q.size
	if err := q.Wait(); err == nil {
		t.Error("bad descriptor type should fail the drain")
	}
}
