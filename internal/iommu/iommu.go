// Package iommu models the baseline (Intel VT-d style) IOMMU hardware: on
// each DMA it intercepts the IOVA, consults the IOTLB, walks the page-table
// hierarchy on a miss (Figure 5), enforces permissions, and returns the
// physical address. Device-side walk costs are charged to the DeviceSide
// component: per the paper's validated model (§3.3) they do not gate
// throughput, but they are visible to the §5.3 polling-mode experiment.
package iommu

import (
	"fmt"

	"riommu/internal/cycles"
	"riommu/internal/dma"
	"riommu/internal/iotlb"
	"riommu/internal/mem"
	"riommu/internal/pagetable"
	"riommu/internal/pci"
)

// IOMMU is the hardware translation unit shared by all attached devices.
type IOMMU struct {
	clk   *cycles.Clock
	model *cycles.Model

	hier *pagetable.Hierarchy
	tlb  *iotlb.IOTLB

	// PassThrough enables HWpt mode (§5.1): every IOVA translates to the
	// identical physical address without consulting the IOTLB or tables.
	PassThrough bool
}

// New creates an IOMMU over the given hierarchy with an IOTLB of the given
// capacity (0 means iotlb.DefaultCapacity).
func New(clk *cycles.Clock, model *cycles.Model, hier *pagetable.Hierarchy, tlbCapacity int) *IOMMU {
	return &IOMMU{
		clk:   clk,
		model: model,
		hier:  hier,
		tlb:   iotlb.New(tlbCapacity),
	}
}

// TLB exposes the IOTLB for OS-driver invalidations and statistics.
func (u *IOMMU) TLB() *iotlb.IOTLB { return u.tlb }

// Hierarchy exposes the root/context table structure for device attachment.
func (u *IOMMU) Hierarchy() *pagetable.Hierarchy { return u.hier }

// Translate resolves one device access that must not cross a page boundary
// (the DMA engine splits larger accesses). It implements the hardware path
// of Figure 5: IOTLB lookup, walk on miss, permission check.
func (u *IOMMU) Translate(bdf pci.BDF, iova uint64, size uint32, dir pci.Dir) (mem.PA, error) {
	if size == 0 {
		return 0, fmt.Errorf("iommu: zero-size access")
	}
	if (iova&mem.PageMask)+uint64(size) > mem.PageSize {
		return 0, fmt.Errorf("iommu: access iova=%#x size=%d crosses a page boundary", iova, size)
	}
	if u.PassThrough {
		return mem.PA(iova), nil
	}
	key := iotlb.Key{BDF: bdf, IOVAPFN: iova >> mem.PageShift}
	if e, ok := u.tlb.Lookup(key); ok {
		if !e.Perm.Allows(dir) {
			return 0, &pagetable.Fault{Reason: pagetable.FaultPermission, IOVA: iova, Want: dir}
		}
		return e.Frame.PA() + mem.PA(iova&mem.PageMask), nil
	}
	// Miss: root/context lookup plus 4-level walk, charged to the device side.
	u.clk.Charge(cycles.DeviceSide, u.model.IOTLBMiss)
	sp, err := u.hier.Lookup(bdf)
	if err != nil {
		return 0, err
	}
	pa, perm, err := sp.Walk(iova, dir)
	if err != nil {
		return 0, err
	}
	u.tlb.Insert(key, iotlb.Entry{Frame: mem.PFNOf(pa), Perm: perm})
	return pa, nil
}

// TranslateBatch resolves N single-page chunks with one call: the native
// batched verb of the dma.BatchTranslator contract. Each chunk performs
// exactly the scalar Translate's work in order — same IOTLB
// lookups/insertions, same miss charges — without the per-chunk interface
// dispatch.
func (u *IOMMU) TranslateBatch(bdf pci.BDF, reqs []dma.Req, out []dma.Resp) int {
	for i := range reqs {
		pa, err := u.Translate(bdf, reqs[i].IOVA, reqs[i].Size, reqs[i].Dir)
		out[i] = dma.Resp{PA: pa, Err: err}
		if err != nil {
			return i
		}
	}
	return len(reqs)
}

// Identity is the Translator used when the IOMMU is disabled ("none" mode):
// DMAs execute with physical addresses, unmediated.
type Identity struct{}

// Translate returns the IOVA unchanged.
func (Identity) Translate(_ pci.BDF, iova uint64, _ uint32, _ pci.Dir) (mem.PA, error) {
	return mem.PA(iova), nil
}

// TranslateBatch returns every IOVA unchanged.
func (Identity) TranslateBatch(_ pci.BDF, reqs []dma.Req, out []dma.Resp) int {
	for i := range reqs {
		out[i] = dma.Resp{PA: mem.PA(reqs[i].IOVA)}
	}
	return len(reqs)
}
