// Package campaign runs deterministic fault-injection campaigns against the
// simulated systems: it sweeps fault rates across the safe protection modes,
// drives supervised NIC / NVMe / SATA workloads through the injection
// window, and reports how the recovery layer held up.
//
// The campaign is a flat cell grid (device x mode x rate, plus a fault-free
// anchor cell per NIC mode). Every cell builds its own simulation world and
// derives its fault-engine seed from the base seed and the cell's identity
// alone (parallel.CellSeed), never from which worker ran it — so the merged
// result is byte-identical for any worker count, and CI can diff rendered
// output across code changes.
package campaign

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"riommu/internal/cycles"
	"riommu/internal/device"
	"riommu/internal/driver"
	"riommu/internal/faults"
	"riommu/internal/parallel"
	"riommu/internal/pci"
	"riommu/internal/perfmodel"
	"riommu/internal/sim"
	"riommu/internal/stats"
)

var (
	nicBDF  = pci.NewBDF(0, 3, 0)
	nvmeBDF = pci.NewBDF(0, 4, 0)
	sataBDF = pci.NewBDF(0, 5, 0)
)

// SafeModes are the modes the recovery story covers: the deferred modes
// trade protection for speed and the pass-through modes have nothing to
// degrade to, so campaigns stick to gap-free protection (§5.1).
var SafeModes = []sim.Mode{sim.Strict, sim.StrictPlus, sim.RIOMMUMinus, sim.RIOMMU}

// ParseModes resolves a comma-separated mode list against SafeModes.
func ParseModes(s string) ([]sim.Mode, error) {
	var out []sim.Mode
	for _, name := range strings.Split(s, ",") {
		name = strings.TrimSpace(name)
		found := false
		for _, m := range SafeModes {
			if m.String() == name {
				out = append(out, m)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown or unsafe mode %q (want one of strict, strict+, riommu-, riommu)", name)
		}
	}
	return out, nil
}

// ParseRates parses a comma-separated list of per-opportunity fault rates.
func ParseRates(s string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		r, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, err
		}
		if r < 0 || r > 1 {
			return nil, fmt.Errorf("rate %v out of [0,1]", r)
		}
		out = append(out, r)
	}
	return out, nil
}

// Options selects the campaign grid.
type Options struct {
	Seed   uint64
	Rates  []float64
	Modes  []sim.Mode
	Rounds int
	// Workers is the cell-level fan-out (see parallel.Workers); 1 runs the
	// legacy serial path.
	Workers int
}

// Key identifies one campaign cell.
type Key struct {
	Device string // "nic", "nvme" or "sata"
	Mode   sim.Mode
	Rate   float64
	// Clean marks the fault-free NIC anchor cell that the throughput
	// degradation column is measured against.
	Clean bool
}

// String is the cell's stable identity; per-cell seeds derive from it.
func (k Key) String() string {
	if k.Clean {
		return k.Device + "/" + k.Mode.String() + "/clean"
	}
	return fmt.Sprintf("%s/%s/r=%g", k.Device, k.Mode, k.Rate)
}

// CellMetrics is what one campaign cell measured.
type CellMetrics struct {
	Injected       uint64
	Recovery       driver.RecoveryStats
	RecoveryCycles uint64 // CPU cycles charged to recovery work
	CyclesPerOp    float64
	Gbps           float64 // NIC cells only
	// ByClass counts injected faults per fault class (NIC cells only).
	ByClass map[string]uint64
}

// Result pairs the grid with its measurements, cell i of Keys in Cells[i].
type Result struct {
	Opts  Options
	Keys  []Key
	Cells []CellMetrics
}

// Grid enumerates the campaign cells in canonical order: per NIC mode a
// clean anchor then the rate sweep, then the block devices' mode x rate
// sweeps. Output order is always this order, independent of scheduling.
func (o Options) Grid() []Key {
	var keys []Key
	for _, m := range o.Modes {
		keys = append(keys, Key{Device: "nic", Mode: m, Clean: true})
		for _, r := range o.Rates {
			keys = append(keys, Key{Device: "nic", Mode: m, Rate: r})
		}
	}
	for _, dev := range []string{"nvme", "sata"} {
		for _, m := range o.Modes {
			for _, r := range o.Rates {
				keys = append(keys, Key{Device: dev, Mode: m, Rate: r})
			}
		}
	}
	return keys
}

// Run executes the whole grid, fanning cells across opts.Workers workers.
func Run(opts Options) (Result, error) {
	keys := opts.Grid()
	cells, err := parallel.Map(opts.Workers, keys, func(_ int, k Key) (CellMetrics, error) {
		seed := parallel.CellSeed(opts.Seed, k.String())
		rate := k.Rate
		if k.Clean {
			rate = 0
		}
		var (
			c   CellMetrics
			err error
		)
		if k.Device == "nic" {
			c, err = nicCell(k.Mode, seed, rate, opts.Rounds)
		} else {
			c, err = blockCell(k.Device, k.Mode, seed, rate, opts.Rounds)
		}
		if err != nil {
			return c, fmt.Errorf("%s: %w", k, err)
		}
		return c, nil
	})
	return Result{Opts: opts, Keys: keys, Cells: cells}, err
}

// nicCell soaks a supervised NIC under uniform injection at the given rate.
func nicCell(mode sim.Mode, seed uint64, rate float64, rounds int) (CellMetrics, error) {
	sys, err := sim.NewSystem(mode, 1<<15)
	if err != nil {
		return CellMetrics{}, err
	}
	f := sys.EnableFaults(faults.UniformConfig(seed, rate))
	drv, nic, err := sys.AttachNIC(device.ProfileBRCM, nicBDF)
	if err != nil {
		return CellMetrics{}, err
	}
	sup := sys.Supervise(nicBDF, drv)
	payload := make([]byte, 1024)
	for i := range payload {
		payload[i] = byte(i)
	}
	for round := 0; round < rounds; round++ {
		// Failed rounds are the campaign's subject, not an error: the
		// supervisor counts them and the watchdog clears any wedge.
		_ = sup.Do(func() error {
			if err := drv.Send(payload); err != nil {
				return err
			}
			if _, err := drv.PumpTx(2); err != nil {
				return err
			}
			if _, err := drv.ReapTx(); err != nil {
				return err
			}
			if err := drv.Deliver(payload); err != nil {
				return err
			}
			_, err := drv.ReapRx()
			return err
		})
		if _, err := sup.Watch(); err != nil {
			return CellMetrics{}, fmt.Errorf("watchdog recovery failed: %w", err)
		}
	}
	c := CellMetrics{
		Injected:       f.TotalInjected(),
		Recovery:       sup.Stats,
		RecoveryCycles: sys.CPU.Total(cycles.Recovery),
		ByClass:        map[string]uint64{},
	}
	for _, cl := range faults.Classes() {
		c.ByClass[cl.String()] = f.Count(cl)
	}
	if pkts := nic.TxPackets + nic.RxPackets; pkts > 0 {
		c.CyclesPerOp = float64(sys.CPU.Now()) / float64(pkts)
		c.Gbps = perfmodel.Gbps(sys.Model, c.CyclesPerOp, device.ProfileBRCM.LineRateGbps)
	}
	return c, nil
}

// blockCell runs the same sweep against a block-device driver (NVMe or
// AHCI/SATA): a supervised write/complete loop under injection.
func blockCell(dev string, mode sim.Mode, seed uint64, rate float64, rounds int) (CellMetrics, error) {
	sys, err := sim.NewSystem(mode, 1<<14)
	if err != nil {
		return CellMetrics{}, err
	}
	f := sys.EnableFaults(faults.UniformConfig(seed, rate))
	payload := make([]byte, 512)
	for i := range payload {
		payload[i] = byte(i * 3)
	}

	var (
		target driver.Recoverable
		op     func() error
		bdf    pci.BDF
	)
	switch dev {
	case "nvme":
		bdf = nvmeBDF
		prot, err := sys.ProtectionFor(bdf, []uint32{4, 64, 64})
		if err != nil {
			return CellMetrics{}, err
		}
		d, err := driver.NewNVMeDriver(sys.Mem, prot, sys.Eng, bdf, 4096, 128, 8)
		if err != nil {
			return CellMetrics{}, err
		}
		lba := uint64(0)
		target = d
		op = func() error {
			if _, err := d.Write(lba%64, payload); err != nil {
				return err
			}
			lba++
			_, err := d.Poll(8)
			return err
		}
	case "sata":
		bdf = sataBDF
		prot, err := sys.ProtectionFor(bdf, []uint32{4, 64, 64})
		if err != nil {
			return CellMetrics{}, err
		}
		d := driver.NewSATADriver(sys.Mem, prot, sys.Eng, bdf, 4096, 256)
		// Cell-local deterministic source, never the global math/rand
		// state: the stream depends only on the cell's seed.
		rng := rand.New(rand.NewSource(int64(seed)))
		lba := uint64(0)
		target = d
		op = func() error {
			if _, err := d.SubmitWrite(lba%64, payload); err != nil {
				return err
			}
			lba++
			_, err := d.CompleteAll(rng)
			return err
		}
	default:
		return CellMetrics{}, fmt.Errorf("unknown block device %q", dev)
	}

	sup := sys.Supervise(bdf, target)
	for round := 0; round < rounds; round++ {
		_ = sup.Do(op)
		if _, err := sup.Watch(); err != nil {
			return CellMetrics{}, fmt.Errorf("watchdog recovery failed: %w", err)
		}
	}
	c := CellMetrics{
		Injected:       f.TotalInjected(),
		Recovery:       sup.Stats,
		RecoveryCycles: sys.CPU.Total(cycles.Recovery),
	}
	if cmds := target.Progress(); cmds > 0 {
		c.CyclesPerOp = float64(sys.CPU.Now()) / float64(cmds)
	}
	return c, nil
}

// Render produces the human-readable campaign tables from a merged result.
// It walks Keys in grid order only, so its output is worker-count
// independent.
func (r Result) Render() string {
	var b strings.Builder

	// Clean NIC anchors per mode for the degradation column.
	clean := map[sim.Mode]CellMetrics{}
	for i, k := range r.Keys {
		if k.Device == "nic" && k.Clean {
			clean[k.Mode] = r.Cells[i]
		}
	}

	nicTab := stats.NewTable(
		fmt.Sprintf("NIC campaign — %s, %d rounds/cell", device.ProfileBRCM.Name, r.Opts.Rounds),
		"mode", "rate", "injected", "recov", "retries", "wdog", "degrade", "unrec", "cyc/pkt", "Gbps", "vs clean")
	nicTab.AlignLeft(0)
	var byClass stats.Counters
	for i, k := range r.Keys {
		if k.Device != "nic" || k.Clean {
			continue
		}
		c := r.Cells[i]
		for _, cl := range faults.Classes() {
			byClass.Add(cl.String(), c.ByClass[cl.String()])
		}
		vs := "n/a"
		if anchor := clean[k.Mode]; anchor.Gbps > 0 {
			vs = fmt.Sprintf("%.1f%%", 100*c.Gbps/anchor.Gbps)
		}
		nicTab.Row(k.Mode.String(), fmt.Sprintf("%g", k.Rate), c.Injected, c.Recovery.Recoveries,
			c.Recovery.Retries, c.Recovery.WatchdogFires, c.Recovery.Degradations,
			c.Recovery.Unrecovered, c.CyclesPerOp, c.Gbps, vs)
	}
	b.WriteString(nicTab.String())
	b.WriteByte('\n')
	b.WriteString(byClass.Table("Injected faults by class (NIC sweep total)").String())
	b.WriteByte('\n')

	blkTab := stats.NewTable(
		fmt.Sprintf("Block-device campaign — %d rounds/cell", r.Opts.Rounds),
		"device", "mode", "rate", "injected", "recov", "retries", "wdog", "unrec", "recovery cyc", "cyc/cmd")
	blkTab.AlignLeft(0).AlignLeft(1)
	for i, k := range r.Keys {
		if k.Device == "nic" {
			continue
		}
		c := r.Cells[i]
		blkTab.Row(k.Device, k.Mode.String(), fmt.Sprintf("%g", k.Rate), c.Injected,
			c.Recovery.Recoveries, c.Recovery.Retries, c.Recovery.WatchdogFires,
			c.Recovery.Unrecovered, c.RecoveryCycles, c.CyclesPerOp)
	}
	b.WriteString(blkTab.String())
	return b.String()
}
