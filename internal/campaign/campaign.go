// Package campaign runs deterministic fault-injection campaigns against the
// simulated systems: it sweeps fault rates across the safe protection modes,
// drives supervised NIC / NVMe / SATA workloads through the injection
// window, and reports how the recovery layer held up.
//
// The campaign is a flat cell grid (device x mode x rate, plus a fault-free
// anchor cell per NIC mode). Every cell builds its own simulation world and
// derives its fault-engine seed from the base seed and the cell's identity
// alone (parallel.CellSeed), never from which worker ran it — so the merged
// result is byte-identical for any worker count, and CI can diff rendered
// output across code changes.
package campaign

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"riommu/internal/audit"
	"riommu/internal/chaos"
	"riommu/internal/cycles"
	"riommu/internal/device"
	"riommu/internal/driver"
	"riommu/internal/faults"
	"riommu/internal/parallel"
	"riommu/internal/pci"
	"riommu/internal/perfmodel"
	"riommu/internal/sim"
	"riommu/internal/stats"
)

var (
	nicBDF   = pci.NewBDF(0, 3, 0)
	nvmeBDF  = pci.NewBDF(0, 4, 0)
	sataBDF  = pci.NewBDF(0, 5, 0)
	churnBDF = pci.NewBDF(0, 6, 0) // inv-flood's map/unmap churn device
)

// SafeModes are the modes the recovery story covers: the deferred modes
// trade protection for speed and the pass-through modes have nothing to
// degrade to, so campaigns stick to gap-free protection (§5.1).
var SafeModes = []sim.Mode{sim.Strict, sim.StrictPlus, sim.RIOMMUMinus, sim.RIOMMU}

// ChaosModes are the modes the hostile-device cells sweep. Unlike the
// recovery sweep, the chaos sweep deliberately includes the deferred modes:
// quantifying their stale-IOTLB window against the violation-free safe modes
// is the point of the audit.
var ChaosModes = []sim.Mode{sim.Strict, sim.StrictPlus, sim.Defer, sim.DeferPlus, sim.RIOMMUMinus, sim.RIOMMU}

// ParseModes resolves a comma-separated mode list against SafeModes.
func ParseModes(s string) ([]sim.Mode, error) {
	var out []sim.Mode
	for _, name := range strings.Split(s, ",") {
		name = strings.TrimSpace(name)
		found := false
		for _, m := range SafeModes {
			if m.String() == name {
				out = append(out, m)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown or unsafe mode %q (want one of strict, strict+, riommu-, riommu)", name)
		}
	}
	return out, nil
}

// ParseCores parses a comma-separated list of scale-out widths ("" → none).
func ParseCores(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("bad cores value %q: %w", f, err)
		}
		if n < 2 || n > 64 {
			return nil, fmt.Errorf("cores %d out of [2,64]", n)
		}
		out = append(out, n)
	}
	return out, nil
}

// ParseRates parses a comma-separated list of per-opportunity fault rates.
func ParseRates(s string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		r, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, err
		}
		if r < 0 || r > 1 {
			return nil, fmt.Errorf("rate %v out of [0,1]", r)
		}
		out = append(out, r)
	}
	return out, nil
}

// Options selects the campaign grid.
type Options struct {
	Seed   uint64
	Rates  []float64
	Modes  []sim.Mode
	Rounds int
	// Workers is the cell-level fan-out (see parallel.Workers); 1 runs the
	// legacy serial path.
	Workers int
	// Audit runs every cell with the shadow translation oracle attached
	// (audit.Oracle is a pure observer, so legacy metrics are unchanged).
	Audit bool
	// Chaos appends hostile-device cells: each scenario runs against every
	// ChaosModes mode. Chaos cells are always audited.
	Chaos []chaos.Scenario
	// Cores appends multi-queue scale-out cells: for each entry > 1, every
	// mode × rate runs against an MQNIC with that many queue pairs (one
	// supervised recovery domain for the whole port). Legacy single-queue
	// cells are untouched.
	Cores []int
}

// Key identifies one campaign cell.
type Key struct {
	Device string // "nic", "nvme" or "sata"
	Mode   sim.Mode
	Rate   float64
	// Clean marks the fault-free NIC anchor cell that the throughput
	// degradation column is measured against.
	Clean bool
	// Scenario marks a hostile-device chaos cell (empty otherwise).
	Scenario string
	// Cores marks a multi-queue scale-out cell (0 for the legacy
	// single-queue cells, so their identities — and hence per-cell seeds —
	// are unchanged).
	Cores int
}

// String is the cell's stable identity; per-cell seeds derive from it.
func (k Key) String() string {
	if k.Cores > 1 {
		return fmt.Sprintf("%s/%s/cores=%d/r=%g", k.Device, k.Mode, k.Cores, k.Rate)
	}
	if k.Scenario != "" {
		return fmt.Sprintf("%s/%s/chaos=%s", k.Device, k.Mode, k.Scenario)
	}
	if k.Clean {
		return k.Device + "/" + k.Mode.String() + "/clean"
	}
	return fmt.Sprintf("%s/%s/r=%g", k.Device, k.Mode, k.Rate)
}

// CellMetrics is what one campaign cell measured.
type CellMetrics struct {
	Injected       uint64
	Recovery       driver.RecoveryStats
	RecoveryCycles uint64 // CPU cycles charged to recovery work
	CyclesPerOp    float64
	Gbps           float64 // NIC cells only
	// ByClass counts injected faults per fault class (NIC cells only).
	ByClass map[string]uint64

	// Audit results (cells run with the oracle attached).
	Audited      bool
	Checked      uint64 // DMA chunks verified
	Violations   uint64
	ByReason     map[string]uint64
	ViolPerMPkts float64 // violations per million packets (NIC cells)

	// Chaos cells only: hostile-device outcomes and the recovery SLO.
	Chaos          chaos.Stats
	Outages        uint64
	DowntimeCycles uint64
	MTTRCycles     float64
	Availability   float64
	BreakerTrips   uint64
	Readmissions   uint64
}

// Result pairs the grid with its measurements, cell i of Keys in Cells[i].
// Completed[i] is false for cells that never produced metrics (errored or
// skipped by an interrupt); a nil Completed means every cell finished.
type Result struct {
	Opts      Options
	Keys      []Key
	Cells     []CellMetrics
	Completed []bool
}

// done reports whether cell i produced metrics.
func (r Result) done(i int) bool {
	return r.Completed == nil || r.Completed[i]
}

// Grid enumerates the campaign cells in canonical order: per NIC mode a
// clean anchor then the rate sweep, then the block devices' mode x rate
// sweeps. Output order is always this order, independent of scheduling.
func (o Options) Grid() []Key {
	var keys []Key
	for _, m := range o.Modes {
		keys = append(keys, Key{Device: "nic", Mode: m, Clean: true})
		for _, r := range o.Rates {
			keys = append(keys, Key{Device: "nic", Mode: m, Rate: r})
		}
	}
	for _, dev := range []string{"nvme", "sata"} {
		for _, m := range o.Modes {
			for _, r := range o.Rates {
				keys = append(keys, Key{Device: dev, Mode: m, Rate: r})
			}
		}
	}
	for _, cores := range o.Cores {
		if cores <= 1 {
			continue
		}
		for _, m := range o.Modes {
			for _, r := range o.Rates {
				keys = append(keys, Key{Device: "nic", Mode: m, Rate: r, Cores: cores})
			}
		}
	}
	for _, sc := range o.Chaos {
		for _, m := range ChaosModes {
			keys = append(keys, Key{Device: "nic", Mode: m, Scenario: string(sc)})
		}
	}
	return keys
}

// Run executes the whole grid, fanning cells across opts.Workers workers.
// On interrupt (parallel.Interrupt) it returns the partial Result — cells
// that never ran have Completed[i] == false — together with the
// lowest-index cell error, which is parallel.ErrInterrupted unless an
// earlier cell failed outright.
func Run(opts Options) (Result, error) {
	keys := opts.Grid()
	cells := make([]CellMetrics, len(keys))
	completed := make([]bool, len(keys))
	err := parallel.Run(opts.Workers, len(keys), func(i int) error {
		k := keys[i]
		seed := parallel.CellSeed(opts.Seed, k.String())
		rate := k.Rate
		if k.Clean {
			rate = 0
		}
		var (
			c   CellMetrics
			err error
		)
		switch {
		case k.Scenario != "":
			c, err = chaosCell(k.Mode, chaos.Scenario(k.Scenario), seed, opts.Rounds)
		case k.Cores > 1:
			c, err = mqCell(k.Mode, seed, rate, opts.Rounds, k.Cores, opts.Audit)
		case k.Device == "nic":
			c, err = nicCell(k.Mode, seed, rate, opts.Rounds, opts.Audit)
		default:
			c, err = blockCell(k.Device, k.Mode, seed, rate, opts.Rounds, opts.Audit)
		}
		if err != nil {
			return fmt.Errorf("%s: %w", k, err)
		}
		cells[i] = c
		completed[i] = true
		return nil
	})
	return Result{Opts: opts, Keys: keys, Cells: cells, Completed: completed}, err
}

// recordAudit copies the oracle's verdicts into the cell (every reason key
// is present so report columns are stable).
func recordAudit(c *CellMetrics, orc *audit.Oracle, pkts uint64) {
	if orc == nil {
		return
	}
	c.Audited = true
	c.Checked = orc.Checked
	c.Violations = orc.Violations
	c.ByReason = make(map[string]uint64, len(audit.Reasons()))
	for _, r := range audit.Reasons() {
		c.ByReason[r] = orc.ByReason[r]
	}
	if pkts > 0 {
		c.ViolPerMPkts = float64(orc.Violations) * 1e6 / float64(pkts)
	}
}

// nicCell soaks a supervised NIC under uniform injection at the given rate.
func nicCell(mode sim.Mode, seed uint64, rate float64, rounds int, audited bool) (CellMetrics, error) {
	sys, err := sim.NewSystem(mode, 1<<15)
	if err != nil {
		return CellMetrics{}, err
	}
	defer sys.Close()
	f := sys.EnableFaults(faults.UniformConfig(seed, rate))
	if audited {
		sys.EnableAudit()
	}
	drv, nic, err := sys.AttachNIC(device.ProfileBRCM, nicBDF)
	if err != nil {
		return CellMetrics{}, err
	}
	sup := sys.Supervise(nicBDF, drv)
	payload := make([]byte, 1024)
	for i := range payload {
		payload[i] = byte(i)
	}
	for round := 0; round < rounds; round++ {
		// Failed rounds are the campaign's subject, not an error: the
		// supervisor counts them and the watchdog clears any wedge.
		_ = sup.Do(func() error {
			if err := drv.Send(payload); err != nil {
				return err
			}
			if _, err := drv.PumpTx(2); err != nil {
				return err
			}
			if _, err := drv.ReapTx(); err != nil {
				return err
			}
			if err := drv.Deliver(payload); err != nil {
				return err
			}
			_, err := drv.ReapRx()
			return err
		})
		if _, err := sup.Watch(); err != nil {
			return CellMetrics{}, fmt.Errorf("watchdog recovery failed: %w", err)
		}
	}
	c := CellMetrics{
		Injected:       f.TotalInjected(),
		Recovery:       sup.Stats,
		RecoveryCycles: sys.CPU.Total(cycles.Recovery),
		ByClass:        map[string]uint64{},
	}
	for _, cl := range faults.Classes() {
		c.ByClass[cl.String()] = f.Count(cl)
	}
	pkts := nic.TxPackets + nic.RxPackets
	if pkts > 0 {
		c.CyclesPerOp = float64(sys.CPU.Now()) / float64(pkts)
		c.Gbps = perfmodel.Gbps(sys.Model, c.CyclesPerOp, device.ProfileBRCM.LineRateGbps)
	}
	recordAudit(&c, sys.Auditor, pkts)
	return c, nil
}

// mqCell soaks a supervised multi-queue NIC: `cores` queue pairs sharing
// one device identity, protection domain, and recovery domain (the port
// resets as a unit). Each round sprays one payload per queue round-robin,
// drains every transmit path, and delivers return traffic on every queue.
func mqCell(mode sim.Mode, seed uint64, rate float64, rounds, cores int, audited bool) (CellMetrics, error) {
	sys, err := sim.NewSystem(mode, 1<<15)
	if err != nil {
		return CellMetrics{}, err
	}
	defer sys.Close()
	f := sys.EnableFaults(faults.UniformConfig(seed, rate))
	if audited {
		sys.EnableAudit()
	}
	mq, err := sys.AttachMQNIC(device.ProfileBRCM, nicBDF, cores)
	if err != nil {
		return CellMetrics{}, err
	}
	sup := sys.Supervise(nicBDF, mq)
	payload := make([]byte, 1024)
	for i := range payload {
		payload[i] = byte(i)
	}
	for round := 0; round < rounds; round++ {
		_ = sup.Do(func() error {
			for q := 0; q < cores; q++ {
				if err := mq.Send(payload); err != nil {
					return err
				}
			}
			if _, err := mq.PumpAndReapAll(); err != nil {
				return err
			}
			for q := 0; q < cores; q++ {
				if err := mq.Deliver(q, payload); err != nil {
					return err
				}
			}
			_, err := mq.ReapRxAll()
			return err
		})
		if _, err := sup.Watch(); err != nil {
			return CellMetrics{}, fmt.Errorf("watchdog recovery failed: %w", err)
		}
	}
	c := CellMetrics{
		Injected:       f.TotalInjected(),
		Recovery:       sup.Stats,
		RecoveryCycles: sys.CPU.Total(cycles.Recovery),
		ByClass:        map[string]uint64{},
	}
	for _, cl := range faults.Classes() {
		c.ByClass[cl.String()] = f.Count(cl)
	}
	var pkts uint64
	for q := 0; q < cores; q++ {
		nic := mq.NIC(q)
		pkts += nic.TxPackets + nic.RxPackets
	}
	if pkts > 0 {
		c.CyclesPerOp = float64(sys.CPU.Now()) / float64(pkts)
		c.Gbps = perfmodel.Gbps(sys.Model, c.CyclesPerOp, device.ProfileBRCM.LineRateGbps)
	}
	recordAudit(&c, sys.Auditor, pkts)
	return c, nil
}

// blockCell runs the same sweep against a block-device driver (NVMe or
// AHCI/SATA): a supervised write/complete loop under injection.
func blockCell(dev string, mode sim.Mode, seed uint64, rate float64, rounds int, audited bool) (CellMetrics, error) {
	sys, err := sim.NewSystem(mode, 1<<14)
	if err != nil {
		return CellMetrics{}, err
	}
	defer sys.Close()
	f := sys.EnableFaults(faults.UniformConfig(seed, rate))
	if audited {
		sys.EnableAudit()
	}
	payload := make([]byte, 512)
	for i := range payload {
		payload[i] = byte(i * 3)
	}

	var (
		target driver.Recoverable
		op     func() error
		bdf    pci.BDF
	)
	switch dev {
	case "nvme":
		bdf = nvmeBDF
		prot, err := sys.ProtectionFor(bdf, []uint32{4, 64, 64})
		if err != nil {
			return CellMetrics{}, err
		}
		d, err := driver.NewNVMeDriver(sys.Mem, prot, sys.Eng, bdf, 4096, 128, 8)
		if err != nil {
			return CellMetrics{}, err
		}
		lba := uint64(0)
		target = d
		op = func() error {
			if _, err := d.Write(lba%64, payload); err != nil {
				return err
			}
			lba++
			_, err := d.Poll(8)
			return err
		}
	case "sata":
		bdf = sataBDF
		prot, err := sys.ProtectionFor(bdf, []uint32{4, 64, 64})
		if err != nil {
			return CellMetrics{}, err
		}
		d := driver.NewSATADriver(sys.Mem, prot, sys.Eng, bdf, 4096, 256)
		// Cell-local deterministic source, never the global math/rand
		// state: the stream depends only on the cell's seed.
		rng := rand.New(rand.NewSource(int64(seed)))
		lba := uint64(0)
		target = d
		op = func() error {
			if _, err := d.SubmitWrite(lba%64, payload); err != nil {
				return err
			}
			lba++
			_, err := d.CompleteAll(rng)
			return err
		}
	default:
		return CellMetrics{}, fmt.Errorf("unknown block device %q", dev)
	}

	sup := sys.Supervise(bdf, target)
	for round := 0; round < rounds; round++ {
		_ = sup.Do(op)
		if _, err := sup.Watch(); err != nil {
			return CellMetrics{}, fmt.Errorf("watchdog recovery failed: %w", err)
		}
	}
	c := CellMetrics{
		Injected:       f.TotalInjected(),
		Recovery:       sup.Stats,
		RecoveryCycles: sys.CPU.Total(cycles.Recovery),
	}
	if cmds := target.Progress(); cmds > 0 {
		c.CyclesPerOp = float64(sys.CPU.Now()) / float64(cmds)
	}
	recordAudit(&c, sys.Auditor, target.Progress())
	return c, nil
}

// chaosCell drives one hostile-device scenario against a supervised, audited
// NIC: the legitimate workload runs every round under the circuit breaker,
// and the hostile device layers its attacks on top. The oracle judges every
// DMA the protection hardware let through.
func chaosCell(mode sim.Mode, scenario chaos.Scenario, seed uint64, rounds int) (CellMetrics, error) {
	sys, err := sim.NewSystem(mode, 1<<15)
	if err != nil {
		return CellMetrics{}, err
	}
	defer sys.Close()
	// Injection stays quiet except in the cascade scenario, which opens a
	// multi-class fault storm across the middle third of the cell.
	f := sys.EnableFaults(faults.UniformConfig(seed, 0))
	orc := sys.EnableAudit()
	drv, nic, err := sys.AttachNIC(device.ProfileBRCM, nicBDF)
	if err != nil {
		return CellMetrics{}, err
	}
	sup := sys.Supervise(nicBDF, drv)
	sup.Breaker = driver.NewBreaker()
	sup.Isolator = sys.IsolatorFor(nicBDF)
	host := chaos.NewHostile(sys.Eng, orc, nicBDF)

	// inv-flood churns map/unmap on a second device, hammering the shared
	// invalidation path while the victim runs its workload.
	var churn func() error
	if scenario == chaos.InvFlood {
		prot, err := sys.ProtectionFor(churnBDF, []uint32{64})
		if err != nil {
			return CellMetrics{}, err
		}
		frame, err := sys.Mem.AllocFrame()
		if err != nil {
			return CellMetrics{}, err
		}
		pa := frame.PA()
		churn = func() error {
			for i := 0; i < 8; i++ {
				iova, err := prot.Map(0, pa, 1024, pci.DirBidi)
				if err != nil {
					return err
				}
				if err := prot.Unmap(0, iova, 1024, true); err != nil {
					return err
				}
			}
			return nil
		}
	}

	// ro-write needs a live read-only mapping, which only exists between
	// Send and ReapTx — so that attack runs mid-round.
	var midTx func()
	if scenario == chaos.ROWrite {
		midTx = func() { host.WriteReadOnly(4) }
	}

	payload := make([]byte, 1024)
	for i := range payload {
		payload[i] = byte(i)
	}
	workload := func() error {
		if err := drv.Send(payload); err != nil {
			return err
		}
		if _, err := drv.PumpTx(2); err != nil {
			return err
		}
		if midTx != nil {
			midTx()
		}
		if _, err := drv.ReapTx(); err != nil {
			return err
		}
		if err := drv.Deliver(payload); err != nil {
			return err
		}
		_, err := drv.ReapRx()
		return err
	}

	stormStart, stormEnd := rounds/3, 2*rounds/3
	for round := 0; round < rounds; round++ {
		if scenario == chaos.Cascade {
			if round == stormStart {
				for _, cl := range faults.Classes() {
					f.SetRate(cl, 0.002)
				}
			} else if round == stormEnd {
				for _, cl := range faults.Classes() {
					f.SetRate(cl, 0)
				}
			}
		}
		// Failed rounds are the subject: the supervisor, breaker, and SLO
		// ledger record them.
		_ = sup.Do(workload)
		switch scenario {
		case chaos.StaleReplay:
			host.ReplayRetired(8)
		case chaos.Overreach:
			host.OverreachLive(4)
		case chaos.InvFlood:
			if err := churn(); err != nil {
				return CellMetrics{}, fmt.Errorf("inv-flood churn: %w", err)
			}
		case chaos.Cascade:
			host.ReplayRetired(2)
		}
		// A failed hang recovery mid-storm is chaos data, not a cell error.
		_, _ = sup.Watch()
	}

	c := CellMetrics{
		Injected:       f.TotalInjected(),
		Recovery:       sup.Stats,
		RecoveryCycles: sys.CPU.Total(cycles.Recovery),
		ByClass:        map[string]uint64{},
	}
	for _, cl := range faults.Classes() {
		c.ByClass[cl.String()] = f.Count(cl)
	}
	pkts := nic.TxPackets + nic.RxPackets
	if pkts > 0 {
		c.CyclesPerOp = float64(sys.CPU.Now()) / float64(pkts)
		c.Gbps = perfmodel.Gbps(sys.Model, c.CyclesPerOp, device.ProfileBRCM.LineRateGbps)
	}
	recordAudit(&c, orc, pkts)
	c.Chaos = host.Stats
	slo := sup.SLO()
	c.Outages = slo.Outages
	c.DowntimeCycles = slo.DowntimeCycles
	c.MTTRCycles = slo.MTTRCycles()
	c.Availability = slo.Availability(sys.CPU.Now())
	c.BreakerTrips = sup.Breaker.Trips
	c.Readmissions = sup.Breaker.Readmissions
	return c, nil
}

// AuditViolationsGate checks the isolation claims the audited cells must
// uphold and returns one failure message per broken expectation:
//
//   - gap-free modes (strict, strict+, riommu-, riommu) must be violation-
//     free in every audited cell that neither injects faults (rate > 0) nor
//     runs the cascade scenario — injected invalidation-drop/delay errata can
//     defeat even strict invalidation, which is the erratum's point.
//   - overreach is gated only for the rIOMMU modes: page-granular baseline
//     protection cannot contain sub-page overreach (§4), byte-granular rPTEs
//     must.
//   - liveness: the deferred modes' stale-replay cells must record stale
//     violations — zero there means the auditor went blind, not that the
//     defer window closed.
func (r Result) AuditViolationsGate() []string {
	var fails []string
	deferStaleCells, sawDeferStale := 0, false
	for i, k := range r.Keys {
		c := r.Cells[i]
		if !r.done(i) || !c.Audited {
			continue
		}
		if k.Scenario == string(chaos.Cascade) || k.Rate > 0 {
			continue
		}
		if k.Scenario == string(chaos.StaleReplay) && (k.Mode == sim.Defer || k.Mode == sim.DeferPlus) {
			deferStaleCells++
			if c.ByReason[audit.ReasonStale] > 0 {
				sawDeferStale = true
			}
		}
		if k.Scenario == string(chaos.Overreach) {
			if (k.Mode == sim.RIOMMU || k.Mode == sim.RIOMMUMinus) && c.Violations != 0 {
				fails = append(fails, fmt.Sprintf("%s: %d violations — rIOMMU must contain sub-page overreach", k, c.Violations))
			}
			continue
		}
		if k.Mode.Safe() && c.Violations != 0 {
			fails = append(fails, fmt.Sprintf("%s: %d isolation violations in a gap-free mode", k, c.Violations))
		}
	}
	if deferStaleCells > 0 && !sawDeferStale {
		fails = append(fails, "defer stale-replay cells recorded zero stale violations — auditor liveness check failed")
	}
	return fails
}

// Render produces the human-readable campaign tables from a merged result.
// It walks Keys in grid order only, so its output is worker-count
// independent.
func (r Result) Render() string {
	var b strings.Builder

	// Clean NIC anchors per mode for the degradation column.
	clean := map[sim.Mode]CellMetrics{}
	for i, k := range r.Keys {
		if k.Device == "nic" && k.Clean {
			clean[k.Mode] = r.Cells[i]
		}
	}

	nicTab := stats.NewTable(
		fmt.Sprintf("NIC campaign — %s, %d rounds/cell", device.ProfileBRCM.Name, r.Opts.Rounds),
		"mode", "rate", "injected", "recov", "retries", "wdog", "degrade", "unrec", "cyc/pkt", "Gbps", "vs clean")
	nicTab.AlignLeft(0)
	var byClass stats.Counters
	for i, k := range r.Keys {
		if k.Device != "nic" || k.Clean || k.Cores > 1 {
			continue
		}
		c := r.Cells[i]
		for _, cl := range faults.Classes() {
			byClass.Add(cl.String(), c.ByClass[cl.String()])
		}
		vs := "n/a"
		if anchor := clean[k.Mode]; anchor.Gbps > 0 {
			vs = fmt.Sprintf("%.1f%%", 100*c.Gbps/anchor.Gbps)
		}
		nicTab.Row(k.Mode.String(), fmt.Sprintf("%g", k.Rate), c.Injected, c.Recovery.Recoveries,
			c.Recovery.Retries, c.Recovery.WatchdogFires, c.Recovery.Degradations,
			c.Recovery.Unrecovered, c.CyclesPerOp, c.Gbps, vs)
	}
	b.WriteString(nicTab.String())
	b.WriteByte('\n')
	b.WriteString(byClass.Table("Injected faults by class (NIC sweep total)").String())
	b.WriteByte('\n')

	blkTab := stats.NewTable(
		fmt.Sprintf("Block-device campaign — %d rounds/cell", r.Opts.Rounds),
		"device", "mode", "rate", "injected", "recov", "retries", "wdog", "unrec", "recovery cyc", "cyc/cmd")
	blkTab.AlignLeft(0).AlignLeft(1)
	for i, k := range r.Keys {
		if k.Device == "nic" {
			continue
		}
		c := r.Cells[i]
		blkTab.Row(k.Device, k.Mode.String(), fmt.Sprintf("%g", k.Rate), c.Injected,
			c.Recovery.Recoveries, c.Recovery.Retries, c.Recovery.WatchdogFires,
			c.Recovery.Unrecovered, c.RecoveryCycles, c.CyclesPerOp)
	}
	b.WriteString(blkTab.String())

	hasCores := false
	for _, k := range r.Keys {
		if k.Cores > 1 {
			hasCores = true
			break
		}
	}
	if hasCores {
		mqTab := stats.NewTable(
			fmt.Sprintf("NIC scale-out campaign — %s multi-queue, %d rounds/cell", device.ProfileBRCM.Name, r.Opts.Rounds),
			"mode", "cores", "rate", "injected", "recov", "retries", "wdog", "unrec", "cyc/pkt", "Gbps")
		mqTab.AlignLeft(0)
		for i, k := range r.Keys {
			if k.Cores <= 1 {
				continue
			}
			c := r.Cells[i]
			mqTab.Row(k.Mode.String(), k.Cores, fmt.Sprintf("%g", k.Rate), c.Injected,
				c.Recovery.Recoveries, c.Recovery.Retries, c.Recovery.WatchdogFires,
				c.Recovery.Unrecovered, c.CyclesPerOp, c.Gbps)
		}
		b.WriteByte('\n')
		b.WriteString(mqTab.String())
	}

	hasChaos := false
	for _, k := range r.Keys {
		if k.Scenario != "" {
			hasChaos = true
			break
		}
	}
	if hasChaos {
		chTab := stats.NewTable(
			fmt.Sprintf("Chaos campaign — hostile NIC, %d rounds/cell", r.Opts.Rounds),
			"mode", "scenario", "attempts", "contained", "landed", "viol", "stale", "bounds", "viol/Mpkt", "trips", "readmit", "mttr cyc", "avail")
		chTab.AlignLeft(0).AlignLeft(1)
		for i, k := range r.Keys {
			if k.Scenario == "" {
				continue
			}
			c := r.Cells[i]
			chTab.Row(k.Mode.String(), k.Scenario, c.Chaos.Attempts, c.Chaos.Contained,
				c.Chaos.Landed, c.Violations, c.ByReason[audit.ReasonStale],
				c.ByReason[audit.ReasonBounds], fmt.Sprintf("%.1f", c.ViolPerMPkts),
				c.BreakerTrips, c.Readmissions, fmt.Sprintf("%.0f", c.MTTRCycles),
				fmt.Sprintf("%.4f", c.Availability))
		}
		b.WriteByte('\n')
		b.WriteString(chTab.String())
	}
	return b.String()
}
