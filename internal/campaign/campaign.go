// Package campaign runs deterministic fault-injection campaigns against the
// simulated systems: it sweeps fault rates across the safe protection modes,
// drives supervised NIC / NVMe / SATA workloads through the injection
// window, and reports how the recovery layer held up.
//
// The campaign is a flat cell grid (device x mode x rate, plus a fault-free
// anchor cell per NIC mode). Every cell builds its own simulation world and
// derives its fault-engine seed from the base seed and the cell's identity
// alone (parallel.CellSeed), never from which worker ran it — so the merged
// result is byte-identical for any worker count, and CI can diff rendered
// output across code changes.
package campaign

import (
	"fmt"
	"strconv"
	"strings"

	"riommu/internal/audit"
	"riommu/internal/chaos"
	"riommu/internal/cycles"
	"riommu/internal/detrand"
	"riommu/internal/device"
	"riommu/internal/driver"
	"riommu/internal/faults"
	"riommu/internal/intremap"
	"riommu/internal/parallel"
	"riommu/internal/pci"
	"riommu/internal/perfmodel"
	"riommu/internal/sim"
	"riommu/internal/stats"
)

var (
	nicBDF   = pci.NewBDF(0, 3, 0)
	nvmeBDF  = pci.NewBDF(0, 4, 0)
	sataBDF  = pci.NewBDF(0, 5, 0)
	churnBDF = pci.NewBDF(0, 6, 0)  // inv-flood's map/unmap churn device
	msiBDF   = pci.NewBDF(0, 66, 6) // hostile MSI source's requester id
)

// SafeModes are the modes the recovery story covers: the deferred modes
// trade protection for speed and the pass-through modes have nothing to
// degrade to, so campaigns stick to gap-free protection (§5.1).
var SafeModes = []sim.Mode{sim.Strict, sim.StrictPlus, sim.RIOMMUMinus, sim.RIOMMU}

// ChaosModes are the modes the hostile-device cells sweep. Unlike the
// recovery sweep, the chaos sweep deliberately includes the deferred modes:
// quantifying their stale-IOTLB window against the violation-free safe modes
// is the point of the audit.
var ChaosModes = []sim.Mode{sim.Strict, sim.StrictPlus, sim.Defer, sim.DeferPlus, sim.RIOMMUMinus, sim.RIOMMU}

// The hot-plug storm scenarios. Unlike the chaos scenarios (which live in
// internal/chaos and need only a hostile device), these orchestrate topology
// churn through the sim layer's lifecycle state machine, so the campaign owns
// their names.
const (
	// HotplugAttachStorm cycles attach → traffic → surprise-removal →
	// replug repeatedly, with completions latched at every yank.
	HotplugAttachStorm = "attach-storm"
	// HotplugDMAEarly has the device DMA before the OS ever attached it —
	// every access must fault in the protected modes.
	HotplugDMAEarly = "dma-before-attach"
	// HotplugSurprise is one mid-campaign surprise removal with mappings and
	// in-flight invalidations live, followed by quarantine and an operator
	// replug.
	HotplugSurprise = "surprise-remove"
)

// HotplugScenarios returns every hot-plug scenario in canonical order.
func HotplugScenarios() []string {
	return []string{HotplugAttachStorm, HotplugDMAEarly, HotplugSurprise}
}

// ParseHotplug parses a comma-separated hot-plug scenario list; "all"
// selects every scenario.
func ParseHotplug(s string) ([]string, error) {
	if strings.TrimSpace(s) == "all" {
		return HotplugScenarios(), nil
	}
	known := make(map[string]bool)
	for _, sc := range HotplugScenarios() {
		known[sc] = true
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		sc := strings.TrimSpace(part)
		if sc == "" {
			continue
		}
		if !known[sc] {
			return nil, fmt.Errorf("unknown hot-plug scenario %q", sc)
		}
		out = append(out, sc)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty hot-plug scenario list")
	}
	return out, nil
}

// ParseModes resolves a comma-separated mode list against SafeModes.
func ParseModes(s string) ([]sim.Mode, error) {
	var out []sim.Mode
	for _, name := range strings.Split(s, ",") {
		name = strings.TrimSpace(name)
		found := false
		for _, m := range SafeModes {
			if m.String() == name {
				out = append(out, m)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown or unsafe mode %q (want one of strict, strict+, riommu-, riommu)", name)
		}
	}
	return out, nil
}

// ParseCores parses a comma-separated list of scale-out widths ("" → none).
func ParseCores(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("bad cores value %q: %w", f, err)
		}
		if n < 2 || n > 64 {
			return nil, fmt.Errorf("cores %d out of [2,64]", n)
		}
		out = append(out, n)
	}
	return out, nil
}

// ParseTenants parses a comma-separated list of tenant counts ("" → none).
func ParseTenants(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("bad tenants value %q: %w", f, err)
		}
		if n < 2 || n > 512 {
			return nil, fmt.Errorf("tenants %d out of [2,512]", n)
		}
		out = append(out, n)
	}
	return out, nil
}

// ParseChurn parses a comma-separated list of fleet connection counts for
// the traffic-engine churn axis ("" → none).
func ParseChurn(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("bad churn value %q: %w", f, err)
		}
		if n < 1 || n > 10_000_000 {
			return nil, fmt.Errorf("churn connections %d out of [1,10000000]", n)
		}
		out = append(out, n)
	}
	return out, nil
}

// ParseRates parses a comma-separated list of per-opportunity fault rates.
func ParseRates(s string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		r, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, err
		}
		if r < 0 || r > 1 {
			return nil, fmt.Errorf("rate %v out of [0,1]", r)
		}
		out = append(out, r)
	}
	return out, nil
}

// Options selects the campaign grid.
type Options struct {
	Seed   uint64
	Rates  []float64
	Modes  []sim.Mode
	Rounds int
	// Workers is the cell-level fan-out (see parallel.Workers); 1 runs the
	// legacy serial path.
	Workers int
	// Audit runs every cell with the shadow translation oracle attached
	// (audit.Oracle is a pure observer, so legacy metrics are unchanged).
	Audit bool
	// Chaos appends hostile-device cells: each scenario runs against every
	// ChaosModes mode. Chaos cells are always audited.
	Chaos []chaos.Scenario
	// Cores appends multi-queue scale-out cells: for each entry > 1, every
	// mode × rate runs against an MQNIC with that many queue pairs (one
	// supervised recovery domain for the whole port). Legacy single-queue
	// cells are untouched.
	Cores []int
	// IntChaos appends hostile-MSI cells: each interrupt scenario runs
	// against every presentation mode (sim.AllModes) with the interrupt
	// oracle attached.
	IntChaos []chaos.IntScenario
	// Hotplug appends topology-churn cells: each hot-plug scenario runs
	// against every presentation mode, driving the lifecycle state machine
	// under audit.
	Hotplug []string
	// Tenants appends multi-tenant cells: for each entry ≥ 2, every hostile-
	// tenant scenario in TenantChaos runs against every presentation mode
	// with that many guests sharing one hypervisor (tenant 0 hostile, the
	// rest victims). Tenant cells are always audited at both stages.
	Tenants []int
	// TenantChaos selects the hostile-tenant scenarios the Tenants axis
	// sweeps (defaults to all when Tenants is set and this is empty).
	TenantChaos []chaos.TenantScenario
	// Churn appends fleet-traffic cells: for each target connection count,
	// every mode runs the internal/traffic engine (connection churn,
	// heavy-tailed mixes, mixed kernel/bypass paths) under the shadow
	// oracle. Churn cells are always audited.
	Churn []int

	// ShardIndex/ShardCount split the grid across cooperating processes:
	// with ShardCount = K, this process computes only the cells whose grid
	// index i satisfies i % K == ShardIndex (cells already present in the
	// checkpoint are restored regardless of shard). ShardCount <= 1 runs the
	// whole grid. Sharded runs require a Checkpoint, since a shard's results
	// would otherwise be lost. Like Workers, the shard split never affects
	// cell content — only which process computes which cell.
	ShardIndex, ShardCount int
	// Checkpoint names the versioned JSON checkpoint file: completed cells
	// are flushed to it as they finish (atomic temp-file rename per cell),
	// and cells already recorded there are restored instead of re-run.
	Checkpoint string
	// Merge lists additional checkpoint files to restore cells from
	// read-only — the merge step after K shards ran into K separate files.
	Merge []string
}

// Key identifies one campaign cell.
type Key struct {
	Device string // "nic", "nvme" or "sata"
	Mode   sim.Mode
	Rate   float64
	// Clean marks the fault-free NIC anchor cell that the throughput
	// degradation column is measured against.
	Clean bool
	// Scenario marks a hostile-device chaos cell (empty otherwise).
	Scenario string
	// IntScenario marks a hostile-MSI interrupt chaos cell.
	IntScenario string
	// Hotplug marks a topology-churn cell.
	Hotplug string
	// Cores marks a multi-queue scale-out cell (0 for the legacy
	// single-queue cells, so their identities — and hence per-cell seeds —
	// are unchanged).
	Cores int
	// Tenants marks a multi-tenant two-stage cell (0 for every
	// single-tenant cell, so legacy identities and seeds are unchanged);
	// TenantScenario names its hostile-tenant behavior.
	Tenants        int
	TenantScenario string
	// Churn marks a fleet-traffic connection-churn cell (0 for every
	// pre-existing cell, so legacy identities and seeds are unchanged);
	// the value is the modeled concurrent-connection count.
	Churn int
}

// String is the cell's stable identity; per-cell seeds derive from it.
func (k Key) String() string {
	if k.Churn > 0 {
		return fmt.Sprintf("%s/%s/churn=%d", k.Device, k.Mode, k.Churn)
	}
	if k.Tenants > 0 {
		return fmt.Sprintf("%s/%s/tenants=%d/tchaos=%s", k.Device, k.Mode, k.Tenants, k.TenantScenario)
	}
	if k.Cores > 1 {
		return fmt.Sprintf("%s/%s/cores=%d/r=%g", k.Device, k.Mode, k.Cores, k.Rate)
	}
	if k.Scenario != "" {
		return fmt.Sprintf("%s/%s/chaos=%s", k.Device, k.Mode, k.Scenario)
	}
	if k.IntScenario != "" {
		return fmt.Sprintf("%s/%s/intchaos=%s", k.Device, k.Mode, k.IntScenario)
	}
	if k.Hotplug != "" {
		return fmt.Sprintf("%s/%s/hotplug=%s", k.Device, k.Mode, k.Hotplug)
	}
	if k.Clean {
		return k.Device + "/" + k.Mode.String() + "/clean"
	}
	return fmt.Sprintf("%s/%s/r=%g", k.Device, k.Mode, k.Rate)
}

// CellMetrics is what one campaign cell measured.
type CellMetrics struct {
	// Clock is the cell's final CPU clock snapshot — the complete
	// per-component cycle ledger, captured with cycles.Clock.Snapshot when
	// the cell finishes and carried through checkpoints so a restored cell
	// is indistinguishable from a freshly-run one.
	Clock cycles.Snapshot

	Injected       uint64
	Recovery       driver.RecoveryStats
	RecoveryCycles uint64 // CPU cycles charged to recovery work
	CyclesPerOp    float64
	Gbps           float64 // NIC cells only
	// ByClass counts injected faults per fault class (NIC cells only).
	ByClass map[string]uint64

	// Audit results (cells run with the oracle attached).
	Audited      bool
	Checked      uint64 // DMA chunks verified
	Violations   uint64
	ByReason     map[string]uint64
	ViolPerMPkts float64 // violations per million packets (NIC cells)

	// Chaos cells only: hostile-device outcomes and the recovery SLO.
	Chaos          chaos.Stats
	Outages        uint64
	DowntimeCycles uint64
	MTTRCycles     float64
	Availability   float64
	BreakerTrips   uint64
	Readmissions   uint64

	// Interrupt-remapping results (intchaos and hotplug cells).
	IntDelivered  uint64
	IntBlocked    uint64
	IntViolations uint64
	IntByReason   map[string]uint64

	// Hot-plug cells only: lifecycle churn and ghost behavior.
	Attaches        uint64
	Removals        uint64
	Quarantines     uint64
	GhostDeliveries uint64 // interrupts delivered while the slot was removed

	// Churn cells only: fleet-traffic outcomes from internal/traffic.
	DataPackets   uint64
	Opens, Closes uint64 // flow churn (steering-buffer map/unmap storms)
	BypassPackets uint64
	AppDigest     uint64 // application byte-stream digest (path-invariant)
	MapDigest     uint64 // protection-boundary mapping-history digest

	// Tenant cells only: the hypervisor-level truth. TenantChecked /
	// TenantViolations / CrossTenant come from the tenant oracle (stage-2
	// accesses verified against the host's frame-ownership ledger);
	// CrossTenant ≠ 0 means a DMA reached another tenant's frame — the one
	// number the whole design exists to keep at zero.
	TenantChecked    uint64
	TenantViolations uint64
	CrossTenant      uint64
	TenantByReason   map[string]uint64
	// Stage-2 path counters summed over every domain, plus the cycles the
	// host's stage2 clock component accumulated.
	S2Hits, S2Misses uint64
	S2Faults         uint64
	S2Cycles         uint64
	SpoofBlocked     uint64 // DMAs refused by the device directory / stage 1
	Ballooned        uint64 // balloon pages the host actually remapped
	Throttled        uint64 // balloon hypercalls bounced by the quota
	// TenantQuarantines counts tenant-wide guard trips; the availability
	// pair is the blast-radius verdict: the hostile tenant pays with
	// downtime, every victim must stay at exactly 1.0.
	TenantQuarantines   uint64
	HostileAvailability float64
	VictimAvailability  float64
}

// Result pairs the grid with its measurements, cell i of Keys in Cells[i].
// Completed[i] is false for cells that never produced metrics (errored or
// skipped by an interrupt); a nil Completed means every cell finished.
type Result struct {
	Opts      Options
	Keys      []Key
	Cells     []CellMetrics
	Completed []bool
}

// done reports whether cell i produced metrics.
func (r Result) done(i int) bool {
	return r.Completed == nil || r.Completed[i]
}

// Complete reports whether every grid cell has metrics — true for an
// uninterrupted unsharded run, and for a sharded/resumed run once the
// checkpoint covers the whole grid.
func (r Result) Complete() bool {
	for i := range r.Keys {
		if !r.done(i) {
			return false
		}
	}
	return true
}

// Grid enumerates the campaign cells in canonical order: per NIC mode a
// clean anchor then the rate sweep, then the block devices' mode x rate
// sweeps. Output order is always this order, independent of scheduling.
func (o Options) Grid() []Key {
	var keys []Key
	for _, m := range o.Modes {
		keys = append(keys, Key{Device: "nic", Mode: m, Clean: true})
		for _, r := range o.Rates {
			keys = append(keys, Key{Device: "nic", Mode: m, Rate: r})
		}
	}
	for _, dev := range []string{"nvme", "sata"} {
		for _, m := range o.Modes {
			for _, r := range o.Rates {
				keys = append(keys, Key{Device: dev, Mode: m, Rate: r})
			}
		}
	}
	for _, cores := range o.Cores {
		if cores <= 1 {
			continue
		}
		for _, m := range o.Modes {
			for _, r := range o.Rates {
				keys = append(keys, Key{Device: "nic", Mode: m, Rate: r, Cores: cores})
			}
		}
	}
	for _, sc := range o.Chaos {
		for _, m := range ChaosModes {
			keys = append(keys, Key{Device: "nic", Mode: m, Scenario: string(sc)})
		}
	}
	// The interrupt and hot-plug sweeps cover all seven presentation modes:
	// the unprotected modes are the "what an attack costs without remapping"
	// anchors, the deferred modes quantify the IEC stale window.
	for _, sc := range o.IntChaos {
		for _, m := range sim.AllModes() {
			keys = append(keys, Key{Device: "nic", Mode: m, IntScenario: string(sc)})
		}
	}
	for _, sc := range o.Hotplug {
		for _, m := range sim.AllModes() {
			keys = append(keys, Key{Device: "nic", Mode: m, Hotplug: sc})
		}
	}
	// The multi-tenant sweep is appended last so every pre-existing cell
	// keeps its grid position: turning tenancy on is a pure insertion.
	tchaos := o.TenantChaos
	if len(o.Tenants) > 0 && len(tchaos) == 0 {
		tchaos = chaos.TenantScenarios()
	}
	for _, n := range o.Tenants {
		if n < 2 {
			continue
		}
		for _, sc := range tchaos {
			for _, m := range sim.AllModes() {
				keys = append(keys, Key{Device: "nic", Mode: m, Tenants: n, TenantScenario: string(sc)})
			}
		}
	}
	// The connection-churn sweep is likewise appended last (after tenants)
	// so every pre-existing cell keeps its grid position: turning the churn
	// axis on is a pure insertion.
	for _, n := range o.Churn {
		if n < 1 {
			continue
		}
		for _, m := range o.Modes {
			keys = append(keys, Key{Device: "nic", Mode: m, Churn: n})
		}
	}
	return keys
}

// Run executes the whole grid, fanning cells across opts.Workers workers.
// On interrupt (parallel.Interrupt) it returns the partial Result — cells
// that never ran have Completed[i] == false — together with the
// lowest-index cell error, which is parallel.ErrInterrupted unless an
// earlier cell failed outright.
func Run(opts Options) (Result, error) {
	keys := opts.Grid()
	cells := make([]CellMetrics, len(keys))
	completed := make([]bool, len(keys))
	res := Result{Opts: opts, Keys: keys, Cells: cells, Completed: completed}

	if opts.ShardCount > 1 {
		if opts.ShardIndex < 0 || opts.ShardIndex >= opts.ShardCount {
			return res, fmt.Errorf("shard index %d out of range [0,%d)", opts.ShardIndex, opts.ShardCount)
		}
		if opts.Checkpoint == "" {
			return res, fmt.Errorf("sharded runs need -checkpoint: a shard's cells would otherwise be lost")
		}
	}

	// Restore completed cells: read-only merge sources first, then the
	// primary checkpoint (which is also where new cells are flushed).
	var ckw *checkpointer
	restore := func(ck *Checkpoint) {
		for i, k := range keys {
			if m, ok := ck.Cells[k.String()]; ok {
				cells[i] = m
				completed[i] = true
			}
		}
	}
	for _, path := range opts.Merge {
		ck, err := LoadCheckpoint(path, opts)
		if err != nil {
			return res, err
		}
		if ck == nil {
			return res, fmt.Errorf("merge checkpoint %s: no such file", path)
		}
		restore(ck)
	}
	if opts.Checkpoint != "" {
		ck, err := LoadCheckpoint(opts.Checkpoint, opts)
		if err != nil {
			return res, err
		}
		if ck != nil {
			restore(ck)
		}
		ckw = newCheckpointer(opts.Checkpoint, opts, ck)
		// Fold merged cells into the primary so the merge target ends up
		// holding the whole grid.
		for i, k := range keys {
			if completed[i] {
				if _, ok := ckw.ck.Cells[k.String()]; !ok {
					if err := ckw.record(k.String(), cells[i]); err != nil {
						return res, err
					}
				}
			}
		}
	}

	err := parallel.Run(opts.Workers, len(keys), func(i int) error {
		if completed[i] {
			return nil // restored from a checkpoint
		}
		if opts.ShardCount > 1 && i%opts.ShardCount != opts.ShardIndex {
			return nil // another shard's cell
		}
		k := keys[i]
		seed := parallel.CellSeed(opts.Seed, k.String())
		rate := k.Rate
		if k.Clean {
			rate = 0
		}
		var (
			c   CellMetrics
			err error
		)
		switch {
		case k.Churn > 0:
			c, err = churnCell(k.Mode, seed, opts.Rounds, k.Churn)
		case k.Tenants > 0:
			c, err = tenantCell(k.Mode, chaos.TenantScenario(k.TenantScenario), seed, opts.Rounds, k.Tenants)
		case k.Scenario != "":
			c, err = chaosCell(k.Mode, chaos.Scenario(k.Scenario), seed, opts.Rounds)
		case k.IntScenario != "":
			c, err = intchaosCell(k.Mode, chaos.IntScenario(k.IntScenario), seed, opts.Rounds)
		case k.Hotplug != "":
			c, err = hotplugCell(k.Mode, k.Hotplug, seed, opts.Rounds)
		case k.Cores > 1:
			c, err = mqCell(k.Mode, seed, rate, opts.Rounds, k.Cores, opts.Audit)
		case k.Device == "nic":
			c, err = nicCell(k.Mode, seed, rate, opts.Rounds, opts.Audit)
		default:
			c, err = blockCell(k.Device, k.Mode, seed, rate, opts.Rounds, opts.Audit)
		}
		if err != nil {
			return fmt.Errorf("%s: %w", k, err)
		}
		cells[i] = c
		completed[i] = true
		if ckw != nil {
			if err := ckw.record(k.String(), c); err != nil {
				return fmt.Errorf("%s: %w", k, err)
			}
		}
		return nil
	})
	return res, err
}

// recordAudit copies the oracle's verdicts into the cell (every reason key
// is present so report columns are stable).
func recordAudit(c *CellMetrics, orc *audit.Oracle, pkts uint64) {
	if orc == nil {
		return
	}
	c.Audited = true
	c.Checked = orc.Checked
	c.Violations = orc.Violations
	c.ByReason = make(map[string]uint64, len(audit.Reasons()))
	for _, r := range audit.Reasons() {
		c.ByReason[r] = orc.ByReason[r]
	}
	if pkts > 0 {
		c.ViolPerMPkts = float64(orc.Violations) * 1e6 / float64(pkts)
	}
}

// nicCell soaks a supervised NIC under uniform injection at the given rate.
func nicCell(mode sim.Mode, seed uint64, rate float64, rounds int, audited bool) (CellMetrics, error) {
	sys, err := sim.NewSystem(mode, 1<<15)
	if err != nil {
		return CellMetrics{}, err
	}
	defer sys.Close()
	f := sys.EnableFaults(faults.UniformConfig(seed, rate))
	if audited {
		sys.EnableAudit()
	}
	drv, nic, err := sys.AttachNIC(device.ProfileBRCM, nicBDF)
	if err != nil {
		return CellMetrics{}, err
	}
	sup := sys.Supervise(nicBDF, drv)
	payload := make([]byte, 1024)
	for i := range payload {
		payload[i] = byte(i)
	}
	for round := 0; round < rounds; round++ {
		// Failed rounds are the campaign's subject, not an error: the
		// supervisor counts them and the watchdog clears any wedge.
		_ = sup.Do(func() error {
			if err := drv.Send(payload); err != nil {
				return err
			}
			if _, err := drv.PumpTx(2); err != nil {
				return err
			}
			if _, err := drv.ReapTx(); err != nil {
				return err
			}
			if err := drv.Deliver(payload); err != nil {
				return err
			}
			_, err := drv.ReapRx()
			return err
		})
		if _, err := sup.Watch(); err != nil {
			return CellMetrics{}, fmt.Errorf("watchdog recovery failed: %w", err)
		}
	}
	c := CellMetrics{
		Injected:       f.TotalInjected(),
		Recovery:       sup.Stats,
		RecoveryCycles: sys.CPU.Total(cycles.Recovery),
		ByClass:        map[string]uint64{},
	}
	for _, cl := range faults.Classes() {
		c.ByClass[cl.String()] = f.Count(cl)
	}
	pkts := nic.TxPackets + nic.RxPackets
	if pkts > 0 {
		c.CyclesPerOp = float64(sys.CPU.Now()) / float64(pkts)
		c.Gbps = perfmodel.Gbps(sys.Model, c.CyclesPerOp, device.ProfileBRCM.LineRateGbps)
	}
	recordAudit(&c, sys.Auditor, pkts)
	c.Clock = sys.CPU.Snapshot()
	return c, nil
}

// mqCell soaks a supervised multi-queue NIC: `cores` queue pairs sharing
// one device identity, protection domain, and recovery domain (the port
// resets as a unit). Each round sprays one payload per queue round-robin,
// drains every transmit path, and delivers return traffic on every queue.
func mqCell(mode sim.Mode, seed uint64, rate float64, rounds, cores int, audited bool) (CellMetrics, error) {
	sys, err := sim.NewSystem(mode, 1<<15)
	if err != nil {
		return CellMetrics{}, err
	}
	defer sys.Close()
	f := sys.EnableFaults(faults.UniformConfig(seed, rate))
	if audited {
		sys.EnableAudit()
	}
	mq, err := sys.AttachMQNIC(device.ProfileBRCM, nicBDF, cores)
	if err != nil {
		return CellMetrics{}, err
	}
	sup := sys.Supervise(nicBDF, mq)
	payload := make([]byte, 1024)
	for i := range payload {
		payload[i] = byte(i)
	}
	for round := 0; round < rounds; round++ {
		_ = sup.Do(func() error {
			for q := 0; q < cores; q++ {
				if err := mq.Send(payload); err != nil {
					return err
				}
			}
			if _, err := mq.PumpAndReapAll(); err != nil {
				return err
			}
			for q := 0; q < cores; q++ {
				if err := mq.Deliver(q, payload); err != nil {
					return err
				}
			}
			_, err := mq.ReapRxAll()
			return err
		})
		if _, err := sup.Watch(); err != nil {
			return CellMetrics{}, fmt.Errorf("watchdog recovery failed: %w", err)
		}
	}
	c := CellMetrics{
		Injected:       f.TotalInjected(),
		Recovery:       sup.Stats,
		RecoveryCycles: sys.CPU.Total(cycles.Recovery),
		ByClass:        map[string]uint64{},
	}
	for _, cl := range faults.Classes() {
		c.ByClass[cl.String()] = f.Count(cl)
	}
	var pkts uint64
	for q := 0; q < cores; q++ {
		nic := mq.NIC(q)
		pkts += nic.TxPackets + nic.RxPackets
	}
	if pkts > 0 {
		c.CyclesPerOp = float64(sys.CPU.Now()) / float64(pkts)
		c.Gbps = perfmodel.Gbps(sys.Model, c.CyclesPerOp, device.ProfileBRCM.LineRateGbps)
	}
	recordAudit(&c, sys.Auditor, pkts)
	c.Clock = sys.CPU.Snapshot()
	return c, nil
}

// blockCell runs the same sweep against a block-device driver (NVMe or
// AHCI/SATA): a supervised write/complete loop under injection.
func blockCell(dev string, mode sim.Mode, seed uint64, rate float64, rounds int, audited bool) (CellMetrics, error) {
	sys, err := sim.NewSystem(mode, 1<<14)
	if err != nil {
		return CellMetrics{}, err
	}
	defer sys.Close()
	f := sys.EnableFaults(faults.UniformConfig(seed, rate))
	if audited {
		sys.EnableAudit()
	}
	payload := make([]byte, 512)
	for i := range payload {
		payload[i] = byte(i * 3)
	}

	var (
		target driver.Recoverable
		op     func() error
		bdf    pci.BDF
	)
	switch dev {
	case "nvme":
		bdf = nvmeBDF
		prot, err := sys.ProtectionFor(bdf, []uint32{4, 64, 64})
		if err != nil {
			return CellMetrics{}, err
		}
		d, err := driver.NewNVMeDriver(sys.Mem, prot, sys.Eng, bdf, 4096, 128, 8)
		if err != nil {
			return CellMetrics{}, err
		}
		lba := uint64(0)
		target = d
		op = func() error {
			if _, err := d.Write(lba%64, payload); err != nil {
				return err
			}
			lba++
			_, err := d.Poll(8)
			return err
		}
	case "sata":
		bdf = sataBDF
		prot, err := sys.ProtectionFor(bdf, []uint32{4, 64, 64})
		if err != nil {
			return CellMetrics{}, err
		}
		d := driver.NewSATADriver(sys.Mem, prot, sys.Eng, bdf, 4096, 256)
		// Cell-local deterministic source, never the global math/rand
		// state: the stream depends only on the cell's seed.
		rng := detrand.New(int64(seed))
		lba := uint64(0)
		target = d
		op = func() error {
			if _, err := d.SubmitWrite(lba%64, payload); err != nil {
				return err
			}
			lba++
			_, err := d.CompleteAll(rng)
			return err
		}
	default:
		return CellMetrics{}, fmt.Errorf("unknown block device %q", dev)
	}

	sup := sys.Supervise(bdf, target)
	for round := 0; round < rounds; round++ {
		_ = sup.Do(op)
		if _, err := sup.Watch(); err != nil {
			return CellMetrics{}, fmt.Errorf("watchdog recovery failed: %w", err)
		}
	}
	c := CellMetrics{
		Injected:       f.TotalInjected(),
		Recovery:       sup.Stats,
		RecoveryCycles: sys.CPU.Total(cycles.Recovery),
	}
	if cmds := target.Progress(); cmds > 0 {
		c.CyclesPerOp = float64(sys.CPU.Now()) / float64(cmds)
	}
	recordAudit(&c, sys.Auditor, target.Progress())
	c.Clock = sys.CPU.Snapshot()
	return c, nil
}

// chaosCell drives one hostile-device scenario against a supervised, audited
// NIC: the legitimate workload runs every round under the circuit breaker,
// and the hostile device layers its attacks on top. The oracle judges every
// DMA the protection hardware let through.
func chaosCell(mode sim.Mode, scenario chaos.Scenario, seed uint64, rounds int) (CellMetrics, error) {
	sys, err := sim.NewSystem(mode, 1<<15)
	if err != nil {
		return CellMetrics{}, err
	}
	defer sys.Close()
	// Injection stays quiet except in the cascade scenario, which opens a
	// multi-class fault storm across the middle third of the cell.
	f := sys.EnableFaults(faults.UniformConfig(seed, 0))
	orc := sys.EnableAudit()
	drv, nic, err := sys.AttachNIC(device.ProfileBRCM, nicBDF)
	if err != nil {
		return CellMetrics{}, err
	}
	sup := sys.Supervise(nicBDF, drv)
	sup.Breaker = driver.NewBreaker()
	sup.Isolator = sys.IsolatorFor(nicBDF)
	host := chaos.NewHostile(sys.Eng, orc, nicBDF)

	// inv-flood churns map/unmap on a second device, hammering the shared
	// invalidation path while the victim runs its workload.
	var churn func() error
	if scenario == chaos.InvFlood {
		prot, err := sys.ProtectionFor(churnBDF, []uint32{64})
		if err != nil {
			return CellMetrics{}, err
		}
		frame, err := sys.Mem.AllocFrame()
		if err != nil {
			return CellMetrics{}, err
		}
		pa := frame.PA()
		churn = func() error {
			for i := 0; i < 8; i++ {
				iova, err := prot.Map(0, pa, 1024, pci.DirBidi)
				if err != nil {
					return err
				}
				if err := prot.Unmap(0, iova, 1024, true); err != nil {
					return err
				}
			}
			return nil
		}
	}

	// ro-write needs a live read-only mapping, which only exists between
	// Send and ReapTx — so that attack runs mid-round.
	var midTx func()
	if scenario == chaos.ROWrite {
		midTx = func() { host.WriteReadOnly(4) }
	}

	payload := make([]byte, 1024)
	for i := range payload {
		payload[i] = byte(i)
	}
	workload := func() error {
		if err := drv.Send(payload); err != nil {
			return err
		}
		if _, err := drv.PumpTx(2); err != nil {
			return err
		}
		if midTx != nil {
			midTx()
		}
		if _, err := drv.ReapTx(); err != nil {
			return err
		}
		if err := drv.Deliver(payload); err != nil {
			return err
		}
		_, err := drv.ReapRx()
		return err
	}

	stormStart, stormEnd := rounds/3, 2*rounds/3
	for round := 0; round < rounds; round++ {
		if scenario == chaos.Cascade {
			if round == stormStart {
				for _, cl := range faults.Classes() {
					f.SetRate(cl, 0.002)
				}
			} else if round == stormEnd {
				for _, cl := range faults.Classes() {
					f.SetRate(cl, 0)
				}
			}
		}
		// Failed rounds are the subject: the supervisor, breaker, and SLO
		// ledger record them.
		_ = sup.Do(workload)
		switch scenario {
		case chaos.StaleReplay:
			host.ReplayRetired(8)
		case chaos.Overreach:
			host.OverreachLive(4)
		case chaos.InvFlood:
			if err := churn(); err != nil {
				return CellMetrics{}, fmt.Errorf("inv-flood churn: %w", err)
			}
		case chaos.Cascade:
			host.ReplayRetired(2)
		}
		// A failed hang recovery mid-storm is chaos data, not a cell error.
		_, _ = sup.Watch()
	}

	c := CellMetrics{
		Injected:       f.TotalInjected(),
		Recovery:       sup.Stats,
		RecoveryCycles: sys.CPU.Total(cycles.Recovery),
		ByClass:        map[string]uint64{},
	}
	for _, cl := range faults.Classes() {
		c.ByClass[cl.String()] = f.Count(cl)
	}
	pkts := nic.TxPackets + nic.RxPackets
	if pkts > 0 {
		c.CyclesPerOp = float64(sys.CPU.Now()) / float64(pkts)
		c.Gbps = perfmodel.Gbps(sys.Model, c.CyclesPerOp, device.ProfileBRCM.LineRateGbps)
	}
	recordAudit(&c, orc, pkts)
	c.Chaos = host.Stats
	slo := sup.SLO()
	c.Outages = slo.Outages
	c.DowntimeCycles = slo.DowntimeCycles
	c.MTTRCycles = slo.MTTRCycles()
	c.Availability = slo.Availability(sys.CPU.Now())
	c.BreakerTrips = sup.Breaker.Trips
	c.Readmissions = sup.Breaker.Readmissions
	c.Clock = sys.CPU.Snapshot()
	return c, nil
}

// recordIntAudit copies the remapper's counters and the interrupt oracle's
// verdicts into the cell (every reason key present for stable columns).
func recordIntAudit(c *CellMetrics, rem *intremap.Remapper, orc *audit.IntOracle) {
	if rem == nil || orc == nil {
		return
	}
	st := rem.Stats()
	c.IntDelivered = st.Delivered
	c.IntBlocked = st.Blocked()
	c.IntViolations = orc.Violations
	c.IntByReason = make(map[string]uint64, len(audit.IntReasons()))
	for _, r := range audit.IntReasons() {
		c.IntByReason[r] = orc.ByReason[r]
	}
}

// addRecovery accumulates one supervisor's recovery counters into the cell
// (hot-plug cells re-supervise after every replug).
func addRecovery(dst *driver.RecoveryStats, s driver.RecoveryStats) {
	dst.Retries += s.Retries
	dst.Recoveries += s.Recoveries
	dst.WatchdogFires += s.WatchdogFires
	dst.Degradations += s.Degradations
	dst.Unrecovered += s.Unrecovered
	dst.Rejected += s.Rejected
}

// hotplugProfile keeps the topology-churn cells' repeated ring allocations
// inside the cell's memory budget.
func hotplugProfile() device.NICProfile {
	p := device.ProfileBRCM
	p.RxEntries = 64
	p.TxEntries = 64
	return p
}

// mqTraffic is one round of bidirectional traffic on a 2-queue NIC; the
// reap paths fire any latched completion interrupts.
func mqTraffic(mq *driver.MQNIC, payload []byte) error {
	for q := 0; q < len(mq.Queues); q++ {
		if err := mq.Send(payload); err != nil {
			return err
		}
	}
	if _, err := mq.PumpAndReapAll(); err != nil {
		return err
	}
	for q := 0; q < len(mq.Queues); q++ {
		if err := mq.Deliver(q, payload); err != nil {
			return err
		}
	}
	_, err := mq.ReapRxAll()
	return err
}

// intchaosCell drives one hostile-MSI scenario against a supervised,
// interrupt-audited multi-queue NIC. The legitimate workload keeps raising
// and servicing real completion interrupts while the hostile requester
// layers its messages on top; the interrupt oracle judges every delivery.
func intchaosCell(mode sim.Mode, scenario chaos.IntScenario, seed uint64, rounds int) (CellMetrics, error) {
	sys, err := sim.NewSystem(mode, 1<<15)
	if err != nil {
		return CellMetrics{}, err
	}
	defer sys.Close()
	f := sys.EnableFaults(faults.UniformConfig(seed, 0))
	orc := sys.EnableAudit()
	iorc, err := sys.EnableIntAudit()
	if err != nil {
		return CellMetrics{}, err
	}
	mq, err := sys.HotAttachMQNIC(device.ProfileBRCM, nicBDF, 2, false)
	if err != nil {
		return CellMetrics{}, err
	}
	sup := sys.Supervise(nicBDF, mq)
	sup.Breaker = driver.NewBreaker()
	sup.Isolator = sys.IsolatorFor(nicBDF)
	host := chaos.NewIntHostile(sys.IntRemap, iorc, msiBDF, nicBDF)

	payload := make([]byte, 1024)
	for i := range payload {
		payload[i] = byte(i)
	}
	for round := 0; round < rounds; round++ {
		_ = sup.Do(func() error { return mqTraffic(mq, payload) })
		switch scenario {
		case chaos.VectorStorm:
			host.RunInt(scenario, 16)
		case chaos.SpoofBDF:
			host.RunInt(scenario, 8)
		case chaos.IRTEReplay:
			// Periodic vector rebalance: tear the queues' sources down,
			// replay the freed indices as the ghost, then rewire. Deferred
			// IEC invalidation leaves the freed entries cached and
			// deliverable until the batched flush — the stale window the
			// oracle must flag.
			if round%8 == 7 {
				sys.DropIntSources(nicBDF)
				host.RunInt(scenario, 8)
				if err := sys.WireMQNICInterrupts(mq, nicBDF, false); err != nil {
					return CellMetrics{}, fmt.Errorf("vector rebalance: %w", err)
				}
			}
		}
		_, _ = sup.Watch()
	}

	c := CellMetrics{
		Injected:       f.TotalInjected(),
		Recovery:       sup.Stats,
		RecoveryCycles: sys.CPU.Total(cycles.Recovery),
	}
	var pkts uint64
	for q := 0; q < len(mq.Queues); q++ {
		nic := mq.NIC(q)
		pkts += nic.TxPackets + nic.RxPackets
	}
	if pkts > 0 {
		c.CyclesPerOp = float64(sys.CPU.Now()) / float64(pkts)
		c.Gbps = perfmodel.Gbps(sys.Model, c.CyclesPerOp, device.ProfileBRCM.LineRateGbps)
	}
	recordAudit(&c, orc, pkts)
	recordIntAudit(&c, sys.IntRemap, iorc)
	c.Chaos = host.Stats
	slo := sup.SLO()
	c.Outages = slo.Outages
	c.DowntimeCycles = slo.DowntimeCycles
	c.MTTRCycles = slo.MTTRCycles()
	c.Availability = slo.Availability(sys.CPU.Now())
	c.BreakerTrips = sup.Breaker.Trips
	c.Readmissions = sup.Breaker.Readmissions
	c.Clock = sys.CPU.Snapshot()
	return c, nil
}

// hotplugCell drives one topology-churn scenario through the lifecycle
// state machine under full (DMA + interrupt) audit. The SLO numbers here
// come from the lifecycle ledger: an outage runs from a surprise removal to
// the replug that returns the slot to Live.
func hotplugCell(mode sim.Mode, scenario string, seed uint64, rounds int) (CellMetrics, error) {
	sys, err := sim.NewSystem(mode, 1<<15)
	if err != nil {
		return CellMetrics{}, err
	}
	defer sys.Close()
	f := sys.EnableFaults(faults.UniformConfig(seed, 0))
	orc := sys.EnableAudit()
	iorc, err := sys.EnableIntAudit()
	if err != nil {
		return CellMetrics{}, err
	}
	lc := sys.LifecycleFor(nicBDF)
	payload := make([]byte, 1024)
	for i := range payload {
		payload[i] = byte(i)
	}

	c := CellMetrics{}

	// attach brings a fresh device into the slot; when it closes a removal
	// outage, the width lands in the cell's SLO ledger.
	attach := func() (*driver.MQNIC, error) {
		wasRemoved := lc.State() == sim.SurpriseRemoved || lc.State() == sim.Quarantined
		mq, err := sys.HotAttachMQNIC(hotplugProfile(), nicBDF, 2, false)
		if err != nil {
			return nil, err
		}
		if wasRemoved {
			c.Outages++
			c.DowntimeCycles += lc.OutageCycles()
		}
		return mq, nil
	}
	// yank latches fresh completions on every queue, surprise-removes the
	// device, then has the ghost's reap paths run: anything they deliver is
	// a ghost delivery the gate fails on.
	yank := func(mq *driver.MQNIC) error {
		for q := 0; q < len(mq.Queues); q++ {
			if err := mq.Send(payload); err != nil {
				return err
			}
		}
		for _, drv := range mq.Queues {
			if _, err := drv.PumpTx(int(drv.TxRing().Pending())); err != nil {
				return err
			}
		}
		before := sys.IntRemap.Stats().Delivered
		if err := lc.SurpriseRemove(); err != nil {
			return err
		}
		for _, drv := range mq.Queues {
			_, _ = drv.ReapTx()
			_, _ = drv.ReapRx()
		}
		c.GhostDeliveries += sys.IntRemap.Stats().Delivered - before
		return nil
	}
	// supervised runs n traffic rounds on mq under a fresh breaker-equipped
	// supervisor (the previous one died with the previous device).
	supervised := func(mq *driver.MQNIC, n int) {
		sup := sys.Supervise(nicBDF, mq)
		sup.Breaker = driver.NewBreaker()
		for i := 0; i < n; i++ {
			_ = sup.Do(func() error { return mqTraffic(mq, payload) })
			_, _ = sup.Watch()
		}
		addRecovery(&c.Recovery, sup.Stats)
	}

	switch scenario {
	case HotplugAttachStorm:
		phases := 6
		perPhase := rounds / phases
		if perPhase < 1 {
			perPhase = 1
		}
		for p := 0; p < phases; p++ {
			mq, err := attach()
			if err != nil {
				return CellMetrics{}, fmt.Errorf("phase %d attach: %w", p, err)
			}
			supervised(mq, perPhase)
			if err := yank(mq); err != nil {
				return CellMetrics{}, fmt.Errorf("phase %d yank: %w", p, err)
			}
		}
		// Final replug closes the last outage.
		mq, err := attach()
		if err != nil {
			return CellMetrics{}, fmt.Errorf("final attach: %w", err)
		}
		supervised(mq, perPhase)

	case HotplugDMAEarly:
		// The device DMAs before the OS ever attached it: in every
		// protected mode the accesses must fault (there is no context/table
		// entry to translate through). The probes target another tenant's
		// allocated buffer so the unprotected anchor shows what actually
		// lands without an IOMMU.
		victim, err := sys.Mem.AllocFrame()
		if err != nil {
			return CellMetrics{}, err
		}
		probe := make([]byte, 64)
		for i := 0; i < rounds; i++ {
			c.Chaos.Attempts++
			iova := uint64(victim.PA()) + uint64(i%63)*64
			if err := sys.Eng.Write(nicBDF, iova, probe); err != nil {
				c.Chaos.Contained++
			} else {
				c.Chaos.Landed++
			}
		}
		mq, err := attach()
		if err != nil {
			return CellMetrics{}, err
		}
		supervised(mq, rounds)

	case HotplugSurprise:
		mq, err := attach()
		if err != nil {
			return CellMetrics{}, err
		}
		supervised(mq, rounds/2)
		if err := yank(mq); err != nil {
			return CellMetrics{}, err
		}
		if err := lc.Quarantine(); err != nil {
			return CellMetrics{}, err
		}
		// A quarantined slot stays silent until the operator clears it.
		for _, drv := range mq.Queues {
			_, _ = drv.ReapTx()
		}
		mq2, err := attach()
		if err != nil {
			return CellMetrics{}, fmt.Errorf("replug from quarantine: %w", err)
		}
		supervised(mq2, rounds-rounds/2)

	default:
		return CellMetrics{}, fmt.Errorf("unknown hot-plug scenario %q", scenario)
	}

	c.Injected = f.TotalInjected()
	c.RecoveryCycles = sys.CPU.Total(cycles.Recovery)
	c.Attaches = lc.Attaches
	c.Removals = lc.Removals
	c.Quarantines = lc.Quarantines
	if c.Outages > 0 {
		c.MTTRCycles = float64(c.DowntimeCycles) / float64(c.Outages)
	}
	if now := sys.CPU.Now(); now > 0 {
		c.Availability = 1 - float64(c.DowntimeCycles)/float64(now)
	}
	recordAudit(&c, orc, 0)
	recordIntAudit(&c, sys.IntRemap, iorc)
	c.Clock = sys.CPU.Snapshot()
	return c, nil
}

// IntremapViolationsGate checks the interrupt-isolation claims the intchaos
// and hot-plug cells must uphold:
//
//   - outside the deliberate stale window, no cell with remapping hardware
//     (every mode but none) may record a delivered interrupt violation;
//   - liveness: the deferred modes' irte-replay cells must record int-stale
//     deliveries — zero there means the oracle went blind, not that the
//     deferred IEC closed its window;
//   - attack cells with attempts must show blocked messages (the remapper
//     actually refused something);
//   - hot-plug: every surprise removal closes with a finite outage (the SLO
//     ledger has an MTTR for it), ghosts never deliver, and early DMA never
//     lands under protection.
func (r Result) IntremapViolationsGate() []string {
	var fails []string
	deferReplayCells, sawStale := 0, false
	for i, k := range r.Keys {
		c := r.Cells[i]
		if !r.done(i) || (k.IntScenario == "" && k.Hotplug == "") {
			continue
		}
		if k.Mode == sim.None {
			continue // no remapping hardware, nothing to gate
		}
		deferMode := k.Mode == sim.Defer || k.Mode == sim.DeferPlus
		if k.IntScenario == string(chaos.IRTEReplay) && deferMode {
			// The stale window is this cell's subject: landings are expected
			// here (and required, via the liveness check below), so neither
			// the zero-violations nor the must-block expectation applies.
			deferReplayCells++
			if c.IntByReason[audit.IntReasonStale] > 0 {
				sawStale = true
			}
		} else {
			if c.IntViolations != 0 {
				fails = append(fails, fmt.Sprintf("%s: %d delivered interrupt violations", k, c.IntViolations))
			}
			if k.IntScenario != "" && c.Chaos.Attempts > 0 && c.IntBlocked == 0 {
				fails = append(fails, fmt.Sprintf("%s: hostile MSIs attempted but none blocked — remapper asleep", k))
			}
		}
		if k.Hotplug != "" {
			if c.GhostDeliveries != 0 {
				fails = append(fails, fmt.Sprintf("%s: %d interrupts delivered by a removed device", k, c.GhostDeliveries))
			}
			if c.Removals > 0 && (c.Outages != c.Removals || c.MTTRCycles <= 0) {
				fails = append(fails, fmt.Sprintf("%s: %d removals but %d finished outages (MTTR %.0f) — SLO ledger incomplete", k, c.Removals, c.Outages, c.MTTRCycles))
			}
			if k.Hotplug == HotplugDMAEarly && c.Chaos.Landed != 0 {
				fails = append(fails, fmt.Sprintf("%s: %d pre-attach DMAs landed under protection", k, c.Chaos.Landed))
			}
		}
	}
	if deferReplayCells > 0 && !sawStale {
		fails = append(fails, "defer irte-replay cells recorded zero stale deliveries — interrupt oracle liveness check failed")
	}
	return fails
}

// AuditViolationsGate checks the isolation claims the audited cells must
// uphold and returns one failure message per broken expectation:
//
//   - gap-free modes (strict, strict+, riommu-, riommu) must be violation-
//     free in every audited cell that neither injects faults (rate > 0) nor
//     runs the cascade scenario — injected invalidation-drop/delay errata can
//     defeat even strict invalidation, which is the erratum's point.
//   - overreach is gated only for the rIOMMU modes: page-granular baseline
//     protection cannot contain sub-page overreach (§4), byte-granular rPTEs
//     must.
//   - liveness: the deferred modes' stale-replay cells must record stale
//     violations — zero there means the auditor went blind, not that the
//     defer window closed.
func (r Result) AuditViolationsGate() []string {
	var fails []string
	deferStaleCells, sawDeferStale := 0, false
	for i, k := range r.Keys {
		c := r.Cells[i]
		if !r.done(i) || !c.Audited {
			continue
		}
		if k.Scenario == string(chaos.Cascade) || k.Rate > 0 {
			continue
		}
		if k.Scenario == string(chaos.StaleReplay) && (k.Mode == sim.Defer || k.Mode == sim.DeferPlus) {
			deferStaleCells++
			if c.ByReason[audit.ReasonStale] > 0 {
				sawDeferStale = true
			}
		}
		if k.Scenario == string(chaos.Overreach) {
			if (k.Mode == sim.RIOMMU || k.Mode == sim.RIOMMUMinus) && c.Violations != 0 {
				fails = append(fails, fmt.Sprintf("%s: %d violations — rIOMMU must contain sub-page overreach", k, c.Violations))
			}
			continue
		}
		if k.Mode.Safe() && c.Violations != 0 {
			fails = append(fails, fmt.Sprintf("%s: %d isolation violations in a gap-free mode", k, c.Violations))
		}
	}
	if deferStaleCells > 0 && !sawDeferStale {
		fails = append(fails, "defer stale-replay cells recorded zero stale violations — auditor liveness check failed")
	}
	return fails
}

// Render produces the human-readable campaign tables from a merged result.
// It walks Keys in grid order only, so its output is worker-count
// independent.
func (r Result) Render() string {
	var b strings.Builder

	// Clean NIC anchors per mode for the degradation column.
	clean := map[sim.Mode]CellMetrics{}
	for i, k := range r.Keys {
		if k.Device == "nic" && k.Clean {
			clean[k.Mode] = r.Cells[i]
		}
	}

	nicTab := stats.NewTable(
		fmt.Sprintf("NIC campaign — %s, %d rounds/cell", device.ProfileBRCM.Name, r.Opts.Rounds),
		"mode", "rate", "injected", "recov", "retries", "wdog", "degrade", "unrec", "cyc/pkt", "Gbps", "vs clean")
	nicTab.AlignLeft(0)
	var byClass stats.Counters
	for i, k := range r.Keys {
		if k.Device != "nic" || k.Clean || k.Cores > 1 || k.Churn > 0 {
			continue
		}
		c := r.Cells[i]
		for _, cl := range faults.Classes() {
			byClass.Add(cl.String(), c.ByClass[cl.String()])
		}
		vs := "n/a"
		if anchor := clean[k.Mode]; anchor.Gbps > 0 {
			vs = fmt.Sprintf("%.1f%%", 100*c.Gbps/anchor.Gbps)
		}
		nicTab.Row(k.Mode.String(), fmt.Sprintf("%g", k.Rate), c.Injected, c.Recovery.Recoveries,
			c.Recovery.Retries, c.Recovery.WatchdogFires, c.Recovery.Degradations,
			c.Recovery.Unrecovered, c.CyclesPerOp, c.Gbps, vs)
	}
	b.WriteString(nicTab.String())
	b.WriteByte('\n')
	b.WriteString(byClass.Table("Injected faults by class (NIC sweep total)").String())
	b.WriteByte('\n')

	blkTab := stats.NewTable(
		fmt.Sprintf("Block-device campaign — %d rounds/cell", r.Opts.Rounds),
		"device", "mode", "rate", "injected", "recov", "retries", "wdog", "unrec", "recovery cyc", "cyc/cmd")
	blkTab.AlignLeft(0).AlignLeft(1)
	for i, k := range r.Keys {
		if k.Device == "nic" {
			continue
		}
		c := r.Cells[i]
		blkTab.Row(k.Device, k.Mode.String(), fmt.Sprintf("%g", k.Rate), c.Injected,
			c.Recovery.Recoveries, c.Recovery.Retries, c.Recovery.WatchdogFires,
			c.Recovery.Unrecovered, c.RecoveryCycles, c.CyclesPerOp)
	}
	b.WriteString(blkTab.String())

	hasCores := false
	for _, k := range r.Keys {
		if k.Cores > 1 {
			hasCores = true
			break
		}
	}
	if hasCores {
		mqTab := stats.NewTable(
			fmt.Sprintf("NIC scale-out campaign — %s multi-queue, %d rounds/cell", device.ProfileBRCM.Name, r.Opts.Rounds),
			"mode", "cores", "rate", "injected", "recov", "retries", "wdog", "unrec", "cyc/pkt", "Gbps")
		mqTab.AlignLeft(0)
		for i, k := range r.Keys {
			if k.Cores <= 1 {
				continue
			}
			c := r.Cells[i]
			mqTab.Row(k.Mode.String(), k.Cores, fmt.Sprintf("%g", k.Rate), c.Injected,
				c.Recovery.Recoveries, c.Recovery.Retries, c.Recovery.WatchdogFires,
				c.Recovery.Unrecovered, c.CyclesPerOp, c.Gbps)
		}
		b.WriteByte('\n')
		b.WriteString(mqTab.String())
	}

	hasChaos := false
	for _, k := range r.Keys {
		if k.Scenario != "" {
			hasChaos = true
			break
		}
	}
	if hasChaos {
		chTab := stats.NewTable(
			fmt.Sprintf("Chaos campaign — hostile NIC, %d rounds/cell", r.Opts.Rounds),
			"mode", "scenario", "attempts", "contained", "landed", "viol", "stale", "bounds", "viol/Mpkt", "trips", "readmit", "mttr cyc", "avail")
		chTab.AlignLeft(0).AlignLeft(1)
		for i, k := range r.Keys {
			if k.Scenario == "" {
				continue
			}
			c := r.Cells[i]
			chTab.Row(k.Mode.String(), k.Scenario, c.Chaos.Attempts, c.Chaos.Contained,
				c.Chaos.Landed, c.Violations, c.ByReason[audit.ReasonStale],
				c.ByReason[audit.ReasonBounds], fmt.Sprintf("%.1f", c.ViolPerMPkts),
				c.BreakerTrips, c.Readmissions, fmt.Sprintf("%.0f", c.MTTRCycles),
				fmt.Sprintf("%.4f", c.Availability))
		}
		b.WriteByte('\n')
		b.WriteString(chTab.String())
	}

	hasInt := false
	for _, k := range r.Keys {
		if k.IntScenario != "" {
			hasInt = true
			break
		}
	}
	if hasInt {
		intTab := stats.NewTable(
			fmt.Sprintf("Interrupt chaos campaign — hostile MSI source, %d rounds/cell", r.Opts.Rounds),
			"mode", "scenario", "attempts", "contained", "landed", "delivered", "blocked", "viol", "stale", "trips", "mttr cyc", "avail")
		intTab.AlignLeft(0).AlignLeft(1)
		for i, k := range r.Keys {
			if k.IntScenario == "" {
				continue
			}
			c := r.Cells[i]
			intTab.Row(k.Mode.String(), k.IntScenario, c.Chaos.Attempts, c.Chaos.Contained,
				c.Chaos.Landed, c.IntDelivered, c.IntBlocked, c.IntViolations,
				c.IntByReason[audit.IntReasonStale], c.BreakerTrips,
				fmt.Sprintf("%.0f", c.MTTRCycles), fmt.Sprintf("%.4f", c.Availability))
		}
		b.WriteByte('\n')
		b.WriteString(intTab.String())
	}

	hasPlug := false
	for _, k := range r.Keys {
		if k.Hotplug != "" {
			hasPlug = true
			break
		}
	}
	if hasPlug {
		hpTab := stats.NewTable(
			fmt.Sprintf("Hot-plug campaign — lifecycle churn, %d rounds/cell", r.Opts.Rounds),
			"mode", "scenario", "attach", "remove", "quar", "ghost", "early landed", "int viol", "outages", "mttr cyc", "avail")
		hpTab.AlignLeft(0).AlignLeft(1)
		for i, k := range r.Keys {
			if k.Hotplug == "" {
				continue
			}
			c := r.Cells[i]
			hpTab.Row(k.Mode.String(), k.Hotplug, c.Attaches, c.Removals, c.Quarantines,
				c.GhostDeliveries, c.Chaos.Landed, c.IntViolations, c.Outages,
				fmt.Sprintf("%.0f", c.MTTRCycles), fmt.Sprintf("%.4f", c.Availability))
		}
		b.WriteByte('\n')
		b.WriteString(hpTab.String())
	}

	hasTenants := false
	for _, k := range r.Keys {
		if k.Tenants > 0 {
			hasTenants = true
			break
		}
	}
	if hasTenants {
		tTab := stats.NewTable(
			fmt.Sprintf("Multi-tenant campaign — hostile tenant 0, %d rounds/cell", r.Opts.Rounds),
			"mode", "scenario", "tenants", "attempts", "contained", "xten", "tviol", "s2miss", "spoofblk", "throttle", "quar", "victim avail", "hostile avail")
		tTab.AlignLeft(0).AlignLeft(1)
		for i, k := range r.Keys {
			if k.Tenants == 0 {
				continue
			}
			c := r.Cells[i]
			tTab.Row(k.Mode.String(), k.TenantScenario, k.Tenants, c.Chaos.Attempts,
				c.Chaos.Contained, c.CrossTenant, c.TenantViolations, c.S2Misses,
				c.SpoofBlocked, c.Throttled, c.TenantQuarantines,
				fmt.Sprintf("%.4f", c.VictimAvailability),
				fmt.Sprintf("%.4f", c.HostileAvailability))
		}
		b.WriteByte('\n')
		b.WriteString(tTab.String())
	}

	hasChurn := false
	for _, k := range r.Keys {
		if k.Churn > 0 {
			hasChurn = true
			break
		}
	}
	if hasChurn {
		cTab := stats.NewTable(
			fmt.Sprintf("Connection-churn campaign — %s fleet traffic, %d ticks/cell", device.ProfileBRCM.Name, r.Opts.Rounds),
			"mode", "conns", "pkts", "opens", "closes", "bypass", "checked", "viol", "cyc/pkt", "Gbps")
		cTab.AlignLeft(0)
		for i, k := range r.Keys {
			if k.Churn == 0 {
				continue
			}
			c := r.Cells[i]
			cTab.Row(k.Mode.String(), k.Churn, c.DataPackets, c.Opens, c.Closes,
				c.BypassPackets, c.Checked, c.Violations, c.CyclesPerOp, c.Gbps)
		}
		b.WriteByte('\n')
		b.WriteString(cTab.String())
	}
	return b.String()
}
