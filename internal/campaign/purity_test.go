package campaign

import (
	"bytes"
	"testing"

	"riommu/internal/chaos"
	"riommu/internal/sim"
)

// TestTenantReportPurity is the byte-level companion to
// TestTenantGridAppended: switching the tenant axis on must leave every
// pre-existing cell's marshalled report bytes untouched. Grid position
// stability alone is not enough — a shared-state leak (clock, allocator,
// RNG) between tenant and legacy cells would show up here as a metric
// drift even with identical keys.
func TestTenantReportPurity(t *testing.T) {
	if testing.Short() {
		t.Skip("two campaign sweeps in -short")
	}
	base := Options{
		Seed:    31,
		Rates:   []float64{0, 0.001},
		Modes:   []sim.Mode{sim.Strict, sim.RIOMMU},
		Rounds:  10,
		Workers: 4,
		Audit:   true,
	}
	ext := base
	ext.Tenants = []int{2}
	ext.TenantChaos = []chaos.TenantScenario{chaos.S2StaleReplay}

	resBase, err := Run(base)
	if err != nil {
		t.Fatalf("base Run: %v", err)
	}
	resExt, err := Run(ext)
	if err != nil {
		t.Fatalf("extended Run: %v", err)
	}
	repBase := BuildReport(resBase)
	repExt := BuildReport(resExt)
	n := len(repBase.Cells)
	if len(repExt.Cells) <= n {
		t.Fatalf("extended report not larger: %d vs %d cells", len(repExt.Cells), n)
	}

	// Compare at the canonical byte level: truncate the extended report to
	// the legacy cells and the two documents must be identical.
	trunc := repExt
	trunc.Cells = repExt.Cells[:n]
	wantB, err := MarshalReport(repBase)
	if err != nil {
		t.Fatal(err)
	}
	gotB, err := MarshalReport(trunc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantB, gotB) {
		t.Fatalf("legacy cells drifted when the tenant axis was enabled:\nbase:\n%s\nextended (truncated):\n%s", wantB, gotB)
	}

	for _, c := range repExt.Cells[n:] {
		if _, ok := c.Metrics["cross_tenant"]; !ok {
			t.Fatalf("appended tenant cell %s is missing cross_tenant metric", c.ID)
		}
	}
}
