package campaign

import (
	"fmt"

	"riommu/internal/audit"
	"riommu/internal/chaos"
	"riommu/internal/cycles"
	"riommu/internal/driver"
	"riommu/internal/mem"
	"riommu/internal/pci"
	"riommu/internal/sim"
	"riommu/internal/tenant"
)

// Multi-tenant cell geometry. Guests are deliberately small (2 MiB) so the
// tenant axis can sweep to hundreds of guests without exhausting the memory
// pool; the 64-entry hot-plug NIC profile fits comfortably inside.
const (
	tenantGuestPages = 1 << 9
	// tenantReclaimPages is how many of the hostile guest's top pages the
	// host reclaims (and regrants to a victim) in the stale-replay cell.
	tenantReclaimPages = 4
)

// tenantBDF returns tenant i's workload NIC slot. Tenants spread across
// buses (8 per bus, buses from 1) so the axis scales past 250 guests
// without colliding with the bus-0 single-tenant devices.
func tenantBDF(i int) pci.BDF {
	return pci.NewBDF(uint8(1+i/8), uint8(i%8), 0)
}

// tenantGuest is one tenant's world inside a cell: its guest system, its
// domain in the hypervisor, its workload NIC, and the tenant-scoped guard
// its supervisor feeds.
type tenantGuest struct {
	dom   *tenant.Domain
	sys   *sim.System
	mq    *driver.MQNIC
	sup   *driver.Supervisor
	guard *driver.TenantGuard
	bdf   pci.BDF
}

// tenantCell runs one hostile-tenant scenario: n guests share one
// hypervisor through nested two-stage translation, every guest pushes NIC
// traffic each round, and tenant 0 — kernel and all — attacks the
// blast-radius guarantees through a second device of its own. The tenant
// oracle judges every stage-2 access against the frame-ownership ledger;
// the per-tenant guards make sure only the hostile tenant pays.
func tenantCell(mode sim.Mode, scenario chaos.TenantScenario, seed uint64, rounds, tenants int) (CellMetrics, error) {
	_ = seed // tenant cells are currently deterministic without injection
	host, err := tenant.NewHost(64 + 8*uint64(tenants))
	if err != nil {
		return CellMetrics{}, err
	}
	defer host.Close()
	torc := host.EnableAudit()
	host.BalloonQuota = 3 * floodBalloonPages
	host.BalloonWindow = 4_000_000

	gs := make([]*tenantGuest, tenants)
	for i := range gs {
		sys, err := sim.NewSystem(mode, tenantGuestPages)
		if err != nil {
			return CellMetrics{}, err
		}
		defer sys.Close()
		sys.EnableAudit()
		dom, err := host.AdoptSystem(sys)
		if err != nil {
			return CellMetrics{}, err
		}
		bdf := tenantBDF(i)
		mq, err := host.AttachDevice(dom, hotplugProfile(), bdf, 1)
		if err != nil {
			return CellMetrics{}, err
		}
		guard := driver.NewTenantGuard(sys.CPU, dom.ID)
		// Trip on a small per-window budget and hold the quarantine for
		// longer than the cell runs: a hostile tenant stays out.
		guard.Breaker.Budget = 6
		guard.Breaker.BackoffCycles = 5_000_000
		guard.Breaker.MaxBackoffCycles = 5_000_000
		guard.AddIsolator(sys.IsolatorFor(bdf))
		sup := driver.NewSupervisor(sys.CPU, bdf, mq)
		sup.Guard = guard
		gs[i] = &tenantGuest{dom: dom, sys: sys, mq: mq, sup: sup, guard: guard, bdf: bdf}
	}

	// Tenant 0 is hostile: a second device of its own (function 1 of its
	// workload slot) carries the attacks, so the workload NIC's ring
	// bookkeeping never desynchronizes from a faulted probe.
	h0 := gs[0]
	atkBDF := pci.NewBDF(1, 0, 1)
	aprot, err := h0.sys.ProtectionFor(atkBDF, []uint32{64})
	if err != nil {
		return CellMetrics{}, err
	}
	if err := host.Register(h0.dom, atkBDF); err != nil {
		return CellMetrics{}, err
	}
	h0.guard.AddIsolator(h0.sys.IsolatorFor(atkBDF))
	hostile := chaos.NewHostileTenant(h0.sys.Eng, aprot, atkBDF)
	asup := driver.NewSupervisor(h0.sys.CPU, atkBDF, h0.mq)
	asup.Policy.MaxAttempts = 1 // attacks are not retried (or "recovered")
	asup.Guard = h0.guard

	victims := make([]pci.BDF, 0, tenants-1)
	for _, g := range gs[1:] {
		victims = append(victims, g.bdf)
	}
	if len(victims) > 4 {
		victims = victims[:4] // spoof probes at most 4 victims per round
	}

	// The stale-replay choreography: stage-1 windows over guest frames the
	// hostile kernel owns, warmed once while still granted, reclaimed (and
	// regranted to victim 1 — the LIFO frame allocator guarantees the very
	// same host frames) a third of the way in.
	var reclaimBase uint64
	reclaimAt := rounds / 3
	if scenario == chaos.S2StaleReplay {
		first, err := h0.sys.Mem.AllocFrames(tenantReclaimPages)
		if err != nil {
			return CellMetrics{}, fmt.Errorf("allocating stale-window frames: %w", err)
		}
		reclaimBase = uint64(first.PA())
		gpas := make([]uint64, tenantReclaimPages)
		for i := range gpas {
			gpas[i] = reclaimBase + uint64(i)<<mem.PageShift
		}
		if err := hostile.PlantStale(gpas); err != nil {
			return CellMetrics{}, err
		}
		if err := hostile.Replay(); err != nil {
			return CellMetrics{}, fmt.Errorf("warming stale windows: %w", err)
		}
	}
	overreachBase := uint64(tenantGuestPages) << mem.PageShift

	payload := make([]byte, 1024)
	for i := range payload {
		payload[i] = byte(i)
	}
	for round := 0; round < rounds; round++ {
		for _, g := range gs {
			mq := g.mq
			_ = g.sup.Do(func() error { return mqTraffic(mq, payload) })
		}
		switch scenario {
		case chaos.S2StaleReplay:
			if round == reclaimAt {
				if err := host.Reclaim(h0.dom, reclaimBase, tenantReclaimPages); err != nil {
					return CellMetrics{}, fmt.Errorf("reclaiming hostile pages: %w", err)
				}
				victimGrant := uint64(tenantGuestPages) << mem.PageShift
				if err := host.Grant(gs[1].dom, victimGrant, tenantReclaimPages, pci.DirBidi); err != nil {
					return CellMetrics{}, fmt.Errorf("regranting to victim: %w", err)
				}
			}
			if round > reclaimAt {
				_ = asup.Do(hostile.Replay)
			}
		case chaos.GPAOverreach:
			_ = asup.Do(func() error { return hostile.Overreach(overreachBase) })
		case chaos.BDFSpoof:
			_ = asup.Do(func() error { return hostile.Spoof(victims) })
		case chaos.S2InvFlood:
			_ = asup.Do(func() error {
				err := host.Balloon(h0.dom, floodBalloonPages)
				hostile.Record(err)
				return err
			})
		}
	}

	c := CellMetrics{Chaos: hostile.Stats}
	c.Recovery = h0.sup.Stats
	addRecovery(&c.Recovery, asup.Stats)

	// Hypervisor-level truth: the tenant oracle and the stage-2 counters.
	c.Audited = true
	c.TenantChecked = torc.Checked
	c.TenantViolations = torc.Violations
	c.CrossTenant = torc.CrossTenant
	c.TenantByReason = make(map[string]uint64, len(audit.TenantReasons()))
	for _, r := range audit.TenantReasons() {
		c.TenantByReason[r] = torc.ByReason[r]
	}
	for _, dom := range host.Domains() {
		c.S2Hits += dom.S2Hits
		c.S2Misses += dom.S2Misses
		c.S2Faults += dom.S2Faults
		c.Ballooned += dom.Ballooned
	}
	c.S2Cycles = host.Clk.Total(cycles.Stage2)
	c.SpoofBlocked = host.SpoofBlocked
	c.Throttled = host.Throttled

	// Guest-level aggregates: stage-1 audit verdicts, packets, and cycles
	// summed across every guest (each guest has its own virtual clock).
	var pkts, cyc uint64
	c.ByReason = make(map[string]uint64, len(audit.Reasons()))
	for _, g := range gs {
		if orc := g.sys.Auditor; orc != nil {
			c.Checked += orc.Checked
			c.Violations += orc.Violations
			for _, r := range audit.Reasons() {
				c.ByReason[r] += orc.ByReason[r]
			}
		}
		for q := 0; q < len(g.mq.Queues); q++ {
			nic := g.mq.NIC(q)
			pkts += nic.TxPackets + nic.RxPackets
		}
		cyc += g.sys.CPU.Now()
		c.RecoveryCycles += g.sys.CPU.Total(cycles.Recovery)
	}
	if pkts > 0 {
		c.CyclesPerOp = float64(cyc) / float64(pkts)
	}

	// Blast-radius verdict: the hostile tenant's availability (its guard
	// trips take its whole fleet down) against the worst victim's, which
	// must be exactly 1.0 — no victim ever sees a failed operation.
	for _, g := range gs {
		c.TenantQuarantines += g.guard.Quarantines
		c.Readmissions += g.guard.Readmissions
	}
	c.BreakerTrips = h0.guard.Breaker.Trips
	c.HostileAvailability = h0.sup.SLO().Availability(h0.sys.CPU.Now())
	c.VictimAvailability = 1
	for _, g := range gs[1:] {
		if av := g.sup.SLO().Availability(g.sys.CPU.Now()); av < c.VictimAvailability {
			c.VictimAvailability = av
		}
	}
	slo := h0.sup.SLO()
	c.Outages = slo.Outages
	c.DowntimeCycles = slo.DowntimeCycles
	c.MTTRCycles = slo.MTTRCycles()
	c.Availability = c.HostileAvailability
	c.Clock = h0.sys.CPU.Snapshot()
	return c, nil
}

// floodBalloonPages is the hostile balloon burst per round; the host quota
// admits three bursts per window before throttling.
const floodBalloonPages = 8

// CrossTenantViolationsGate checks the multi-tenant containment claims and
// returns one failure message per broken expectation:
//
//   - zero cross-tenant accesses and zero tenant-oracle violations of any
//     kind, in every mode — stage 2 answers to no stage-1 weakness;
//   - liveness: the oracle checked accesses, stage-2 walks actually ran,
//     the hostile tenant actually attacked, and its attacks were contained
//     (or, for the invalidation flood, throttled);
//   - the device directory blocked spoofs even in the unprotected mode;
//   - blast radius: the hostile tenant was quarantined and shows downtime,
//     while every victim stayed at exactly 100% availability.
func (r Result) CrossTenantViolationsGate() []string {
	var fails []string
	for i, k := range r.Keys {
		if !r.done(i) || k.Tenants == 0 {
			continue
		}
		c := r.Cells[i]
		if c.CrossTenant != 0 {
			fails = append(fails, fmt.Sprintf("%s: %d cross-tenant accesses — blast radius broken", k, c.CrossTenant))
		}
		if c.TenantViolations != 0 {
			fails = append(fails, fmt.Sprintf("%s: %d tenant-oracle violations", k, c.TenantViolations))
		}
		if c.TenantChecked == 0 {
			fails = append(fails, fmt.Sprintf("%s: tenant oracle verified nothing — oracle asleep", k))
		}
		if c.S2Misses == 0 {
			fails = append(fails, fmt.Sprintf("%s: zero stage-2 walks — nested translation not exercised", k))
		}
		if c.Chaos.Attempts == 0 {
			fails = append(fails, fmt.Sprintf("%s: hostile tenant never attacked", k))
		}
		switch k.TenantScenario {
		case string(chaos.S2StaleReplay), string(chaos.GPAOverreach), string(chaos.BDFSpoof):
			if c.Chaos.Contained == 0 {
				fails = append(fails, fmt.Sprintf("%s: no hostile probe was contained", k))
			}
		case string(chaos.S2InvFlood):
			if c.Throttled == 0 {
				fails = append(fails, fmt.Sprintf("%s: balloon flood never throttled", k))
			}
		}
		if k.TenantScenario == string(chaos.BDFSpoof) && k.Mode == sim.None && c.SpoofBlocked == 0 {
			fails = append(fails, fmt.Sprintf("%s: device directory blocked nothing in the unprotected mode", k))
		}
		if c.TenantQuarantines == 0 {
			fails = append(fails, fmt.Sprintf("%s: hostile tenant never quarantined", k))
		}
		if c.HostileAvailability >= 1 {
			fails = append(fails, fmt.Sprintf("%s: hostile tenant shows no downtime (availability %.4f)", k, c.HostileAvailability))
		}
		if c.VictimAvailability != 1 {
			fails = append(fails, fmt.Sprintf("%s: victim availability %.4f — quarantine leaked across tenants", k, c.VictimAvailability))
		}
	}
	return fails
}
