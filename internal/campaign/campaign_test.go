package campaign

import (
	"bytes"
	"strings"
	"testing"

	"riommu/internal/audit"
	"riommu/internal/chaos"
	"riommu/internal/sim"
)

func testOptions(workers int) Options {
	return Options{
		Seed:    42,
		Rates:   []float64{0, 0.01},
		Modes:   []sim.Mode{sim.Strict, sim.RIOMMU},
		Rounds:  25,
		Workers: workers,
	}
}

// TestSerialParallelEquivalence: the campaign's rendered tables and JSON
// report are byte-identical for any worker count, including the fault-path
// cells where per-cell seeding is what keeps the injected streams stable.
func TestSerialParallelEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-worker sweep is slow under -short")
	}
	run := func(workers int) (string, []byte) {
		res, err := Run(testOptions(workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		j, err := MarshalReport(BuildReport(res))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return res.Render(), j
	}
	wantText, wantJSON := run(1)
	if !strings.Contains(wantText, "NIC campaign") || !strings.Contains(wantText, "Block-device campaign") {
		t.Fatalf("rendered campaign missing expected tables:\n%s", wantText)
	}
	for _, workers := range []int{2, 8} {
		gotText, gotJSON := run(workers)
		if gotText != wantText {
			t.Errorf("workers=%d: rendered text differs from serial", workers)
		}
		if !bytes.Equal(gotJSON, wantJSON) {
			t.Errorf("workers=%d: JSON report differs from serial", workers)
		}
	}
}

// TestGridOrder: the grid is the canonical cell order — NIC anchors and
// sweeps first, then the block devices — and cell identities are unique
// (CellSeed derives per-cell fault streams from them).
func TestGridOrder(t *testing.T) {
	opts := testOptions(1)
	keys := opts.Grid()
	wantLen := len(opts.Modes)*(1+len(opts.Rates)) + 2*len(opts.Modes)*len(opts.Rates)
	if len(keys) != wantLen {
		t.Fatalf("grid has %d cells, want %d", len(keys), wantLen)
	}
	if !keys[0].Clean || keys[0].Device != "nic" || keys[0].Mode != sim.Strict {
		t.Fatalf("grid must start with the strict NIC anchor, got %s", keys[0])
	}
	seen := map[string]bool{}
	sawBlock := false
	for _, k := range keys {
		id := k.String()
		if seen[id] {
			t.Errorf("duplicate cell identity %q", id)
		}
		seen[id] = true
		if k.Device != "nic" {
			sawBlock = true
		} else if sawBlock {
			t.Errorf("NIC cell %s after block cells: grid order violated", id)
		}
	}
}

// TestFaultCellsInject: non-zero rates actually exercise the recovery layer,
// so the equivalence test above covers fault-campaign output, not just clean
// runs.
func TestFaultCellsInject(t *testing.T) {
	res, err := Run(testOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	var injected, recovered uint64
	for i, k := range res.Keys {
		c := res.Cells[i]
		if k.Clean || k.Rate == 0 {
			if c.Injected != 0 {
				t.Errorf("%s: clean cell injected %d faults", k, c.Injected)
			}
			continue
		}
		injected += c.Injected
		recovered += c.Recovery.Recoveries
		if c.Recovery.Unrecovered != 0 {
			t.Errorf("%s: %d unrecovered faults", k, c.Recovery.Unrecovered)
		}
	}
	if injected == 0 {
		t.Error("fault cells injected nothing; campaign is not testing recovery")
	}
	if recovered == 0 {
		t.Error("no recoveries recorded across fault cells")
	}
}

func chaosOptions(workers int) Options {
	o := testOptions(workers)
	o.Audit = true
	o.Chaos = chaos.Scenarios()
	return o
}

// TestChaosSerialParallelEquivalence: the audited chaos campaign — oracle,
// hostile device, breaker, SLO ledger and all — stays byte-identical across
// worker counts.
func TestChaosSerialParallelEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-worker chaos sweep is slow under -short")
	}
	run := func(workers int) (string, []byte) {
		res, err := Run(chaosOptions(workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		j, err := MarshalReport(BuildReport(res))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return res.Render(), j
	}
	wantText, wantJSON := run(1)
	if !strings.Contains(wantText, "Chaos campaign") {
		t.Fatalf("rendered campaign missing chaos table:\n%s", wantText)
	}
	for _, workers := range []int{2, 8} {
		gotText, gotJSON := run(workers)
		if gotText != wantText {
			t.Errorf("workers=%d: rendered chaos text differs from serial", workers)
		}
		if !bytes.Equal(gotJSON, wantJSON) {
			t.Errorf("workers=%d: chaos JSON report differs from serial", workers)
		}
	}
}

// TestChaosAsymmetry: the central claim the audit quantifies — under stale
// replay the deferred modes leak (non-zero, seed-deterministic violation
// counts) while the gap-free modes stay at exactly zero; sub-page overreach
// lands under page-granular baseline protection but never under rIOMMU.
func TestChaosAsymmetry(t *testing.T) {
	res, err := Run(Options{
		Seed:    42,
		Modes:   []sim.Mode{sim.Strict},
		Rates:   []float64{0},
		Rounds:  25,
		Workers: 4,
		Audit:   true,
		Chaos:   chaos.Scenarios(),
	})
	if err != nil {
		t.Fatal(err)
	}
	var deferStale uint64
	for i, k := range res.Keys {
		c := res.Cells[i]
		if k.Scenario == "" {
			continue
		}
		// inv-flood pressures the invalidation path with legitimate map/unmap
		// churn rather than hostile DMAs, so it records no attack attempts.
		if c.Chaos.Attempts == 0 && k.Scenario != string(chaos.Cascade) && k.Scenario != string(chaos.InvFlood) {
			t.Errorf("%s: hostile device never attacked", k)
		}
		switch k.Scenario {
		case string(chaos.StaleReplay):
			if k.Mode == sim.Defer || k.Mode == sim.DeferPlus {
				deferStale += c.ByReason[audit.ReasonStale]
				if c.Violations == 0 {
					t.Errorf("%s: deferred invalidation showed no stale window", k)
				}
			} else if k.Mode.Safe() && c.Violations != 0 {
				t.Errorf("%s: %d violations in a gap-free mode", k, c.Violations)
			}
		case string(chaos.Overreach):
			switch k.Mode {
			case sim.RIOMMU, sim.RIOMMUMinus:
				if c.Violations != 0 || c.Chaos.Landed != 0 {
					t.Errorf("%s: rIOMMU let overreach land (viol=%d landed=%d)", k, c.Violations, c.Chaos.Landed)
				}
			case sim.Strict, sim.StrictPlus:
				if c.ByReason[audit.ReasonBounds] == 0 {
					t.Errorf("%s: page-granular mode contained sub-page overreach?", k)
				}
			}
		case string(chaos.ROWrite):
			if k.Mode.Safe() && c.Violations != 0 {
				t.Errorf("%s: read-only write violated isolation", k)
			}
		}
	}
	if deferStale == 0 {
		t.Error("no stale violations across defer stale-replay cells")
	}
	if fails := res.AuditViolationsGate(); len(fails) != 0 {
		t.Errorf("gate failed on a healthy campaign: %v", fails)
	}
}

// TestAuditViolationsGateCatches: the gate flags safe-mode violations and a
// silent (dead) auditor, and ignores cascade/fault-rate cells.
func TestAuditViolationsGateCatches(t *testing.T) {
	mk := func(k Key, c CellMetrics) Result {
		return Result{Keys: []Key{k}, Cells: []CellMetrics{c}}
	}
	bad := mk(Key{Device: "nic", Mode: sim.Strict, Scenario: string(chaos.StaleReplay)},
		CellMetrics{Audited: true, Violations: 3, ByReason: map[string]uint64{audit.ReasonStale: 3}})
	if fails := bad.AuditViolationsGate(); len(fails) != 1 {
		t.Errorf("safe-mode violations not flagged: %v", fails)
	}
	dead := mk(Key{Device: "nic", Mode: sim.Defer, Scenario: string(chaos.StaleReplay)},
		CellMetrics{Audited: true, ByReason: map[string]uint64{}})
	if fails := dead.AuditViolationsGate(); len(fails) != 1 {
		t.Errorf("dead auditor not flagged: %v", fails)
	}
	cascade := mk(Key{Device: "nic", Mode: sim.Strict, Scenario: string(chaos.Cascade)},
		CellMetrics{Audited: true, Violations: 7})
	if fails := cascade.AuditViolationsGate(); len(fails) != 0 {
		t.Errorf("cascade cell wrongly gated: %v", fails)
	}
	rated := mk(Key{Device: "nic", Mode: sim.Strict, Rate: 0.01},
		CellMetrics{Audited: true, Violations: 2})
	if fails := rated.AuditViolationsGate(); len(fails) != 0 {
		t.Errorf("fault-injection cell wrongly gated: %v", fails)
	}
	overreachBase := mk(Key{Device: "nic", Mode: sim.Strict, Scenario: string(chaos.Overreach)},
		CellMetrics{Audited: true, Violations: 5, ByReason: map[string]uint64{audit.ReasonBounds: 5}})
	if fails := overreachBase.AuditViolationsGate(); len(fails) != 0 {
		t.Errorf("baseline overreach wrongly gated (page granularity cannot contain it): %v", fails)
	}
	overreachR := mk(Key{Device: "nic", Mode: sim.RIOMMU, Scenario: string(chaos.Overreach)},
		CellMetrics{Audited: true, Violations: 1, ByReason: map[string]uint64{audit.ReasonBounds: 1}})
	if fails := overreachR.AuditViolationsGate(); len(fails) != 1 {
		t.Errorf("rIOMMU overreach violation not flagged: %v", fails)
	}
}

// TestAuditedLegacyMetricsUnchanged: enabling the oracle must not move a
// single legacy metric — audited campaigns stay comparable to historical
// unaudited ones.
func TestAuditedLegacyMetricsUnchanged(t *testing.T) {
	plain, err := Run(testOptions(2))
	if err != nil {
		t.Fatal(err)
	}
	opts := testOptions(2)
	opts.Audit = true
	audited, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range plain.Keys {
		p, a := plain.Cells[i], audited.Cells[i]
		if p.Injected != a.Injected || p.CyclesPerOp != a.CyclesPerOp ||
			p.Gbps != a.Gbps || p.Recovery != a.Recovery || p.RecoveryCycles != a.RecoveryCycles {
			t.Errorf("%s: legacy metrics moved under audit:\nplain   %+v\naudited %+v", k, p, a)
		}
		if !a.Audited || a.Checked == 0 {
			t.Errorf("%s: audited cell has no audit data", k)
		}
	}
}

func intHotplugOptions(workers int) Options {
	return Options{
		Seed:     42,
		Rates:    []float64{0},
		Modes:    []sim.Mode{sim.Strict},
		Rounds:   24,
		Workers:  workers,
		Audit:    true,
		IntChaos: chaos.IntScenarios(),
		Hotplug:  HotplugScenarios(),
	}
}

// TestIntHotplugSerialParallelEquivalence: the interrupt-chaos and hot-plug
// sweeps — lifecycle churn, remapper, oracle, SLO ledger — stay
// byte-identical across worker counts.
func TestIntHotplugSerialParallelEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-worker sweep is slow under -short")
	}
	run := func(workers int) (string, []byte) {
		res, err := Run(intHotplugOptions(workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		j, err := MarshalReport(BuildReport(res))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return res.Render(), j
	}
	wantText, wantJSON := run(1)
	if !strings.Contains(wantText, "Interrupt chaos campaign") || !strings.Contains(wantText, "Hot-plug campaign") {
		t.Fatalf("rendered campaign missing interrupt/hot-plug tables:\n%s", wantText)
	}
	for _, workers := range []int{2, 8} {
		gotText, gotJSON := run(workers)
		if gotText != wantText {
			t.Errorf("workers=%d: rendered text differs from serial", workers)
		}
		if !bytes.Equal(gotJSON, wantJSON) {
			t.Errorf("workers=%d: JSON report differs from serial", workers)
		}
	}
}

// TestIntChaosAsymmetry: the interrupt analog of TestChaosAsymmetry — the
// remapped modes block every hostile MSI, the deferred modes leak stale
// deliveries exactly in the irte-replay cells, and pass-through (none) lands
// attacks without the oracle crying wolf.
func TestIntChaosAsymmetry(t *testing.T) {
	res, err := Run(intHotplugOptions(4))
	if err != nil {
		t.Fatal(err)
	}
	var deferStale uint64
	for i, k := range res.Keys {
		c := res.Cells[i]
		if k.IntScenario == "" {
			continue
		}
		deferMode := k.Mode == sim.Defer || k.Mode == sim.DeferPlus
		switch k.IntScenario {
		case string(chaos.VectorStorm), string(chaos.SpoofBDF):
			if k.Mode == sim.None {
				if c.Chaos.Attempts > 0 && c.Chaos.Landed == 0 && k.IntScenario == string(chaos.VectorStorm) {
					t.Errorf("%s: unremapped mode blocked a storm?", k)
				}
				if c.IntViolations != 0 {
					t.Errorf("%s: oracle judged a pass-through mode", k)
				}
				continue
			}
			if c.Chaos.Attempts == 0 && k.IntScenario == string(chaos.VectorStorm) {
				t.Errorf("%s: hostile MSI source never fired", k)
			}
			if c.Chaos.Landed != 0 || c.IntViolations != 0 {
				t.Errorf("%s: hostile MSIs landed (landed=%d viol=%d)", k, c.Chaos.Landed, c.IntViolations)
			}
		case string(chaos.IRTEReplay):
			if deferMode {
				deferStale += c.IntByReason[audit.IntReasonStale]
				if c.Chaos.Landed == 0 {
					t.Errorf("%s: deferred IEC showed no stale window", k)
				}
			} else if k.Mode != sim.None && (c.Chaos.Landed != 0 || c.IntViolations != 0) {
				t.Errorf("%s: replay landed under synchronous invalidation (landed=%d viol=%d)", k, c.Chaos.Landed, c.IntViolations)
			}
		}
		if c.IntDelivered == 0 && k.Mode != sim.None {
			t.Errorf("%s: workload delivered no legitimate interrupts", k)
		}
	}
	if deferStale == 0 {
		t.Error("no stale deliveries across defer irte-replay cells")
	}
	if fails := res.IntremapViolationsGate(); len(fails) != 0 {
		t.Errorf("gate failed on a healthy campaign: %v", fails)
	}
	if fails := res.AuditViolationsGate(); len(fails) != 0 {
		t.Errorf("DMA gate failed: %v", fails)
	}
}

// TestHotplugCells: every hot-plug cell churns the lifecycle with a finite
// MTTR per removal, silent ghosts, and (under protection) zero pre-attach
// DMA landings.
func TestHotplugCells(t *testing.T) {
	res, err := Run(intHotplugOptions(4))
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range res.Keys {
		c := res.Cells[i]
		if k.Hotplug == "" {
			continue
		}
		if c.Attaches == 0 {
			t.Errorf("%s: no attaches recorded", k)
		}
		if c.GhostDeliveries != 0 {
			t.Errorf("%s: removed device delivered %d interrupts", k, c.GhostDeliveries)
		}
		switch k.Hotplug {
		case HotplugAttachStorm:
			if c.Removals < 6 || c.Outages != c.Removals || c.MTTRCycles <= 0 {
				t.Errorf("%s: removals=%d outages=%d mttr=%.0f", k, c.Removals, c.Outages, c.MTTRCycles)
			}
		case HotplugDMAEarly:
			if c.Chaos.Attempts == 0 {
				t.Errorf("%s: no early DMA attempted", k)
			}
			if k.Mode != sim.None && c.Chaos.Landed != 0 {
				t.Errorf("%s: %d pre-attach DMAs landed", k, c.Chaos.Landed)
			}
			if k.Mode == sim.None && c.Chaos.Landed == 0 {
				t.Errorf("%s: unprotected mode faulted early DMA?", k)
			}
		case HotplugSurprise:
			if c.Removals != 1 || c.Quarantines != 1 || c.Outages != 1 || c.MTTRCycles <= 0 {
				t.Errorf("%s: removals=%d quar=%d outages=%d mttr=%.0f", k, c.Removals, c.Quarantines, c.Outages, c.MTTRCycles)
			}
		}
		if k.Mode != sim.None && c.IntViolations != 0 && k.Hotplug != "" {
			t.Errorf("%s: %d interrupt violations under topology churn", k, c.IntViolations)
		}
	}
}

// TestIntremapGateCatches: the interrupt gate flags delivered violations,
// silent remappers, ghost deliveries, broken SLO ledgers, and a dead stale
// window — and ignores mode none.
func TestIntremapGateCatches(t *testing.T) {
	mk := func(k Key, c CellMetrics) Result {
		return Result{Keys: []Key{k}, Cells: []CellMetrics{c}}
	}
	viol := mk(Key{Device: "nic", Mode: sim.Strict, IntScenario: string(chaos.SpoofBDF)},
		CellMetrics{IntViolations: 2, IntBlocked: 5, Chaos: chaos.Stats{Attempts: 5}})
	if fails := viol.IntremapViolationsGate(); len(fails) != 1 {
		t.Errorf("delivered violations not flagged: %v", fails)
	}
	asleep := mk(Key{Device: "nic", Mode: sim.RIOMMU, IntScenario: string(chaos.VectorStorm)},
		CellMetrics{Chaos: chaos.Stats{Attempts: 10, Landed: 10}})
	if fails := asleep.IntremapViolationsGate(); len(fails) != 1 {
		t.Errorf("sleeping remapper not flagged: %v", fails)
	}
	dead := mk(Key{Device: "nic", Mode: sim.Defer, IntScenario: string(chaos.IRTEReplay)},
		CellMetrics{IntByReason: map[string]uint64{}})
	if fails := dead.IntremapViolationsGate(); len(fails) != 1 {
		t.Errorf("dead stale window not flagged: %v", fails)
	}
	ghost := mk(Key{Device: "nic", Mode: sim.Strict, Hotplug: HotplugSurprise},
		CellMetrics{GhostDeliveries: 1, Removals: 1, Outages: 1, MTTRCycles: 100})
	if fails := ghost.IntremapViolationsGate(); len(fails) != 1 {
		t.Errorf("ghost delivery not flagged: %v", fails)
	}
	noMTTR := mk(Key{Device: "nic", Mode: sim.Strict, Hotplug: HotplugAttachStorm},
		CellMetrics{Removals: 3, Outages: 2, MTTRCycles: 50})
	if fails := noMTTR.IntremapViolationsGate(); len(fails) != 1 {
		t.Errorf("incomplete SLO ledger not flagged: %v", fails)
	}
	early := mk(Key{Device: "nic", Mode: sim.RIOMMU, Hotplug: HotplugDMAEarly},
		CellMetrics{Chaos: chaos.Stats{Attempts: 4, Landed: 4}})
	if fails := early.IntremapViolationsGate(); len(fails) != 1 {
		t.Errorf("early DMA landing not flagged: %v", fails)
	}
	none := mk(Key{Device: "nic", Mode: sim.None, IntScenario: string(chaos.VectorStorm)},
		CellMetrics{Chaos: chaos.Stats{Attempts: 10, Landed: 10}})
	if fails := none.IntremapViolationsGate(); len(fails) != 0 {
		t.Errorf("mode none wrongly gated: %v", fails)
	}
}

func TestParseHotplug(t *testing.T) {
	all, err := ParseHotplug("all")
	if err != nil || len(all) != 3 {
		t.Fatalf("all: %v %v", all, err)
	}
	one, err := ParseHotplug(" surprise-remove ")
	if err != nil || len(one) != 1 || one[0] != HotplugSurprise {
		t.Fatalf("single: %v %v", one, err)
	}
	if _, err := ParseHotplug("nope"); err == nil {
		t.Error("unknown scenario accepted")
	}
}

func TestParseModes(t *testing.T) {
	ms, err := ParseModes("strict, riommu")
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 || ms[0] != sim.Strict || ms[1] != sim.RIOMMU {
		t.Fatalf("got %v", ms)
	}
	if _, err := ParseModes("defer"); err == nil {
		t.Error("deferred modes are unsafe for the campaign; ParseModes must reject them")
	}
	if _, err := ParseModes("nosuch"); err == nil {
		t.Error("unknown mode accepted")
	}
}

func TestParseRates(t *testing.T) {
	rs, err := ParseRates("0, 0.01,0.05")
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 || rs[2] != 0.05 {
		t.Fatalf("got %v", rs)
	}
	if _, err := ParseRates("1.5"); err == nil {
		t.Error("rate > 1 accepted")
	}
	if _, err := ParseRates("x"); err == nil {
		t.Error("non-numeric rate accepted")
	}
}

// TestPartialReportDropsUnfinishedCells: a Result with unfinished cells
// (interrupted run) builds a report holding only real measurements, marked
// interrupted; the gate skips the unfinished cells too.
func TestPartialReportDropsUnfinishedCells(t *testing.T) {
	r := Result{
		Opts: Options{Seed: 7, Rounds: 3},
		Keys: []Key{
			{Device: "nic", Mode: sim.Strict, Clean: true},
			{Device: "nic", Mode: sim.Defer, Scenario: string(chaos.StaleReplay)},
		},
		Cells:     []CellMetrics{{CyclesPerOp: 12}, {}},
		Completed: []bool{true, false},
	}
	rep := BuildReport(r)
	if !rep.Interrupted {
		t.Error("partial result not marked interrupted")
	}
	if len(rep.Cells) != 1 || rep.Cells[0].ID != r.Keys[0].String() {
		t.Fatalf("report cells = %+v, want only the completed cell", rep.Cells)
	}
	b, err := MarshalReport(rep)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"interrupted": true`) {
		t.Errorf("marshalled report missing interrupted marker:\n%s", b)
	}
	// The unfinished defer stale-replay cell must not trip the liveness gate.
	if fails := r.AuditViolationsGate(); len(fails) != 0 {
		t.Errorf("gate flagged unfinished cells: %v", fails)
	}

	// A complete run's report must not mention the field at all (golden
	// byte-stability).
	r.Completed = []bool{true, true}
	full, err := MarshalReport(BuildReport(r))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(full), "interrupted") {
		t.Errorf("complete report mentions interrupted:\n%s", full)
	}
}
