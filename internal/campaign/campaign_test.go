package campaign

import (
	"bytes"
	"strings"
	"testing"

	"riommu/internal/sim"
)

func testOptions(workers int) Options {
	return Options{
		Seed:    42,
		Rates:   []float64{0, 0.01},
		Modes:   []sim.Mode{sim.Strict, sim.RIOMMU},
		Rounds:  25,
		Workers: workers,
	}
}

// TestSerialParallelEquivalence: the campaign's rendered tables and JSON
// report are byte-identical for any worker count, including the fault-path
// cells where per-cell seeding is what keeps the injected streams stable.
func TestSerialParallelEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-worker sweep is slow under -short")
	}
	run := func(workers int) (string, []byte) {
		res, err := Run(testOptions(workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		j, err := MarshalReport(BuildReport(res))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return res.Render(), j
	}
	wantText, wantJSON := run(1)
	if !strings.Contains(wantText, "NIC campaign") || !strings.Contains(wantText, "Block-device campaign") {
		t.Fatalf("rendered campaign missing expected tables:\n%s", wantText)
	}
	for _, workers := range []int{2, 8} {
		gotText, gotJSON := run(workers)
		if gotText != wantText {
			t.Errorf("workers=%d: rendered text differs from serial", workers)
		}
		if !bytes.Equal(gotJSON, wantJSON) {
			t.Errorf("workers=%d: JSON report differs from serial", workers)
		}
	}
}

// TestGridOrder: the grid is the canonical cell order — NIC anchors and
// sweeps first, then the block devices — and cell identities are unique
// (CellSeed derives per-cell fault streams from them).
func TestGridOrder(t *testing.T) {
	opts := testOptions(1)
	keys := opts.Grid()
	wantLen := len(opts.Modes)*(1+len(opts.Rates)) + 2*len(opts.Modes)*len(opts.Rates)
	if len(keys) != wantLen {
		t.Fatalf("grid has %d cells, want %d", len(keys), wantLen)
	}
	if !keys[0].Clean || keys[0].Device != "nic" || keys[0].Mode != sim.Strict {
		t.Fatalf("grid must start with the strict NIC anchor, got %s", keys[0])
	}
	seen := map[string]bool{}
	sawBlock := false
	for _, k := range keys {
		id := k.String()
		if seen[id] {
			t.Errorf("duplicate cell identity %q", id)
		}
		seen[id] = true
		if k.Device != "nic" {
			sawBlock = true
		} else if sawBlock {
			t.Errorf("NIC cell %s after block cells: grid order violated", id)
		}
	}
}

// TestFaultCellsInject: non-zero rates actually exercise the recovery layer,
// so the equivalence test above covers fault-campaign output, not just clean
// runs.
func TestFaultCellsInject(t *testing.T) {
	res, err := Run(testOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	var injected, recovered uint64
	for i, k := range res.Keys {
		c := res.Cells[i]
		if k.Clean || k.Rate == 0 {
			if c.Injected != 0 {
				t.Errorf("%s: clean cell injected %d faults", k, c.Injected)
			}
			continue
		}
		injected += c.Injected
		recovered += c.Recovery.Recoveries
		if c.Recovery.Unrecovered != 0 {
			t.Errorf("%s: %d unrecovered faults", k, c.Recovery.Unrecovered)
		}
	}
	if injected == 0 {
		t.Error("fault cells injected nothing; campaign is not testing recovery")
	}
	if recovered == 0 {
		t.Error("no recoveries recorded across fault cells")
	}
}

func TestParseModes(t *testing.T) {
	ms, err := ParseModes("strict, riommu")
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 || ms[0] != sim.Strict || ms[1] != sim.RIOMMU {
		t.Fatalf("got %v", ms)
	}
	if _, err := ParseModes("defer"); err == nil {
		t.Error("deferred modes are unsafe for the campaign; ParseModes must reject them")
	}
	if _, err := ParseModes("nosuch"); err == nil {
		t.Error("unknown mode accepted")
	}
}

func TestParseRates(t *testing.T) {
	rs, err := ParseRates("0, 0.01,0.05")
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 || rs[2] != 0.05 {
		t.Fatalf("got %v", rs)
	}
	if _, err := ParseRates("1.5"); err == nil {
		t.Error("rate > 1 accepted")
	}
	if _, err := ParseRates("x"); err == nil {
		t.Error("non-numeric rate accepted")
	}
}
