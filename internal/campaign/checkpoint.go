package campaign

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"riommu/internal/parallel"
)

// CheckpointVersion is the on-disk checkpoint format version. Bump it when
// the CellMetrics schema or the fingerprint recipe changes incompatibly; a
// resume against a checkpoint from another version is refused rather than
// silently merged.
const CheckpointVersion = 1

// Checkpoint is the versioned on-disk record of a partially (or fully)
// completed campaign grid. Cells maps each completed cell's stable identity
// (Key.String()) to its full measurements, including the cell's final CPU
// clock snapshot — so a checkpointed cell carries the same per-component
// cycle ledger a freshly-run cell would, and a resumed run can render
// reports and enforce gates without recomputing anything.
//
// The fingerprint pins the grid identity: every Options field that changes
// which cells exist or what they measure participates, while pure scheduling
// knobs (Workers, the shard assignment, the checkpoint paths themselves) do
// not. Resuming with a different seed, rate list, or scenario set is a
// different campaign and is refused.
type Checkpoint struct {
	Version     int                    `json:"version"`
	Fingerprint string                 `json:"fingerprint"`
	Cells       map[string]CellMetrics `json:"cells"`
}

// fingerprintID is the canonical identity the checkpoint fingerprint hashes:
// Options minus the scheduling-only fields. Field order is fixed by the
// struct, so the encoding is stable.
type fingerprintID struct {
	Seed        uint64    `json:"seed"`
	Rates       []float64 `json:"rates"`
	Modes       []string  `json:"modes"`
	Rounds      int       `json:"rounds"`
	Audit       bool      `json:"audit"`
	Chaos       []string  `json:"chaos"`
	Cores       []int     `json:"cores"`
	IntChaos    []string  `json:"intchaos"`
	Hotplug     []string  `json:"hotplug"`
	Tenants     []int     `json:"tenants"`
	TenantChaos []string  `json:"tenantchaos"`
}

// Fingerprint returns the hex digest identifying this Options' grid, for
// checkpoint validation. Workers, ShardIndex/ShardCount, and the checkpoint
// paths are deliberately excluded: any worker count or shard split of the
// same grid may share (and resume from) the same checkpoint.
func (o Options) Fingerprint() string {
	id := fingerprintID{
		Seed:    o.Seed,
		Rates:   o.Rates,
		Rounds:  o.Rounds,
		Audit:   o.Audit,
		Cores:   o.Cores,
		Tenants: o.Tenants,
	}
	for _, m := range o.Modes {
		id.Modes = append(id.Modes, m.String())
	}
	for _, s := range o.Chaos {
		id.Chaos = append(id.Chaos, string(s))
	}
	for _, s := range o.IntChaos {
		id.IntChaos = append(id.IntChaos, string(s))
	}
	id.Hotplug = append(id.Hotplug, o.Hotplug...)
	for _, s := range o.TenantChaos {
		id.TenantChaos = append(id.TenantChaos, string(s))
	}
	b, err := json.Marshal(id)
	if err != nil {
		// fingerprintID is plain data; Marshal cannot fail on it.
		panic("campaign: fingerprint marshal: " + err.Error())
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// ParseShard parses a -shard flag value "i/K" into (index, count).
// The empty string means unsharded (0, 0).
func ParseShard(s string) (index, count int, err error) {
	return parallel.ParseShard(s)
}

// LoadCheckpoint reads and validates one checkpoint file against the
// campaign's identity. A missing file is not an error: it returns (nil, nil)
// so a first run and a resume share one code path.
func LoadCheckpoint(path string, opts Options) (*Checkpoint, error) {
	b, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var ck Checkpoint
	if err := json.Unmarshal(b, &ck); err != nil {
		return nil, fmt.Errorf("checkpoint %s: %w", path, err)
	}
	if ck.Version != CheckpointVersion {
		return nil, fmt.Errorf("checkpoint %s: version %d, want %d", path, ck.Version, CheckpointVersion)
	}
	if fp := opts.Fingerprint(); ck.Fingerprint != fp {
		return nil, fmt.Errorf("checkpoint %s: grid fingerprint %.12s does not match these options (%.12s) — different seed/rates/modes/scenarios", path, ck.Fingerprint, fp)
	}
	if ck.Cells == nil {
		ck.Cells = map[string]CellMetrics{}
	}
	return &ck, nil
}

// checkpointer serializes checkpoint updates from concurrent cell workers
// and persists every completed cell immediately: each record rewrites the
// whole file through a temp-file rename, so a kill at any instant leaves
// either the previous or the new complete checkpoint on disk, never a torn
// one.
type checkpointer struct {
	mu   sync.Mutex
	path string
	ck   Checkpoint
}

// newCheckpointer wraps the state loaded (or freshly created) for path.
func newCheckpointer(path string, opts Options, loaded *Checkpoint) *checkpointer {
	c := &checkpointer{path: path}
	if loaded != nil {
		c.ck = *loaded
	} else {
		c.ck = Checkpoint{Version: CheckpointVersion, Fingerprint: opts.Fingerprint(), Cells: map[string]CellMetrics{}}
	}
	return c
}

// record adds one completed cell and flushes the checkpoint atomically.
func (c *checkpointer) record(key string, m CellMetrics) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ck.Cells[key] = m
	b, err := json.MarshalIndent(c.ck, "", "  ")
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	b = append(b, '\n')
	tmp, err := os.CreateTemp(filepath.Dir(c.path), filepath.Base(c.path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), c.path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("checkpoint: %w", err)
	}
	return nil
}
