package campaign

// The connection-churn axis: each cell runs the internal/traffic fleet
// engine — a full connection table under seeded open/close churn with a
// mixed kernel/bypass fleet — with the shadow translation oracle attached.
// The target connection count sets the churn rate: the live table is a
// fixed-size window onto the fleet and the per-flow packet budget shrinks
// as connections grow, so high counts are the map/unmap storm regime the
// paper calls the IOMMU's worst case. Like every other cell, a churn cell
// is a pure function of (key, seed, rounds).

import (
	"riommu/internal/device"
	"riommu/internal/sim"
	"riommu/internal/traffic"
)

// churnSlotCap bounds the simulated live table so a cell's wall-clock cost
// stays flat while the modeled fleet grows via shorter flows.
const churnSlotCap = 160

func churnCell(mode sim.Mode, seed uint64, rounds, conns int) (CellMetrics, error) {
	slots := conns
	if slots > churnSlotCap {
		slots = churnSlotCap
	}
	mean := (1 << 18) / conns
	if mean < 1 {
		mean = 1
	}
	e, err := traffic.NewEngine(traffic.Config{
		Mode:            mode,
		Profile:         device.ProfileBRCM,
		Seed:            seed,
		TableSlots:      slots,
		MeanFlowPackets: mean,
		BypassPermille:  250, // a quarter of the fleet runs kernel-bypass
		Ticks:           rounds,
		WarmupTicks:     rounds / 4,
		MsgsPerTick:     4,
		IncastEvery:     5,
		IncastFan:       8,
		Diurnal:         true,
		Audit:           true,
	})
	if err != nil {
		return CellMetrics{}, err
	}
	r, err := e.RunSchedule()
	if err != nil {
		e.Close()
		return CellMetrics{}, err
	}
	c := CellMetrics{
		Clock:         r.Cycles,
		CyclesPerOp:   r.CyclesPerPkt,
		Gbps:          r.Gbps,
		DataPackets:   r.DataPackets,
		Opens:         r.Opens,
		Closes:        r.Closes,
		BypassPackets: r.BypassPackets,
		AppDigest:     r.AppDigest,
		MapDigest:     r.MapDigest,
	}
	recordAudit(&c, e.System().Auditor, r.DataPackets)
	if err := e.Close(); err != nil {
		return CellMetrics{}, err
	}
	return c, nil
}
