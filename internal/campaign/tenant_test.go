package campaign

import (
	"strings"
	"testing"

	"riommu/internal/chaos"
	"riommu/internal/sim"
)

func TestParseTenants(t *testing.T) {
	got, err := ParseTenants(" 2, 4 ")
	if err != nil || len(got) != 2 || got[0] != 2 || got[1] != 4 {
		t.Fatalf("ParseTenants = %v, %v", got, err)
	}
	if got, err := ParseTenants(""); err != nil || got != nil {
		t.Fatalf("empty ParseTenants = %v, %v", got, err)
	}
	for _, bad := range []string{"1", "513", "x"} {
		if _, err := ParseTenants(bad); err == nil {
			t.Errorf("ParseTenants(%q) accepted", bad)
		}
	}
}

func TestTenantKeyString(t *testing.T) {
	k := Key{Device: "nic", Mode: sim.Strict, Tenants: 3, TenantScenario: "bdf-spoof"}
	if got, want := k.String(), "nic/strict/tenants=3/tchaos=bdf-spoof"; got != want {
		t.Fatalf("Key.String() = %q, want %q", got, want)
	}
}

// TestTenantGridAppended proves turning the tenant axis on is a pure
// insertion: every pre-existing cell keeps its grid position.
func TestTenantGridAppended(t *testing.T) {
	base := Options{Modes: SafeModes, Rates: []float64{0, 0.001}}
	ext := base
	ext.Tenants = []int{2}
	bg, eg := base.Grid(), ext.Grid()
	if len(eg) <= len(bg) {
		t.Fatalf("extended grid not larger: %d vs %d", len(eg), len(bg))
	}
	for i, k := range bg {
		if eg[i] != k {
			t.Fatalf("cell %d moved: %s vs %s", i, eg[i], k)
		}
	}
	want := len(chaos.TenantScenarios()) * len(sim.AllModes())
	if got := len(eg) - len(bg); got != want {
		t.Fatalf("appended %d tenant cells, want %d", got, want)
	}
	for _, k := range eg[len(bg):] {
		if k.Tenants != 2 || k.TenantScenario == "" {
			t.Fatalf("appended cell %s is not a tenant cell", k)
		}
	}
}

// TestTenantCampaignGate runs the full hostile-tenant sweep (every scenario
// x every presentation mode) at a small tenant count and requires the
// cross-tenant gate to hold: zero cross-tenant accesses, hostile tenant
// quarantined, victims at exactly 100% availability.
func TestTenantCampaignGate(t *testing.T) {
	if testing.Short() {
		t.Skip("full tenant sweep in -short")
	}
	opts := Options{
		Seed:        7,
		Rounds:      24,
		Workers:     4,
		Tenants:     []int{3},
		TenantChaos: chaos.TenantScenarios(),
	}
	res, err := Run(opts)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fails := res.CrossTenantViolationsGate(); len(fails) != 0 {
		t.Fatalf("cross-tenant gate failed:\n%s", strings.Join(fails, "\n"))
	}
	for i, k := range res.Keys {
		c := res.Cells[i]
		if c.TenantChecked == 0 || c.S2Misses == 0 {
			t.Errorf("%s: stage-2 path unexercised (checked=%d misses=%d)", k, c.TenantChecked, c.S2Misses)
		}
		if c.Checked == 0 && k.Mode.Safe() {
			t.Errorf("%s: guest stage-1 oracle checked nothing", k)
		}
	}
	out := res.Render()
	if !strings.Contains(out, "Multi-tenant campaign") {
		t.Fatalf("render is missing the tenant table:\n%s", out)
	}
}

// TestTenantCellDeterminism: the same cell twice must produce identical
// metrics — no map-iteration order or allocator address may leak in.
func TestTenantCellDeterminism(t *testing.T) {
	run := func() CellMetrics {
		c, err := tenantCell(sim.RIOMMU, chaos.S2StaleReplay, 1, 18, 2)
		if err != nil {
			t.Fatalf("tenantCell: %v", err)
		}
		return c
	}
	a, b := run(), run()
	if a.TenantChecked != b.TenantChecked || a.S2Hits != b.S2Hits ||
		a.S2Misses != b.S2Misses || a.S2Cycles != b.S2Cycles ||
		a.Chaos != b.Chaos || a.CyclesPerOp != b.CyclesPerOp {
		t.Fatalf("tenant cell not deterministic:\n%+v\n%+v", a, b)
	}
}
