package campaign

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"riommu/internal/cycles"
	"riommu/internal/sim"
)

// smallOpts is a grid small enough for sharding tests but wide enough to
// cover all three base cell kinds (nic clean/rate, nvme, sata).
func smallOpts() Options {
	return Options{
		Seed:    7,
		Rates:   []float64{0, 0.01},
		Modes:   []sim.Mode{sim.Strict, sim.RIOMMU},
		Rounds:  4,
		Workers: 1,
	}
}

func reportBytes(t *testing.T, r Result) []byte {
	t.Helper()
	b, err := MarshalReport(BuildReport(r))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestShardedResumeByteIdentical: K sequential shard passes over one shared
// checkpoint file must converge to a grid whose rendered and JSON output is
// byte-identical to an uninterrupted serial run.
func TestShardedResumeByteIdentical(t *testing.T) {
	serial, err := Run(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	want := reportBytes(t, serial)

	ckpt := filepath.Join(t.TempDir(), "grid.ckpt")
	const shards = 3
	var last Result
	for i := 0; i < shards; i++ {
		o := smallOpts()
		o.ShardIndex, o.ShardCount = i, shards
		o.Checkpoint = ckpt
		last, err = Run(o)
		if err != nil {
			t.Fatalf("shard %d/%d: %v", i, shards, err)
		}
		if i < shards-1 && last.Complete() {
			t.Fatalf("shard %d/%d: grid complete before the last shard ran", i, shards)
		}
	}
	if !last.Complete() {
		t.Fatal("grid incomplete after all shards ran")
	}
	if got := reportBytes(t, last); !bytes.Equal(got, want) {
		t.Errorf("sharded report differs from serial run:\nserial: %d bytes\nsharded: %d bytes", len(want), len(got))
	}
	if got, want := last.Render(), serial.Render(); got != want {
		t.Error("sharded Render differs from serial run")
	}
}

// TestShardMergeSeparateFiles: shards run into separate checkpoint files
// (parallel processes) and a final merge pass restores them all without
// recomputing, byte-identical to the serial run.
func TestShardMergeSeparateFiles(t *testing.T) {
	serial, err := Run(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	want := reportBytes(t, serial)

	dir := t.TempDir()
	const shards = 2
	files := make([]string, shards)
	for i := 0; i < shards; i++ {
		files[i] = filepath.Join(dir, "shard.ckpt."+string(rune('0'+i)))
		o := smallOpts()
		o.ShardIndex, o.ShardCount = i, shards
		o.Checkpoint = files[i]
		if _, err := Run(o); err != nil {
			t.Fatalf("shard %d/%d: %v", i, shards, err)
		}
	}

	merged := smallOpts()
	merged.Checkpoint = filepath.Join(dir, "merged.ckpt")
	merged.Merge = files
	res, err := Run(merged)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete() {
		t.Fatal("merge pass left cells incomplete")
	}
	if got := reportBytes(t, res); !bytes.Equal(got, want) {
		t.Error("merged report differs from serial run")
	}
	// The merge target must now hold the whole grid, so a later resume needs
	// only that one file.
	ck, err := LoadCheckpoint(merged.Checkpoint, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if ck == nil || len(ck.Cells) != len(serial.Keys) {
		t.Fatalf("merge target holds %d cells, want %d", len(ck.Cells), len(serial.Keys))
	}
}

// TestCheckpointClockLedger: every checkpointed cell carries its final CPU
// clock snapshot, and restoring it into a fresh Clock reproduces the cell's
// recovery-cycle accounting exactly.
func TestCheckpointClockLedger(t *testing.T) {
	o := smallOpts()
	o.Checkpoint = filepath.Join(t.TempDir(), "grid.ckpt")
	res, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	ck, err := LoadCheckpoint(o.Checkpoint, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if ck == nil {
		t.Fatal("checkpoint not written")
	}
	for i, k := range res.Keys {
		cell, ok := ck.Cells[k.String()]
		if !ok {
			t.Fatalf("%s: missing from checkpoint", k)
		}
		if cell.Clock.Now == 0 {
			t.Errorf("%s: checkpointed clock snapshot is empty", k)
		}
		var clk cycles.Clock
		clk.Restore(cell.Clock)
		if clk.Total(cycles.Recovery) != res.Cells[i].RecoveryCycles {
			t.Errorf("%s: restored clock charges %d recovery cycles, cell recorded %d",
				k, clk.Total(cycles.Recovery), res.Cells[i].RecoveryCycles)
		}
	}
}

// TestCheckpointRejectsMismatchedGrid: a checkpoint from one campaign must
// not silently seed a different one.
func TestCheckpointRejectsMismatchedGrid(t *testing.T) {
	o := smallOpts()
	o.Checkpoint = filepath.Join(t.TempDir(), "grid.ckpt")
	if _, err := Run(o); err != nil {
		t.Fatal(err)
	}
	other := smallOpts()
	other.Seed = 8
	if _, err := LoadCheckpoint(o.Checkpoint, other); err == nil {
		t.Error("checkpoint accepted under a different seed")
	}
	// Version drift is refused too.
	b, err := os.ReadFile(o.Checkpoint)
	if err != nil {
		t.Fatal(err)
	}
	bad := strings.Replace(string(b), `"version": 1`, `"version": 99`, 1)
	if bad == string(b) {
		t.Fatal("version field not found in checkpoint")
	}
	if err := os.WriteFile(o.Checkpoint, []byte(bad), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(o.Checkpoint, smallOpts()); err == nil {
		t.Error("checkpoint accepted with a future version")
	}
}

// TestShardRequiresCheckpoint: a sharded run without a checkpoint would
// discard its cells, so Run refuses it.
func TestShardRequiresCheckpoint(t *testing.T) {
	o := smallOpts()
	o.ShardIndex, o.ShardCount = 0, 2
	if _, err := Run(o); err == nil {
		t.Error("sharded run without checkpoint accepted")
	}
}

// TestParseShard covers the -shard flag grammar.
func TestParseShard(t *testing.T) {
	for _, tc := range []struct {
		in         string
		idx, count int
		wantErr    bool
	}{
		{"", 0, 0, false},
		{"0/4", 0, 4, false},
		{"3/4", 3, 4, false},
		{"4/4", 0, 0, true},
		{"-1/4", 0, 0, true},
		{"1", 0, 0, true},
		{"a/b", 0, 0, true},
		{"0/0", 0, 0, true},
	} {
		idx, count, err := ParseShard(tc.in)
		if (err != nil) != tc.wantErr {
			t.Errorf("ParseShard(%q): err=%v, wantErr=%v", tc.in, err, tc.wantErr)
			continue
		}
		if err == nil && (idx != tc.idx || count != tc.count) {
			t.Errorf("ParseShard(%q) = %d/%d, want %d/%d", tc.in, idx, count, tc.idx, tc.count)
		}
	}
}
