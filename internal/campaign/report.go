package campaign

import (
	"encoding/json"
	"os"

	"riommu/internal/audit"
	"riommu/internal/faults"
)

// ReportCell is one campaign cell in machine-readable form. Metrics marshal
// deterministically: encoding/json sorts map keys, and Go formats a given
// float64 bit pattern to a unique shortest representation.
type ReportCell struct {
	ID      string             `json:"cell"`
	Metrics map[string]float64 `json:"metrics"`
}

// Report is the full machine-readable campaign: every cell in grid order.
// Interrupted marks a partial report flushed on SIGINT/SIGTERM — only the
// cells that finished before the interrupt are present. The field is
// omitted entirely on complete runs so historical reports stay byte-stable.
type Report struct {
	Seed        uint64       `json:"seed"`
	Rounds      int          `json:"rounds"`
	Interrupted bool         `json:"interrupted,omitempty"`
	Cells       []ReportCell `json:"cells"`
}

// BuildReport flattens a merged Result into the canonical report. Cells that
// never completed (interrupted runs) are dropped and the report is marked
// Interrupted, so every cell present holds real measurements.
func BuildReport(r Result) Report {
	rep := Report{Seed: r.Opts.Seed, Rounds: r.Opts.Rounds}
	for i, k := range r.Keys {
		if !r.done(i) {
			rep.Interrupted = true
			continue
		}
		c := r.Cells[i]
		m := map[string]float64{
			"injected":        float64(c.Injected),
			"recoveries":      float64(c.Recovery.Recoveries),
			"retries":         float64(c.Recovery.Retries),
			"watchdog_fires":  float64(c.Recovery.WatchdogFires),
			"degradations":    float64(c.Recovery.Degradations),
			"unrecovered":     float64(c.Recovery.Unrecovered),
			"recovery_cycles": float64(c.RecoveryCycles),
			"cycles_per_op":   c.CyclesPerOp,
		}
		if k.Device == "nic" {
			m["gbps"] = c.Gbps
			for _, cl := range faults.Classes() {
				m["faults_"+cl.String()] = float64(c.ByClass[cl.String()])
			}
		}
		if c.Audited {
			m["audit_checked"] = float64(c.Checked)
			m["audit_violations"] = float64(c.Violations)
			m["viol_per_mpkts"] = c.ViolPerMPkts
			for _, reason := range audit.Reasons() {
				m["viol_"+reason] = float64(c.ByReason[reason])
			}
		}
		if k.Scenario != "" || k.IntScenario != "" {
			m["chaos_attempts"] = float64(c.Chaos.Attempts)
			m["chaos_contained"] = float64(c.Chaos.Contained)
			m["chaos_landed"] = float64(c.Chaos.Landed)
			m["outages"] = float64(c.Outages)
			m["downtime_cycles"] = float64(c.DowntimeCycles)
			m["mttr_cycles"] = c.MTTRCycles
			m["availability"] = c.Availability
			m["breaker_trips"] = float64(c.BreakerTrips)
			m["readmissions"] = float64(c.Readmissions)
		}
		if k.IntScenario != "" || k.Hotplug != "" {
			m["int_delivered"] = float64(c.IntDelivered)
			m["int_blocked"] = float64(c.IntBlocked)
			m["int_violations"] = float64(c.IntViolations)
			for _, reason := range audit.IntReasons() {
				m["intviol_"+reason] = float64(c.IntByReason[reason])
			}
		}
		if k.Tenants > 0 {
			m["tenant_checked"] = float64(c.TenantChecked)
			m["tenant_violations"] = float64(c.TenantViolations)
			m["cross_tenant"] = float64(c.CrossTenant)
			for _, reason := range audit.TenantReasons() {
				m["tviol_"+reason] = float64(c.TenantByReason[reason])
			}
			m["s2_hits"] = float64(c.S2Hits)
			m["s2_misses"] = float64(c.S2Misses)
			m["s2_faults"] = float64(c.S2Faults)
			m["s2_cycles"] = float64(c.S2Cycles)
			m["spoof_blocked"] = float64(c.SpoofBlocked)
			m["ballooned"] = float64(c.Ballooned)
			m["throttled"] = float64(c.Throttled)
			m["tenant_quarantines"] = float64(c.TenantQuarantines)
			m["hostile_availability"] = c.HostileAvailability
			m["victim_availability"] = c.VictimAvailability
			m["chaos_attempts"] = float64(c.Chaos.Attempts)
			m["chaos_contained"] = float64(c.Chaos.Contained)
			m["chaos_landed"] = float64(c.Chaos.Landed)
		}
		if k.Hotplug != "" {
			m["attaches"] = float64(c.Attaches)
			m["removals"] = float64(c.Removals)
			m["quarantines"] = float64(c.Quarantines)
			m["ghost_deliveries"] = float64(c.GhostDeliveries)
			m["early_dma_attempts"] = float64(c.Chaos.Attempts)
			m["early_dma_landed"] = float64(c.Chaos.Landed)
			m["outages"] = float64(c.Outages)
			m["downtime_cycles"] = float64(c.DowntimeCycles)
			m["mttr_cycles"] = c.MTTRCycles
			m["availability"] = c.Availability
		}
		rep.Cells = append(rep.Cells, ReportCell{ID: k.String(), Metrics: m})
	}
	return rep
}

// MarshalReport renders a Report to the canonical byte form.
func MarshalReport(rep Report) ([]byte, error) {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// WriteJSON writes the canonical report bytes to path.
func WriteJSON(path string, rep Report) error {
	b, err := MarshalReport(rep)
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}
