package campaign

import (
	"encoding/json"
	"os"

	"riommu/internal/faults"
)

// ReportCell is one campaign cell in machine-readable form. Metrics marshal
// deterministically: encoding/json sorts map keys, and Go formats a given
// float64 bit pattern to a unique shortest representation.
type ReportCell struct {
	ID      string             `json:"cell"`
	Metrics map[string]float64 `json:"metrics"`
}

// Report is the full machine-readable campaign: every cell in grid order.
type Report struct {
	Seed   uint64       `json:"seed"`
	Rounds int          `json:"rounds"`
	Cells  []ReportCell `json:"cells"`
}

// BuildReport flattens a merged Result into the canonical report.
func BuildReport(r Result) Report {
	rep := Report{Seed: r.Opts.Seed, Rounds: r.Opts.Rounds}
	for i, k := range r.Keys {
		c := r.Cells[i]
		m := map[string]float64{
			"injected":        float64(c.Injected),
			"recoveries":      float64(c.Recovery.Recoveries),
			"retries":         float64(c.Recovery.Retries),
			"watchdog_fires":  float64(c.Recovery.WatchdogFires),
			"degradations":    float64(c.Recovery.Degradations),
			"unrecovered":     float64(c.Recovery.Unrecovered),
			"recovery_cycles": float64(c.RecoveryCycles),
			"cycles_per_op":   c.CyclesPerOp,
		}
		if k.Device == "nic" {
			m["gbps"] = c.Gbps
			for _, cl := range faults.Classes() {
				m["faults_"+cl.String()] = float64(c.ByClass[cl.String()])
			}
		}
		rep.Cells = append(rep.Cells, ReportCell{ID: k.String(), Metrics: m})
	}
	return rep
}

// MarshalReport renders a Report to the canonical byte form.
func MarshalReport(rep Report) ([]byte, error) {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// WriteJSON writes the canonical report bytes to path.
func WriteJSON(path string, rep Report) error {
	b, err := MarshalReport(rep)
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}
