package campaign

import (
	"strings"
	"testing"

	"riommu/internal/sim"
)

// TestChurnCells runs a small audited churn campaign and pins the axis's
// contract: churn cells ride at the end of the grid without disturbing any
// legacy cell identity, every cell is violation-free (there is no attacker
// in a churn cell), the traffic actually churns at the high-connection end,
// and the map/unmap storm costs strict mode more than rIOMMU.
func TestChurnCells(t *testing.T) {
	opts := Options{
		Seed:    42,
		Rates:   []float64{0},
		Modes:   []sim.Mode{sim.Strict, sim.RIOMMU},
		Rounds:  12,
		Workers: 1,
		Churn:   []int{4000, 400000},
	}
	res, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}

	churn := map[Key]CellMetrics{}
	for i, k := range res.Keys {
		if k.Churn == 0 {
			continue
		}
		if i < len(res.Keys)-4 {
			t.Errorf("churn cell %s at grid index %d — churn cells must append after every legacy cell", k, i)
		}
		if want := "nic/" + k.Mode.String() + "/churn="; !strings.HasPrefix(k.String(), want) {
			t.Errorf("churn key renders as %q, want prefix %q", k.String(), want)
		}
		churn[k] = res.Cells[i]
	}
	if len(churn) != 4 {
		t.Fatalf("grid has %d churn cells, want 4", len(churn))
	}

	for k, c := range churn {
		if !c.Audited || c.Checked == 0 {
			t.Errorf("%s: churn cell not audited (checked=%d)", k, c.Checked)
		}
		if c.Violations != 0 {
			t.Errorf("%s: %d violations without an attacker", k, c.Violations)
		}
		if c.DataPackets == 0 || c.Gbps <= 0 {
			t.Errorf("%s: degenerate cell (%d packets, %.2f Gbps)", k, c.DataPackets, c.Gbps)
		}
	}

	hiStrict := churn[Key{Device: "nic", Mode: sim.Strict, Churn: 400000}]
	hiRiommu := churn[Key{Device: "nic", Mode: sim.RIOMMU, Churn: 400000}]
	if hiStrict.Opens == 0 || hiStrict.Closes == 0 {
		t.Errorf("high-churn cell opened %d / closed %d flows — no churn happened", hiStrict.Opens, hiStrict.Closes)
	}
	if hiStrict.CyclesPerOp <= hiRiommu.CyclesPerOp {
		t.Errorf("strict %.0f cyc/pkt not above rIOMMU %.0f under the map/unmap storm",
			hiStrict.CyclesPerOp, hiRiommu.CyclesPerOp)
	}

	text := res.Render()
	if !strings.Contains(text, "Connection-churn campaign") {
		t.Fatalf("render missing churn table:\n%s", text)
	}
}

func TestParseChurn(t *testing.T) {
	if got, err := ParseChurn(""); err != nil || got != nil {
		t.Errorf("ParseChurn(\"\") = %v, %v; want nil, nil", got, err)
	}
	got, err := ParseChurn("2000, 500000")
	if err != nil || len(got) != 2 || got[0] != 2000 || got[1] != 500000 {
		t.Errorf("ParseChurn(\"2000, 500000\") = %v, %v", got, err)
	}
	for _, bad := range []string{"0", "-5", "x", "2000,,4000", "20000001"} {
		if _, err := ParseChurn(bad); err == nil {
			t.Errorf("ParseChurn(%q) succeeded, want error", bad)
		}
	}
}
