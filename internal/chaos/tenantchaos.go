package chaos

import (
	"errors"
	"fmt"
	"strings"

	"riommu/internal/dma"
	"riommu/internal/driver"
	"riommu/internal/mem"
	"riommu/internal/pci"
)

// TenantScenario names one hostile-tenant behavior: attacks launched not by
// a single compromised device against its own OS, but by an entire guest
// (kernel included) against the hypervisor's blast-radius guarantees.
type TenantScenario string

// The hostile-tenant scenarios.
const (
	// S2StaleReplay warms stage-2 TLB entries for pages the host then
	// reclaims and regrants to a victim, and replays DMAs through them —
	// the nested-translation version of the stale-IOTLB window.
	S2StaleReplay TenantScenario = "s2-stale-replay"
	// GPAOverreach maps and probes guest-physical addresses beyond the
	// tenant's granted space, hunting for host frames it does not own.
	GPAOverreach TenantScenario = "gpa-overreach"
	// BDFSpoof issues DMAs tagged with other tenants' device BDFs — the
	// escape the device directory's source validation must stop.
	BDFSpoof TenantScenario = "bdf-spoof"
	// S2InvFlood hammers the balloon hypercall to flood the shared stage-2
	// invalidation machinery; the host's quota must throttle it before
	// other tenants feel it.
	S2InvFlood TenantScenario = "s2-inv-flood"
)

// TenantScenarios returns every hostile-tenant scenario in canonical order.
func TenantScenarios() []TenantScenario {
	return []TenantScenario{S2StaleReplay, GPAOverreach, BDFSpoof, S2InvFlood}
}

// ParseTenant parses a comma-separated hostile-tenant scenario list; "all"
// selects every scenario.
func ParseTenant(s string) ([]TenantScenario, error) {
	if strings.TrimSpace(s) == "all" {
		return TenantScenarios(), nil
	}
	known := make(map[TenantScenario]bool)
	for _, sc := range TenantScenarios() {
		known[sc] = true
	}
	var out []TenantScenario
	for _, part := range strings.Split(s, ",") {
		sc := TenantScenario(strings.TrimSpace(part))
		if sc == "" {
			continue
		}
		if !known[sc] {
			return nil, fmt.Errorf("chaos: unknown tenant scenario %q", sc)
		}
		out = append(out, sc)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("chaos: empty tenant scenario list")
	}
	return out, nil
}

// ErrAttackContained is returned by attack rounds whose every probe the
// translation path rejected — the supervisor sees the hostile tenant
// failing, which is what walks it into quarantine.
var ErrAttackContained = errors.New("chaos: all hostile-tenant probes contained")

// HostileTenant is a compromised guest: it controls a device of its own
// (ring 0 in its VM, so it can map any GPA it likes at stage 1) and drives
// attacks through the regular DMA engine, where the nested translator
// judges them. Contained probes return errors; landed probes reached
// memory and are judged by the tenant oracle.
type HostileTenant struct {
	eng  *dma.Engine
	prot driver.Protection // the attack device's stage-1 context
	bdf  pci.BDF           // the attack device

	Stats Stats
	buf   []byte

	// stale holds the stage-1 windows planted over to-be-reclaimed GPAs.
	stale []staleWindow
}

type staleWindow struct {
	iova uint64
	dir  pci.Dir
}

// NewHostileTenant builds a hostile guest model around its attack device.
func NewHostileTenant(eng *dma.Engine, prot driver.Protection, bdf pci.BDF) *HostileTenant {
	return &HostileTenant{eng: eng, prot: prot, bdf: bdf}
}

// BDF returns the attack device's identity.
func (h *HostileTenant) BDF() pci.BDF { return h.bdf }

func (h *HostileTenant) scratch(n int) []byte {
	if cap(h.buf) < n {
		h.buf = make([]byte, n)
		for i := range h.buf {
			h.buf[i] = 0xA5
		}
	}
	return h.buf[:n]
}

// Record notes the outcome of an externally executed attack step (e.g. a
// balloon hypercall the campaign issues on the tenant's behalf).
func (h *HostileTenant) Record(err error) {
	h.Stats.Attempts++
	if err != nil {
		h.Stats.Contained++
	} else {
		h.Stats.Landed++
	}
}

// PlantStale maps a stage-1 window onto each of the given GPAs and returns
// nothing until Replay probes them. The guest kernel is the attacker here:
// it keeps these stage-1 mappings alive forever, so after the host
// reclaims the underlying pages only stage 2 stands between the device and
// the frames' next owner.
func (h *HostileTenant) PlantStale(gpas []uint64) error {
	for _, gpa := range gpas {
		iova, err := h.prot.Map(0, mem.PA(gpa), probeSize, pci.DirBidi)
		if err != nil {
			return fmt.Errorf("chaos: planting stale window at gpa %#x: %w", gpa, err)
		}
		h.stale = append(h.stale, staleWindow{iova: iova, dir: pci.DirBidi})
	}
	return nil
}

// Replay probes every planted window. Before the host reclaims the pages
// the probes land harmlessly in the tenant's own memory (and warm the
// stage-2 TLB); afterwards a correct host faults every one. Returns
// ErrAttackContained when all probes were contained.
func (h *HostileTenant) Replay() error {
	if len(h.stale) == 0 {
		return fmt.Errorf("chaos: no stale windows planted")
	}
	landed := 0
	for _, w := range h.stale {
		err := h.eng.Write(h.bdf, w.iova, h.scratch(probeSize))
		h.Record(err)
		if err == nil {
			landed++
		}
	}
	if landed == 0 {
		return ErrAttackContained
	}
	return nil
}

// Overreach maps a stage-1 window at a GPA the tenant was never granted
// (base + the probe counter, advancing each call so repeat rounds touch
// fresh pages) and probes it. Stage 1 happily maps it — the guest kernel
// is hostile — so containment is purely stage 2's job.
func (h *HostileTenant) Overreach(base uint64) error {
	gpa := base + (h.Stats.Attempts%64)<<mem.PageShift
	iova, err := h.prot.Map(0, mem.PA(gpa), probeSize, pci.DirBidi)
	if err != nil {
		// Stage 1 refused the mapping (e.g. full ring): count it
		// contained, but keep the pressure up next round.
		h.Record(err)
		return ErrAttackContained
	}
	probeErr := h.eng.Write(h.bdf, iova, h.scratch(probeSize))
	h.Record(probeErr)
	_ = h.prot.Unmap(0, iova, probeSize, true)
	if probeErr != nil {
		return ErrAttackContained
	}
	return nil
}

// Spoof issues DMAs tagged with each victim BDF. In protected stage-1
// modes the spoofed device's own IOMMU context rejects the access; in the
// unprotected mode only the hypervisor's device directory stands in the
// way. Returns ErrAttackContained when every spoof was blocked.
func (h *HostileTenant) Spoof(victims []pci.BDF) error {
	landed := 0
	for _, bdf := range victims {
		err := h.eng.Write(bdf, uint64(mem.PageSize), h.scratch(probeSize))
		h.Record(err)
		if err == nil {
			landed++
		}
	}
	if landed == 0 {
		return ErrAttackContained
	}
	return nil
}
