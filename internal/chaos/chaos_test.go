package chaos

import (
	"reflect"
	"testing"

	"riommu/internal/audit"
	"riommu/internal/device"
	"riommu/internal/pci"
	"riommu/internal/sim"
)

var bdf = pci.NewBDF(0, 3, 0)

// runTraffic builds an audited system, drives a NIC workload long enough to
// create and retire mappings, leaves one Tx buffer mapped (a live read-only
// target), and returns a hostile device over the result.
func runTraffic(t *testing.T, mode sim.Mode, rounds int) (*audit.Oracle, *Hostile) {
	t.Helper()
	sys, err := sim.NewSystem(mode, 1<<15)
	if err != nil {
		t.Fatal(err)
	}
	orc := sys.EnableAudit()
	drv, _, err := sys.AttachNIC(device.ProfileBRCM, bdf)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 1024)
	for i := range payload {
		payload[i] = byte(i)
	}
	for r := 0; r < rounds; r++ {
		if err := drv.Send(payload); err != nil {
			t.Fatal(err)
		}
		if _, err := drv.PumpTx(2); err != nil {
			t.Fatal(err)
		}
		if _, err := drv.ReapTx(); err != nil {
			t.Fatal(err)
		}
		if err := drv.Deliver(payload); err != nil {
			t.Fatal(err)
		}
		if _, err := drv.ReapRx(); err != nil {
			t.Fatal(err)
		}
	}
	// One unreaped Tx buffer stays mapped read-only for WriteReadOnly.
	if err := drv.Send(payload); err != nil {
		t.Fatal(err)
	}
	if orc.Violations != 0 {
		t.Fatalf("legitimate %s traffic produced violations: %+v", mode, orc.Events)
	}
	return orc, NewHostile(sys.Eng, orc, bdf)
}

func TestStaleReplayDeferWindow(t *testing.T) {
	orc, h := runTraffic(t, sim.Defer, 20)
	h.ReplayRetired(16)
	if h.Stats.Attempts == 0 {
		t.Fatal("no retired mappings to replay")
	}
	if h.Stats.Landed == 0 {
		t.Fatal("defer mode contained every stale replay — the window should be open")
	}
	if orc.ByReason[audit.ReasonStale] == 0 {
		t.Fatalf("landed stale replays not classified stale: %+v", orc.ByReason)
	}
}

func TestStaleReplaySafeModesViolationFree(t *testing.T) {
	for _, mode := range []sim.Mode{sim.Strict, sim.RIOMMU} {
		orc, h := runTraffic(t, mode, 20)
		h.ReplayRetired(16)
		if h.Stats.Attempts == 0 {
			t.Fatalf("%s: no retired mappings to replay", mode)
		}
		if orc.Violations != 0 {
			t.Errorf("%s: stale replay violated isolation: %+v", mode, orc.Events)
		}
	}
}

func TestOverreachSubPageGap(t *testing.T) {
	// Baseline protection is page-granular: running past a 2 KiB buffer
	// inside its 4 KiB page translates fine and the oracle flags bounds.
	orc, h := runTraffic(t, sim.Strict, 10)
	h.OverreachLive(8)
	if h.Stats.Landed == 0 {
		t.Fatal("baseline contained sub-page overreach — page granularity should let it through")
	}
	if orc.ByReason[audit.ReasonBounds] == 0 {
		t.Fatalf("landed overreach not classified bounds: %+v", orc.ByReason)
	}

	// rIOMMU rPTEs are byte-granular: the same attack faults at the boundary.
	orc, h = runTraffic(t, sim.RIOMMU, 10)
	h.OverreachLive(8)
	if h.Stats.Attempts == 0 {
		t.Fatal("riommu: no live mappings to overreach")
	}
	if h.Stats.Landed != 0 || orc.Violations != 0 {
		t.Errorf("riommu let overreach through: landed=%d violations=%d", h.Stats.Landed, orc.Violations)
	}
}

func TestWriteReadOnlyContained(t *testing.T) {
	for _, mode := range []sim.Mode{sim.Strict, sim.RIOMMU} {
		orc, h := runTraffic(t, mode, 5)
		h.WriteReadOnly(4)
		if h.Stats.Attempts == 0 {
			t.Fatalf("%s: no read-only mappings to attack", mode)
		}
		if h.Stats.Landed != 0 || orc.Violations != 0 {
			t.Errorf("%s: write through read-only mapping landed: %+v", mode, h.Stats)
		}
	}
}

func TestHostileDeterministic(t *testing.T) {
	run := func() (Stats, uint64, map[string]uint64) {
		orc, h := runTraffic(t, sim.Defer, 20)
		h.ReplayRetired(16)
		h.OverreachLive(8)
		h.WriteReadOnly(4)
		return h.Stats, orc.Violations, orc.ByReason
	}
	s1, v1, r1 := run()
	s2, v2, r2 := run()
	if s1 != s2 || v1 != v2 || !reflect.DeepEqual(r1, r2) {
		t.Errorf("hostile run not deterministic: %+v/%d/%v vs %+v/%d/%v", s1, v1, r1, s2, v2, r2)
	}
}

func TestParse(t *testing.T) {
	all, err := Parse("all")
	if err != nil || len(all) != len(Scenarios()) {
		t.Fatalf("Parse(all) = %v, %v", all, err)
	}
	two, err := Parse(" stale-replay, overreach ")
	if err != nil || len(two) != 2 || two[0] != StaleReplay || two[1] != Overreach {
		t.Fatalf("Parse(csv) = %v, %v", two, err)
	}
	if _, err := Parse("nonsense"); err == nil {
		t.Error("Parse accepted an unknown scenario")
	}
	if _, err := Parse(""); err == nil {
		t.Error("Parse accepted an empty list")
	}
}
