package chaos

import (
	"fmt"
	"strings"

	"riommu/internal/audit"
	"riommu/internal/intremap"
	"riommu/internal/pci"
)

// IntScenario names one interrupt-injection behavior — the MSI-side attacks
// interrupt remapping exists to stop (the hot-plug/Thunderbolt threat
// model: a malicious device can synthesize any MSI write it likes).
type IntScenario string

// The interrupt-injection scenarios.
const (
	// VectorStorm blasts remappable-format messages at IRTE indices the OS
	// never allocated — a wild-vector storm that unremapped MSIs would turn
	// into arbitrary interrupt injection.
	VectorStorm IntScenario = "vector-storm"
	// SpoofBDF issues messages that reference the victim's live IRTEs but
	// carry the hostile device's requester id — source-id verification is
	// the only thing standing between this and the victim's handler.
	SpoofBDF IntScenario = "spoof-bdf"
	// IRTEReplay replays the victim's own recently freed IRTE indices (the
	// ghost of a removed or reset device still asserting completions). In
	// the deferred-IEC modes a stale cache entry can still deliver these —
	// the interrupt analog of the stale-IOTLB window.
	IRTEReplay IntScenario = "irte-replay"
)

// IntScenarios returns every interrupt scenario in canonical order.
func IntScenarios() []IntScenario {
	return []IntScenario{VectorStorm, SpoofBDF, IRTEReplay}
}

// ParseInt parses a comma-separated interrupt-scenario list; "all" selects
// every scenario.
func ParseInt(s string) ([]IntScenario, error) {
	if strings.TrimSpace(s) == "all" {
		return IntScenarios(), nil
	}
	known := make(map[IntScenario]bool)
	for _, sc := range IntScenarios() {
		known[sc] = true
	}
	var out []IntScenario
	for _, part := range strings.Split(s, ",") {
		sc := IntScenario(strings.TrimSpace(part))
		if sc == "" {
			continue
		}
		if !known[sc] {
			return nil, fmt.Errorf("chaos: unknown interrupt scenario %q", sc)
		}
		out = append(out, sc)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("chaos: empty interrupt scenario list")
	}
	return out, nil
}

// IntHostile is a hostile device injecting interrupt messages through the
// remapping unit, exactly as the hardware would see them. Outcome counting
// reuses the chaos Stats convention: a message the remapper refuses is
// contained; one it delivers lands (the interrupt oracle then judges
// whether landing was a violation). Target selection reads only the
// interrupt oracle's deterministic views, so cells stay pure functions of
// their seed.
type IntHostile struct {
	rem    *intremap.Remapper
	orc    *audit.IntOracle
	bdf    pci.BDF // hostile requester id
	victim pci.BDF // device whose vectors are attacked

	Stats Stats
}

// NewIntHostile builds an interrupt-injecting hostile device.
func NewIntHostile(rem *intremap.Remapper, orc *audit.IntOracle, bdf, victim pci.BDF) *IntHostile {
	return &IntHostile{rem: rem, orc: orc, bdf: bdf, victim: victim}
}

func (h *IntHostile) note(out intremap.Outcome) {
	h.Stats.Attempts++
	if out == intremap.Delivered {
		h.Stats.Landed++
	} else {
		h.Stats.Contained++
	}
}

// tableSpan is the index space the storm sprays; pass-through mode has no
// table, so a nominal span keeps the walk deterministic.
func (h *IntHostile) tableSpan() int {
	if t := h.rem.Table(); t != nil {
		return t.Size()
	}
	return 256
}

// Storm sprays n messages across the table's index space with a fixed
// stride, as the hostile requester. Indices that happen to hit someone's
// live IRTE are refused by source-id verification; the rest are wild.
func (h *IntHostile) Storm(n int) {
	span := h.tableSpan()
	for i := 0; i < n; i++ {
		idx := (i*37 + 5) % span
		h.note(h.rem.Deliver(h.bdf, idx, uint8(0x80+i%0x40), 0))
	}
}

// Spoof targets up to n of the victim's live IRTEs with the hostile
// requester id.
func (h *IntHostile) Spoof(n int) {
	for i, idx := range h.orc.LiveSortedFor(h.victim) {
		if i >= n {
			break
		}
		h.note(h.rem.Deliver(h.bdf, idx, 0, 0))
	}
}

// ReplayFreed re-asserts up to n of the victim's most recently freed IRTE
// indices, carrying the victim's own requester id (the ghost-completion
// case: source-id verification cannot help, only IEC invalidation can).
func (h *IntHostile) ReplayFreed(n int) {
	for _, idx := range h.orc.RecentFreedFor(h.victim, n) {
		h.note(h.rem.Deliver(h.victim, idx, 0, 0))
	}
}

// RunInt executes one interrupt scenario step of the given intensity.
func (h *IntHostile) RunInt(sc IntScenario, n int) {
	switch sc {
	case VectorStorm:
		h.Storm(n)
	case SpoofBDF:
		h.Spoof(n)
	case IRTEReplay:
		h.ReplayFreed(n)
	}
}
