package chaos

import (
	"errors"
	"reflect"
	"testing"

	"riommu/internal/mem"
	"riommu/internal/pci"
	"riommu/internal/sim"
	"riommu/internal/tenant"
)

func TestParseTenantScenarios(t *testing.T) {
	all, err := ParseTenant("all")
	if err != nil || !reflect.DeepEqual(all, TenantScenarios()) {
		t.Fatalf("ParseTenant(all) = %v, %v", all, err)
	}
	got, err := ParseTenant(" bdf-spoof , s2-inv-flood ")
	if err != nil || !reflect.DeepEqual(got, []TenantScenario{BDFSpoof, S2InvFlood}) {
		t.Fatalf("ParseTenant list = %v, %v", got, err)
	}
	for _, bad := range []string{"", "nope", "s2-stale-replay,nope"} {
		if _, err := ParseTenant(bad); err == nil {
			t.Errorf("ParseTenant(%q) accepted", bad)
		}
	}
}

// hostileWorld builds a two-tenant hypervisor over a real guest system for
// tenant 0 and hands back the hostile-tenant model driving its attack
// device. Mode none keeps stage 1 wide open: containment shown here is
// stage 2's alone.
func hostileWorld(t *testing.T) (*tenant.Host, *tenant.Domain, *HostileTenant, *sim.System) {
	t.Helper()
	h, err := tenant.NewHost(128)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(h.Close)
	h.EnableAudit()
	sys, err := sim.NewSystem(sim.None, 1<<9)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	dom, err := h.AdoptSystem(sys)
	if err != nil {
		t.Fatal(err)
	}
	bdf := pci.NewBDF(1, 0, 1)
	prot, err := sys.ProtectionFor(bdf, []uint32{64})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Register(dom, bdf); err != nil {
		t.Fatal(err)
	}
	return h, dom, NewHostileTenant(sys.Eng, prot, bdf), sys
}

// TestHostileReplayContainedAfterReclaim: the stale windows land while the
// pages are granted, and every probe dies at stage 2 after the reclaim.
func TestHostileReplayContainedAfterReclaim(t *testing.T) {
	h, dom, hostile, sys := hostileWorld(t)
	first, err := sys.Mem.AllocFrames(2)
	if err != nil {
		t.Fatal(err)
	}
	base := uint64(first.PA())
	if err := hostile.PlantStale([]uint64{base, base + mem.PageSize}); err != nil {
		t.Fatal(err)
	}
	if err := hostile.Replay(); err != nil {
		t.Fatalf("pre-reclaim replay should land: %v", err)
	}
	if hostile.Stats.Landed != 2 {
		t.Fatalf("warm replay landed %d, want 2", hostile.Stats.Landed)
	}
	if err := h.Reclaim(dom, base, 2); err != nil {
		t.Fatal(err)
	}
	if err := hostile.Replay(); !errors.Is(err, ErrAttackContained) {
		t.Fatalf("post-reclaim replay: err = %v, want ErrAttackContained", err)
	}
	if hostile.Stats.Contained != 2 || hostile.Stats.Attempts != 4 {
		t.Fatalf("stats = %+v", hostile.Stats)
	}
	if h.Oracle().CrossTenant != 0 {
		t.Fatalf("contained probes flagged cross-tenant: %d", h.Oracle().CrossTenant)
	}
}

// TestHostileOverreachContained: GPAs beyond the granted space must fault
// at stage 2 every round, advancing the probe cursor.
func TestHostileOverreachContained(t *testing.T) {
	_, _, hostile, _ := hostileWorld(t)
	base := uint64(1) << 9 << mem.PageShift // first page past the guest's space
	for i := 0; i < 3; i++ {
		if err := hostile.Overreach(base); !errors.Is(err, ErrAttackContained) {
			t.Fatalf("overreach %d: err = %v, want ErrAttackContained", i, err)
		}
	}
	if hostile.Stats.Contained != 3 || hostile.Stats.Landed != 0 {
		t.Fatalf("stats = %+v", hostile.Stats)
	}
}

// TestHostileSpoofContained: DMAs tagged with a foreign BDF die at the
// device directory even in the unprotected stage-1 mode.
func TestHostileSpoofContained(t *testing.T) {
	h, _, hostile, _ := hostileWorld(t)
	peer, err := h.AdoptSpace(8)
	if err != nil {
		t.Fatal(err)
	}
	victim := pci.NewBDF(2, 0, 0)
	if err := h.Register(peer, victim); err != nil {
		t.Fatal(err)
	}
	if err := hostile.Spoof([]pci.BDF{victim}); !errors.Is(err, ErrAttackContained) {
		t.Fatalf("spoof: err = %v, want ErrAttackContained", err)
	}
	if h.SpoofBlocked != 1 {
		t.Fatalf("SpoofBlocked = %d", h.SpoofBlocked)
	}
}

func TestHostileRecord(t *testing.T) {
	var hostile HostileTenant
	hostile.Record(nil)
	hostile.Record(errors.New("bounced"))
	want := Stats{Attempts: 2, Contained: 1, Landed: 1}
	if hostile.Stats != want {
		t.Fatalf("stats = %+v, want %+v", hostile.Stats, want)
	}
}
