// Package chaos implements a hostile-device model: a device that issues the
// DMAs intra-OS protection exists to stop. Each scenario is one attack the
// paper's threat model (§2.1) names — replaying translations for buffers the
// OS already reclaimed (the deferred modes' stale-IOTLB window), running past
// a sub-page buffer's bounds (the baseline's page-granularity gap, §4),
// writing through read-only mappings, flooding the invalidation queue, and
// multi-fault cascades layered on the injection engine.
//
// A Hostile drives its DMAs through the regular dma.Engine, so the
// protection hardware judges them exactly as it judges legitimate traffic:
// an attempt the translator rejects is contained; one it translates lands in
// memory and is then judged by the audit oracle. Target selection reads only
// the oracle's deterministic views (LiveSorted, RecentRetired) and consumes
// no randomness, so a chaos campaign cell is a pure function of its seed.
package chaos

import (
	"fmt"
	"strings"

	"riommu/internal/audit"
	"riommu/internal/dma"
	"riommu/internal/pci"
)

// Scenario names one hostile-device behavior.
type Scenario string

// The hostile-device scenarios.
const (
	// StaleReplay re-issues DMAs to recently unmapped buffers — the access a
	// stale IOTLB entry would let through during the deferred-invalidation
	// window.
	StaleReplay Scenario = "stale-replay"
	// Overreach starts inside a live sub-page buffer and runs past its byte
	// bounds — contained only by byte-granular (rIOMMU) protection.
	Overreach Scenario = "overreach"
	// ROWrite writes through mappings that only permit device reads.
	ROWrite Scenario = "ro-write"
	// InvFlood churns map/unmap on a second device to flood the invalidation
	// queue while the victim device runs its workload.
	InvFlood Scenario = "inv-flood"
	// Cascade layers stale replays on top of a multi-fault burst from the
	// injection engine (faults.Engine rates opened mid-cell).
	Cascade Scenario = "cascade"
)

// Scenarios returns every scenario in canonical order.
func Scenarios() []Scenario {
	return []Scenario{StaleReplay, Overreach, ROWrite, InvFlood, Cascade}
}

// Parse parses a comma-separated scenario list; "all" selects every scenario.
func Parse(s string) ([]Scenario, error) {
	if strings.TrimSpace(s) == "all" {
		return Scenarios(), nil
	}
	known := make(map[Scenario]bool)
	for _, sc := range Scenarios() {
		known[sc] = true
	}
	var out []Scenario
	for _, part := range strings.Split(s, ",") {
		sc := Scenario(strings.TrimSpace(part))
		if sc == "" {
			continue
		}
		if !known[sc] {
			return nil, fmt.Errorf("chaos: unknown scenario %q", sc)
		}
		out = append(out, sc)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("chaos: empty scenario list")
	}
	return out, nil
}

// Stats counts one Hostile's attack outcomes. Attempts = Contained + Landed:
// an attempt the translation hardware rejects is contained; one it accepts
// lands in memory (the oracle then decides whether landing was a violation —
// a landed ro-write probe on a bidirectional mapping is harmless).
type Stats struct {
	Attempts  uint64
	Contained uint64
	Landed    uint64
}

// Hostile is a compromised/buggy device issuing attacks as the given BDF.
// Target selection reads the audit oracle's deterministic views; the oracle
// must therefore be mirroring the drivers that map this device's buffers.
type Hostile struct {
	eng *dma.Engine
	orc *audit.Oracle
	bdf pci.BDF

	Stats Stats
	buf   []byte
}

// NewHostile builds a hostile device model over the system's DMA engine and
// audit oracle.
func NewHostile(eng *dma.Engine, orc *audit.Oracle, bdf pci.BDF) *Hostile {
	return &Hostile{eng: eng, orc: orc, bdf: bdf}
}

func (h *Hostile) scratch(n int) []byte {
	if cap(h.buf) < n {
		h.buf = make([]byte, n)
		for i := range h.buf {
			h.buf[i] = 0xA5 // recognizable hostile payload
		}
	}
	return h.buf[:n]
}

func (h *Hostile) note(err error) {
	h.Stats.Attempts++
	if err != nil {
		h.Stats.Contained++
	} else {
		h.Stats.Landed++
	}
}

// probeSize bounds each hostile access; small enough never to add a page
// crossing of its own.
const probeSize = 64

// ReplayRetired re-issues DMAs to up to n of the most recently unmapped
// buffers, in each one's original direction. Under strict invalidation the
// translation is gone and the access faults; in the deferred modes a stale
// IOTLB entry can still serve it — the vulnerability window the audit
// oracle quantifies.
func (h *Hostile) ReplayRetired(n int) {
	for _, r := range h.orc.RecentRetired(h.bdf, n) {
		size := uint32(probeSize)
		if r.Size < size {
			size = r.Size
		}
		if r.Dir.Allows(pci.DirFromDevice) {
			h.note(h.eng.Write(h.bdf, r.IOVA, h.scratch(int(size))))
		} else {
			h.note(h.eng.Read(h.bdf, r.IOVA, h.scratch(int(size))))
		}
	}
}

// OverreachLive runs across the end of up to n live buffers: each access
// starts inside the buffer's last bytes and runs past its extent, in a
// direction the mapping permits (so any violation is purely about bounds).
// Page-granular protection translates the whole access whenever the next
// bytes share the buffer's page (the §4 sub-page gap); byte-granular rPTEs
// fault it at the boundary.
func (h *Hostile) OverreachLive(n int) {
	ms := h.orc.LiveSorted(h.bdf)
	for i := 0; i < len(ms) && i < n; i++ {
		m := ms[i]
		half := uint64(probeSize / 2)
		if uint64(m.Size) < half {
			continue
		}
		start := m.IOVA + uint64(m.Size) - half
		if m.Dir.Allows(pci.DirFromDevice) {
			h.note(h.eng.Write(h.bdf, start, h.scratch(probeSize)))
		} else {
			h.note(h.eng.Read(h.bdf, start, h.scratch(probeSize)))
		}
	}
}

// WriteReadOnly writes through up to n live mappings that do not permit
// device writes (Tx buffers). Both IOMMU designs store the direction in the
// translation, so these should be contained in every protected mode.
func (h *Hostile) WriteReadOnly(n int) {
	done := 0
	for _, m := range h.orc.LiveSorted(h.bdf) {
		if done >= n {
			break
		}
		if m.Dir.Allows(pci.DirFromDevice) {
			continue
		}
		size := uint32(probeSize)
		if m.Size < size {
			size = m.Size
		}
		h.note(h.eng.Write(h.bdf, m.IOVA, h.scratch(int(size))))
		done++
	}
}
