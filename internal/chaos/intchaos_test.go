package chaos

import (
	"testing"

	"riommu/internal/audit"
	"riommu/internal/cycles"
	"riommu/internal/intremap"
	"riommu/internal/pci"
)

func intFixture(t *testing.T, deferred bool) (*intremap.Remapper, *audit.IntOracle, *IntHostile) {
	t.Helper()
	cpu, dev := &cycles.Clock{}, &cycles.Clock{}
	model := cycles.DefaultModel()
	rem, err := intremap.New(intremap.Config{TableOrder: 6, DeferredInv: deferred}, cpu, dev, &model)
	if err != nil {
		t.Fatal(err)
	}
	orc := audit.NewIntOracle("test", cpu)
	rem.SetObserver(orc)
	victim := pci.NewBDF(0, 3, 0)
	h := NewIntHostile(rem, orc, pci.NewBDF(0, 66, 6), victim)
	return rem, orc, h
}

func TestParseIntScenarios(t *testing.T) {
	all, err := ParseInt("all")
	if err != nil || len(all) != len(IntScenarios()) {
		t.Fatalf("all: %v %v", all, err)
	}
	one, err := ParseInt(" spoof-bdf ,vector-storm")
	if err != nil || len(one) != 2 || one[0] != SpoofBDF {
		t.Fatalf("list: %v %v", one, err)
	}
	if _, err := ParseInt("nope"); err == nil {
		t.Fatal("unknown scenario accepted")
	}
	if _, err := ParseInt(" , "); err == nil {
		t.Fatal("empty list accepted")
	}
}

func TestVectorStormContained(t *testing.T) {
	rem, orc, h := intFixture(t, false)
	// One legitimate IRTE so the storm can also collide with a live entry.
	victim := pci.NewBDF(0, 3, 0)
	if _, err := rem.Alloc(victim, 0x22, 1, false); err != nil {
		t.Fatal(err)
	}
	h.RunInt(VectorStorm, 128)
	if h.Stats.Attempts != 128 || h.Stats.Landed != 0 {
		t.Fatalf("storm: %+v", h.Stats)
	}
	if h.Stats.Contained != 128 {
		t.Fatalf("storm containment: %+v", h.Stats)
	}
	if orc.Violations != 0 {
		t.Fatalf("storm produced delivered violations: %+v", orc.ByReason)
	}
	if orc.Blocked == 0 {
		t.Fatal("oracle saw no blocked messages")
	}
}

func TestSpoofBlockedBySourceID(t *testing.T) {
	rem, orc, h := intFixture(t, false)
	victim := pci.NewBDF(0, 3, 0)
	for v := 0; v < 4; v++ {
		if _, err := rem.Alloc(victim, 0x20+uint8(v), v, false); err != nil {
			t.Fatal(err)
		}
	}
	h.RunInt(SpoofBDF, 8)
	if h.Stats.Attempts != 4 {
		t.Fatalf("spoof attempts = %d, want 4 (live IRTEs)", h.Stats.Attempts)
	}
	if h.Stats.Landed != 0 || orc.Violations != 0 {
		t.Fatalf("spoof landed: %+v viol %+v", h.Stats, orc.ByReason)
	}
	if got := orc.ByOutcome[intremap.BlockedSourceMismatch.String()]; got != 4 {
		t.Fatalf("source-mismatch blocks = %d, want 4", got)
	}
}

func TestReplayFreedStrictVsDeferred(t *testing.T) {
	victim := pci.NewBDF(0, 3, 0)
	setup := func(deferred bool) (*audit.IntOracle, *IntHostile) {
		rem, orc, h := intFixture(t, deferred)
		for v := 0; v < 4; v++ {
			idx, err := rem.Alloc(victim, 0x20+uint8(v), v, false)
			if err != nil {
				t.Fatal(err)
			}
			// Warm the IEC, then free: deferred mode leaves the cached entry
			// deliverable until the batched flush.
			if out := rem.Deliver(victim, idx, 0, 0); out != intremap.Delivered {
				t.Fatalf("warmup: %v", out)
			}
			if err := rem.Free(idx); err != nil {
				t.Fatal(err)
			}
		}
		return orc, h
	}

	// Strict invalidation: replay is contained, oracle stays clean.
	orc, h := setup(false)
	h.RunInt(IRTEReplay, 4)
	if h.Stats.Landed != 0 || orc.ByReason[audit.IntReasonStale] != 0 {
		t.Fatalf("strict replay: %+v viol %+v", h.Stats, orc.ByReason)
	}

	// Deferred invalidation: the replay lands inside the stale window and
	// the oracle classifies every landing as int-stale.
	orc, h = setup(true)
	h.RunInt(IRTEReplay, 4)
	if h.Stats.Landed != 4 {
		t.Fatalf("deferred replay should land: %+v", h.Stats)
	}
	if orc.ByReason[audit.IntReasonStale] != 4 {
		t.Fatalf("stale classification: %+v", orc.ByReason)
	}
}

func TestIntHostileDeterminism(t *testing.T) {
	run := func() (Stats, uint64) {
		rem, orc, h := intFixture(t, true)
		victim := pci.NewBDF(0, 3, 0)
		for v := 0; v < 6; v++ {
			idx, err := rem.Alloc(victim, 0x20+uint8(v), v, false)
			if err != nil {
				t.Fatal(err)
			}
			rem.Deliver(victim, idx, 0, 0)
			if v%2 == 0 {
				rem.Free(idx)
			}
		}
		for _, sc := range IntScenarios() {
			h.RunInt(sc, 32)
		}
		return h.Stats, orc.Violations
	}
	s1, v1 := run()
	s2, v2 := run()
	if s1 != s2 || v1 != v2 {
		t.Fatalf("nondeterministic: %+v/%d vs %+v/%d", s1, v1, s2, v2)
	}
}
