package sim

import (
	"bytes"
	"testing"

	"riommu/internal/device"
	"riommu/internal/faults"
)

// fuzzProfile keeps the rings tiny so one fuzz execution (which may run
// dozens of recoveries, each refilling the whole Rx ring) stays well under
// the fuzzer's per-input deadline.
var fuzzProfile = device.NICProfile{
	Name:             "fuzz",
	LineRateGbps:     10,
	BuffersPerPacket: 1,
	RxEntries:        64,
	TxEntries:        64,
	MTU:              1500,
	CostScale:        1.0,
}

// faultRun drives one freshly built system through a fixed supervised NIC
// workload under uniform fault injection and returns the engine's schedule
// plus both virtual-clock readings. Everything observable must be a pure
// function of (mode, seed, rate, steps).
func faultRun(t testing.TB, mode Mode, seed uint64, rate float64, steps int) (sched []byte, cpu, dev uint64) {
	sys, err := NewSystem(mode, 1<<13)
	if err != nil {
		t.Fatal(err)
	}
	f := sys.EnableFaults(faults.UniformConfig(seed, rate))
	drv, _, err := sys.AttachNIC(fuzzProfile, bdf)
	if err != nil {
		t.Fatal(err)
	}
	sup := sys.Supervise(bdf, drv)
	payload := bytes.Repeat([]byte{0x5A}, 300)
	for i := 0; i < steps; i++ {
		_ = sup.Do(func() error {
			if err := drv.Send(payload); err != nil {
				return err
			}
			if _, err := drv.PumpTx(2); err != nil {
				return err
			}
			if _, err := drv.ReapTx(); err != nil {
				return err
			}
			if err := drv.Deliver(payload); err != nil {
				return err
			}
			_, err := drv.ReapRx()
			return err
		})
		if _, err := sup.Watch(); err != nil {
			t.Fatalf("step %d watchdog: %v", i, err)
		}
	}
	return f.ScheduleBytes(), sys.CPU.Now(), sys.Dev.Now()
}

// FuzzFaultDeterminism is the acceptance property for the injection engine:
// for any (seed, rate, workload length), two runs of the identical workload
// produce a byte-identical fault schedule and identical virtual-clock totals.
// Any use of wall time, math/rand global state, or map-iteration order in a
// fault or recovery path breaks this immediately.
func FuzzFaultDeterminism(f *testing.F) {
	f.Add(uint64(1), uint8(5), uint8(20))
	f.Add(uint64(42), uint8(0), uint8(10))
	f.Add(uint64(0xDEAD), uint8(100), uint8(40))
	f.Add(uint64(7), uint8(37), uint8(3))
	f.Fuzz(func(t *testing.T, seed uint64, ratePct uint8, steps uint8) {
		rate := float64(ratePct%31) / 100
		n := int(steps%16) + 1
		for _, mode := range []Mode{Strict, RIOMMU} {
			s1, c1, d1 := faultRun(t, mode, seed, rate, n)
			s2, c2, d2 := faultRun(t, mode, seed, rate, n)
			if !bytes.Equal(s1, s2) {
				t.Errorf("%s: seed=%d rate=%v steps=%d: fault schedules differ (%d vs %d bytes)",
					mode, seed, rate, n, len(s1), len(s2))
			}
			if c1 != c2 {
				t.Errorf("%s: CPU clocks differ: %d vs %d", mode, c1, c2)
			}
			if d1 != d2 {
				t.Errorf("%s: device clocks differ: %d vs %d", mode, d1, d2)
			}
		}
	})
}
