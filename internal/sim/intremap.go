package sim

import (
	"riommu/internal/audit"
	"riommu/internal/driver"
	"riommu/internal/intremap"
	"riommu/internal/pci"
)

// EnableIntRemap installs the interrupt-remapping unit for the system's
// protection mode and returns it. Interrupt modeling is strictly opt-in:
// without this call no device raises, no clock sees an int-remap charge,
// and every legacy metric is untouched.
//
// Mode policy mirrors the DMA side:
//   - none/hwpt/swpt: pass-through (compatibility-format delivery, no table);
//   - defer/defer+: remapping with deferred IEC invalidation — freed IRTEs
//     may keep delivering until the amortized global flush, the interrupt
//     analog of the stale-IOTLB window;
//   - strict/strict+/riommu-/riommu: remapping with synchronous IEC
//     invalidation (gap-free).
func (s *System) EnableIntRemap() (*intremap.Remapper, error) {
	if s.IntRemap != nil {
		return s.IntRemap, nil
	}
	cfg := intremap.Config{}
	switch s.Mode {
	case None, HWpt, SWpt:
		cfg.PassThrough = true
	case Defer, DeferPlus:
		cfg.DeferredInv = true
	}
	rem, err := intremap.New(cfg, s.CPU, s.Dev, &s.Model)
	if err != nil {
		return nil, err
	}
	s.IntRemap = rem
	if s.IntAuditor != nil {
		rem.SetObserver(s.IntAuditor)
	}
	return rem, nil
}

// EnableIntAudit installs the interrupt shadow oracle and mirrors the
// remapper into it (enabling remapping first if needed). Like the DMA
// oracle it is a pure observer: audited metrics are byte-identical to
// unaudited ones.
func (s *System) EnableIntAudit() (*audit.IntOracle, error) {
	if s.IntAuditor != nil {
		return s.IntAuditor, nil
	}
	if _, err := s.EnableIntRemap(); err != nil {
		return nil, err
	}
	orc := audit.NewIntOracle(s.Mode.String(), s.CPU)
	switch s.Mode {
	case None, HWpt, SWpt:
		orc.SetPassThrough(true)
	}
	s.IntAuditor = orc
	s.IntRemap.SetObserver(orc)
	return orc, nil
}

// WireNICInterrupts allocates queue q's MSI-X vector pair targeting
// destCore and wires it into both halves of the driver: the device model
// raises, the reap paths fire. Requires EnableIntRemap.
func (s *System) WireNICInterrupts(drv *driver.NICDriver, bdf pci.BDF, q, destCore int, posted bool) (*intremap.Source, error) {
	src, err := s.IntRemap.NewSource(bdf, q, destCore, posted)
	if err != nil {
		return nil, err
	}
	drv.SetIRQ(src)
	if s.intSources == nil {
		s.intSources = make(map[pci.BDF][]*intremap.Source)
	}
	s.intSources[bdf] = append(s.intSources[bdf], src)
	return src, nil
}

// WireMQNICInterrupts wires every queue of a multi-queue NIC, queue q
// targeting core q (the standard affinity layout; single-core systems pass
// every interrupt through core 0's timeline only when queues=1).
func (s *System) WireMQNICInterrupts(mq *driver.MQNIC, bdf pci.BDF, posted bool) error {
	for q, drv := range mq.Queues {
		if _, err := s.WireNICInterrupts(drv, bdf, q, q, posted); err != nil {
			return err
		}
	}
	return nil
}

// DropIntSources closes every interrupt source of bdf: pending raises are
// discarded (never delivered) and the IRTEs freed. Surprise removal and
// detach both route through here.
func (s *System) DropIntSources(bdf pci.BDF) int {
	n := 0
	for _, src := range s.intSources[bdf] {
		if !src.Closed() {
			src.Close()
			n++
		}
	}
	delete(s.intSources, bdf)
	return n
}
