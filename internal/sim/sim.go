// Package sim assembles complete simulated systems for each of the IOMMU
// protection modes the paper evaluates (§5.1):
//
//	strict, strict+, defer, defer+  — baseline IOMMU (full implementations)
//	riommu−, riommu                 — the proposed design (incoherent/coherent walks)
//	none                            — IOMMU disabled
//	HWpt, SWpt                      — pass-through modes used to validate the
//	                                  methodology (§5.1)
//
// A System owns two virtual clocks: CPU (the core the paper's model says
// determines throughput) and Dev (device/IOMMU-side work, tracked but not
// throughput-gating).
package sim

import (
	"fmt"

	"riommu/internal/audit"
	"riommu/internal/baseline"
	"riommu/internal/core"
	"riommu/internal/cycles"
	"riommu/internal/device"
	"riommu/internal/dma"
	"riommu/internal/driver"
	"riommu/internal/faults"
	"riommu/internal/intremap"
	"riommu/internal/iommu"
	"riommu/internal/mem"
	"riommu/internal/pagetable"
	"riommu/internal/pci"
)

// Mode is one of the evaluated IOMMU configurations.
type Mode int

// The evaluated modes, in the paper's presentation order.
const (
	Strict Mode = iota
	StrictPlus
	Defer
	DeferPlus
	RIOMMUMinus
	RIOMMU
	None
	HWpt
	SWpt
)

// String names the mode as the paper does.
func (m Mode) String() string {
	switch m {
	case Strict:
		return "strict"
	case StrictPlus:
		return "strict+"
	case Defer:
		return "defer"
	case DeferPlus:
		return "defer+"
	case RIOMMUMinus:
		return "riommu-"
	case RIOMMU:
		return "riommu"
	case None:
		return "none"
	case HWpt:
		return "hwpt"
	case SWpt:
		return "swpt"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Safe reports whether the mode provides gap-free intra-OS protection:
// strict modes and both rIOMMU variants are safe; the deferred modes leave a
// stale-IOTLB window; none/pass-through provide no protection.
func (m Mode) Safe() bool {
	switch m {
	case Strict, StrictPlus, RIOMMUMinus, RIOMMU:
		return true
	default:
		return false
	}
}

// AllModes returns the seven modes of Figure 12 in presentation order.
func AllModes() []Mode {
	return []Mode{Strict, StrictPlus, Defer, DeferPlus, RIOMMUMinus, RIOMMU, None}
}

// BaselineModes returns the four Linux baseline modes of Table 1.
func BaselineModes() []Mode {
	return []Mode{Strict, StrictPlus, Defer, DeferPlus}
}

// System is a fully wired simulated machine in one protection mode.
type System struct {
	Mode  Mode
	Model cycles.Model
	CPU   *cycles.Clock // the core: gates throughput (paper §3.3)
	Dev   *cycles.Clock // device/IOMMU side: tracked, not gating
	Mem   *mem.PhysMem
	Eng   *dma.Engine

	// Populated per mode.
	BaseHW *iommu.IOMMU // baseline modes, HWpt, SWpt (and lazily on degrade)
	RHW    *core.RIOMMU // rIOMMU modes

	// FaultEng is the fault-injection engine installed by EnableFaults
	// (nil when injection is disabled; its methods are nil-safe).
	FaultEng *faults.Engine

	// Auditor is the shadow translation oracle installed by EnableAudit
	// (nil when auditing is disabled).
	Auditor *audit.Oracle

	// IntRemap is the interrupt-remapping unit installed by EnableIntRemap
	// (nil: interrupts not modeled). IntAuditor is its shadow oracle,
	// installed by EnableIntAudit.
	IntRemap   *intremap.Remapper
	IntAuditor *audit.IntOracle

	intSources map[pci.BDF][]*intremap.Source
	lifecycles map[pci.BDF]*Lifecycle

	// Protections records the protection driver created for each device,
	// so experiments can reach mode-specific knobs (e.g. the deferred
	// invalidation batch size).
	Protections map[pci.BDF]driver.Protection

	protFor func(bdf pci.BDF, ringSizes []uint32) (driver.Protection, error)
}

// NewSystem builds a system with memPages pages of simulated memory.
func NewSystem(mode Mode, memPages uint64) (*System, error) {
	mm, err := mem.New(memPages * mem.PageSize)
	if err != nil {
		return nil, err
	}
	model := cycles.DefaultModel()
	s := &System{
		Mode:        mode,
		Model:       model,
		CPU:         &cycles.Clock{},
		Dev:         &cycles.Clock{},
		Mem:         mm,
		Protections: make(map[pci.BDF]driver.Protection),
	}

	switch mode {
	case None:
		s.Eng = dma.NewEngine(mm, iommu.Identity{})
		s.protFor = func(pci.BDF, []uint32) (driver.Protection, error) {
			return driver.NoProtection{}, nil
		}

	case HWpt:
		hier, err := pagetable.NewHierarchy(mm)
		if err != nil {
			return nil, err
		}
		s.BaseHW = iommu.New(s.Dev, &s.Model, hier, 0)
		s.BaseHW.PassThrough = true
		s.Eng = dma.NewEngine(mm, s.BaseHW)
		s.protFor = func(pci.BDF, []uint32) (driver.Protection, error) {
			return driver.PassThrough{Clk: s.CPU, Model: &s.Model}, nil
		}

	case SWpt:
		hier, err := pagetable.NewHierarchy(mm)
		if err != nil {
			return nil, err
		}
		s.BaseHW = iommu.New(s.Dev, &s.Model, hier, 0)
		s.Eng = dma.NewEngine(mm, s.BaseHW)
		s.protFor = func(bdf pci.BDF, _ []uint32) (driver.Protection, error) {
			if err := s.setupSWpt(bdf); err != nil {
				return nil, err
			}
			return driver.PassThrough{Clk: s.CPU, Model: &s.Model}, nil
		}

	case Strict, StrictPlus, Defer, DeferPlus:
		hier, err := pagetable.NewHierarchy(mm)
		if err != nil {
			return nil, err
		}
		s.BaseHW = iommu.New(s.Dev, &s.Model, hier, 0)
		s.Eng = dma.NewEngine(mm, s.BaseHW)
		bmode := map[Mode]baseline.Mode{
			Strict: baseline.Strict, StrictPlus: baseline.StrictPlus,
			Defer: baseline.Defer, DeferPlus: baseline.DeferPlus,
		}[mode]
		s.protFor = func(bdf pci.BDF, _ []uint32) (driver.Protection, error) {
			// The paper's machines had I/O page walks incoherent with the
			// CPU caches (§3.2), hence the explicit flushes.
			return baseline.New(bmode, s.CPU, &s.Model, mm, s.BaseHW, bdf, false)
		}

	case RIOMMUMinus, RIOMMU:
		s.RHW = core.New(s.Dev, &s.Model, mm)
		s.Eng = dma.NewEngine(mm, s.RHW)
		coherent := mode == RIOMMU
		s.protFor = func(bdf pci.BDF, ringSizes []uint32) (driver.Protection, error) {
			return core.NewDriver(s.CPU, &s.Model, mm, s.RHW, bdf, ringSizes, coherent)
		}

	default:
		return nil, fmt.Errorf("sim: unknown mode %d", int(mode))
	}
	return s, nil
}

// NewSystemScaled builds a system whose per-operation cost model is scaled
// by the given factor (cycles.Model.Scaled); used to model the brcm setup's
// cheaper per-op costs. The scaling mutates s.Model in place, which every
// component references, so it must be applied before any charges accrue.
func NewSystemScaled(mode Mode, memPages uint64, scale float64) (*System, error) {
	s, err := NewSystem(mode, memPages)
	if err != nil {
		return nil, err
	}
	if scale > 0 && scale != 1.0 {
		s.Model = s.Model.Scaled(scale)
	}
	return s, nil
}

// setupSWpt builds the software pass-through mapping: a page table that maps
// the entire physical memory with each page's IOVA equal to its address
// (§5.1). Every device DMA then misses/walks like a real translation.
func (s *System) setupSWpt(bdf pci.BDF) error {
	sp, err := pagetable.NewSpace(s.Mem, s.Dev, &s.Model, true)
	if err != nil {
		return err
	}
	if err := s.BaseHW.Hierarchy().Attach(bdf, sp); err != nil {
		return err
	}
	for f := mem.PFN(0); uint64(f) < s.Mem.Size()>>mem.PageShift; f++ {
		if err := sp.Map(uint64(f)<<mem.PageShift, f, pci.DirBidi); err != nil {
			return err
		}
	}
	return nil
}

// AttachNIC wires a NIC of the given profile into the system: protection
// driver, descriptor rings, device model, and a full Rx ring of mapped
// buffers.
func (s *System) AttachNIC(profile device.NICProfile, bdf pci.BDF) (*driver.NICDriver, *device.NIC, error) {
	prot, err := s.protFor(bdf, driver.RIOMMURingSizes(profile))
	if err != nil {
		return nil, nil, err
	}
	s.Protections[bdf] = prot
	return driver.NewNICDriver(s.Mem, prot, s.Eng, profile, bdf)
}

// AttachMQNIC wires a multi-queue NIC (§2.3) into the system: `queues`
// independent ring pairs sharing one device identity and protection domain.
func (s *System) AttachMQNIC(profile device.NICProfile, bdf pci.BDF, queues int) (*driver.MQNIC, error) {
	prot, err := s.protFor(bdf, driver.RIOMMURingSizesQ(profile, queues))
	if err != nil {
		return nil, err
	}
	s.Protections[bdf] = prot
	return driver.NewMQNIC(s.Mem, prot, s.Eng, profile, bdf, queues)
}

// ProtectionFor builds a protection driver for a non-NIC device with the
// given rIOMMU flat-table sizes (used by the NVMe and SATA experiments).
// Baseline and pass-through modes ignore ringSizes.
func (s *System) ProtectionFor(bdf pci.BDF, ringSizes []uint32) (driver.Protection, error) {
	prot, err := s.protFor(bdf, ringSizes)
	if err == nil {
		s.Protections[bdf] = prot
	}
	return prot, err
}

// ResetClocks zeroes both clocks; workloads call it after setup so that
// measurements cover only steady state.
func (s *System) ResetClocks() {
	s.CPU.Reset()
	s.Dev.Reset()
}

// Close releases the system's simulated memory backing array into the
// shared pool (mem.PhysMem.Release), so the next cell of an experiment or
// campaign grid skips the multi-megabyte zeroing that otherwise dominates
// simulator wall-clock time. The system — and every driver, device, and
// engine built on it — must not be used afterwards. Closing is optional:
// an unclosed system is simply garbage-collected.
func (s *System) Close() {
	s.Eng.Close()
	s.Mem.Release()
}
