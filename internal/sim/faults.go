package sim

import (
	"fmt"

	"riommu/internal/baseline"
	"riommu/internal/dma"
	"riommu/internal/driver"
	"riommu/internal/faults"
	"riommu/internal/iommu"
	"riommu/internal/pagetable"
	"riommu/internal/pci"
)

// EnableFaults creates a fault-injection engine from cfg and threads it
// through every simulated layer of the system: the DMA engine (stale-IOVA
// redirection; device models reach it from there for descriptor flips and
// hangs), simulated physical memory (read/write corruption, poisoned
// cachelines), and the invalidation queue of every baseline protection
// driver — both the ones already created and the ones created later.
func (s *System) EnableFaults(cfg faults.Config) *faults.Engine {
	f := faults.New(cfg)
	s.FaultEng = f
	s.Eng.SetFaults(f)
	s.Mem.SetFaultHook(f)
	for _, p := range s.Protections {
		if bd, ok := p.(*baseline.Driver); ok {
			bd.SetFaults(f)
		}
	}
	orig := s.protFor
	s.protFor = func(bdf pci.BDF, ringSizes []uint32) (driver.Protection, error) {
		p, err := orig(bdf, ringSizes)
		if err == nil {
			if bd, ok := p.(*baseline.Driver); ok {
				bd.SetFaults(f)
			}
		}
		return p, err
	}
	return f
}

// DegradeToStrict builds a strict-mode baseline protection path for one
// device of an rIOMMU-mode system: a conventional IOMMU (created lazily on
// first use) is spliced in via a dma.Router whose default route keeps every
// other device on the rIOMMU, and a strict baseline driver is returned for
// the caller to Reattach the device driver to. This is the graceful-
// degradation endpoint: when a device keeps faulting under rIOMMU, the OS
// falls back to the always-safe strict mode for that device only (§4 frames
// rIOMMU as a supplement to, not a replacement for, the baseline IOMMU).
func (s *System) DegradeToStrict(bdf pci.BDF) (driver.Protection, error) {
	if s.RHW == nil {
		return nil, fmt.Errorf("sim: mode %s has no rIOMMU to degrade from", s.Mode)
	}
	if s.BaseHW == nil {
		hier, err := pagetable.NewHierarchy(s.Mem)
		if err != nil {
			return nil, err
		}
		s.BaseHW = iommu.New(s.Dev, &s.Model, hier, 0)
	}
	router, ok := s.Eng.Translator().(*dma.Router)
	if !ok {
		router = dma.NewRouter()
		router.SetDefault(s.Eng.Translator())
		s.Eng.SetTranslator(router)
	}
	router.Route(bdf, s.BaseHW)
	prot, err := baseline.New(baseline.Strict, s.CPU, &s.Model, s.Mem, s.BaseHW, bdf, false)
	if err != nil {
		return nil, err
	}
	if s.FaultEng != nil {
		prot.SetFaults(s.FaultEng)
	}
	if s.Auditor != nil {
		s.auditProtection(prot)
	}
	s.Protections[bdf] = prot
	return prot, nil
}

// Reattacher is the driver capability DegradeToStrict's callers use to move
// a device driver onto the degraded protection path.
type Reattacher interface {
	Reattach(driver.Protection) error
}

// Supervise builds a recovery supervisor for one device driver, charged to
// the system's CPU clock. In rIOMMU modes, drivers that support Reattach get
// a degradation path to strict baseline protection wired in; other modes
// recover in place.
func (s *System) Supervise(bdf pci.BDF, target driver.Recoverable) *driver.Supervisor {
	sup := driver.NewSupervisor(s.CPU, bdf, target)
	if s.Mode == RIOMMU || s.Mode == RIOMMUMinus {
		if ra, ok := target.(Reattacher); ok {
			sup.DegradeFn = func() error {
				prot, err := s.DegradeToStrict(bdf)
				if err != nil {
					return err
				}
				return ra.Reattach(prot)
			}
		}
	}
	return sup
}
