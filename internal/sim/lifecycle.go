package sim

import (
	"errors"
	"fmt"

	"riommu/internal/baseline"
	"riommu/internal/cycles"
	"riommu/internal/device"
	"riommu/internal/driver"
	"riommu/internal/pci"
)

// ErrReadmitBackoff: a quarantined slot's re-admission backoff has not yet
// expired; BeginAttach must be retried after the slot's ReadmitAt time.
var ErrReadmitBackoff = errors.New("sim: quarantined slot in re-admission backoff")

// DevState is a device's position in the hot-plug lifecycle.
type DevState int

// The lifecycle states. A device the OS has never seen is Detached; a
// surprise removal (the cable yanked with mappings live) lands in
// SurpriseRemoved, from which the OS either quarantines the slot or
// re-attaches a (new) device.
const (
	Detached DevState = iota
	Attaching
	Live
	SurpriseRemoved
	Quarantined
)

// String names the state.
func (s DevState) String() string {
	switch s {
	case Detached:
		return "detached"
	case Attaching:
		return "attaching"
	case Live:
		return "live"
	case SurpriseRemoved:
		return "surprise-removed"
	case Quarantined:
		return "quarantined"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Lifecycle is the per-slot hot-plug state machine. Transitions charge the
// CPU clock's Recovery component (they are OS work: config-space setup,
// teardown, route changes), so enabling lifecycle tracking without ever
// transitioning costs nothing.
type Lifecycle struct {
	sys   *System
	bdf   pci.BDF
	state DevState
	iso   driver.Isolator // lazily built; isolates the slot's DMA route

	// ReadmitBackoffCycles arms an exponential virtual-clock backoff on
	// quarantine: the first re-admission may begin ReadmitBackoffCycles
	// after the quarantine, and each further quarantine of the slot doubles
	// the wait, saturating at MaxReadmitBackoffCycles (0 = unbounded).
	// The zero value keeps the legacy behavior: immediate re-admission.
	ReadmitBackoffCycles    uint64
	MaxReadmitBackoffCycles uint64
	curBackoff              uint64
	readmitAt               uint64

	// Counters and timeline marks for the campaign's SLO accounting.
	Attaches    uint64
	Removals    uint64
	Quarantines uint64
	RemovedAt   uint64 // CPU cycle of the most recent surprise removal
	RestoredAt  uint64 // CPU cycle of the most recent return to Live after one

	// Cumulative outage ledger: every removal→restore interval, summed, so
	// MTTR and availability survive multiple removals of one slot.
	Outages        uint64
	DowntimeCycles uint64
}

// LifecycleFor returns (creating on first use) the lifecycle tracker for a
// slot. A fresh tracker is Detached.
func (s *System) LifecycleFor(bdf pci.BDF) *Lifecycle {
	if s.lifecycles == nil {
		s.lifecycles = make(map[pci.BDF]*Lifecycle)
	}
	lc := s.lifecycles[bdf]
	if lc == nil {
		lc = &Lifecycle{sys: s, bdf: bdf}
		s.lifecycles[bdf] = lc
	}
	return lc
}

// State returns the current lifecycle state.
func (lc *Lifecycle) State() DevState { return lc.state }

// BDF returns the slot identity.
func (lc *Lifecycle) BDF() pci.BDF { return lc.bdf }

func (lc *Lifecycle) badTransition(to DevState) error {
	return fmt.Errorf("sim: %s lifecycle %s → %s not permitted", lc.bdf, lc.state, to)
}

// BeginAttach starts bringing a device in the slot up: allowed from
// Detached (first hot-add), SurpriseRemoved (replug), or Quarantined (the
// operator clears the slot). The caller then attaches rings/protection and
// finishes with CompleteAttach.
func (lc *Lifecycle) BeginAttach() error {
	switch lc.state {
	case Detached, SurpriseRemoved:
	case Quarantined:
		if now := lc.sys.CPU.Now(); now < lc.readmitAt {
			return fmt.Errorf("%w: %s until cycle %d (now %d)",
				ErrReadmitBackoff, lc.bdf, lc.readmitAt, now)
		}
	default:
		return lc.badTransition(Attaching)
	}
	lc.sys.CPU.Charge(cycles.Recovery, lc.sys.Model.HotAttach)
	lc.state = Attaching
	return nil
}

// CompleteAttach marks the device Live and restores its DMA route if a
// previous removal had blackholed it.
func (lc *Lifecycle) CompleteAttach() error {
	if lc.state != Attaching {
		return lc.badTransition(Live)
	}
	if lc.iso != nil {
		if err := lc.iso.Readmit(); err != nil {
			return err
		}
	}
	wasRemoved := lc.RemovedAt != 0 && lc.RestoredAt < lc.RemovedAt
	lc.state = Live
	lc.Attaches++
	if wasRemoved {
		lc.RestoredAt = lc.sys.CPU.Now()
		lc.Outages++
		lc.DowntimeCycles += lc.RestoredAt - lc.RemovedAt
	}
	return nil
}

// SurpriseRemove models the device vanishing with mappings and in-flight
// invalidations live. The OS response, in order: blackhole the slot's DMA
// route (posted writes from a ghost must fault, not land), drop every
// pending interrupt and free the slot's IRTEs (a vanished device must never
// deliver), and drain any in-flight invalidation work the device's
// protection driver had queued, so the IOMMU state is consistent before
// the slot is reused.
func (lc *Lifecycle) SurpriseRemove() error {
	if lc.state != Live {
		return lc.badTransition(SurpriseRemoved)
	}
	s := lc.sys
	if lc.iso == nil {
		lc.iso = s.IsolatorFor(lc.bdf)
	}
	if err := lc.iso.Isolate(); err != nil {
		return err
	}
	s.DropIntSources(lc.bdf)
	if s.IntRemap != nil {
		s.IntRemap.FreeBDF(lc.bdf)
		s.IntRemap.FlushIEC()
	}
	if bd, ok := s.Protections[lc.bdf].(*baseline.Driver); ok {
		_ = bd.FlushPending()
	}
	s.CPU.Charge(cycles.Recovery, s.Model.HotDetach)
	lc.state = SurpriseRemoved
	lc.Removals++
	lc.RemovedAt = s.CPU.Now()
	return nil
}

// Quarantine parks a removed slot: the blackhole route stays, and only an
// explicit BeginAttach (operator action) leaves the state.
func (lc *Lifecycle) Quarantine() error {
	if lc.state != SurpriseRemoved {
		return lc.badTransition(Quarantined)
	}
	lc.state = Quarantined
	lc.Quarantines++
	if lc.ReadmitBackoffCycles > 0 {
		if lc.curBackoff == 0 {
			lc.curBackoff = lc.ReadmitBackoffCycles
		} else {
			lc.curBackoff *= 2
			if m := lc.MaxReadmitBackoffCycles; m > 0 && lc.curBackoff > m {
				lc.curBackoff = m
			}
		}
		lc.readmitAt = lc.sys.CPU.Now() + lc.curBackoff
	}
	return nil
}

// ReadmitAt returns the virtual time at which a quarantined slot becomes
// eligible for re-admission (0 when no backoff is armed).
func (lc *Lifecycle) ReadmitAt() uint64 { return lc.readmitAt }

// OutageCycles returns the width of the most recent removal outage, or 0 if
// the slot never recovered (the MTTR numerator for hot-plug cells).
func (lc *Lifecycle) OutageCycles() uint64 {
	if lc.RemovedAt == 0 || lc.RestoredAt < lc.RemovedAt {
		return 0
	}
	return lc.RestoredAt - lc.RemovedAt
}

// MTTRCycles is the slot's mean time to recover across every completed
// removal→restore interval (0 when the slot never recovered).
func (lc *Lifecycle) MTTRCycles() float64 {
	if lc.Outages == 0 {
		return 0
	}
	return float64(lc.DowntimeCycles) / float64(lc.Outages)
}

// Availability is the slot's uptime fraction over totalCycles of elapsed
// virtual time, counting an unrecovered removal up to now.
func (lc *Lifecycle) Availability(totalCycles uint64) float64 {
	if totalCycles == 0 {
		return 1
	}
	down := lc.DowntimeCycles
	if lc.RemovedAt != 0 && lc.RestoredAt < lc.RemovedAt {
		down += lc.sys.CPU.Now() - lc.RemovedAt
	}
	av := 1 - float64(down)/float64(totalCycles)
	if av < 0 {
		return 0
	}
	return av
}

// DetachProtection tears down the per-device translation structures so the
// slot can be re-attached (the context-table entry of the baseline modes,
// the flat tables of the rIOMMU). Mappings the vanished device still held
// die with the structures — exactly surprise-removal semantics. A slot with
// no protection attached is a no-op.
func (s *System) DetachProtection(bdf pci.BDF) error {
	if _, ok := s.Protections[bdf]; !ok {
		return nil
	}
	delete(s.Protections, bdf)
	switch s.Mode {
	case RIOMMUMinus, RIOMMU:
		return s.RHW.DetachDevice(bdf)
	case Strict, StrictPlus, Defer, DeferPlus, SWpt:
		if err := s.BaseHW.Hierarchy().Detach(bdf); err != nil {
			return err
		}
		// Domain invalidation: cached translations of the vanished
		// device must not serve its successor (the successor's fresh
		// allocator reuses the same IOVA values).
		s.BaseHW.TLB().Flush()
		return nil
	}
	return nil
}

// HotAttachMQNIC is the full hot-add sequence for a multi-queue NIC:
// lifecycle BeginAttach, teardown of any previous occupant's translation
// structures, fresh protection + rings + device model, interrupt wiring
// when remapping is enabled, and CompleteAttach (which also restores a
// blackholed DMA route). It works from Detached, SurpriseRemoved, and
// Quarantined.
func (s *System) HotAttachMQNIC(profile device.NICProfile, bdf pci.BDF, queues int, posted bool) (*driver.MQNIC, error) {
	lc := s.LifecycleFor(bdf)
	if err := lc.BeginAttach(); err != nil {
		return nil, err
	}
	if err := s.DetachProtection(bdf); err != nil {
		return nil, err
	}
	mq, err := s.AttachMQNIC(profile, bdf, queues)
	if err != nil {
		return nil, err
	}
	if s.IntRemap != nil {
		if err := s.WireMQNICInterrupts(mq, bdf, posted); err != nil {
			return nil, err
		}
	}
	if err := lc.CompleteAttach(); err != nil {
		return nil, err
	}
	return mq, nil
}
