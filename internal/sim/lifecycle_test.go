package sim

import (
	"bytes"
	"testing"

	"riommu/internal/audit"
	"riommu/internal/device"
	"riommu/internal/intremap"
)

// smallMQProfile keeps hot-plug tests fast.
func smallMQProfile() device.NICProfile {
	p := device.ProfileBRCM
	p.RxEntries = 64
	p.TxEntries = 64
	return p
}

func TestLifecycleTransitionGuards(t *testing.T) {
	sys, err := NewSystem(RIOMMU, 1<<13)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	lc := sys.LifecycleFor(bdf)
	if lc.State() != Detached {
		t.Fatalf("fresh slot state = %s", lc.State())
	}
	// Detached can't remove or complete.
	if err := lc.SurpriseRemove(); err == nil {
		t.Fatal("remove from detached allowed")
	}
	if err := lc.CompleteAttach(); err == nil {
		t.Fatal("complete without begin allowed")
	}
	if err := lc.BeginAttach(); err != nil {
		t.Fatal(err)
	}
	// Attaching can't begin again or quarantine.
	if err := lc.BeginAttach(); err == nil {
		t.Fatal("double begin allowed")
	}
	if err := lc.Quarantine(); err == nil {
		t.Fatal("quarantine from attaching allowed")
	}
	if err := lc.CompleteAttach(); err != nil {
		t.Fatal(err)
	}
	if lc.State() != Live {
		t.Fatalf("state = %s, want live", lc.State())
	}
	if err := lc.SurpriseRemove(); err != nil {
		t.Fatal(err)
	}
	if err := lc.Quarantine(); err != nil {
		t.Fatal(err)
	}
	// Quarantined only leaves via BeginAttach.
	if err := lc.SurpriseRemove(); err == nil {
		t.Fatal("remove from quarantined allowed")
	}
	if err := lc.BeginAttach(); err != nil {
		t.Fatal(err)
	}
}

// TestSurpriseRemovalSilencesDevice runs the full story in every mode with
// a table: attach, traffic, surprise removal mid-flight, then proof that
// the ghost neither DMAs nor delivers interrupts, then replug and recovery.
func TestSurpriseRemovalSilencesDevice(t *testing.T) {
	for _, mode := range allNine() {
		t.Run(mode.String(), func(t *testing.T) {
			sys, err := NewSystem(mode, 1<<14)
			if err != nil {
				t.Fatal(err)
			}
			defer sys.Close()
			if _, err := sys.EnableIntAudit(); err != nil {
				t.Fatal(err)
			}
			mq, err := sys.HotAttachMQNIC(smallMQProfile(), bdf, 2, false)
			if err != nil {
				t.Fatal(err)
			}
			lc := sys.LifecycleFor(bdf)
			if lc.State() != Live {
				t.Fatalf("state = %s", lc.State())
			}

			payload := bytes.Repeat([]byte{5}, 400)
			for i := 0; i < 4; i++ {
				if err := mq.Send(payload); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := mq.PumpAndReapAll(); err != nil {
				t.Fatal(err)
			}

			// Latch completions, then yank the device before the reap.
			for i := 0; i < 4; i++ {
				if err := mq.Send(payload); err != nil {
					t.Fatal(err)
				}
			}
			for _, drv := range mq.Queues {
				if _, err := drv.PumpTx(int(drv.TxRing().Pending())); err != nil {
					t.Fatal(err)
				}
			}
			deliveredBefore := sys.IntRemap.Stats().Delivered
			if err := lc.SurpriseRemove(); err != nil {
				t.Fatal(err)
			}

			// The ghost's DMA must fault...
			if err := mq.Send(payload); err == nil {
				if _, err := mq.Queues[0].PumpTx(1); err == nil {
					t.Fatal("ghost device still DMAs after removal")
				}
			}
			// ...and its latched interrupts must never deliver.
			for _, drv := range mq.Queues {
				_, _ = drv.ReapTx()
			}
			if got := sys.IntRemap.Stats().Delivered; got != deliveredBefore {
				t.Fatalf("ghost delivered %d interrupts after removal", got-deliveredBefore)
			}
			if sys.IntAuditor.Violations != 0 {
				t.Fatalf("oracle flagged %d violations: %+v", sys.IntAuditor.Violations, sys.IntAuditor.ByReason)
			}

			// Replug: a fresh device in the slot comes back Live and works.
			mq2, err := sys.HotAttachMQNIC(smallMQProfile(), bdf, 2, false)
			if err != nil {
				t.Fatalf("replug: %v", err)
			}
			if lc.State() != Live || lc.OutageCycles() == 0 {
				t.Fatalf("after replug: state=%s outage=%d", lc.State(), lc.OutageCycles())
			}
			for i := 0; i < 4; i++ {
				if err := mq2.Send(payload); err != nil {
					t.Fatal(err)
				}
			}
			if n, err := mq2.PumpAndReapAll(); err != nil || n != 4 {
				t.Fatalf("replugged device: sent %d, err %v", n, err)
			}
			if sys.IntAuditor.Violations != 0 {
				t.Fatalf("violations after replug: %+v", sys.IntAuditor.ByReason)
			}
		})
	}
}

func TestIntRemapModePolicy(t *testing.T) {
	cases := []struct {
		mode Mode
		pass bool
	}{
		{Strict, false}, {Defer, false}, {RIOMMU, false},
		{None, true}, {HWpt, true}, {SWpt, true},
	}
	for _, c := range cases {
		sys, err := NewSystem(c.mode, 1<<12)
		if err != nil {
			t.Fatal(err)
		}
		rem, err := sys.EnableIntRemap()
		if err != nil {
			t.Fatal(err)
		}
		if rem.PassThrough() != c.pass {
			t.Errorf("%s: pass-through = %v, want %v", c.mode, rem.PassThrough(), c.pass)
		}
		sys.Close()
	}
}

// TestDeferredIntRemapStaleWindowEndToEnd drives the defer-mode interrupt
// stale window through the sim layer: free a source's IRTE, replay it, and
// watch the oracle classify the delivered violation as int-stale.
func TestDeferredIntRemapStaleWindowEndToEnd(t *testing.T) {
	sys, err := NewSystem(Defer, 1<<13)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	orc, err := sys.EnableIntAudit()
	if err != nil {
		t.Fatal(err)
	}
	rem := sys.IntRemap
	idx, err := rem.Alloc(bdf, 0x40, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if out := rem.Deliver(bdf, idx, 0, 0); out != intremap.Delivered {
		t.Fatalf("warmup: %v", out)
	}
	if err := rem.Free(idx); err != nil {
		t.Fatal(err)
	}
	if out := rem.Deliver(bdf, idx, 0, 0); out != intremap.Delivered {
		t.Fatalf("defer mode should leave the stale window open, got %v", out)
	}
	if orc.ByReason[audit.IntReasonStale] != 1 {
		t.Fatalf("stale window not flagged: %+v", orc.ByReason)
	}
	rem.FlushIEC()
	if out := rem.Deliver(bdf, idx, 0, 0); out == intremap.Delivered {
		t.Fatal("window still open after flush")
	}
}
