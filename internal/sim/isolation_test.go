package sim

import (
	"bytes"
	"testing"

	"riommu/internal/device"
	"riommu/internal/pci"
)

// TestInterDeviceIsolation: two devices share one (r)IOMMU, but each is
// confined to its own translations — device B replaying device A's IOVA
// must fault. This is the per-device root/context separation of Figure 2
// and the per-bdf rDEVICE lookup of Figure 9.
func TestInterDeviceIsolation(t *testing.T) {
	devA := pci.NewBDF(0, 3, 0)
	devB := pci.NewBDF(0, 7, 0)

	// Device B gets a much smaller ring configuration, so most of A's IOVA
	// coordinates do not even exist in B's translation structures — a
	// replay by B must fault rather than alias into B's own mappings.
	smallProfile := device.ProfileBRCM
	smallProfile.RxEntries = 16
	smallProfile.TxEntries = 16

	for _, mode := range []Mode{Strict, StrictPlus, Defer, DeferPlus, RIOMMUMinus, RIOMMU} {
		t.Run(mode.String(), func(t *testing.T) {
			sys, err := NewSystem(mode, 1<<15)
			if err != nil {
				t.Fatal(err)
			}
			drvA, nicA, err := sys.AttachNIC(device.ProfileBRCM, devA)
			if err != nil {
				t.Fatal(err)
			}
			drvB, nicB, err := sys.AttachNIC(smallProfile, devB)
			if err != nil {
				t.Fatal(err)
			}
			nicA.CaptureTx = true
			nicB.CaptureTx = true

			// Legitimate traffic flows on both devices simultaneously.
			if err := drvA.Send([]byte("from-A")); err != nil {
				t.Fatal(err)
			}
			if err := drvB.Send([]byte("from-B")); err != nil {
				t.Fatal(err)
			}
			if _, err := drvA.PumpTx(1); err != nil {
				t.Fatal(err)
			}
			if _, err := drvB.PumpTx(1); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(nicA.LastTx, []byte("from-A")) || !bytes.Equal(nicB.LastTx, []byte("from-B")) {
				t.Fatal("cross-device payload mixup")
			}

			// Attack: device B replays one of device A's live Rx IOVAs —
			// a high slot that has no counterpart in B's small rings, so
			// any success would mean B reached A's translations.
			descA, err := drvA.RxRing().ReadSlot(drvA.RxRing().Size() - 2)
			if err != nil {
				t.Fatal(err)
			}
			if err := sys.Eng.Write(devB, descA.Addr, []byte{0xEE}); err == nil {
				t.Error("device B wrote through device A's IOVA")
			}
			// Device A itself still can.
			if err := sys.Eng.Write(devA, descA.Addr, []byte{0x01}); err != nil {
				t.Errorf("device A's own IOVA rejected: %v", err)
			}
			// And when coordinates do coincide (slot 0 exists on both),
			// B's translation must resolve to B's own buffer, never A's.
			dA0, _ := drvA.RxRing().ReadSlot(0)
			paA, errA := sys.Eng.Translator().Translate(devA, dA0.Addr, 8, pci.DirFromDevice)
			paB, errB := sys.Eng.Translator().Translate(devB, dA0.Addr, 8, pci.DirFromDevice)
			if errA != nil {
				t.Fatalf("device A slot-0 translation: %v", errA)
			}
			if errB == nil && paA == paB {
				t.Error("shared coordinate resolved to the same physical buffer for both devices")
			}

			if _, err := drvA.ReapTx(); err != nil {
				t.Fatal(err)
			}
			if _, err := drvB.ReapTx(); err != nil {
				t.Fatal(err)
			}
			if err := drvA.Teardown(); err != nil {
				t.Fatal(err)
			}
			if err := drvB.Teardown(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestTwoDevicesIndependentRings (rIOMMU): each device has its own rDEVICE
// with its own flat tables and rIOTLB entries; identical (rid, rentry)
// coordinates on different devices resolve to different buffers.
func TestTwoDevicesIndependentRings(t *testing.T) {
	sys, err := NewSystem(RIOMMU, 1<<15)
	if err != nil {
		t.Fatal(err)
	}
	devA := pci.NewBDF(0, 3, 0)
	devB := pci.NewBDF(0, 7, 0)
	drvA, _, err := sys.AttachNIC(device.ProfileBRCM, devA)
	if err != nil {
		t.Fatal(err)
	}
	drvB, _, err := sys.AttachNIC(device.ProfileBRCM, devB)
	if err != nil {
		t.Fatal(err)
	}
	// Slot 0 of each device's Rx ring: same packed rIOVA value, different
	// physical buffers.
	dA, _ := drvA.RxRing().ReadSlot(0)
	dB, _ := drvB.RxRing().ReadSlot(0)
	if dA.Addr != dB.Addr {
		t.Fatalf("expected identical rIOVA coordinates, got %#x vs %#x", dA.Addr, dB.Addr)
	}
	paA, err := sys.RHW.Translate(devA, dA.Addr, 8, pci.DirFromDevice)
	if err != nil {
		t.Fatal(err)
	}
	paB, err := sys.RHW.Translate(devB, dB.Addr, 8, pci.DirFromDevice)
	if err != nil {
		t.Fatal(err)
	}
	if paA == paB {
		t.Error("two devices' identical coordinates resolved to the same buffer")
	}
	if err := drvA.Teardown(); err != nil {
		t.Fatal(err)
	}
	if err := drvB.Teardown(); err != nil {
		t.Fatal(err)
	}
}
