package sim

import (
	"bytes"
	"testing"

	"riommu/internal/device"
	"riommu/internal/ring"
)

// TestIOPFRecovery models §4's fault handling: an errant descriptor makes
// the device fault mid-burst; the OS reinitializes the device (Recover) and
// traffic resumes cleanly.
func TestIOPFRecovery(t *testing.T) {
	for _, mode := range []Mode{Strict, RIOMMU} {
		t.Run(mode.String(), func(t *testing.T) {
			sys, err := NewSystem(mode, 1<<14)
			if err != nil {
				t.Fatal(err)
			}
			drv, nic, err := sys.AttachNIC(device.ProfileBRCM, bdf)
			if err != nil {
				t.Fatal(err)
			}
			nic.CaptureTx = true

			// Queue three packets, then corrupt the second descriptor's
			// address (a buggy driver / flaky device writing garbage).
			payload := bytes.Repeat([]byte{0x11}, 256)
			for i := 0; i < 3; i++ {
				if err := drv.Send(payload); err != nil {
					t.Fatal(err)
				}
			}
			d, err := drv.TxRing().ReadSlot(1)
			if err != nil {
				t.Fatal(err)
			}
			d.Addr = 0xdead0000_0000 // nothing maps here in any mode
			if err := drv.TxRing().WriteSlot(1, d); err != nil {
				t.Fatal(err)
			}

			// The device transmits packet 0, then faults on packet 1.
			sent, err := drv.PumpTx(3)
			if err == nil {
				t.Fatal("expected an I/O page fault from the corrupt descriptor")
			}
			if sent != 1 {
				t.Fatalf("sent %d packets before the fault, want 1", sent)
			}
			if nic.Faults == 0 {
				t.Error("device did not record the fault")
			}

			// OS response: reinitialize the device (§4).
			if err := drv.Recover(); err != nil {
				t.Fatalf("Recover: %v", err)
			}
			if !drv.RxRing().Full() {
				t.Error("Rx ring not refilled after recovery")
			}
			if drv.TxRing().Pending() != 0 {
				t.Error("Tx ring not reset")
			}

			// Traffic flows again, end to end.
			fresh := bytes.Repeat([]byte{0x22}, 300)
			if err := drv.Send(fresh); err != nil {
				t.Fatalf("send after recovery: %v", err)
			}
			if n, err := drv.PumpTx(1); err != nil || n != 1 {
				t.Fatalf("pump after recovery: %d, %v", n, err)
			}
			if !bytes.Equal(nic.LastTx, fresh) {
				t.Error("post-recovery payload corrupted")
			}
			if _, err := drv.ReapTx(); err != nil {
				t.Fatal(err)
			}
			if err := drv.Deliver([]byte("rx ok")); err != nil {
				t.Fatal(err)
			}
			frames, err := drv.ReapRx()
			if err != nil || len(frames) != 1 || string(frames[0]) != "rx ok" {
				t.Fatalf("rx after recovery: %q, %v", frames, err)
			}
			if err := drv.Teardown(); err != nil {
				t.Fatalf("teardown after recovery: %v", err)
			}
		})
	}
}

// TestDifferentialModes is the cross-mode oracle: the same traffic scenario
// must produce byte-identical data outcomes in every protection mode — the
// modes differ only in cost and in what *errant* DMAs can do.
func TestDifferentialModes(t *testing.T) {
	type outcome struct {
		tx [][]byte
		rx [][]byte
	}
	run := func(mode Mode) outcome {
		sys, err := NewSystem(mode, 1<<15)
		if err != nil {
			t.Fatal(err)
		}
		drv, nic, err := sys.AttachNIC(device.ProfileMLX, bdf)
		if err != nil {
			t.Fatal(err)
		}
		nic.CaptureTx = true
		var out outcome
		// Deterministic mixed traffic: sends of varying sizes interleaved
		// with deliveries, bursts of varying lengths.
		seed := uint64(12345)
		next := func() uint64 {
			seed ^= seed << 13
			seed ^= seed >> 7
			seed ^= seed << 17
			return seed
		}
		for step := 0; step < 120; step++ {
			switch next() % 3 {
			case 0, 1:
				size := int(next()%1200) + 1
				payload := bytes.Repeat([]byte{byte(step)}, size)
				if err := drv.Send(payload); err != nil {
					t.Fatal(err)
				}
				if _, err := drv.PumpTx(1); err != nil {
					t.Fatal(err)
				}
				out.tx = append(out.tx, append([]byte(nil), nic.LastTx...))
				if next()%4 == 0 {
					if _, err := drv.ReapTx(); err != nil {
						t.Fatal(err)
					}
				}
			case 2:
				frame := bytes.Repeat([]byte{byte(step ^ 0x5a)}, int(next()%900)+1)
				if err := drv.Deliver(frame); err != nil {
					t.Fatal(err)
				}
				frames, err := drv.ReapRx()
				if err != nil {
					t.Fatal(err)
				}
				out.rx = append(out.rx, frames...)
			}
		}
		if _, err := drv.ReapTx(); err != nil {
			t.Fatal(err)
		}
		if err := drv.Teardown(); err != nil {
			t.Fatal(err)
		}
		return out
	}

	ref := run(None)
	for _, mode := range []Mode{Strict, StrictPlus, Defer, DeferPlus, RIOMMUMinus, RIOMMU} {
		got := run(mode)
		if len(got.tx) != len(ref.tx) || len(got.rx) != len(ref.rx) {
			t.Fatalf("%s: event counts differ (tx %d/%d rx %d/%d)",
				mode, len(got.tx), len(ref.tx), len(got.rx), len(ref.rx))
		}
		for i := range ref.tx {
			if !bytes.Equal(got.tx[i], ref.tx[i]) {
				t.Errorf("%s: tx frame %d differs from none-mode reference", mode, i)
				break
			}
		}
		for i := range ref.rx {
			if !bytes.Equal(got.rx[i], ref.rx[i]) {
				t.Errorf("%s: rx frame %d differs from none-mode reference", mode, i)
				break
			}
		}
	}
}

// TestRingResetZeroesMemory belongs with ring.Reset but needs a full ring;
// also guards the descriptor-flag lifecycle after reset.
func TestRingResetZeroesMemory(t *testing.T) {
	sys, err := NewSystem(None, 1<<12)
	if err != nil {
		t.Fatal(err)
	}
	drv, _, err := sys.AttachNIC(device.ProfileBRCM, bdf)
	if err != nil {
		t.Fatal(err)
	}
	if err := drv.Send([]byte{1}); err != nil {
		t.Fatal(err)
	}
	if err := drv.TxRing().Reset(); err != nil {
		t.Fatal(err)
	}
	d, err := drv.TxRing().ReadSlot(0)
	if err != nil {
		t.Fatal(err)
	}
	if d != (ring.Descriptor{}) {
		t.Errorf("slot not zeroed after reset: %+v", d)
	}
}
