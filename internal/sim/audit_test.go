package sim

import (
	"testing"

	"riommu/internal/device"
	"riommu/internal/pci"
)

var auditBDF = pci.NewBDF(0, 3, 0)

// nicWorkload drives a NIC through rounds of Tx+Rx and returns final CPU time.
func nicWorkload(t *testing.T, sys *System, rounds int) uint64 {
	t.Helper()
	drv, _, err := sys.AttachNIC(device.ProfileBRCM, auditBDF)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 1024)
	for i := range payload {
		payload[i] = byte(i)
	}
	for r := 0; r < rounds; r++ {
		if err := drv.Send(payload); err != nil {
			t.Fatal(err)
		}
		if _, err := drv.PumpTx(2); err != nil {
			t.Fatal(err)
		}
		if _, err := drv.ReapTx(); err != nil {
			t.Fatal(err)
		}
		if err := drv.Deliver(payload); err != nil {
			t.Fatal(err)
		}
		if _, err := drv.ReapRx(); err != nil {
			t.Fatal(err)
		}
	}
	return sys.CPU.Now()
}

// TestAuditIsPureObserver: enabling the oracle must not change a single
// measured cycle — the determinism argument every audited campaign cell
// rests on.
func TestAuditIsPureObserver(t *testing.T) {
	for _, mode := range []Mode{Strict, Defer, RIOMMU} {
		plain, err := NewSystem(mode, 1<<15)
		if err != nil {
			t.Fatal(err)
		}
		base := nicWorkload(t, plain, 10)

		audited, err := NewSystem(mode, 1<<15)
		if err != nil {
			t.Fatal(err)
		}
		orc := audited.EnableAudit()
		got := nicWorkload(t, audited, 10)
		if got != base {
			t.Errorf("%s: audited run took %d CPU cycles, unaudited %d — oracle is not a pure observer", mode, got, base)
		}
		if orc.Checked == 0 || orc.Maps == 0 {
			t.Errorf("%s: oracle saw nothing (checked=%d maps=%d)", mode, orc.Checked, orc.Maps)
		}
		if orc.Violations != 0 {
			t.Errorf("%s: legitimate traffic flagged: %+v", mode, orc.Events)
		}
	}
}

// TestAuditPassThroughModes: the unprotected modes map nothing, so the
// oracle must count without judging.
func TestAuditPassThroughModes(t *testing.T) {
	sys, err := NewSystem(None, 1<<15)
	if err != nil {
		t.Fatal(err)
	}
	orc := sys.EnableAudit()
	nicWorkload(t, sys, 5)
	if orc.Checked == 0 {
		t.Fatal("pass-through oracle counted no DMAs")
	}
	if orc.Violations != 0 {
		t.Fatalf("pass-through oracle judged: %+v", orc.Events)
	}
}

// TestAuditHooksRIOMMUInvalidations: the rIOMMU's end-of-burst invalidations
// must be mirrored into the oracle.
func TestAuditHooksRIOMMUInvalidations(t *testing.T) {
	sys, err := NewSystem(RIOMMU, 1<<15)
	if err != nil {
		t.Fatal(err)
	}
	orc := sys.EnableAudit()
	nicWorkload(t, sys, 10)
	if orc.InvEntries == 0 {
		t.Error("no rIOTLB invalidations mirrored")
	}
}

// TestIsolatorQuarantinesDevice: Isolate must make every DMA of the device
// fault and Readmit must restore the original translation path, leaving
// other devices untouched throughout.
func TestIsolatorQuarantinesDevice(t *testing.T) {
	for _, mode := range []Mode{Strict, RIOMMU} {
		sys, err := NewSystem(mode, 1<<15)
		if err != nil {
			t.Fatal(err)
		}
		drv, _, err := sys.AttachNIC(device.ProfileBRCM, auditBDF)
		if err != nil {
			t.Fatal(err)
		}
		otherBDF := pci.NewBDF(0, 9, 0)
		otherDrv, _, err := sys.AttachNIC(device.ProfileBRCM, otherBDF)
		if err != nil {
			t.Fatal(err)
		}
		payload := make([]byte, 256)
		roundTx := func(d interface {
			Send([]byte) error
			PumpTx(int) (int, error)
			ReapTx() (int, error)
		}) error {
			if err := d.Send(payload); err != nil {
				return err
			}
			if _, err := d.PumpTx(2); err != nil {
				return err
			}
			_, err := d.ReapTx()
			return err
		}

		iso := sys.IsolatorFor(auditBDF)
		if err := roundTx(drv); err != nil {
			t.Fatalf("%s: pre-isolation traffic failed: %v", mode, err)
		}
		if err := iso.Isolate(); err != nil {
			t.Fatal(err)
		}
		if err := roundTx(drv); err == nil {
			t.Errorf("%s: quarantined device still performed DMA", mode)
		}
		if err := roundTx(otherDrv); err != nil {
			t.Errorf("%s: quarantine leaked onto another device: %v", mode, err)
		}
		if err := iso.Readmit(); err != nil {
			t.Fatal(err)
		}
		if err := roundTx(drv); err != nil {
			t.Errorf("%s: re-admitted device cannot DMA: %v", mode, err)
		}
	}
}
