package sim

import (
	"bytes"
	"testing"

	"riommu/internal/device"
	"riommu/internal/driver"
	"riommu/internal/pci"
)

var bdf = pci.NewBDF(0, 3, 0)

// allNine includes the pass-through validation modes.
func allNine() []Mode {
	return append(AllModes(), HWpt, SWpt)
}

// TestEndToEndAllModes runs the full stack — driver, rings, protection,
// translation hardware, DMA engine, device — in every mode, for both NIC
// profiles, and checks payload integrity in both directions.
func TestEndToEndAllModes(t *testing.T) {
	profiles := []device.NICProfile{device.ProfileMLX, device.ProfileBRCM}
	for _, p := range profiles {
		for _, mode := range allNine() {
			t.Run(p.Name+"/"+mode.String(), func(t *testing.T) {
				sys, err := NewSystem(mode, 1<<15) // 128 MiB
				if err != nil {
					t.Fatal(err)
				}
				drv, nic, err := sys.AttachNIC(p, bdf)
				if err != nil {
					t.Fatal(err)
				}
				nic.CaptureTx = true

				// Transmit path.
				payload := bytes.Repeat([]byte("stream"), 200) // 1200 B
				for i := 0; i < 5; i++ {
					if err := drv.Send(payload); err != nil {
						t.Fatalf("send %d: %v", i, err)
					}
				}
				sent, err := drv.PumpTx(5)
				if err != nil {
					t.Fatalf("PumpTx: %v", err)
				}
				if sent != 5 {
					t.Fatalf("sent %d packets", sent)
				}
				if p.BuffersPerPacket == 2 {
					if len(nic.LastTx) != p.HeaderBytes+len(payload) {
						t.Errorf("wire frame %d bytes, want header+payload %d",
							len(nic.LastTx), p.HeaderBytes+len(payload))
					}
					if !bytes.Equal(nic.LastTx[p.HeaderBytes:], payload) {
						t.Error("payload corrupted on the wire")
					}
				} else if !bytes.Equal(nic.LastTx, payload) {
					t.Error("payload corrupted on the wire")
				}
				reaped, err := drv.ReapTx()
				if err != nil {
					t.Fatalf("ReapTx: %v", err)
				}
				if reaped != 5 {
					t.Errorf("reaped %d packets", reaped)
				}

				// Receive path.
				frame := bytes.Repeat([]byte{0xcd}, 900)
				for i := 0; i < 3; i++ {
					if err := drv.Deliver(frame); err != nil {
						t.Fatalf("deliver %d: %v", i, err)
					}
				}
				frames, err := drv.ReapRx()
				if err != nil {
					t.Fatalf("ReapRx: %v", err)
				}
				if len(frames) != 3 {
					t.Fatalf("received %d frames", len(frames))
				}
				for _, f := range frames {
					if !bytes.Equal(f, frame) {
						t.Error("received frame corrupted")
					}
				}
				if err := drv.Teardown(); err != nil {
					t.Fatalf("Teardown: %v", err)
				}
			})
		}
	}
}

// TestPerPacketCostOrdering verifies the economic heart of the paper: the
// per-packet CPU cost C orders as strict > strict+ > defer > defer+ >
// riommu− > riommu > none on the mlx profile (Figure 7).
func TestPerPacketCostOrdering(t *testing.T) {
	costs := map[Mode]float64{}
	for _, mode := range AllModes() {
		sys, err := NewSystem(mode, 1<<15)
		if err != nil {
			t.Fatal(err)
		}
		drv, _, err := sys.AttachNIC(device.ProfileMLX, bdf)
		if err != nil {
			t.Fatal(err)
		}
		payload := bytes.Repeat([]byte{1}, 1448)
		// Warm up, then measure steady state.
		runBatch := func(n int) {
			for i := 0; i < n; i++ {
				if err := drv.Send(payload); err != nil {
					t.Fatal(err)
				}
				if i%200 == 199 {
					if _, err := drv.PumpTx(200); err != nil {
						t.Fatal(err)
					}
					if _, err := drv.ReapTx(); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		runBatch(1000)
		sys.ResetClocks()
		const pkts = 2000
		runBatch(pkts)
		costs[mode] = float64(sys.CPU.Now()) / pkts
		if err := drv.Teardown(); err != nil {
			t.Fatal(err)
		}
	}
	order := []Mode{Strict, StrictPlus, Defer, DeferPlus, RIOMMUMinus, RIOMMU, None}
	for i := 0; i+1 < len(order); i++ {
		if costs[order[i]] <= costs[order[i+1]] {
			t.Errorf("C(%s)=%.0f should exceed C(%s)=%.0f",
				order[i], costs[order[i]], order[i+1], costs[order[i+1]])
		}
	}
	if costs[None] != 0 {
		t.Errorf("none-mode map/unmap cost = %.0f, want 0", costs[None])
	}
	t.Logf("per-packet (un)map cycles: strict=%.0f strict+=%.0f defer=%.0f defer+=%.0f riommu-=%.0f riommu=%.0f",
		costs[Strict], costs[StrictPlus], costs[Defer], costs[DeferPlus], costs[RIOMMUMinus], costs[RIOMMU])
}

// TestSafetyMatrix verifies who is safe: after an Rx buffer is unmapped and
// its burst closed, a repeat device write must fault in strict and rIOMMU
// modes but may succeed in the deferred window.
func TestSafetyMatrix(t *testing.T) {
	for _, mode := range []Mode{Strict, StrictPlus, Defer, DeferPlus, RIOMMUMinus, RIOMMU} {
		t.Run(mode.String(), func(t *testing.T) {
			sys, err := NewSystem(mode, 1<<14)
			if err != nil {
				t.Fatal(err)
			}
			drv, nic, err := sys.AttachNIC(device.ProfileBRCM, bdf)
			if err != nil {
				t.Fatal(err)
			}
			// Deliver a frame so a specific descriptor completes, then reap
			// (which unmaps and closes the burst).
			if err := drv.Deliver([]byte("probe")); err != nil {
				t.Fatal(err)
			}
			// Capture the IOVA the device used: slot 0's address.
			if _, err := drv.ReapRx(); err != nil {
				t.Fatal(err)
			}
			// The device now replays the *old* DMA (errant device): slot 0
			// descriptor was reused/reposted, so instead probe directly:
			// the old IOVA is gone in safe modes. We reconstruct it by
			// delivering again and checking fault counters stay zero for
			// legitimate traffic.
			if err := drv.Deliver([]byte("again")); err != nil {
				t.Fatalf("legitimate redelivery must succeed: %v", err)
			}
			if _, err := drv.ReapRx(); err != nil {
				t.Fatal(err)
			}
			if nic.Faults != 0 {
				t.Errorf("legitimate traffic faulted %d times", nic.Faults)
			}
			if err := drv.Teardown(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestDeferStaleWindowEndToEnd demonstrates the §3.2 vulnerability through
// the full stack: in defer mode an errant device write through a
// just-unmapped IOVA still lands in memory; in strict and rIOMMU modes it
// faults.
func TestDeferStaleWindowEndToEnd(t *testing.T) {
	probe := func(mode Mode) (landed bool) {
		sys, err := NewSystem(mode, 1<<14)
		if err != nil {
			t.Fatal(err)
		}
		prot, err := sys.ProtectionFor(bdf, []uint32{16, 16, 16})
		if err != nil {
			t.Fatal(err)
		}
		f, err := sys.Mem.AllocFrame()
		if err != nil {
			t.Fatal(err)
		}
		iova, err := prot.Map(driver.RingRx, f.PA(), 64, pci.DirFromDevice)
		if err != nil {
			t.Fatal(err)
		}
		// Warm the (r)IOTLB with a legitimate DMA, then unmap and close the
		// burst. No remapping happens afterwards, so any write that lands
		// went through stale translation state.
		if err := sys.Eng.Write(bdf, iova, []byte{0x01}); err != nil {
			t.Fatal(err)
		}
		if err := prot.Unmap(driver.RingRx, iova, 64, true); err != nil {
			t.Fatal(err)
		}
		// Errant device: replay a DMA write through the dead IOVA.
		err = sys.Eng.Write(bdf, iova, []byte{0xee})
		return err == nil
	}
	if !probe(Defer) {
		t.Error("defer mode should expose the stale-IOTLB window (paper §3.2)")
	}
	for _, mode := range []Mode{Strict, StrictPlus, RIOMMUMinus, RIOMMU} {
		if probe(mode) {
			t.Errorf("%s mode let an errant DMA through a dead IOVA", mode)
		}
	}
}

// TestSWptTranslatesEverything checks the §5.1 validation mode: with the
// identity page table, DMAs translate through real walks.
func TestSWptTranslatesEverything(t *testing.T) {
	sys, err := NewSystem(SWpt, 1<<13)
	if err != nil {
		t.Fatal(err)
	}
	drv, _, err := sys.AttachNIC(device.ProfileBRCM, bdf)
	if err != nil {
		t.Fatal(err)
	}
	if err := drv.Deliver([]byte("swpt probe")); err != nil {
		t.Fatal(err)
	}
	if _, err := drv.ReapRx(); err != nil {
		t.Fatal(err)
	}
	if sys.BaseHW.TLB().Stats().Misses == 0 {
		t.Error("SWpt should exercise real IOTLB misses and walks")
	}
	if err := drv.Teardown(); err != nil {
		t.Fatal(err)
	}
}

// TestRIOMMUBurstInvalidations: across a long streaming run, the number of
// rIOTLB invalidations equals the number of bursts, not the number of
// packets.
func TestRIOMMUBurstInvalidations(t *testing.T) {
	sys, err := NewSystem(RIOMMU, 1<<15)
	if err != nil {
		t.Fatal(err)
	}
	drv, _, err := sys.AttachNIC(device.ProfileMLX, bdf)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{1}, 1000)
	const bursts, perBurst = 10, 200
	invBefore := sys.RHW.Stats().Invalidations
	for b := 0; b < bursts; b++ {
		for i := 0; i < perBurst; i++ {
			if err := drv.Send(payload); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := drv.PumpTx(perBurst); err != nil {
			t.Fatal(err)
		}
		if _, err := drv.ReapTx(); err != nil {
			t.Fatal(err)
		}
	}
	got := sys.RHW.Stats().Invalidations - invBefore
	if got != bursts {
		t.Errorf("%d invalidations for %d bursts of %d packets, want %d",
			got, bursts, perBurst, bursts)
	}
	if err := drv.Teardown(); err != nil {
		t.Fatal(err)
	}
}

// TestModeMetadata covers the mode helpers.
func TestModeMetadata(t *testing.T) {
	if len(AllModes()) != 7 {
		t.Error("AllModes should list the seven Figure 12 modes")
	}
	if len(BaselineModes()) != 4 {
		t.Error("BaselineModes should list four modes")
	}
	safe := map[Mode]bool{
		Strict: true, StrictPlus: true, Defer: false, DeferPlus: false,
		RIOMMUMinus: true, RIOMMU: true, None: false, HWpt: false, SWpt: false,
	}
	for m, want := range safe {
		if m.Safe() != want {
			t.Errorf("%s.Safe() = %v, want %v", m, m.Safe(), want)
		}
	}
	if Mode(99).String() != "mode(99)" {
		t.Error("unknown mode String")
	}
	if _, err := NewSystem(Mode(99), 1024); err == nil {
		t.Error("NewSystem with bad mode should fail")
	}
}
