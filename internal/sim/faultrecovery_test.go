package sim

import (
	"bytes"
	"math/rand"
	"testing"

	"riommu/internal/baseline"
	"riommu/internal/device"
	"riommu/internal/driver"
	"riommu/internal/faults"
	"riommu/internal/pci"
)

var (
	nvmeBDF = pci.NewBDF(0, 4, 0)
	sataBDF = pci.NewBDF(0, 5, 0)
)

// TestNVMeIOPFRecovery extends §4's reinitialize-on-fault story to the NVMe
// driver: a fault window redirects the controller's DMAs to a stale IOVA,
// the queue wedges with an I/O page fault, and Recover restores service.
func TestNVMeIOPFRecovery(t *testing.T) {
	for _, mode := range []Mode{Strict, RIOMMU} {
		t.Run(mode.String(), func(t *testing.T) {
			sys, err := NewSystem(mode, 1<<13)
			if err != nil {
				t.Fatal(err)
			}
			f := sys.EnableFaults(faults.Config{Seed: 101})
			prot, err := sys.ProtectionFor(nvmeBDF, []uint32{4, 64, 64})
			if err != nil {
				t.Fatal(err)
			}
			d, err := driver.NewNVMeDriver(sys.Mem, prot, sys.Eng, nvmeBDF, 4096, 128, 8)
			if err != nil {
				t.Fatal(err)
			}
			payload := bytes.Repeat([]byte{0xA5}, 512)
			if _, err := d.Write(3, payload); err != nil {
				t.Fatal(err)
			}
			if cs, err := d.Poll(8); err != nil || len(cs) != 1 || cs[0].Status != device.NVMeStatusOK {
				t.Fatalf("healthy write: %v %v", cs, err)
			}

			// Open the fault window: every device DMA goes to a stale IOVA.
			f.SetRate(faults.DMAStale, 1)
			if _, err := d.Write(5, payload); err != nil {
				t.Fatal(err) // submission is host-side, no DMA yet
			}
			if _, err := d.Poll(8); err == nil {
				t.Fatal("expected an I/O page fault from the stale DMA")
			}
			if f.Count(faults.DMAStale) == 0 {
				t.Fatal("no stale-DMA fault recorded")
			}
			f.SetRate(faults.DMAStale, 0)

			// OS response: reinitialize the controller, resubmit, and verify
			// the namespace round-trips.
			if err := d.Recover(); err != nil {
				t.Fatalf("Recover: %v", err)
			}
			if _, err := d.Write(5, payload); err != nil {
				t.Fatalf("write after recovery: %v", err)
			}
			if cs, err := d.Poll(8); err != nil || len(cs) != 1 || cs[0].Status != device.NVMeStatusOK {
				t.Fatalf("poll after recovery: %v %v", cs, err)
			}
			if _, err := d.Read(5, uint32(len(payload))); err != nil {
				t.Fatal(err)
			}
			cs, err := d.Poll(8)
			if err != nil || len(cs) != 1 {
				t.Fatalf("read-back poll: %v %v", cs, err)
			}
			if !bytes.Equal(cs[0].Data, payload) {
				t.Error("post-recovery read-back corrupted")
			}
			if err := d.Teardown(); err != nil {
				t.Fatalf("teardown after recovery: %v", err)
			}
		})
	}
}

// TestSATAIOPFRecovery is the same story for the AHCI driver.
func TestSATAIOPFRecovery(t *testing.T) {
	for _, mode := range []Mode{Strict, RIOMMU} {
		t.Run(mode.String(), func(t *testing.T) {
			sys, err := NewSystem(mode, 1<<13)
			if err != nil {
				t.Fatal(err)
			}
			f := sys.EnableFaults(faults.Config{Seed: 202})
			prot, err := sys.ProtectionFor(sataBDF, []uint32{4, 64, 64})
			if err != nil {
				t.Fatal(err)
			}
			d := driver.NewSATADriver(sys.Mem, prot, sys.Eng, sataBDF, 4096, 256)
			rng := rand.New(rand.NewSource(7))
			payload := bytes.Repeat([]byte{0x3C}, 512)
			if _, err := d.SubmitWrite(9, payload); err != nil {
				t.Fatal(err)
			}
			if res, err := d.CompleteAll(rng); err != nil || len(res) != 1 {
				t.Fatalf("healthy write: %v %v", res, err)
			}

			f.SetRate(faults.DMAStale, 1)
			if _, err := d.SubmitWrite(11, payload); err != nil {
				t.Fatal(err)
			}
			if _, err := d.CompleteAll(rng); err == nil {
				t.Fatal("expected an I/O page fault from the stale DMA")
			}
			f.SetRate(faults.DMAStale, 0)

			if err := d.Recover(); err != nil {
				t.Fatalf("Recover: %v", err)
			}
			if _, err := d.SubmitWrite(11, payload); err != nil {
				t.Fatalf("write after recovery: %v", err)
			}
			if res, err := d.CompleteAll(rng); err != nil || len(res) != 1 {
				t.Fatalf("complete after recovery: %v %v", res, err)
			}
			if _, err := d.SubmitRead(11, uint32(len(payload))); err != nil {
				t.Fatal(err)
			}
			res, err := d.CompleteAll(rng)
			if err != nil || len(res) != 1 {
				t.Fatalf("read-back: %v %v", res, err)
			}
			if !bytes.Equal(res[0].Data, payload) {
				t.Error("post-recovery read-back corrupted")
			}
			if err := d.Teardown(rng); err != nil {
				t.Fatalf("teardown after recovery: %v", err)
			}
		})
	}
}

// TestWatchdogRecoversHungDevices injects a device hang into each driver
// class and checks the supervisor's watchdog detects and clears it.
func TestWatchdogRecoversHungDevices(t *testing.T) {
	t.Run("nic", func(t *testing.T) {
		sys, err := NewSystem(RIOMMU, 1<<14)
		if err != nil {
			t.Fatal(err)
		}
		f := sys.EnableFaults(faults.Config{Seed: 303})
		drv, nic, err := sys.AttachNIC(device.ProfileBRCM, bdf)
		if err != nil {
			t.Fatal(err)
		}
		nic.CaptureTx = true
		sup := sys.Supervise(bdf, drv)
		if _, err := sup.Watch(); err != nil {
			t.Fatal(err)
		}

		f.SetRate(faults.DeviceHang, 1)
		if err := drv.Send([]byte("stuck")); err != nil {
			t.Fatal(err)
		}
		if n, err := drv.PumpTx(1); err != nil || n != 0 {
			t.Fatalf("hung device transmitted: %d %v", n, err)
		}
		f.SetRate(faults.DeviceHang, 0) // the hang itself is sticky

		fired, err := sup.Watch()
		if err != nil || !fired {
			t.Fatalf("watchdog: fired=%v err=%v", fired, err)
		}
		if sup.Stats.WatchdogFires != 1 || sup.Stats.Recoveries != 1 {
			t.Errorf("stats %+v", sup.Stats)
		}
		// The wedge is cleared; traffic flows again.
		msg := []byte("alive again")
		if err := drv.Send(msg); err != nil {
			t.Fatal(err)
		}
		if n, err := drv.PumpTx(1); err != nil || n != 1 {
			t.Fatalf("pump after watchdog recovery: %d %v", n, err)
		}
		if !bytes.Equal(nic.LastTx, msg) {
			t.Error("post-recovery payload corrupted")
		}
	})

	t.Run("nvme", func(t *testing.T) {
		sys, err := NewSystem(Strict, 1<<13)
		if err != nil {
			t.Fatal(err)
		}
		f := sys.EnableFaults(faults.Config{Seed: 304})
		prot, err := sys.ProtectionFor(nvmeBDF, nil)
		if err != nil {
			t.Fatal(err)
		}
		d, err := driver.NewNVMeDriver(sys.Mem, prot, sys.Eng, nvmeBDF, 4096, 128, 8)
		if err != nil {
			t.Fatal(err)
		}
		sup := sys.Supervise(nvmeBDF, d)
		if _, err := sup.Watch(); err != nil {
			t.Fatal(err)
		}
		f.SetRate(faults.DeviceHang, 1)
		if _, err := d.Write(1, []byte("x")); err != nil {
			t.Fatal(err)
		}
		if cs, err := d.Poll(8); err != nil || len(cs) != 0 {
			t.Fatalf("hung controller completed: %v %v", cs, err)
		}
		f.SetRate(faults.DeviceHang, 0)
		if fired, err := sup.Watch(); err != nil || !fired {
			t.Fatalf("watchdog: fired=%v err=%v", fired, err)
		}
		if _, err := d.Write(1, []byte("y")); err != nil {
			t.Fatal(err)
		}
		if cs, err := d.Poll(8); err != nil || len(cs) != 1 || cs[0].Status != device.NVMeStatusOK {
			t.Fatalf("poll after recovery: %v %v", cs, err)
		}
	})

	t.Run("sata", func(t *testing.T) {
		sys, err := NewSystem(Strict, 1<<13)
		if err != nil {
			t.Fatal(err)
		}
		f := sys.EnableFaults(faults.Config{Seed: 305})
		prot, err := sys.ProtectionFor(sataBDF, nil)
		if err != nil {
			t.Fatal(err)
		}
		d := driver.NewSATADriver(sys.Mem, prot, sys.Eng, sataBDF, 4096, 256)
		rng := rand.New(rand.NewSource(7))
		sup := sys.Supervise(sataBDF, d)
		if _, err := sup.Watch(); err != nil {
			t.Fatal(err)
		}
		f.SetRate(faults.DeviceHang, 1)
		if _, err := d.SubmitWrite(1, []byte("x")); err != nil {
			t.Fatal(err)
		}
		if res, err := d.CompleteAll(rng); err != nil || len(res) != 0 {
			t.Fatalf("hung drive completed: %v %v", res, err)
		}
		f.SetRate(faults.DeviceHang, 0)
		if fired, err := sup.Watch(); err != nil || !fired {
			t.Fatalf("watchdog: fired=%v err=%v", fired, err)
		}
		if _, err := d.SubmitWrite(1, []byte("y")); err != nil {
			t.Fatal(err)
		}
		if res, err := d.CompleteAll(rng); err != nil || len(res) != 1 {
			t.Fatalf("complete after recovery: %v %v", res, err)
		}
	})
}

// TestGracefulDegradation drives a faulting rIOMMU-protected NIC past the
// degradation threshold and checks the device lands, working, on a strict
// baseline IOMMU while the rIOMMU path remains the router default.
func TestGracefulDegradation(t *testing.T) {
	sys, err := NewSystem(RIOMMU, 1<<14)
	if err != nil {
		t.Fatal(err)
	}
	f := sys.EnableFaults(faults.Config{Seed: 404})
	drv, nic, err := sys.AttachNIC(device.ProfileBRCM, bdf)
	if err != nil {
		t.Fatal(err)
	}
	nic.CaptureTx = true
	sup := sys.Supervise(bdf, drv)
	sup.DegradeAfter = 1

	if err := drv.Send([]byte("doomed")); err != nil {
		t.Fatal(err)
	}
	f.SetRate(faults.DMAStale, 1)
	err = sup.Do(func() error {
		_, err := drv.PumpTx(1)
		if err != nil {
			f.SetRate(faults.DMAStale, 0) // the fault clears before the retry
		}
		return err
	})
	if err != nil {
		t.Fatalf("supervised pump: %v", err)
	}
	if !sup.Degraded() || sup.Stats.Degradations != 1 {
		t.Fatalf("no degradation: %+v", sup.Stats)
	}
	if _, ok := sys.Protections[bdf].(*baseline.Driver); !ok {
		t.Fatalf("protection after degradation is %T, want *baseline.Driver", sys.Protections[bdf])
	}
	if sys.BaseHW == nil {
		t.Fatal("baseline IOMMU not built")
	}

	// End-to-end traffic now flows through the strict baseline unit.
	msg := bytes.Repeat([]byte{0x42}, 333)
	if err := drv.Send(msg); err != nil {
		t.Fatal(err)
	}
	if n, err := drv.PumpTx(1); err != nil || n != 1 {
		t.Fatalf("pump after degradation: %d %v", n, err)
	}
	if !bytes.Equal(nic.LastTx, msg) {
		t.Error("payload corrupted after degradation")
	}
	if _, err := drv.ReapTx(); err != nil {
		t.Fatal(err)
	}
	if err := drv.Deliver([]byte("rx on strict")); err != nil {
		t.Fatal(err)
	}
	frames, err := drv.ReapRx()
	if err != nil || len(frames) != 1 || string(frames[0]) != "rx on strict" {
		t.Fatalf("rx after degradation: %q %v", frames, err)
	}
	// The strict unit really is doing the translating now.
	st := sys.BaseHW.TLB().Stats()
	if st.Hits+st.Misses == 0 {
		t.Error("baseline IOMMU saw no translations after degradation")
	}
}

// TestAllFaultClassesReachTerminalState soaks every safe mode under uniform
// multi-class injection and checks the acceptance property: no panic, no
// wedge — after the fault window closes and one recovery runs, clean traffic
// flows end to end.
func TestAllFaultClassesReachTerminalState(t *testing.T) {
	for _, mode := range []Mode{Strict, StrictPlus, RIOMMUMinus, RIOMMU} {
		t.Run(mode.String(), func(t *testing.T) {
			sys, err := NewSystem(mode, 1<<15)
			if err != nil {
				t.Fatal(err)
			}
			f := sys.EnableFaults(faults.UniformConfig(1234, 0.02))
			drv, nic, err := sys.AttachNIC(device.ProfileBRCM, bdf)
			if err != nil {
				t.Fatal(err)
			}
			nic.CaptureTx = true
			sup := sys.Supervise(bdf, drv)

			payload := bytes.Repeat([]byte{0x77}, 400)
			for round := 0; round < 200; round++ {
				// Unrecovered rounds are allowed (counted); panics/hangs not.
				_ = sup.Do(func() error {
					if err := drv.Send(payload); err != nil {
						return err
					}
					if _, err := drv.PumpTx(2); err != nil {
						return err
					}
					if _, err := drv.ReapTx(); err != nil {
						return err
					}
					if err := drv.Deliver(payload); err != nil {
						return err
					}
					_, err := drv.ReapRx()
					return err
				})
				if _, err := sup.Watch(); err != nil {
					t.Fatalf("round %d watchdog: %v", round, err)
				}
			}
			if f.TotalInjected() == 0 {
				t.Fatal("soak injected nothing")
			}

			// Close the window; one reinitialization must fully restore service.
			for _, c := range faults.Classes() {
				f.SetRate(c, 0)
			}
			if err := drv.Recover(); err != nil {
				t.Fatalf("terminal recovery: %v", err)
			}
			msg := bytes.Repeat([]byte{0x99}, 256)
			if err := drv.Send(msg); err != nil {
				t.Fatalf("send after terminal recovery: %v", err)
			}
			if n, err := drv.PumpTx(1); err != nil || n != 1 {
				t.Fatalf("pump after terminal recovery: %d %v", n, err)
			}
			if !bytes.Equal(nic.LastTx, msg) {
				t.Error("payload corrupted after terminal recovery")
			}
			if err := drv.Deliver(msg); err != nil {
				t.Fatal(err)
			}
			frames, err := drv.ReapRx()
			if err != nil || len(frames) != 1 || !bytes.Equal(frames[0], msg) {
				t.Fatalf("rx after terminal recovery: %d frames, %v", len(frames), err)
			}
			t.Logf("%s: injected=%d recoveries=%d retries=%d watchdog=%d degradations=%d unrecovered=%d",
				mode, f.TotalInjected(), sup.Stats.Recoveries, sup.Stats.Retries,
				sup.Stats.WatchdogFires, sup.Stats.Degradations, sup.Stats.Unrecovered)
		})
	}
}
