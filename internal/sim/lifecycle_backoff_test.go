package sim

import (
	"errors"
	"testing"

	"riommu/internal/cycles"
)

// cycleQuarantine walks one remove → quarantine round trip.
func cycleQuarantine(t *testing.T, lc *Lifecycle) {
	t.Helper()
	if lc.State() == Live {
		if err := lc.SurpriseRemove(); err != nil {
			t.Fatal(err)
		}
	}
	if err := lc.Quarantine(); err != nil {
		t.Fatal(err)
	}
}

// TestQuarantineReadmitBackoff: re-admission from quarantine must wait out
// an exponential virtual-clock backoff that doubles per quarantine and
// saturates at the cap; a zero backoff keeps the legacy immediate behavior.
func TestQuarantineReadmitBackoff(t *testing.T) {
	sys, err := NewSystem(RIOMMU, 1<<13)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if _, err := sys.HotAttachMQNIC(smallMQProfile(), bdf, 1, false); err != nil {
		t.Fatal(err)
	}
	lc := sys.LifecycleFor(bdf)
	lc.ReadmitBackoffCycles = 10_000
	lc.MaxReadmitBackoffCycles = 25_000

	cycleQuarantine(t, lc)
	if want := sys.CPU.Now() + 10_000; lc.ReadmitAt() != want {
		t.Fatalf("first backoff: ReadmitAt = %d, want %d", lc.ReadmitAt(), want)
	}
	if err := lc.BeginAttach(); !errors.Is(err, ErrReadmitBackoff) {
		t.Fatalf("early re-admission: err = %v, want ErrReadmitBackoff", err)
	}
	if lc.State() != Quarantined {
		t.Fatalf("refused re-admission changed state to %s", lc.State())
	}
	sys.CPU.Charge(cycles.Recovery, 10_000)
	if _, err := sys.HotAttachMQNIC(smallMQProfile(), bdf, 1, false); err != nil {
		t.Fatalf("re-admission after backoff: %v", err)
	}

	// Second quarantine doubles, third saturates at the cap.
	cycleQuarantine(t, lc)
	if want := sys.CPU.Now() + 20_000; lc.ReadmitAt() != want {
		t.Fatalf("second backoff: ReadmitAt = %d, want %d", lc.ReadmitAt(), want)
	}
	sys.CPU.Charge(cycles.Recovery, 20_000)
	if _, err := sys.HotAttachMQNIC(smallMQProfile(), bdf, 1, false); err != nil {
		t.Fatal(err)
	}
	cycleQuarantine(t, lc)
	if want := sys.CPU.Now() + 25_000; lc.ReadmitAt() != want {
		t.Fatalf("capped backoff: ReadmitAt = %d, want %d", lc.ReadmitAt(), want)
	}
	sys.CPU.Charge(cycles.Recovery, 25_000)
	if err := lc.BeginAttach(); err != nil {
		t.Fatalf("re-admission at the cap: %v", err)
	}
}

// TestLifecycleOutageLedger: the cumulative Outages/DowntimeCycles ledger
// must survive multiple removals of one slot, and MTTR/Availability must be
// pure functions of the recorded intervals.
func TestLifecycleOutageLedger(t *testing.T) {
	sys, err := NewSystem(Strict, 1<<13)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if _, err := sys.HotAttachMQNIC(smallMQProfile(), bdf, 1, false); err != nil {
		t.Fatal(err)
	}
	lc := sys.LifecycleFor(bdf)

	var wantDown uint64
	for i, gap := range []uint64{40_000, 90_000} {
		if err := lc.SurpriseRemove(); err != nil {
			t.Fatal(err)
		}
		removed := sys.CPU.Now()
		sys.CPU.Charge(cycles.Recovery, gap)
		if _, err := sys.HotAttachMQNIC(smallMQProfile(), bdf, 1, false); err != nil {
			t.Fatal(err)
		}
		wantDown += sys.CPU.Now() - removed
		if lc.Outages != uint64(i+1) {
			t.Fatalf("after removal %d: Outages = %d", i+1, lc.Outages)
		}
	}
	if lc.DowntimeCycles != wantDown {
		t.Fatalf("DowntimeCycles = %d, want %d", lc.DowntimeCycles, wantDown)
	}
	if got, want := lc.MTTRCycles(), float64(wantDown)/2; got != want {
		t.Fatalf("MTTR = %v, want %v", got, want)
	}
	total := sys.CPU.Now()
	if got, want := lc.Availability(total), 1-float64(wantDown)/float64(total); got != want {
		t.Fatalf("Availability = %v, want %v", got, want)
	}

	// An unrecovered removal counts up to now.
	if err := lc.SurpriseRemove(); err != nil {
		t.Fatal(err)
	}
	sys.CPU.Charge(cycles.Recovery, 30_000)
	open := wantDown + 30_000
	if got, want := lc.Availability(sys.CPU.Now()), 1-float64(open)/float64(sys.CPU.Now()); got != want {
		t.Fatalf("open-outage Availability = %v, want %v", got, want)
	}
}
