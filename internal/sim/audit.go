package sim

import (
	"riommu/internal/audit"
	"riommu/internal/baseline"
	"riommu/internal/core"
	"riommu/internal/dma"
	"riommu/internal/driver"
	"riommu/internal/pci"
)

// EnableAudit installs a shadow translation oracle and mirrors every layer
// into it: map/unmap from each protection driver (existing and future), the
// hardware-side invalidations that actually reach the IOTLB/rIOTLB, and —
// via the DMA engine — every translated access, which the oracle judges
// against its independent record. The oracle never charges a clock and never
// consumes randomness, so an audited system's measured metrics are identical
// to an unaudited one's.
//
// In the unprotected modes (none, hwpt, swpt) the oracle runs in
// pass-through: drivers map nothing there, so every DMA is outside its live
// set by construction without being a protection failure.
func (s *System) EnableAudit() *audit.Oracle {
	if s.Auditor != nil {
		return s.Auditor
	}
	orc := audit.NewOracle(s.Mode.String(), s.CPU)
	switch s.Mode {
	case None, HWpt, SWpt:
		orc.SetPassThrough(true)
	}
	s.Auditor = orc
	s.Eng.SetAudit(orc)
	if s.RHW != nil {
		s.RHW.SetAudit(orc)
	}
	for _, p := range s.Protections {
		s.auditProtection(p)
	}
	orig := s.protFor
	s.protFor = func(bdf pci.BDF, ringSizes []uint32) (driver.Protection, error) {
		p, err := orig(bdf, ringSizes)
		if err == nil {
			s.auditProtection(p)
		}
		return p, err
	}
	return orc
}

// auditProtection mirrors one protection driver into the oracle. Only the
// mapping-maintaining drivers observe anything; pass-through protections have
// nothing to mirror.
func (s *System) auditProtection(p driver.Protection) {
	switch d := p.(type) {
	case *baseline.Driver:
		d.SetAudit(s.Auditor)
		d.InvQueue().SetAudit(s.Auditor)
	case *core.Driver:
		d.SetAudit(s.Auditor)
	}
}

// routeIsolator quarantines one device by splicing a Blackhole into its
// dma.Router route, remembering the previous route for re-admission.
type routeIsolator struct {
	router   *dma.Router
	bdf      pci.BDF
	saved    dma.Translator
	hadRoute bool
	isolated bool
}

func (ri *routeIsolator) Isolate() error {
	if ri.isolated {
		return nil
	}
	ri.saved, ri.hadRoute = ri.router.RouteOf(ri.bdf)
	ri.router.Route(ri.bdf, dma.Blackhole{})
	ri.isolated = true
	return nil
}

func (ri *routeIsolator) Readmit() error {
	if !ri.isolated {
		return nil
	}
	if ri.hadRoute {
		ri.router.Route(ri.bdf, ri.saved)
	} else {
		ri.router.Unroute(ri.bdf)
	}
	ri.isolated = false
	return nil
}

// IsolatorFor returns a driver.Isolator that physically detaches the device
// from its translation path (every DMA faults) and can re-admit it; wire it
// into a Supervisor's circuit breaker. Like DegradeToStrict, it splices a
// dma.Router in front of the current translator on first use, so every other
// device keeps its unit through the default route.
func (s *System) IsolatorFor(bdf pci.BDF) driver.Isolator {
	router, ok := s.Eng.Translator().(*dma.Router)
	if !ok {
		router = dma.NewRouter()
		router.SetDefault(s.Eng.Translator())
		s.Eng.SetTranslator(router)
	}
	return &routeIsolator{router: router, bdf: bdf}
}
