package sim

import (
	"bytes"
	"math/rand"
	"testing"

	"riommu/internal/baseline"
	"riommu/internal/core"
	"riommu/internal/cycles"
	"riommu/internal/device"
	"riommu/internal/dma"
	"riommu/internal/driver"
	"riommu/internal/iommu"
	"riommu/internal/mem"
	"riommu/internal/pagetable"
	"riommu/internal/pci"
)

// TestHybridMachine realizes §4's deployment story: one machine, two
// IOMMUs. The ring-based NIC sits behind an rIOMMU; a SATA disk sits behind
// the conventional VT-d IOMMU in strict mode. A dma.Router dispatches each
// device's DMAs to its own unit, and the two coexist without interference.
func TestHybridMachine(t *testing.T) {
	mm := mustMem(t, 1<<14*mem.PageSize)
	clk := &cycles.Clock{}
	model := cycles.DefaultModel()

	nicBDF := pci.NewBDF(0, 3, 0)
	diskBDF := pci.NewBDF(0, 5, 0)

	// Unit 1: rIOMMU for the NIC.
	rhw := core.New(clk, &model, mm)
	// Unit 2: baseline VT-d for the disk.
	hier, err := pagetable.NewHierarchy(mm)
	if err != nil {
		t.Fatal(err)
	}
	bhw := iommu.New(clk, &model, hier, 0)

	router := dma.NewRouter()
	router.Route(nicBDF, rhw)
	router.Route(diskBDF, bhw)
	eng := dma.NewEngine(mm, router)

	// NIC behind the rIOMMU.
	profile := device.ProfileBRCM
	profile.RxEntries = 64
	profile.TxEntries = 64
	rprot, err := core.NewDriver(clk, &model, mm, rhw, nicBDF, driver.RIOMMURingSizes(profile), true)
	if err != nil {
		t.Fatal(err)
	}
	nicDrv, nic, err := driver.NewNICDriver(mm, rprot, eng, profile, nicBDF)
	if err != nil {
		t.Fatal(err)
	}
	nic.CaptureTx = true

	// Disk behind the strict baseline.
	bprot, err := baseline.New(baseline.Strict, clk, &model, mm, bhw, diskBDF, false)
	if err != nil {
		t.Fatal(err)
	}
	diskDrv := driver.NewSATADriver(mm, bprot, eng, diskBDF, 4096, 1024)

	// Both devices move data concurrently through their own units.
	payload := bytes.Repeat([]byte{0x77}, 700)
	if err := nicDrv.Send(payload); err != nil {
		t.Fatal(err)
	}
	if _, err := diskDrv.SubmitWrite(5, bytes.Repeat([]byte{0x55}, 4096)); err != nil {
		t.Fatal(err)
	}
	if n, err := nicDrv.PumpTx(1); err != nil || n != 1 {
		t.Fatalf("nic pump: %d, %v", n, err)
	}
	if !bytes.Equal(nic.LastTx, payload) {
		t.Error("NIC payload corrupted in hybrid setup")
	}
	if _, err := diskDrv.CompleteAll(rand.New(rand.NewSource(42))); err != nil {
		t.Fatalf("disk completion: %v", err)
	}
	if _, err := nicDrv.ReapTx(); err != nil {
		t.Fatal(err)
	}

	// Cross-unit confinement: the disk cannot use the NIC's rIOVAs even
	// though both devices live on the same machine — the router sends its
	// DMAs to the baseline unit, which never mapped them.
	rxDesc, err := nicDrv.RxRing().ReadSlot(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Write(diskBDF, rxDesc.Addr, []byte{0xEE}); err == nil {
		t.Error("disk DMA reached the NIC's rIOMMU mapping")
	}
	// An unrouted device has no path at all.
	if err := eng.Write(pci.NewBDF(9, 9, 9), rxDesc.Addr, []byte{0xEE}); err == nil {
		t.Error("unrouted device's DMA succeeded")
	}

	// Both protection regimes keep their own cost profiles on one clock:
	// the strict unmap charged its 2,127-cycle invalidation, the rIOMMU
	// burst charged one invalidation for the NIC side.
	if clk.Total(cycles.UnmapIOTLBInv) < model.IOTLBInvEntry {
		t.Error("strict-side invalidation cycles missing")
	}
	if err := nicDrv.Teardown(); err != nil {
		t.Fatal(err)
	}
}
