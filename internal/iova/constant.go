package iova

import (
	"fmt"

	"riommu/internal/cycles"
)

// ConstAllocator is the authors' optimized IOVA allocator (the "+" in
// strict+/defer+; Malka, Amit & Tsafrir, FAST'15): allocation and
// deallocation run in constant time.
//
// Freed ranges are not erased from the red-black tree; they are marked free
// and pushed on a per-size free list, so a subsequent allocation of the same
// size pops the list and revalidates the node — two O(1) operations. Fresh
// ranges (free list empty) are carved top-down with a bump pointer, also
// O(1). The cost, visible in Table 1, is that the tree holds live *and*
// cached-free ranges, so the unmap-time lookup ("iova find": 418 vs 249
// cycles) walks a slightly deeper tree, while "iova free" drops from 159 to
// 62 cycles and "iova alloc" from 3,986 to 92.
// smallSizeClasses bounds the directly indexed free-list buckets: ranges of
// fewer pages than this — every NIC and block buffer in the workloads — hit
// a plain array slot instead of a map.
const smallSizeClasses = 64

type ConstAllocator struct {
	clk   *cycles.Clock
	model *cycles.Model

	t         tree
	freeSmall [smallSizeClasses][]*node // pages -> stack of recycled ranges
	freeBig   map[uint64][]*node        // rare sizes >= smallSizeClasses
	arena     nodeArena
	bump      uint64 // next fresh pfnHi (descending)
	limit     uint64 // top of the arena, where bump started
	live      int
}

// NewConst returns a ConstAllocator allocating top-down from limit.
func NewConst(clk *cycles.Clock, model *cycles.Model, limit uint64) *ConstAllocator {
	return &ConstAllocator{
		clk:   clk,
		model: model,
		bump:  limit,
		limit: limit,
	}
}

// Carved is the address-space high-water mark: pages ever carved fresh
// from the arena. A workload whose frees feed later allocations from the
// size-class free stacks stops growing this — the fragmentation bound the
// churn property test pins.
func (a *ConstAllocator) Carved() uint64 { return a.limit - a.bump }

// popRecycled pops the newest cached-free range of exactly `pages`, or nil.
func (a *ConstAllocator) popRecycled(pages uint64) *node {
	if pages < smallSizeClasses {
		if fl := a.freeSmall[pages]; len(fl) > 0 {
			n := fl[len(fl)-1]
			a.freeSmall[pages] = fl[:len(fl)-1]
			return n
		}
		return nil
	}
	if fl := a.freeBig[pages]; len(fl) > 0 {
		n := fl[len(fl)-1]
		a.freeBig[pages] = fl[:len(fl)-1]
		return n
	}
	return nil
}

// pushRecycled stacks a freed range for reuse by size class.
func (a *ConstAllocator) pushRecycled(pages uint64, n *node) {
	if pages < smallSizeClasses {
		a.freeSmall[pages] = append(a.freeSmall[pages], n)
		return
	}
	if a.freeBig == nil {
		a.freeBig = make(map[uint64][]*node)
	}
	a.freeBig[pages] = append(a.freeBig[pages], n)
}

// Live returns the number of live allocations.
func (a *ConstAllocator) Live() int { return a.live }

// TreeSize returns the total ranges in the tree, live plus cached-free.
func (a *ConstAllocator) TreeSize() int { return a.t.size }

// Alloc pops a recycled range of the right size, or carves a fresh one.
func (a *ConstAllocator) Alloc(pages uint64) (uint64, error) {
	if pages == 0 {
		return 0, fmt.Errorf("iova: zero-size allocation")
	}
	if n := a.popRecycled(pages); n != nil {
		n.free = false
		a.live++
		a.clk.Charge(cycles.MapIOVAAlloc, a.model.FreelistOp*2)
		return n.pfnLo, nil
	}
	// Fresh carve: O(1) bump allocation plus a tree insert. This path runs
	// only until the working set is warm, so its logarithmic insert does
	// not affect the steady-state constant-time behaviour.
	if a.bump < StartPFN || a.bump-StartPFN+1 < pages {
		a.clk.Charge(cycles.MapIOVAAlloc, a.model.FreelistOp)
		return 0, fmt.Errorf("iova: fresh address space exhausted (%d live)", a.live)
	}
	n := a.arena.get()
	n.pfnLo, n.pfnHi = a.bump-pages+1, a.bump
	a.bump = n.pfnLo - 1
	a.t.takeVisits()
	a.t.insert(n)
	a.t.takeVisits()
	a.live++
	a.clk.Charge(cycles.MapIOVAAlloc, a.model.FreelistOp*2)
	return n.pfnLo, nil
}

// Contains reports whether pfn is inside a live range.
func (a *ConstAllocator) Contains(pfn uint64) bool {
	defer a.t.takeVisits()
	n := a.t.find(pfn)
	return n != nil && !n.free
}

// Free marks the range containing pfn as recycled. The lookup walks the
// (fuller) tree; the release itself is a constant-time list push.
func (a *ConstAllocator) Free(pfn uint64) error {
	a.t.takeVisits()
	n := a.t.find(pfn)
	a.clk.Charge(cycles.UnmapIOVAFind, a.t.takeVisits()*a.model.ConstFindVisit)
	if n == nil || n.free {
		return fmt.Errorf("iova: free of unallocated pfn %#x", pfn)
	}
	n.free = true
	pages := n.pfnHi - n.pfnLo + 1
	a.pushRecycled(pages, n)
	a.live--
	a.clk.Charge(cycles.UnmapIOVAFree, a.model.FreelistOp)
	return nil
}

var _ Allocator = (*ConstAllocator)(nil)
