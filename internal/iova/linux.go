package iova

import (
	"fmt"

	"riommu/internal/cycles"
)

// DMA32PFN is the default allocation limit: the first PFN above the 32-bit
// address space (NIC drivers request 32-bit-reachable IOVAs, which is the
// case the cached32_node optimization — and its pathology — applies to).
const DMA32PFN = uint64(1) << (32 - 12)

// StartPFN is the lowest allocatable PFN (Linux reserves IOVA page 0).
const StartPFN = uint64(1)

// Allocator is the OS-side IOVA number allocator used by the baseline IOMMU
// driver: it hands out integer page ranges that are not currently associated
// with any other mapping (step 3 of Figure 4) and recycles them on unmap
// (step 4 of Figure 6).
type Allocator interface {
	// Alloc reserves `pages` contiguous IOVA pages below the limit and
	// returns the first PFN of the range.
	Alloc(pages uint64) (uint64, error)
	// Contains reports whether pfn belongs to a live allocation.
	Contains(pfn uint64) bool
	// Free releases the live range containing pfn.
	Free(pfn uint64) error
	// Live returns the number of live allocations.
	Live() int
}

// LinuxAllocator reproduces the Linux 3.4 IOVA allocator: a red-black tree
// of allocated ranges with top-down first-fit allocation starting from the
// cached32 node. See alloc_iova()/__free_iova() in drivers/iommu/iova.c.
//
// The pathology the paper measures (strict-mode allocation costing ~3,986
// cycles) arises here exactly as in the kernel: whenever a free or an
// allocation near the top of the space resets the cached node high, the next
// allocation's gap search walks rb_prev over every live range between the
// cache and the first gap — linear in the number of live IOVAs.
type LinuxAllocator struct {
	clk   *cycles.Clock
	model *cycles.Model

	t        tree
	cached32 *node // Linux iovad->cached32_node
	limit    uint64
	arena    nodeArena
	spare    []*node // nodes recycled by Free, reused by Alloc

	// Statistics for tests and the experiment harness.
	LastAllocVisits uint64
	MaxAllocVisits  uint64
	TotalVisits     uint64
	Allocs          uint64
}

// NewLinux returns a LinuxAllocator charging the given clock. limit is the
// top PFN boundary (exclusive upper bound is limit+1; allocations return
// ranges with pfnHi <= limit); pass DMA32PFN-1 for the kernel default.
func NewLinux(clk *cycles.Clock, model *cycles.Model, limit uint64) *LinuxAllocator {
	return &LinuxAllocator{clk: clk, model: model, limit: limit}
}

// Live returns the number of live allocations.
func (a *LinuxAllocator) Live() int { return a.t.size }

// Alloc implements __alloc_and_insert_iova_range: top-down search for a gap
// of `pages` below the limit, starting from the cached node.
func (a *LinuxAllocator) Alloc(pages uint64) (uint64, error) {
	if pages == 0 {
		return 0, fmt.Errorf("iova: zero-size allocation")
	}
	a.t.takeVisits()

	// __get_cached_rbnode: start below the cached node when present.
	limit := a.limit
	var curr *node
	if a.cached32 == nil {
		curr = a.t.last()
	} else {
		limit = a.cached32.pfnLo - 1
		curr = a.t.prev(a.cached32)
	}

	for curr != nil {
		switch {
		case limit < curr.pfnLo:
			// Entirely above us; move left.
		case limit <= curr.pfnHi:
			// limit falls inside curr; adjust below it.
			limit = curr.pfnLo - 1
		default:
			// Gap between curr.pfnHi and limit.
			if curr.pfnHi+pages <= limit {
				goto found
			}
			limit = curr.pfnLo - 1
		}
		curr = a.t.prev(curr)
	}
	// Reached the bottom: the gap is [StartPFN, limit].
	if limit < StartPFN || limit-StartPFN+1 < pages {
		a.chargeAlloc()
		return 0, fmt.Errorf("iova: address space exhausted (%d live)", a.t.size)
	}

found:
	var n *node
	if len(a.spare) > 0 {
		n = a.spare[len(a.spare)-1]
		a.spare = a.spare[:len(a.spare)-1]
	} else {
		n = a.arena.get()
	}
	n.pfnLo, n.pfnHi = limit-pages+1, limit
	a.t.insert(n)
	// __cached_rbnode_insert_update: cache the new node (the caller's limit
	// equals the dma-32bit limit for every allocation in this workload).
	a.cached32 = n
	a.chargeAlloc()
	return n.pfnLo, nil
}

func (a *LinuxAllocator) chargeAlloc() {
	visits := a.t.takeVisits()
	a.LastAllocVisits = visits
	a.TotalVisits += visits
	a.Allocs++
	if visits > a.MaxAllocVisits {
		a.MaxAllocVisits = visits
	}
	a.clk.Charge(cycles.MapIOVAAlloc, a.model.RBInsertFixed+visits*a.model.RBNodeVisit)
}

// Contains reports whether pfn is inside a live range (without charging).
func (a *LinuxAllocator) Contains(pfn uint64) bool {
	defer a.t.takeVisits()
	return a.t.find(pfn) != nil
}

// Free implements find_iova + __free_iova: a logarithmic lookup charged to
// the unmap "iova find" component, then the cached-node update and rb_erase
// charged to "iova free".
func (a *LinuxAllocator) Free(pfn uint64) error {
	a.t.takeVisits()
	n := a.t.find(pfn)
	a.clk.Charge(cycles.UnmapIOVAFind, a.t.takeVisits()*a.model.RBFindVisit)
	if n == nil {
		return fmt.Errorf("iova: free of unallocated pfn %#x", pfn)
	}
	// __cached_rbnode_delete_update.
	if a.cached32 != nil && n.pfnLo >= a.cached32.pfnLo {
		succ := a.t.next(n)
		if succ != nil && succ.pfnLo < a.limit {
			a.cached32 = succ
		} else {
			a.cached32 = nil
		}
	}
	a.t.erase(n)
	a.spare = append(a.spare, n)
	a.clk.Charge(cycles.UnmapIOVAFree, a.model.RBEraseFixed+a.t.takeVisits()*a.model.RBNodeVisit)
	return nil
}

var _ Allocator = (*LinuxAllocator)(nil)
