package iova

import (
	"math/rand"
	"testing"
	"testing/quick"

	"riommu/internal/cycles"
)

func newLinux() (*LinuxAllocator, *cycles.Clock) {
	clk := &cycles.Clock{}
	model := cycles.DefaultModel()
	return NewLinux(clk, &model, DMA32PFN-1), clk
}

func newConst() (*ConstAllocator, *cycles.Clock) {
	clk := &cycles.Clock{}
	model := cycles.DefaultModel()
	return NewConst(clk, &model, DMA32PFN-1), clk
}

// allocators under test, for table-driven shared behaviour.
func eachAllocator(t *testing.T, f func(t *testing.T, name string, a Allocator)) {
	t.Helper()
	la, _ := newLinux()
	ca, _ := newConst()
	for _, tc := range []struct {
		name string
		a    Allocator
	}{{"linux", la}, {"const", ca}} {
		t.Run(tc.name, func(t *testing.T) { f(t, tc.name, tc.a) })
	}
}

func TestAllocBasics(t *testing.T) {
	eachAllocator(t, func(t *testing.T, name string, a Allocator) {
		p1, err := a.Alloc(1)
		if err != nil {
			t.Fatalf("Alloc: %v", err)
		}
		p2, err := a.Alloc(1)
		if err != nil {
			t.Fatalf("Alloc: %v", err)
		}
		if p1 == p2 {
			t.Fatal("duplicate IOVA")
		}
		if !a.Contains(p1) || !a.Contains(p2) {
			t.Error("Contains false for live allocation")
		}
		if a.Live() != 2 {
			t.Errorf("Live = %d", a.Live())
		}
		if err := a.Free(p1); err != nil {
			t.Fatalf("Free: %v", err)
		}
		if a.Contains(p1) {
			t.Error("Contains true after free")
		}
		if a.Live() != 1 {
			t.Errorf("Live = %d after free", a.Live())
		}
		if err := a.Free(p1); err == nil {
			t.Error("double free should fail")
		}
		if _, err := a.Alloc(0); err == nil {
			t.Error("zero-size alloc should fail")
		}
	})
}

func TestAllocTopDown(t *testing.T) {
	a, _ := newLinux()
	p1, _ := a.Alloc(1)
	p2, _ := a.Alloc(1)
	if p1 != DMA32PFN-1 {
		t.Errorf("first alloc = %#x, want top of space %#x", p1, DMA32PFN-1)
	}
	if p2 != p1-1 {
		t.Errorf("second alloc = %#x, want just below first", p2)
	}
}

func TestAllocMultiPage(t *testing.T) {
	eachAllocator(t, func(t *testing.T, name string, a Allocator) {
		p, err := a.Alloc(8)
		if err != nil {
			t.Fatal(err)
		}
		// Every page of the range is contained; the range is reported once.
		for i := uint64(0); i < 8; i++ {
			if !a.Contains(p + i) {
				t.Fatalf("page %d of multipage range not contained", i)
			}
		}
		q, err := a.Alloc(1)
		if err != nil {
			t.Fatal(err)
		}
		if q >= p && q < p+8 {
			t.Fatalf("overlap: %#x within [%#x,%#x)", q, p, p+8)
		}
		// Freeing by interior page releases the whole range.
		if err := a.Free(p + 3); err != nil {
			t.Fatal(err)
		}
		if a.Contains(p) {
			t.Error("range alive after free via interior page")
		}
	})
}

func TestLinuxReusesFreedSpace(t *testing.T) {
	a, _ := newLinux()
	var pfns []uint64
	for i := 0; i < 100; i++ {
		p, err := a.Alloc(1)
		if err != nil {
			t.Fatal(err)
		}
		pfns = append(pfns, p)
	}
	for _, p := range pfns {
		if err := a.Free(p); err != nil {
			t.Fatal(err)
		}
	}
	if a.Live() != 0 {
		t.Fatalf("Live = %d", a.Live())
	}
	// The space must be fully reusable.
	p, err := a.Alloc(1)
	if err != nil {
		t.Fatal(err)
	}
	if p != DMA32PFN-1 {
		t.Errorf("after full drain, alloc = %#x, want top", p)
	}
}

func TestConstRecyclesSameRange(t *testing.T) {
	a, _ := newConst()
	p, _ := a.Alloc(1)
	if err := a.Free(p); err != nil {
		t.Fatal(err)
	}
	q, _ := a.Alloc(1)
	if q != p {
		t.Errorf("recycled alloc = %#x, want %#x (LIFO reuse)", q, p)
	}
	if a.TreeSize() != 1 {
		t.Errorf("TreeSize = %d, want 1 (node retained)", a.TreeSize())
	}
}

func TestConstFreeListPerSize(t *testing.T) {
	a, _ := newConst()
	p1, _ := a.Alloc(1)
	p4, _ := a.Alloc(4)
	if err := a.Free(p1); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(p4); err != nil {
		t.Fatal(err)
	}
	// A 4-page alloc must get the 4-page recycled range, not the 1-page one.
	q, _ := a.Alloc(4)
	if q != p4 {
		t.Errorf("4-page alloc = %#x, want recycled %#x", q, p4)
	}
}

func TestLinuxExhaustion(t *testing.T) {
	clk := &cycles.Clock{}
	model := cycles.DefaultModel()
	a := NewLinux(clk, &model, 8) // tiny space: pfns 1..8
	var got []uint64
	for {
		p, err := a.Alloc(2)
		if err != nil {
			break
		}
		got = append(got, p)
	}
	if len(got) != 4 {
		t.Errorf("allocated %d two-page ranges from 8 pfns, want 4", len(got))
	}
	if err := a.Free(got[2]); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Alloc(2); err != nil {
		t.Errorf("alloc after free should succeed: %v", err)
	}
}

func TestConstExhaustion(t *testing.T) {
	clk := &cycles.Clock{}
	model := cycles.DefaultModel()
	a := NewConst(clk, &model, 4)
	for i := 0; i < 4; i++ {
		if _, err := a.Alloc(1); err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
	}
	if _, err := a.Alloc(1); err == nil {
		t.Error("expected fresh-space exhaustion")
	}
}

// TestLinuxPathology reproduces the paper's §3.2 observation: with a band of
// long-lived allocations at the top of the space (the Rx ring buffers) being
// periodically freed and re-allocated while short-lived allocations (Tx
// buffers) churn below, the cached-node heuristic repeatedly resets high and
// the next allocation walks linearly over the live ranges.
func TestLinuxPathology(t *testing.T) {
	a, _ := newLinux()

	// Rx ring: 2048 long-lived buffers at the top of the space.
	rx := make([]uint64, 2048)
	for i := range rx {
		p, err := a.Alloc(1)
		if err != nil {
			t.Fatal(err)
		}
		rx[i] = p
	}

	// Steady state: interleave Rx recycle (free + re-alloc, as the driver
	// refills its receive ring) with Tx alloc/free bursts.
	var txLive []uint64
	maxVisits := uint64(0)
	for round := 0; round < 50; round++ {
		// Recycle one Rx buffer: resets cached32 into the top band.
		if err := a.Free(rx[round%len(rx)]); err != nil {
			t.Fatal(err)
		}
		p, err := a.Alloc(1)
		if err != nil {
			t.Fatal(err)
		}
		rx[round%len(rx)] = p

		// Tx burst.
		for i := 0; i < 8; i++ {
			p, err := a.Alloc(1)
			if err != nil {
				t.Fatal(err)
			}
			if a.LastAllocVisits > maxVisits {
				maxVisits = a.LastAllocVisits
			}
			txLive = append(txLive, p)
		}
		for _, p := range txLive {
			if err := a.Free(p); err != nil {
				t.Fatal(err)
			}
		}
		txLive = txLive[:0]
	}

	// The pathology: at least one allocation walked a large fraction of the
	// 2048 live Rx ranges.
	if maxVisits < 1000 {
		t.Errorf("max alloc visits = %d; expected linear walks over the ~2048 live ranges", maxVisits)
	}
}

// TestConstIsConstantTime verifies the "+" allocator does not degrade with
// live-set size: allocation visit cost is flat because it never searches.
func TestConstIsConstantTime(t *testing.T) {
	a, clk := newConst()
	for i := 0; i < 4096; i++ {
		if _, err := a.Alloc(1); err != nil {
			t.Fatal(err)
		}
	}
	// Churn: alloc/free with a huge live set; measure per-op cycles.
	p, _ := a.Alloc(1)
	if err := a.Free(p); err != nil {
		t.Fatal(err)
	}
	before := clk.Snapshot()
	for i := 0; i < 1000; i++ {
		q, err := a.Alloc(1)
		if err != nil {
			t.Fatal(err)
		}
		if err := a.Free(q); err != nil {
			t.Fatal(err)
		}
	}
	d := clk.Snapshot().Sub(before)
	perAlloc := d.Average(cycles.MapIOVAAlloc)
	model := cycles.DefaultModel()
	if perAlloc != float64(model.FreelistOp*2) {
		t.Errorf("const alloc = %.0f cycles, want flat %d", perAlloc, model.FreelistOp*2)
	}
}

// Property: arbitrary alloc/free interleavings never produce overlapping
// live ranges, for both allocators.
func TestNoOverlapProperty(t *testing.T) {
	prop := func(seed int64, useConst bool) bool {
		rng := rand.New(rand.NewSource(seed))
		var a Allocator
		if useConst {
			a, _ = newConst()
		} else {
			a, _ = newLinux()
		}
		type rg struct{ lo, hi uint64 }
		live := map[uint64]rg{}
		for op := 0; op < 300; op++ {
			if rng.Intn(3) > 0 || len(live) == 0 {
				pages := uint64(rng.Intn(4) + 1)
				p, err := a.Alloc(pages)
				if err != nil {
					return false
				}
				nr := rg{p, p + pages - 1}
				for _, r := range live {
					if nr.lo <= r.hi && r.lo <= nr.hi {
						return false // overlap
					}
				}
				live[p] = nr
			} else {
				for k := range live {
					if err := a.Free(k); err != nil {
						return false
					}
					delete(live, k)
					break
				}
			}
		}
		return a.Live() == len(live)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestAllocChargesComponents(t *testing.T) {
	a, clk := newLinux()
	p, _ := a.Alloc(1)
	if clk.Count(cycles.MapIOVAAlloc) != 1 {
		t.Error("Alloc did not charge MapIOVAAlloc")
	}
	if err := a.Free(p); err != nil {
		t.Fatal(err)
	}
	if clk.Count(cycles.UnmapIOVAFind) != 1 {
		t.Error("Free did not charge UnmapIOVAFind")
	}
	if clk.Count(cycles.UnmapIOVAFree) != 1 {
		t.Error("Free did not charge UnmapIOVAFree")
	}
}
