// Package iova implements the two IOVA allocators the paper evaluates:
//
//   - LinuxAllocator: a faithful reproduction of the Linux 3.4 kernel's IOVA
//     allocator (drivers/iommu/iova.c as profiled by the paper): a red-black
//     tree of allocated ranges, top-down allocation below a 32-bit limit with
//     the cached32_node optimization. The allocator exhibits the paper's
//     "nontrivial pathology" — the gap search regularly walks linearly over
//     the live ranges — by construction, because the algorithm is the same.
//
//   - ConstAllocator: the authors' constant-time allocator (strict+/defer+
//     modes; Malka et al., FAST'15): freed ranges are kept in the tree and
//     recycled through a free list, making allocation O(1) at the cost of a
//     fuller tree (and hence a slightly slower unmap-time lookup), matching
//     Table 1's strict+ column.
//
// Allocation costs are charged to the virtual clock per node actually
// visited, so the asymptotic behaviour is reproduced rather than assumed.
package iova

// node is a red-black tree node describing one allocated IOVA range
// [pfnLo, pfnHi] in page-frame-number units.
type node struct {
	pfnLo, pfnHi uint64
	left, right  *node
	parent       *node
	red          bool
	free         bool // ConstAllocator: range is on the free list, not live
}

// nodeArena hands out tree nodes in chunks, so steady allocation churn costs
// one bump increment per node instead of one heap allocation. Nodes are never
// returned to the arena; allocators that erase nodes recycle them directly.
type nodeArena struct {
	chunk []node
}

const arenaChunk = 64

func (ar *nodeArena) get() *node {
	if len(ar.chunk) == 0 {
		ar.chunk = make([]node, arenaChunk)
	}
	n := &ar.chunk[0]
	ar.chunk = ar.chunk[1:]
	return n
}

// tree is an intrusive red-black tree of non-overlapping IOVA ranges, sorted
// by pfnLo. It counts node touches so callers can charge cycle costs
// proportional to the work the real kernel would do.
type tree struct {
	root   *node
	size   int
	visits uint64 // node touches since last takeVisits
}

// takeVisits returns and resets the touch counter.
func (t *tree) takeVisits() uint64 {
	v := t.visits
	t.visits = 0
	return v
}

func (t *tree) touch() { t.visits++ }

// last returns the node with the greatest pfnLo, or nil.
func (t *tree) last() *node {
	n := t.root
	if n == nil {
		return nil
	}
	for n.right != nil {
		t.touch()
		n = n.right
	}
	t.touch()
	return n
}

// prev returns the in-order predecessor of n, or nil.
func (t *tree) prev(n *node) *node {
	t.touch()
	if n.left != nil {
		n = n.left
		for n.right != nil {
			n = n.right
		}
		return n
	}
	p := n.parent
	for p != nil && n == p.left {
		n = p
		p = p.parent
	}
	return p
}

// next returns the in-order successor of n, or nil.
func (t *tree) next(n *node) *node {
	t.touch()
	if n.right != nil {
		n = n.right
		for n.left != nil {
			n = n.left
		}
		return n
	}
	p := n.parent
	for p != nil && n == p.right {
		n = p
		p = p.parent
	}
	return p
}

// find returns the node whose range contains pfn, or nil.
func (t *tree) find(pfn uint64) *node {
	n := t.root
	for n != nil {
		t.touch()
		switch {
		case pfn < n.pfnLo:
			n = n.left
		case pfn > n.pfnHi:
			n = n.right
		default:
			return n
		}
	}
	return nil
}

// insert adds n to the tree, keyed by pfnLo, and rebalances.
func (t *tree) insert(n *node) {
	n.left, n.right, n.parent = nil, nil, nil
	n.red = true
	var parent *node
	link := &t.root
	for *link != nil {
		parent = *link
		t.touch()
		if n.pfnLo < parent.pfnLo {
			link = &parent.left
		} else {
			link = &parent.right
		}
	}
	n.parent = parent
	*link = n
	t.size++
	t.fixInsert(n)
}

func (t *tree) rotateLeft(x *node) {
	y := x.right
	x.right = y.left
	if y.left != nil {
		y.left.parent = x
	}
	y.parent = x.parent
	switch {
	case x.parent == nil:
		t.root = y
	case x == x.parent.left:
		x.parent.left = y
	default:
		x.parent.right = y
	}
	y.left = x
	x.parent = y
}

func (t *tree) rotateRight(x *node) {
	y := x.left
	x.left = y.right
	if y.right != nil {
		y.right.parent = x
	}
	y.parent = x.parent
	switch {
	case x.parent == nil:
		t.root = y
	case x == x.parent.right:
		x.parent.right = y
	default:
		x.parent.left = y
	}
	y.right = x
	x.parent = y
}

func (t *tree) fixInsert(z *node) {
	for z.parent != nil && z.parent.red {
		gp := z.parent.parent
		if z.parent == gp.left {
			u := gp.right
			if u != nil && u.red {
				z.parent.red = false
				u.red = false
				gp.red = true
				z = gp
			} else {
				if z == z.parent.right {
					z = z.parent
					t.rotateLeft(z)
				}
				z.parent.red = false
				gp.red = true
				t.rotateRight(gp)
			}
		} else {
			u := gp.left
			if u != nil && u.red {
				z.parent.red = false
				u.red = false
				gp.red = true
				z = gp
			} else {
				if z == z.parent.left {
					z = z.parent
					t.rotateRight(z)
				}
				z.parent.red = false
				gp.red = true
				t.rotateLeft(gp)
			}
		}
	}
	t.root.red = false
}

// erase removes n from the tree and rebalances (CLRS RB-DELETE).
func (t *tree) erase(n *node) {
	t.size--
	var x, xParent *node
	y := n
	yRed := y.red
	switch {
	case n.left == nil:
		x = n.right
		xParent = n.parent
		t.transplant(n, n.right)
	case n.right == nil:
		x = n.left
		xParent = n.parent
		t.transplant(n, n.left)
	default:
		y = n.right
		for y.left != nil {
			y = y.left
		}
		yRed = y.red
		x = y.right
		if y.parent == n {
			xParent = y
		} else {
			xParent = y.parent
			t.transplant(y, y.right)
			y.right = n.right
			y.right.parent = y
		}
		t.transplant(n, y)
		y.left = n.left
		y.left.parent = y
		y.red = n.red
	}
	if !yRed {
		t.fixDelete(x, xParent)
	}
	n.left, n.right, n.parent = nil, nil, nil
}

func (t *tree) transplant(u, v *node) {
	switch {
	case u.parent == nil:
		t.root = v
	case u == u.parent.left:
		u.parent.left = v
	default:
		u.parent.right = v
	}
	if v != nil {
		v.parent = u.parent
	}
}

func (t *tree) fixDelete(x, parent *node) {
	for x != t.root && (x == nil || !x.red) {
		if x == parent.left {
			w := parent.right
			if w.red {
				w.red = false
				parent.red = true
				t.rotateLeft(parent)
				w = parent.right
			}
			if (w.left == nil || !w.left.red) && (w.right == nil || !w.right.red) {
				w.red = true
				x = parent
				parent = x.parent
			} else {
				if w.right == nil || !w.right.red {
					if w.left != nil {
						w.left.red = false
					}
					w.red = true
					t.rotateRight(w)
					w = parent.right
				}
				w.red = parent.red
				parent.red = false
				if w.right != nil {
					w.right.red = false
				}
				t.rotateLeft(parent)
				x = t.root
				parent = nil
			}
		} else {
			w := parent.left
			if w.red {
				w.red = false
				parent.red = true
				t.rotateRight(parent)
				w = parent.left
			}
			if (w.left == nil || !w.left.red) && (w.right == nil || !w.right.red) {
				w.red = true
				x = parent
				parent = x.parent
			} else {
				if w.left == nil || !w.left.red {
					if w.right != nil {
						w.right.red = false
					}
					w.red = true
					t.rotateLeft(w)
					w = parent.left
				}
				w.red = parent.red
				parent.red = false
				if w.left != nil {
					w.left.red = false
				}
				t.rotateRight(parent)
				x = t.root
				parent = nil
			}
		}
	}
	if x != nil {
		x.red = false
	}
}

// checkInvariants validates the red-black and ordering invariants, returning
// the black height or -1 on violation. Used by tests only.
func (t *tree) checkInvariants() int {
	if t.root != nil && t.root.red {
		return -1
	}
	return blackHeight(t.root, 0, 1<<63)
}

func blackHeight(n *node, lo, hi uint64) int {
	if n == nil {
		return 1
	}
	if n.pfnLo < lo || n.pfnHi >= hi || n.pfnLo > n.pfnHi {
		return -1
	}
	if n.red && ((n.left != nil && n.left.red) || (n.right != nil && n.right.red)) {
		return -1
	}
	l := blackHeight(n.left, lo, n.pfnLo)
	r := blackHeight(n.right, n.pfnHi+1, hi)
	if l == -1 || r == -1 || l != r {
		return -1
	}
	if !n.red {
		l++
	}
	return l
}
