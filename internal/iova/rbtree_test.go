package iova

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// insertRange is a test helper adding [lo,hi] to the tree.
func insertRange(t *tree, lo, hi uint64) *node {
	n := &node{pfnLo: lo, pfnHi: hi}
	t.insert(n)
	return n
}

func TestTreeInsertFindErase(t *testing.T) {
	var tr tree
	n1 := insertRange(&tr, 10, 19)
	n2 := insertRange(&tr, 30, 39)
	n3 := insertRange(&tr, 20, 29)

	if tr.size != 3 {
		t.Fatalf("size = %d", tr.size)
	}
	if tr.checkInvariants() == -1 {
		t.Fatal("invariants violated after inserts")
	}
	if got := tr.find(15); got != n1 {
		t.Errorf("find(15) = %v", got)
	}
	if got := tr.find(29); got != n3 {
		t.Errorf("find(29) = %v", got)
	}
	if got := tr.find(40); got != nil {
		t.Errorf("find(40) = %v, want nil", got)
	}
	tr.erase(n2)
	if tr.find(35) != nil {
		t.Error("erased range still found")
	}
	if tr.checkInvariants() == -1 {
		t.Fatal("invariants violated after erase")
	}
	if tr.size != 2 {
		t.Errorf("size = %d after erase", tr.size)
	}
}

func TestTreeTraversal(t *testing.T) {
	var tr tree
	var nodes []*node
	for _, lo := range []uint64{50, 10, 30, 70, 20, 60, 40} {
		nodes = append(nodes, insertRange(&tr, lo, lo+5))
	}
	_ = nodes
	// last, then walk prev to the smallest.
	var got []uint64
	for n := tr.last(); n != nil; n = tr.prev(n) {
		got = append(got, n.pfnLo)
	}
	want := []uint64{70, 60, 50, 40, 30, 20, 10}
	if len(got) != len(want) {
		t.Fatalf("prev walk = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("prev walk = %v, want %v", got, want)
		}
	}
	// next from smallest.
	var fwd []uint64
	n := tr.find(10)
	for ; n != nil; n = tr.next(n) {
		fwd = append(fwd, n.pfnLo)
	}
	for i := range want {
		if fwd[i] != want[len(want)-1-i] {
			t.Fatalf("next walk = %v", fwd)
		}
	}
}

func TestTreeEmpty(t *testing.T) {
	var tr tree
	if tr.last() != nil {
		t.Error("last of empty tree != nil")
	}
	if tr.find(5) != nil {
		t.Error("find in empty tree != nil")
	}
	if tr.checkInvariants() == -1 {
		t.Error("empty tree fails invariants")
	}
}

func TestTreeVisitCounting(t *testing.T) {
	var tr tree
	for i := uint64(0); i < 64; i++ {
		insertRange(&tr, i*10, i*10+5)
	}
	tr.takeVisits()
	tr.find(635)
	v := tr.takeVisits()
	if v == 0 || v > 10 {
		t.Errorf("find visits = %d, want O(log 64)", v)
	}
}

// Property: random insert/erase sequences preserve RB invariants and agree
// with a sorted-slice reference model.
func TestTreeRandomizedAgainstReference(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var tr tree
		ref := map[uint64]*node{} // pfnLo -> node
		for op := 0; op < 400; op++ {
			if rng.Intn(2) == 0 || len(ref) == 0 {
				lo := uint64(rng.Intn(10000)) * 10
				if _, dup := ref[lo]; dup {
					continue
				}
				ref[lo] = insertRange(&tr, lo, lo+9)
			} else {
				// Erase a random reference element.
				keys := make([]uint64, 0, len(ref))
				for k := range ref {
					keys = append(keys, k)
				}
				k := keys[rng.Intn(len(keys))]
				tr.erase(ref[k])
				delete(ref, k)
			}
			if tr.checkInvariants() == -1 {
				return false
			}
			if tr.size != len(ref) {
				return false
			}
		}
		// Full in-order scan must equal the sorted reference keys.
		var keys []uint64
		for k := range ref {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		i := len(keys) - 1
		for n := tr.last(); n != nil; n = tr.prev(n) {
			if i < 0 || n.pfnLo != keys[i] {
				return false
			}
			i--
		}
		return i == -1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
