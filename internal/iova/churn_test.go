package iova

import "testing"

// churnRNG is a splitmix64 step, so the storm schedule is seeded and
// byte-reproducible like everything else in the repo.
func churnRNG(s *uint64) uint64 {
	*s += 0x9E3779B97F4A7C15
	z := *s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// churnStorm drives one open/close storm through a: a sliding window of
// live flows where each step opens a heavy-tailed range (mostly single
// pages, occasionally multi-page scatter lists) and, once the window is
// full, closes a random live one. All flows close at the end, so the
// allocator returns to idle between storms — the shape of short-lived
// datacenter connections between diurnal peaks.
func churnStorm(t *testing.T, a Allocator, seed *uint64, flows, window int) {
	t.Helper()
	live := make([]uint64, 0, window)
	for i := 0; i < flows; i++ {
		pages := uint64(1)
		switch r := churnRNG(seed) % 16; {
		case r < 4:
			pages = 2
		case r < 6:
			pages = 3
		case r < 7:
			pages = 4
		}
		p, err := a.Alloc(pages)
		if err != nil {
			t.Fatalf("storm alloc %d (%d pages): %v", i, pages, err)
		}
		live = append(live, p)
		if len(live) >= window {
			j := int(churnRNG(seed) % uint64(len(live)))
			if err := a.Free(live[j]); err != nil {
				t.Fatalf("storm free %#x: %v", live[j], err)
			}
			live[j] = live[len(live)-1]
			live = live[:len(live)-1]
		}
	}
	for _, p := range live {
		if err := a.Free(p); err != nil {
			t.Fatalf("storm drain free %#x: %v", p, err)
		}
	}
}

// TestConstChurnFragmentationBound is the allocator half of the traffic
// engine's churn story: after the first storm warms the per-size free
// stacks, repeated seeded open/close storms must stop carving fresh address
// space — Carved() converges to a bounded high-water mark instead of
// marching down the arena — and the warm alloc/free pair must be
// allocation-free, because the steady state is two O(1) list operations.
func TestConstChurnFragmentationBound(t *testing.T) {
	a, _ := newConst()
	seed := uint64(0x5eed_c4a1)
	const storms, flows, window = 12, 600, 96

	churnStorm(t, a, &seed, flows, window)
	warm := a.Carved()
	if warm == 0 {
		t.Fatal("first storm carved nothing — the storm is degenerate")
	}
	prev := warm
	for s := 1; s < storms; s++ {
		churnStorm(t, a, &seed, flows, window)
		carved := a.Carved()
		if carved < prev {
			t.Fatalf("storm %d: Carved() went backwards (%d -> %d)", s, prev, carved)
		}
		if carved > 2*warm {
			t.Fatalf("storm %d: carved %d pages, more than twice the warm high-water %d — free stacks are not feeding reuse",
				s, carved, warm)
		}
		if s >= storms-3 && carved != prev {
			t.Errorf("storm %d: still carving fresh space (%d -> %d pages) after convergence window",
				s, prev, carved)
		}
		prev = carved
	}
	if a.Live() != 0 {
		t.Fatalf("%d ranges leaked across storms", a.Live())
	}

	if n := testing.AllocsPerRun(200, func() {
		p, err := a.Alloc(2)
		if err != nil {
			t.Fatal(err)
		}
		if err := a.Free(p); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("warm alloc/free pair allocates %.1f objects per op, want 0", n)
	}
}

// TestLinuxChurnPathology runs the same storms through the Linux allocator:
// it must stay correct (no leaks), but the red-black-tree walks that the
// paper's Figure 2 blames for the long-term slowdown are visible —
// MaxAllocVisits grows past a trivial depth because freed ranges are erased
// and every allocation re-walks the tree for a gap.
func TestLinuxChurnPathology(t *testing.T) {
	a, _ := newLinux()
	seed := uint64(0x5eed_c4a1)
	for s := 0; s < 6; s++ {
		churnStorm(t, a, &seed, 600, 96)
	}
	if a.Live() != 0 {
		t.Fatalf("%d ranges leaked across storms", a.Live())
	}
	if a.MaxAllocVisits < 4 {
		t.Errorf("MaxAllocVisits = %d; the storm never stressed the tree walk", a.MaxAllocVisits)
	}
}
