package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 {
		t.Errorf("N = %d", s.N)
	}
	if s.Mean != 5 {
		t.Errorf("Mean = %v", s.Mean)
	}
	if math.Abs(s.Std-2.138) > 0.01 {
		t.Errorf("Std = %v", s.Std)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("Min/Max = %v/%v", s.Min, s.Max)
	}
	if s.Median != 4.5 {
		t.Errorf("Median = %v", s.Median)
	}
}

func TestSummarizeEdge(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Error("empty summary not zero")
	}
	s := Summarize([]float64{42})
	if s.Mean != 42 || s.Std != 0 || s.Median != 42 {
		t.Errorf("singleton = %+v", s)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	cases := []struct{ p, want float64 }{
		{0, 10}, {100, 40}, {50, 25}, {25, 17.5}, {-5, 10}, {200, 40},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("P%.0f = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile")
	}
}

// Property: mean is within [min,max]; std >= 0.
func TestSummarizeProperty(t *testing.T) {
	prop := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		s := Summarize(xs)
		return s.Mean >= s.Min-1e-9 && s.Mean <= s.Max+1e-9 && s.Std >= 0
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestTableRendering(t *testing.T) {
	tbl := NewTable("Table 9. Test", "mode", "value", "ratio")
	tbl.Row("strict", 3.14159, "x")
	tbl.Row("none", 10, "y")
	out := tbl.String()

	if !strings.Contains(out, "Table 9. Test") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "3.14") {
		t.Error("float not formatted to 2 decimals")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// Columns align: all data lines the same width.
	if len(lines[3]) != len(lines[4]) {
		t.Errorf("rows unaligned:\n%s", out)
	}
	// First column is left aligned: "strict" starts at 0.
	if !strings.HasPrefix(lines[3], "strict") {
		t.Errorf("first column not left-aligned: %q", lines[3])
	}
}

func TestTableAlignLeft(t *testing.T) {
	tbl := NewTable("", "a", "b")
	tbl.AlignLeft(1)
	tbl.Row("x", "yy")
	tbl.RowStrings([]string{"longer", "z"})
	out := tbl.String()
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "yy") && !strings.Contains(line, "yy") {
			t.Error("unexpected")
		}
	}
	if !strings.Contains(out, "longer  z") {
		t.Errorf("left-aligned column broken:\n%s", out)
	}
}

func TestRatio(t *testing.T) {
	if Ratio(7.56, 1.0) != "7.56" {
		t.Error("Ratio format")
	}
	if Ratio(1, 0) != "inf" {
		t.Error("Ratio by zero")
	}
}
