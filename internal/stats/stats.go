// Package stats provides the small numeric and presentation helpers the
// experiment harness uses: summary statistics over repeated runs and
// fixed-width ASCII tables shaped like the paper's.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary describes a sample of measurements.
type Summary struct {
	N         int
	Mean, Std float64
	Min, Max  float64
	Median    float64
}

// Summarize computes summary statistics; an empty sample yields zeros.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if s.N == 0 {
		return s
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Min, s.Max = sorted[0], sorted[len(sorted)-1]
	s.Median = Percentile(sorted, 50)
	var sum float64
	for _, x := range xs {
		sum += x
	}
	s.Mean = sum / float64(s.N)
	var sq float64
	for _, x := range xs {
		d := x - s.Mean
		sq += d * d
	}
	if s.N > 1 {
		s.Std = math.Sqrt(sq / float64(s.N-1))
	}
	return s
}

// Percentile returns the p-th percentile (0..100) of a sorted sample using
// linear interpolation.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Table is a simple fixed-width ASCII table builder.
type Table struct {
	Title   string
	header  []string
	rows    [][]string
	aligned []bool // per column: right-align
}

// NewTable creates a table with the given column headers.
func NewTable(title string, headers ...string) *Table {
	t := &Table{Title: title, header: headers, aligned: make([]bool, len(headers))}
	for i := range t.aligned {
		t.aligned[i] = i > 0 // first column left, rest right by default
	}
	return t
}

// AlignLeft makes column i left-aligned.
func (t *Table) AlignLeft(i int) *Table {
	if i < len(t.aligned) {
		t.aligned[i] = false
	}
	return t
}

// Row appends a row; cells are formatted with %v, floats with %.2f.
func (t *Table) Row(cells ...interface{}) *Table {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
	return t
}

// RowStrings appends a pre-formatted row.
func (t *Table) RowStrings(cells []string) *Table {
	t.rows = append(t.rows, cells)
	return t
}

// String renders the table.
func (t *Table) String() string {
	ncol := len(t.header)
	widths := make([]int, ncol)
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i := 0; i < ncol && i < len(r); i++ {
			if len(r[i]) > widths[i] {
				widths[i] = len(r[i])
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i := 0; i < ncol; i++ {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			if t.aligned[i] {
				b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
				b.WriteString(cell)
			} else {
				b.WriteString(cell)
				b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	total := 0
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total+2*(ncol-1)))
	b.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// Counters is an insertion-ordered named-counter set: iteration follows the
// order in which names were first added, so reports built from it are
// deterministic (unlike ranging over a map).
type Counters struct {
	names  []string
	values map[string]uint64
}

// Add increments name by n, registering it on first use.
func (c *Counters) Add(name string, n uint64) {
	if c.values == nil {
		c.values = make(map[string]uint64)
	}
	if _, ok := c.values[name]; !ok {
		c.names = append(c.names, name)
	}
	c.values[name] += n
}

// Get returns the counter's value (0 for unknown names).
func (c *Counters) Get(name string) uint64 {
	if c.values == nil {
		return 0
	}
	return c.values[name]
}

// Names returns the counter names in first-added order.
func (c *Counters) Names() []string { return append([]string(nil), c.names...) }

// Table renders the counters as a two-column table.
func (c *Counters) Table(title string) *Table {
	t := NewTable(title, "counter", "value")
	for _, n := range c.names {
		t.Row(n, c.values[n])
	}
	return t
}

// Ratio formats a/b as the paper's normalized "x divided by y" cells.
func Ratio(a, b float64) string {
	if b == 0 {
		return "inf"
	}
	return fmt.Sprintf("%.2f", a/b)
}
