package audit

import (
	"fmt"
	"sort"

	"riommu/internal/cycles"
	"riommu/internal/intremap"
	"riommu/internal/pci"
)

// Interrupt violation reasons. A violation is a *delivered* interrupt the
// shadow table says should not have reached that core; blocked messages are
// the hardware working and are only counted.
const (
	// IntReasonStale: delivery through an IRTE the OS had already freed —
	// the deferred-IEC window (interrupt analog of the stale-IOTLB window).
	IntReasonStale = "int-stale"
	// IntReasonUnmapped: delivery through an index the shadow table never
	// saw allocated (a wild vector that the hardware let through).
	IntReasonUnmapped = "int-unmapped"
	// IntReasonSpoof: delivered, but the wire-level requester does not own
	// the IRTE (source-id verification should have refused it).
	IntReasonSpoof = "int-spoof"
	// IntReasonWrongCore: delivered to a (vector, core) other than what the
	// live IRTE programs — an affinity/remap bypass.
	IntReasonWrongCore = "int-wrong-core"
)

// IntReasons returns every interrupt violation reason in report order.
func IntReasons() []string {
	return []string{IntReasonStale, IntReasonUnmapped, IntReasonSpoof, IntReasonWrongCore}
}

// IntViolation is one recorded interrupt-isolation breach.
type IntViolation struct {
	Mode   string
	Reason string
	BDF    pci.BDF // requester on the wire
	Index  int
	Vector uint8
	Core   int
	Cycle  uint64
	// StaleCycles is, for IntReasonStale, how long the IRTE had been freed
	// when the delivery landed.
	StaleCycles uint64
}

func (v IntViolation) String() string {
	return fmt.Sprintf("%s %s %s irte=%d vec=%#x core=%d cycle=%d",
		v.Mode, v.Reason, v.BDF, v.Index, v.Vector, v.Core, v.Cycle)
}

// intShadow is the oracle's independent copy of one IRTE.
type intShadow struct {
	BDF      pci.BDF
	Vector   uint8
	DestCore int
}

// intRetired is a freed shadow entry kept as a tombstone.
type intRetired struct {
	intShadow
	Index     int
	FreeCycle uint64
}

// intRetiredCap bounds the tombstone history; it covers a full deferred IEC
// batch with room to spare.
const intRetiredCap = 256

// IntOracle is the interrupt shadow oracle: an independent record of the
// live interrupt-remap table, maintained purely from the OS-side
// alloc/free/retarget mirror, judging every delivered interrupt. Like the
// DMA Oracle it is a pure observer — no clock charges, no randomness — so
// enabling it cannot change any simulated metric.
//
// It implements intremap.Observer.
type IntOracle struct {
	mode string
	clk  *cycles.Clock

	// passThrough disables judgment: the none/hwpt/swpt modes have no
	// remapping hardware, so nothing the oracle could flag is a protection
	// failure there.
	passThrough bool

	live    map[int]intShadow
	retired []intRetired

	// Aggregate counters.
	Delivered  uint64 // interrupts that reached a core
	Blocked    uint64 // messages the hardware refused
	Violations uint64 // delivered interrupts the shadow table disowns
	ByReason   map[string]uint64
	ByOutcome  map[string]uint64 // blocked counts keyed by intremap.Outcome.String()
	Events     []IntViolation

	// Mirror-traffic counters.
	Allocs, Frees, Retargets uint64
	LiveNow, LivePeak        int
}

// NewIntOracle creates an interrupt oracle for a system in the named mode.
// clk is read (never charged) to stamp events.
func NewIntOracle(mode string, clk *cycles.Clock) *IntOracle {
	return &IntOracle{
		mode:      mode,
		clk:       clk,
		live:      make(map[int]intShadow),
		ByReason:  make(map[string]uint64),
		ByOutcome: make(map[string]uint64),
	}
}

// Mode returns the protection-mode label events carry.
func (o *IntOracle) Mode() string { return o.mode }

// SetPassThrough switches the oracle to counting-only mode.
func (o *IntOracle) SetPassThrough(v bool) { o.passThrough = v }

// OnIRTEAlloc mirrors an IRTE programming.
func (o *IntOracle) OnIRTEAlloc(index int, e intremap.IRTE) {
	o.Allocs++
	if _, dup := o.live[index]; !dup {
		o.LiveNow++
		if o.LiveNow > o.LivePeak {
			o.LivePeak = o.LiveNow
		}
	}
	o.live[index] = intShadow{BDF: e.BDF, Vector: e.Vector, DestCore: e.DestCore}
}

// OnIRTEFree mirrors an IRTE teardown.
func (o *IntOracle) OnIRTEFree(index int, e intremap.IRTE) {
	o.Frees++
	s, ok := o.live[index]
	if !ok {
		s = intShadow{BDF: e.BDF, Vector: e.Vector, DestCore: e.DestCore}
	} else {
		delete(o.live, index)
		o.LiveNow--
	}
	o.retired = append(o.retired, intRetired{intShadow: s, Index: index, FreeCycle: o.clk.Now()})
	if len(o.retired) > intRetiredCap {
		o.retired = append(o.retired[:0:0], o.retired[len(o.retired)-intRetiredCap:]...)
	}
}

// OnIRTERetarget mirrors an affinity change.
func (o *IntOracle) OnIRTERetarget(index int, e intremap.IRTE) {
	o.Retargets++
	if s, ok := o.live[index]; ok {
		s.DestCore = e.DestCore
		o.live[index] = s
	}
}

// OnIntDelivered judges one delivered interrupt against the shadow table.
func (o *IntOracle) OnIntDelivered(d intremap.Delivery) {
	o.Delivered++
	if o.passThrough {
		return
	}
	if s, ok := o.live[d.Index]; ok {
		switch {
		case s.BDF != d.Source:
			o.violate(IntViolation{Reason: IntReasonSpoof, BDF: d.Source, Index: d.Index, Vector: d.Vector, Core: d.Core})
		case s.Vector != d.Vector || s.DestCore != d.Core:
			o.violate(IntViolation{Reason: IntReasonWrongCore, BDF: d.Source, Index: d.Index, Vector: d.Vector, Core: d.Core})
		}
		return
	}
	// No live shadow entry: stale if recently freed, wild otherwise.
	for i := len(o.retired) - 1; i >= 0; i-- {
		if o.retired[i].Index == d.Index {
			r := o.retired[i]
			reason := IntReasonStale
			if r.BDF != d.Source {
				reason = IntReasonSpoof
			}
			o.violate(IntViolation{
				Reason: reason, BDF: d.Source, Index: d.Index, Vector: d.Vector, Core: d.Core,
				StaleCycles: o.clk.Now() - r.FreeCycle,
			})
			return
		}
	}
	o.violate(IntViolation{Reason: IntReasonUnmapped, BDF: d.Source, Index: d.Index, Vector: d.Vector, Core: d.Core})
}

// OnIntBlocked counts a refused message (the hardware doing its job).
func (o *IntOracle) OnIntBlocked(_ pci.BDF, _ int, out intremap.Outcome) {
	o.Blocked++
	o.ByOutcome[out.String()]++
}

// LiveSortedFor returns bdf's live IRTE indices in ascending order — the
// deterministic view chaos scenarios pick spoof targets from.
func (o *IntOracle) LiveSortedFor(bdf pci.BDF) []int {
	var out []int
	for idx, s := range o.live {
		if s.BDF == bdf {
			out = append(out, idx)
		}
	}
	sort.Ints(out)
	return out
}

// RecentFreedFor returns up to n of bdf's freed IRTE indices, newest first
// (the stale-replay target list).
func (o *IntOracle) RecentFreedFor(bdf pci.BDF, n int) []int {
	var out []int
	for i := len(o.retired) - 1; i >= 0 && len(out) < n; i-- {
		if o.retired[i].BDF == bdf {
			out = append(out, o.retired[i].Index)
		}
	}
	return out
}

func (o *IntOracle) violate(v IntViolation) {
	v.Mode = o.mode
	v.Cycle = o.clk.Now()
	o.Violations++
	o.ByReason[v.Reason]++
	if len(o.Events) < maxEvents {
		o.Events = append(o.Events, v)
	}
}
