package audit

import (
	"fmt"

	"riommu/internal/cycles"
	"riommu/internal/mem"
	"riommu/internal/pci"
)

// Tenant-level violation classes. The cross-tenant class is the hard gate:
// a DMA that resolved to a host frame owned by another tenant is a broken
// blast radius, no matter what stage 1 thought it was doing.
const (
	// ReasonCrossTenant: the HPA belongs to a different tenant's frame set.
	ReasonCrossTenant = "cross-tenant"
	// ReasonUnownedFrame: the HPA belongs to no tenant (freed or never
	// granted) — a stale stage-2 translation reaching reclaimed memory.
	ReasonUnownedFrame = "unowned-frame"
	// ReasonStage2Stale: the frame is the tenant's own, but the GPA page it
	// was reached through is no longer mapped (a stage-2 TLB entry survived
	// its invalidation).
	ReasonStage2Stale = "stage2-stale"
	// ReasonStage2Mismatch: the GPA page is live but resolves to a
	// different frame (or offset) than the hardware returned.
	ReasonStage2Mismatch = "stage2-mismatch"
)

// TenantReasons lists the tenant-level violation classes in severity order
// (report code iterates this; the order is part of the JSON schema).
func TenantReasons() []string {
	return []string{ReasonCrossTenant, ReasonUnownedFrame, ReasonStage2Stale, ReasonStage2Mismatch}
}

// TenantViolation records one stage-2 access the hypervisor should not have
// allowed.
type TenantViolation struct {
	Reason string
	Tenant int     // the tenant whose device issued the DMA
	Owner  int     // the tenant owning the frame (cross-tenant only)
	BDF    pci.BDF // the issuing device
	GPA    uint64
	HPA    mem.PA
	Size   uint32
	Dir    pci.Dir
	Cycle  uint64 // hypervisor virtual time at detection
}

func (v TenantViolation) String() string {
	return fmt.Sprintf("[%s] tenant %d dev %s gpa=%#x hpa=%#x size=%d dir=%v owner=%d @%d",
		v.Reason, v.Tenant, v.BDF, v.GPA, v.HPA, v.Size, v.Dir, v.Owner, v.Cycle)
}

// TenantOracle is the hypervisor-side shadow oracle for nested translation.
// It mirrors the host's ground truth — which tenant owns each host frame,
// and which GPA pages each tenant currently has mapped — from the same
// notification stream that updates the real stage-2 tables, then checks
// every stage-2 resolution the hardware produces against that truth.
//
// Like the stage-1 Oracle it is a pure observer: it charges no clocks and
// consumes no randomness, so enabling it cannot perturb a run.
type TenantOracle struct {
	clk *cycles.Clock // hypervisor clock, read for violation timestamps

	owner map[mem.PFN]int            // host frame → owning tenant
	live  map[int]map[uint64]mem.PFN // tenant → GPA page → granted frame

	// Checked counts verified stage-2 resolutions; Violations the failures.
	Checked    uint64
	Violations uint64
	// CrossTenant counts the hard-gate class separately.
	CrossTenant uint64
	// ByReason breaks down violations by class.
	ByReason map[string]uint64
	// Events retains the first violations (capped) for diagnostics.
	Events []TenantViolation

	// Owns/Disowns/S2Maps/S2Unmaps count ground-truth updates (liveness:
	// an oracle that saw no traffic proves nothing).
	Owns, Disowns, S2Maps, S2Unmaps uint64
}

const tenantEventCap = 64

// NewTenantOracle returns an empty oracle stamping violations with clk.
func NewTenantOracle(clk *cycles.Clock) *TenantOracle {
	return &TenantOracle{
		clk:      clk,
		owner:    make(map[mem.PFN]int),
		live:     make(map[int]map[uint64]mem.PFN),
		ByReason: make(map[string]uint64),
	}
}

// OnOwn records that the host granted frame f to tenant.
func (o *TenantOracle) OnOwn(f mem.PFN, tenant int) {
	o.owner[f] = tenant
	o.Owns++
}

// OnDisown records that the host reclaimed frame f from its owner.
func (o *TenantOracle) OnDisown(f mem.PFN) {
	delete(o.owner, f)
	o.Disowns++
}

// OnS2Map records a stage-2 mapping: tenant's GPA page now resolves to f.
func (o *TenantOracle) OnS2Map(tenant int, gpa uint64, f mem.PFN) {
	m := o.live[tenant]
	if m == nil {
		m = make(map[uint64]mem.PFN)
		o.live[tenant] = m
	}
	m[gpa>>mem.PageShift] = f
	o.S2Maps++
}

// OnS2Unmap records removal of a stage-2 mapping.
func (o *TenantOracle) OnS2Unmap(tenant int, gpa uint64) {
	delete(o.live[tenant], gpa>>mem.PageShift)
	o.S2Unmaps++
}

// VerifyStage2 checks one stage-2 resolution (a single GPA page segment)
// against the shadow state. Called by the nested translator after the
// hardware produced hpa for tenant's device at gpa.
func (o *TenantOracle) VerifyStage2(tenant int, bdf pci.BDF, gpa uint64, hpa mem.PA, size uint32, dir pci.Dir) {
	o.Checked++
	f := mem.PFNOf(hpa)
	own, owned := o.owner[f]
	switch {
	case owned && own != tenant:
		o.violate(TenantViolation{Reason: ReasonCrossTenant, Tenant: tenant, Owner: own,
			BDF: bdf, GPA: gpa, HPA: hpa, Size: size, Dir: dir})
		return
	case !owned:
		o.violate(TenantViolation{Reason: ReasonUnownedFrame, Tenant: tenant, Owner: -1,
			BDF: bdf, GPA: gpa, HPA: hpa, Size: size, Dir: dir})
		return
	}
	cur, live := o.live[tenant][gpa>>mem.PageShift]
	switch {
	case !live:
		o.violate(TenantViolation{Reason: ReasonStage2Stale, Tenant: tenant, Owner: own,
			BDF: bdf, GPA: gpa, HPA: hpa, Size: size, Dir: dir})
	case cur != f || uint64(hpa)&mem.PageMask != gpa&mem.PageMask:
		o.violate(TenantViolation{Reason: ReasonStage2Mismatch, Tenant: tenant, Owner: own,
			BDF: bdf, GPA: gpa, HPA: hpa, Size: size, Dir: dir})
	}
}

func (o *TenantOracle) violate(v TenantViolation) {
	v.Cycle = o.clk.Now()
	o.Violations++
	o.ByReason[v.Reason]++
	if v.Reason == ReasonCrossTenant {
		o.CrossTenant++
	}
	if len(o.Events) < tenantEventCap {
		o.Events = append(o.Events, v)
	}
}
