package audit

import (
	"strings"
	"testing"

	"riommu/internal/cycles"
	"riommu/internal/mem"
	"riommu/internal/pci"
)

var bdf = pci.NewBDF(0, 3, 0)

func newTestOracle() (*Oracle, *cycles.Clock) {
	clk := &cycles.Clock{}
	return NewOracle("strict", clk), clk
}

func TestVerifyInsideLiveMapping(t *testing.T) {
	o, _ := newTestOracle()
	o.OnMap(bdf, 0x1000, mem.PA(0x8000), 2048, pci.DirBidi)
	o.VerifyDMA(bdf, 0x1000, mem.PA(0x8000), 2048, pci.DirToDevice)
	o.VerifyDMA(bdf, 0x1400, mem.PA(0x8400), 64, pci.DirFromDevice)
	if o.Violations != 0 {
		t.Fatalf("in-bounds accesses flagged: %+v", o.Events)
	}
	if o.Checked != 2 {
		t.Fatalf("Checked = %d, want 2", o.Checked)
	}
}

func TestVerifyClassifiesReasons(t *testing.T) {
	o, clk := newTestOracle()
	o.OnMap(bdf, 0x1000, mem.PA(0x8000), 2048, pci.DirToDevice)

	// Wrong direction: the mapping is read-only for the device.
	o.VerifyDMA(bdf, 0x1000, mem.PA(0x8000), 64, pci.DirFromDevice)
	// Bounds: starts inside, runs past the 2048-byte buffer.
	o.VerifyDMA(bdf, 0x1700, mem.PA(0x8700), 512, pci.DirToDevice)
	// PA mismatch: hardware resolved to the wrong frame.
	o.VerifyDMA(bdf, 0x1000, mem.PA(0x9000), 64, pci.DirToDevice)
	// Unmapped: nothing ever lived there.
	o.VerifyDMA(bdf, 0x55000, mem.PA(0x8000), 64, pci.DirToDevice)

	// Stale: unmap, then access the dead range.
	clk.Charge(cycles.Recovery, 100)
	o.OnUnmap(bdf, 0x1000)
	clk.Charge(cycles.Recovery, 400)
	o.VerifyDMA(bdf, 0x1010, mem.PA(0x8010), 64, pci.DirToDevice)

	want := map[string]uint64{
		ReasonDirection: 1, ReasonBounds: 1, ReasonPAMismatch: 1,
		ReasonUnmapped: 1, ReasonStale: 1,
	}
	for r, n := range want {
		if o.ByReason[r] != n {
			t.Errorf("ByReason[%s] = %d, want %d", r, o.ByReason[r], n)
		}
	}
	if o.Violations != 5 {
		t.Errorf("Violations = %d, want 5", o.Violations)
	}
	var stale *Violation
	for i := range o.Events {
		if o.Events[i].Reason == ReasonStale {
			stale = &o.Events[i]
		}
	}
	if stale == nil {
		t.Fatal("no stale-translation event recorded")
	}
	if stale.StaleCycles != 400 {
		t.Errorf("StaleCycles = %d, want 400 (cycles between unmap and access)", stale.StaleCycles)
	}
}

func TestUnmapRetiresAndRemapOverwrites(t *testing.T) {
	o, _ := newTestOracle()
	o.OnMap(bdf, 0x1000, mem.PA(0x8000), 2048, pci.DirBidi)
	o.OnUnmap(bdf, 0x1000)
	if o.LiveNow != 0 {
		t.Fatalf("LiveNow = %d after unmap", o.LiveNow)
	}
	// Same IOVA reallocated to a different buffer: the oracle must judge
	// accesses against the new mapping, not the tombstone.
	o.OnMap(bdf, 0x1000, mem.PA(0xA000), 2048, pci.DirBidi)
	o.VerifyDMA(bdf, 0x1000, mem.PA(0xA000), 64, pci.DirToDevice)
	if o.Violations != 0 {
		t.Fatalf("reallocated-IOVA access flagged: %+v", o.Events)
	}
	// A duplicate OnMap (recovery lost the unmap) retires the old mapping
	// instead of leaking it.
	o.OnMap(bdf, 0x1000, mem.PA(0xB000), 2048, pci.DirBidi)
	if o.LiveNow != 1 {
		t.Fatalf("LiveNow = %d after duplicate map, want 1", o.LiveNow)
	}
	if got := len(o.RecentRetired(bdf, 10)); got != 2 {
		t.Fatalf("RecentRetired = %d entries, want 2", got)
	}
}

func TestPassThroughCountsWithoutJudging(t *testing.T) {
	o, _ := newTestOracle()
	o.SetPassThrough(true)
	o.VerifyDMA(bdf, 0xdead000, mem.PA(0xdead000), 64, pci.DirFromDevice)
	if o.Checked != 1 || o.Violations != 0 {
		t.Fatalf("pass-through: Checked=%d Violations=%d, want 1/0", o.Checked, o.Violations)
	}
}

func TestLiveSortedDeterministic(t *testing.T) {
	o, _ := newTestOracle()
	for _, base := range []uint64{0x5000, 0x1000, 0x9000, 0x3000} {
		o.OnMap(bdf, base, mem.PA(base), 512, pci.DirBidi)
	}
	ms := o.LiveSorted(bdf)
	for i := 1; i < len(ms); i++ {
		if ms[i-1].IOVA >= ms[i].IOVA {
			t.Fatalf("LiveSorted not ordered: %#x before %#x", ms[i-1].IOVA, ms[i].IOVA)
		}
	}
	if len(ms) != 4 {
		t.Fatalf("LiveSorted = %d mappings, want 4", len(ms))
	}
}

func TestRetiredHistoryBounded(t *testing.T) {
	o, _ := newTestOracle()
	for i := 0; i < 3*retiredCap; i++ {
		iova := uint64(0x1000 + 0x1000*i)
		o.OnMap(bdf, iova, mem.PA(iova), 512, pci.DirBidi)
		o.OnUnmap(bdf, iova)
	}
	if got := len(o.retired[bdf]); got > retiredCap {
		t.Fatalf("retired history %d exceeds cap %d", got, retiredCap)
	}
	// The newest tombstone is still the most recent unmap.
	last := o.RecentRetired(bdf, 1)
	if len(last) != 1 || last[0].IOVA != uint64(0x1000+0x1000*(3*retiredCap-1)) {
		t.Fatalf("newest tombstone wrong: %+v", last)
	}
}

func TestOracleAccessorsAndStats(t *testing.T) {
	o, _ := newTestOracle()
	if o.Mode() != "strict" {
		t.Errorf("Mode() = %q", o.Mode())
	}
	want := []string{ReasonStale, ReasonUnmapped, ReasonBounds, ReasonDirection, ReasonPAMismatch}
	got := Reasons()
	if len(got) != len(want) {
		t.Fatalf("Reasons() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Reasons()[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	o.OnInvalidate(bdf, 0x4000)
	o.OnInvalidate(bdf, 0x5000)
	o.OnFlush()
	if o.InvEntries != 2 || o.InvFlushes != 1 {
		t.Errorf("invalidation stats = %d entries / %d flushes", o.InvEntries, o.InvFlushes)
	}
	// A wild access renders with every field an operator needs to triage it.
	o.VerifyDMA(bdf, 0xdead000, mem.PA(0xdead000), 64, pci.DirFromDevice)
	if o.Violations != 1 || len(o.Events) != 1 {
		t.Fatalf("wild access not flagged: %d violations", o.Violations)
	}
	s := o.Events[0].String()
	for _, frag := range []string{"strict", ReasonUnmapped, "iova=0xdead000", "size=64"} {
		if !strings.Contains(s, frag) {
			t.Errorf("Violation.String() = %q missing %q", s, frag)
		}
	}
}
