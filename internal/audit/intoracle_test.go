package audit

import (
	"testing"

	"riommu/internal/cycles"
	"riommu/internal/intremap"
	"riommu/internal/pci"
)

func wire(t *testing.T, cfg intremap.Config) (*intremap.Remapper, *IntOracle) {
	t.Helper()
	cpu, dev := &cycles.Clock{}, &cycles.Clock{}
	model := cycles.DefaultModel()
	r, err := intremap.New(cfg, cpu, dev, &model)
	if err != nil {
		t.Fatal(err)
	}
	o := NewIntOracle("test", cpu)
	r.SetObserver(o)
	return r, o
}

func TestIntOracleCleanTraffic(t *testing.T) {
	r, o := wire(t, intremap.Config{TableOrder: 4})
	nic := pci.NewBDF(0, 3, 0)
	idx, err := r.Alloc(nic, 0x20, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		r.Deliver(nic, idx, 0, 0)
	}
	if o.Violations != 0 || o.Delivered != 5 || o.Allocs != 1 {
		t.Fatalf("clean traffic flagged: %+v", o.ByReason)
	}
}

func TestIntOracleSpoofBlockedAndCounted(t *testing.T) {
	r, o := wire(t, intremap.Config{TableOrder: 4})
	nic, evil := pci.NewBDF(0, 3, 0), pci.NewBDF(0, 6, 0)
	idx, _ := r.Alloc(nic, 0x20, 0, false)
	if out := r.Deliver(evil, idx, 0, 0); out != intremap.BlockedSourceMismatch {
		t.Fatalf("spoof not blocked: %v", out)
	}
	if o.Violations != 0 || o.Blocked != 1 {
		t.Fatalf("blocked spoof misjudged: violations=%d blocked=%d", o.Violations, o.Blocked)
	}
	if o.ByOutcome[intremap.BlockedSourceMismatch.String()] != 1 {
		t.Fatalf("outcome classification: %+v", o.ByOutcome)
	}
}

func TestIntOracleStaleWindow(t *testing.T) {
	r, o := wire(t, intremap.Config{TableOrder: 4, DeferredInv: true, DeferBatch: 16})
	nic := pci.NewBDF(0, 3, 0)
	idx, _ := r.Alloc(nic, 0x20, 0, false)
	r.Deliver(nic, idx, 0, 0) // warm IEC
	if err := r.Free(idx); err != nil {
		t.Fatal(err)
	}
	if out := r.Deliver(nic, idx, 0, 0); out != intremap.Delivered {
		t.Fatalf("stale replay blocked: %v", out)
	}
	if o.Violations != 1 || o.ByReason[IntReasonStale] != 1 {
		t.Fatalf("stale not flagged: %+v", o.ByReason)
	}
	if o.Events[0].Reason != IntReasonStale {
		t.Fatalf("event: %+v", o.Events[0])
	}
}

func TestIntOraclePassThroughNeverFlags(t *testing.T) {
	r, o := wire(t, intremap.Config{PassThrough: true})
	o.SetPassThrough(true)
	evil := pci.NewBDF(0, 6, 0)
	for i := 0; i < 10; i++ {
		r.Deliver(evil, -1, 0x99, 7)
	}
	if o.Violations != 0 || o.Delivered != 10 {
		t.Fatalf("pass-through flagged: violations=%d delivered=%d", o.Violations, o.Delivered)
	}
}

func TestIntOracleWrongCoreAfterMissedRetarget(t *testing.T) {
	// Simulate an affinity bypass: the oracle sees a retarget the hardware
	// delivery does not honor (constructed by feeding the oracle directly).
	cpu := &cycles.Clock{}
	o := NewIntOracle("test", cpu)
	nic := pci.NewBDF(0, 3, 0)
	o.OnIRTEAlloc(3, intremap.IRTE{Present: true, BDF: nic, Vector: 0x20, DestCore: 2})
	o.OnIntDelivered(intremap.Delivery{Source: nic, Index: 3, Vector: 0x20, Core: 0})
	if o.ByReason[IntReasonWrongCore] != 1 {
		t.Fatalf("wrong-core not flagged: %+v", o.ByReason)
	}
	// Unknown index is wild.
	o.OnIntDelivered(intremap.Delivery{Source: nic, Index: 9, Vector: 0x20, Core: 2})
	if o.ByReason[IntReasonUnmapped] != 1 {
		t.Fatalf("unmapped not flagged: %+v", o.ByReason)
	}
}
