package audit

import (
	"testing"

	"riommu/internal/cycles"
	"riommu/internal/mem"
	"riommu/internal/pci"
)

func s2Oracle() *TenantOracle {
	return NewTenantOracle(&cycles.Clock{})
}

func TestTenantReasonsOrder(t *testing.T) {
	want := []string{ReasonCrossTenant, ReasonUnownedFrame, ReasonStage2Stale, ReasonStage2Mismatch}
	got := TenantReasons()
	if len(got) != len(want) {
		t.Fatalf("TenantReasons = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TenantReasons[%d] = %s, want %s (order is part of the report schema)", i, got[i], want[i])
		}
	}
}

func TestTenantOracleCleanAccess(t *testing.T) {
	o := s2Oracle()
	bdf := pci.NewBDF(1, 0, 0)
	f := mem.PFN(100)
	o.OnOwn(f, 1)
	o.OnS2Map(1, 0x3000, f)
	o.VerifyStage2(1, bdf, 0x3040, f.PA()+0x40, 64, pci.DirBidi)
	if o.Checked != 1 || o.Violations != 0 {
		t.Fatalf("clean access flagged: checked=%d violations=%d %v", o.Checked, o.Violations, o.Events)
	}
}

func TestTenantOracleClasses(t *testing.T) {
	bdf := pci.NewBDF(1, 0, 0)
	cases := []struct {
		name   string
		setup  func(o *TenantOracle)
		gpa    uint64
		hpa    mem.PA
		reason string
		owner  int
	}{
		{
			name: "cross-tenant",
			setup: func(o *TenantOracle) {
				o.OnOwn(200, 2) // the frame belongs to tenant 2
			},
			gpa: 0x5000, hpa: mem.PFN(200).PA(),
			reason: ReasonCrossTenant, owner: 2,
		},
		{
			name:  "unowned-frame",
			setup: func(o *TenantOracle) {},
			gpa:   0x5000, hpa: mem.PFN(300).PA(),
			reason: ReasonUnownedFrame, owner: -1,
		},
		{
			name: "stage2-stale",
			setup: func(o *TenantOracle) {
				o.OnOwn(400, 1) // own frame, but the GPA page is unmapped
			},
			gpa: 0x5000, hpa: mem.PFN(400).PA(),
			reason: ReasonStage2Stale, owner: 1,
		},
		{
			name: "stage2-mismatch-frame",
			setup: func(o *TenantOracle) {
				o.OnOwn(500, 1)
				o.OnOwn(501, 1)
				o.OnS2Map(1, 0x5000, 501) // page maps to 501, hardware said 500
			},
			gpa: 0x5000, hpa: mem.PFN(500).PA(),
			reason: ReasonStage2Mismatch, owner: 1,
		},
		{
			name: "stage2-mismatch-offset",
			setup: func(o *TenantOracle) {
				o.OnOwn(600, 1)
				o.OnS2Map(1, 0x5000, 600)
			},
			gpa: 0x5040, hpa: mem.PFN(600).PA() + 0x80, // offset not preserved
			reason: ReasonStage2Mismatch, owner: 1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := s2Oracle()
			tc.setup(o)
			o.VerifyStage2(1, bdf, tc.gpa, tc.hpa, 64, pci.DirToDevice)
			if o.Violations != 1 || o.ByReason[tc.reason] != 1 {
				t.Fatalf("violations=%d ByReason=%v, want one %s", o.Violations, o.ByReason, tc.reason)
			}
			if len(o.Events) != 1 {
				t.Fatalf("events = %v", o.Events)
			}
			ev := o.Events[0]
			if ev.Reason != tc.reason || ev.Tenant != 1 || ev.Owner != tc.owner || ev.BDF != bdf {
				t.Fatalf("event = %+v", ev)
			}
			wantCross := uint64(0)
			if tc.reason == ReasonCrossTenant {
				wantCross = 1
			}
			if o.CrossTenant != wantCross {
				t.Fatalf("CrossTenant = %d, want %d", o.CrossTenant, wantCross)
			}
		})
	}
}

// TestTenantOracleGroundTruthTracking: disown and unmap must actually
// retract the shadow state, and the event buffer must stay capped.
func TestTenantOracleGroundTruthTracking(t *testing.T) {
	o := s2Oracle()
	bdf := pci.NewBDF(1, 0, 0)
	f := mem.PFN(700)
	o.OnOwn(f, 3)
	o.OnS2Map(3, 0x9000, f)
	o.OnS2Unmap(3, 0x9000)
	o.VerifyStage2(3, bdf, 0x9000, f.PA(), 64, pci.DirFromDevice)
	if o.ByReason[ReasonStage2Stale] != 1 {
		t.Fatalf("unmapped page not flagged stale: %v", o.ByReason)
	}
	o.OnDisown(f)
	o.VerifyStage2(3, bdf, 0x9000, f.PA(), 64, pci.DirFromDevice)
	if o.ByReason[ReasonUnownedFrame] != 1 {
		t.Fatalf("disowned frame not flagged: %v", o.ByReason)
	}
	if o.Owns != 1 || o.Disowns != 1 || o.S2Maps != 1 || o.S2Unmaps != 1 {
		t.Fatalf("ground-truth counters: %+v", o)
	}

	for i := 0; i < 2*tenantEventCap; i++ {
		o.VerifyStage2(3, bdf, uint64(i)<<mem.PageShift, mem.PFN(9000+i).PA(), 64, pci.DirBidi)
	}
	if len(o.Events) != tenantEventCap {
		t.Fatalf("event buffer grew to %d, cap is %d", len(o.Events), tenantEventCap)
	}
}
