// Package audit implements a shadow translation oracle: an independent
// record of every live DMA mapping in the system, maintained purely from the
// OS drivers' map/unmap calls and consulted on every DMA the engine performs.
//
// The oracle is the isolation ground truth the protection hardware is
// measured against. The simulated IOMMUs (baseline and rIOMMU) decide
// whether a DMA *translates*; the oracle decides whether it *should have* —
// the access must fall inside a mapping that is still live, in a direction
// the mapping permits, within the buffer's byte bounds, and translate to the
// physical range the mapping was created with. Any translated access that
// fails one of those checks is an isolation violation: the defer modes'
// stale-IOTLB window (§3.2), the baseline's page-granularity overreach (§4),
// or a dropped invalidation erratum all surface here as structured events.
//
// The oracle is a pure observer: it never charges a virtual clock, never
// consumes randomness, and never alters an access. Enabling it cannot change
// any simulated metric, so audited campaign cells are byte-identical to
// unaudited ones in every legacy column — the determinism argument in
// DESIGN.md §9 rests on this.
package audit

import (
	"fmt"
	"sort"

	"riommu/internal/cycles"
	"riommu/internal/mem"
	"riommu/internal/pci"
)

// Violation reasons, from most to least specific.
const (
	// ReasonStale: the access hit no live mapping but matches a retired one —
	// the translation that served it was stale (the defer-mode window).
	ReasonStale = "stale-translation"
	// ReasonUnmapped: the access hit no live or recently retired mapping.
	ReasonUnmapped = "unmapped"
	// ReasonBounds: the access starts inside a live mapping but runs past the
	// buffer's byte extent (page-granular protection leaking past a sub-page
	// buffer, §4).
	ReasonBounds = "bounds"
	// ReasonDirection: the access direction is not permitted by the mapping.
	ReasonDirection = "direction"
	// ReasonPAMismatch: the access is inside a live mapping but the hardware
	// translated it to a different physical address than the mapping's (a
	// stale or corrupted translation structure).
	ReasonPAMismatch = "pa-mismatch"
)

// Reasons returns every violation reason in canonical report order.
func Reasons() []string {
	return []string{ReasonStale, ReasonUnmapped, ReasonBounds, ReasonDirection, ReasonPAMismatch}
}

// Mapping is one live DMA mapping as the oracle tracks it.
type Mapping struct {
	BDF      pci.BDF
	IOVA     uint64 // base IOVA as returned by the driver's Map
	PA       mem.PA
	Size     uint32
	Dir      pci.Dir
	MapCycle uint64
}

// Retired is a mapping that has been unmapped, kept as a tombstone so stale
// accesses can be distinguished from wild ones (and their window measured).
type Retired struct {
	Mapping
	UnmapCycle uint64
}

// Violation is one recorded isolation breach.
type Violation struct {
	Mode   string
	Reason string
	BDF    pci.BDF
	IOVA   uint64
	Size   uint32
	Dir    pci.Dir
	Cycle  uint64 // CPU cycle at which the offending DMA was verified
	// StaleCycles is, for ReasonStale, how long the mapping had been dead
	// when the access landed (the measured width of the vulnerability
	// window).
	StaleCycles uint64
}

func (v Violation) String() string {
	return fmt.Sprintf("%s %s %s iova=%#x size=%d dir=%s cycle=%d",
		v.Mode, v.Reason, v.BDF, v.IOVA, v.Size, v.Dir, v.Cycle)
}

// retiredCap bounds the per-device tombstone history. It comfortably covers
// a full deferred-invalidation batch (250) plus the in-flight ring churn, so
// every access inside the defer window classifies as stale rather than
// unmapped.
const retiredCap = 1024

// maxEvents bounds the recorded Violation events; totals keep counting past
// the cap.
const maxEvents = 64

// Oracle is the shadow tracker. One oracle audits one simulated system; it
// is not safe for concurrent use (each campaign cell owns its own world).
type Oracle struct {
	mode string
	clk  *cycles.Clock

	// passThrough disables judgment (accesses are counted, never flagged):
	// the none/hwpt/swpt modes map nothing, so every DMA is by construction
	// outside the oracle's live set without being a protection failure.
	passThrough bool

	live    map[pci.BDF]map[uint64]*Mapping
	retired map[pci.BDF][]Retired

	// lastBDF/lastHit cache the mapping the previous chunk landed in. DMA
	// chunks arrive in bursts against the same mapping (a ring's descriptor
	// area, a packet buffer split at a page boundary), and live mappings
	// never overlap, so a cache hit is exactly the mapping the linear scan
	// would find. Invalidated whenever that mapping is retired.
	lastBDF pci.BDF
	lastHit *Mapping

	// Aggregate counters. Checked counts verified DMA chunks; Violations
	// counts every breach (Events holds only the first maxEvents).
	Checked    uint64
	Violations uint64
	ByReason   map[string]uint64
	Events     []Violation

	// Mirror-traffic counters (oracle health / test introspection).
	Maps, Unmaps      uint64
	UnmapMisses       uint64 // unmap of an IOVA the oracle never saw mapped
	InvEntries        uint64 // hardware invalidations observed
	InvFlushes        uint64 // global flushes observed
	LiveNow, LivePeak int
}

// NewOracle creates an oracle for a system in the named protection mode.
// clk is read (never charged) to stamp events with the offending cycle.
func NewOracle(mode string, clk *cycles.Clock) *Oracle {
	return &Oracle{
		mode:     mode,
		clk:      clk,
		live:     make(map[pci.BDF]map[uint64]*Mapping),
		retired:  make(map[pci.BDF][]Retired),
		ByReason: make(map[string]uint64),
	}
}

// Mode returns the protection-mode label events carry.
func (o *Oracle) Mode() string { return o.mode }

// SetPassThrough switches the oracle to counting-only mode (used for the
// unprotected none/hwpt/swpt configurations, which never map anything).
func (o *Oracle) SetPassThrough(v bool) { o.passThrough = v }

// OnMap mirrors a successful driver map. A duplicate base IOVA retires the
// previous mapping first (defensive: a best-effort device recovery can lose
// an unmap).
func (o *Oracle) OnMap(bdf pci.BDF, iova uint64, pa mem.PA, size uint32, dir pci.Dir) {
	o.Maps++
	dev := o.live[bdf]
	if dev == nil {
		dev = make(map[uint64]*Mapping)
		o.live[bdf] = dev
	}
	if old, ok := dev[iova]; ok {
		o.retire(bdf, old)
		o.LiveNow--
	}
	dev[iova] = &Mapping{BDF: bdf, IOVA: iova, PA: pa, Size: size, Dir: dir, MapCycle: o.clk.Now()}
	o.LiveNow++
	if o.LiveNow > o.LivePeak {
		o.LivePeak = o.LiveNow
	}
}

// OnUnmap mirrors a successful driver unmap of the mapping based at iova.
func (o *Oracle) OnUnmap(bdf pci.BDF, iova uint64) {
	o.Unmaps++
	dev := o.live[bdf]
	m, ok := dev[iova]
	if !ok {
		o.UnmapMisses++
		return
	}
	delete(dev, iova)
	o.LiveNow--
	o.retire(bdf, m)
}

func (o *Oracle) retire(bdf pci.BDF, m *Mapping) {
	if m == o.lastHit {
		o.lastHit = nil
	}
	r := append(o.retired[bdf], Retired{Mapping: *m, UnmapCycle: o.clk.Now()})
	// Compact lazily, at twice the cap, so a teardown that retires a whole
	// ring (8K mlx Rx buffers) pays a handful of copies rather than one
	// full-window copy per unmap. Readers only ever need the newest
	// retiredCap entries; the slack between cap and 2*cap just widens the
	// stale-classification window, which errs on the informative side.
	if len(r) >= 2*retiredCap {
		r = append(r[:0:0], r[len(r)-retiredCap:]...)
	}
	o.retired[bdf] = r
}

// OnInvalidate mirrors a hardware-level invalidation (an IOTLB entry for the
// baseline, a ring's rIOTLB entry for the rIOMMU). Purely statistical.
func (o *Oracle) OnInvalidate(pci.BDF, uint64) { o.InvEntries++ }

// OnFlush mirrors a global IOTLB flush. Purely statistical.
func (o *Oracle) OnFlush() { o.InvFlushes++ }

// VerifyDMA judges one translated DMA chunk: the engine calls it after the
// protection hardware accepted the access and resolved it to pa, and the
// oracle independently re-derives what should have happened. Chunks never
// cross a 4 KiB IOVA boundary (dma.Engine splits them), so a chunk falls in
// at most one live mapping.
func (o *Oracle) VerifyDMA(bdf pci.BDF, iova uint64, pa mem.PA, size uint32, dir pci.Dir) {
	o.Checked++
	if o.passThrough {
		return
	}
	var m *Mapping
	if c := o.lastHit; c != nil && o.lastBDF == bdf && iova >= c.IOVA && iova < c.IOVA+uint64(c.Size) {
		m = c
	} else {
		for _, cand := range o.live[bdf] {
			// Live base IOVAs never overlap (distinct allocator ranges /
			// rentries), so at most one mapping contains the chunk start and
			// map-iteration order cannot affect the outcome.
			if iova >= cand.IOVA && iova < cand.IOVA+uint64(cand.Size) {
				m = cand
				break
			}
		}
		if m != nil {
			o.lastBDF, o.lastHit = bdf, m
		}
	}
	if m != nil {
		switch {
		case !m.Dir.Allows(dir):
			o.violate(Violation{Reason: ReasonDirection, BDF: bdf, IOVA: iova, Size: size, Dir: dir})
		case iova+uint64(size) > m.IOVA+uint64(m.Size):
			o.violate(Violation{Reason: ReasonBounds, BDF: bdf, IOVA: iova, Size: size, Dir: dir})
		case pa != m.PA+mem.PA(iova-m.IOVA):
			o.violate(Violation{Reason: ReasonPAMismatch, BDF: bdf, IOVA: iova, Size: size, Dir: dir})
		}
		return
	}
	// No live mapping contains the start: a stale translation if the oracle
	// recently retired one there, wild otherwise.
	if r := o.findRetired(bdf, iova); r != nil {
		o.violate(Violation{
			Reason: ReasonStale, BDF: bdf, IOVA: iova, Size: size, Dir: dir,
			StaleCycles: o.clk.Now() - r.UnmapCycle,
		})
		return
	}
	o.violate(Violation{Reason: ReasonUnmapped, BDF: bdf, IOVA: iova, Size: size, Dir: dir})
}

// findRetired returns the most recently retired mapping containing iova.
func (o *Oracle) findRetired(bdf pci.BDF, iova uint64) *Retired {
	r := o.retired[bdf]
	for i := len(r) - 1; i >= 0; i-- {
		if iova >= r[i].IOVA && iova < r[i].IOVA+uint64(r[i].Size) {
			return &r[i]
		}
	}
	return nil
}

func (o *Oracle) violate(v Violation) {
	v.Mode = o.mode
	v.Cycle = o.clk.Now()
	o.Violations++
	o.ByReason[v.Reason]++
	if len(o.Events) < maxEvents {
		o.Events = append(o.Events, v)
	}
}

// LiveSorted returns the device's live mappings ordered by base IOVA —
// the deterministic view chaos scenarios pick targets from.
func (o *Oracle) LiveSorted(bdf pci.BDF) []Mapping {
	dev := o.live[bdf]
	out := make([]Mapping, 0, len(dev))
	for _, m := range dev {
		out = append(out, *m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].IOVA < out[j].IOVA })
	return out
}

// RecentRetired returns up to n tombstones, newest first.
func (o *Oracle) RecentRetired(bdf pci.BDF, n int) []Retired {
	r := o.retired[bdf]
	if n > len(r) {
		n = len(r)
	}
	out := make([]Retired, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, r[len(r)-1-i])
	}
	return out
}
