package traffic

import (
	"reflect"
	"testing"

	"riommu/internal/device"
	"riommu/internal/sim"
)

func testConfig(mode sim.Mode) Config {
	return Config{
		Mode:            mode,
		Profile:         device.ProfileMLX,
		Seed:            42,
		TableSlots:      48,
		MeanFlowPackets: 2,
		Ticks:           16,
		WarmupTicks:     4,
		MsgsPerTick:     6,
		IncastEvery:     4,
		IncastFan:       12,
		Diurnal:         true,
		Audit:           true,
	}
}

// TestDeterminism: a run is a pure function of its Config — two runs agree
// on every field, including the digests and the full cycle ledger.
func TestDeterminism(t *testing.T) {
	for _, mode := range sim.AllModes() {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			a, err := Run(testConfig(mode))
			if err != nil {
				t.Fatalf("run 1: %v", err)
			}
			b, err := Run(testConfig(mode))
			if err != nil {
				t.Fatalf("run 2: %v", err)
			}
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("results differ between identical runs:\n%+v\n%+v", a, b)
			}
		})
	}
}

// TestKernelBypassAppStream: the application byte stream depends only on
// seed and schedule, so an all-kernel and an all-bypass run of the same
// Config produce the same AppDigest while their mapping histories differ.
func TestKernelBypassAppStream(t *testing.T) {
	for _, mode := range []sim.Mode{sim.Strict, sim.Defer, sim.RIOMMU, sim.None} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			kc := testConfig(mode)
			bc := kc
			bc.BypassPermille = 1000
			k, err := Run(kc)
			if err != nil {
				t.Fatalf("kernel: %v", err)
			}
			b, err := Run(bc)
			if err != nil {
				t.Fatalf("bypass: %v", err)
			}
			if k.AppDigest != b.AppDigest {
				t.Fatalf("app stream diverged: kernel %#x bypass %#x", k.AppDigest, b.AppDigest)
			}
			if k.DataPackets != b.DataPackets {
				t.Fatalf("packet schedule diverged: kernel %d bypass %d", k.DataPackets, b.DataPackets)
			}
			if b.BypassPackets == 0 {
				t.Fatalf("bypass run sent no bypass packets")
			}
			if mode != sim.None && k.MapDigest == b.MapDigest {
				t.Fatalf("mapping history should differ between paths")
			}
		})
	}
}

// TestModesCleanUnderAudit: every mode survives a mixed kernel/bypass run
// with the oracle attached; no mode shows a violation without an attacker.
func TestModesCleanUnderAudit(t *testing.T) {
	for _, mode := range sim.AllModes() {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			cfg := testConfig(mode)
			cfg.BypassPermille = 300
			res, err := Run(cfg)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if res.AuditChecked == 0 {
				t.Fatalf("oracle checked nothing")
			}
			if res.AuditViolations != 0 {
				t.Fatalf("%d violations without an attacker", res.AuditViolations)
			}
			if res.Opens == 0 || res.Closes == 0 {
				t.Fatalf("no churn: opens=%d closes=%d", res.Opens, res.Closes)
			}
			if res.Opens != res.Closes {
				t.Fatalf("table must stay full: opens=%d closes=%d", res.Opens, res.Closes)
			}
			if res.Gbps <= 0 {
				t.Fatalf("non-positive throughput %v", res.Gbps)
			}
		})
	}
}

// TestChurnCostOrdering pins the collapse the figS2 sweep renders: at
// one-packet flows (every packet a map/unmap storm), strict must burn
// at least 3x the cycles of rIOMMU on the kernel path, and the bypass
// path must beat strict-kernel by at least 3x throughput.
func TestChurnCostOrdering(t *testing.T) {
	run := func(mode sim.Mode, bypass int) Result {
		t.Helper()
		cfg := testConfig(mode)
		cfg.MeanFlowPackets = 1
		cfg.BypassPermille = bypass
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%v bypass=%d: %v", mode, bypass, err)
		}
		return res
	}
	strict := run(sim.Strict, 0)
	riommu := run(sim.RIOMMU, 0)
	strictBypass := run(sim.Strict, 1000)
	t.Logf("strict kernel: C=%.0f gbps=%.2f  riommu kernel: C=%.0f gbps=%.2f  strict bypass: C=%.0f gbps=%.2f",
		strict.CyclesPerPkt, strict.Gbps, riommu.CyclesPerPkt, riommu.Gbps,
		strictBypass.CyclesPerPkt, strictBypass.Gbps)
	if strict.CyclesPerPkt < 3*riommu.CyclesPerPkt {
		t.Errorf("strict C %.0f not >= 3x riommu C %.0f under max churn",
			strict.CyclesPerPkt, riommu.CyclesPerPkt)
	}
	if strictBypass.Gbps < 3*strict.Gbps {
		t.Errorf("bypass gbps %.2f not >= 3x strict kernel gbps %.2f",
			strictBypass.Gbps, strict.Gbps)
	}
}

// TestConfigValidation: bad configs are rejected, defaults fill zeroes.
func TestConfigValidation(t *testing.T) {
	if _, err := NewEngine(Config{Mode: sim.Strict, TableSlots: -1}); err == nil {
		t.Fatalf("negative TableSlots accepted")
	}
	if _, err := NewEngine(Config{Mode: sim.Strict, BypassPermille: 1001}); err == nil {
		t.Fatalf("BypassPermille > 1000 accepted")
	}
	e, err := NewEngine(Config{Mode: sim.RIOMMU})
	if err != nil {
		t.Fatalf("defaulted config: %v", err)
	}
	if e.cfg.TableSlots == 0 || e.cfg.MeanFlowPackets == 0 || e.cfg.Profile.Name == "" {
		t.Fatalf("defaults not applied: %+v", e.cfg)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

// TestBypassRearmCycle drives an all-bypass fleet far enough that the
// persistent pool's periodic rearm (unmap + remap of one buffer every
// bypassRearmEvery packets) fires several times: the polling path is not
// allowed to hold translations forever without ever paying an
// invalidation, and the rearm traffic must stay violation-free under the
// oracle in both the baseline and rIOMMU mapping paths.
func TestBypassRearmCycle(t *testing.T) {
	for _, mode := range []sim.Mode{sim.Strict, sim.RIOMMU} {
		cfg := Config{
			Mode:            mode,
			Profile:         device.ProfileMLX,
			Seed:            7,
			TableSlots:      8,
			MeanFlowPackets: 1 << 20, // no churn noise: pure bypass stream
			BypassPermille:  1000,
			Ticks:           40,
			MsgsPerTick:     8,
			IncastEvery:     6,
			IncastFan:       4,
			Audit:           true,
		}
		r, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if r.BypassPackets < 2*bypassRearmEvery {
			t.Fatalf("%s: only %d bypass packets — the rearm cycle never fired twice", mode, r.BypassPackets)
		}
		if r.AuditViolations != 0 {
			t.Errorf("%s: %d violations from pool rearm", mode, r.AuditViolations)
		}
	}
}

// TestDrainQuiesces: after an explicit Drain the engine has no pending TX
// backlog or unreaped RX, so a second Drain is a no-op and teardown is
// clean even mid-schedule.
func TestDrainQuiesces(t *testing.T) {
	e, err := NewEngine(testConfig(sim.RIOMMU))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := e.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Drain(); err != nil {
		t.Fatal(err)
	}
	if e.txPend != 0 || e.rxPend != 0 {
		t.Fatalf("drain left txPend=%d rxPend=%d", e.txPend, e.rxPend)
	}
	if err := e.Drain(); err != nil {
		t.Fatalf("idle drain: %v", err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
}
