package traffic

// The kernel-bypass data path: a DPDK-style buffer pool mapped once at
// engine init (persistent user-level mappings, §5.3 promoted to a stack).
// A bypass packet costs only a busy-poll CPU charge; the DMA itself runs
// on the device clock through whatever translation hardware the mode
// provides, so the oracle still audits every access. The rearm process
// (one pool buffer unmapped and remapped every bypassRearmEvery packets)
// keeps each mode's invalidation cost on the books, amortized the way a
// real bypass stack amortizes pool maintenance.

import (
	"bytes"
	"fmt"

	"riommu/internal/cycles"
	"riommu/internal/mem"
	"riommu/internal/pci"
)

const (
	bypassBufs     = 64
	bypassBufBytes = 2048
)

type bypassPool struct {
	pa       [bypassBufs]mem.PA
	iova     [bypassBufs]uint64
	next     int // round-robin TX buffer cursor
	rxNext   int // round-robin RX buffer cursor
	rearmDue int
	rearmIdx int
}

func (e *Engine) initBypass() error {
	for i := 0; i < bypassBufs; i++ {
		pfn, err := e.sys.Mem.AllocFrame()
		if err != nil {
			return err
		}
		e.bp.pa[i] = pfn.PA()
		if err := e.mapBypass(i); err != nil {
			return err
		}
	}
	return nil
}

func (e *Engine) mapBypass(i int) error {
	if e.slot != nil {
		iova, err := e.slot.MapAt(ringBypass, uint32(i), e.bp.pa[i], bypassBufBytes, pci.DirBidi)
		if err != nil {
			return err
		}
		e.noteMap('M', ringBypass, iova, bypassBufBytes, uint64(pci.DirBidi))
		e.bp.iova[i] = iova
		return nil
	}
	iova, err := e.mp.Map(ringBypass, e.bp.pa[i], bypassBufBytes, pci.DirBidi)
	if err != nil {
		return err
	}
	e.bp.iova[i] = iova
	return nil
}

func (e *Engine) closeBypass() error {
	var firstErr error
	for i := 0; i < bypassBufs; i++ {
		if e.bp.iova[i] == 0 && e.bp.pa[i] == 0 {
			continue
		}
		if err := e.mp.Unmap(ringBypass, e.bp.iova[i], bypassBufBytes, i == bypassBufs-1); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// bypassTx transmits one packet on the bypass path: busy-poll charge, copy
// into the next pool buffer, then the device fetches it through the IOMMU
// — verified byte-for-byte against what was written.
func (e *Engine) bypassTx(p []byte) error {
	e.sys.CPU.Charge(cycles.Stack, e.pollCy)
	b := &e.bp
	i := b.next
	b.next = (b.next + 1) % bypassBufs
	if err := e.sys.Mem.Write(b.pa[i], p); err != nil {
		return err
	}
	rb := e.readback[:len(p)]
	if err := e.sys.Eng.Read(BDF, b.iova[i], rb); err != nil {
		return err
	}
	if !bytes.Equal(rb, p) {
		return fmt.Errorf("traffic: bypass readback mismatch on buffer %d", i)
	}
	return e.bypassRearm()
}

// bypassRx receives one packet on the bypass path: the device writes into
// the next pool buffer through the IOMMU (the poll charge is the caller's).
func (e *Engine) bypassRx(p []byte) error {
	b := &e.bp
	i := b.rxNext
	b.rxNext = (b.rxNext + 1) % bypassBufs
	return e.sys.Eng.Write(BDF, b.iova[i], p)
}

func (e *Engine) bypassRearm() error {
	b := &e.bp
	b.rearmDue++
	if b.rearmDue < bypassRearmEvery {
		return nil
	}
	b.rearmDue = 0
	i := b.rearmIdx
	b.rearmIdx = (b.rearmIdx + 1) % bypassBufs
	if err := e.mp.Unmap(ringBypass, b.iova[i], bypassBufBytes, true); err != nil {
		return err
	}
	return e.mapBypass(i)
}
