package traffic

import (
	"testing"

	"riommu/internal/audit"
	"riommu/internal/chaos"
	"riommu/internal/device"
	"riommu/internal/sim"
)

// fuzzSlots keeps the fuzz engine's connection table tiny so generated
// inputs hammer the same slots and IOVAs from the free stack get reused.
const fuzzSlots = 8

// FuzzConnectionChurn interleaves traffic ticks, forced connection churn,
// incast bursts, hostile replay of retired mappings, and deferred-queue
// flushes, and holds every mode to its isolation contract against the audit
// oracle: the strict-invalidation modes (strict, rIOMMU) must show zero
// violations no matter the interleaving, while the deferred modes may show
// only stale-translation hits — the §2.2 vulnerability window — bounded by
// the attacker's attempt count, and none at all once the pending queue has
// been flushed.
func FuzzConnectionChurn(f *testing.F) {
	f.Add(uint64(1), []byte{0, 1, 2, 3, 4})
	f.Add(uint64(42), []byte{3, 3, 1, 0, 3, 4, 3})
	f.Add(uint64(0xC0FFEE), []byte{6, 11, 3, 0, 2, 8, 13, 3, 4, 1})
	f.Add(uint64(7), []byte{0})
	f.Fuzz(func(t *testing.T, seed uint64, ops []byte) {
		if len(ops) > 48 {
			ops = ops[:48]
		}
		for _, mode := range []sim.Mode{sim.Strict, sim.RIOMMU, sim.Defer, sim.DeferPlus} {
			e, err := NewEngine(Config{
				Mode:            mode,
				Profile:         device.ProfileMLX,
				Seed:            seed,
				TableSlots:      fuzzSlots,
				MeanFlowPackets: 3,
				BypassPermille:  250,
				Ticks:           4,
				MsgsPerTick:     3,
				IncastEvery:     3,
				IncastFan:       4,
				Audit:           true,
			})
			if err != nil {
				t.Fatalf("%s: NewEngine: %v", mode, err)
			}
			sys := e.System()
			h := chaos.NewHostile(sys.Eng, sys.Auditor, BDF)
			for _, op := range ops {
				switch op % 5 {
				case 0:
					err = e.Tick()
				case 1:
					err = e.Churn(int(op/5) % fuzzSlots)
				case 2:
					err = e.Incast(4)
				case 3:
					h.ReplayRetired(2)
				case 4:
					err = e.FlushDeferred()
				}
				if err != nil {
					t.Fatalf("%s: op %d: %v", mode, op%5, err)
				}
			}

			orc := sys.Auditor
			if mode.Safe() {
				if orc.Violations != 0 {
					t.Errorf("%s: %d violations (%v) in a gap-free mode under %d hostile attempts",
						mode, orc.Violations, orc.ByReason, h.Stats.Attempts)
				}
			} else {
				if n := orc.Violations - orc.ByReason[audit.ReasonStale]; n != 0 {
					t.Errorf("%s: %d non-stale violations (%v): deferral only opens the stale window",
						mode, n, orc.ByReason)
				}
				if orc.Violations > h.Stats.Attempts {
					t.Errorf("%s: %d violations exceed the attacker's %d attempts",
						mode, orc.Violations, h.Stats.Attempts)
				}
			}

			// Once quiesced and flushed, the stale window is closed: another
			// replay volley must be contained in every mode.
			if err := e.Drain(); err != nil {
				t.Fatalf("%s: drain: %v", mode, err)
			}
			if err := e.FlushDeferred(); err != nil {
				t.Fatalf("%s: flush: %v", mode, err)
			}
			before := orc.Violations
			h.ReplayRetired(4)
			if orc.Violations != before {
				t.Errorf("%s: replay landed %d violations after the pending queue was flushed",
					mode, orc.Violations-before)
			}
			if err := e.Close(); err != nil {
				t.Fatalf("%s: close: %v", mode, err)
			}
		}
	})
}
