// Package traffic is the fleet-scale datacenter traffic engine: a
// connection table under seeded churn (short-lived flows opening and
// closing drive the map/unmap storms that are the paper's worst case for
// every IOMMU design), heavy-tailed request-size mixes, RPC fan-in incast
// bursts, and diurnal load curves — all advanced on the virtual
// cycles.Clock from splitmix64 streams so a run is a pure function of its
// Config and byte-reproducible across hosts, worker counts, and reruns.
//
// Two data paths are selectable per connection:
//
//   - Kernel path: every data packet crosses the socket stack and the NIC
//     driver's per-DMA map/unmap discipline (§2.1), and every flow open
//     maps a per-flow steering buffer that its close unmaps — so flow
//     churn hits the IOVA allocators and invalidation machinery directly.
//   - Bypass path: DPDK-style user-level polling (§5.3 promoted to a
//     stack): a buffer pool is mapped once at engine init and DMA runs
//     against those persistent mappings with only a busy-poll CPU charge
//     per packet; a low-rate rearm process remaps pool buffers so each
//     mode's invalidation cost still appears, just amortized.
//
// The application byte stream (what the flows send and receive) depends
// only on the seed and schedule, never on the path or protection mode, so
// kernel and bypass runs of the same Config produce identical AppDigests
// while their cycle ledgers and mapping histories diverge — exactly the
// property check.TestTrafficEquivalence pins.
package traffic

import (
	"bytes"
	"fmt"

	"riommu/internal/baseline"
	"riommu/internal/core"
	"riommu/internal/cycles"
	"riommu/internal/device"
	"riommu/internal/driver"
	"riommu/internal/iova"
	"riommu/internal/mem"
	"riommu/internal/netstack"
	"riommu/internal/pci"
	"riommu/internal/perfmodel"
	"riommu/internal/sim"
)

// BDF is the PCI identity of the traffic engine's NIC.
var BDF = pci.NewBDF(0, 7, 0)

const (
	// ringSteer is the rIOMMU flat table holding per-flow steering-buffer
	// translations, indexed by connection-table slot (MapAt, the §4
	// out-of-order extension — flows close in arbitrary order).
	ringSteer = 3
	// ringBypass is the rIOMMU flat table holding the persistent bypass
	// pool translations.
	ringBypass = 4

	// steerMaxPages bounds the heavy-tailed per-flow steering buffer.
	steerMaxPages = 4

	// closeBurst batches steering-table rIOTLB invalidations across flow
	// closes the way completion bursts batch them across unmaps (§2.3):
	// the end-of-burst marker goes on every closeBurst-th close. Baseline
	// modes ignore the marker (strict invalidates per page, defer queues).
	closeBurst = 16

	// Engine-level CPU costs (cycles, scaled by the profile's CostScale):
	// driver-level flow setup/teardown around each open/close, and the
	// §5.3-style busy-poll cost a bypass packet pays instead of the stack.
	openCostCycles  = 420
	closeCostCycles = 260
	pollCostCycles  = 190

	// bypassRearmEvery is the bypass pool rearm period: every N-th bypass
	// packet unmaps and remaps one pool buffer, keeping per-mode
	// invalidation costs visible on the bypass path without per-packet
	// map/unmap.
	bypassRearmEvery = 256
)

// Path selects a connection's data path.
type Path uint8

const (
	// PathKernel sends through the socket stack and the NIC driver's
	// map-before-DMA/unmap-after-DMA discipline.
	PathKernel Path = iota
	// PathBypass busy-polls user-level rings over persistent mappings.
	PathBypass
)

// Config fully determines a traffic run; equal Configs produce
// byte-identical Results.
type Config struct {
	Mode    sim.Mode
	Profile device.NICProfile
	Seed    uint64

	// TableSlots is the number of live connections simulated (the
	// connection table is kept full: every close immediately opens a
	// successor flow, the fleet's steady state).
	TableSlots int
	// MeanFlowPackets is the churn knob: the mean number of data packets a
	// flow sends before closing. 1 means every packet closes its flow —
	// the map/unmap storm regime.
	MeanFlowPackets int
	// BypassPermille is the per-mille of flows opened on the bypass path
	// (0 = all kernel, 1000 = all bypass).
	BypassPermille int

	// Schedule shape.
	Ticks       int // measured scheduler ticks
	WarmupTicks int // ticks run before the clocks reset
	MsgsPerTick int // base messages per tick (modulated by Diurnal)
	IncastEvery int // every N ticks, an RPC fan-in burst (0 disables)
	IncastFan   int // responses per incast burst
	Diurnal     bool

	// Audit attaches the shadow translation oracle to every layer.
	Audit bool
}

func (c Config) withDefaults() Config {
	if c.Profile.Name == "" {
		c.Profile = device.ProfileMLX
	}
	if c.TableSlots == 0 {
		c.TableSlots = 64
	}
	if c.MeanFlowPackets == 0 {
		c.MeanFlowPackets = 64
	}
	if c.Ticks == 0 {
		c.Ticks = 32
	}
	if c.MsgsPerTick == 0 {
		c.MsgsPerTick = 8
	}
	if c.IncastEvery > 0 && c.IncastFan == 0 {
		c.IncastFan = 16
	}
	return c
}

// Result is everything a run measures, plus the digests that make two runs
// comparable byte-for-byte.
type Result struct {
	// AppDigest is the FNV-1a digest of the application byte stream (every
	// payload sent or received, tagged with its slot). It depends only on
	// seed and schedule — never on mode or path.
	AppDigest uint64
	// MapDigest is the FNV-1a digest of the protection-boundary mapping
	// history (op, ring, IOVA, size, direction, burst marker per event);
	// MapEvents counts them.
	MapDigest uint64
	MapEvents uint64

	DataPackets   uint64 // measured data packets (kernel + bypass)
	RxPackets     uint64 // acks and incast responses received
	BypassPackets uint64
	Opens, Closes uint64 // flow churn during the measured window
	Incasts       uint64

	CyclesPerPkt float64
	Gbps         float64
	Cycles       cycles.Snapshot // per-component CPU ledger

	AuditChecked    uint64
	AuditViolations uint64

	// Allocator introspection (baseline modes only): the Linux allocator's
	// worst gap-search walk, and the constant allocator's fresh-carve
	// high-water mark (pages never recycled from a free stack).
	MaxAllocVisits uint64
	CarvedPages    uint64
}

type conn struct {
	path       Path
	remaining  int
	payloadRNG uint64
	steerIOVA  uint64
	steerSize  uint32
}

// Engine is a running traffic world. Most callers use Run; the step-wise
// surface (Tick, Churn, Incast, FlushDeferred) exists for the fuzzer and
// property tests to drive adversarial interleavings.
type Engine struct {
	cfg  Config
	sys  *sim.System
	drv  *driver.NICDriver
	prot driver.Protection // raw protection (audited internally)
	mp   meteredProt       // digest-recording wrapper the driver uses
	slot *core.Driver      // non-nil in rIOMMU modes: slot-indexed MapAt

	conns   []conn
	steerPA []mem.PA // per-slot steering backing frames (steerMaxPages each)
	bp      bypassPool

	// Netstack-derived pacing constants.
	mss     int
	stackCy uint64
	txBurst int
	ackEv   int
	ackReap int
	openCy  uint64
	closeCy uint64
	pollCy  uint64

	rng      uint64 // schedule stream
	tick     int
	cursor   int
	flowSeq  uint64
	txPend   int
	ackDue   int
	rxPend   int
	steerSeq uint64 // closes since start, for closeBurst marking

	scratch  []byte
	readback []byte
	ackFrame []byte

	appDigest uint64
	mapDigest uint64
	mapEvents uint64
	pkts      uint64
	rxPkts    uint64
	bypassPk  uint64
	opens     uint64
	closes    uint64
	incasts   uint64
}

// meteredProt folds every protection-boundary event into the engine's
// mapping-history digest. It charges nothing and consumes no randomness,
// so a metered run's cycle ledger is identical to an unmetered one's.
type meteredProt struct {
	e *Engine
}

func (p meteredProt) Map(ring int, pa mem.PA, size uint32, dir pci.Dir) (uint64, error) {
	iova, err := p.e.prot.Map(ring, pa, size, dir)
	if err == nil {
		p.e.noteMap('M', ring, iova, size, uint64(dir))
	}
	return iova, err
}

func (p meteredProt) Unmap(ring int, iova uint64, size uint32, endOfBurst bool) error {
	err := p.e.prot.Unmap(ring, iova, size, endOfBurst)
	if err == nil {
		var eob uint64
		if endOfBurst {
			eob = 1
		}
		p.e.noteMap('U', ring, iova, size, eob)
	}
	return err
}

func (p meteredProt) MapBatch(ring int, pas []mem.PA, size uint32, dir pci.Dir, iovas []uint64) (int, error) {
	n, err := driver.MapBatch(p.e.prot, ring, pas, size, dir, iovas)
	for i := 0; i < n; i++ {
		p.e.noteMap('M', ring, iovas[i], size, uint64(dir))
	}
	return n, err
}

func (e *Engine) noteMap(op byte, ring int, iova uint64, size uint32, extra uint64) {
	h := fnvByte(e.mapDigest, op)
	h = fnv64(h, uint64(ring))
	h = fnv64(h, iova)
	h = fnv64(h, uint64(size))
	e.mapDigest = fnv64(h, extra)
	e.mapEvents++
}

// NewEngine builds the world: system, NIC driver, steering-buffer backing,
// bypass pool, and a full connection table.
func NewEngine(cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	if cfg.TableSlots < 1 {
		return nil, fmt.Errorf("traffic: TableSlots must be >= 1")
	}
	if cfg.BypassPermille < 0 || cfg.BypassPermille > 1000 {
		return nil, fmt.Errorf("traffic: BypassPermille %d out of [0,1000]", cfg.BypassPermille)
	}
	// The fleet driver posts page-granular target buffers (DPDK-style
	// page-padded mbufs): under churn, a retired buffer's IOVA page is then
	// never partially re-covered by an unrelated buffer, so even the
	// page-granular baselines keep their replay containment. The §4
	// sub-page gap stays exercised where it belongs — the chaos campaign's
	// shared-page pool — not smeared across every churn cell.
	profile := cfg.Profile
	profile.BufferBytes = uint32(mem.PageSize)
	memPages := uint64(1<<15) + uint64(cfg.TableSlots)*steerMaxPages + bypassBufs
	sys, err := sim.NewSystemScaled(cfg.Mode, memPages, profile.CostScale)
	if err != nil {
		return nil, err
	}
	e := &Engine{cfg: cfg, sys: sys, rng: cfg.Seed ^ 0x7261666669636b31}
	if cfg.Audit {
		sys.EnableAudit()
	}
	ringSizes := append(driver.RIOMMURingSizes(profile),
		uint32(cfg.TableSlots), uint32(bypassBufs))
	prot, err := sys.ProtectionFor(BDF, ringSizes)
	if err != nil {
		sys.Close()
		return nil, err
	}
	e.prot = prot
	if d, ok := prot.(*core.Driver); ok {
		e.slot = d
	}
	e.mp = meteredProt{e}
	drv, _, err := driver.NewNICDriver(sys.Mem, e.mp, sys.Eng, profile, BDF)
	if err != nil {
		sys.Close()
		return nil, err
	}
	e.drv = drv

	params := netstack.DefaultParams(profile)
	e.mss = params.MSS
	e.stackCy = params.StackCyclesPerPacket
	e.txBurst = params.TxBurst
	e.ackEv = params.AckEvery
	e.ackReap = params.AckReapEvery
	scale := func(c uint64) uint64 {
		return uint64(float64(c) * cfg.Profile.CostScale)
	}
	e.openCy = scale(openCostCycles)
	e.closeCy = scale(closeCostCycles)
	e.pollCy = scale(pollCostCycles)

	e.scratch = make([]byte, 64*1024)
	e.readback = make([]byte, bypassBufBytes)
	e.ackFrame = bytes.Repeat([]byte{0xac}, params.AckBytes)

	e.steerPA = make([]mem.PA, cfg.TableSlots)
	for i := range e.steerPA {
		pfn, err := sys.Mem.AllocFrames(steerMaxPages)
		if err != nil {
			sys.Close()
			return nil, err
		}
		e.steerPA[i] = pfn.PA()
	}
	if err := e.initBypass(); err != nil {
		sys.Close()
		return nil, err
	}
	e.conns = make([]conn, cfg.TableSlots)
	for i := range e.conns {
		if err := e.openFlow(i); err != nil {
			sys.Close()
			return nil, err
		}
	}
	return e, nil
}

// System exposes the underlying simulated system (fuzzers attach hostile
// devices to it).
func (e *Engine) System() *sim.System { return e.sys }

func (e *Engine) rand() uint64 { return splitmix64(&e.rng) }

// openFlow starts a fresh flow in slot: draws length, path, and steering
// size (the draws are path-independent so the application byte stream is
// too), charges setup, and maps the steering buffer on the kernel path.
func (e *Engine) openFlow(slot int) error {
	e.opens++
	e.flowSeq++
	c := &e.conns[slot]
	c.payloadRNG = e.cfg.Seed ^ uint64(slot)<<40 ^ e.flowSeq*0x9e3779b97f4a7c15
	c.remaining = e.drawFlowLen()
	pages := e.drawSteerPages()
	c.path = PathKernel
	if int(e.rand()%1000) < e.cfg.BypassPermille {
		c.path = PathBypass
	}
	e.sys.CPU.Charge(cycles.Stack, e.openCy)
	c.steerSize = 0
	if c.path == PathKernel {
		size := uint32(pages) << mem.PageShift
		iova, err := e.mapSteer(slot, size)
		if err != nil {
			return err
		}
		c.steerIOVA, c.steerSize = iova, size
	}
	return nil
}

func (e *Engine) closeFlow(slot int) error {
	e.closes++
	c := &e.conns[slot]
	e.sys.CPU.Charge(cycles.Stack, e.closeCy)
	if c.steerSize > 0 {
		e.steerSeq++
		eob := e.steerSeq%closeBurst == 0
		if err := e.unmapSteer(c.steerIOVA, c.steerSize, eob); err != nil {
			return err
		}
		c.steerSize = 0
	}
	return nil
}

func (e *Engine) mapSteer(slot int, size uint32) (uint64, error) {
	if e.slot != nil {
		iova, err := e.slot.MapAt(ringSteer, uint32(slot), e.steerPA[slot], size, pci.DirFromDevice)
		if err == nil {
			e.noteMap('M', ringSteer, iova, size, uint64(pci.DirFromDevice))
		}
		return iova, err
	}
	return e.mp.Map(ringSteer, e.steerPA[slot], size, pci.DirFromDevice)
}

func (e *Engine) unmapSteer(iova uint64, size uint32, eob bool) error {
	return e.mp.Unmap(ringSteer, iova, size, eob)
}

// Tick advances the schedule one step: the diurnal-modulated message quota
// round-robins over the table, and every IncastEvery-th tick ends in a
// fan-in burst.
func (e *Engine) Tick() error {
	t := e.tick
	e.tick++
	msgs := e.cfg.MsgsPerTick
	if e.cfg.Diurnal {
		msgs = e.cfg.MsgsPerTick * diurnalLoad(t) / diurnalPeak
		if msgs < 1 {
			msgs = 1
		}
	}
	for m := 0; m < msgs; m++ {
		slot := e.cursor
		e.cursor = (e.cursor + 1) % len(e.conns)
		if err := e.sendMessage(slot); err != nil {
			return err
		}
	}
	if e.cfg.IncastEvery > 0 && (t+1)%e.cfg.IncastEvery == 0 {
		return e.Incast(e.cfg.IncastFan)
	}
	return nil
}

// sendMessage segments one heavy-tailed request onto slot's flow. The
// message is truncated if the flow's budget runs out mid-message — the
// short-lived-flow case — and the close immediately opens a successor.
func (e *Engine) sendMessage(slot int) error {
	size := e.drawMsgBytes()
	for size > 0 {
		n := e.mss
		if size < n {
			n = size
		}
		size -= n
		closed, err := e.sendPacket(slot, n)
		if err != nil {
			return err
		}
		if closed {
			break
		}
	}
	return nil
}

func (e *Engine) sendPacket(slot int, n int) (closed bool, err error) {
	c := &e.conns[slot]
	p := e.scratch[:n]
	fillPayload(&c.payloadRNG, p)
	e.appDigest = fnvBytes(fnv64(e.appDigest, uint64(slot)), p)
	if c.path == PathBypass {
		e.bypassPk++
		err = e.bypassTx(p)
	} else {
		e.sys.CPU.Charge(cycles.Stack, e.stackCy)
		err = e.kernelTx(p)
	}
	e.pkts++
	if err != nil {
		return false, err
	}
	c.remaining--
	if c.remaining <= 0 {
		if err := e.closeFlow(slot); err != nil {
			return true, err
		}
		return true, e.openFlow(slot)
	}
	return false, nil
}

func (e *Engine) kernelTx(p []byte) error {
	if err := e.drv.Send(p); err != nil {
		// Ring full: process the backlog and retry once.
		if derr := e.drainTx(); derr != nil {
			return derr
		}
		if err := e.drv.Send(p); err != nil {
			return err
		}
	}
	e.txPend++
	if e.txPend >= e.txBurst {
		if err := e.drainTx(); err != nil {
			return err
		}
	}
	e.ackDue++
	if e.ackDue >= e.ackEv {
		e.ackDue = 0
		if err := e.drv.Deliver(e.ackFrame); err != nil {
			return err
		}
		e.rxPkts++
		e.rxPend++
		if e.rxPend >= e.ackReap {
			e.rxPend = 0
			if _, err := e.drv.ReapRx(); err != nil {
				return err
			}
		}
	}
	return nil
}

func (e *Engine) drainTx() error {
	if e.txPend == 0 {
		return nil
	}
	if _, err := e.drv.PumpTx(e.txPend); err != nil {
		return err
	}
	if _, err := e.drv.ReapTx(); err != nil {
		return err
	}
	e.txPend = 0
	return nil
}

// Incast delivers a fan-in burst of RPC responses to random connections —
// the many-servers-answer-at-once pattern that fills the Rx ring and makes
// the driver unmap/remap a whole burst at once.
func (e *Engine) Incast(fan int) error {
	e.incasts++
	for f := 0; f < fan; f++ {
		slot := int(e.rand() % uint64(len(e.conns)))
		n := 256 + int(e.rand()%uint64(e.mss-256))
		p := e.scratch[:n]
		fillPayload(&e.rng, p)
		e.appDigest = fnvBytes(fnv64(e.appDigest, uint64(slot)), p)
		c := &e.conns[slot]
		if c.path == PathBypass {
			e.sys.CPU.Charge(cycles.Stack, e.pollCy)
			if err := e.bypassRx(p); err != nil {
				return err
			}
		} else {
			e.sys.CPU.Charge(cycles.Stack, e.stackCy)
			if err := e.drv.Deliver(p); err != nil {
				return err
			}
			e.rxPend++
		}
		e.rxPkts++
	}
	if e.rxPend > 0 {
		e.rxPend = 0
		if _, err := e.drv.ReapRx(); err != nil {
			return err
		}
	}
	return nil
}

// Churn force-closes the flow in slot (as if the peer reset it) and opens
// a successor — the fuzzer's handle on open/close interleavings.
func (e *Engine) Churn(slot int) error {
	if slot < 0 || slot >= len(e.conns) {
		return fmt.Errorf("traffic: churn slot %d out of range", slot)
	}
	if err := e.closeFlow(slot); err != nil {
		return err
	}
	return e.openFlow(slot)
}

// FlushDeferred forces the deferred-invalidation queue to drain (a no-op
// outside the defer modes), closing any open stale window.
func (e *Engine) FlushDeferred() error {
	if bd, ok := e.prot.(*baseline.Driver); ok {
		return bd.FlushPending()
	}
	return nil
}

// Drain processes all in-flight TX and RX work.
func (e *Engine) Drain() error {
	if err := e.drainTx(); err != nil {
		return err
	}
	if e.rxPend > 0 {
		e.rxPend = 0
		if _, err := e.drv.ReapRx(); err != nil {
			return err
		}
	}
	return nil
}

func (e *Engine) resetCounters() {
	e.pkts, e.rxPkts, e.bypassPk = 0, 0, 0
	e.opens, e.closes, e.incasts = 0, 0, 0
}

// Finish drains and assembles the Result. The cycle snapshot is taken
// before teardown so the ledger covers exactly the measured window.
func (e *Engine) Finish() (Result, error) {
	if err := e.Drain(); err != nil {
		return Result{}, err
	}
	r := Result{
		AppDigest:     e.appDigest,
		MapDigest:     e.mapDigest,
		MapEvents:     e.mapEvents,
		DataPackets:   e.pkts,
		RxPackets:     e.rxPkts,
		BypassPackets: e.bypassPk,
		Opens:         e.opens,
		Closes:        e.closes,
		Incasts:       e.incasts,
		Cycles:        e.sys.CPU.Snapshot(),
	}
	pkts := e.pkts
	if pkts == 0 {
		pkts = 1
	}
	r.CyclesPerPkt = float64(e.sys.CPU.Now()) / float64(pkts)
	rate := perfmodel.PacketsPerSecond(e.sys.Model, r.CyclesPerPkt, e.cfg.Profile.LineRateGbps)
	r.Gbps = rate * perfmodel.WireBytes * 8 / 1e9
	if orc := e.sys.Auditor; orc != nil {
		r.AuditChecked = orc.Checked
		r.AuditViolations = orc.Violations
	}
	if bd, ok := e.prot.(*baseline.Driver); ok {
		switch a := bd.Allocator().(type) {
		case *iova.LinuxAllocator:
			r.MaxAllocVisits = a.MaxAllocVisits
		case *iova.ConstAllocator:
			r.CarvedPages = a.Carved()
		}
	}
	return r, nil
}

// Close tears the world down: live steering buffers, the bypass pool, the
// NIC driver's rings and pool, then the system itself.
func (e *Engine) Close() error {
	var firstErr error
	keep := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	keep(e.Drain())
	for i := range e.conns {
		c := &e.conns[i]
		if c.steerSize > 0 {
			keep(e.unmapSteer(c.steerIOVA, c.steerSize, true))
			c.steerSize = 0
		}
	}
	keep(e.closeBypass())
	keep(e.FlushDeferred())
	keep(e.drv.Teardown())
	e.sys.Close()
	return firstErr
}

// Run executes the full schedule: warmup, clock reset, measured ticks,
// drain, Result.
func Run(cfg Config) (Result, error) {
	e, err := NewEngine(cfg)
	if err != nil {
		return Result{}, err
	}
	res, err := e.RunSchedule()
	if cerr := e.Close(); err == nil {
		err = cerr
	}
	return res, err
}

// RunSchedule executes the configured schedule on a live engine (warmup,
// clock reset, measured ticks, Finish) without closing it — callers that
// need post-run introspection (the audit oracle, allocator state) use this
// and Close themselves.
func (e *Engine) RunSchedule() (Result, error) {
	for t := 0; t < e.cfg.WarmupTicks; t++ {
		if err := e.Tick(); err != nil {
			return Result{}, err
		}
	}
	if err := e.Drain(); err != nil {
		return Result{}, err
	}
	e.sys.ResetClocks()
	e.resetCounters()
	for t := 0; t < e.cfg.Ticks; t++ {
		if err := e.Tick(); err != nil {
			return Result{}, err
		}
	}
	return e.Finish()
}
