package traffic

// Deterministic randomness and the traffic mixes: splitmix64 streams (one
// for the schedule, one per flow for payload), FNV-1a digests, the
// heavy-tailed message-size and flow-length distributions, and the diurnal
// load curve. Everything is integer arithmetic so results are identical on
// every platform.

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnvByte(h uint64, b byte) uint64 {
	if h == 0 {
		h = fnvOffset
	}
	return (h ^ uint64(b)) * fnvPrime
}

func fnv64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = fnvByte(h, byte(v>>(8*i)))
	}
	return h
}

func fnvBytes(h uint64, p []byte) uint64 {
	for _, b := range p {
		h = fnvByte(h, b)
	}
	return h
}

func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func fillPayload(rng *uint64, p []byte) {
	var w uint64
	for i := range p {
		if i&7 == 0 {
			w = splitmix64(rng)
		}
		p[i] = byte(w >> (8 * uint(i&7)))
	}
}

// drawMsgBytes samples the heavy-tailed request-size mix: mostly small
// RPCs, a tail of multi-packet responses out to ~64 MSS bulk transfers.
func (e *Engine) drawMsgBytes() int {
	r := e.rand()
	switch p := r % 100; {
	case p < 50:
		return 64 + int((r>>8)%448) // small RPC request
	case p < 80:
		return e.mss // one full segment
	case p < 95:
		return 4 * e.mss // medium response
	case p < 99:
		return 16 * e.mss // netperf-sized message
	default:
		return 64 * e.mss // bulk tail
	}
}

// drawFlowLen samples a flow's data-packet budget around MeanFlowPackets:
// most flows are short, a tail lives 10x the mean.
func (e *Engine) drawFlowLen() int {
	m := e.cfg.MeanFlowPackets
	if m < 1 {
		m = 1
	}
	r := e.rand()
	var l int
	switch p := r % 16; {
	case p < 10:
		l = m / 4
	case p < 14:
		l = m
	case p < 15:
		l = 3 * m
	default:
		l = 10 * m
	}
	l += int((r >> 16) % uint64(m))
	if l < 1 {
		l = 1
	}
	return l
}

// drawSteerPages samples the per-flow steering-buffer size in pages. The
// mixed size classes are what exercise the IOVA allocators' free-stack
// reuse (and the Linux allocator's gap-search pathology) under churn.
func (e *Engine) drawSteerPages() int {
	switch p := e.rand() % 16; {
	case p < 9:
		return 1
	case p < 13:
		return 2
	case p < 15:
		return 3
	default:
		return steerMaxPages
	}
}

// diurnalCurve is the load multiplier over one simulated day, in eighths
// of the peak; diurnalPeriod ticks per phase.
var diurnalCurve = [8]int{3, 5, 8, 10, 12, 10, 7, 4}

const (
	diurnalPeriod = 4
	diurnalPeak   = 8 // divisor: curve value 8 == the configured base load
)

func diurnalLoad(tick int) int {
	phase := (tick / diurnalPeriod) % len(diurnalCurve)
	return diurnalCurve[phase]
}
