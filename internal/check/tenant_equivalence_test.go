package check

import (
	"fmt"
	"reflect"
	"testing"

	"riommu/internal/device"
	"riommu/internal/sim"
)

// TestTenantEquivalence is the two-stage transparency property: running the
// seeded workload as a tenant behind nested GPA→HPA translation (at 2 and 4
// tenants) must produce a trace byte-identical to the single-stage run in
// every mode. Stage 2 may change costs and host-frame placement — never the
// data, the mapping history, or the interrupt log.
func TestTenantEquivalence(t *testing.T) {
	for _, mode := range sim.AllModes() {
		t.Run(mode.String(), func(t *testing.T) {
			cfg := Config{
				Profile: smallProfile(device.ProfileBRCM),
				Queues:  2,
				Rounds:  48,
				Seed:    0x7e4a47,
			}
			ref, err := RunWorkload(mode, cfg)
			if err != nil {
				t.Fatalf("single-stage: %v", err)
			}
			if len(ref.TxFrames) != cfg.Rounds || len(ref.RxFrames) == 0 || len(ref.Events) == 0 {
				t.Fatalf("reference trace is degenerate: %d tx, %d rx, %d events",
					len(ref.TxFrames), len(ref.RxFrames), len(ref.Events))
			}
			for _, tenants := range []int{2, 4} {
				tcfg := cfg
				tcfg.Tenants = tenants
				got, err := RunWorkload(mode, tcfg)
				if err != nil {
					t.Fatalf("tenants=%d: %v", tenants, err)
				}
				label := sim.Mode(mode)
				compareFrames(t, label, fmt.Sprintf("tx(tenants=%d)", tenants), ref.TxFrames, got.TxFrames)
				compareFrames(t, label, fmt.Sprintf("rx(tenants=%d)", tenants), ref.RxFrames, got.RxFrames)
				if !reflect.DeepEqual(ref.Events, got.Events) {
					t.Errorf("tenants=%d: mapping history diverges (%d vs %d events)",
						tenants, len(got.Events), len(ref.Events))
				}
				if !reflect.DeepEqual(ref.IntLog, got.IntLog) {
					t.Errorf("tenants=%d: interrupt log diverges (%d vs %d deliveries)",
						tenants, len(got.IntLog), len(ref.IntLog))
				}
				if got.AuditViolations != 0 || got.IntViolations != 0 {
					t.Errorf("tenants=%d: %d audit / %d interrupt violations in a benign workload",
						tenants, got.AuditViolations, got.IntViolations)
				}
			}
		})
	}
}
