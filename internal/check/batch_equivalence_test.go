package check

import (
	"fmt"
	"reflect"
	"testing"

	"riommu/internal/device"
	"riommu/internal/sim"
)

// TestBatchScalarEquivalence is the batch-vs-scalar property suite: for every
// protection mode, NIC profile, and queue count, running the seeded workload
// with the DMA engine's batched translation path must produce a trace
// identical to the scalar per-chunk control arm — byte-identical Tx/Rx
// payloads, the same protection-boundary mapping history, the same
// interrupt-delivery log, an identical per-component CPU cycle ledger, and
// zero oracle violations. Batching is allowed to change only how many virtual
// dispatches the simulator performs, never anything a mode observes or
// charges.
func TestBatchScalarEquivalence(t *testing.T) {
	for _, mode := range sim.AllModes() {
		for _, base := range []device.NICProfile{device.ProfileMLX, device.ProfileBRCM} {
			for _, queues := range []int{1, 2, 4} {
				t.Run(fmt.Sprintf("%s/%s/q=%d", mode, base.Name, queues), func(t *testing.T) {
					cfg := Config{
						Profile: smallProfile(base),
						Queues:  queues,
						Rounds:  36,
						Seed:    0xba7c<<16 | uint64(queues),
					}
					batched, err := RunWorkload(mode, cfg)
					if err != nil {
						t.Fatalf("batched: %v", err)
					}
					if len(batched.TxFrames) == 0 || len(batched.Events) == 0 {
						t.Fatalf("batched trace is degenerate: %d tx frames, %d events",
							len(batched.TxFrames), len(batched.Events))
					}
					cfg.ScalarDMA = true
					scalar, err := RunWorkload(mode, cfg)
					if err != nil {
						t.Fatalf("scalar: %v", err)
					}

					compareFrames(t, mode, "tx", scalar.TxFrames, batched.TxFrames)
					compareFrames(t, mode, "rx", scalar.RxFrames, batched.RxFrames)
					if !reflect.DeepEqual(scalar.Events, batched.Events) {
						t.Errorf("mapping history diverges: %d batched vs %d scalar events",
							len(batched.Events), len(scalar.Events))
					}
					if !reflect.DeepEqual(scalar.IntLog, batched.IntLog) {
						t.Errorf("interrupt-delivery log diverges: %d batched vs %d scalar deliveries",
							len(batched.IntLog), len(scalar.IntLog))
					}
					if batched.Cycles != scalar.Cycles {
						t.Errorf("cycle ledger diverges: batched clock at %d, scalar at %d",
							batched.Cycles.Now, scalar.Cycles.Now)
					}
					if batched.AuditViolations != 0 || scalar.AuditViolations != 0 {
						t.Errorf("audit violations in a benign workload: batched=%d scalar=%d",
							batched.AuditViolations, scalar.AuditViolations)
					}
					if batched.IntViolations != 0 || scalar.IntViolations != 0 {
						t.Errorf("interrupt violations in a benign workload: batched=%d scalar=%d",
							batched.IntViolations, scalar.IntViolations)
					}
				})
			}
		}
	}
}
