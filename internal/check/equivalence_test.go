package check

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"riommu/internal/device"
	"riommu/internal/sim"
)

// smallProfile shrinks a NIC profile's rings so the 7-mode x 2-profile x
// 3-queue-count sweep stays fast under the race detector; ring geometry, not
// ring size, is what the equivalence property ranges over.
func smallProfile(p device.NICProfile) device.NICProfile {
	p.RxEntries = 128
	p.TxEntries = 128
	return p
}

// TestModeEquivalence is the property suite: for a seeded workload every
// protection mode must deliver byte-identical Tx/Rx payloads and an
// identical protection-boundary mapping history, with zero audit-oracle
// violations. Protection changes cost and safety — never data or the
// mapping request stream.
func TestModeEquivalence(t *testing.T) {
	modes := sim.AllModes() // strict, strict+, defer, defer+, riommu-, riommu, none
	for _, base := range []device.NICProfile{device.ProfileMLX, device.ProfileBRCM} {
		for _, queues := range []int{1, 2, 4} {
			t.Run(fmt.Sprintf("%s/q=%d", base.Name, queues), func(t *testing.T) {
				cfg := Config{
					Profile: smallProfile(base),
					Queues:  queues,
					Rounds:  48,
					Seed:    0x5eed<<16 | uint64(queues),
				}
				ref, err := RunWorkload(modes[0], cfg)
				if err != nil {
					t.Fatalf("%s: %v", modes[0], err)
				}
				if len(ref.TxFrames) != cfg.Rounds {
					t.Fatalf("reference captured %d tx frames, want %d", len(ref.TxFrames), cfg.Rounds)
				}
				if len(ref.RxFrames) == 0 || len(ref.Events) == 0 || len(ref.IntLog) == 0 {
					t.Fatalf("reference trace is degenerate: %d rx frames, %d events, %d interrupts",
						len(ref.RxFrames), len(ref.Events), len(ref.IntLog))
				}
				for _, m := range modes[1:] {
					got, err := RunWorkload(m, cfg)
					if err != nil {
						t.Fatalf("%s: %v", m, err)
					}
					compareFrames(t, m, "tx", ref.TxFrames, got.TxFrames)
					compareFrames(t, m, "rx", ref.RxFrames, got.RxFrames)
					if !reflect.DeepEqual(ref.Events, got.Events) {
						t.Errorf("%s: mapping history diverges from %s (%d vs %d events)",
							m, modes[0], len(ref.Events), len(got.Events))
					}
					if !reflect.DeepEqual(ref.IntLog, got.IntLog) {
						t.Errorf("%s: interrupt-delivery log diverges from %s (%d vs %d deliveries)",
							m, modes[0], len(got.IntLog), len(ref.IntLog))
					}
					if got.AuditViolations != 0 {
						t.Errorf("%s: %d audit violations in a benign workload", m, got.AuditViolations)
					}
					if got.IntViolations != 0 {
						t.Errorf("%s: %d interrupt violations in a benign workload", m, got.IntViolations)
					}
				}
			})
		}
	}
}

func compareFrames(t *testing.T, m sim.Mode, kind string, want, got [][]byte) {
	t.Helper()
	if len(want) != len(got) {
		t.Errorf("%s: %d %s frames, reference has %d", m, len(got), kind, len(want))
		return
	}
	for i := range want {
		if !bytes.Equal(want[i], got[i]) {
			t.Errorf("%s: %s frame %d differs from reference (%d vs %d bytes)",
				m, kind, i, len(got[i]), len(want[i]))
			return
		}
	}
}

// TestWorkloadDeterministic pins the harness itself: the same mode and seed
// must reproduce the identical trace, otherwise cross-mode equality would
// be meaningless.
func TestWorkloadDeterministic(t *testing.T) {
	cfg := Config{Profile: smallProfile(device.ProfileMLX), Queues: 2, Rounds: 30, Seed: 7}
	a, err := RunWorkload(sim.Strict, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunWorkload(sim.Strict, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same mode and seed produced different traces")
	}
}
