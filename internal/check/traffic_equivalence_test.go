package check

import (
	"reflect"
	"testing"

	"riommu/internal/device"
	"riommu/internal/parallel"
	"riommu/internal/sim"
	"riommu/internal/traffic"
)

// trafficGrid is the seeded cell set the determinism sweep runs: every
// protection mode at a low- and a high-churn point, with a mixed
// kernel/bypass fleet and the audit oracle attached. Small on purpose —
// this suite runs under the race detector.
func trafficGrid() []traffic.Config {
	var grid []traffic.Config
	for _, mode := range sim.AllModes() {
		for _, mean := range []int{24, 1} {
			grid = append(grid, traffic.Config{
				Mode:            mode,
				Profile:         device.ProfileMLX,
				Seed:            0x7aff1c<<8 | uint64(mean),
				TableSlots:      16,
				MeanFlowPackets: mean,
				BypassPermille:  300,
				Ticks:           8,
				WarmupTicks:     2,
				MsgsPerTick:     4,
				IncastEvery:     4,
				IncastFan:       8,
				Diurnal:         true,
				Audit:           true,
			})
		}
	}
	return grid
}

// TestTrafficEquivalence is the traffic engine's determinism property:
// running the same seeded cell grid serially and with 2 and 8 workers must
// produce deeply identical results — application byte-stream digests,
// protection-boundary mapping histories, per-component cycle ledgers, and
// oracle counters — because every cell is an independent seeded world that
// never consults the wall clock or shared state. Run under -race, this also
// proves the engine shares nothing across concurrent cells.
func TestTrafficEquivalence(t *testing.T) {
	grid := trafficGrid()
	run := func(workers int) []traffic.Result {
		t.Helper()
		out, err := parallel.Map(workers, grid, func(_ int, cfg traffic.Config) (traffic.Result, error) {
			return traffic.Run(cfg)
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return out
	}
	serial := run(1)
	for i, r := range serial {
		if r.DataPackets == 0 || r.MapEvents == 0 {
			t.Fatalf("cell %d (%s) is degenerate: %d packets, %d map events",
				i, grid[i].Mode, r.DataPackets, r.MapEvents)
		}
		if r.AuditViolations != 0 {
			t.Errorf("cell %d (%s): %d audit violations without an attacker",
				i, grid[i].Mode, r.AuditViolations)
		}
	}
	for _, workers := range []int{2, 8} {
		par := run(workers)
		for i := range serial {
			if !reflect.DeepEqual(serial[i], par[i]) {
				t.Errorf("workers=%d cell %d (%s): result diverges from serial run\nserial:   %+v\nparallel: %+v",
					workers, i, grid[i].Mode, serial[i], par[i])
			}
		}
	}
}

// TestTrafficPathInvariance pins the kernel-vs-bypass contract: the data
// path is a per-connection transport decision, so an all-kernel fleet and
// an all-bypass fleet under the same seed must deliver the identical
// application byte stream (same AppDigest, same payload packet count) while
// their protection-boundary mapping histories necessarily differ (per-DMA
// map/unmap versus persistent pool mappings).
func TestTrafficPathInvariance(t *testing.T) {
	for _, mode := range []sim.Mode{sim.Strict, sim.Defer, sim.RIOMMU, sim.None} {
		t.Run(mode.String(), func(t *testing.T) {
			base := traffic.Config{
				Mode:            mode,
				Profile:         device.ProfileMLX,
				Seed:            0xbeef,
				TableSlots:      24,
				MeanFlowPackets: 6,
				Ticks:           10,
				WarmupTicks:     3,
				MsgsPerTick:     5,
				IncastEvery:     4,
				IncastFan:       8,
				Diurnal:         true,
				Audit:           true,
			}
			kernel := base
			kernel.BypassPermille = 0
			bypass := base
			bypass.BypassPermille = 1000
			kr, err := traffic.Run(kernel)
			if err != nil {
				t.Fatalf("kernel: %v", err)
			}
			br, err := traffic.Run(bypass)
			if err != nil {
				t.Fatalf("bypass: %v", err)
			}
			if kr.AppDigest != br.AppDigest {
				t.Errorf("application byte stream diverges across paths: kernel digest %#x, bypass %#x",
					kr.AppDigest, br.AppDigest)
			}
			if kr.DataPackets != br.DataPackets {
				t.Errorf("payload packet count diverges: kernel %d, bypass %d",
					kr.DataPackets, br.DataPackets)
			}
			if kr.MapDigest == br.MapDigest {
				t.Errorf("mapping histories identical (%#x): the bypass path is not persisting its pool",
					kr.MapDigest)
			}
			if br.BypassPackets == 0 {
				t.Error("bypass fleet moved no packets over the polling path")
			}
			for name, r := range map[string]traffic.Result{"kernel": kr, "bypass": br} {
				if r.AuditViolations != 0 {
					t.Errorf("%s: %d audit violations without an attacker", name, r.AuditViolations)
				}
			}
		})
	}
}
