// Package check is the mode-equivalence property layer: every protection
// mode is supposed to change *how* DMA is protected and *what it costs*,
// never what data moves or which mappings the OS asks for. For a seeded
// workload the package captures, per mode:
//
//   - every Rx frame delivered upstream and every Tx payload that reached
//     the wire (byte-exact), and
//   - the mapping history at the driver.Protection boundary — the ordered
//     (op, ring, size, direction, end-of-burst) sequence the protection
//     layer was asked to establish; the same events the audit oracle
//     observes, minus the mode-specific IOVA/PA values.
//
// Two modes are equivalent iff both records match byte for byte. The audit
// oracle additionally runs in every protected mode and must report zero
// violations (no hostile device is present).
package check

import (
	"fmt"

	"riommu/internal/cycles"
	"riommu/internal/device"
	"riommu/internal/driver"
	"riommu/internal/intremap"
	"riommu/internal/mem"
	"riommu/internal/pci"
	"riommu/internal/sim"
	"riommu/internal/tenant"
)

// MapEvent is one recorded protection-boundary operation.
type MapEvent struct {
	Op   byte // 'M' (Map) or 'U' (Unmap)
	Ring int
	Size uint32
	Dir  pci.Dir
	EOB  bool // Unmap only: end-of-burst flag
}

// recorder decorates a driver.Protection, appending every successful call
// to the trace. IOVAs and physical addresses are deliberately not recorded:
// they are mode-specific (rIOVAs encode ring/entry, baseline IOVAs come
// from the allocator), while the call sequence itself must not be.
type recorder struct {
	inner  driver.Protection
	events *[]MapEvent
}

func (r recorder) Map(ring int, pa mem.PA, size uint32, dir pci.Dir) (uint64, error) {
	iova, err := r.inner.Map(ring, pa, size, dir)
	if err == nil {
		*r.events = append(*r.events, MapEvent{Op: 'M', Ring: ring, Size: size, Dir: dir})
	}
	return iova, err
}

func (r recorder) Unmap(ring int, iova uint64, size uint32, endOfBurst bool) error {
	err := r.inner.Unmap(ring, iova, size, endOfBurst)
	if err == nil {
		// Dir stays zero: the Protection interface does not carry a
		// direction on unmap.
		*r.events = append(*r.events, MapEvent{Op: 'U', Ring: ring, Size: size, EOB: endOfBurst})
	}
	return err
}

// IntEvent is one delivered completion interrupt: which vector fired on
// which core. Delivery order, vectors, and target cores are mode-invariant —
// remapping changes how a message is validated and what it costs, never
// where a legitimate interrupt lands.
type IntEvent struct {
	Vector uint8
	Core   int
}

// Trace is everything a workload run produced that must be mode-invariant.
type Trace struct {
	TxFrames [][]byte
	RxFrames [][]byte
	Events   []MapEvent
	// IntLog is the ordered interrupt-delivery record (remappable format in
	// the protected modes, compatibility format in pass-through).
	IntLog []IntEvent
	// AuditViolations is the oracle's verdict (0 expected; always 0 in the
	// unprotected modes, where the oracle passes through).
	AuditViolations uint64
	// IntViolations is the interrupt oracle's verdict (0 expected).
	IntViolations uint64
	// Cycles is the final CPU clock ledger. It is NOT mode-invariant (cost is
	// exactly what modes change) but it must be invariant across scheduling
	// choices within one mode — in particular batch vs scalar translation,
	// which the BatchTranslator contract requires to charge identically.
	Cycles cycles.Snapshot
}

// Config seeds one equivalence workload.
type Config struct {
	Profile device.NICProfile
	Queues  int
	Rounds  int
	Seed    uint64
	// Tenants, when > 0, runs the workload as tenant 0 of a hypervisor with
	// nested two-stage translation spliced under the DMA engine (plus
	// Tenants-1 idle table-only peers sharing the stage-2 machinery). The
	// trace must be byte-identical to the single-stage run: stage 2 changes
	// where DMA lands in host memory and what it costs, never what data
	// moves or which mappings the guest asks for.
	Tenants int
	// ScalarDMA forces the DMA engine's scalar per-chunk translation loop
	// even when the mode's translator speaks TranslateBatch — the control arm
	// of the batch-vs-scalar equivalence property.
	ScalarDMA bool
}

var equivBDF = pci.NewBDF(0, 3, 0)

// splitmix64 is the per-step payload RNG (same construction as
// parallel.CellSeed's mixer, self-contained here).
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func payload(rng *uint64, n int) []byte {
	b := make([]byte, n)
	for i := 0; i < n; i += 8 {
		v := splitmix64(rng)
		for j := 0; j < 8 && i+j < n; j++ {
			b[i+j] = byte(v >> (8 * j))
		}
	}
	return b
}

// RunWorkload drives the seeded multi-queue workload in one mode and
// returns its trace: round-robin transmits (pumped one packet at a time so
// every wire payload is captured), periodic inbound frames with coalesced
// Rx reaps, and a full teardown so trailing unmaps are recorded too.
func RunWorkload(mode sim.Mode, cfg Config) (Trace, error) {
	var tr Trace
	sys, err := sim.NewSystemScaled(mode, 1<<13, cfg.Profile.CostScale)
	if err != nil {
		return tr, err
	}
	defer sys.Close()
	sys.EnableAudit()
	if cfg.ScalarDMA {
		sys.Eng.SetBatch(false)
	}

	if cfg.Tenants > 0 {
		host, err := tenant.NewHost(64 + 8*uint64(cfg.Tenants))
		if err != nil {
			return tr, err
		}
		defer host.Close()
		dom, err := host.AdoptSystem(sys)
		if err != nil {
			return tr, err
		}
		if err := host.Register(dom, equivBDF); err != nil {
			return tr, err
		}
		for i := 1; i < cfg.Tenants; i++ {
			if _, err := host.AdoptSpace(1 << 9); err != nil {
				return tr, err
			}
		}
	}

	prot, err := sys.ProtectionFor(equivBDF, driver.RIOMMURingSizesQ(cfg.Profile, cfg.Queues))
	if err != nil {
		return tr, err
	}
	mq, err := driver.NewMQNIC(sys.Mem, recorder{inner: prot, events: &tr.Events},
		sys.Eng, cfg.Profile, equivBDF, cfg.Queues)
	if err != nil {
		return tr, err
	}
	for q := 0; q < cfg.Queues; q++ {
		mq.NIC(q).CaptureTx = true
	}
	// Interrupt path: queue q's vectors target core q; the sink records the
	// delivery log the equivalence property compares across modes.
	iorc, err := sys.EnableIntAudit()
	if err != nil {
		return tr, err
	}
	sys.IntRemap.SetSink(func(d intremap.Delivery) {
		tr.IntLog = append(tr.IntLog, IntEvent{Vector: d.Vector, Core: d.Core})
	})
	if err := sys.WireMQNICInterrupts(mq, equivBDF, false); err != nil {
		return tr, err
	}

	rng := cfg.Seed
	for round := 0; round < cfg.Rounds; round++ {
		q := round % cfg.Queues
		n := 64 + int(splitmix64(&rng)%1200)
		if err := mq.Send(payload(&rng, n)); err != nil {
			return tr, fmt.Errorf("round %d send: %w", round, err)
		}
		if _, err := mq.Queues[q].PumpTx(1); err != nil {
			return tr, fmt.Errorf("round %d pump: %w", round, err)
		}
		tr.TxFrames = append(tr.TxFrames, append([]byte(nil), mq.NIC(q).LastTx...))
		if _, err := mq.Queues[q].ReapTx(); err != nil {
			return tr, fmt.Errorf("round %d reap: %w", round, err)
		}
		if round%3 == 2 {
			frame := payload(&rng, 60+int(splitmix64(&rng)%900))
			if err := mq.Deliver(q, frame); err != nil {
				return tr, fmt.Errorf("round %d deliver: %w", round, err)
			}
			frames, err := mq.ReapRxAll()
			if err != nil {
				return tr, fmt.Errorf("round %d rx reap: %w", round, err)
			}
			for _, f := range frames {
				tr.RxFrames = append(tr.RxFrames, append([]byte(nil), f...))
			}
		}
	}
	if err := mq.Teardown(); err != nil {
		return tr, fmt.Errorf("teardown: %w", err)
	}
	if sys.Auditor != nil {
		tr.AuditViolations = sys.Auditor.Violations
	}
	tr.IntViolations = iorc.Violations
	tr.Cycles = sys.CPU.Snapshot()
	return tr, nil
}
