// Package netstack models the network-stack side of packet processing: MSS
// segmentation, the per-packet TCP/IP + interrupt cost (the "other" bar of
// Figure 7, C_none = 1,816 cycles on the paper's mlx setup), delayed-ack
// return traffic, and interrupt-coalesced completion bursts (~200 iterations
// for throughput-sensitive workloads, §4).
//
// All protocol processing is charged to the Stack component of the CPU
// clock; the map/unmap costs accrue inside the protection driver as the
// packets flow.
package netstack

import (
	"riommu/internal/cycles"
	"riommu/internal/device"
	"riommu/internal/driver"
)

// Params calibrates a connection's cost model for one NIC setup.
type Params struct {
	// MSS is the TCP payload per packet.
	MSS int
	// StackCyclesPerPacket is the per-data-packet protocol cost: TCP/IP
	// processing, socket work, and the amortized interrupt share. This is
	// the whole of C in none mode.
	StackCyclesPerPacket uint64
	// AckEvery delivers one ack frame for every AckEvery transmitted data
	// packets (delayed acks + interrupt moderation).
	AckEvery int
	// AckReapEvery configures the Rx interrupt coalescer: the handler runs
	// once per this many delivered acks, so Rx unmaps happen in bursts.
	AckReapEvery int
	// TxBurst is the Tx completion burst: the driver reaps (and unmaps) in
	// batches of this many packets, the paper's ~200-iteration loop.
	TxBurst int
	// AckBytes is the size of an ack frame on the wire.
	AckBytes int
}

// DefaultParams returns the calibrated parameters for a NIC profile.
// mlx: C_none = 1,816 (Figure 7). brcm: the more efficient driver/kernel —
// calibrated from the brcm CPU ratios of Table 2 (≈1,230 cycles/packet).
func DefaultParams(p device.NICProfile) Params {
	stack := uint64(1816)
	if p.Name == "brcm" {
		stack = 1230
	}
	return Params{
		MSS:                  1448,
		StackCyclesPerPacket: stack,
		AckEvery:             8,
		AckReapEvery:         16,
		TxBurst:              200,
		AckBytes:             64,
	}
}

// Conn is one active connection pumping data through a NIC driver.
type Conn struct {
	clk *cycles.Clock
	drv *driver.NICDriver
	p   Params

	txSinceReap int
	txSinceAck  int
	rxCoalescer *device.Coalescer
	// scratch is the payload source buffer. It is per-connection (not a
	// package global) so concurrent experiment cells share no mutable
	// state — each parallel worker's simulation world is fully isolated.
	scratch []byte

	// DataPackets counts transmitted data packets (the denominator of C).
	DataPackets uint64
	// RxPackets counts packets received and handed upstream.
	RxPackets uint64
}

// NewConn creates a connection over an initialized NIC driver. The Rx
// interrupt coalescer (§2.3) is configured from AckReapEvery: completions
// gather on the device until the threshold fires the interrupt that runs
// the reap-and-refill handler.
func NewConn(clk *cycles.Clock, drv *driver.NICDriver, p Params) *Conn {
	reap := p.AckReapEvery
	if reap <= 0 {
		reap = 1
	}
	return &Conn{clk: clk, drv: drv, p: p, rxCoalescer: device.NewCoalescer(reap, 0), scratch: make([]byte, 1<<14)}
}

// Params returns the connection's cost parameters.
func (c *Conn) Params() Params { return c.p }

// SendMessage segments a message of size bytes into MSS packets and
// transmits them, generating ack return traffic and processing completion
// bursts along the way.
func (c *Conn) SendMessage(size int) error {
	for size > 0 {
		n := c.p.MSS
		if n > size {
			n = size
		}
		if err := c.sendPacket(n); err != nil {
			return err
		}
		size -= n
	}
	return nil
}

// SendPacket transmits a single data packet of n payload bytes (callers
// stepping one packet at a time, e.g. the multicore scheduler's per-core
// quanta; n is clamped to MSS). Completion bursts and ack return traffic
// fire exactly as they would inside SendMessage.
func (c *Conn) SendPacket(n int) error {
	if n > c.p.MSS {
		n = c.p.MSS
	}
	return c.sendPacket(n)
}

func (c *Conn) sendPacket(n int) error {
	c.clk.Charge(cycles.Stack, c.p.StackCyclesPerPacket)
	if err := c.drv.Send(c.scratch[:n]); err != nil {
		return err
	}
	c.DataPackets++

	c.txSinceReap++
	if c.txSinceReap >= c.p.TxBurst {
		if err := c.reapTx(); err != nil {
			return err
		}
	}

	c.txSinceAck++
	if c.p.AckEvery > 0 && c.txSinceAck >= c.p.AckEvery {
		c.txSinceAck = 0
		if err := c.drv.Deliver(c.scratch[:c.p.AckBytes]); err != nil {
			return err
		}
		if c.rxCoalescer.Event(c.clk.Now()) {
			// The coalesced Rx interrupt: reap (unmap burst) and refill.
			if _, err := c.drv.ReapRx(); err != nil {
				return err
			}
		}
	}
	return nil
}

func (c *Conn) reapTx() error {
	c.txSinceReap = 0
	if _, err := c.drv.PumpTx(c.p.TxBurst); err != nil {
		return err
	}
	if _, err := c.drv.ReapTx(); err != nil {
		return err
	}
	return nil
}

// Receive models an inbound packet: the frame arrives by DMA, the Rx
// interrupt handler runs (unmap burst + refill), and the stack processes it.
func (c *Conn) Receive(frame []byte) ([][]byte, error) {
	c.clk.Charge(cycles.Stack, c.p.StackCyclesPerPacket)
	if err := c.drv.Deliver(frame); err != nil {
		return nil, err
	}
	frames, err := c.drv.ReapRx()
	if err != nil {
		return nil, err
	}
	c.RxPackets += uint64(len(frames))
	return frames, nil
}

// Flush drains all outstanding Tx completions and pending ack reaps.
func (c *Conn) Flush() error {
	if err := c.reapTx(); err != nil {
		return err
	}
	if c.rxCoalescer.Pending() > 0 {
		// Drain like a timeout-triggered interrupt.
		c.rxCoalescer.Poll(c.clk.Now() + ^uint64(0)>>1)
		if _, err := c.drv.ReapRx(); err != nil {
			return err
		}
	}
	return nil
}
