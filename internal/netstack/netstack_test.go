package netstack

import (
	"testing"

	"riommu/internal/cycles"
	"riommu/internal/device"
	"riommu/internal/dma"
	"riommu/internal/driver"
	"riommu/internal/iommu"
	"riommu/internal/mem"
	"riommu/internal/pci"
)

func newConn(t *testing.T, p Params) (*Conn, *cycles.Clock, *driver.NICDriver) {
	t.Helper()
	mm := mustMem(t, 1<<14*mem.PageSize)
	eng := dma.NewEngine(mm, iommu.Identity{})
	drv, _, err := driver.NewNICDriver(mm, driver.NoProtection{}, eng, device.ProfileBRCM, pci.NewBDF(0, 3, 0))
	if err != nil {
		t.Fatal(err)
	}
	clk := &cycles.Clock{}
	return NewConn(clk, drv, p), clk, drv
}

func TestDefaultParams(t *testing.T) {
	p := DefaultParams(device.ProfileMLX)
	if p.StackCyclesPerPacket != 1816 {
		t.Errorf("mlx stack = %d, want the paper's C_none 1816", p.StackCyclesPerPacket)
	}
	if p.MSS != 1448 || p.TxBurst != 200 {
		t.Errorf("params = %+v", p)
	}
	b := DefaultParams(device.ProfileBRCM)
	if b.StackCyclesPerPacket >= p.StackCyclesPerPacket {
		t.Error("brcm stack cost should be below mlx")
	}
}

func TestSegmentation(t *testing.T) {
	p := DefaultParams(device.ProfileBRCM)
	p.AckEvery = 0 // no ack traffic for this test
	conn, clk, _ := newConn(t, p)

	// 16 KB = 11 full MSS packets + remainder = 12 packets.
	if err := conn.SendMessage(16 * 1024); err != nil {
		t.Fatal(err)
	}
	if conn.DataPackets != 12 {
		t.Errorf("DataPackets = %d, want 12", conn.DataPackets)
	}
	// Stack charged exactly once per packet.
	if got := clk.Total(cycles.Stack); got != 12*p.StackCyclesPerPacket {
		t.Errorf("stack cycles = %d, want %d", got, 12*p.StackCyclesPerPacket)
	}
	if err := conn.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestTxBurstReaping(t *testing.T) {
	p := DefaultParams(device.ProfileBRCM)
	p.AckEvery = 0
	p.TxBurst = 16
	conn, _, drv := newConn(t, p)

	// 40 packets => two bursts reaped inside, 8 pending.
	for i := 0; i < 40; i++ {
		if err := conn.SendMessage(100); err != nil {
			t.Fatal(err)
		}
	}
	if drv.TxReaped != 32 {
		t.Errorf("TxReaped = %d, want 32 (two bursts of 16)", drv.TxReaped)
	}
	if err := conn.Flush(); err != nil {
		t.Fatal(err)
	}
	if drv.TxReaped != 40 {
		t.Errorf("TxReaped after flush = %d", drv.TxReaped)
	}
}

func TestAckTraffic(t *testing.T) {
	p := DefaultParams(device.ProfileBRCM)
	p.AckEvery = 4
	p.AckReapEvery = 2
	conn, _, drv := newConn(t, p)

	for i := 0; i < 16; i++ { // 16 data packets => 4 acks => 2 rx reaps
		if err := conn.SendMessage(100); err != nil {
			t.Fatal(err)
		}
	}
	if got := drv.NIC().RxPackets; got != 4 {
		t.Errorf("acks delivered = %d, want 4", got)
	}
	if got := drv.RxReceived; got != 4 {
		t.Errorf("acks reaped = %d, want 4 (2 reaps of 2)", got)
	}
	if err := conn.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestReceivePath(t *testing.T) {
	conn, clk, _ := newConn(t, DefaultParams(device.ProfileBRCM))
	frames, err := conn.Receive([]byte("ping"))
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 1 || string(frames[0]) != "ping" {
		t.Errorf("frames = %q", frames)
	}
	if conn.RxPackets != 1 {
		t.Errorf("RxPackets = %d", conn.RxPackets)
	}
	if clk.Total(cycles.Stack) == 0 {
		t.Error("receive did not charge stack cycles")
	}
}

func TestParamsAccessor(t *testing.T) {
	p := DefaultParams(device.ProfileMLX)
	conn, _, _ := newConn(t, p)
	if conn.Params().MSS != p.MSS {
		t.Error("Params accessor")
	}
}
