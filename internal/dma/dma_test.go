package dma_test

import (
	"bytes"
	"testing"

	"riommu/internal/cycles"
	"riommu/internal/dma"
	"riommu/internal/iommu"
	"riommu/internal/mem"
	"riommu/internal/pagetable"
	"riommu/internal/pci"
)

var dev = pci.NewBDF(0, 3, 0)

func identityEngine(t *testing.T) (*dma.Engine, *mem.PhysMem) {
	t.Helper()
	mm := mustMem(t, 64*mem.PageSize)
	return dma.NewEngine(mm, iommu.Identity{}), mm
}

func TestReadWriteIdentity(t *testing.T) {
	e, mm := identityEngine(t)
	f, _ := mm.AllocFrame()
	pa := f.PA()

	data := []byte("hello, dma")
	if err := e.Write(dev, uint64(pa)+16, data); err != nil {
		t.Fatalf("Write: %v", err)
	}
	buf := make([]byte, len(data))
	if err := e.Read(dev, uint64(pa)+16, buf); err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !bytes.Equal(buf, data) {
		t.Errorf("round trip = %q", buf)
	}
	if e.Reads != 1 || e.Writes != 1 || e.Bytes != uint64(2*len(data)) {
		t.Errorf("stats: %d reads %d writes %d bytes", e.Reads, e.Writes, e.Bytes)
	}
}

func TestZeroLength(t *testing.T) {
	e, _ := identityEngine(t)
	if err := e.Read(dev, 0x1000, nil); err == nil {
		t.Error("zero-length read should fail")
	}
	if err := e.Write(dev, 0x1000, nil); err == nil {
		t.Error("zero-length write should fail")
	}
}

func TestU64Accessors(t *testing.T) {
	e, mm := identityEngine(t)
	f, _ := mm.AllocFrame()
	addr := uint64(f.PA()) + 8
	if err := e.WriteU64(dev, addr, 0x1122334455667788); err != nil {
		t.Fatal(err)
	}
	v, err := e.ReadU64(dev, addr)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0x1122334455667788 {
		t.Errorf("ReadU64 = %#x", v)
	}
	// Must agree with the memory's own little-endian view.
	m, err := mm.ReadU64(mem.PA(addr))
	if err != nil {
		t.Fatal(err)
	}
	if m != v {
		t.Errorf("endianness mismatch: %#x vs %#x", m, v)
	}
}

// TestPageBoundarySplit verifies that a transfer spanning pages is split
// into per-page translations, each mapped independently.
func TestPageBoundarySplit(t *testing.T) {
	mm := mustMem(t, 256*mem.PageSize)
	clk := &cycles.Clock{}
	model := cycles.DefaultModel()
	hier, err := pagetable.NewHierarchy(mm)
	if err != nil {
		t.Fatal(err)
	}
	hw := iommu.New(clk, &model, hier, 0)
	sp, err := pagetable.NewSpace(mm, clk, &model, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := hw.Hierarchy().Attach(dev, sp); err != nil {
		t.Fatal(err)
	}
	// Two discontiguous physical frames mapped at contiguous IOVAs (the
	// frame allocator hands out ascending frames, so skipping one in the
	// middle guarantees discontiguity).
	f1, _ := mm.AllocFrame()
	if _, err := mm.AllocFrame(); err != nil { // hole
		t.Fatal(err)
	}
	f2, _ := mm.AllocFrame()
	if f2 == f1+1 {
		t.Fatal("test setup: frames unexpectedly contiguous")
	}
	if err := sp.Map(0x10000, f1, pci.DirBidi); err != nil {
		t.Fatal(err)
	}
	if err := sp.Map(0x11000, f2, pci.DirBidi); err != nil {
		t.Fatal(err)
	}

	e := dma.NewEngine(mm, hw)
	data := make([]byte, 3000)
	for i := range data {
		data[i] = byte(i)
	}
	start := uint64(0x10000 + mem.PageSize - 1500)
	if err := e.Write(dev, start, data); err != nil {
		t.Fatalf("spanning write: %v", err)
	}
	got := make([]byte, 3000)
	if err := e.Read(dev, start, got); err != nil {
		t.Fatalf("spanning read: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Error("spanning round trip corrupted")
	}
	// The pieces landed on the right discontiguous frames.
	b1, _ := mm.Read(f1.PA()+mem.PageSize-1500, 1500)
	b2, _ := mm.Read(f2.PA(), 1500)
	if !bytes.Equal(b1, data[:1500]) || !bytes.Equal(b2, data[1500:]) {
		t.Error("pieces landed on wrong frames")
	}
}

// TestErrantDMABlocked verifies the core protection property: a DMA to an
// unmapped or mis-permissioned IOVA faults and touches no memory.
func TestErrantDMABlocked(t *testing.T) {
	mm := mustMem(t, 256*mem.PageSize)
	clk := &cycles.Clock{}
	model := cycles.DefaultModel()
	hier, _ := pagetable.NewHierarchy(mm)
	hw := iommu.New(clk, &model, hier, 0)
	sp, _ := pagetable.NewSpace(mm, clk, &model, true)
	if err := hw.Hierarchy().Attach(dev, sp); err != nil {
		t.Fatal(err)
	}
	f, _ := mm.AllocFrame()
	if err := sp.Map(0x20000, f, pci.DirToDevice); err != nil { // read-only for device
		t.Fatal(err)
	}
	e := dma.NewEngine(mm, hw)

	// Unmapped IOVA.
	if err := e.Write(dev, 0x99000, []byte{1}); err == nil {
		t.Error("write to unmapped IOVA must fault")
	}
	// Wrong direction.
	if err := e.Write(dev, 0x20000, []byte{1}); err == nil {
		t.Error("device write through read-only mapping must fault")
	}
	if err := e.Read(dev, 0x20000, make([]byte, 4)); err != nil {
		t.Errorf("permitted read failed: %v", err)
	}
	// Memory unscathed by the blocked write.
	b, _ := mm.Read(f.PA(), 1)
	if b[0] != 0 {
		t.Error("blocked DMA modified memory")
	}
	// Unknown device.
	if err := e.Read(pci.NewBDF(9, 9, 9), 0x20000, make([]byte, 4)); err == nil {
		t.Error("DMA from unattached device must fault")
	}
}

// TestPartialFailureSpanning: if the second page of a spanning write is
// unmapped, the first chunk may land but the call reports the fault.
func TestPartialFailureSpanning(t *testing.T) {
	mm := mustMem(t, 256*mem.PageSize)
	clk := &cycles.Clock{}
	model := cycles.DefaultModel()
	hier, _ := pagetable.NewHierarchy(mm)
	hw := iommu.New(clk, &model, hier, 0)
	sp, _ := pagetable.NewSpace(mm, clk, &model, true)
	if err := hw.Hierarchy().Attach(dev, sp); err != nil {
		t.Fatal(err)
	}
	f, _ := mm.AllocFrame()
	if err := sp.Map(0x30000, f, pci.DirBidi); err != nil {
		t.Fatal(err)
	}
	e := dma.NewEngine(mm, hw)
	err := e.Write(dev, uint64(0x30000+mem.PageSize-4), make([]byte, 8))
	if err == nil {
		t.Fatal("spanning write into unmapped page must fault")
	}
	if e.Writes != 0 {
		t.Error("failed write counted as completed")
	}
}

func TestRouter(t *testing.T) {
	mm := mustMem(t, 64*mem.PageSize)
	r := dma.NewRouter()
	devA := pci.NewBDF(0, 1, 0)
	r.Route(devA, iommu.Identity{})
	e := dma.NewEngine(mm, r)

	f, _ := mm.AllocFrame()
	if err := e.Write(devA, uint64(f.PA()), []byte{1, 2, 3}); err != nil {
		t.Fatalf("routed device: %v", err)
	}
	// Unrouted device: no IOMMU path, the DMA goes nowhere.
	if err := e.Write(pci.NewBDF(0, 2, 0), uint64(f.PA()), []byte{9}); err == nil {
		t.Error("unrouted device's DMA should fail")
	}
	// Memory holds only the routed device's bytes.
	b, _ := mm.Read(f.PA(), 3)
	if b[0] != 1 || b[1] != 2 || b[2] != 3 {
		t.Errorf("data = %v", b)
	}
}

// TestRouterFallbackAndBatch covers the router plumbing the supervisor and
// hot-plug paths lean on: the default-unit fallback, route save/restore
// (RouteOf + Unroute), and batch dispatch through both a route and the
// scalar fallback.
func TestRouterFallbackAndBatch(t *testing.T) {
	mm := mustMem(t, 64*mem.PageSize)
	r := dma.NewRouter()
	devA, devB := pci.NewBDF(0, 1, 0), pci.NewBDF(0, 2, 0)
	r.Route(devA, iommu.Identity{})
	f, _ := mm.AllocFrame()
	iova := uint64(f.PA())

	// Unrouted batch with no default faults on the first request.
	reqs := []dma.Req{{IOVA: iova, Size: 8, Dir: pci.DirFromDevice}}
	out := make([]dma.Resp, 1)
	if n := r.TranslateBatch(devB, reqs, out); n != 0 || out[0].Err == nil {
		t.Errorf("unrouted batch: n=%d err=%v, want a routing fault", n, out[0].Err)
	}
	// Installing a default unit reroutes the strays.
	r.SetDefault(iommu.Identity{})
	if n := r.TranslateBatch(devB, reqs, out); n != 1 || out[0].Err != nil {
		t.Errorf("default-routed batch: n=%d err=%v", n, out[0].Err)
	}
	if _, err := r.Translate(devB, iova, 8, pci.DirFromDevice); err != nil {
		t.Errorf("default-routed scalar: %v", err)
	}
	// Identity speaks no batch verb, so the route goes through ScalarBatch.
	if n := r.TranslateBatch(devA, reqs, out); n != 1 || out[0].Err != nil {
		t.Errorf("routed scalar-fallback batch: n=%d err=%v", n, out[0].Err)
	}

	// Quarantine shape: save the route, splice a blackhole, restore.
	saved, ok := r.RouteOf(devA)
	if !ok {
		t.Fatal("RouteOf lost the explicit route")
	}
	r.Route(devA, dma.Blackhole{})
	if _, err := r.Translate(devA, iova, 8, pci.DirFromDevice); err == nil {
		t.Error("blackholed device still translates")
	}
	r.Route(devA, saved)
	if _, err := r.Translate(devA, iova, 8, pci.DirFromDevice); err != nil {
		t.Errorf("restored route: %v", err)
	}
	r.Unroute(devA)
	if _, ok := r.RouteOf(devA); ok {
		t.Error("Unroute left the explicit route behind")
	}

	// Engine plumbing: the translator accessor and closer teardown hooks.
	e := dma.NewEngine(mm, r)
	if e.Translator() == nil {
		t.Error("engine lost its translator")
	}
	if e.Faults() != nil {
		t.Error("fresh engine has a fault injector")
	}
	e.SetBatch(false)
	if err := e.Write(devA, iova, []byte{4, 5}); err != nil {
		t.Fatalf("default-routed write with batching off: %v", err)
	}
	closed := 0
	e.AddCloser(func() { closed++ })
	e.Close()
	if closed != 1 {
		t.Errorf("Close ran %d closers, want 1", closed)
	}
}
