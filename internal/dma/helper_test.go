package dma_test

import (
	"testing"

	"riommu/internal/mem"
)

// mustMem allocates simulated physical memory or fails the test.
func mustMem(tb testing.TB, bytes uint64) *mem.PhysMem {
	tb.Helper()
	m, err := mem.New(bytes)
	if err != nil {
		tb.Fatalf("mem.New(%d): %v", bytes, err)
	}
	return m
}
