// Package dma implements the DMA engine: the path by which simulated devices
// read and write memory. Every access carries the device's BDF and an I/O
// virtual address and is mediated by a Translator — the baseline IOMMU, the
// rIOMMU, or the identity mapping of a disabled IOMMU — so DMAs genuinely
// exercise the protection hardware, including faults on errant accesses.
package dma

import (
	"fmt"

	"riommu/internal/faults"
	"riommu/internal/mem"
	"riommu/internal/pci"
)

// Translator resolves a device access to a physical address. Accesses
// passed to Translate never cross a 4 KiB boundary of the IOVA value (the
// engine splits larger transfers), so implementations may assume single-page
// (baseline) or single-chunk (rIOMMU offset arithmetic) semantics.
type Translator interface {
	Translate(bdf pci.BDF, iova uint64, size uint32, dir pci.Dir) (mem.PA, error)
}

// Req is one translation request inside a batch. Like a scalar Translate
// argument set, a request never crosses a 4 KiB IOVA boundary.
type Req struct {
	IOVA uint64
	Size uint32
	Dir  pci.Dir
}

// Resp is one resolved batch entry: the physical address on success, or the
// fault that stopped the batch.
type Resp struct {
	PA  mem.PA
	Err error
}

// BatchTranslator is the optional batched verb: a Translator that can
// resolve N chunks per call instead of paying one virtual dispatch per
// 4 KiB chunk. TranslateBatch fills out[i] for reqs[i] in order and stops at
// the first failure, returning the number of successful translations; when
// that count is < len(reqs), out[count].Err holds the fault. The observable
// side effects — TLB state, cycle charges, charge-event counts — must be
// identical to calling Translate sequentially, which is what the generic
// ScalarBatch fallback literally does (and what the batch-vs-scalar
// equivalence suite in internal/check pins).
type BatchTranslator interface {
	Translator
	TranslateBatch(bdf pci.BDF, reqs []Req, out []Resp) int
}

// ScalarBatch resolves a batch through a plain Translator one chunk at a
// time: the generic fallback that keeps every existing Translator working
// behind the batched engine, and the reference semantics for native
// implementations.
func ScalarBatch(tr Translator, bdf pci.BDF, reqs []Req, out []Resp) int {
	for i := range reqs {
		pa, err := tr.Translate(bdf, reqs[i].IOVA, reqs[i].Size, reqs[i].Dir)
		out[i] = Resp{PA: pa, Err: err}
		if err != nil {
			return i
		}
	}
	return len(reqs)
}

// Router dispatches each device's DMAs to its own translation unit. PCIe
// allows multiple IOMMUs in one system, and §4 proposes rIOMMU as a
// supplement to — not a replacement for — the baseline IOMMU: ring-based
// devices sit behind an rIOMMU while e.g. RDMA NICs (whose persistent
// full-memory mappings rIOMMU cannot serve) stay behind the conventional
// one. A device with no route has no IOMMU path at all and faults, unless a
// default unit is installed (graceful degradation reroutes one device while
// the rest keep their original unit through the default).
type Router struct {
	routes map[pci.BDF]Translator
	def    Translator
}

// NewRouter returns an empty router.
func NewRouter() *Router {
	return &Router{routes: make(map[pci.BDF]Translator)}
}

// Route binds a device to a translation unit.
func (r *Router) Route(bdf pci.BDF, tr Translator) { r.routes[bdf] = tr }

// SetDefault installs the unit used by devices with no explicit route.
func (r *Router) SetDefault(tr Translator) { r.def = tr }

// RouteOf returns the device's explicit route, if any (quarantine code saves
// it before splicing in a Blackhole so re-admission can restore it).
func (r *Router) RouteOf(bdf pci.BDF) (Translator, bool) {
	tr, ok := r.routes[bdf]
	return tr, ok
}

// Unroute removes a device's explicit route; its DMAs fall back to the
// default unit (or fault if none is installed).
func (r *Router) Unroute(bdf pci.BDF) { delete(r.routes, bdf) }

// Translate dispatches to the device's unit.
func (r *Router) Translate(bdf pci.BDF, iova uint64, size uint32, dir pci.Dir) (mem.PA, error) {
	tr, ok := r.routes[bdf]
	if !ok {
		if r.def == nil {
			return 0, fmt.Errorf("dma: no IOMMU route for device %s", bdf)
		}
		tr = r.def
	}
	return tr.Translate(bdf, iova, size, dir)
}

// TranslateBatch resolves the per-BDF route once for the whole batch (every
// request in a batch carries the same requester) and hands the batch to the
// unit natively when it speaks the verb, falling back to the scalar loop
// otherwise.
func (r *Router) TranslateBatch(bdf pci.BDF, reqs []Req, out []Resp) int {
	tr, ok := r.routes[bdf]
	if !ok {
		if r.def == nil {
			out[0] = Resp{Err: fmt.Errorf("dma: no IOMMU route for device %s", bdf)}
			return 0
		}
		tr = r.def
	}
	if bt, ok := tr.(BatchTranslator); ok {
		return bt.TranslateBatch(bdf, reqs, out)
	}
	return ScalarBatch(tr, bdf, reqs, out)
}

// Blackhole is the quarantine translator: every access faults. The
// supervisor's circuit breaker routes a repeatedly-failing device here
// (detach → isolate) until a probe re-admits it.
type Blackhole struct{}

// Translate always rejects the access.
func (Blackhole) Translate(bdf pci.BDF, iova uint64, size uint32, dir pci.Dir) (mem.PA, error) {
	return 0, fmt.Errorf("dma: device %s quarantined", bdf)
}

// TranslateBatch rejects the batch at its first chunk.
func (Blackhole) TranslateBatch(bdf pci.BDF, reqs []Req, out []Resp) int {
	out[0] = Resp{Err: fmt.Errorf("dma: device %s quarantined", bdf)}
	return 0
}

// Auditor observes every successfully translated DMA chunk before the
// memory access happens; *audit.Oracle satisfies it. The engine defines the
// interface (rather than importing the audit package) so the dependency
// points from the auditor to the audited.
type Auditor interface {
	VerifyDMA(bdf pci.BDF, iova uint64, pa mem.PA, size uint32, dir pci.Dir)
}

// Engine performs device-initiated memory accesses through a Translator.
type Engine struct {
	mm  *mem.PhysMem
	tr  Translator
	bt  BatchTranslator // tr's batched verb, nil when tr is scalar-only
	inj *faults.Engine
	aud Auditor

	// batchOff forces the scalar chunk loop even when the translator speaks
	// TranslateBatch (the equivalence suite's control arm).
	batchOff bool

	// reqs/resps are the engine-owned batch scratch: a DMA is single-threaded
	// per engine, so reusing them keeps multi-chunk transfers at 0 allocs/op.
	reqs  []Req
	resps []Resp

	// qw is the quadword scratch for ReadU64/WriteU64. A stack array would
	// escape (the memory fault hook sees the slice through an interface), so
	// the buffer lives in the engine to keep descriptor reads at 0 allocs/op.
	qw [8]byte

	// closers run at world teardown (see AddCloser).
	closers []func()

	// Reads/Writes/Bytes count completed DMA operations for statistics.
	Reads, Writes, Bytes uint64
}

// NewEngine returns an engine accessing mm through tr.
func NewEngine(mm *mem.PhysMem, tr Translator) *Engine {
	e := &Engine{mm: mm}
	e.SetTranslator(tr)
	return e
}

// Translator returns the engine's current translator.
func (e *Engine) Translator() Translator { return e.tr }

// AddCloser registers a cleanup to run when the engine's world is torn down
// (sim.System.Close). Devices use it to return pooled resources — e.g. block
// storage chunks — without every construction site needing a release call.
func (e *Engine) AddCloser(f func()) { e.closers = append(e.closers, f) }

// Close runs the registered cleanups (once) in registration order.
func (e *Engine) Close() {
	for _, f := range e.closers {
		f()
	}
	e.closers = nil
}

// SetTranslator swaps the translation path (used when comparing modes).
func (e *Engine) SetTranslator(tr Translator) {
	e.tr = tr
	e.bt, _ = tr.(BatchTranslator)
}

// SetBatch toggles the batched translation path. Batching is on by default
// whenever the translator implements BatchTranslator; turning it off is the
// control arm of the batch-vs-scalar equivalence property.
func (e *Engine) SetBatch(on bool) { e.batchOff = !on }

// batch returns the translator's batch verb, or nil when the scalar loop
// must be used (translator doesn't speak it, or batching is toggled off).
func (e *Engine) batch() BatchTranslator {
	if e.batchOff {
		return nil
	}
	return e.bt
}

// scratch returns the engine-owned request/response arrays sized for n
// chunks.
func (e *Engine) scratch(n int) ([]Req, []Resp) {
	if cap(e.reqs) < n {
		e.reqs = make([]Req, n)
		e.resps = make([]Resp, n)
	}
	return e.reqs[:n], e.resps[:n]
}

// SetFaults installs the fault-injection engine. Device models reach it via
// Faults(), so wiring the engine here threads injection through every layer
// that accesses memory on the device's behalf.
func (e *Engine) SetFaults(f *faults.Engine) { e.inj = f }

// Faults returns the fault-injection engine (nil when disabled; all its
// methods are nil-safe).
func (e *Engine) Faults() *faults.Engine { return e.inj }

// SetAudit installs the isolation auditor: every chunk the translator
// accepts is reported before the memory access. Accesses the translator
// rejects never reach the auditor — containment worked.
func (e *Engine) SetAudit(a Auditor) { e.aud = a }

// chunks counts the 4 KiB-boundary segments of a transfer.
func chunks(iova uint64, total int) int {
	first := int(mem.PageSize - iova&mem.PageMask)
	if total <= first {
		return 1
	}
	return 1 + (total-first+int(mem.PageSize)-1)/int(mem.PageSize)
}

// Read performs a device read of len(buf) bytes from memory at iova (a
// to-device DMA, e.g. fetching a packet to transmit or a descriptor). The
// transfer is split at 4 KiB IOVA boundaries. Multi-chunk transfers resolve
// every chunk with one TranslateBatch call when the translator speaks the
// batched verb; single-chunk transfers and scalar-only translators take the
// inline loop (written without callbacks so the per-DMA path allocates
// nothing either way).
func (e *Engine) Read(bdf pci.BDF, iova uint64, buf []byte) error {
	if len(buf) == 0 {
		return fmt.Errorf("dma: zero-length read")
	}
	iova, _ = e.inj.StaleDMA(bdf, iova)
	total := len(buf)
	if nc := chunks(iova, total); nc > 1 {
		if bt := e.batch(); bt != nil {
			return e.readBatch(bt, bdf, iova, buf, nc)
		}
	}
	for off := 0; off < total; {
		n := int(mem.PageSize - iova&mem.PageMask)
		if rem := total - off; n > rem {
			n = rem
		}
		pa, err := e.tr.Translate(bdf, iova, uint32(n), pci.DirToDevice)
		if err != nil {
			return err
		}
		if e.aud != nil {
			e.aud.VerifyDMA(bdf, iova, pa, uint32(n), pci.DirToDevice)
		}
		if err := e.mm.ReadInto(pa, buf[off:off+n]); err != nil {
			return err
		}
		iova += uint64(n)
		off += n
	}
	e.Reads++
	e.Bytes += uint64(len(buf))
	return nil
}

// readBatch is Read's multi-chunk body: one TranslateBatch resolves every
// chunk, then the data moves. Translation side effects order exactly as the
// scalar loop's (copies touch no translator or clock state), the auditor
// still sees chunks in transfer order, and a translation fault stops the
// batch at the same chunk the scalar loop would have stopped at.
func (e *Engine) readBatch(bt BatchTranslator, bdf pci.BDF, iova uint64, buf []byte, nc int) error {
	total := len(buf)
	reqs, resps := e.scratch(nc)
	iv := iova
	for i, off := 0, 0; off < total; i++ {
		n := int(mem.PageSize - iv&mem.PageMask)
		if rem := total - off; n > rem {
			n = rem
		}
		reqs[i] = Req{IOVA: iv, Size: uint32(n), Dir: pci.DirToDevice}
		iv += uint64(n)
		off += n
	}
	done := bt.TranslateBatch(bdf, reqs, resps)
	for i, off := 0, 0; i < done; i++ {
		n := int(reqs[i].Size)
		if e.aud != nil {
			e.aud.VerifyDMA(bdf, reqs[i].IOVA, resps[i].PA, reqs[i].Size, pci.DirToDevice)
		}
		if err := e.mm.ReadInto(resps[i].PA, buf[off:off+n]); err != nil {
			return err
		}
		off += n
	}
	if done < nc {
		return resps[done].Err
	}
	e.Reads++
	e.Bytes += uint64(total)
	return nil
}

// Write performs a device write of data to memory at iova (a from-device
// DMA, e.g. depositing a received packet or a completion status). Split and
// structured exactly like Read, including the batched multi-chunk path.
func (e *Engine) Write(bdf pci.BDF, iova uint64, data []byte) error {
	if len(data) == 0 {
		return fmt.Errorf("dma: zero-length write")
	}
	iova, _ = e.inj.StaleDMA(bdf, iova)
	total := len(data)
	if nc := chunks(iova, total); nc > 1 {
		if bt := e.batch(); bt != nil {
			return e.writeBatch(bt, bdf, iova, data, nc)
		}
	}
	for off := 0; off < total; {
		n := int(mem.PageSize - iova&mem.PageMask)
		if rem := total - off; n > rem {
			n = rem
		}
		pa, err := e.tr.Translate(bdf, iova, uint32(n), pci.DirFromDevice)
		if err != nil {
			return err
		}
		if e.aud != nil {
			e.aud.VerifyDMA(bdf, iova, pa, uint32(n), pci.DirFromDevice)
		}
		if err := e.mm.Write(pa, data[off:off+n]); err != nil {
			return err
		}
		iova += uint64(n)
		off += n
	}
	e.Writes++
	e.Bytes += uint64(len(data))
	return nil
}

// writeBatch is Write's multi-chunk body; see readBatch.
func (e *Engine) writeBatch(bt BatchTranslator, bdf pci.BDF, iova uint64, data []byte, nc int) error {
	total := len(data)
	reqs, resps := e.scratch(nc)
	iv := iova
	for i, off := 0, 0; off < total; i++ {
		n := int(mem.PageSize - iv&mem.PageMask)
		if rem := total - off; n > rem {
			n = rem
		}
		reqs[i] = Req{IOVA: iv, Size: uint32(n), Dir: pci.DirFromDevice}
		iv += uint64(n)
		off += n
	}
	done := bt.TranslateBatch(bdf, reqs, resps)
	for i, off := 0, 0; i < done; i++ {
		n := int(reqs[i].Size)
		if e.aud != nil {
			e.aud.VerifyDMA(bdf, reqs[i].IOVA, resps[i].PA, reqs[i].Size, pci.DirFromDevice)
		}
		if err := e.mm.Write(resps[i].PA, data[off:off+n]); err != nil {
			return err
		}
		off += n
	}
	if done < nc {
		return resps[done].Err
	}
	e.Writes++
	e.Bytes += uint64(total)
	return nil
}

// ReadU64 reads a little-endian quadword at iova (descriptor fields). The
// callers are descriptor and completion reads, which are 8-byte aligned and
// so can never cross a page: the aligned fast path performs exactly the one
// translate + audit + copy the chunk loop would, without entering it.
func (e *Engine) ReadU64(bdf pci.BDF, iova uint64) (uint64, error) {
	b := e.qw[:]
	if iova&mem.PageMask <= mem.PageSize-8 {
		iv, _ := e.inj.StaleDMA(bdf, iova)
		pa, err := e.tr.Translate(bdf, iv, 8, pci.DirToDevice)
		if err != nil {
			return 0, err
		}
		if e.aud != nil {
			e.aud.VerifyDMA(bdf, iv, pa, 8, pci.DirToDevice)
		}
		if err := e.mm.ReadInto(pa, b); err != nil {
			return 0, err
		}
		e.Reads++
		e.Bytes += 8
	} else if err := e.Read(bdf, iova, b); err != nil {
		return 0, err
	}
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56, nil
}

// WriteU64 writes a little-endian quadword at iova, with the same
// never-crosses-a-page fast path as ReadU64.
func (e *Engine) WriteU64(bdf pci.BDF, iova uint64, v uint64) error {
	b := e.qw[:]
	for i := range b {
		b[i] = byte(v >> (8 * i))
	}
	if iova&mem.PageMask <= mem.PageSize-8 {
		iv, _ := e.inj.StaleDMA(bdf, iova)
		pa, err := e.tr.Translate(bdf, iv, 8, pci.DirFromDevice)
		if err != nil {
			return err
		}
		if e.aud != nil {
			e.aud.VerifyDMA(bdf, iv, pa, 8, pci.DirFromDevice)
		}
		if err := e.mm.Write(pa, b); err != nil {
			return err
		}
		e.Writes++
		e.Bytes += 8
		return nil
	}
	return e.Write(bdf, iova, b)
}
