// Package dma implements the DMA engine: the path by which simulated devices
// read and write memory. Every access carries the device's BDF and an I/O
// virtual address and is mediated by a Translator — the baseline IOMMU, the
// rIOMMU, or the identity mapping of a disabled IOMMU — so DMAs genuinely
// exercise the protection hardware, including faults on errant accesses.
package dma

import (
	"fmt"

	"riommu/internal/faults"
	"riommu/internal/mem"
	"riommu/internal/pci"
)

// Translator resolves a device access to a physical address. Accesses
// passed to Translate never cross a 4 KiB boundary of the IOVA value (the
// engine splits larger transfers), so implementations may assume single-page
// (baseline) or single-chunk (rIOMMU offset arithmetic) semantics.
type Translator interface {
	Translate(bdf pci.BDF, iova uint64, size uint32, dir pci.Dir) (mem.PA, error)
}

// Router dispatches each device's DMAs to its own translation unit. PCIe
// allows multiple IOMMUs in one system, and §4 proposes rIOMMU as a
// supplement to — not a replacement for — the baseline IOMMU: ring-based
// devices sit behind an rIOMMU while e.g. RDMA NICs (whose persistent
// full-memory mappings rIOMMU cannot serve) stay behind the conventional
// one. A device with no route has no IOMMU path at all and faults, unless a
// default unit is installed (graceful degradation reroutes one device while
// the rest keep their original unit through the default).
type Router struct {
	routes map[pci.BDF]Translator
	def    Translator
}

// NewRouter returns an empty router.
func NewRouter() *Router {
	return &Router{routes: make(map[pci.BDF]Translator)}
}

// Route binds a device to a translation unit.
func (r *Router) Route(bdf pci.BDF, tr Translator) { r.routes[bdf] = tr }

// SetDefault installs the unit used by devices with no explicit route.
func (r *Router) SetDefault(tr Translator) { r.def = tr }

// RouteOf returns the device's explicit route, if any (quarantine code saves
// it before splicing in a Blackhole so re-admission can restore it).
func (r *Router) RouteOf(bdf pci.BDF) (Translator, bool) {
	tr, ok := r.routes[bdf]
	return tr, ok
}

// Unroute removes a device's explicit route; its DMAs fall back to the
// default unit (or fault if none is installed).
func (r *Router) Unroute(bdf pci.BDF) { delete(r.routes, bdf) }

// Translate dispatches to the device's unit.
func (r *Router) Translate(bdf pci.BDF, iova uint64, size uint32, dir pci.Dir) (mem.PA, error) {
	tr, ok := r.routes[bdf]
	if !ok {
		if r.def == nil {
			return 0, fmt.Errorf("dma: no IOMMU route for device %s", bdf)
		}
		tr = r.def
	}
	return tr.Translate(bdf, iova, size, dir)
}

// Blackhole is the quarantine translator: every access faults. The
// supervisor's circuit breaker routes a repeatedly-failing device here
// (detach → isolate) until a probe re-admits it.
type Blackhole struct{}

// Translate always rejects the access.
func (Blackhole) Translate(bdf pci.BDF, iova uint64, size uint32, dir pci.Dir) (mem.PA, error) {
	return 0, fmt.Errorf("dma: device %s quarantined", bdf)
}

// Auditor observes every successfully translated DMA chunk before the
// memory access happens; *audit.Oracle satisfies it. The engine defines the
// interface (rather than importing the audit package) so the dependency
// points from the auditor to the audited.
type Auditor interface {
	VerifyDMA(bdf pci.BDF, iova uint64, pa mem.PA, size uint32, dir pci.Dir)
}

// Engine performs device-initiated memory accesses through a Translator.
type Engine struct {
	mm  *mem.PhysMem
	tr  Translator
	inj *faults.Engine
	aud Auditor

	// Reads/Writes/Bytes count completed DMA operations for statistics.
	Reads, Writes, Bytes uint64
}

// NewEngine returns an engine accessing mm through tr.
func NewEngine(mm *mem.PhysMem, tr Translator) *Engine {
	return &Engine{mm: mm, tr: tr}
}

// Translator returns the engine's current translator.
func (e *Engine) Translator() Translator { return e.tr }

// SetTranslator swaps the translation path (used when comparing modes).
func (e *Engine) SetTranslator(tr Translator) { e.tr = tr }

// SetFaults installs the fault-injection engine. Device models reach it via
// Faults(), so wiring the engine here threads injection through every layer
// that accesses memory on the device's behalf.
func (e *Engine) SetFaults(f *faults.Engine) { e.inj = f }

// Faults returns the fault-injection engine (nil when disabled; all its
// methods are nil-safe).
func (e *Engine) Faults() *faults.Engine { return e.inj }

// SetAudit installs the isolation auditor: every chunk the translator
// accepts is reported before the memory access. Accesses the translator
// rejects never reach the auditor — containment worked.
func (e *Engine) SetAudit(a Auditor) { e.aud = a }

// Read performs a device read of len(buf) bytes from memory at iova (a
// to-device DMA, e.g. fetching a packet to transmit or a descriptor). The
// transfer is split at 4 KiB IOVA boundaries; the loop is written inline
// (rather than through a callback) so the per-DMA path allocates nothing.
func (e *Engine) Read(bdf pci.BDF, iova uint64, buf []byte) error {
	if len(buf) == 0 {
		return fmt.Errorf("dma: zero-length read")
	}
	iova, _ = e.inj.StaleDMA(bdf, iova)
	total := len(buf)
	for off := 0; off < total; {
		n := int(mem.PageSize - iova&mem.PageMask)
		if rem := total - off; n > rem {
			n = rem
		}
		pa, err := e.tr.Translate(bdf, iova, uint32(n), pci.DirToDevice)
		if err != nil {
			return err
		}
		if e.aud != nil {
			e.aud.VerifyDMA(bdf, iova, pa, uint32(n), pci.DirToDevice)
		}
		if err := e.mm.ReadInto(pa, buf[off:off+n]); err != nil {
			return err
		}
		iova += uint64(n)
		off += n
	}
	e.Reads++
	e.Bytes += uint64(len(buf))
	return nil
}

// Write performs a device write of data to memory at iova (a from-device
// DMA, e.g. depositing a received packet or a completion status). Split and
// structured exactly like Read.
func (e *Engine) Write(bdf pci.BDF, iova uint64, data []byte) error {
	if len(data) == 0 {
		return fmt.Errorf("dma: zero-length write")
	}
	iova, _ = e.inj.StaleDMA(bdf, iova)
	total := len(data)
	for off := 0; off < total; {
		n := int(mem.PageSize - iova&mem.PageMask)
		if rem := total - off; n > rem {
			n = rem
		}
		pa, err := e.tr.Translate(bdf, iova, uint32(n), pci.DirFromDevice)
		if err != nil {
			return err
		}
		if e.aud != nil {
			e.aud.VerifyDMA(bdf, iova, pa, uint32(n), pci.DirFromDevice)
		}
		if err := e.mm.Write(pa, data[off:off+n]); err != nil {
			return err
		}
		iova += uint64(n)
		off += n
	}
	e.Writes++
	e.Bytes += uint64(len(data))
	return nil
}

// ReadU64 reads a little-endian quadword at iova (descriptor fields).
func (e *Engine) ReadU64(bdf pci.BDF, iova uint64) (uint64, error) {
	var b [8]byte
	if err := e.Read(bdf, iova, b[:]); err != nil {
		return 0, err
	}
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56, nil
}

// WriteU64 writes a little-endian quadword at iova.
func (e *Engine) WriteU64(bdf pci.BDF, iova uint64, v uint64) error {
	var b [8]byte
	for i := range b {
		b[i] = byte(v >> (8 * i))
	}
	return e.Write(bdf, iova, b[:])
}
