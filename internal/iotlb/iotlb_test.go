package iotlb

import (
	"testing"
	"testing/quick"

	"riommu/internal/mem"
	"riommu/internal/pci"
)

var dev = pci.NewBDF(0, 3, 0)

func key(pfn uint64) Key { return Key{BDF: dev, IOVAPFN: pfn} }

func TestLookupMissThenHit(t *testing.T) {
	tlb := New(4)
	if _, ok := tlb.Lookup(key(1)); ok {
		t.Fatal("hit on empty IOTLB")
	}
	tlb.Insert(key(1), Entry{Frame: 7, Perm: pci.DirBidi})
	e, ok := tlb.Lookup(key(1))
	if !ok {
		t.Fatal("miss after insert")
	}
	if e.Frame != 7 || e.Perm != pci.DirBidi {
		t.Errorf("entry = %+v", e)
	}
	s := tlb.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Inserts != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestLRUEviction(t *testing.T) {
	tlb := New(2)
	tlb.Insert(key(1), Entry{Frame: 1})
	tlb.Insert(key(2), Entry{Frame: 2})
	// Touch 1 so 2 becomes LRU.
	if _, ok := tlb.Lookup(key(1)); !ok {
		t.Fatal("miss")
	}
	tlb.Insert(key(3), Entry{Frame: 3})
	if _, ok := tlb.Lookup(key(2)); ok {
		t.Error("LRU entry 2 survived eviction")
	}
	if _, ok := tlb.Lookup(key(1)); !ok {
		t.Error("MRU entry 1 evicted")
	}
	if tlb.Stats().Evictions != 1 {
		t.Errorf("evictions = %d", tlb.Stats().Evictions)
	}
	if tlb.Len() != 2 {
		t.Errorf("Len = %d", tlb.Len())
	}
}

func TestInsertUpdatesExisting(t *testing.T) {
	tlb := New(2)
	tlb.Insert(key(1), Entry{Frame: 1})
	tlb.Insert(key(1), Entry{Frame: 9})
	if tlb.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tlb.Len())
	}
	e, _ := tlb.Lookup(key(1))
	if e.Frame != 9 {
		t.Errorf("Frame = %d, want 9", e.Frame)
	}
}

func TestInvalidateSingle(t *testing.T) {
	tlb := New(4)
	tlb.Insert(key(1), Entry{Frame: 1})
	tlb.Insert(key(2), Entry{Frame: 2})
	tlb.Invalidate(key(1))
	if _, ok := tlb.Lookup(key(1)); ok {
		t.Error("entry survived invalidation")
	}
	if _, ok := tlb.Lookup(key(2)); !ok {
		t.Error("unrelated entry invalidated")
	}
	// Invalidating a missing entry is legal and counted.
	tlb.Invalidate(key(99))
	if tlb.Stats().Invalidates != 2 {
		t.Errorf("Invalidates = %d", tlb.Stats().Invalidates)
	}
}

func TestFlush(t *testing.T) {
	tlb := New(4)
	for i := uint64(0); i < 4; i++ {
		tlb.Insert(key(i), Entry{Frame: mem.PFN(i)})
	}
	tlb.Flush()
	if tlb.Len() != 0 {
		t.Errorf("Len = %d after flush", tlb.Len())
	}
	if tlb.Stats().GlobalFlush != 1 {
		t.Errorf("GlobalFlush = %d", tlb.Stats().GlobalFlush)
	}
	// Cache still works after flush.
	tlb.Insert(key(1), Entry{Frame: 1})
	if _, ok := tlb.Lookup(key(1)); !ok {
		t.Error("miss after post-flush insert")
	}
}

func TestStaleWindow(t *testing.T) {
	// The deferred-mode vulnerability: an unmapped-but-not-invalidated entry
	// still hits, and the hit is counted as stale.
	tlb := New(4)
	tlb.Insert(key(1), Entry{Frame: 1})
	tlb.MarkStale(key(1))
	if _, ok := tlb.Lookup(key(1)); !ok {
		t.Fatal("stale entry should still hit (that's the vulnerability)")
	}
	if tlb.Stats().StaleLookups != 1 {
		t.Errorf("StaleLookups = %d, want 1", tlb.Stats().StaleLookups)
	}
	// Re-inserting clears staleness.
	tlb.Insert(key(1), Entry{Frame: 1})
	tlb.Lookup(key(1))
	if tlb.Stats().StaleLookups != 1 {
		t.Errorf("StaleLookups = %d after refresh, want 1", tlb.Stats().StaleLookups)
	}
	// MarkStale of an uncached key is a no-op.
	tlb.MarkStale(key(42))
}

func TestPerDeviceKeys(t *testing.T) {
	tlb := New(8)
	other := pci.NewBDF(0, 4, 0)
	tlb.Insert(Key{BDF: dev, IOVAPFN: 5}, Entry{Frame: 1})
	tlb.Insert(Key{BDF: other, IOVAPFN: 5}, Entry{Frame: 2})
	e1, ok1 := tlb.Lookup(Key{BDF: dev, IOVAPFN: 5})
	e2, ok2 := tlb.Lookup(Key{BDF: other, IOVAPFN: 5})
	if !ok1 || !ok2 || e1.Frame != 1 || e2.Frame != 2 {
		t.Error("per-device keying broken")
	}
}

func TestDefaultCapacity(t *testing.T) {
	if New(0).Capacity() != DefaultCapacity {
		t.Error("New(0) should use DefaultCapacity")
	}
	if New(-5).Capacity() != DefaultCapacity {
		t.Error("New(-5) should use DefaultCapacity")
	}
	if New(7).Capacity() != 7 {
		t.Error("New(7) capacity wrong")
	}
}

// Property: the cache never exceeds capacity and a just-inserted key always
// hits, regardless of the operation sequence.
func TestCapacityProperty(t *testing.T) {
	prop := func(ops []uint16, capSeed uint8) bool {
		capacity := int(capSeed%16) + 1
		tlb := New(capacity)
		for _, op := range ops {
			k := key(uint64(op % 64))
			switch op % 4 {
			case 0, 1:
				tlb.Insert(k, Entry{Frame: mem.PFN(op)})
				if _, ok := tlb.Lookup(k); !ok {
					return false
				}
			case 2:
				tlb.Lookup(k)
			case 3:
				tlb.Invalidate(k)
			}
			if tlb.Len() > capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
