// Package iotlb models the baseline IOMMU's translation cache (§2.2): a
// finite cache of IOVA-page → physical-frame translations filled on demand by
// the hardware page walker and invalidated explicitly by the OS as part of
// unmap. Invalidation of a single entry costs ~2,127 cycles on the paper's
// hardware (Table 1); flushing the whole IOTLB is what Linux's deferred mode
// amortizes over 250 unmaps.
package iotlb

import (
	"riommu/internal/mem"
	"riommu/internal/pci"
)

// Key identifies a cached translation: the issuing device and the IOVA page.
type Key struct {
	BDF     pci.BDF
	IOVAPFN uint64
}

// Entry is a cached translation.
type Entry struct {
	Frame mem.PFN
	Perm  pci.Dir
}

// Stats counts IOTLB events since creation.
type Stats struct {
	Hits         uint64
	Misses       uint64
	Inserts      uint64
	Evictions    uint64
	Invalidates  uint64 // single-entry invalidations
	GlobalFlush  uint64 // whole-cache flushes
	StaleLookups uint64 // hits served after the OS unmapped (deferred-mode window)
}

// IOTLB is a fully-associative translation cache with LRU replacement.
// DefaultCapacity matches contemporary IOTLB sizes (dozens of entries);
// the exact figure is not architecturally visible and only matters for the
// §5.3 miss-penalty experiment, which defeats any realistic size.
type IOTLB struct {
	capacity int
	entries  map[Key]*lruNode
	head     *lruNode // most recently used
	tail     *lruNode // least recently used
	stats    Stats
}

type lruNode struct {
	key        Key
	entry      Entry
	stale      bool // OS has unmapped this translation but not invalidated it
	prev, next *lruNode
}

// DefaultCapacity is the default number of IOTLB entries.
const DefaultCapacity = 64

// New returns an empty IOTLB with the given capacity (DefaultCapacity if <= 0).
func New(capacity int) *IOTLB {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &IOTLB{
		capacity: capacity,
		entries:  make(map[Key]*lruNode, capacity),
	}
}

// Capacity returns the maximum number of entries.
func (t *IOTLB) Capacity() int { return t.capacity }

// Len returns the current number of entries.
func (t *IOTLB) Len() int { return len(t.entries) }

// Stats returns a copy of the event counters.
func (t *IOTLB) Stats() Stats { return t.stats }

// Lookup consults the cache. On a hit the entry is promoted to most recently
// used. A hit on a stale entry (unmapped but not yet invalidated — the
// deferred-mode vulnerability window) is counted in StaleLookups and still
// returned, exactly as real hardware would.
func (t *IOTLB) Lookup(key Key) (Entry, bool) {
	n, ok := t.entries[key]
	if !ok {
		t.stats.Misses++
		return Entry{}, false
	}
	t.stats.Hits++
	if n.stale {
		t.stats.StaleLookups++
	}
	t.moveToFront(n)
	return n.entry, true
}

// Insert caches a translation, evicting the LRU entry if full.
func (t *IOTLB) Insert(key Key, e Entry) {
	if n, ok := t.entries[key]; ok {
		n.entry = e
		n.stale = false
		t.moveToFront(n)
		return
	}
	if len(t.entries) >= t.capacity {
		lru := t.tail
		t.unlink(lru)
		delete(t.entries, lru.key)
		t.stats.Evictions++
	}
	n := &lruNode{key: key, entry: e}
	t.entries[key] = n
	t.pushFront(n)
	t.stats.Inserts++
}

// MarkStale flags a cached translation whose mapping the OS has removed but
// whose invalidation is deferred. It is a no-op if the entry is not cached.
func (t *IOTLB) MarkStale(key Key) {
	if n, ok := t.entries[key]; ok {
		n.stale = true
	}
}

// Invalidate removes a single entry (the strict-mode per-unmap operation).
func (t *IOTLB) Invalidate(key Key) {
	t.stats.Invalidates++
	if n, ok := t.entries[key]; ok {
		t.unlink(n)
		delete(t.entries, key)
	}
}

// Flush empties the whole cache (the deferred-mode bulk operation).
func (t *IOTLB) Flush() {
	t.stats.GlobalFlush++
	t.entries = make(map[Key]*lruNode, t.capacity)
	t.head, t.tail = nil, nil
}

func (t *IOTLB) pushFront(n *lruNode) {
	n.prev = nil
	n.next = t.head
	if t.head != nil {
		t.head.prev = n
	}
	t.head = n
	if t.tail == nil {
		t.tail = n
	}
}

func (t *IOTLB) unlink(n *lruNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		t.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		t.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (t *IOTLB) moveToFront(n *lruNode) {
	if t.head == n {
		return
	}
	t.unlink(n)
	t.pushFront(n)
}
