// Package iotlb models the baseline IOMMU's translation cache (§2.2): a
// finite cache of IOVA-page → physical-frame translations filled on demand by
// the hardware page walker and invalidated explicitly by the OS as part of
// unmap. Invalidation of a single entry costs ~2,127 cycles on the paper's
// hardware (Table 1); flushing the whole IOTLB is what Linux's deferred mode
// amortizes over 250 unmaps.
package iotlb

import (
	"riommu/internal/mem"
	"riommu/internal/pci"
)

// Key identifies a cached translation: the issuing device and the IOVA page.
type Key struct {
	BDF     pci.BDF
	IOVAPFN uint64
}

// Entry is a cached translation.
type Entry struct {
	Frame mem.PFN
	Perm  pci.Dir
}

// Stats counts IOTLB events since creation.
type Stats struct {
	Hits         uint64
	Misses       uint64
	Inserts      uint64
	Evictions    uint64
	Invalidates  uint64 // single-entry invalidations
	GlobalFlush  uint64 // whole-cache flushes
	StaleLookups uint64 // hits served after the OS unmapped (deferred-mode window)
}

// IOTLB is a fully-associative translation cache with LRU replacement.
// DefaultCapacity matches contemporary IOTLB sizes (dozens of entries);
// the exact figure is not architecturally visible and only matters for the
// §5.3 miss-penalty experiment, which defeats any realistic size.
//
// The cache is laid out struct-of-arrays: the keys, the cached entries, the
// stale bits, and the intrusive LRU links each live in their own parallel
// array, indexed by slot. The link words a hit or eviction chases are then
// 8 bytes apart instead of striding over whole slot structs, so the LRU
// maintenance loop stays inside one or two cache lines at realistic
// capacities. Slots are threaded onto two index-linked lists (LRU order and
// free list) with a map from Key to slot index; the hot operations — hit,
// insert-with-eviction, invalidate — allocate nothing: slots are recycled in
// place and only the map keys churn. The eviction policy (exact LRU, pinned
// by tests) is unchanged from the slot-of-structs layout.
type IOTLB struct {
	capacity int
	index    map[Key]int32

	// Parallel slot arrays (struct-of-arrays layout).
	keys    []Key
	entries []Entry
	stale   []bool // OS has unmapped this translation but not invalidated it
	prev    []int32
	next    []int32

	head     int32 // most recently used, -1 when empty
	tail     int32 // least recently used, -1 when empty
	freeHead int32 // singly linked free list through next, -1 when exhausted
	stats    Stats
}

const nilSlot = int32(-1)

// DefaultCapacity is the default number of IOTLB entries.
const DefaultCapacity = 64

// New returns an empty IOTLB with the given capacity (DefaultCapacity if <= 0).
func New(capacity int) *IOTLB {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	t := &IOTLB{
		capacity: capacity,
		index:    make(map[Key]int32, capacity),
		keys:     make([]Key, capacity),
		entries:  make([]Entry, capacity),
		stale:    make([]bool, capacity),
		prev:     make([]int32, capacity),
		next:     make([]int32, capacity),
	}
	t.reset()
	return t
}

// reset threads every slot onto the free list and empties the LRU order.
func (t *IOTLB) reset() {
	for i := range t.keys {
		t.keys[i] = Key{}
		t.entries[i] = Entry{}
		t.stale[i] = false
		t.prev[i] = nilSlot
		t.next[i] = int32(i) + 1
	}
	t.next[t.capacity-1] = nilSlot
	t.freeHead = 0
	t.head, t.tail = nilSlot, nilSlot
}

// Capacity returns the maximum number of entries.
func (t *IOTLB) Capacity() int { return t.capacity }

// Len returns the current number of entries.
func (t *IOTLB) Len() int { return len(t.index) }

// Stats returns a copy of the event counters.
func (t *IOTLB) Stats() Stats { return t.stats }

// Lookup consults the cache. On a hit the entry is promoted to most recently
// used. A hit on a stale entry (unmapped but not yet invalidated — the
// deferred-mode vulnerability window) is counted in StaleLookups and still
// returned, exactly as real hardware would.
func (t *IOTLB) Lookup(key Key) (Entry, bool) {
	i, ok := t.index[key]
	if !ok {
		t.stats.Misses++
		return Entry{}, false
	}
	t.stats.Hits++
	if t.stale[i] {
		t.stats.StaleLookups++
	}
	t.moveToFront(i)
	return t.entries[i], true
}

// Insert caches a translation, evicting the LRU entry if full.
func (t *IOTLB) Insert(key Key, e Entry) {
	if i, ok := t.index[key]; ok {
		t.entries[i] = e
		t.stale[i] = false
		t.moveToFront(i)
		return
	}
	i := t.freeHead
	if i == nilSlot {
		i = t.tail
		t.unlink(i)
		delete(t.index, t.keys[i])
		t.stats.Evictions++
	} else {
		t.freeHead = t.next[i]
	}
	t.keys[i] = key
	t.entries[i] = e
	t.stale[i] = false
	t.prev[i], t.next[i] = nilSlot, nilSlot
	t.index[key] = i
	t.pushFront(i)
	t.stats.Inserts++
}

// MarkStale flags a cached translation whose mapping the OS has removed but
// whose invalidation is deferred. It is a no-op if the entry is not cached.
func (t *IOTLB) MarkStale(key Key) {
	if i, ok := t.index[key]; ok {
		t.stale[i] = true
	}
}

// Invalidate removes a single entry (the strict-mode per-unmap operation).
func (t *IOTLB) Invalidate(key Key) {
	t.stats.Invalidates++
	if i, ok := t.index[key]; ok {
		t.unlink(i)
		delete(t.index, key)
		t.next[i] = t.freeHead
		t.freeHead = i
	}
}

// Flush empties the whole cache (the deferred-mode bulk operation).
func (t *IOTLB) Flush() {
	t.stats.GlobalFlush++
	clear(t.index)
	t.reset()
}

func (t *IOTLB) pushFront(i int32) {
	t.prev[i] = nilSlot
	t.next[i] = t.head
	if t.head != nilSlot {
		t.prev[t.head] = i
	}
	t.head = i
	if t.tail == nilSlot {
		t.tail = i
	}
}

func (t *IOTLB) unlink(i int32) {
	p, n := t.prev[i], t.next[i]
	if p != nilSlot {
		t.next[p] = n
	} else {
		t.head = n
	}
	if n != nilSlot {
		t.prev[n] = p
	} else {
		t.tail = p
	}
	t.prev[i], t.next[i] = nilSlot, nilSlot
}

func (t *IOTLB) moveToFront(i int32) {
	if t.head == i {
		return
	}
	t.unlink(i)
	t.pushFront(i)
}
