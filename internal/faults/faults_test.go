package faults

import (
	"bytes"
	"math/bits"
	"testing"

	"riommu/internal/pci"
)

var dev = pci.NewBDF(0, 3, 0)

// exercise drives one engine through a fixed mixed call sequence.
func exercise(e *Engine) {
	buf := make([]byte, 64)
	for i := 0; i < 500; i++ {
		switch i % 6 {
		case 0:
			e.ReadFault(0x1000, buf)
		case 1:
			e.WriteFault(0x2000, buf)
		case 2:
			e.StaleDMA(dev, uint64(i)<<12)
		case 3:
			w0, w1 := uint64(i), uint64(i*7)
			e.FlipDescriptor(dev, uint64(i), &w0, &w1)
		case 4:
			if e.HangCheck(dev) {
				e.ClearHang(dev)
			}
		case 5:
			e.DropInvalidation(dev, uint64(i))
			e.DelayInvalidation(dev, uint64(i))
		}
	}
}

func TestDeterministicSchedule(t *testing.T) {
	a := New(UniformConfig(42, 0.1))
	b := New(UniformConfig(42, 0.1))
	exercise(a)
	exercise(b)
	if a.TotalInjected() == 0 {
		t.Fatal("no faults injected at rate 0.1")
	}
	if !bytes.Equal(a.ScheduleBytes(), b.ScheduleBytes()) {
		t.Error("same seed+workload produced different schedules")
	}
	if a.Opportunities() != b.Opportunities() {
		t.Errorf("opportunity counts differ: %d vs %d", a.Opportunities(), b.Opportunities())
	}
	c := New(UniformConfig(43, 0.1))
	exercise(c)
	if bytes.Equal(a.ScheduleBytes(), c.ScheduleBytes()) {
		t.Error("different seeds produced identical non-empty schedules")
	}
}

func TestZeroRateInjectsNothing(t *testing.T) {
	e := New(Config{Seed: 1})
	exercise(e)
	if e.TotalInjected() != 0 {
		t.Errorf("injected %d faults with all rates zero", e.TotalInjected())
	}
	if e.Opportunities() == 0 {
		t.Error("opportunities not counted")
	}
	if len(e.ScheduleBytes()) != 0 {
		t.Error("non-empty schedule")
	}
}

func TestNilEngineIsSafe(t *testing.T) {
	var e *Engine
	if e.Enabled() {
		t.Error("nil engine reports enabled")
	}
	buf := []byte{1, 2, 3}
	if e.ReadFault(0, buf) || e.WriteFault(0, buf) {
		t.Error("nil engine injected")
	}
	if iova, hit := e.StaleDMA(dev, 0x123); hit || iova != 0x123 {
		t.Error("nil engine redirected a DMA")
	}
	w0, w1 := uint64(5), uint64(6)
	if e.FlipDescriptor(dev, 0, &w0, &w1) || w0 != 5 || w1 != 6 {
		t.Error("nil engine flipped a descriptor")
	}
	if e.HangCheck(dev) || e.Hung(dev) {
		t.Error("nil engine hung a device")
	}
	e.ClearHang(dev)
	e.SetRate(DeviceHang, 1)
	if e.DropInvalidation(dev, 0) || e.DelayInvalidation(dev, 0) {
		t.Error("nil engine perturbed an invalidation")
	}
	if e.TotalInjected() != 0 || e.Opportunities() != 0 || e.Schedule() != nil || e.ScheduleBytes() != nil {
		t.Error("nil engine has state")
	}
}

func TestHangIsStickyUntilCleared(t *testing.T) {
	cfg := Config{Seed: 9}
	cfg.Rates[DeviceHang] = 1
	e := New(cfg)
	if !e.HangCheck(dev) {
		t.Fatal("rate-1 hang did not fire")
	}
	e.SetRate(DeviceHang, 0)
	if !e.HangCheck(dev) || !e.Hung(dev) {
		t.Error("hang not sticky")
	}
	if e.Count(DeviceHang) != 1 {
		t.Errorf("sticky hang re-counted: %d", e.Count(DeviceHang))
	}
	e.ClearHang(dev)
	if e.HangCheck(dev) || e.Hung(dev) {
		t.Error("hang survived ClearHang")
	}
}

func TestFlipDescriptorFlipsExactlyOneBit(t *testing.T) {
	cfg := Config{Seed: 3}
	cfg.Rates[DescBitFlip] = 1
	e := New(cfg)
	for i := 0; i < 100; i++ {
		w0, w1 := uint64(0), uint64(0)
		if !e.FlipDescriptor(dev, uint64(i), &w0, &w1) {
			t.Fatal("rate-1 flip did not fire")
		}
		if n := bits.OnesCount64(w0) + bits.OnesCount64(w1); n != 1 {
			t.Fatalf("flip changed %d bits", n)
		}
	}
}

func TestReadFaultCorruptsBuffer(t *testing.T) {
	cfg := Config{Seed: 5}
	cfg.Rates[MemReadCorrupt] = 1
	e := New(cfg)
	buf := make([]byte, 32)
	if !e.ReadFault(0x40, buf) {
		t.Fatal("rate-1 read corruption did not fire")
	}
	nonzero := 0
	for _, b := range buf {
		nonzero += bits.OnesCount8(b)
	}
	if nonzero != 1 {
		t.Errorf("corruption flipped %d bits, want 1", nonzero)
	}
}

func TestScheduleRecordsContext(t *testing.T) {
	cfg := Config{Seed: 11}
	cfg.Rates[DMAStale] = 1
	e := New(cfg)
	if iova, hit := e.StaleDMA(dev, 0xabc000); !hit || iova != StaleIOVA {
		t.Fatalf("stale redirect: %#x, %v", iova, hit)
	}
	sched := e.Schedule()
	if len(sched) != 1 {
		t.Fatalf("schedule has %d entries", len(sched))
	}
	in := sched[0]
	if in.Class != DMAStale || in.BDF != dev || in.Addr != 0xabc000 || in.Seq != 1 {
		t.Errorf("bad injection record: %+v", in)
	}
	if len(e.ScheduleBytes()) != 19 {
		t.Errorf("record size %d, want 19", len(e.ScheduleBytes()))
	}
}

type captureSink struct{ n int }

func (c *captureSink) RecordFault(uint8, pci.BDF, uint64) { c.n++ }

func TestSinkObservesEveryInjection(t *testing.T) {
	e := New(UniformConfig(17, 0.5))
	sink := &captureSink{}
	e.Sink = sink
	exercise(e)
	if uint64(sink.n) != e.TotalInjected() {
		t.Errorf("sink saw %d, engine injected %d", sink.n, e.TotalInjected())
	}
}

func TestClassNames(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range Classes() {
		n := c.String()
		if n == "" || seen[n] {
			t.Errorf("class %d has bad/duplicate name %q", int(c), n)
		}
		seen[n] = true
	}
	if len(seen) != int(NumClasses) {
		t.Errorf("%d names for %d classes", len(seen), NumClasses)
	}
}
