// Package faults implements the simulator's deterministic fault-injection
// engine. The paper's §4 sketches how the OS survives I/O page faults by
// reinitializing the device; validating that story — and the retry, watchdog
// and mode-degradation machinery layered on top of it in package driver —
// requires faults that occur on demand and reproduce exactly. The engine is
// therefore fully deterministic: a seed plus a per-class rate vector defines
// the complete fault schedule, no wall clock or global math/rand state is
// ever consulted, and the same workload against the same configuration
// yields a byte-identical schedule (see ScheduleBytes).
//
// Each simulated layer consults the engine at its natural fault points:
//
//   - simulated memory (package mem, via the FaultHook interface): bit-flip
//     corruption of bulk reads/writes and poisoned cachelines that fail
//     subsequent reads until rewritten;
//   - the DMA engine (package dma): redirection of a device access to a
//     stale/unmapped IOVA, provoking a genuine I/O page fault in whatever
//     translation hardware the mode uses;
//   - devices (package device): bit-flips in fetched descriptors and device
//     hangs that stop queue processing until the driver resets the device;
//   - the baseline IOMMU invalidation queue (package iommu): dropped and
//     delayed invalidations, opening observable stale-IOTLB windows.
//
// Every Engine method is safe to call on a nil receiver (reporting "no
// fault"), so layers hold a plain *Engine and pay a single nil check when
// injection is disabled.
package faults

import (
	"encoding/binary"
	"fmt"

	"riommu/internal/mem"
	"riommu/internal/pci"
)

// Class identifies one injectable fault class.
type Class int

// The fault classes, one per injection point in the layer stack.
const (
	// MemReadCorrupt flips one bit in the data returned by a bulk memory
	// read (a transient bus/DRAM error on the load path).
	MemReadCorrupt Class = iota
	// MemWriteCorrupt flips one bit in the data stored by a bulk memory
	// write (the corruption persists in memory).
	MemWriteCorrupt
	// MemPoison marks the written cacheline poisoned (an uncorrectable ECC
	// error): reads covering it fail until the line is rewritten.
	MemPoison
	// DescBitFlip flips one bit in a descriptor word the device fetched
	// (flaky device logic or a torn descriptor write).
	DescBitFlip
	// DMAStale redirects a device DMA to a stale/unmapped IOVA — the errant
	// access of §4 that the IOMMU turns into an I/O page fault.
	DMAStale
	// DeviceHang wedges the device: it stops consuming its queues until the
	// driver reinitializes it (detected by the driver watchdog).
	DeviceHang
	// InvDrop silently drops a queued IOTLB invalidation descriptor,
	// leaving a stale translation live (a hardware erratum).
	InvDrop
	// InvDelay defers applying a queued invalidation until the next queue
	// drain, opening a one-round stale window even in strict mode.
	InvDelay

	// NumClasses is the number of distinct fault classes.
	NumClasses
)

var classNames = [NumClasses]string{
	MemReadCorrupt:  "mem-read-corrupt",
	MemWriteCorrupt: "mem-write-corrupt",
	MemPoison:       "mem-poison",
	DescBitFlip:     "desc-bit-flip",
	DMAStale:        "dma-stale",
	DeviceHang:      "device-hang",
	InvDrop:         "inv-drop",
	InvDelay:        "inv-delay",
}

// String returns the stable name of the class.
func (c Class) String() string {
	if c < 0 || c >= NumClasses {
		return fmt.Sprintf("class(%d)", int(c))
	}
	return classNames[c]
}

// Classes lists every fault class in declaration order.
func Classes() []Class {
	out := make([]Class, NumClasses)
	for i := range out {
		out[i] = Class(i)
	}
	return out
}

// StaleIOVA is the address DMAStale redirects accesses to. Its top bits make
// it fault in every mode: under rIOMMU the ring ID (0xffff) names a ring no
// device has, under the baseline the page is never allocated by the IOVA
// allocator, and with the IOMMU disabled it lies beyond simulated memory.
const StaleIOVA = ^uint64(0) &^ uint64(mem.PageMask)

// Config fully determines a fault schedule: the PRNG seed plus one
// injection probability per class, applied per opportunity.
type Config struct {
	Seed  uint64
	Rates [NumClasses]float64
}

// UniformConfig returns a Config injecting every class at the same rate,
// except DeviceHang which runs at a tenth of it (hangs are whole-device
// events; at full rate they would dominate every schedule).
func UniformConfig(seed uint64, rate float64) Config {
	c := Config{Seed: seed}
	for i := range c.Rates {
		c.Rates[i] = rate
	}
	c.Rates[DeviceHang] = rate / 10
	return c
}

// Injection records one injected fault: the opportunity sequence number at
// which it fired, its class, and the device/address context.
type Injection struct {
	Seq   uint64
	Class Class
	BDF   pci.BDF
	Addr  uint64
}

// rng is a splitmix64 generator: tiny, seedable, and sequence-stable across
// Go releases (unlike math/rand, whose global state the engine must avoid).
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float64 returns a uniform value in [0,1).
func (r *rng) float64() float64 { return float64(r.next()>>11) / (1 << 53) }

// Sink receives a notification for every injected fault; package trace's
// Trace satisfies it, surfacing injections in recorded DMA traces.
type Sink interface {
	RecordFault(class uint8, bdf pci.BDF, addr uint64)
}

// Engine is the seedable fault injector shared by all simulated layers. It
// is not safe for concurrent use (the simulator is single-threaded), and all
// methods accept a nil receiver.
type Engine struct {
	cfg    Config
	rng    rng
	seq    uint64 // opportunities observed
	counts [NumClasses]uint64
	sched  []Injection
	hung   map[pci.BDF]bool

	// Sink, when non-nil, observes every injection (typically *trace.Trace).
	Sink Sink
}

// New creates an engine with the given configuration.
func New(cfg Config) *Engine {
	return &Engine{cfg: cfg, rng: rng{s: cfg.Seed}, hung: make(map[pci.BDF]bool)}
}

// Enabled reports whether injection is active.
func (e *Engine) Enabled() bool { return e != nil }

// Config returns the engine's configuration (zero value for a nil engine).
func (e *Engine) Config() Config {
	if e == nil {
		return Config{}
	}
	return e.cfg
}

// SetRate changes one class's injection rate mid-run (tests use this to open
// and close fault windows deterministically).
func (e *Engine) SetRate(c Class, rate float64) {
	if e != nil && c >= 0 && c < NumClasses {
		e.cfg.Rates[c] = rate
	}
}

// Count returns how many faults of class c have been injected.
func (e *Engine) Count(c Class) uint64 {
	if e == nil || c < 0 || c >= NumClasses {
		return 0
	}
	return e.counts[c]
}

// TotalInjected returns the number of injected faults across all classes.
func (e *Engine) TotalInjected() uint64 {
	if e == nil {
		return 0
	}
	var n uint64
	for _, c := range e.counts {
		n += c
	}
	return n
}

// Opportunities returns how many injection opportunities were observed.
func (e *Engine) Opportunities() uint64 {
	if e == nil {
		return 0
	}
	return e.seq
}

// Schedule returns the injected faults in order.
func (e *Engine) Schedule() []Injection {
	if e == nil {
		return nil
	}
	return e.sched
}

// ScheduleBytes serializes the fault schedule into a canonical byte string;
// two runs are identically faulted iff their ScheduleBytes are equal.
func (e *Engine) ScheduleBytes() []byte {
	if e == nil {
		return nil
	}
	out := make([]byte, 0, len(e.sched)*19)
	var rec [19]byte
	for _, in := range e.sched {
		binary.LittleEndian.PutUint64(rec[0:], in.Seq)
		rec[8] = byte(in.Class)
		binary.LittleEndian.PutUint16(rec[9:], uint16(in.BDF))
		binary.LittleEndian.PutUint64(rec[11:], in.Addr)
		out = append(out, rec[:]...)
	}
	return out
}

// roll is the single decision point: it advances the opportunity counter,
// draws from the PRNG when the class is enabled, and records a hit.
func (e *Engine) roll(c Class, bdf pci.BDF, addr uint64) bool {
	if e == nil {
		return false
	}
	e.seq++
	rate := e.cfg.Rates[c]
	if rate <= 0 || e.rng.float64() >= rate {
		return false
	}
	e.counts[c]++
	e.sched = append(e.sched, Injection{Seq: e.seq, Class: c, BDF: bdf, Addr: addr})
	if e.Sink != nil {
		e.Sink.RecordFault(uint8(c), bdf, addr)
	}
	return true
}

// flip flips one deterministically chosen bit of buf.
func (e *Engine) flip(buf []byte) {
	if len(buf) == 0 {
		return
	}
	i := int(e.rng.next() % uint64(len(buf)))
	buf[i] ^= 1 << (e.rng.next() % 8)
}

// ReadFault implements mem.FaultHook: it may corrupt the data just read.
func (e *Engine) ReadFault(pa mem.PA, buf []byte) bool {
	if !e.roll(MemReadCorrupt, 0, uint64(pa)) {
		return false
	}
	e.flip(buf)
	return true
}

// WriteFault implements mem.FaultHook: it may corrupt the data just stored
// (in place) and reports whether the written cacheline must be poisoned.
func (e *Engine) WriteFault(pa mem.PA, stored []byte) (poison bool) {
	if e == nil {
		return false
	}
	if e.roll(MemWriteCorrupt, 0, uint64(pa)) {
		e.flip(stored)
	}
	return e.roll(MemPoison, 0, uint64(pa))
}

// StaleDMA possibly redirects a device DMA to StaleIOVA (package dma calls
// this before translating).
func (e *Engine) StaleDMA(bdf pci.BDF, iova uint64) (uint64, bool) {
	if !e.roll(DMAStale, bdf, iova) {
		return iova, false
	}
	return StaleIOVA, true
}

// FlipDescriptor possibly flips one bit across the two words of a fetched
// descriptor, reporting whether it did.
func (e *Engine) FlipDescriptor(bdf pci.BDF, addr uint64, w0, w1 *uint64) bool {
	if !e.roll(DescBitFlip, bdf, addr) {
		return false
	}
	bit := e.rng.next() % 128
	if bit < 64 {
		*w0 ^= 1 << bit
	} else {
		*w1 ^= 1 << (bit - 64)
	}
	return true
}

// HangCheck is consulted by device models before processing their queues:
// it reports whether the device is (or just became) hung. A hung device
// stays hung until ClearHang (the driver's reset).
func (e *Engine) HangCheck(bdf pci.BDF) bool {
	if e == nil {
		return false
	}
	if e.hung[bdf] {
		return true
	}
	if e.roll(DeviceHang, bdf, 0) {
		e.hung[bdf] = true
		return true
	}
	return false
}

// Hung reports whether the device is currently hung, without consuming an
// injection opportunity.
func (e *Engine) Hung(bdf pci.BDF) bool { return e != nil && e.hung[bdf] }

// ClearHang un-wedges the device; drivers call it from their reset path.
func (e *Engine) ClearHang(bdf pci.BDF) {
	if e != nil {
		delete(e.hung, bdf)
	}
}

// DropInvalidation reports whether a queued invalidation descriptor is
// silently dropped by the hardware.
func (e *Engine) DropInvalidation(bdf pci.BDF, addr uint64) bool {
	return e.roll(InvDrop, bdf, addr)
}

// DelayInvalidation reports whether a queued invalidation is deferred to the
// next queue drain.
func (e *Engine) DelayInvalidation(bdf pci.BDF, addr uint64) bool {
	return e.roll(InvDelay, bdf, addr)
}
