package core

import (
	"errors"
	"testing"
	"testing/quick"

	"riommu/internal/cycles"
	"riommu/internal/mem"
	"riommu/internal/pci"
)

var dev = pci.NewBDF(0, 3, 0)

func setup(t *testing.T, coherent bool, ringSizes ...uint32) (*Driver, *RIOMMU, *mem.PhysMem, *cycles.Clock) {
	t.Helper()
	if len(ringSizes) == 0 {
		ringSizes = []uint32{256}
	}
	mm := mustMem(t, 2048*mem.PageSize)
	clk := &cycles.Clock{}
	model := cycles.DefaultModel()
	hw := New(clk, &model, mm)
	d, err := NewDriver(clk, &model, mm, hw, dev, ringSizes, coherent)
	if err != nil {
		t.Fatal(err)
	}
	return d, hw, mm, clk
}

func buffer(t *testing.T, mm *mem.PhysMem) mem.PA {
	t.Helper()
	f, err := mm.AllocFrame()
	if err != nil {
		t.Fatal(err)
	}
	return f.PA()
}

func TestIOVAPackRoundTrip(t *testing.T) {
	prop := func(off uint32, rentry uint32, rid uint16) bool {
		off &= MaxOffset - 1
		rentry &= MaxRingSize - 1
		v := PackIOVA(off, rentry, rid)
		return v.Offset() == off && v.REntry() == rentry && v.RID() == rid
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestIOVAAdd(t *testing.T) {
	v := PackIOVA(100, 7, 3)
	w := v.Add(50)
	if w.Offset() != 150 || w.REntry() != 7 || w.RID() != 3 {
		t.Errorf("Add: %v", w)
	}
	defer func() {
		if recover() == nil {
			t.Error("Add overflow did not panic")
		}
	}()
	PackIOVA(MaxOffset-1, 0, 0).Add(1)
}

func TestIOVAString(t *testing.T) {
	s := PackIOVA(0x10, 2, 1).String()
	if s != "rIOVA{rid=1 rentry=2 off=0x10}" {
		t.Errorf("String = %q", s)
	}
}

func TestMapTranslateUnmap(t *testing.T) {
	d, hw, mm, _ := setup(t, true)
	pa := buffer(t, mm) + 100 // fine-grained: arbitrary alignment

	iovaAddr, err := d.Map(0, pa, 1500, pci.DirFromDevice)
	if err != nil {
		t.Fatalf("Map: %v", err)
	}
	iova := IOVA(iovaAddr)
	if iova.Offset() != 0 || iova.RID() != 0 {
		t.Errorf("map returned %v, want offset 0 rid 0", iova)
	}
	got, err := hw.Rtranslate(dev, iova, pci.DirFromDevice)
	if err != nil {
		t.Fatalf("Rtranslate: %v", err)
	}
	if got != pa {
		t.Errorf("translate = %#x, want %#x", got, pa)
	}
	// Offset arithmetic within the buffer.
	got, err = hw.Rtranslate(dev, iova.Add(1000), pci.DirFromDevice)
	if err != nil {
		t.Fatal(err)
	}
	if got != pa+1000 {
		t.Errorf("offset translate = %#x, want %#x", got, pa+1000)
	}

	if err := d.Unmap(0, iovaAddr, 0, true); err != nil {
		t.Fatalf("Unmap: %v", err)
	}
	if _, err := hw.Rtranslate(dev, iova, pci.DirFromDevice); err == nil {
		t.Fatal("translation after unmap+invalidate must fault")
	}
	if d.Device().Ring(0).Mapped() != 0 {
		t.Error("nmapped not back to 0")
	}
}

func TestFineGrainedProtection(t *testing.T) {
	// Two buffers on the same physical page: unmapping one must not leave
	// the other's page accessible beyond its own bounds, and an access past
	// a buffer's size must fault — the vulnerability rIOMMU eliminates (§4).
	d, hw, mm, _ := setup(t, true)
	page := buffer(t, mm)
	bufA := page        // bytes [0, 512)
	bufB := page + 2048 // bytes [2048, 2560)

	va, err := d.Map(0, bufA, 512, pci.DirFromDevice)
	if err != nil {
		t.Fatal(err)
	}
	vb, err := d.Map(0, bufB, 512, pci.DirFromDevice)
	if err != nil {
		t.Fatal(err)
	}
	// Access past bufA's 512-byte bound faults even though the page is
	// partially mapped through bufB.
	if _, err := hw.Rtranslate(dev, IOVA(va).Add(512), pci.DirFromDevice); err == nil {
		t.Error("access past buffer size must fault (fine-grained protection)")
	}
	// Unmap bufA; bufB remains reachable, bufA does not.
	if err := d.Unmap(0, va, 0, true); err != nil {
		t.Fatal(err)
	}
	if _, err := hw.Rtranslate(dev, IOVA(vb), pci.DirFromDevice); err != nil {
		t.Errorf("bufB unreachable after unmapping bufA: %v", err)
	}
	if _, err := hw.Rtranslate(dev, IOVA(va), pci.DirFromDevice); err != nil {
		// va's rentry was invalidated; the fresh walk faults. Good.
	} else {
		t.Error("bufA reachable after unmap")
	}
	if err := d.Unmap(0, vb, 0, true); err != nil {
		t.Fatal(err)
	}
}

func TestDirectionEnforced(t *testing.T) {
	d, hw, mm, _ := setup(t, true)
	pa := buffer(t, mm)
	va, err := d.Map(0, pa, 256, pci.DirToDevice)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hw.Rtranslate(dev, IOVA(va), pci.DirFromDevice); err == nil {
		t.Error("device write through a to-device mapping must fault")
	}
	var iopf *IOPF
	_, err = hw.Rtranslate(dev, IOVA(va), pci.DirFromDevice)
	if !errors.As(err, &iopf) {
		t.Errorf("fault type = %T", err)
	} else if iopf.Error() == "" {
		t.Error("empty IOPF message")
	}
	if err := d.Unmap(0, va, 0, true); err != nil {
		t.Fatal(err)
	}
}

func TestRingOverflow(t *testing.T) {
	d, _, mm, _ := setup(t, true, 4)
	pa := buffer(t, mm)
	var vs []uint64
	for i := 0; i < 4; i++ {
		v, err := d.Map(0, pa, 64, pci.DirBidi)
		if err != nil {
			t.Fatalf("map %d: %v", i, err)
		}
		vs = append(vs, v)
	}
	if _, err := d.Map(0, pa, 64, pci.DirBidi); !errors.Is(err, ErrOverflow) {
		t.Errorf("full ring map error = %v, want ErrOverflow", err)
	}
	// Draining one slot makes room again.
	if err := d.Unmap(0, vs[0], 0, true); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Map(0, pa, 64, pci.DirBidi); err != nil {
		t.Errorf("map after drain: %v", err)
	}
}

func TestRingWraparound(t *testing.T) {
	d, hw, mm, _ := setup(t, true, 8)
	pa := buffer(t, mm)
	// Map/translate/unmap 50 buffers through an 8-entry ring: the tail
	// wraps six times and every translation must still be exact.
	for i := 0; i < 50; i++ {
		v, err := d.Map(0, pa+mem.PA(i%7)*64, 64, pci.DirFromDevice)
		if err != nil {
			t.Fatalf("map %d: %v", i, err)
		}
		got, err := hw.Rtranslate(dev, IOVA(v), pci.DirFromDevice)
		if err != nil {
			t.Fatalf("translate %d: %v", i, err)
		}
		if got != pa+mem.PA(i%7)*64 {
			t.Fatalf("translate %d = %#x", i, got)
		}
		if err := d.Unmap(0, v, 0, true); err != nil {
			t.Fatalf("unmap %d: %v", i, err)
		}
	}
}

func TestSequentialPrefetchHits(t *testing.T) {
	// The headline design property: a burst of in-order translations is
	// served by the prefetched next rPTE; only the first access per burst
	// fetches from DRAM.
	d, hw, mm, _ := setup(t, true, 64)
	pa := buffer(t, mm)
	var vs []uint64
	for i := 0; i < 32; i++ {
		v, err := d.Map(0, pa, 64, pci.DirFromDevice)
		if err != nil {
			t.Fatal(err)
		}
		vs = append(vs, v)
	}
	for _, v := range vs {
		if _, err := hw.Rtranslate(dev, IOVA(v), pci.DirFromDevice); err != nil {
			t.Fatal(err)
		}
	}
	s := hw.Stats()
	if s.PrefetchHits != 31 {
		t.Errorf("PrefetchHits = %d, want 31 (all but the first)", s.PrefetchHits)
	}
	if s.TableFetches != 1 {
		t.Errorf("TableFetches = %d, want 1", s.TableFetches)
	}
	for i, v := range vs {
		if err := d.Unmap(0, v, 0, i == len(vs)-1); err != nil {
			t.Fatal(err)
		}
	}
}

func TestOneInvalidationPerBurst(t *testing.T) {
	// §4: given a burst of unmaps, only the last IOVA requires an explicit
	// invalidation, because each rRING has at most one rIOTLB entry.
	d, hw, mm, _ := setup(t, true, 256)
	pa := buffer(t, mm)
	var vs []uint64
	for i := 0; i < 200; i++ {
		v, err := d.Map(0, pa, 64, pci.DirFromDevice)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := hw.Rtranslate(dev, IOVA(v), pci.DirFromDevice); err != nil {
			t.Fatal(err)
		}
		vs = append(vs, v)
	}
	before := hw.Stats().Invalidations
	for i, v := range vs {
		if err := d.Unmap(0, v, 0, i == len(vs)-1); err != nil {
			t.Fatal(err)
		}
	}
	if got := hw.Stats().Invalidations - before; got != 1 {
		t.Errorf("burst of 200 unmaps issued %d invalidations, want 1", got)
	}
	// And after the burst-final invalidation the ring is clean: a stale
	// access faults.
	if _, err := hw.Rtranslate(dev, IOVA(vs[100]), pci.DirFromDevice); err == nil {
		t.Error("post-burst stale access must fault")
	}
}

func TestAtMostOneTLBEntryPerRing(t *testing.T) {
	d, hw, mm, _ := setup(t, true, 128, 128)
	pa := buffer(t, mm)
	for i := 0; i < 40; i++ {
		v0, err := d.Map(0, pa, 64, pci.DirFromDevice)
		if err != nil {
			t.Fatal(err)
		}
		v1, err := d.Map(1, pa, 64, pci.DirToDevice)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := hw.Rtranslate(dev, IOVA(v0), pci.DirFromDevice); err != nil {
			t.Fatal(err)
		}
		if _, err := hw.Rtranslate(dev, IOVA(v1), pci.DirToDevice); err != nil {
			t.Fatal(err)
		}
		if hw.TLBEntries() > 2 {
			t.Fatalf("rIOTLB holds %d entries for 2 rings", hw.TLBEntries())
		}
		if err := d.Unmap(0, v0, 0, true); err != nil {
			t.Fatal(err)
		}
		if err := d.Unmap(1, v1, 0, true); err != nil {
			t.Fatal(err)
		}
	}
}

func TestOutOfOrderAccess(t *testing.T) {
	// §4 Applicability: IOVAs may be *used* out of order while mapped; only
	// the prefetch benefit is lost.
	d, hw, mm, _ := setup(t, true, 64)
	pa := buffer(t, mm)
	var vs []uint64
	for i := 0; i < 16; i++ {
		v, err := d.Map(0, pa+mem.PA(i)*128, 128, pci.DirFromDevice)
		if err != nil {
			t.Fatal(err)
		}
		vs = append(vs, v)
	}
	// Access in reverse order: every translation must still be correct.
	for i := len(vs) - 1; i >= 0; i-- {
		got, err := hw.Rtranslate(dev, IOVA(vs[i]), pci.DirFromDevice)
		if err != nil {
			t.Fatalf("reverse access %d: %v", i, err)
		}
		if got != pa+mem.PA(i)*128 {
			t.Fatalf("reverse access %d = %#x", i, got)
		}
	}
	if hw.Stats().PrefetchHits != 0 {
		t.Errorf("PrefetchHits = %d for reverse access, want 0", hw.Stats().PrefetchHits)
	}
	for i, v := range vs {
		if err := d.Unmap(0, v, 0, i == len(vs)-1); err != nil {
			t.Fatal(err)
		}
	}
}

func TestWalkBoundsChecks(t *testing.T) {
	_, hw, _, _ := setup(t, true, 16)
	// rid out of range.
	if _, err := hw.Rtranslate(dev, PackIOVA(0, 0, 9), pci.DirFromDevice); err == nil {
		t.Error("out-of-range rid must fault")
	}
	// rentry out of range.
	if _, err := hw.Rtranslate(dev, PackIOVA(0, 20, 0), pci.DirFromDevice); err == nil {
		t.Error("out-of-range rentry must fault")
	}
	// Unknown device.
	if _, err := hw.Rtranslate(pci.NewBDF(7, 7, 7), PackIOVA(0, 0, 0), pci.DirFromDevice); err == nil {
		t.Error("unknown bdf must fault")
	}
	// Invalid rPTE.
	if _, err := hw.Rtranslate(dev, PackIOVA(0, 3, 0), pci.DirFromDevice); err == nil {
		t.Error("invalid rPTE must fault")
	}
	if hw.Stats().Faults != 4 {
		t.Errorf("Faults = %d, want 4", hw.Stats().Faults)
	}
}

func TestTranslateSizeBound(t *testing.T) {
	d, hw, mm, _ := setup(t, true)
	pa := buffer(t, mm)
	v, err := d.Map(0, pa, 100, pci.DirFromDevice)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hw.Translate(dev, v, 100, pci.DirFromDevice); err != nil {
		t.Errorf("exact-size access: %v", err)
	}
	if _, err := hw.Translate(dev, v, 101, pci.DirFromDevice); err == nil {
		t.Error("oversized access must fault")
	}
	if _, err := hw.Translate(dev, uint64(IOVA(v).Add(60)), 41, pci.DirFromDevice); err == nil {
		t.Error("offset+size past buffer must fault")
	}
	if err := d.Unmap(0, v, 0, true); err != nil {
		t.Fatal(err)
	}
}

func TestCoherencyModesCost(t *testing.T) {
	run := func(coherent bool) uint64 {
		d, _, mm, clk := setup(t, coherent)
		pa := buffer(t, mm)
		before := clk.Now()
		v, err := d.Map(0, pa, 64, pci.DirFromDevice)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Unmap(0, v, 0, false); err != nil {
			t.Fatal(err)
		}
		return clk.Now() - before
	}
	coh := run(true)
	inc := run(false)
	model := cycles.DefaultModel()
	wantDelta := 2 * (model.CachelineFlush + model.MemoryBarrier) // one per sync_mem, map+unmap
	if inc-coh != wantDelta {
		t.Errorf("riommu− − riommu = %d cycles per map/unmap pair, want %d", inc-coh, wantDelta)
	}
}

func TestMapValidation(t *testing.T) {
	d, _, mm, _ := setup(t, true)
	pa := buffer(t, mm)
	if _, err := d.Map(5, pa, 64, pci.DirBidi); err == nil {
		t.Error("map on nonexistent ring should fail")
	}
	if _, err := d.Map(0, pa, 0, pci.DirBidi); err == nil {
		t.Error("zero-size map should fail")
	}
	if _, err := d.Map(0, pa, MaxOffset, pci.DirBidi); err == nil {
		t.Error("u30-overflow size should fail")
	}
	if _, err := d.Map(0, pa, 64, pci.DirNone); err == nil {
		t.Error("directionless map should fail")
	}
}

func TestUnmapValidation(t *testing.T) {
	d, _, _, _ := setup(t, true)
	if err := d.Unmap(0, uint64(PackIOVA(0, 0, 9)), 0, true); err == nil {
		t.Error("unmap on nonexistent ring should fail")
	}
	if err := d.Unmap(0, uint64(PackIOVA(0, 999, 0)), 0, true); err == nil {
		t.Error("unmap with out-of-range rentry should fail")
	}
	if err := d.Unmap(0, uint64(PackIOVA(0, 3, 0)), 0, true); err == nil {
		t.Error("unmap of never-mapped rentry should fail")
	}
}

func TestPinningLifecycle(t *testing.T) {
	d, _, mm, _ := setup(t, true)
	pa := buffer(t, mm)
	v, err := d.Map(0, pa, 64, pci.DirFromDevice)
	if err != nil {
		t.Fatal(err)
	}
	if !mm.Pinned(pa) {
		t.Error("buffer not pinned while mapped")
	}
	if err := d.Unmap(0, v, 0, true); err != nil {
		t.Fatal(err)
	}
	if mm.Pinned(pa) {
		t.Error("buffer still pinned after unmap")
	}
}

func TestAttachValidation(t *testing.T) {
	mm := mustMem(t, 256*mem.PageSize)
	clk := &cycles.Clock{}
	model := cycles.DefaultModel()
	hw := New(clk, &model, mm)
	if _, err := hw.AttachDevice(dev, nil); err == nil {
		t.Error("attach with no rings should fail")
	}
	if _, err := hw.AttachDevice(dev, []uint32{0}); err == nil {
		t.Error("attach with zero-size ring should fail")
	}
	if _, err := hw.AttachDevice(dev, []uint32{MaxRingSize}); err == nil {
		t.Error("attach with u18-overflow ring should fail")
	}
	if _, err := hw.AttachDevice(dev, []uint32{16}); err != nil {
		t.Fatal(err)
	}
	if _, err := hw.AttachDevice(dev, []uint32{16}); err == nil {
		t.Error("duplicate attach should fail")
	}
	if hw.Device(dev) == nil {
		t.Error("Device lookup failed")
	}
	if err := hw.DetachDevice(dev); err != nil {
		t.Fatal(err)
	}
	if err := hw.DetachDevice(dev); err == nil {
		t.Error("double detach should fail")
	}
}

func TestDetachFreesTableFrames(t *testing.T) {
	mm := mustMem(t, 256*mem.PageSize)
	clk := &cycles.Clock{}
	model := cycles.DefaultModel()
	hw := New(clk, &model, mm)
	before := mm.FreeFrames()
	// 1024-entry ring needs 4 frames (16 KiB of rPTEs).
	if _, err := hw.AttachDevice(dev, []uint32{1024, 64}); err != nil {
		t.Fatal(err)
	}
	if err := hw.DetachDevice(dev); err != nil {
		t.Fatal(err)
	}
	if got := mm.FreeFrames(); got != before {
		t.Errorf("frame leak: %d free, want %d", got, before)
	}
}

// Property: any in-range interleaving of map/translate/unmap keeps the
// rIOTLB at <= 1 entry per ring and translations exact per a shadow model.
func TestShadowModelProperty(t *testing.T) {
	prop := func(ops []uint8) bool {
		mm := mustMem(t, 512*mem.PageSize)
		clk := &cycles.Clock{}
		model := cycles.DefaultModel()
		hw := New(clk, &model, mm)
		d, err := NewDriver(clk, &model, mm, hw, dev, []uint32{32}, true)
		if err != nil {
			return false
		}
		pa := func() mem.PA { f, _ := mm.AllocFrame(); return f.PA() }()

		type mapping struct {
			iova uint64
			pa   mem.PA
		}
		var live []mapping
		for _, op := range ops {
			switch op % 3 {
			case 0: // map
				target := pa + mem.PA(op)*8
				v, err := d.Map(0, target, 64, pci.DirFromDevice)
				if errors.Is(err, ErrOverflow) {
					continue
				}
				if err != nil {
					return false
				}
				live = append(live, mapping{v, target})
			case 1: // translate a random live mapping
				if len(live) == 0 {
					continue
				}
				m := live[int(op)%len(live)]
				got, err := hw.Rtranslate(dev, IOVA(m.iova), pci.DirFromDevice)
				if err != nil || got != m.pa {
					return false
				}
			case 2: // unmap FIFO (ring order)
				if len(live) == 0 {
					continue
				}
				m := live[0]
				live = live[1:]
				if err := d.Unmap(0, m.iova, 0, true); err != nil {
					return false
				}
			}
			if hw.TLBEntries() > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
