package core_test

import "riommu/internal/mem"

// mustMem allocates simulated physical memory for the examples; sizes are
// fixed, so failure is a programming error.
func mustMem(bytes uint64) *mem.PhysMem {
	m, err := mem.New(bytes)
	if err != nil {
		panic(err)
	}
	return m
}
