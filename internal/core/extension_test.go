package core

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"riommu/internal/device"
	"riommu/internal/dma"
	"riommu/internal/mem"
	"riommu/internal/pci"
)

// TestMapAtOutOfOrder exercises the §4 AHCI extension: slot-indexed flat
// table entries unmapped in arbitrary completion order.
func TestMapAtOutOfOrder(t *testing.T) {
	d, hw, mm, _ := setup(t, true, 32)
	pa := buffer(t, mm)

	// Map 8 slots explicitly.
	iovas := make([]uint64, 8)
	for i := range iovas {
		v, err := d.MapAt(0, uint32(i), pa+mem.PA(i*64), 64, pci.DirBidi)
		if err != nil {
			t.Fatalf("MapAt %d: %v", i, err)
		}
		iovas[i] = v
		if IOVA(v).REntry() != uint32(i) {
			t.Fatalf("MapAt %d returned rentry %d", i, IOVA(v).REntry())
		}
	}
	// Translate and unmap in shuffled order; every access must be exact.
	order := []int{5, 1, 7, 0, 3, 6, 2, 4}
	for n, i := range order {
		got, err := hw.Rtranslate(dev, IOVA(iovas[i]), pci.DirFromDevice)
		if err != nil {
			t.Fatalf("translate slot %d: %v", i, err)
		}
		if got != pa+mem.PA(i*64) {
			t.Fatalf("slot %d -> %#x", i, got)
		}
		if err := d.Unmap(0, iovas[i], 0, n == len(order)-1); err != nil {
			t.Fatalf("unmap slot %d: %v", i, err)
		}
	}
	if d.Device().Ring(0).Mapped() != 0 {
		t.Error("nmapped != 0 after out-of-order drain")
	}
}

func TestMapAtValidation(t *testing.T) {
	d, _, mm, _ := setup(t, true, 8)
	pa := buffer(t, mm)
	if _, err := d.MapAt(9, 0, pa, 64, pci.DirBidi); err == nil {
		t.Error("bad ring should fail")
	}
	if _, err := d.MapAt(0, 99, pa, 64, pci.DirBidi); err == nil {
		t.Error("out-of-range rentry should fail")
	}
	if _, err := d.MapAt(0, 0, pa, 0, pci.DirBidi); err == nil {
		t.Error("zero size should fail")
	}
	if _, err := d.MapAt(0, 0, pa, 64, pci.DirNone); err == nil {
		t.Error("no direction should fail")
	}
	if _, err := d.MapAt(0, 3, pa, 64, pci.DirBidi); err != nil {
		t.Fatal(err)
	}
	if _, err := d.MapAt(0, 3, pa, 64, pci.DirBidi); err == nil {
		t.Error("double MapAt on a slot should fail")
	}
}

// TestMapTailCollisionGuard: ordinary Map must refuse to overwrite a live
// entry left behind by out-of-order unmaps.
func TestMapTailCollisionGuard(t *testing.T) {
	d, _, mm, _ := setup(t, true, 4)
	pa := buffer(t, mm)
	var vs []uint64
	for i := 0; i < 3; i++ {
		v, err := d.Map(0, pa, 64, pci.DirBidi)
		if err != nil {
			t.Fatal(err)
		}
		vs = append(vs, v)
	}
	// Free the middle two out of order; entry 0 stays live. Tail is at 3;
	// after one more map (slot 3), the next map would land on live slot 0.
	if err := d.Unmap(0, vs[2], 0, false); err != nil {
		t.Fatal(err)
	}
	if err := d.Unmap(0, vs[1], 0, true); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Map(0, pa, 64, pci.DirBidi); err != nil { // slot 3
		t.Fatal(err)
	}
	// nmapped = 2 < size = 4, but slot 0 is still valid: must refuse.
	if _, err := d.Map(0, pa, 64, pci.DirBidi); !errors.Is(err, ErrOverflow) {
		t.Errorf("tail collision returned %v, want ErrOverflow", err)
	}
}

// TestSATAUnderRIOMMU drives the AHCI device through rIOMMU protection with
// MapAt slot-indexed mappings and shuffled completion order — the full §4
// extension working end to end.
func TestSATAUnderRIOMMU(t *testing.T) {
	d, hw, mm, _ := setup(t, true, device.SATASlots)
	eng := dma.NewEngine(mm, hw)
	disk := device.NewSATA(dev, eng, 512, 4096)

	// For each command: reserve the AHCI slot, bind the buffer to the flat
	// table entry with the same index, then issue with the rIOVA.
	iovas := map[int]uint64{}
	for i := 0; i < 16; i++ {
		f, err := mm.AllocFrame()
		if err != nil {
			t.Fatal(err)
		}
		if err := mm.Write(f.PA(), bytes.Repeat([]byte{byte(i + 1)}, 512)); err != nil {
			t.Fatal(err)
		}
		iova, err := d.MapAt(0, uint32(i), f.PA(), 512, pci.DirToDevice)
		if err != nil {
			t.Fatal(err)
		}
		slot, err := disk.Issue(device.SATACommand{BufIOVA: iova, Block: uint64(i), Length: 512, Op: device.SATAWrite})
		if err != nil {
			t.Fatal(err)
		}
		if slot != i {
			t.Fatalf("slot %d != %d", slot, i)
		}
		iovas[slot] = iova
	}
	order, err := disk.CompleteAll(rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatalf("out-of-order completion through rIOMMU: %v", err)
	}
	if len(order) != 16 {
		t.Fatalf("completed %d", len(order))
	}
	// Unmap in the (shuffled) completion order.
	for n, slot := range order {
		if err := d.Unmap(0, iovas[slot], 0, n == len(order)-1); err != nil {
			t.Fatalf("unmap slot %d: %v", slot, err)
		}
	}
	if hw.Stats().Faults != 0 {
		t.Errorf("faults = %d", hw.Stats().Faults)
	}
	if disk.Commands != 16 {
		t.Errorf("disk processed %d commands", disk.Commands)
	}
}

// TestDisablePrefetchStillCorrect: §4 says the design works just as well
// without the prefetched next field — correctness is unchanged, only the
// device-side fetch count grows.
func TestDisablePrefetchStillCorrect(t *testing.T) {
	d, hw, mm, _ := setup(t, true, 64)
	hw.DisablePrefetch = true
	pa := buffer(t, mm)
	var vs []uint64
	for i := 0; i < 32; i++ {
		v, err := d.Map(0, pa+mem.PA(i*64), 64, pci.DirFromDevice)
		if err != nil {
			t.Fatal(err)
		}
		vs = append(vs, v)
	}
	for i, v := range vs {
		got, err := hw.Rtranslate(dev, IOVA(v), pci.DirFromDevice)
		if err != nil {
			t.Fatalf("translate %d: %v", i, err)
		}
		if got != pa+mem.PA(i*64) {
			t.Fatalf("translate %d wrong", i)
		}
	}
	st := hw.Stats()
	if st.PrefetchHits != 0 {
		t.Errorf("PrefetchHits = %d with prefetch disabled", st.PrefetchHits)
	}
	if st.TableFetches != 32 {
		t.Errorf("TableFetches = %d, want 32 (every translation walks)", st.TableFetches)
	}
	for i, v := range vs {
		if err := d.Unmap(0, v, 0, i == len(vs)-1); err != nil {
			t.Fatal(err)
		}
	}
}
