package core

import (
	"fmt"

	"riommu/internal/cycles"
	"riommu/internal/mem"
	"riommu/internal/pci"
)

// rPTE memory layout (Figure 9c): 128 bits per entry in simulated physical
// memory. Word 0 holds phys_addr; word 1 packs size (u30), dir (u2) and
// valid (u1).
const (
	rpteBytes = 16

	rpteSizeShift  = 0
	rpteDirShift   = 30
	rpteValidShift = 32
)

// rpte is the decoded in-flight copy of a flat-table entry.
type rpte struct {
	physAddr mem.PA
	size     uint32
	dir      pci.Dir
	valid    bool
}

func encodeRPTE(p rpte) (w0, w1 uint64) {
	w0 = uint64(p.physAddr)
	w1 = uint64(p.size&(MaxOffset-1))<<rpteSizeShift |
		uint64(p.dir&3)<<rpteDirShift
	if p.valid {
		w1 |= 1 << rpteValidShift
	}
	return w0, w1
}

func decodeRPTE(w0, w1 uint64) rpte {
	return rpte{
		physAddr: mem.PA(w0),
		size:     uint32(w1>>rpteSizeShift) & (MaxOffset - 1),
		dir:      pci.Dir(w1>>rpteDirShift) & 3,
		valid:    w1>>rpteValidShift&1 == 1,
	}
}

// Ring is an rRING (Figure 9b): a flat page table backing one device ring.
// The first two fields are hardware-visible (the flat table's location and
// size); tail and nmapped are used only by the OS driver.
type Ring struct {
	tablePA mem.PA // physical base of the rPTE array
	size    uint32 // number of rPTEs (u18)
	frames  mem.PFN
	nframes int

	tail    uint32 // SW only: next entry to allocate
	nmapped uint32 // SW only: live mappings
}

// Size returns the number of entries in the flat table.
func (r *Ring) Size() uint32 { return r.size }

// Mapped returns the number of live mappings (SW bookkeeping).
func (r *Ring) Mapped() uint32 { return r.nmapped }

// Device is an rDEVICE (Figure 9a): the per-device array of rRINGs, pointed
// to by the context table entry of its bus-device-function.
type Device struct {
	bdf   pci.BDF
	rings []*Ring
}

// BDF returns the device's PCI identity.
func (d *Device) BDF() pci.BDF { return d.bdf }

// Rings returns the number of flat tables the device owns.
func (d *Device) Rings() int { return len(d.rings) }

// Ring returns ring rid, or nil if out of range.
func (d *Device) Ring(rid int) *Ring {
	if rid < 0 || rid >= len(d.rings) {
		return nil
	}
	return d.rings[rid]
}

// tlbKey identifies the single rIOTLB entry a ring may occupy (bdf+rid).
type tlbKey struct {
	bdf pci.BDF
	rid uint16
}

// tlbEntry is an rIOTLB_entry (Figure 9e): the cached "current" rPTE of one
// ring plus an optionally prefetched copy of the subsequent rPTE. Entries are
// allocated once per ring and recycled across invalidations (present gates
// liveness), so the steady-state translate path allocates nothing.
type tlbEntry struct {
	bdf     pci.BDF
	rid     uint16
	present bool
	rentry  uint32
	rpte    rpte
	next    rpte // prefetched copy; next.valid gates its use
}

// IOPF is the I/O page fault raised by rtranslate/rtable_walk. OSes
// typically reinitialize the device on receiving one (§4).
type IOPF struct {
	BDF    pci.BDF
	IOVA   IOVA
	Reason string
}

func (e *IOPF) Error() string {
	return fmt.Sprintf("riommu: I/O page fault dev=%s %s: %s", e.BDF, e.IOVA, e.Reason)
}

// Stats counts rIOMMU hardware events.
type Stats struct {
	Translations  uint64
	PrefetchHits  uint64 // syncs satisfied by the prefetched next rPTE
	TableFetches  uint64 // rPTE fetches from DRAM (walks + failed prefetch)
	Invalidations uint64 // explicit rIOTLB invalidations (end of burst)
	Faults        uint64
}

// RIOMMU is the rIOMMU hardware: the registry of rDEVICEs plus the rIOTLB.
type RIOMMU struct {
	clk   *cycles.Clock
	model *cycles.Model
	mm    *mem.PhysMem

	devices map[pci.BDF]*Device
	tlb     map[tlbKey]*tlbEntry
	tlbLive int // entries with present set (TLBEntries)
	stats   Stats
	aud     InvObserver

	// lastKey/lastE cache the most recently used rIOTLB entry so that the
	// common case — a device streaming through one ring — resolves with zero
	// map lookups. lastE always points at the map's entry for lastKey.
	lastKey tlbKey
	lastE   *tlbEntry

	// DisablePrefetch turns off the speculative next-rPTE load. The design
	// does not depend on it (§4: "works just as well without it" for
	// correctness); the ablation experiment quantifies what it buys on the
	// device side.
	DisablePrefetch bool
}

// New creates an rIOMMU over the given simulated memory.
func New(clk *cycles.Clock, model *cycles.Model, mm *mem.PhysMem) *RIOMMU {
	return &RIOMMU{
		clk:     clk,
		model:   model,
		mm:      mm,
		devices: make(map[pci.BDF]*Device),
		tlb:     make(map[tlbKey]*tlbEntry),
	}
}

// Stats returns a copy of the hardware event counters.
func (u *RIOMMU) Stats() Stats { return u.stats }

// TLBEntries returns the number of live rIOTLB entries (at most one per
// ring, by construction).
func (u *RIOMMU) TLBEntries() int { return u.tlbLive }

// AttachDevice registers a device with ringSizes[i] entries in ring i,
// allocating each flat table in simulated physical memory. Ring sizes must
// fit the u18 rentry field.
func (u *RIOMMU) AttachDevice(bdf pci.BDF, ringSizes []uint32) (*Device, error) {
	if _, dup := u.devices[bdf]; dup {
		return nil, fmt.Errorf("riommu: device %s already attached", bdf)
	}
	if len(ringSizes) == 0 || len(ringSizes) >= MaxRings {
		return nil, fmt.Errorf("riommu: device needs 1..%d rings, got %d", MaxRings-1, len(ringSizes))
	}
	d := &Device{bdf: bdf}
	for rid, n := range ringSizes {
		if n == 0 || n >= MaxRingSize {
			return nil, fmt.Errorf("riommu: ring %d size %d out of u18 range", rid, n)
		}
		bytes := uint64(n) * rpteBytes
		nframes := int((bytes + mem.PageSize - 1) / mem.PageSize)
		f, err := u.mm.AllocFrames(nframes)
		if err != nil {
			return nil, fmt.Errorf("riommu: allocating flat table for ring %d: %w", rid, err)
		}
		d.rings = append(d.rings, &Ring{
			tablePA: f.PA(),
			size:    n,
			frames:  f,
			nframes: nframes,
		})
	}
	u.devices[bdf] = d
	return d, nil
}

// DetachDevice tears the device down, freeing its flat tables and purging
// its rIOTLB entries.
func (u *RIOMMU) DetachDevice(bdf pci.BDF) error {
	d, ok := u.devices[bdf]
	if !ok {
		return fmt.Errorf("riommu: device %s not attached", bdf)
	}
	for rid, r := range d.rings {
		key := tlbKey{bdf: bdf, rid: uint16(rid)}
		if e, ok := u.tlb[key]; ok {
			if e.present {
				u.tlbLive--
			}
			delete(u.tlb, key)
		}
		for i := 0; i < r.nframes; i++ {
			if err := u.mm.FreeFrame(r.frames + mem.PFN(i)); err != nil {
				return err
			}
		}
	}
	u.lastKey, u.lastE = tlbKey{}, nil // may point at a just-deleted entry
	delete(u.devices, bdf)
	return nil
}

// Device returns the attached rDEVICE for bdf, or nil.
func (u *RIOMMU) Device(bdf pci.BDF) *Device { return u.devices[bdf] }

// readRPTE fetches flat-table entry i of ring r from simulated memory.
func (u *RIOMMU) readRPTE(r *Ring, i uint32) (rpte, error) {
	pa := r.tablePA + mem.PA(uint64(i)*rpteBytes)
	w0, err := u.mm.ReadU64(pa)
	if err != nil {
		return rpte{}, err
	}
	w1, err := u.mm.ReadU64(pa + 8)
	if err != nil {
		return rpte{}, err
	}
	return decodeRPTE(w0, w1), nil
}

// writeRPTE stores flat-table entry i of ring r (used by the OS driver).
func (u *RIOMMU) writeRPTE(r *Ring, i uint32, p rpte) error {
	pa := r.tablePA + mem.PA(uint64(i)*rpteBytes)
	w0, w1 := encodeRPTE(p)
	if err := u.mm.WriteU64(pa, w0); err != nil {
		return err
	}
	return u.mm.WriteU64(pa+8, w1)
}

func (u *RIOMMU) fault(bdf pci.BDF, iova IOVA, reason string) error {
	u.stats.Faults++
	return &IOPF{BDF: bdf, IOVA: iova, Reason: reason}
}

// rtableWalk implements rtable_walk (Figure 10 top/right): bounds-check the
// rIOVA against the rDEVICE/rRING limits, fetch its rPTE from memory,
// validate it, fill the caller's rIOTLB entry in place, and attempt to
// prefetch the next one. On error e is left untouched.
func (u *RIOMMU) rtableWalk(bdf pci.BDF, iova IOVA, e *tlbEntry) error {
	d, ok := u.devices[bdf]
	if !ok {
		return u.fault(bdf, iova, "no rDEVICE for bdf")
	}
	rid := iova.RID()
	if int(rid) >= len(d.rings) {
		return u.fault(bdf, iova, "rid out of range")
	}
	r := d.rings[rid]
	if iova.REntry() >= r.size {
		return u.fault(bdf, iova, "rentry out of range")
	}
	p, err := u.readRPTE(r, iova.REntry())
	if err != nil {
		return err
	}
	u.stats.TableFetches++
	u.clk.Charge(cycles.DeviceSide, u.model.RIOTLBFetch)
	if !p.valid {
		return u.fault(bdf, iova, "invalid rPTE")
	}
	e.bdf, e.rid, e.rentry, e.rpte = bdf, rid, iova.REntry(), p
	u.rprefetch(d, e)
	return nil
}

// rprefetch implements rprefetch (Figure 10 bottom/right): copy the
// subsequent rPTE into e.next if it is currently valid. Prefetching is
// speculative and free of side effects; in real hardware it is asynchronous,
// so it charges nothing to the device-side clock.
func (u *RIOMMU) rprefetch(d *Device, e *tlbEntry) {
	if u.DisablePrefetch {
		e.next = rpte{}
		return
	}
	r := d.rings[e.rid]
	next := (e.rentry + 1) % r.size
	e.next = rpte{}
	if r.size > 1 {
		if p, err := u.readRPTE(r, next); err == nil && p.valid {
			e.next = p
		}
	}
}

// riotlbEntrySync implements riotlb_entry_sync (Figure 10 bottom/left):
// bring e up to date with the rIOVA being translated, using the prefetched
// next entry when it matches (the sequential fast path) and a table walk
// otherwise.
func (u *RIOMMU) riotlbEntrySync(bdf pci.BDF, iova IOVA, e *tlbEntry) error {
	d := u.devices[bdf]
	next := (e.rentry + 1) % d.rings[e.rid].size
	if e.next.valid && iova.REntry() == next {
		e.rpte = e.next
		e.rentry = next
		e.next.valid = false
		u.stats.PrefetchHits++
	} else {
		return u.rtableWalk(bdf, iova, e) // walk fills e and prefetches
	}
	u.rprefetch(d, e)
	return nil
}

// Rtranslate implements rtranslate (Figure 10 top/left): resolve a packed
// rIOVA to a physical address, enforcing the per-buffer size and direction
// recorded in its rPTE.
func (u *RIOMMU) Rtranslate(bdf pci.BDF, iova IOVA, dir pci.Dir) (mem.PA, error) {
	u.stats.Translations++
	key := tlbKey{bdf: bdf, rid: iova.RID()}
	e := u.lastE
	if e == nil || u.lastKey != key {
		var ok bool
		e, ok = u.tlb[key]
		if !ok {
			e = &tlbEntry{}
			u.tlb[key] = e
		}
		u.lastKey, u.lastE = key, e
	}
	if !e.present {
		if err := u.rtableWalk(bdf, iova, e); err != nil {
			return 0, err
		}
		e.present = true
		u.tlbLive++
	} else if e.rentry != iova.REntry() {
		if err := u.riotlbEntrySync(bdf, iova, e); err != nil {
			return 0, err
		}
	}
	// Note: when e.rentry == iova.rentry the cached copy is used as-is even
	// if the OS has since cleared the rPTE in memory — the rIOTLB is not
	// coherent with memory, which is precisely why the driver must issue an
	// explicit invalidation at the end of each unmap burst (§4).
	if iova.Offset() >= e.rpte.size || !e.rpte.dir.Allows(dir) {
		return 0, u.fault(bdf, iova, fmt.Sprintf("offset %#x >= size %#x or direction %s not permitted by %s",
			iova.Offset(), e.rpte.size, dir, e.rpte.dir))
	}
	return e.rpte.physAddr + mem.PA(iova.Offset()), nil
}

// Translate adapts Rtranslate to the flat-uint64 Translator interface used
// by the DMA engine. size is checked against the rPTE bound (fine-grained
// protection: the whole access must fall inside the mapped buffer).
func (u *RIOMMU) Translate(bdf pci.BDF, iovaAddr uint64, size uint32, dir pci.Dir) (mem.PA, error) {
	iova := IOVA(iovaAddr)
	pa, err := u.Rtranslate(bdf, iova, dir)
	if err != nil {
		return 0, err
	}
	if size > 0 {
		// A successful Rtranslate always leaves lastE pointing at this
		// ring's entry, so the bound check needs no second map lookup.
		if e := u.lastE; e != nil && e.present && u.lastKey == (tlbKey{bdf: bdf, rid: iova.RID()}) &&
			uint64(iova.Offset())+uint64(size) > uint64(e.rpte.size) {
			return 0, u.fault(bdf, iova, fmt.Sprintf("access of %d bytes exceeds buffer size %d", size, e.rpte.size))
		}
	}
	return pa, nil
}

// InvObserver mirrors hardware invalidations into an external shadow
// tracker; *audit.Oracle satisfies it.
type InvObserver interface {
	OnInvalidate(bdf pci.BDF, token uint64)
}

// SetAudit installs an invalidation observer (nil disables mirroring).
func (u *RIOMMU) SetAudit(o InvObserver) { u.aud = o }

// invalidate drops the ring's single rIOTLB entry (the end-of-burst
// operation issued by the OS driver's unmap).
func (u *RIOMMU) invalidate(bdf pci.BDF, rid uint16) {
	if e, ok := u.tlb[tlbKey{bdf: bdf, rid: rid}]; ok && e.present {
		e.present = false
		u.tlbLive--
	}
	u.stats.Invalidations++
	if u.aud != nil {
		u.aud.OnInvalidate(bdf, uint64(rid))
	}
}
