package core

import (
	"encoding/binary"
	"fmt"

	"riommu/internal/cycles"
	"riommu/internal/dma"
	"riommu/internal/mem"
	"riommu/internal/pci"
)

// rPTE memory layout (Figure 9c): 128 bits per entry in simulated physical
// memory. Word 0 holds phys_addr; word 1 packs size (u30), dir (u2) and
// valid (u1).
const (
	rpteBytes = 16

	rpteSizeShift  = 0
	rpteDirShift   = 30
	rpteValidShift = 32
)

// rpte is the decoded in-flight copy of a flat-table entry.
type rpte struct {
	physAddr mem.PA
	size     uint32
	dir      pci.Dir
	valid    bool
}

func encodeRPTE(p rpte) (w0, w1 uint64) {
	w0 = uint64(p.physAddr)
	w1 = uint64(p.size&(MaxOffset-1))<<rpteSizeShift |
		uint64(p.dir&3)<<rpteDirShift
	if p.valid {
		w1 |= 1 << rpteValidShift
	}
	return w0, w1
}

func decodeRPTE(w0, w1 uint64) rpte {
	return rpte{
		physAddr: mem.PA(w0),
		size:     uint32(w1>>rpteSizeShift) & (MaxOffset - 1),
		dir:      pci.Dir(w1>>rpteDirShift) & 3,
		valid:    w1>>rpteValidShift&1 == 1,
	}
}

// Ring is an rRING (Figure 9b): a flat page table backing one device ring.
// The first two fields are hardware-visible (the flat table's location and
// size); tail and nmapped are used only by the OS driver.
type Ring struct {
	tablePA mem.PA // physical base of the rPTE array
	size    uint32 // number of rPTEs (u18)
	frames  mem.PFN
	nframes int
	tbl     []byte // direct view of the flat table (mem.Span)

	tail    uint32 // SW only: next entry to allocate
	nmapped uint32 // SW only: live mappings
}

// Size returns the number of entries in the flat table.
func (r *Ring) Size() uint32 { return r.size }

// Mapped returns the number of live mappings (SW bookkeeping).
func (r *Ring) Mapped() uint32 { return r.nmapped }

// Device is an rDEVICE (Figure 9a): the per-device array of rRINGs, pointed
// to by the context table entry of its bus-device-function.
type Device struct {
	bdf   pci.BDF
	rings []*Ring
}

// BDF returns the device's PCI identity.
func (d *Device) BDF() pci.BDF { return d.bdf }

// Rings returns the number of flat tables the device owns.
func (d *Device) Rings() int { return len(d.rings) }

// Ring returns ring rid, or nil if out of range.
func (d *Device) Ring(rid int) *Ring {
	if rid < 0 || rid >= len(d.rings) {
		return nil
	}
	return d.rings[rid]
}

// tlbKey identifies the single rIOTLB entry a ring may occupy (bdf+rid).
type tlbKey struct {
	bdf pci.BDF
	rid uint16
}

// riotlb is the rIOTLB backing store in struct-of-arrays layout: one slot
// per ring, with the key, the liveness bit, the cached "current" rPTE
// position/value (Figure 9e) and the prefetched next rPTE each in their own
// parallel array. Slots are allocated once per ring and recycled across
// invalidations (present gates liveness) and detaches (free list), so the
// steady-state translate path allocates nothing, and the fields a probe
// actually touches (present/rentry) stay densely packed instead of striding
// over whole entry structs.
type riotlb struct {
	index map[tlbKey]int32

	keys    []tlbKey
	present []bool
	rentry  []uint32
	cur     []rpte
	next    []rpte // prefetched copy; next[s].valid gates its use

	free []int32 // slots returned by DetachDevice
}

// slot returns the ring's slot, creating one (recycling a freed slot when
// possible) on first use.
func (t *riotlb) slot(key tlbKey) int32 {
	if s, ok := t.index[key]; ok {
		return s
	}
	var s int32
	if n := len(t.free); n > 0 {
		s = t.free[n-1]
		t.free = t.free[:n-1]
		t.keys[s] = key
		t.present[s] = false
		t.rentry[s] = 0
		t.cur[s] = rpte{}
		t.next[s] = rpte{}
	} else {
		s = int32(len(t.keys))
		t.keys = append(t.keys, key)
		t.present = append(t.present, false)
		t.rentry = append(t.rentry, 0)
		t.cur = append(t.cur, rpte{})
		t.next = append(t.next, rpte{})
	}
	t.index[key] = s
	return s
}

// release frees the ring's slot (device detach), returning whether it was
// present.
func (t *riotlb) release(key tlbKey) bool {
	s, ok := t.index[key]
	if !ok {
		return false
	}
	live := t.present[s]
	t.present[s] = false
	delete(t.index, key)
	t.free = append(t.free, s)
	return live
}

// IOPF is the I/O page fault raised by rtranslate/rtable_walk. OSes
// typically reinitialize the device on receiving one (§4).
type IOPF struct {
	BDF    pci.BDF
	IOVA   IOVA
	Reason string
}

func (e *IOPF) Error() string {
	return fmt.Sprintf("riommu: I/O page fault dev=%s %s: %s", e.BDF, e.IOVA, e.Reason)
}

// Stats counts rIOMMU hardware events.
type Stats struct {
	Translations  uint64
	PrefetchHits  uint64 // syncs satisfied by the prefetched next rPTE
	TableFetches  uint64 // rPTE fetches from DRAM (walks + failed prefetch)
	Invalidations uint64 // explicit rIOTLB invalidations (end of burst)
	Faults        uint64
}

// RIOMMU is the rIOMMU hardware: the registry of rDEVICEs plus the rIOTLB.
type RIOMMU struct {
	clk   *cycles.Clock
	model *cycles.Model
	mm    *mem.PhysMem

	devices map[pci.BDF]*Device
	tlb     riotlb
	tlbLive int // slots with present set (TLBEntries)
	stats   Stats
	aud     InvObserver

	// lastKey/lastSlot cache the most recently used rIOTLB slot so that the
	// common case — a device streaming through one ring — resolves with zero
	// map lookups. lastSlot is -1 when the cache is empty, and otherwise
	// always the index slot for lastKey.
	lastKey  tlbKey
	lastSlot int32

	// DisablePrefetch turns off the speculative next-rPTE load. The design
	// does not depend on it (§4: "works just as well without it" for
	// correctness); the ablation experiment quantifies what it buys on the
	// device side.
	DisablePrefetch bool
}

// New creates an rIOMMU over the given simulated memory.
func New(clk *cycles.Clock, model *cycles.Model, mm *mem.PhysMem) *RIOMMU {
	return &RIOMMU{
		clk:      clk,
		model:    model,
		mm:       mm,
		devices:  make(map[pci.BDF]*Device),
		tlb:      riotlb{index: make(map[tlbKey]int32)},
		lastSlot: -1,
	}
}

// Stats returns a copy of the hardware event counters.
func (u *RIOMMU) Stats() Stats { return u.stats }

// TLBEntries returns the number of live rIOTLB entries (at most one per
// ring, by construction).
func (u *RIOMMU) TLBEntries() int { return u.tlbLive }

// AttachDevice registers a device with ringSizes[i] entries in ring i,
// allocating each flat table in simulated physical memory. Ring sizes must
// fit the u18 rentry field.
func (u *RIOMMU) AttachDevice(bdf pci.BDF, ringSizes []uint32) (*Device, error) {
	if _, dup := u.devices[bdf]; dup {
		return nil, fmt.Errorf("riommu: device %s already attached", bdf)
	}
	if len(ringSizes) == 0 || len(ringSizes) >= MaxRings {
		return nil, fmt.Errorf("riommu: device needs 1..%d rings, got %d", MaxRings-1, len(ringSizes))
	}
	d := &Device{bdf: bdf}
	for rid, n := range ringSizes {
		if n == 0 || n >= MaxRingSize {
			return nil, fmt.Errorf("riommu: ring %d size %d out of u18 range", rid, n)
		}
		bytes := uint64(n) * rpteBytes
		nframes := int((bytes + mem.PageSize - 1) / mem.PageSize)
		f, err := u.mm.AllocFrames(nframes)
		if err != nil {
			return nil, fmt.Errorf("riommu: allocating flat table for ring %d: %w", rid, err)
		}
		tbl, err := u.mm.Span(f.PA(), bytes)
		if err != nil {
			return nil, fmt.Errorf("riommu: mapping flat table for ring %d: %w", rid, err)
		}
		d.rings = append(d.rings, &Ring{
			tablePA: f.PA(),
			size:    n,
			frames:  f,
			nframes: nframes,
			tbl:     tbl,
		})
	}
	u.devices[bdf] = d
	return d, nil
}

// DetachDevice tears the device down, freeing its flat tables and purging
// its rIOTLB entries.
func (u *RIOMMU) DetachDevice(bdf pci.BDF) error {
	d, ok := u.devices[bdf]
	if !ok {
		return fmt.Errorf("riommu: device %s not attached", bdf)
	}
	for rid, r := range d.rings {
		if u.tlb.release(tlbKey{bdf: bdf, rid: uint16(rid)}) {
			u.tlbLive--
		}
		for i := 0; i < r.nframes; i++ {
			if err := u.mm.FreeFrame(r.frames + mem.PFN(i)); err != nil {
				return err
			}
		}
	}
	u.lastKey, u.lastSlot = tlbKey{}, -1 // may point at a just-freed slot
	delete(u.devices, bdf)
	return nil
}

// Device returns the attached rDEVICE for bdf, or nil.
func (u *RIOMMU) Device(bdf pci.BDF) *Device { return u.devices[bdf] }

// readRPTE fetches flat-table entry i of ring r from simulated memory. The
// flat table is read through the Span view taken at attach: the table stays
// allocated for the device's whole lifetime and callers bounds-check i
// against the ring size, so — exactly like the typed mm accessors this
// replaces — the fetch cannot fail and sees every store DMA paths make to
// the same bytes.
func (u *RIOMMU) readRPTE(r *Ring, i uint32) (rpte, error) {
	e := r.tbl[uint64(i)*rpteBytes:]
	return decodeRPTE(binary.LittleEndian.Uint64(e), binary.LittleEndian.Uint64(e[8:])), nil
}

// writeRPTE stores flat-table entry i of ring r (used by the OS driver).
func (u *RIOMMU) writeRPTE(r *Ring, i uint32, p rpte) error {
	e := r.tbl[uint64(i)*rpteBytes:]
	w0, w1 := encodeRPTE(p)
	binary.LittleEndian.PutUint64(e, w0)
	binary.LittleEndian.PutUint64(e[8:], w1)
	return nil
}

func (u *RIOMMU) fault(bdf pci.BDF, iova IOVA, reason string) error {
	u.stats.Faults++
	return &IOPF{BDF: bdf, IOVA: iova, Reason: reason}
}

// rtableWalk implements rtable_walk (Figure 10 top/right): bounds-check the
// rIOVA against the rDEVICE/rRING limits, fetch its rPTE from memory,
// validate it, fill the caller's rIOTLB slot in place, and attempt to
// prefetch the next one. On error the slot is left untouched.
func (u *RIOMMU) rtableWalk(bdf pci.BDF, iova IOVA, s int32) error {
	d, ok := u.devices[bdf]
	if !ok {
		return u.fault(bdf, iova, "no rDEVICE for bdf")
	}
	rid := iova.RID()
	if int(rid) >= len(d.rings) {
		return u.fault(bdf, iova, "rid out of range")
	}
	r := d.rings[rid]
	if iova.REntry() >= r.size {
		return u.fault(bdf, iova, "rentry out of range")
	}
	p, err := u.readRPTE(r, iova.REntry())
	if err != nil {
		return err
	}
	u.stats.TableFetches++
	u.clk.Charge(cycles.DeviceSide, u.model.RIOTLBFetch)
	if !p.valid {
		return u.fault(bdf, iova, "invalid rPTE")
	}
	u.tlb.rentry[s], u.tlb.cur[s] = iova.REntry(), p
	u.rprefetch(d, s)
	return nil
}

// rprefetch implements rprefetch (Figure 10 bottom/right): copy the
// subsequent rPTE into the slot's next field if it is currently valid.
// Prefetching is speculative and free of side effects; in real hardware it
// is asynchronous, so it charges nothing to the device-side clock.
func (u *RIOMMU) rprefetch(d *Device, s int32) {
	if u.DisablePrefetch {
		u.tlb.next[s] = rpte{}
		return
	}
	r := d.rings[u.tlb.keys[s].rid]
	next := (u.tlb.rentry[s] + 1) % r.size
	u.tlb.next[s] = rpte{}
	if r.size > 1 {
		if p, err := u.readRPTE(r, next); err == nil && p.valid {
			u.tlb.next[s] = p
		}
	}
}

// riotlbEntrySync implements riotlb_entry_sync (Figure 10 bottom/left):
// bring the slot up to date with the rIOVA being translated, using the
// prefetched next entry when it matches (the sequential fast path) and a
// table walk otherwise.
func (u *RIOMMU) riotlbEntrySync(bdf pci.BDF, iova IOVA, s int32) error {
	d := u.devices[bdf]
	next := (u.tlb.rentry[s] + 1) % d.rings[u.tlb.keys[s].rid].size
	if u.tlb.next[s].valid && iova.REntry() == next {
		u.tlb.cur[s] = u.tlb.next[s]
		u.tlb.rentry[s] = next
		u.tlb.next[s].valid = false
		u.stats.PrefetchHits++
	} else {
		return u.rtableWalk(bdf, iova, s) // walk fills the slot and prefetches
	}
	u.rprefetch(d, s)
	return nil
}

// rslot resolves the rIOTLB slot for a key through the one-element MRU
// cache.
func (u *RIOMMU) rslot(key tlbKey) int32 {
	s := u.lastSlot
	if s < 0 || u.lastKey != key {
		s = u.tlb.slot(key)
		u.lastKey, u.lastSlot = key, s
	}
	return s
}

// rtranslateSlot is the body shared by Rtranslate and the batch verb: bring
// slot s up to date for iova and resolve the offset against the cached rPTE.
func (u *RIOMMU) rtranslateSlot(bdf pci.BDF, iova IOVA, dir pci.Dir, s int32) (mem.PA, error) {
	if !u.tlb.present[s] {
		if err := u.rtableWalk(bdf, iova, s); err != nil {
			return 0, err
		}
		u.tlb.present[s] = true
		u.tlbLive++
	} else if u.tlb.rentry[s] != iova.REntry() {
		if err := u.riotlbEntrySync(bdf, iova, s); err != nil {
			return 0, err
		}
	}
	// Note: when the slot's rentry == iova.rentry the cached copy is used
	// as-is even if the OS has since cleared the rPTE in memory — the rIOTLB
	// is not coherent with memory, which is precisely why the driver must
	// issue an explicit invalidation at the end of each unmap burst (§4).
	p := &u.tlb.cur[s]
	if iova.Offset() >= p.size || !p.dir.Allows(dir) {
		return 0, u.fault(bdf, iova, fmt.Sprintf("offset %#x >= size %#x or direction %s not permitted by %s",
			iova.Offset(), p.size, dir, p.dir))
	}
	return p.physAddr + mem.PA(iova.Offset()), nil
}

// Rtranslate implements rtranslate (Figure 10 top/left): resolve a packed
// rIOVA to a physical address, enforcing the per-buffer size and direction
// recorded in its rPTE.
func (u *RIOMMU) Rtranslate(bdf pci.BDF, iova IOVA, dir pci.Dir) (mem.PA, error) {
	u.stats.Translations++
	return u.rtranslateSlot(bdf, iova, dir, u.rslot(tlbKey{bdf: bdf, rid: iova.RID()}))
}

// Translate adapts Rtranslate to the flat-uint64 Translator interface used
// by the DMA engine. size is checked against the rPTE bound (fine-grained
// protection: the whole access must fall inside the mapped buffer).
func (u *RIOMMU) Translate(bdf pci.BDF, iovaAddr uint64, size uint32, dir pci.Dir) (mem.PA, error) {
	iova := IOVA(iovaAddr)
	pa, err := u.Rtranslate(bdf, iova, dir)
	if err != nil {
		return 0, err
	}
	if size > 0 {
		// A successful Rtranslate always leaves lastSlot at this ring's
		// slot, so the bound check needs no second map lookup.
		if s := u.lastSlot; s >= 0 && u.tlb.present[s] && u.lastKey == (tlbKey{bdf: bdf, rid: iova.RID()}) &&
			uint64(iova.Offset())+uint64(size) > uint64(u.tlb.cur[s].size) {
			return 0, u.fault(bdf, iova, fmt.Sprintf("access of %d bytes exceeds buffer size %d", size, u.tlb.cur[s].size))
		}
	}
	return pa, nil
}

// TranslateBatch resolves N chunks with one call: the native batched verb of
// the dma.BatchTranslator contract. Each chunk performs exactly the scalar
// Translate's work in order (same walks, same charges, same stats), but the
// per-chunk interface dispatch and the engine-side loop disappear, and the
// MRU slot stays hot across the whole batch.
func (u *RIOMMU) TranslateBatch(bdf pci.BDF, reqs []dma.Req, out []dma.Resp) int {
	for i := range reqs {
		pa, err := u.Translate(bdf, reqs[i].IOVA, reqs[i].Size, reqs[i].Dir)
		out[i] = dma.Resp{PA: pa, Err: err}
		if err != nil {
			return i
		}
	}
	return len(reqs)
}

// InvObserver mirrors hardware invalidations into an external shadow
// tracker; *audit.Oracle satisfies it.
type InvObserver interface {
	OnInvalidate(bdf pci.BDF, token uint64)
}

// SetAudit installs an invalidation observer (nil disables mirroring).
func (u *RIOMMU) SetAudit(o InvObserver) { u.aud = o }

// invalidate drops the ring's single rIOTLB entry (the end-of-burst
// operation issued by the OS driver's unmap).
func (u *RIOMMU) invalidate(bdf pci.BDF, rid uint16) {
	if s, ok := u.tlb.index[tlbKey{bdf: bdf, rid: rid}]; ok && u.tlb.present[s] {
		u.tlb.present[s] = false
		u.tlbLive--
	}
	u.stats.Invalidations++
	if u.aud != nil {
		u.aud.OnInvalidate(bdf, uint64(rid))
	}
}
