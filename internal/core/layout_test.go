package core

import (
	"testing"
	"testing/quick"

	"riommu/internal/mem"
	"riommu/internal/pci"
)

// TestRPTEEncodeDecodeProperty: the 128-bit rPTE layout (Figure 9c) is a
// bijection over its architectural field widths.
func TestRPTEEncodeDecodeProperty(t *testing.T) {
	prop := func(addr uint64, size uint32, dir uint8, valid bool) bool {
		p := rpte{
			physAddr: mem.PA(addr),
			size:     size & (MaxOffset - 1),
			dir:      pci.Dir(dir & 3),
			valid:    valid,
		}
		w0, w1 := encodeRPTE(p)
		return decodeRPTE(w0, w1) == p
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// TestRPTELayoutGolden pins the exact bit positions of Figure 9c: word 0 is
// phys_addr (u64); word 1 packs size in bits [0,30), dir in [30,32), valid
// at bit 32.
func TestRPTELayoutGolden(t *testing.T) {
	p := rpte{physAddr: 0xDEADBEEF000, size: 0x1234, dir: pci.DirFromDevice, valid: true}
	w0, w1 := encodeRPTE(p)
	if w0 != 0xDEADBEEF000 {
		t.Errorf("word0 = %#x", w0)
	}
	wantW1 := uint64(0x1234) | uint64(2)<<30 | uint64(1)<<32
	if w1 != wantW1 {
		t.Errorf("word1 = %#x, want %#x", w1, wantW1)
	}
	// Size saturates at u30 boundary values.
	p = rpte{size: MaxOffset - 1, dir: pci.DirBidi, valid: false}
	_, w1 = encodeRPTE(p)
	if w1 != uint64(MaxOffset-1)|uint64(3)<<30 {
		t.Errorf("boundary word1 = %#x", w1)
	}
}

// TestIOVALayoutGolden pins the rIOVA packing of Figure 9d: offset in the
// low 30 bits, rentry in the next 18, rid in the top 16.
func TestIOVALayoutGolden(t *testing.T) {
	v := PackIOVA(0x3FF, 0x155, 0xAB)
	want := uint64(0x3FF) | uint64(0x155)<<30 | uint64(0xAB)<<48
	if uint64(v) != want {
		t.Errorf("packed = %#x, want %#x", uint64(v), want)
	}
	// Field widths: 30 + 18 + 16 = 64 bits exactly.
	if OffsetBits+REntryBits+RIDBits != 64 {
		t.Error("rIOVA fields do not fill 64 bits")
	}
	// Extremes survive.
	v = PackIOVA(MaxOffset-1, MaxRingSize-1, MaxRings-1)
	if v.Offset() != MaxOffset-1 || v.REntry() != MaxRingSize-1 || v.RID() != MaxRings-1 {
		t.Error("extreme field values corrupted")
	}
}

// TestIOVAUniquenessProperty: distinct (rid, rentry) pairs always pack to
// distinct IOVAs at offset zero — the property that makes the flat-table
// index usable as an address.
func TestIOVAUniquenessProperty(t *testing.T) {
	prop := func(r1, r2 uint16, e1, e2 uint32) bool {
		e1 &= MaxRingSize - 1
		e2 &= MaxRingSize - 1
		v1 := PackIOVA(0, e1, r1)
		v2 := PackIOVA(0, e2, r2)
		if r1 == r2 && e1 == e2 {
			return v1 == v2
		}
		return v1 != v2
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// TestRPTEInMemoryLayout verifies the flat table is genuinely a 16-byte-per
// -entry array in physical memory: entry i of a ring lands at
// tablePA + 16*i, and the OS-visible write is what the hardware fetch sees.
func TestRPTEInMemoryLayout(t *testing.T) {
	_, hw, mm, _ := setup(t, true, 8)
	r := hw.Device(dev).Ring(0)

	want := rpte{physAddr: 0x7000, size: 321, dir: pci.DirToDevice, valid: true}
	if err := hw.writeRPTE(r, 5, want); err != nil {
		t.Fatal(err)
	}
	// Raw memory at the architectural offset.
	w0, err := mm.ReadU64(r.tablePA + 5*rpteBytes)
	if err != nil {
		t.Fatal(err)
	}
	w1, err := mm.ReadU64(r.tablePA + 5*rpteBytes + 8)
	if err != nil {
		t.Fatal(err)
	}
	if decodeRPTE(w0, w1) != want {
		t.Error("in-memory layout does not match the architectural offsets")
	}
	got, err := hw.readRPTE(r, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Error("hardware fetch disagrees with OS write")
	}
}
