// Package core implements the paper's contribution: the ring IOMMU
// (rIOMMU). It contains literal implementations of
//
//   - the data structures of Figure 9 (rDEVICE, rRING, rPTE, rIOVA,
//     rIOTLB_entry), with rPTEs stored as 128-bit records in simulated
//     physical memory so the hardware genuinely fetches them;
//   - the hardware logic of Figure 10 (rtranslate, rtable_walk,
//     riotlb_entry_sync, rprefetch), with an rIOTLB that holds at most one
//     entry per ring, making every new translation an implicit invalidation
//     of the previous one;
//   - the OS driver of Figure 11 (map, unmap, sync_mem), whose IOVA
//     "allocation" is two integer increments and whose explicit rIOTLB
//     invalidations happen only at the end of I/O bursts.
//
// Unlike the baseline IOMMU, protection is fine-grained: an rPTE carries an
// arbitrary byte size, so two buffers sharing a page are isolated from each
// other (§4).
package core

import "fmt"

// Field widths of the rIOVA format (Figure 9d): a 64-bit value split into a
// 30-bit byte offset, an 18-bit ring-entry index, and a 16-bit ring ID.
const (
	OffsetBits = 30
	REntryBits = 18
	RIDBits    = 16

	// MaxOffset is the exclusive bound on rIOVA.offset and rPTE.size (u30).
	MaxOffset = 1 << OffsetBits
	// MaxRingSize is the exclusive bound on rRING.size and rentry (u18).
	MaxRingSize = 1 << REntryBits
	// MaxRings is the exclusive bound on ring IDs (u16).
	MaxRings = 1 << RIDBits
)

// IOVA is a packed rIOVA value. Layout (low to high bits):
// offset[0:30) | rentry[30:48) | rid[48:64). The offset occupies the low
// bits so that ordinary address arithmetic (iova + n) adjusts the offset, as
// §4 allows callers to do after map returns an offset-0 rIOVA.
type IOVA uint64

// PackIOVA assembles an rIOVA from its fields. Fields are masked to their
// architectural widths.
func PackIOVA(offset uint32, rentry uint32, rid uint16) IOVA {
	return IOVA(uint64(offset)&(MaxOffset-1) |
		uint64(rentry&(MaxRingSize-1))<<OffsetBits |
		uint64(rid)<<(OffsetBits+REntryBits))
}

// Offset returns the 30-bit byte offset.
func (v IOVA) Offset() uint32 { return uint32(v & (MaxOffset - 1)) }

// REntry returns the 18-bit flat-table index.
func (v IOVA) REntry() uint32 { return uint32(v>>OffsetBits) & (MaxRingSize - 1) }

// RID returns the 16-bit ring ID.
func (v IOVA) RID() uint16 { return uint16(v >> (OffsetBits + REntryBits)) }

// Add returns the rIOVA with its offset advanced by n bytes. It panics if
// the result overflows the 30-bit offset field, which would silently change
// the rentry — always a caller bug.
func (v IOVA) Add(n uint32) IOVA {
	off := uint64(v.Offset()) + uint64(n)
	if off >= MaxOffset {
		panic(fmt.Sprintf("core: IOVA offset overflow: %#x + %d", uint64(v), n))
	}
	return IOVA(uint64(v)&^uint64(MaxOffset-1) | off)
}

// String renders the rIOVA fields for diagnostics.
func (v IOVA) String() string {
	return fmt.Sprintf("rIOVA{rid=%d rentry=%d off=%#x}", v.RID(), v.REntry(), v.Offset())
}
