package core

import (
	"encoding/binary"
	"errors"
	"fmt"

	"riommu/internal/cycles"
	"riommu/internal/mem"
	"riommu/internal/pci"
)

// ErrOverflow is returned by Map when the ring's flat table is full
// (r.nmapped == r.size). As with other ring-based devices, overflow is legal
// and simply means the caller must slow down (§4, Applicability).
var ErrOverflow = errors.New("riommu: ring flat table overflow")

// MapObserver mirrors successful map/unmap operations into an external
// shadow tracker; *audit.Oracle satisfies it. The driver defines the
// interface locally so the dependency points from the auditor to the
// audited.
type MapObserver interface {
	OnMap(bdf pci.BDF, iova uint64, pa mem.PA, size uint32, dir pci.Dir)
	OnUnmap(bdf pci.BDF, iova uint64)
}

// Driver is the rIOMMU OS driver of Figure 11, bound to one rDEVICE. Its
// map allocates an IOVA by incrementing two integers, writes one rPTE, and
// publishes it with sync_mem; its unmap clears the valid bit and issues an
// explicit rIOTLB invalidation only when the caller marks the end of an
// unmap burst.
type Driver struct {
	clk   *cycles.Clock
	model *cycles.Model
	mm    *mem.PhysMem
	hw    *RIOMMU
	dev   *Device
	aud   MapObserver

	// coherent selects the riommu variant: true = riommu (I/O page walks
	// coherent with CPU caches), false = riommu− (sync_mem adds a cacheline
	// flush and an extra barrier per rPTE update). See §4 sync_mem and the
	// two simulated versions of §5.1.
	coherent bool
}

// NewDriver attaches a device with the given ring sizes and returns its
// driver. coherent selects riommu (true) versus riommu− (false).
func NewDriver(clk *cycles.Clock, model *cycles.Model, mm *mem.PhysMem, hw *RIOMMU, bdf pci.BDF, ringSizes []uint32, coherent bool) (*Driver, error) {
	dev, err := hw.AttachDevice(bdf, ringSizes)
	if err != nil {
		return nil, err
	}
	return &Driver{clk: clk, model: model, mm: mm, hw: hw, dev: dev, coherent: coherent}, nil
}

// Device returns the attached rDEVICE.
func (d *Driver) Device() *Device { return d.dev }

// SetAudit installs a map/unmap observer (nil disables mirroring).
func (d *Driver) SetAudit(o MapObserver) { d.aud = o }

// Coherent reports whether this is the riommu (true) or riommu− (false) variant.
func (d *Driver) Coherent() bool { return d.coherent }

// syncMem implements sync_mem (Figure 11 bottom/right): a memory barrier,
// plus a cacheline flush and a second barrier when the rIOMMU page walk is
// not coherent with the CPU caches.
func (d *Driver) syncMem(comp cycles.Component) {
	if !d.coherent {
		d.clk.ChargeFree(comp, d.model.MemoryBarrier)
		d.clk.ChargeFree(comp, d.model.CachelineFlush)
	}
	d.clk.ChargeFree(comp, d.model.MemoryBarrier)
}

// syncMemN charges n sync_mem publications at once (see syncMem).
func (d *Driver) syncMemN(comp cycles.Component, n uint64) {
	if !d.coherent {
		d.clk.ChargeFreeN(comp, n, d.model.MemoryBarrier)
		d.clk.ChargeFreeN(comp, n, d.model.CachelineFlush)
	}
	d.clk.ChargeFreeN(comp, n, d.model.MemoryBarrier)
}

// MapBatch maps len(pas) same-sized buffers into consecutive ring-tail
// rPTEs, writing the packed rIOVAs into iovas. It is observationally
// equivalent to len(pas) scalar Map calls — same rPTE/tail/pin state, same
// cycle totals and charge-event counts, same audit-mirror order — but
// validates the ring once and groups the clock accounting with ChargeN,
// which is what makes refilling a whole Rx ring cheap. It returns how many
// entries were mapped; on error, entries [0, n) are mapped and the rest are
// untouched.
func (d *Driver) MapBatch(rid int, pas []mem.PA, size uint32, dir pci.Dir, iovas []uint64) (int, error) {
	r := d.dev.Ring(rid)
	if r == nil {
		return 0, fmt.Errorf("riommu: map on nonexistent ring %d", rid)
	}
	if size == 0 || size >= MaxOffset {
		return 0, fmt.Errorf("riommu: buffer size %d out of u30 range", size)
	}
	if dir&pci.DirBidi == 0 {
		return 0, fmt.Errorf("riommu: mapping with no direction")
	}
	n := 0
	// A failed scalar Map still charges its IOVA allocation when the pin
	// fails after the tail advance; extraAlloc mirrors that exactly.
	extraAlloc := uint64(0)
	var err error
	// Every entry in the batch encodes the same second word; only the
	// physical address differs. Accessing the flat table directly (it is a
	// Span over simulated memory, exactly what read/writeRPTE do) keeps the
	// loop to two stores and a valid-bit test per entry.
	w1 := uint64(size&(MaxOffset-1))<<rpteSizeShift |
		uint64(dir&3)<<rpteDirShift | 1<<rpteValidShift
	for ; n < len(pas); n++ {
		if r.nmapped == r.size {
			err = ErrOverflow
			break
		}
		t := r.tail
		e := r.tbl[uint64(t)*rpteBytes:]
		if e[12]&1 != 0 { // w1 valid bit (bit 32): live entry at the tail — out-of-order unmaps (see Map)
			err = ErrOverflow
			break
		}
		if r.tail++; r.tail == r.size {
			r.tail = 0
		}
		r.nmapped++
		if perr := d.pinRange(pas[n], size); perr != nil {
			r.tail = t
			r.nmapped--
			extraAlloc = 1
			err = perr
			break
		}
		binary.LittleEndian.PutUint64(e, uint64(pas[n]))
		binary.LittleEndian.PutUint64(e[8:], w1)
		iovas[n] = uint64(PackIOVA(0, t, uint16(rid)))
	}
	if m := uint64(n) + extraAlloc; m > 0 {
		d.clk.ChargeN(cycles.MapIOVAAlloc, m, d.model.RMapAllocFixed)
	}
	if n > 0 {
		d.clk.ChargeN(cycles.MapPageTable, uint64(n), d.model.RPTEWrite)
		d.syncMemN(cycles.MapPageTable, uint64(n))
		d.clk.ChargeN(cycles.MapOther, uint64(n), d.model.RMapFixed)
		if d.aud != nil {
			for i := 0; i < n; i++ {
				d.aud.OnMap(d.dev.bdf, iovas[i], pas[i], size, dir)
			}
		}
	}
	return n, err
}

// Map implements map (Figure 11 left): allocate the ring-tail rPTE, fill it,
// publish it, and return the packed rIOVA with offset 0. The physical
// address need not be page-aligned and size may be any u30 value —
// protection is fine-grained.
func (d *Driver) Map(rid int, pa mem.PA, size uint32, dir pci.Dir) (uint64, error) {
	r := d.dev.Ring(rid)
	if r == nil {
		return 0, fmt.Errorf("riommu: map on nonexistent ring %d", rid)
	}
	if size == 0 || size >= MaxOffset {
		return 0, fmt.Errorf("riommu: buffer size %d out of u30 range", size)
	}
	if dir&pci.DirBidi == 0 {
		return 0, fmt.Errorf("riommu: mapping with no direction")
	}

	// IOVA allocation: two integer updates under a lock (nmapped guard +
	// tail advance). This is the analogue of the baseline's costly IOVA
	// allocator.
	if r.nmapped == r.size {
		return 0, ErrOverflow
	}
	t := r.tail
	// Defensive check beyond the paper's pseudocode: if unmaps ran out of
	// ring order (an AHCI-style device; §4 Applicability), the tail can
	// reach an entry that is still live even though nmapped < size.
	// Overwriting it would corrupt an in-flight mapping, so treat it as
	// overflow; out-of-order devices should use MapAt instead.
	if cur, err := d.hw.readRPTE(r, t); err != nil {
		return 0, err
	} else if cur.valid {
		return 0, ErrOverflow
	}
	r.tail = (r.tail + 1) % r.size
	r.nmapped++
	d.clk.Charge(cycles.MapIOVAAlloc, d.model.RMapAllocFixed)

	// Pin the target buffer: DMAs are not restartable (§2.2).
	if err := d.pinRange(pa, size); err != nil {
		r.tail = t
		r.nmapped--
		return 0, err
	}

	// Fill and publish the rPTE (the analogue of updating the page-table
	// hierarchy, but flat).
	if err := d.hw.writeRPTE(r, t, rpte{physAddr: pa, size: size, dir: dir, valid: true}); err != nil {
		return 0, err
	}
	d.clk.Charge(cycles.MapPageTable, d.model.RPTEWrite)
	d.syncMem(cycles.MapPageTable)
	d.clk.Charge(cycles.MapOther, d.model.RMapFixed)

	iova := uint64(PackIOVA(0, t, uint16(rid)))
	if d.aud != nil {
		d.aud.OnMap(d.dev.bdf, iova, pa, size, dir)
	}
	return iova, nil
}

// MapAt maps a buffer into an explicit flat-table entry instead of the ring
// tail. This is the §4 extension for devices whose queues are processed in
// arbitrary order (AHCI's 32 slots): the driver indexes the flat table by
// slot number, so out-of-order completion unmaps exactly its own entry.
// Such mappings lose the rIOTLB prefetch benefit but remain correct.
func (d *Driver) MapAt(rid int, rentry uint32, pa mem.PA, size uint32, dir pci.Dir) (uint64, error) {
	r := d.dev.Ring(rid)
	if r == nil {
		return 0, fmt.Errorf("riommu: map on nonexistent ring %d", rid)
	}
	if rentry >= r.size {
		return 0, fmt.Errorf("riommu: rentry %d out of range (ring size %d)", rentry, r.size)
	}
	if size == 0 || size >= MaxOffset {
		return 0, fmt.Errorf("riommu: buffer size %d out of u30 range", size)
	}
	if dir&pci.DirBidi == 0 {
		return 0, fmt.Errorf("riommu: mapping with no direction")
	}
	cur, err := d.hw.readRPTE(r, rentry)
	if err != nil {
		return 0, err
	}
	if cur.valid {
		return 0, fmt.Errorf("riommu: slot %d already mapped", rentry)
	}
	r.nmapped++
	d.clk.Charge(cycles.MapIOVAAlloc, d.model.RMapAllocFixed)
	if err := d.pinRange(pa, size); err != nil {
		r.nmapped--
		return 0, err
	}
	if err := d.hw.writeRPTE(r, rentry, rpte{physAddr: pa, size: size, dir: dir, valid: true}); err != nil {
		return 0, err
	}
	d.clk.Charge(cycles.MapPageTable, d.model.RPTEWrite)
	d.syncMem(cycles.MapPageTable)
	d.clk.Charge(cycles.MapOther, d.model.RMapFixed)
	iova := uint64(PackIOVA(0, rentry, uint16(rid)))
	if d.aud != nil {
		d.aud.OnMap(d.dev.bdf, iova, pa, size, dir)
	}
	return iova, nil
}

// Unmap implements unmap (Figure 11 right): clear the rPTE's valid bit,
// decrement the ring's live count, publish the update, and — only when
// endOfBurst is set — invalidate the ring's single rIOTLB entry. The size
// argument is accepted for interface compatibility with the baseline driver
// and ignored: the rPTE itself records the buffer's extent.
func (d *Driver) Unmap(_ int, iovaAddr uint64, _ uint32, endOfBurst bool) error {
	iova := IOVA(iovaAddr)
	rid := iova.RID()
	r := d.dev.Ring(int(rid))
	if r == nil {
		return fmt.Errorf("riommu: unmap on nonexistent ring %d", rid)
	}
	if iova.REntry() >= r.size {
		return fmt.Errorf("riommu: unmap rentry %d out of range", iova.REntry())
	}
	p, err := d.hw.readRPTE(r, iova.REntry())
	if err != nil {
		return err
	}
	if !p.valid {
		return fmt.Errorf("riommu: unmap of invalid rPTE %s", iova)
	}
	p.valid = false
	if err := d.hw.writeRPTE(r, iova.REntry(), p); err != nil {
		return err
	}
	d.clk.Charge(cycles.UnmapPageTable, d.model.RPTEWrite)
	r.nmapped--
	d.clk.Charge(cycles.UnmapIOVAFree, d.model.RUnmapFreeFixed)
	d.syncMem(cycles.UnmapPageTable)
	d.clk.Charge(cycles.UnmapOther, d.model.RUnmapFixed)

	if err := d.unpinRange(p.physAddr, p.size); err != nil {
		return err
	}

	if endOfBurst {
		d.hw.invalidate(d.dev.bdf, rid)
		d.clk.Charge(cycles.UnmapIOTLBInv, d.model.IOTLBInvEntry)
	}
	if d.aud != nil {
		// Mirror with the base rIOVA the matching Map returned, regardless of
		// any offset in the caller's handle.
		d.aud.OnUnmap(d.dev.bdf, uint64(PackIOVA(0, iova.REntry(), rid)))
	}
	return nil
}

func (d *Driver) pinRange(pa mem.PA, size uint32) error {
	first := uint64(pa) >> mem.PageShift
	last := (uint64(pa) + uint64(size) - 1) >> mem.PageShift
	for f := first; f <= last; f++ {
		if err := d.mm.Pin(mem.PA(f << mem.PageShift)); err != nil {
			return fmt.Errorf("riommu: pinning target buffer: %w", err)
		}
	}
	return nil
}

func (d *Driver) unpinRange(pa mem.PA, size uint32) error {
	first := uint64(pa) >> mem.PageShift
	last := (uint64(pa) + uint64(size) - 1) >> mem.PageShift
	for f := first; f <= last; f++ {
		if err := d.mm.Unpin(mem.PA(f << mem.PageShift)); err != nil {
			return err
		}
	}
	return nil
}
