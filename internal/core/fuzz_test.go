package core

import (
	"testing"

	"riommu/internal/cycles"
	"riommu/internal/mem"
	"riommu/internal/pci"
)

// FuzzIOVAPacking: any 64-bit value decodes into fields that re-pack to the
// same value — the rIOVA format has no dead bits and no aliasing.
func FuzzIOVAPacking(f *testing.F) {
	f.Add(uint64(0))
	f.Add(uint64(0xFFFFFFFFFFFFFFFF))
	f.Add(uint64(1) << 30)
	f.Add(uint64(1) << 48)
	f.Fuzz(func(t *testing.T, raw uint64) {
		v := IOVA(raw)
		repacked := PackIOVA(v.Offset(), v.REntry(), v.RID())
		if repacked != v {
			t.Fatalf("repack(%#x) = %#x", raw, uint64(repacked))
		}
	})
}

// FuzzRtranslate: no input IOVA may crash the hardware model or return a
// physical address outside the mapped buffer; anything unmapped or out of
// bounds must fault cleanly.
func FuzzRtranslate(f *testing.F) {
	f.Add(uint64(0), uint8(2))
	f.Add(uint64(1)<<48|uint64(3)<<30, uint8(1))
	f.Add(^uint64(0), uint8(3))

	f.Fuzz(func(t *testing.T, raw uint64, dir uint8) {
		mm := mustMem(t, 64*mem.PageSize)
		clk := &cycles.Clock{}
		model := cycles.DefaultModel()
		hw := New(clk, &model, mm)
		dev := pci.NewBDF(0, 3, 0)
		drv, err := NewDriver(clk, &model, mm, hw, dev, []uint32{8, 8}, true)
		if err != nil {
			t.Fatal(err)
		}
		frame, _ := mm.AllocFrame()
		iova, err := drv.Map(0, frame.PA(), 100, pci.DirFromDevice)
		if err != nil {
			t.Fatal(err)
		}

		pa, err := hw.Rtranslate(dev, IOVA(raw), pci.Dir(dir&3))
		if err == nil {
			// A successful translation must land inside the one mapped
			// buffer and must have used its exact IOVA fields.
			v := IOVA(raw)
			if v.RID() != IOVA(iova).RID() || v.REntry() != IOVA(iova).REntry() {
				t.Fatalf("translation for unmapped entry %s succeeded", v)
			}
			if pa < frame.PA() || pa >= frame.PA()+100 {
				t.Fatalf("pa %#x outside mapped buffer", uint64(pa))
			}
			if pci.Dir(dir&3) == pci.DirNone || !pci.DirFromDevice.Allows(pci.Dir(dir&3)) {
				t.Fatalf("direction %d should not have been permitted", dir&3)
			}
		}
	})
}
