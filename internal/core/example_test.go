package core_test

import (
	"fmt"

	"riommu/internal/core"
	"riommu/internal/cycles"
	"riommu/internal/mem"
	"riommu/internal/pci"
)

// Example shows the complete life of one DMA mapping under the rIOMMU: map
// at the ring tail, translate from the device side, unmap with the
// end-of-burst invalidation.
func Example() {
	mm := mustMem(64 * mem.PageSize)
	clk := &cycles.Clock{}
	model := cycles.DefaultModel()

	hw := core.New(clk, &model, mm)
	dev := pci.NewBDF(0, 3, 0)
	drv, _ := core.NewDriver(clk, &model, mm, hw, dev, []uint32{16}, true)

	frame, _ := mm.AllocFrame()
	iova, _ := drv.Map(0, frame.PA()+64, 1500, pci.DirFromDevice)
	fmt.Println(core.IOVA(iova))

	pa, _ := hw.Rtranslate(dev, core.IOVA(iova).Add(8), pci.DirFromDevice)
	fmt.Println(pa == frame.PA()+64+8)

	_ = drv.Unmap(0, iova, 0, true)
	_, err := hw.Rtranslate(dev, core.IOVA(iova), pci.DirFromDevice)
	fmt.Println(err != nil)
	// Output:
	// rIOVA{rid=0 rentry=0 off=0x0}
	// true
	// true
}

// ExampleIOVA demonstrates the Figure 9d field packing and the offset
// arithmetic callers are allowed to perform (§4).
func ExampleIOVA() {
	v := core.PackIOVA(0, 7, 3)
	fmt.Println(v.RID(), v.REntry(), v.Offset())
	fmt.Println(v.Add(100).Offset())
	// Output:
	// 3 7 0
	// 100
}

// ExampleDriver_MapAt shows the §4 extension for out-of-order devices: the
// caller picks the flat-table entry (an AHCI slot number), and unmaps may
// then happen in any order.
func ExampleDriver_MapAt() {
	mm := mustMem(64 * mem.PageSize)
	clk := &cycles.Clock{}
	model := cycles.DefaultModel()
	hw := core.New(clk, &model, mm)
	dev := pci.NewBDF(0, 5, 0)
	drv, _ := core.NewDriver(clk, &model, mm, hw, dev, []uint32{32}, true)

	frame, _ := mm.AllocFrame()
	slot9, _ := drv.MapAt(0, 9, frame.PA(), 512, pci.DirToDevice)
	slot3, _ := drv.MapAt(0, 3, frame.PA()+512, 512, pci.DirToDevice)
	fmt.Println(core.IOVA(slot9).REntry(), core.IOVA(slot3).REntry())

	// Completion arrives for slot 9 first — out of ring order.
	_ = drv.Unmap(0, slot9, 0, false)
	_ = drv.Unmap(0, slot3, 0, true)
	fmt.Println(drv.Device().Ring(0).Mapped())
	// Output:
	// 9 3
	// 0
}
