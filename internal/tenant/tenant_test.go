package tenant

import (
	"errors"
	"testing"

	"riommu/internal/audit"
	"riommu/internal/cycles"
	"riommu/internal/device"
	"riommu/internal/mem"
	"riommu/internal/pci"
	"riommu/internal/sim"
)

func testProfile() device.NICProfile {
	p := device.ProfileBRCM
	p.RxEntries = 64
	p.TxEntries = 64
	return p
}

func newTestHost(t *testing.T, pages uint64) *Host {
	t.Helper()
	h, err := NewHost(pages)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(h.Close)
	return h
}

// TestStage2ResolveBasics: stage-2 translation preserves offsets, caches in
// the per-domain TLB, and charges walk cycles to the stage2 component.
func TestStage2ResolveBasics(t *testing.T) {
	h := newTestHost(t, 64)
	d, err := h.AdoptSpace(16)
	if err != nil {
		t.Fatal(err)
	}
	gpa := uint64(3)<<mem.PageShift + 0x123
	hpa, err := d.Stage2(gpa, 64, pci.DirBidi)
	if err != nil {
		t.Fatalf("Stage2: %v", err)
	}
	if uint64(hpa)&mem.PageMask != gpa&mem.PageMask {
		t.Fatalf("offset not preserved: gpa=%#x hpa=%#x", gpa, hpa)
	}
	if own := h.Owner(mem.PFNOf(hpa)); own != d.ID {
		t.Fatalf("resolved frame owned by %d, want %d", own, d.ID)
	}
	if d.S2Misses != 1 || d.S2Hits != 0 {
		t.Fatalf("first access: hits=%d misses=%d", d.S2Hits, d.S2Misses)
	}
	walked := h.Clk.Total(cycles.Stage2)
	if walked == 0 {
		t.Fatal("stage-2 walk charged nothing")
	}
	if _, err := d.Stage2(gpa, 64, pci.DirBidi); err != nil {
		t.Fatal(err)
	}
	if d.S2Hits != 1 {
		t.Fatalf("second access missed the stage-2 TLB: hits=%d misses=%d", d.S2Hits, d.S2Misses)
	}
	if h.Clk.Total(cycles.Stage2) != walked {
		t.Fatal("TLB hit charged a walk")
	}

	// A sub-page access straddling a stage-2 page boundary touches both.
	straddle := uint64(5)<<mem.PageShift - 8
	if _, err := d.Stage2(straddle, 64, pci.DirBidi); err != nil {
		t.Fatalf("straddling access: %v", err)
	}
	if d.S2Misses != 3 {
		t.Fatalf("straddle resolved %d pages total, want 2 more walks", d.S2Misses)
	}

	// Beyond the granted space: fault, counted.
	if _, err := d.Stage2(uint64(16)<<mem.PageShift, 64, pci.DirBidi); err == nil {
		t.Fatal("access beyond the granted space succeeded")
	}
	if d.S2Faults != 1 {
		t.Fatalf("S2Faults = %d", d.S2Faults)
	}
}

// TestReclaimGrantOwnership: reclaim revokes translation immediately under
// the strict invalidation default, and the LIFO frame allocator hands the
// reclaimed host frame to the next grantee.
func TestReclaimGrantOwnership(t *testing.T) {
	h := newTestHost(t, 64)
	orc := h.EnableAudit()
	a, err := h.AdoptSpace(8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := h.AdoptSpace(8)
	if err != nil {
		t.Fatal(err)
	}
	gpa := uint64(3) << mem.PageShift
	hpa, err := a.Stage2(gpa, 64, pci.DirBidi) // warm the stage-2 TLB
	if err != nil {
		t.Fatal(err)
	}
	f := mem.PFNOf(hpa)
	if err := h.Reclaim(a, gpa, 1); err != nil {
		t.Fatal(err)
	}
	if own := h.Owner(f); own != -1 {
		t.Fatalf("reclaimed frame still owned by %d", own)
	}
	if _, err := a.Stage2(gpa, 64, pci.DirBidi); err == nil {
		t.Fatal("strict invalidation left the reclaimed page translatable")
	}
	bGrant := uint64(8) << mem.PageShift
	if err := h.Grant(b, bGrant, 1, pci.DirBidi); err != nil {
		t.Fatal(err)
	}
	hpaB, err := b.Stage2(bGrant, 64, pci.DirBidi)
	if err != nil {
		t.Fatal(err)
	}
	if mem.PFNOf(hpaB) != f {
		t.Fatalf("LIFO reuse broken: B got frame %d, want reclaimed %d", mem.PFNOf(hpaB), f)
	}
	if orc.Violations != 0 {
		t.Fatalf("benign reclaim/grant flagged: %v", orc.Events)
	}
}

// TestLazyInvalidationCaughtByOracle is the oracle-liveness proof: with
// lazy stage-2 invalidation, a reclaimed-and-regranted page stays
// translatable through the stale TLB entry — the access LANDS on the new
// owner's frame, and the tenant oracle must flag it cross-tenant.
func TestLazyInvalidationCaughtByOracle(t *testing.T) {
	h := newTestHost(t, 64)
	h.LazyInvalidate = true
	orc := h.EnableAudit()
	a, err := h.AdoptSpace(8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := h.AdoptSpace(8)
	if err != nil {
		t.Fatal(err)
	}
	gpa := uint64(5) << mem.PageShift
	hpa, err := a.Stage2(gpa, 64, pci.DirBidi)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Reclaim(a, gpa, 1); err != nil {
		t.Fatal(err)
	}
	if a.PendingInvalidations() == 0 {
		t.Fatal("lazy reclaim queued no invalidation")
	}
	if err := h.Grant(b, uint64(8)<<mem.PageShift, 1, pci.DirBidi); err != nil {
		t.Fatal(err)
	}
	replay, err := a.Stage2(gpa, 64, pci.DirBidi)
	if err != nil {
		t.Fatalf("stale window closed unexpectedly: %v", err)
	}
	if replay != hpa {
		t.Fatalf("stale replay resolved to %#x, warmed %#x", replay, hpa)
	}
	if orc.CrossTenant != 1 || orc.ByReason[audit.ReasonCrossTenant] != 1 {
		t.Fatalf("cross-tenant landing not flagged: %+v", orc.ByReason)
	}
	// Draining the queue closes the window.
	a.DrainInvalidations()
	if _, err := a.Stage2(gpa, 64, pci.DirBidi); err == nil {
		t.Fatal("stale window still open after drain")
	}
	if a.S2Flushes != 1 {
		t.Fatalf("S2Flushes = %d", a.S2Flushes)
	}
}

// TestBalloonQuota: the balloon hypercall remaps the tenant's highest pages
// to fresh frames, and the per-window quota throttles a flood.
func TestBalloonQuota(t *testing.T) {
	h := newTestHost(t, 64)
	h.BalloonQuota = 8
	h.BalloonWindow = 1_000_000
	d, err := h.AdoptSpace(16)
	if err != nil {
		t.Fatal(err)
	}
	top := uint64(15) << mem.PageShift
	before, err := d.Stage2(top, 64, pci.DirBidi)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Balloon(d, 4); err != nil {
		t.Fatal(err)
	}
	after, err := d.Stage2(top, 64, pci.DirBidi)
	if err != nil {
		t.Fatalf("ballooned page unreachable: %v", err)
	}
	if after == before {
		t.Fatal("balloon did not move the page to a fresh frame")
	}
	if d.Ballooned != 4 {
		t.Fatalf("Ballooned = %d", d.Ballooned)
	}
	if err := h.Balloon(d, 8); !errors.Is(err, ErrBalloonThrottled) {
		t.Fatalf("over-quota balloon: err = %v, want ErrBalloonThrottled", err)
	}
	if d.Throttled != 1 || h.Throttled != 1 {
		t.Fatalf("throttle counters: domain=%d host=%d", d.Throttled, h.Throttled)
	}
	// A new window restores the budget.
	h.Clk.Charge(cycles.Stage2, h.BalloonWindow)
	if err := h.Balloon(d, 8); err != nil {
		t.Fatalf("balloon in a fresh window: %v", err)
	}
}

// TestDeviceDirectorySpoofBlocked: a DMA tagged with a BDF the directory
// assigns to another domain must die at the directory even when stage 1
// (the unprotected mode here) passes everything.
func TestDeviceDirectorySpoofBlocked(t *testing.T) {
	h := newTestHost(t, 128)
	sysA, err := sim.NewSystem(sim.None, 1<<9)
	if err != nil {
		t.Fatal(err)
	}
	defer sysA.Close()
	a, err := h.AdoptSystem(sysA)
	if err != nil {
		t.Fatal(err)
	}
	bdfA := pci.NewBDF(1, 0, 0)
	if _, err := h.AttachDevice(a, testProfile(), bdfA, 1); err != nil {
		t.Fatal(err)
	}
	b, err := h.AdoptSpace(8)
	if err != nil {
		t.Fatal(err)
	}
	bdfB := pci.NewBDF(2, 0, 0)
	if err := h.Register(b, bdfB); err != nil {
		t.Fatal(err)
	}
	// Double-assignment must be refused.
	if err := h.Register(a, bdfB); err == nil {
		t.Fatal("directory allowed re-assigning another tenant's device")
	}
	if h.DirectoryOwner(bdfB) != b {
		t.Fatal("directory owner wrong")
	}

	f, err := sysA.Mem.AllocFrame()
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("0123456789abcdef")
	// The owned device lands; the spoofed one dies at the directory.
	if err := sysA.Eng.Write(bdfA, uint64(f.PA()), payload); err != nil {
		t.Fatalf("legitimate DMA failed: %v", err)
	}
	if err := sysA.Eng.Write(bdfB, uint64(f.PA()), payload); !errors.Is(err, ErrNotOwner) {
		t.Fatalf("spoofed DMA: err = %v, want ErrNotOwner", err)
	}
	if a.SpoofBlocked != 1 || h.SpoofBlocked != 1 {
		t.Fatalf("spoof counters: domain=%d host=%d", a.SpoofBlocked, h.SpoofBlocked)
	}
}

// TestTeardownDisownsEverything: teardown revokes translation, disowns
// every frame, removes live devices, and leaves the domain unusable.
func TestTeardownDisownsEverything(t *testing.T) {
	h := newTestHost(t, 128)
	orc := h.EnableAudit()
	sys, err := sim.NewSystem(sim.RIOMMU, 1<<9)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	d, err := h.AdoptSystem(sys)
	if err != nil {
		t.Fatal(err)
	}
	bdf := pci.NewBDF(1, 0, 0)
	if _, err := h.AttachDevice(d, testProfile(), bdf, 1); err != nil {
		t.Fatal(err)
	}
	hpa, err := d.Stage2(0, 64, pci.DirBidi)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Teardown(d); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Stage2(0, 64, pci.DirBidi); !errors.Is(err, ErrTornDown) {
		t.Fatalf("post-teardown Stage2: err = %v, want ErrTornDown", err)
	}
	if own := h.Owner(mem.PFNOf(hpa)); own != -1 {
		t.Fatalf("torn-down domain still owns frame (owner %d)", own)
	}
	if h.DirectoryOwner(bdf) != nil {
		t.Fatal("directory slot survived teardown")
	}
	if sys.LifecycleFor(bdf).State() != sim.SurpriseRemoved {
		t.Fatalf("device state = %s, want surprise-removed", sys.LifecycleFor(bdf).State())
	}
	if orc.Disowns == 0 || orc.S2Unmaps == 0 {
		t.Fatal("teardown bypassed the oracle's ground-truth stream")
	}
}

// TestHostDeterminism: identical op sequences produce identical clock
// totals and oracle counters — no map-iteration order leaks.
func TestHostDeterminism(t *testing.T) {
	run := func() (uint64, uint64, uint64) {
		h := newTestHost(t, 64)
		orc := h.EnableAudit()
		d, err := h.AdoptSpace(16)
		if err != nil {
			t.Fatal(err)
		}
		for i := uint64(0); i < 16; i++ {
			if _, err := d.Stage2(i<<mem.PageShift, 128, pci.DirBidi); err != nil {
				t.Fatal(err)
			}
		}
		if err := h.Balloon(d, 5); err != nil {
			t.Fatal(err)
		}
		if err := h.Teardown(d); err != nil {
			t.Fatal(err)
		}
		return h.Clk.Total(cycles.Stage2), orc.Checked, orc.S2Unmaps
	}
	c1, k1, u1 := run()
	c2, k2, u2 := run()
	if c1 != c2 || k1 != k2 || u1 != u2 {
		t.Fatalf("nondeterministic host: (%d,%d,%d) vs (%d,%d,%d)", c1, k1, u1, c2, k2, u2)
	}
}
