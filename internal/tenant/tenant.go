// Package tenant adds the hypervisor layer: per-tenant domains with nested
// two-stage translation. Stage 1 is the existing per-mode IOVA→GPA path of
// each guest (all seven protection modes, unchanged); stage 2 is a shared
// GPA→HPA radix page table per tenant with its own TLB and invalidation
// queue, walked on the host side and charged to the `stage2` clock
// component. The split follows the shared stage-2 design evaluated for
// RISC-V SVA IOMMUs (Koenig et al.) and PiBooster's paravirtual
// page-table-management split: guests manage stage 1 at native cost, the
// hypervisor alone touches stage 2.
//
// The robustness surface is the point. A device directory keyed by BDF
// pins each device to its owning domain (PCIe ACS-style source validation),
// a host frame ledger records which tenant owns every host frame, and the
// audit.TenantOracle cross-checks every stage-2 resolution — any HPA
// outside the issuing tenant's frame set is a cross-tenant violation, the
// hard gate of the hostile-tenant campaign.
package tenant

import (
	"errors"
	"fmt"
	"sort"

	"riommu/internal/audit"
	"riommu/internal/cycles"
	"riommu/internal/device"
	"riommu/internal/driver"
	"riommu/internal/iotlb"
	"riommu/internal/mem"
	"riommu/internal/pagetable"
	"riommu/internal/pci"
	"riommu/internal/sim"
)

// Sentinel errors for host-level denials.
var (
	// ErrBalloonThrottled: the tenant exhausted its balloon-hypercall quota
	// for the current window (the invalidation-queue-flood defense).
	ErrBalloonThrottled = errors.New("tenant: balloon hypercall quota exhausted")
	// ErrNotOwner: a device issued a DMA but is not in the issuing
	// domain's directory slot (BDF spoof).
	ErrNotOwner = errors.New("tenant: device not owned by issuing domain")
	// ErrTornDown: the domain's stage-2 state has been destroyed.
	ErrTornDown = errors.New("tenant: domain torn down")
)

// Host is the hypervisor: it owns host physical memory, the device
// directory, the frame ledger, and every tenant's stage-2 translation
// state. Its clock is the hypervisor/IOMMU-side clock — stage-2 work never
// charges a guest's core, so guest-visible metrics are byte-identical with
// tenancy on or off.
type Host struct {
	Model cycles.Model
	Clk   *cycles.Clock // hypervisor clock: all stage-2 costs land here
	Mem   *mem.PhysMem  // host memory backing the stage-2 radix tables

	// tableClk absorbs the radix-table maintenance charges of
	// pagetable.Space (which attributes to Map/UnmapPageTable); the host
	// transfers each delta onto Clk's Stage2 component so the entire
	// stage-2 cost lands on one attributable row.
	tableClk *cycles.Clock

	// LazyInvalidate defers stage-2 TLB invalidations into the per-domain
	// queue until it fills (s2InvBatch), instead of invalidating per entry.
	// Lazy mode opens a stale-translation window — it exists so tests can
	// prove the oracle detects what the strict default prevents.
	LazyInvalidate bool

	// BalloonQuota caps balloon-hypercall pages per tenant per
	// BalloonWindow cycles of that tenant's clock (0 = unlimited): the
	// defense that keeps one tenant from flooding the shared invalidation
	// machinery.
	BalloonQuota  int
	BalloonWindow uint64

	dir     map[pci.BDF]*Domain
	domains []*Domain
	nextID  int

	owner   map[mem.PFN]int // host frame → owning tenant
	nextHPA mem.PFN         // bump allocator for guest frames
	freeHPA []mem.PFN       // LIFO free list: reclaimed frames are regranted first

	aud *audit.TenantOracle

	// SpoofBlocked counts DMAs rejected by the device directory;
	// Throttled counts rejected balloon hypercalls (host-wide).
	SpoofBlocked uint64
	Throttled    uint64
}

// Domain is one tenant: a stage-2 GPA→HPA page table over host memory, a
// private stage-2 TLB and invalidation queue, and (usually) a guest System
// whose DMA engine has been respliced through the nested translator.
type Domain struct {
	ID   int
	host *Host
	Sys  *sim.System // nil for table-only domains (AdoptSpace)

	s2    *pagetable.Space
	tlb   *iotlb.IOTLB
	pages map[uint64]mem.PFN // GPA page → granted frame (hypervisor shadow)
	bdfs  []pci.BDF          // devices in directory order (deterministic teardown)

	invq s2InvQueue

	// Balloon throttle window state, on the tenant's own clock.
	winStart uint64
	winOps   int

	// Stage-2 statistics.
	S2Hits, S2Misses, S2Faults uint64
	S2Invalidations, S2Flushes uint64
	SpoofBlocked               uint64
	Ballooned, Throttled       uint64

	torn bool
}

// stage2TLBEntries sizes each domain's stage-2 TLB. Stage-2 TLBs are larger
// than the stage-1 IOTLB (they cache per-domain, not per-device, and misses
// cost a full radix walk), but still finite so reuse-after-reclaim is a
// real hazard.
const stage2TLBEntries = 512

// s2InvBatch is the lazy-mode drain threshold of the per-domain
// invalidation queue.
const s2InvBatch = 64

// NewHost builds a hypervisor with hostPages pages of host memory backing
// stage-2 tables. Guest data frames are virtual (the guests keep their own
// simulated memories), so hostPages only needs to cover radix tables:
// roughly guestPages/512 + 4 frames per tenant.
func NewHost(hostPages uint64) (*Host, error) {
	mm, err := mem.New(hostPages * mem.PageSize)
	if err != nil {
		return nil, err
	}
	h := &Host{
		Model:    cycles.DefaultModel(),
		Clk:      &cycles.Clock{},
		Mem:      mm,
		tableClk: &cycles.Clock{},
		dir:      make(map[pci.BDF]*Domain),
		owner:    make(map[mem.PFN]int),
		// Guest frames start beyond host memory so they can never collide
		// with the table frames the ledger must not attribute to tenants.
		nextHPA: mem.PFN(hostPages),
	}
	return h, nil
}

// EnableAudit installs (and returns) the hypervisor's shadow oracle. Must
// be called before domains are adopted so the ledger mirror is complete.
func (h *Host) EnableAudit() *audit.TenantOracle {
	if h.aud == nil {
		h.aud = audit.NewTenantOracle(h.Clk)
	}
	return h.aud
}

// Oracle returns the tenant oracle (nil when auditing is disabled).
func (h *Host) Oracle() *audit.TenantOracle { return h.aud }

// Domains returns the adopted domains in adoption order.
func (h *Host) Domains() []*Domain { return h.domains }

// Owner returns the tenant owning host frame f, or -1.
func (h *Host) Owner(f mem.PFN) int {
	if t, ok := h.owner[f]; ok {
		return t
	}
	return -1
}

// chargeTable moves the radix-table maintenance cycles accrued on tableClk
// since `before` onto the Stage2 component of the hypervisor clock.
func (h *Host) chargeTable(before uint64) {
	if d := h.tableClk.Now() - before; d > 0 {
		h.Clk.ChargeFree(cycles.Stage2, d)
	}
}

// allocHPA grants one host frame to tenant id, reusing reclaimed frames
// LIFO — the reuse-after-reclaim pattern that makes stale stage-2 entries
// dangerous rather than merely wrong.
func (h *Host) allocHPA(id int) mem.PFN {
	var f mem.PFN
	if n := len(h.freeHPA); n > 0 {
		f = h.freeHPA[n-1]
		h.freeHPA = h.freeHPA[:n-1]
	} else {
		f = h.nextHPA
		h.nextHPA++
	}
	h.owner[f] = id
	if h.aud != nil {
		h.aud.OnOwn(f, id)
	}
	return f
}

// disownHPA reclaims a frame: ownership is dropped and the frame goes to
// the head of the free list.
func (h *Host) disownHPA(f mem.PFN) {
	delete(h.owner, f)
	h.freeHPA = append(h.freeHPA, f)
	if h.aud != nil {
		h.aud.OnDisown(f)
	}
}

// mapGPA installs one stage-2 mapping and updates ledger, shadow map, and
// oracle. The frame must already be owned by the domain.
func (h *Host) mapGPA(d *Domain, gpa uint64, f mem.PFN, perm pci.Dir) error {
	before := h.tableClk.Now()
	if err := d.s2.Map(gpa, f, perm); err != nil {
		return err
	}
	h.chargeTable(before)
	h.Clk.Charge(cycles.Stage2, h.Model.Stage2MapPage)
	d.pages[gpa>>mem.PageShift] = f
	if h.aud != nil {
		h.aud.OnS2Map(d.ID, gpa, f)
	}
	return nil
}

// unmapGPA removes one stage-2 mapping and queues/performs its TLB
// invalidation per the host's invalidation policy.
func (h *Host) unmapGPA(d *Domain, gpa uint64) (mem.PFN, error) {
	pfn := gpa >> mem.PageShift
	f, ok := d.pages[pfn]
	if !ok {
		return 0, fmt.Errorf("tenant: gpa %#x not mapped in domain %d", gpa, d.ID)
	}
	before := h.tableClk.Now()
	if err := d.s2.Unmap(gpa); err != nil {
		return 0, err
	}
	h.chargeTable(before)
	h.Clk.Charge(cycles.Stage2, h.Model.Stage2UnmapPage)
	delete(d.pages, pfn)
	if h.aud != nil {
		h.aud.OnS2Unmap(d.ID, gpa)
	}
	d.invalidate(pfn)
	return f, nil
}

// AdoptSystem places a guest system under the hypervisor: a new domain is
// created, every guest-physical page is granted a host frame and mapped in
// stage 2 with full permissions, and the guest's DMA engine is respliced so
// every device access passes stage 1 (unchanged) and then stage 2.
func (h *Host) AdoptSystem(sys *sim.System) (*Domain, error) {
	d, err := h.adopt(sys.Mem.Size()>>mem.PageShift, sys)
	if err != nil {
		return nil, err
	}
	nt := &nested{dom: d, inner: sys.Eng.Translator()}
	sys.Eng.SetTranslator(nt)
	return d, nil
}

// AdoptSpace creates a table-only domain (no guest system) with gpaPages of
// granted, mapped guest-physical space. Used by tests and fuzzing to drive
// the stage-2 machinery directly.
func (h *Host) AdoptSpace(gpaPages uint64) (*Domain, error) {
	return h.adopt(gpaPages, nil)
}

func (h *Host) adopt(gpaPages uint64, sys *sim.System) (*Domain, error) {
	s2, err := pagetable.NewSpace(h.Mem, h.tableClk, &h.Model, true)
	if err != nil {
		return nil, err
	}
	d := &Domain{
		ID:    h.nextID,
		host:  h,
		Sys:   sys,
		s2:    s2,
		tlb:   iotlb.New(stage2TLBEntries),
		pages: make(map[uint64]mem.PFN, gpaPages),
	}
	h.nextID++
	for p := uint64(0); p < gpaPages; p++ {
		f := h.allocHPA(d.ID)
		if err := h.mapGPA(d, p<<mem.PageShift, f, pci.DirBidi); err != nil {
			return nil, err
		}
	}
	h.domains = append(h.domains, d)
	return d, nil
}

// AttachDevice hot-adds a multi-queue NIC to the domain's guest through the
// sim.Lifecycle state machine and registers it in the device directory.
func (h *Host) AttachDevice(d *Domain, profile device.NICProfile, bdf pci.BDF, queues int) (*driver.MQNIC, error) {
	if d.Sys == nil {
		return nil, fmt.Errorf("tenant: domain %d has no guest system", d.ID)
	}
	if owner, ok := h.dir[bdf]; ok && owner != d {
		return nil, fmt.Errorf("tenant: device %s already owned by tenant %d", bdf, owner.ID)
	}
	mq, err := d.Sys.HotAttachMQNIC(profile, bdf, queues, false)
	if err != nil {
		return nil, err
	}
	h.register(d, bdf)
	return mq, nil
}

// Register places an already-built device of the domain's guest into the
// device directory (for devices wired outside the hot-plug path).
func (h *Host) Register(d *Domain, bdf pci.BDF) error {
	if owner, ok := h.dir[bdf]; ok && owner != d {
		return fmt.Errorf("tenant: device %s already owned by tenant %d", bdf, owner.ID)
	}
	h.register(d, bdf)
	return nil
}

func (h *Host) register(d *Domain, bdf pci.BDF) {
	if _, ok := h.dir[bdf]; !ok {
		d.bdfs = append(d.bdfs, bdf)
	}
	h.dir[bdf] = d
}

// DirectoryOwner returns the domain owning bdf, or nil.
func (h *Host) DirectoryOwner(bdf pci.BDF) *Domain { return h.dir[bdf] }

// RemoveDevice surprise-removes a directory device from the domain's guest.
// The directory slot stays with the tenant (the slot is quarantined, not
// reassigned) — only Teardown releases slots.
func (h *Host) RemoveDevice(d *Domain, bdf pci.BDF) error {
	if h.dir[bdf] != d {
		return fmt.Errorf("tenant: device %s not owned by tenant %d", bdf, d.ID)
	}
	if d.Sys == nil {
		return fmt.Errorf("tenant: domain %d has no guest system", d.ID)
	}
	return d.Sys.LifecycleFor(bdf).SurpriseRemove()
}

// Reclaim unmaps pages of the domain's guest-physical space starting at
// gpa and returns their host frames to the free list (memory unplug). With
// strict invalidation the domain's stage-2 TLB entries die with the
// mappings; with lazy invalidation they linger in the queue — the stale
// window HostileTenant's replay scenario aims at.
func (h *Host) Reclaim(d *Domain, gpa uint64, pages int) error {
	if d.torn {
		return ErrTornDown
	}
	for i := 0; i < pages; i++ {
		f, err := h.unmapGPA(d, gpa+uint64(i)<<mem.PageShift)
		if err != nil {
			return err
		}
		h.disownHPA(f)
	}
	return nil
}

// Grant maps pages of fresh guest-physical space into the domain starting
// at gpa with the given permissions, drawing frames from the free list
// first (memory plug — the other half of the reuse-after-reclaim hazard).
func (h *Host) Grant(d *Domain, gpa uint64, pages int, perm pci.Dir) error {
	if d.torn {
		return ErrTornDown
	}
	for i := 0; i < pages; i++ {
		f := h.allocHPA(d.ID)
		if err := h.mapGPA(d, gpa+uint64(i)<<mem.PageShift, f, perm); err != nil {
			return err
		}
	}
	return nil
}

// Balloon is the guest-visible hypercall: unmap-invalidate-remap `pages`
// pages at the top of the domain's space. Each page costs BalloonOp on the
// calling tenant's clock and drives the shared stage-2 invalidation
// machinery — which is why the host enforces a per-window quota
// (ErrBalloonThrottled) instead of letting one tenant flood it.
func (h *Host) Balloon(d *Domain, pages int) error {
	if d.torn {
		return ErrTornDown
	}
	clk := h.Clk
	if d.Sys != nil {
		clk = d.Sys.CPU
	}
	now := clk.Now()
	if h.BalloonWindow > 0 && now-d.winStart >= h.BalloonWindow {
		d.winStart = now
		d.winOps = 0
	}
	if h.BalloonQuota > 0 && d.winOps+pages > h.BalloonQuota {
		d.Throttled++
		h.Throttled++
		return fmt.Errorf("%w: tenant %d (%d ops in window)", ErrBalloonThrottled, d.ID, d.winOps)
	}
	d.winOps += pages
	// Highest mapped GPA pages churn; the hypercall itself charges the
	// calling guest, the stage-2 work charges the host.
	gpns := d.highestPages(pages)
	for _, gpn := range gpns {
		clk.Charge(cycles.Stage2, h.Model.BalloonOp)
		gpa := gpn << mem.PageShift
		// Allocate the destination before freeing the source (migration
		// order) — freeing first would hand the same frame straight back
		// through the LIFO list and make the balloon a no-op.
		nf := h.allocHPA(d.ID)
		f, err := h.unmapGPA(d, gpa)
		if err != nil {
			return err
		}
		if err := h.mapGPA(d, gpa, nf, pci.DirBidi); err != nil {
			return err
		}
		h.disownHPA(f)
		d.Ballooned++
	}
	return nil
}

// highestPages returns up to n currently-mapped GPA page numbers, highest
// first (sorted for determinism — map iteration order must never leak into
// charge or ledger order).
func (d *Domain) highestPages(n int) []uint64 {
	gpns := make([]uint64, 0, len(d.pages))
	for gpn := range d.pages {
		gpns = append(gpns, gpn)
	}
	sort.Slice(gpns, func(i, j int) bool { return gpns[i] > gpns[j] })
	if len(gpns) > n {
		gpns = gpns[:n]
	}
	return gpns
}

// Teardown destroys the domain: live directory devices are surprise-removed
// (ghost DMAs must fault), directory slots are released, every stage-2
// mapping is unmapped with one domain-wide TLB flush, and all owned frames
// return to the free list — primed for regrant to other tenants, which is
// exactly when a surviving stale stage-2 entry would become cross-tenant.
func (h *Host) Teardown(d *Domain) error {
	if d.torn {
		return nil
	}
	for _, bdf := range d.bdfs {
		if d.Sys != nil {
			if lc := d.Sys.LifecycleFor(bdf); lc.State() == sim.Live {
				if err := lc.SurpriseRemove(); err != nil {
					return err
				}
			}
		}
		delete(h.dir, bdf)
	}
	gpns := make([]uint64, 0, len(d.pages))
	for gpn := range d.pages {
		gpns = append(gpns, gpn)
	}
	sort.Slice(gpns, func(i, j int) bool { return gpns[i] < gpns[j] })
	for _, gpn := range gpns {
		gpa := gpn << mem.PageShift
		f := d.pages[gpn]
		before := h.tableClk.Now()
		if err := d.s2.Unmap(gpa); err != nil {
			return err
		}
		h.chargeTable(before)
		h.Clk.Charge(cycles.Stage2, h.Model.Stage2UnmapPage)
		delete(d.pages, gpn)
		if h.aud != nil {
			h.aud.OnS2Unmap(d.ID, gpa)
		}
		h.disownHPA(f)
	}
	// One domain-wide flush covers every queued or cached entry.
	d.tlb.Flush()
	d.invq.pending = d.invq.pending[:0]
	d.S2Flushes++
	h.Clk.Charge(cycles.Stage2, h.Model.Stage2GlobalFlush)
	if err := d.s2.Destroy(); err != nil {
		return err
	}
	d.torn = true
	return nil
}

// Close releases the host's simulated memory. Domains must not translate
// afterwards.
func (h *Host) Close() { h.Mem.Release() }
