package tenant

import (
	"fmt"

	"riommu/internal/cycles"
	"riommu/internal/dma"
	"riommu/internal/iotlb"
	"riommu/internal/mem"
	"riommu/internal/pci"
)

// nested is the two-stage translator spliced into a guest's DMA engine:
// stage 1 (the guest's own per-mode path) produces a GPA, the device
// directory validates the source, and stage 2 resolves each touched GPA
// page against the domain's shared table. The returned address is the GPA —
// guest data still lives in the guest's simulated memory, so the data plane
// is byte-identical with tenancy off; the resolved HPA is handed to the
// oracle, which is where containment is proven.
type nested struct {
	dom   *Domain
	inner dma.Translator
}

// Translate implements dma.Translator. Chunks never cross a 4 KiB stage-1
// boundary (the engine splits them), but a sub-page chunk may still
// straddle a stage-2 page boundary when stage 1 maps at byte granularity
// (the rIOMMU modes), so every touched GPA page is resolved and verified.
func (n *nested) Translate(bdf pci.BDF, iova uint64, size uint32, dir pci.Dir) (mem.PA, error) {
	gpa, err := n.inner.Translate(bdf, iova, size, dir)
	if err != nil {
		return 0, err
	}
	d := n.dom
	h := d.host
	// Device directory: source validation. A DMA tagged with a BDF the
	// directory assigns to another domain (or to none) never reaches
	// stage 2 — the escape-via-BDF-spoof containment line.
	if owner := h.dir[bdf]; owner != d {
		d.SpoofBlocked++
		h.SpoofBlocked++
		return 0, fmt.Errorf("%w: device %s, domain %d", ErrNotOwner, bdf, d.ID)
	}
	if d.torn {
		return 0, fmt.Errorf("%w: domain %d, device %s", ErrTornDown, d.ID, bdf)
	}
	end := uint64(gpa) + uint64(size) - 1
	for gpn := uint64(gpa) >> mem.PageShift; gpn <= end>>mem.PageShift; gpn++ {
		base, err := d.resolve(gpn, dir)
		if err != nil {
			d.S2Faults++
			return 0, err
		}
		if h.aud != nil {
			segStart := max(uint64(gpa), gpn<<mem.PageShift)
			segEnd := min(end, (gpn<<mem.PageShift)|mem.PageMask)
			segHPA := uint64(base) | (segStart & mem.PageMask)
			h.aud.VerifyStage2(d.ID, bdf, segStart, mem.PA(segHPA), uint32(segEnd-segStart+1), dir)
		}
	}
	return gpa, nil
}

// TranslateBatch resolves N chunks through both stages with one call: the
// native batched verb of the dma.BatchTranslator contract. Stage 1 itself
// batches when the guest's translator speaks the verb; each chunk's
// directory check, stage-2 resolves, and oracle reports then run in the
// exact order the scalar path produces them.
func (n *nested) TranslateBatch(bdf pci.BDF, reqs []dma.Req, out []dma.Resp) int {
	for i := range reqs {
		gpa, err := n.Translate(bdf, reqs[i].IOVA, reqs[i].Size, reqs[i].Dir)
		out[i] = dma.Resp{PA: gpa, Err: err}
		if err != nil {
			return i
		}
	}
	return len(reqs)
}

// resolve translates one GPA page through the domain's stage-2 TLB, walking
// the shared radix table on a miss. Stage-2 permissions intersect with
// stage 1's: stage 1 already enforced its own, and want must also be
// allowed here.
func (d *Domain) resolve(gpn uint64, want pci.Dir) (mem.PA, error) {
	h := d.host
	key := iotlb.Key{IOVAPFN: gpn} // per-domain cache: BDF not part of the key
	if e, ok := d.tlb.Lookup(key); ok {
		d.S2Hits++
		if !e.Perm.Allows(want) {
			return 0, fmt.Errorf("tenant: stage-2 permission fault: domain %d gpa page %#x perm %v want %v",
				d.ID, gpn, e.Perm, want)
		}
		return e.Frame.PA(), nil
	}
	d.S2Misses++
	h.Clk.Charge(cycles.Stage2, h.Model.Stage2Walk)
	pa, perm, err := d.s2.Walk(gpn<<mem.PageShift, want)
	if err != nil {
		return 0, err
	}
	d.tlb.Insert(key, iotlb.Entry{Frame: mem.PFNOf(pa), Perm: perm})
	return pa, nil
}

// Stage2 resolves a raw GPA access against the domain's stage-2 state
// exactly as a device DMA would (TLB, walk costs, oracle check) without
// going through a guest device — the entry point for fuzzing and tests.
func (d *Domain) Stage2(gpa uint64, size uint32, dir pci.Dir) (mem.PA, error) {
	if d.torn {
		return 0, ErrTornDown
	}
	if size == 0 {
		return 0, fmt.Errorf("tenant: zero-size stage-2 access")
	}
	h := d.host
	end := gpa + uint64(size) - 1
	var first mem.PA
	for gpn := gpa >> mem.PageShift; gpn <= end>>mem.PageShift; gpn++ {
		base, err := d.resolve(gpn, dir)
		if err != nil {
			d.S2Faults++
			return 0, err
		}
		if gpn == gpa>>mem.PageShift {
			first = base | mem.PA(gpa&mem.PageMask)
		}
		if h.aud != nil {
			segStart := max(gpa, gpn<<mem.PageShift)
			segEnd := min(end, (gpn<<mem.PageShift)|mem.PageMask)
			segHPA := uint64(base) | (segStart & mem.PageMask)
			h.aud.VerifyStage2(d.ID, pci.BDF(0), segStart, mem.PA(segHPA), uint32(segEnd-segStart+1), dir)
		}
	}
	return first, nil
}

// s2InvQueue is the per-domain stage-2 invalidation queue. Strict policy
// submits and waits per entry (Stage2InvEntry each); lazy policy queues
// until s2InvBatch entries accumulate, then drains the batch behind one
// global flush — cheaper, but unmapped translations stay live until the
// drain.
type s2InvQueue struct {
	pending []uint64 // GPA page numbers awaiting invalidation
}

// invalidate retires the stage-2 TLB entry for one GPA page per the host's
// invalidation policy.
func (d *Domain) invalidate(gpn uint64) {
	h := d.host
	key := iotlb.Key{IOVAPFN: gpn}
	if !h.LazyInvalidate {
		d.tlb.Invalidate(key)
		d.S2Invalidations++
		h.Clk.Charge(cycles.Stage2, h.Model.Stage2InvEntry)
		return
	}
	d.tlb.MarkStale(key)
	d.invq.pending = append(d.invq.pending, gpn)
	if len(d.invq.pending) >= s2InvBatch {
		d.DrainInvalidations()
	}
}

// DrainInvalidations flushes the lazy queue: every pending entry dies
// behind one global flush. Until this runs, lazy-mode lookups can hit
// stale entries — the window the oracle's stage2-stale and cross-tenant
// classes exist to catch.
func (d *Domain) DrainInvalidations() {
	if len(d.invq.pending) == 0 {
		return
	}
	d.tlb.Flush()
	d.S2Invalidations += uint64(len(d.invq.pending))
	d.S2Flushes++
	d.invq.pending = d.invq.pending[:0]
	d.host.Clk.Charge(cycles.Stage2, d.host.Model.Stage2GlobalFlush)
}

// PendingInvalidations returns the lazy queue's depth.
func (d *Domain) PendingInvalidations() int { return len(d.invq.pending) }

// TLBStats returns the stage-2 TLB counters.
func (d *Domain) TLBStats() iotlb.Stats { return d.tlb.Stats() }

// MappedPages returns the number of live stage-2 mappings.
func (d *Domain) MappedPages() int { return len(d.pages) }

// FrameOf returns the frame backing a GPA page in the hypervisor's shadow
// map (ok=false when unmapped). Test/oracle plumbing, charges nothing.
func (d *Domain) FrameOf(gpa uint64) (mem.PFN, bool) {
	f, ok := d.pages[gpa>>mem.PageShift]
	return f, ok
}
