package tenant

import (
	"testing"

	"riommu/internal/mem"
	"riommu/internal/pci"
)

// FuzzStage2Walk throws arbitrary GPA/size/direction accesses at a domain
// among hostile neighbors and checks the stage-2 containment invariants:
//
//   - a successful access never resolves outside the tenant's own granted
//     space — the oracle must see zero violations of any class;
//   - the page offset is preserved exactly;
//   - stage-2 permissions intersect: a page granted write-only must fault
//     reads, and vice versa;
//   - a reclaimed page faults every direction.
func FuzzStage2Walk(f *testing.F) {
	f.Add(uint64(0), uint32(64), byte(0))
	f.Add(uint64(15)<<mem.PageShift+4095, uint32(2), byte(1))
	f.Add(uint64(16)<<mem.PageShift-1, uint32(4096), byte(2))
	f.Add(^uint64(0), uint32(0), byte(255))
	f.Fuzz(func(t *testing.T, gpa uint64, size uint32, dirb byte) {
		const granted = 16 // pages granted to the fuzzed domain
		h, err := NewHost(64)
		if err != nil {
			t.Fatal(err)
		}
		defer h.Close()
		orc := h.EnableAudit()
		d, err := h.AdoptSpace(granted)
		if err != nil {
			t.Fatal(err)
		}
		// A neighbor domain: its frames are the ones a containment bug
		// would leak into.
		if _, err := h.AdoptSpace(granted); err != nil {
			t.Fatal(err)
		}

		gpa %= 2 * granted << mem.PageShift // half in-bounds, half beyond
		size = size%16384 + 1
		dir := pci.Dir(dirb%3) + pci.DirToDevice
		limit := uint64(granted) << mem.PageShift

		hpa, err := d.Stage2(gpa, size, dir)
		inBounds := gpa+uint64(size) <= limit && gpa+uint64(size) > gpa
		if err == nil {
			if !inBounds {
				t.Fatalf("out-of-bounds access landed: gpa=%#x size=%d", gpa, size)
			}
			if uint64(hpa)&mem.PageMask != gpa&mem.PageMask {
				t.Fatalf("offset not preserved: gpa=%#x hpa=%#x", gpa, hpa)
			}
			if own := h.Owner(mem.PFNOf(hpa)); own != d.ID {
				t.Fatalf("resolved into tenant %d's frame (gpa=%#x)", own, gpa)
			}
		} else if inBounds {
			t.Fatalf("in-bounds access faulted: gpa=%#x size=%d dir=%v: %v", gpa, size, dir, err)
		}

		// Permission intersection: regrant page 0 with dir only, the
		// other directions must fault.
		if err := h.Reclaim(d, 0, 1); err != nil {
			t.Fatal(err)
		}
		if _, err := d.Stage2(0, 64, dir); err == nil {
			t.Fatal("reclaimed page still translatable")
		}
		if err := h.Grant(d, 0, 1, dir); err != nil {
			t.Fatal(err)
		}
		if _, err := d.Stage2(0, 64, dir); err != nil {
			t.Fatalf("granted direction %v faulted: %v", dir, err)
		}
		if dir != pci.DirBidi {
			other := pci.DirToDevice
			if dir == pci.DirToDevice {
				other = pci.DirFromDevice
			}
			if _, err := d.Stage2(0, 64, other); err == nil {
				t.Fatalf("permission intersection broken: granted %v, %v allowed", dir, other)
			}
		}

		if orc.Violations != 0 {
			t.Fatalf("oracle flagged %d violations on contained accesses: %v", orc.Violations, orc.Events)
		}
	})
}
