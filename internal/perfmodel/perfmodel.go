// Package perfmodel implements the paper's validated performance model
// (§3.3): for I/O-intensive workloads the throughput of the system is
// entirely determined by C, the average number of CPU cycles the core spends
// processing one packet. With S the core clock in cycles/second and 1,500
// wire bytes per Ethernet packet,
//
//	Gbps(C) = 1500 byte × 8 bit × (S / C) / 1e9
//
// capped at the NIC's line rate. Figure 8 shows this model coincides with
// measurements both under artificial busy-wait lengthening of C and under
// the real IOMMU modes.
package perfmodel

import "riommu/internal/cycles"

// WireBytes is the Ethernet wire size the paper's model uses per packet.
const WireBytes = 1500

// PacketsPerSecond returns S/C capped at the line rate's packet rate.
// A zero C means the core is never the bottleneck (line-rate limited).
func PacketsPerSecond(m cycles.Model, cyclesPerPacket float64, lineRateGbps float64) float64 {
	linePkts := LineRatePackets(lineRateGbps)
	if cyclesPerPacket <= 0 {
		return linePkts
	}
	pkts := m.CyclesPerSecond() / cyclesPerPacket
	if lineRateGbps > 0 && pkts > linePkts {
		return linePkts
	}
	return pkts
}

// LineRatePackets converts a line rate to WireBytes-packets per second.
func LineRatePackets(lineRateGbps float64) float64 {
	return lineRateGbps * 1e9 / (WireBytes * 8)
}

// Gbps implements the paper's model with a line-rate cap.
func Gbps(m cycles.Model, cyclesPerPacket float64, lineRateGbps float64) float64 {
	return PacketsPerSecond(m, cyclesPerPacket, lineRateGbps) * WireBytes * 8 / 1e9
}

// GbpsUncapped is the pure model curve of Figure 8 (no line-rate cap).
func GbpsUncapped(m cycles.Model, cyclesPerPacket float64) float64 {
	if cyclesPerPacket <= 0 {
		return 0
	}
	return m.CyclesPerSecond() / cyclesPerPacket * WireBytes * 8 / 1e9
}

// CPUUtil returns the core utilization in [0,1] when processing rate units
// per second at cyclesPerUnit each.
func CPUUtil(m cycles.Model, cyclesPerUnit, ratePerSecond float64) float64 {
	u := cyclesPerUnit * ratePerSecond / m.CyclesPerSecond()
	if u > 1 {
		return 1
	}
	if u < 0 {
		return 0
	}
	return u
}

// RatePerSecond returns the sustained unit rate for a per-unit CPU cost,
// capped by an optional line rate expressed in units/second (<= 0: uncapped).
func RatePerSecond(m cycles.Model, cyclesPerUnit, lineUnitsPerSecond float64) float64 {
	if cyclesPerUnit <= 0 {
		return lineUnitsPerSecond
	}
	r := m.CyclesPerSecond() / cyclesPerUnit
	if lineUnitsPerSecond > 0 && r > lineUnitsPerSecond {
		return lineUnitsPerSecond
	}
	return r
}
