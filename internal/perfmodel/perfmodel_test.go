package perfmodel

import (
	"math"
	"testing"

	"riommu/internal/cycles"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestGbpsModelAnchors(t *testing.T) {
	m := cycles.DefaultModel() // S = 3.1 GHz
	// The paper's Figure 7/8 anchor: C_none = 1,816 cycles/packet on a
	// 40 Gbps NIC gives 1500*8*3.1e9/1816 ≈ 20.5 Gbps.
	got := Gbps(m, 1816, 40)
	if !almostEqual(got, 20.48, 0.1) {
		t.Errorf("Gbps(1816) = %.2f, want ≈20.5", got)
	}
	// C_strict ≈ 10× C_none gives ≈2 Gbps.
	if g := Gbps(m, 18160, 40); !almostEqual(g, 2.05, 0.05) {
		t.Errorf("Gbps(18160) = %.2f", g)
	}
}

func TestLineRateCap(t *testing.T) {
	m := cycles.DefaultModel()
	// On a 10 Gbps NIC, a tiny C saturates at exactly 10.
	if g := Gbps(m, 100, 10); g != 10 {
		t.Errorf("capped Gbps = %v, want 10", g)
	}
	// Zero C means line rate.
	if g := Gbps(m, 0, 10); g != 10 {
		t.Errorf("Gbps(0) = %v", g)
	}
	// Uncapped model keeps growing.
	if g := GbpsUncapped(m, 100); g <= 100 {
		t.Errorf("GbpsUncapped(100) = %v", g)
	}
	if GbpsUncapped(m, 0) != 0 {
		t.Error("GbpsUncapped(0) should be 0")
	}
}

func TestThroughputInverseInC(t *testing.T) {
	// The §3.3 consequence: throughput is proportional to 1/C below the cap.
	m := cycles.DefaultModel()
	g1 := Gbps(m, 4000, 40)
	g2 := Gbps(m, 8000, 40)
	if !almostEqual(g1/g2, 2.0, 1e-9) {
		t.Errorf("doubling C should halve Gbps: %v vs %v", g1, g2)
	}
}

func TestLineRatePackets(t *testing.T) {
	// 10 Gbps / (1500 B × 8 b) = 833,333 pkt/s.
	if p := LineRatePackets(10); !almostEqual(p, 833333.3, 1) {
		t.Errorf("LineRatePackets(10) = %v", p)
	}
}

func TestPacketsPerSecondCap(t *testing.T) {
	m := cycles.DefaultModel()
	if p := PacketsPerSecond(m, 1816, 10); !almostEqual(p, 833333.3, 1) {
		t.Errorf("brcm-like saturation: %v", p)
	}
	if p := PacketsPerSecond(m, 1816, 40); !almostEqual(p, 3.1e9/1816, 1) {
		t.Errorf("mlx-like CPU bound: %v", p)
	}
}

func TestCPUUtil(t *testing.T) {
	m := cycles.DefaultModel()
	// CPU-bound: utilization is exactly 1.
	pkts := PacketsPerSecond(m, 3720, 40)
	if u := CPUUtil(m, 3720, pkts); !almostEqual(u, 1.0, 1e-9) {
		t.Errorf("CPU-bound util = %v", u)
	}
	// Line-rate bound at 10G with C=1860: util = 1860*833333/3.1e9 ≈ 0.5.
	if u := CPUUtil(m, 1860, LineRatePackets(10)); !almostEqual(u, 0.5, 0.01) {
		t.Errorf("line-bound util = %v", u)
	}
	if u := CPUUtil(m, 1e12, 1e12); u != 1 {
		t.Errorf("util must cap at 1, got %v", u)
	}
	if u := CPUUtil(m, -5, 10); u != 0 {
		t.Errorf("negative util clamped, got %v", u)
	}
}

func TestRatePerSecond(t *testing.T) {
	m := cycles.DefaultModel()
	// 258,333 cycles/request → ~12K req/s (the Apache 1KB anchor).
	if r := RatePerSecond(m, 258333, 0); !almostEqual(r, 12000, 20) {
		t.Errorf("apache rate = %v", r)
	}
	if r := RatePerSecond(m, 100, 500); r != 500 {
		t.Errorf("line cap = %v", r)
	}
	if r := RatePerSecond(m, 0, 500); r != 500 {
		t.Errorf("zero-cost rate = %v", r)
	}
}
