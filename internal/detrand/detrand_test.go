package detrand

import (
	"math/rand"
	"testing"
)

// TestMatchesMathRand pins the package contract: New(seed) yields draws
// bit-identical to rand.New(rand.NewSource(seed)) across the replay phase,
// the replay→live transition at draw 607, and deep into the live phase, for
// every derived draw kind the campaign uses.
func TestMatchesMathRand(t *testing.T) {
	for _, seed := range []int64{0, 1, -1, 42, 89482311, 1 << 40, -987654321} {
		want := rand.New(rand.NewSource(seed))
		got := New(seed)
		for i := 0; i < 3*rngLen; i++ {
			switch i % 5 {
			case 0:
				if w, g := want.Uint64(), got.Uint64(); w != g {
					t.Fatalf("seed %d draw %d: Uint64 %d != %d", seed, i, g, w)
				}
			case 1:
				if w, g := want.Int63(), got.Int63(); w != g {
					t.Fatalf("seed %d draw %d: Int63 %d != %d", seed, i, g, w)
				}
			case 2:
				if w, g := want.Intn(97), got.Intn(97); w != g {
					t.Fatalf("seed %d draw %d: Intn %d != %d", seed, i, g, w)
				}
			case 3:
				if w, g := want.Float64(), got.Float64(); w != g {
					t.Fatalf("seed %d draw %d: Float64 %v != %v", seed, i, g, w)
				}
			case 4:
				a, b := make([]int, 33), make([]int, 33)
				for j := range a {
					a[j], b[j] = j, j
				}
				want.Shuffle(len(a), func(x, y int) { a[x], a[y] = a[y], a[x] })
				got.Shuffle(len(b), func(x, y int) { b[x], b[y] = b[y], b[x] })
				for j := range a {
					if a[j] != b[j] {
						t.Fatalf("seed %d draw %d: Shuffle diverged at %d", seed, i, j)
					}
				}
			}
		}
	}
}

// TestIndependentStreams checks that two generators from the same seed do
// not share mutable state.
func TestIndependentStreams(t *testing.T) {
	a, b := New(7), New(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams from the same seed diverged at draw %d", i)
		}
	}
	c := New(7) // fresh generator must restart the stream
	if got, want := c.Uint64(), New(7).Uint64(); got != want {
		t.Fatalf("fresh generator did not restart: %d != %d", got, want)
	}
}

func BenchmarkNewMathRand(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = rand.New(rand.NewSource(42)).Uint64()
	}
}

func BenchmarkNewDetrand(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = New(42).Uint64()
	}
}
