// Package detrand constructs math/rand generators without paying the
// lagged-Fibonacci seeding cost on every construction.
//
// The campaign runtime builds a fresh deterministic *rand.Rand for every
// cell that consumes randomness (e.g. the SATA completion-order shuffle),
// and math/rand's Source seeding is surprisingly expensive: ~1900 rounds of
// 64-bit division (tens of microseconds) before the first draw. Since the
// Go 1 compatibility promise freezes the stream each seed produces, the
// seeded state is a pure function of the seed — so it can be computed once
// per distinct seed and replayed.
//
// New(seed) returns a *rand.Rand whose draw sequence is bit-identical to
// rand.New(rand.NewSource(seed)) — pinned by TestMatchesMathRand — with the
// expensive seeding cached per seed.
package detrand

import (
	"math/rand"
	"sync"
)

// Generator geometry of math/rand's additive lagged-Fibonacci source
// (rngLen-position feedback register with a tap rngTap back).
const (
	rngLen = 607
	rngTap = 273
)

// template holds the first rngLen raw Uint64 outputs of a freshly seeded
// source, in draw order. Because the generator updates exactly one register
// slot per draw and cycles through all of them every rngLen draws, these
// outputs are simultaneously (a) the stream prefix to replay and (b) the
// complete register state at draw rngLen — no access to math/rand internals
// is needed to continue the sequence.
type template struct {
	out [rngLen]uint64
}

var (
	tmplMu sync.Mutex
	tmpls  = map[int64]*template{}
)

func templateFor(seed int64) *template {
	tmplMu.Lock()
	defer tmplMu.Unlock()
	if t, ok := tmpls[seed]; ok {
		return t
	}
	src, ok := rand.NewSource(seed).(rand.Source64)
	if !ok {
		return nil // no Source64: caller falls back to plain math/rand
	}
	t := &template{}
	for i := range t.out {
		t.out[i] = src.Uint64()
	}
	tmpls[seed] = t
	return t
}

// source replays a template's prefix, then continues the lagged-Fibonacci
// recurrence on the register state the prefix encodes. Most consumers (a
// few hundred draws per campaign cell) never leave the replay phase, so
// construction is one map lookup and no copying.
type source struct {
	t    *template
	k    int // next replay index
	live bool
	vec  [rngLen]uint64
	tap  int
	feed int
}

func (s *source) Uint64() uint64 {
	if !s.live {
		if s.k < rngLen {
			x := s.t.out[s.k]
			s.k++
			return x
		}
		// Reconstruct the register: draw k updated slot (feed0-1-k) mod
		// rngLen, where feed0 = rngLen-rngTap is the initial feed position.
		for k := 0; k < rngLen; k++ {
			s.vec[((rngLen-rngTap-1-k)%rngLen+rngLen)%rngLen] = s.t.out[k]
		}
		// After exactly rngLen draws both cursors are back at their seeded
		// positions.
		s.tap, s.feed = 0, rngLen-rngTap
		s.live = true
	}
	s.tap--
	if s.tap < 0 {
		s.tap += rngLen
	}
	s.feed--
	if s.feed < 0 {
		s.feed += rngLen
	}
	x := s.vec[s.feed] + s.vec[s.tap]
	s.vec[s.feed] = x
	return x
}

func (s *source) Int63() int64 { return int64(s.Uint64() &^ (1 << 63)) }

func (s *source) Seed(seed int64) {
	t := templateFor(seed)
	if t == nil {
		panic("detrand: math/rand source lost Source64") // unreachable: checked in New
	}
	*s = source{t: t}
}

// New returns a generator producing exactly the stream of
// rand.New(rand.NewSource(seed)), seeding each distinct seed only once.
func New(seed int64) *rand.Rand {
	t := templateFor(seed)
	if t == nil {
		return rand.New(rand.NewSource(seed))
	}
	return rand.New(&source{t: t})
}
