package driver

import (
	"fmt"

	"riommu/internal/device"
	"riommu/internal/dma"
	"riommu/internal/mem"
	"riommu/internal/pci"
)

// NVMeDriver is the OS block driver for the NVMe model: it owns a queue
// pair (mapped persistently for the device, like NIC descriptor rings),
// maps one single-use IOVA per command's data buffer, and unmaps completed
// commands in completion-burst order — the same intra-OS protection
// discipline as the NIC path, which is exactly why §4 argues rIOMMU covers
// NVMe: commands are consumed strictly in queue order.
type NVMeDriver struct {
	mm   *mem.PhysMem
	prot Protection
	ssd  *device.NVMe
	q    *device.NVMeQueuePair
	pool *BufferPool

	staticIOVAs []mapped
	pending     map[uint32]nvmeCmd // cid -> in-flight state
	order       []uint32           // submission order (== completion order)
	seen        uint32             // completions consumed

	// Statistics.
	Submitted, Completed uint64
}

type nvmeCmd struct {
	m      mapped
	isRead bool
	length uint32
}

// NVMeCompletion is one finished command returned by Poll.
type NVMeCompletion struct {
	CID    uint32
	Status uint32
	// Data holds the payload for completed reads.
	Data []byte
}

// NewNVMeDriver allocates and maps a queue pair of the given depth and
// binds it to an NVMe device model with blockSize × blocks of storage.
func NewNVMeDriver(mm *mem.PhysMem, prot Protection, eng *dma.Engine, bdf pci.BDF, blockSize uint32, blocks uint64, depth uint32) (*NVMeDriver, error) {
	q, err := device.NewNVMeQueuePair(mm, depth)
	if err != nil {
		return nil, err
	}
	d := &NVMeDriver{
		mm:      mm,
		prot:    prot,
		ssd:     device.NewNVMe(bdf, eng, blockSize, blocks),
		q:       q,
		pool:    NewBufferPool(mm, mem.PageSize),
		pending: make(map[uint32]nvmeCmd),
	}
	// Persistently map the SQ and CQ (static ring table, as for NICs).
	sqIOVA, err := prot.Map(RingStatic, q.SQPA(), q.SQBytes(), pci.DirBidi)
	if err != nil {
		return nil, fmt.Errorf("driver: mapping NVMe SQ: %w", err)
	}
	cqIOVA, err := prot.Map(RingStatic, q.CQPA(), q.CQBytes(), pci.DirBidi)
	if err != nil {
		return nil, fmt.Errorf("driver: mapping NVMe CQ: %w", err)
	}
	q.SetDeviceAddrs(sqIOVA, cqIOVA)
	d.staticIOVAs = []mapped{
		{pa: q.SQPA(), iova: sqIOVA, size: q.SQBytes()},
		{pa: q.CQPA(), iova: cqIOVA, size: q.CQBytes()},
	}
	return d, nil
}

// Device exposes the SSD model (tests, fault injection).
func (d *NVMeDriver) Device() *device.NVMe { return d.ssd }

// Queue exposes the queue pair.
func (d *NVMeDriver) Queue() *device.NVMeQueuePair { return d.q }

// Write submits a write of data (at most one page) at the given block.
// The buffer is mapped just before submission (Figure 4's discipline).
func (d *NVMeDriver) Write(block uint64, data []byte) (uint32, error) {
	if len(data) == 0 || len(data) > mem.PageSize {
		return 0, fmt.Errorf("driver: NVMe write of %d bytes (want 1..%d)", len(data), mem.PageSize)
	}
	pa, err := d.pool.Get()
	if err != nil {
		return 0, err
	}
	if err := d.mm.Write(pa, data); err != nil {
		return 0, err
	}
	return d.submit(pa, block, uint32(len(data)), device.NVMeOpWrite, false)
}

// Read submits a read of length bytes (at most one page) from block.
func (d *NVMeDriver) Read(block uint64, length uint32) (uint32, error) {
	if length == 0 || length > mem.PageSize {
		return 0, fmt.Errorf("driver: NVMe read of %d bytes", length)
	}
	pa, err := d.pool.Get()
	if err != nil {
		return 0, err
	}
	return d.submit(pa, block, length, device.NVMeOpRead, true)
}

func (d *NVMeDriver) submit(pa mem.PA, block uint64, length uint32, op uint32, isRead bool) (uint32, error) {
	dir := pci.DirToDevice
	if isRead {
		dir = pci.DirFromDevice
	}
	iova, err := d.prot.Map(RingRx, pa, length, dir)
	if err != nil {
		d.pool.Put(pa)
		return 0, err
	}
	cid, err := d.q.Submit(iova, block, length, op)
	if err != nil {
		uerr := d.prot.Unmap(RingRx, iova, length, true)
		d.pool.Put(pa)
		if uerr != nil {
			return 0, uerr
		}
		return 0, err
	}
	d.pending[cid] = nvmeCmd{m: mapped{pa: pa, iova: iova, size: length}, isRead: isRead, length: length}
	d.order = append(d.order, cid)
	d.Submitted++
	return cid, nil
}

// Poll lets the device consume up to max commands, then reaps every new
// completion: buffers are unmapped in completion order with the
// end-of-burst marker on the last one, and read payloads are copied out
// before their buffers return to the pool.
func (d *NVMeDriver) Poll(max int) ([]NVMeCompletion, error) {
	if _, err := d.ssd.ProcessSQ(d.q, max); err != nil {
		return nil, err
	}
	var done []NVMeCompletion
	for {
		c, ok, err := d.q.ReapCompletion(d.seen)
		if err != nil {
			return done, err
		}
		if !ok {
			break
		}
		d.seen++
		cmd, known := d.pending[c.CID]
		if !known {
			return done, fmt.Errorf("driver: completion for unknown cid %d", c.CID)
		}
		// NVMe queues complete strictly in submission order (§4) — the
		// property that makes rIOMMU's sequential flat tables applicable.
		// A violation means the device model is broken.
		if len(d.order) <= len(done) || d.order[len(done)] != c.CID {
			return done, fmt.Errorf("driver: out-of-order NVMe completion: cid %d", c.CID)
		}
		out := NVMeCompletion{CID: c.CID, Status: c.Status}
		if cmd.isRead && c.Status == device.NVMeStatusOK {
			data, err := d.mm.Read(cmd.m.pa, uint64(cmd.length))
			if err != nil {
				return done, err
			}
			out.Data = data
		}
		done = append(done, out)
	}
	// Unmap the burst in completion order; burst-end on the last.
	for i, c := range done {
		cmd := d.pending[c.CID]
		if err := d.prot.Unmap(RingRx, cmd.m.iova, cmd.m.size, i == len(done)-1); err != nil {
			return done, fmt.Errorf("driver: NVMe unmap cid %d: %w", c.CID, err)
		}
		d.pool.Put(cmd.m.pa)
		delete(d.pending, c.CID)
		d.Completed++
	}
	if len(done) > 0 {
		d.order = d.order[len(done):]
	}
	return done, nil
}

// Recover reinitializes the device path after a fault, as the OS does on an
// I/O page fault (§4): every in-flight command's mapping is torn down (in
// submission order, deterministically — the pending map is never ranged),
// buffers return to the pool, the queue pair and controller are reset.
// In-flight commands are lost; the caller resubmits.
func (d *NVMeDriver) Recover() error {
	for i, cid := range d.order {
		cmd, ok := d.pending[cid]
		if !ok {
			continue
		}
		_ = d.prot.Unmap(RingRx, cmd.m.iova, cmd.m.size, i == len(d.order)-1)
		d.pool.Put(cmd.m.pa)
	}
	d.pending = make(map[uint32]nvmeCmd)
	d.order = nil
	d.seen = 0
	d.ssd.ResetDevice()
	return d.q.Reset()
}

// Progress returns the device's forward-progress counter for the watchdog.
func (d *NVMeDriver) Progress() uint64 { return d.ssd.Commands }

// Reattach migrates the driver to a different protection unit (graceful
// degradation), tearing down in-flight and persistent queue mappings under
// the old unit best-effort and remapping the queues under the new one.
func (d *NVMeDriver) Reattach(prot Protection) error {
	for i, cid := range d.order {
		cmd, ok := d.pending[cid]
		if !ok {
			continue
		}
		_ = d.prot.Unmap(RingRx, cmd.m.iova, cmd.m.size, i == len(d.order)-1)
		d.pool.Put(cmd.m.pa)
	}
	d.pending = make(map[uint32]nvmeCmd)
	d.order = nil
	d.seen = 0
	for i := len(d.staticIOVAs) - 1; i >= 0; i-- {
		_ = d.prot.Unmap(RingStatic, d.staticIOVAs[i].iova, d.staticIOVAs[i].size, i == 0)
	}
	d.prot = prot
	sqIOVA, err := prot.Map(RingStatic, d.q.SQPA(), d.q.SQBytes(), pci.DirBidi)
	if err != nil {
		return fmt.Errorf("driver: remapping NVMe SQ: %w", err)
	}
	cqIOVA, err := prot.Map(RingStatic, d.q.CQPA(), d.q.CQBytes(), pci.DirBidi)
	if err != nil {
		return fmt.Errorf("driver: remapping NVMe CQ: %w", err)
	}
	d.q.SetDeviceAddrs(sqIOVA, cqIOVA)
	d.staticIOVAs = []mapped{
		{pa: d.q.SQPA(), iova: sqIOVA, size: d.q.SQBytes()},
		{pa: d.q.CQPA(), iova: cqIOVA, size: d.q.CQBytes()},
	}
	d.ssd.ResetDevice()
	return d.q.Reset()
}

// Teardown unmaps everything, including the persistent queue mappings.
func (d *NVMeDriver) Teardown() error {
	if len(d.pending) > 0 {
		if _, err := d.Poll(int(d.q.Entries())); err != nil {
			return err
		}
	}
	for i, m := range d.staticIOVAs {
		if err := d.prot.Unmap(RingStatic, m.iova, m.size, i == len(d.staticIOVAs)-1); err != nil {
			return err
		}
	}
	if err := d.q.Free(); err != nil {
		return err
	}
	return d.pool.Destroy()
}
