package driver

import (
	"fmt"
	"math/rand"

	"riommu/internal/device"
	"riommu/internal/dma"
	"riommu/internal/mem"
	"riommu/internal/pci"
)

// SlotMapper is the optional protection capability for devices whose queues
// complete out of order: the mapping is bound to an explicit flat-table
// entry (the §4 AHCI extension, core.Driver.MapAt). Protections without it
// (the baseline IOMMU, which has no ordering assumptions) fall back to
// ordinary Map.
type SlotMapper interface {
	MapAt(ring int, rentry uint32, pa mem.PA, size uint32, dir pci.Dir) (uint64, error)
}

// SATADriver is the OS block driver for the AHCI model: one mapping per
// command slot, unmapped in whatever order the drive completes. Under
// rIOMMU protection it uses slot-indexed MapAt; under the baseline it uses
// the ordinary allocator.
type SATADriver struct {
	mm   *mem.PhysMem
	prot Protection
	disk *device.SATA
	pool *BufferPool

	slots [device.SATASlots]*sataCmd

	// Statistics.
	Submitted, Completed uint64
}

type sataCmd struct {
	m      mapped
	isRead bool
	length uint32
	block  uint64
}

// NewSATADriver binds a driver to a fresh drive model.
func NewSATADriver(mm *mem.PhysMem, prot Protection, eng *dma.Engine, bdf pci.BDF, blockSize uint32, blocks uint64) *SATADriver {
	return &SATADriver{
		mm:   mm,
		prot: prot,
		disk: device.NewSATA(bdf, eng, blockSize, blocks),
		pool: NewBufferPool(mm, mem.PageSize),
	}
}

// Disk exposes the drive model.
func (d *SATADriver) Disk() *device.SATA { return d.disk }

// SubmitWrite issues a write command, mapping its buffer to the flat-table
// entry matching the AHCI slot when the protection supports it.
func (d *SATADriver) SubmitWrite(block uint64, data []byte) (int, error) {
	if len(data) == 0 || len(data) > mem.PageSize {
		return -1, fmt.Errorf("driver: SATA write of %d bytes", len(data))
	}
	pa, err := d.pool.Get()
	if err != nil {
		return -1, err
	}
	if err := d.mm.Write(pa, data); err != nil {
		return -1, err
	}
	return d.submit(pa, block, uint32(len(data)), device.SATAWrite, false)
}

// SubmitRead issues a read command.
func (d *SATADriver) SubmitRead(block uint64, length uint32) (int, error) {
	if length == 0 || length > mem.PageSize {
		return -1, fmt.Errorf("driver: SATA read of %d bytes", length)
	}
	pa, err := d.pool.Get()
	if err != nil {
		return -1, err
	}
	return d.submit(pa, block, length, device.SATARead, true)
}

func (d *SATADriver) submit(pa mem.PA, block uint64, length uint32, op int, isRead bool) (int, error) {
	// Find the slot first: the slot number doubles as the flat-table index.
	slot := -1
	for i := 0; i < device.SATASlots; i++ {
		if d.slots[i] == nil {
			slot = i
			break
		}
	}
	if slot == -1 {
		d.pool.Put(pa)
		return -1, fmt.Errorf("driver: all %d SATA slots busy", device.SATASlots)
	}
	dir := pci.DirToDevice
	if isRead {
		dir = pci.DirFromDevice
	}
	var iova uint64
	var err error
	if sm, ok := d.prot.(SlotMapper); ok {
		iova, err = sm.MapAt(RingRx, uint32(slot), pa, length, dir)
	} else {
		iova, err = d.prot.Map(RingRx, pa, length, dir)
	}
	if err != nil {
		d.pool.Put(pa)
		return -1, err
	}
	got, err := d.disk.Issue(device.SATACommand{BufIOVA: iova, Block: block, Length: length, Op: op})
	if err != nil {
		uerr := d.prot.Unmap(RingRx, iova, length, true)
		d.pool.Put(pa)
		if uerr != nil {
			return -1, uerr
		}
		return -1, err
	}
	if got != slot {
		return -1, fmt.Errorf("driver: slot mismatch: reserved %d, drive used %d", slot, got)
	}
	d.slots[slot] = &sataCmd{m: mapped{pa: pa, iova: iova, size: length}, isRead: isRead, length: length, block: block}
	d.Submitted++
	return slot, nil
}

// SATAResult is one completed command.
type SATAResult struct {
	Slot int
	Data []byte // read payload
}

// CompleteAll lets the drive finish every issued command in arbitrary
// order, then unmaps each buffer in that completion order (burst-end on the
// last). Returns results in completion order.
func (d *SATADriver) CompleteAll(rng *rand.Rand) ([]SATAResult, error) {
	order, err := d.disk.CompleteAll(rng)
	if err != nil {
		return nil, err
	}
	var out []SATAResult
	for i, slot := range order {
		cmd := d.slots[slot]
		if cmd == nil {
			return out, fmt.Errorf("driver: completion for empty slot %d", slot)
		}
		res := SATAResult{Slot: slot}
		if cmd.isRead {
			data, err := d.mm.Read(cmd.m.pa, uint64(cmd.length))
			if err != nil {
				return out, err
			}
			res.Data = data
		}
		if err := d.prot.Unmap(RingRx, cmd.m.iova, cmd.m.size, i == len(order)-1); err != nil {
			return out, fmt.Errorf("driver: SATA unmap slot %d: %w", slot, err)
		}
		d.pool.Put(cmd.m.pa)
		d.slots[slot] = nil
		d.Completed++
		out = append(out, res)
	}
	return out, nil
}

// Recover reinitializes the drive after a fault: every issued command's
// mapping is torn down (ascending slot order, deterministically), buffers
// return to the pool, and the port is reset. In-flight commands are lost.
func (d *SATADriver) Recover() error {
	last := -1
	for i := 0; i < device.SATASlots; i++ {
		if d.slots[i] != nil {
			last = i
		}
	}
	for i := 0; i < device.SATASlots; i++ {
		cmd := d.slots[i]
		if cmd == nil {
			continue
		}
		_ = d.prot.Unmap(RingRx, cmd.m.iova, cmd.m.size, i == last)
		d.pool.Put(cmd.m.pa)
		d.slots[i] = nil
	}
	d.disk.ResetDevice()
	return nil
}

// Progress returns the drive's forward-progress counter for the watchdog.
func (d *SATADriver) Progress() uint64 { return d.disk.Commands }

// Teardown drains and releases buffers.
func (d *SATADriver) Teardown(rng *rand.Rand) error {
	if _, err := d.CompleteAll(rng); err != nil {
		return err
	}
	return d.pool.Destroy()
}
