package driver

import (
	"bytes"
	"testing"

	"riommu/internal/cycles"
	"riommu/internal/intremap"
)

// wireIRQs attaches a strict-mode remapper to every queue of an MQNIC and
// returns the remapper plus a pointer to the recorded deliveries.
func wireIRQs(t *testing.T, mq *MQNIC) (*intremap.Remapper, *[]intremap.Delivery) {
	t.Helper()
	cpu, dev := &cycles.Clock{}, &cycles.Clock{}
	model := cycles.DefaultModel()
	rem, err := intremap.New(intremap.Config{TableOrder: 6}, cpu, dev, &model)
	if err != nil {
		t.Fatal(err)
	}
	var log []intremap.Delivery
	rem.SetSink(func(d intremap.Delivery) { log = append(log, d) })
	for q, drv := range mq.Queues {
		src, err := rem.NewSource(bdf, q, q, false)
		if err != nil {
			t.Fatalf("queue %d source: %v", q, err)
		}
		drv.SetIRQ(src)
	}
	return rem, &log
}

func TestReapFiresCompletionInterrupts(t *testing.T) {
	mq, _ := mqFixture(t, 2)
	_, log := wireIRQs(t, mq)
	payload := bytes.Repeat([]byte{3}, 600)
	for i := 0; i < 4; i++ {
		if err := mq.Send(payload); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := mq.PumpAndReapAll(); err != nil {
		t.Fatal(err)
	}
	// Each queue transmitted a burst: one coalesced Tx interrupt per queue.
	if len(*log) != 2 {
		t.Fatalf("deliveries = %d, want 2: %+v", len(*log), *log)
	}
	for i, d := range *log {
		if d.Core != i {
			t.Errorf("queue %d interrupt landed on core %d", i, d.Core)
		}
	}
}

// TestRecoverDropsPendingInterrupts is the regression test for the queue
// reset teardown gap: completions latched before MQNIC.Recover must never
// be delivered afterwards — the descriptors they refer to no longer exist.
func TestRecoverDropsPendingInterrupts(t *testing.T) {
	mq, _ := mqFixture(t, 2)
	_, log := wireIRQs(t, mq)
	payload := bytes.Repeat([]byte{9}, 600)
	for i := 0; i < 4; i++ {
		if err := mq.Send(payload); err != nil {
			t.Fatal(err)
		}
	}
	// Transmit without reaping: completions are now latched in each
	// queue's interrupt source, undelivered.
	for _, drv := range mq.Queues {
		if _, err := drv.PumpTx(int(drv.TxRing().Pending())); err != nil {
			t.Fatal(err)
		}
	}
	for q, drv := range mq.Queues {
		if src := drv.IRQ().(*intremap.Source); src.Pending() == 0 {
			t.Fatalf("queue %d latched nothing before reset", q)
		}
	}

	if err := mq.Recover(); err != nil {
		t.Fatal(err)
	}

	// Post-reset reaps must replay nothing.
	if _, err := mq.PumpAndReapAll(); err != nil {
		t.Fatal(err)
	}
	if _, err := mq.ReapRxAll(); err != nil {
		t.Fatal(err)
	}
	if len(*log) != 0 {
		t.Fatalf("recovered queues replayed %d pre-reset completions: %+v", len(*log), *log)
	}
	for q, drv := range mq.Queues {
		src := drv.IRQ().(*intremap.Source)
		if src.Pending() != 0 || src.Dropped() == 0 {
			t.Errorf("queue %d: pending=%d dropped=%d after reset", q, src.Pending(), src.Dropped())
		}
	}
}
