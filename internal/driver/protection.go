// Package driver implements the OS device-driver layer: ring setup, buffer
// pooling, and the per-DMA map/unmap discipline of intra-OS protection
// (§2.1) — every target buffer is mapped just before its DMA is posted and
// unmapped as soon as the DMA completes, with unmaps batched per completion
// burst exactly as high-throughput drivers process interrupts (§2.3).
package driver

import (
	"riommu/internal/cycles"
	"riommu/internal/mem"
	"riommu/internal/pci"
)

// Protection is the OS-side DMA protection interface the driver calls around
// every DMA. It is implemented by the baseline IOMMU driver (package
// baseline; strict/strict+/defer/defer+), the rIOMMU driver (package core;
// riommu/riommu−), and NoProtection (IOMMU disabled).
//
// ring identifies the rIOMMU flat table to allocate from; the baseline
// implementations ignore it. endOfBurst marks the last unmap of a completion
// burst, triggering the rIOMMU's single per-burst rIOTLB invalidation.
type Protection interface {
	Map(ring int, pa mem.PA, size uint32, dir pci.Dir) (uint64, error)
	Unmap(ring int, iova uint64, size uint32, endOfBurst bool) error
}

// BatchMapper is the optional batch extension of Protection, mirroring
// dma.BatchTranslator on the map side: MapBatch maps len(pas) same-sized
// buffers in one call, writing one IOVA per buffer into iovas, and returns
// how many were mapped (entries [0, n) on error). Implementations must be
// observationally equivalent to n scalar Maps — same mapping state, same
// cycle totals and charge-event counts, same audit order — so callers may
// use whichever form is convenient. The rIOMMU driver (core.Driver)
// implements it natively; MapBatch below falls back to a scalar loop for
// everything else.
type BatchMapper interface {
	MapBatch(ring int, pas []mem.PA, size uint32, dir pci.Dir, iovas []uint64) (int, error)
}

// MapBatch maps pas through p using its native batch verb when it has one
// and a scalar loop otherwise. iovas must have at least len(pas) entries.
func MapBatch(p Protection, ring int, pas []mem.PA, size uint32, dir pci.Dir, iovas []uint64) (int, error) {
	if b, ok := p.(BatchMapper); ok {
		return b.MapBatch(ring, pas, size, dir, iovas)
	}
	for i, pa := range pas {
		iova, err := p.Map(ring, pa, size, dir)
		if err != nil {
			return i, err
		}
		iovas[i] = iova
	}
	return len(pas), nil
}

// NoProtection is the disabled-IOMMU mode ("none"): DMAs use physical
// addresses directly, with no safety and no per-packet overhead.
type NoProtection struct{}

// Map returns the physical address itself as the device address.
func (NoProtection) Map(_ int, pa mem.PA, _ uint32, _ pci.Dir) (uint64, error) {
	return uint64(pa), nil
}

// Unmap does nothing.
func (NoProtection) Unmap(_ int, _ uint64, _ uint32, _ bool) error { return nil }

// PassThrough is the HWpt/SWpt protection (§5.1): the IOMMU is enabled but
// translates identity, and the kernel's DMA-API abstraction still runs on
// every map/unmap — burning cycles without providing protection. The paper
// measured this at ~200 cycles per packet, the reason HWpt/SWpt stream
// throughput trails no-IOMMU by ~10%.
type PassThrough struct {
	Clk   *cycles.Clock
	Model *cycles.Model
}

// Map charges the abstraction cost and returns the identity address.
func (p PassThrough) Map(_ int, pa mem.PA, _ uint32, _ pci.Dir) (uint64, error) {
	p.Clk.Charge(cycles.MapOther, p.Model.PassthroughOp)
	return uint64(pa), nil
}

// Unmap charges the abstraction cost.
func (p PassThrough) Unmap(_ int, _ uint64, _ uint32, _ bool) error {
	p.Clk.Charge(cycles.UnmapOther, p.Model.PassthroughOp)
	return nil
}
