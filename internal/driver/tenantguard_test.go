package driver

import (
	"errors"
	"testing"

	"riommu/internal/cycles"
	"riommu/internal/pci"
)

// TestTenantGuardTripIsolatesFleet: one shared budget across a tenant's
// devices; tripping quarantines every device at once.
func TestTenantGuardTripIsolatesFleet(t *testing.T) {
	clk := &cycles.Clock{}
	g := NewTenantGuard(clk, 7)
	g.Breaker.TripAfter = 3
	isos := []*fakeIsolator{{}, {}, {}}
	for _, iso := range isos {
		g.AddIsolator(iso)
	}
	for i := 0; i < 2; i++ {
		if ok, _ := g.Allow(clk.Now()); !ok {
			t.Fatalf("failure %d: guard closed early", i)
		}
		if err := g.OnFailure(clk.Now()); err != nil {
			t.Fatal(err)
		}
	}
	if g.Quarantined() {
		t.Fatal("quarantined before the trip threshold")
	}
	if err := g.OnFailure(clk.Now()); err != nil {
		t.Fatal(err)
	}
	if !g.Quarantined() || g.Quarantines != 1 {
		t.Fatalf("third failure did not quarantine (quarantines=%d)", g.Quarantines)
	}
	for i, iso := range isos {
		if !iso.isolated || iso.isolates != 1 {
			t.Fatalf("isolator %d not isolated exactly once: %+v", i, iso)
		}
	}
	if ok, _ := g.Allow(clk.Now()); ok {
		t.Fatal("quarantined guard allowed an operation inside the backoff")
	}
	if clk.Total(cycles.Recovery) == 0 {
		t.Fatal("quarantine transition charged nothing")
	}
}

// TestTenantGuardReadmission: after the backoff, the first Allow re-admits
// every device as the probe; a successful probe closes the breaker.
func TestTenantGuardReadmission(t *testing.T) {
	clk := &cycles.Clock{}
	g := NewTenantGuard(clk, 1)
	g.Breaker.TripAfter = 1
	g.Breaker.BackoffCycles = 1_000
	iso := &fakeIsolator{}
	g.AddIsolator(iso)
	if _, err := g.Allow(clk.Now()); err != nil {
		t.Fatal(err)
	}
	if err := g.OnFailure(clk.Now()); err != nil {
		t.Fatal(err)
	}
	if !iso.isolated {
		t.Fatal("not isolated after trip")
	}
	clk.Charge(cycles.Recovery, 1_000)
	ok, err := g.Allow(clk.Now())
	if err != nil || !ok {
		t.Fatalf("probe refused after backoff: ok=%v err=%v", ok, err)
	}
	if iso.isolated || iso.readmits != 1 || g.Readmissions != 1 {
		t.Fatalf("probe did not re-admit: %+v readmissions=%d", iso, g.Readmissions)
	}
	g.OnSuccess(clk.Now())
	if g.Quarantined() || g.Breaker.State() != BreakerClosed {
		t.Fatal("successful probe did not close the breaker")
	}
}

// TestSupervisorGuardBlastRadius: two supervisors share one guard; failures
// on one device quarantine both, while a supervisor of another tenant —
// same clock, no guard — never notices.
func TestSupervisorGuardBlastRadius(t *testing.T) {
	clk := &cycles.Clock{}
	g := NewTenantGuard(clk, 3)
	g.Breaker.TripAfter = 2
	isoA, isoB := &fakeIsolator{}, &fakeIsolator{}
	g.AddIsolator(isoA)
	g.AddIsolator(isoB)

	mk := func(bdf pci.BDF, guard *TenantGuard) *Supervisor {
		s := NewSupervisor(clk, bdf, nopRecoverable{})
		s.Policy.MaxAttempts = 1
		s.Guard = guard
		return s
	}
	supA := mk(pci.NewBDF(1, 0, 0), g)
	supB := mk(pci.NewBDF(1, 1, 0), g)
	other := mk(pci.NewBDF(2, 0, 0), nil)

	boom := errors.New("boom")
	fail := func() error { return boom }
	okOp := func() error { return nil }

	if err := supA.Do(fail); !errors.Is(err, boom) {
		t.Fatalf("first failure: %v", err)
	}
	if err := supB.Do(fail); !errors.Is(err, boom) {
		t.Fatalf("second failure: %v", err)
	}
	if !g.Quarantined() {
		t.Fatal("cross-device failures did not spend the shared budget")
	}
	if !isoA.isolated || !isoB.isolated {
		t.Fatal("trip did not isolate the whole fleet")
	}
	if err := supA.Do(okOp); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("quarantined supervisor ran: %v", err)
	}
	if supA.Stats.Rejected != 1 {
		t.Fatalf("Rejected = %d", supA.Stats.Rejected)
	}
	if err := other.Do(okOp); err != nil {
		t.Fatalf("unguarded tenant affected: %v", err)
	}
	if slo := other.SLO(); slo.Outages != 0 || slo.DowntimeCycles != 0 {
		t.Fatalf("unguarded tenant's SLO moved: %+v", slo)
	}
}

type nopRecoverable struct{}

func (nopRecoverable) Recover() error   { return nil }
func (nopRecoverable) Progress() uint64 { return 0 }
