package driver

import (
	"bytes"
	"math/rand"
	"testing"

	"riommu/internal/baseline"
	"riommu/internal/core"
	"riommu/internal/cycles"
	"riommu/internal/device"
	"riommu/internal/dma"
	"riommu/internal/iommu"
	"riommu/internal/mem"
	"riommu/internal/pagetable"
)

// storageFixture returns (protection, engine, mm) triples for the three
// interesting protection flavors.
type storageFixture struct {
	name string
	mm   *mem.PhysMem
	prot Protection
	eng  *dma.Engine
}

func storageFixtures(t *testing.T) []storageFixture {
	t.Helper()
	var out []storageFixture

	// none
	{
		mm := mustMem(t, 2048*mem.PageSize)
		out = append(out, storageFixture{"none", mm, NoProtection{}, dma.NewEngine(mm, iommu.Identity{})})
	}
	// rIOMMU
	{
		mm := mustMem(t, 2048*mem.PageSize)
		clk := &cycles.Clock{}
		model := cycles.DefaultModel()
		hw := core.New(clk, &model, mm)
		drv, err := core.NewDriver(clk, &model, mm, hw, bdf, []uint32{8, 256, 256}, true)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, storageFixture{"riommu", mm, drv, dma.NewEngine(mm, hw)})
	}
	// baseline strict
	{
		mm := mustMem(t, 4096*mem.PageSize)
		clk := &cycles.Clock{}
		model := cycles.DefaultModel()
		hier, err := pagetable.NewHierarchy(mm)
		if err != nil {
			t.Fatal(err)
		}
		hw := iommu.New(clk, &model, hier, 0)
		bd, err := baseline.New(baseline.Strict, clk, &model, mm, hw, bdf, false)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, storageFixture{"strict", mm, bd, dma.NewEngine(mm, hw)})
	}
	return out
}

func TestNVMeDriverRoundTrip(t *testing.T) {
	for _, fx := range storageFixtures(t) {
		t.Run(fx.name, func(t *testing.T) {
			d, err := NewNVMeDriver(fx.mm, fx.prot, fx.eng, bdf, 4096, 256, 64)
			if err != nil {
				t.Fatal(err)
			}
			// Write 8 distinct blocks.
			for blk := uint64(0); blk < 8; blk++ {
				if _, err := d.Write(blk, bytes.Repeat([]byte{byte('a' + blk)}, 4096)); err != nil {
					t.Fatalf("write %d: %v", blk, err)
				}
			}
			done, err := d.Poll(16)
			if err != nil {
				t.Fatal(err)
			}
			if len(done) != 8 {
				t.Fatalf("completed %d", len(done))
			}
			for _, c := range done {
				if c.Status != device.NVMeStatusOK {
					t.Fatalf("write status %d", c.Status)
				}
			}
			// Read them back.
			for blk := uint64(0); blk < 8; blk++ {
				if _, err := d.Read(blk, 4096); err != nil {
					t.Fatal(err)
				}
			}
			done, err = d.Poll(16)
			if err != nil {
				t.Fatal(err)
			}
			if len(done) != 8 {
				t.Fatalf("read completions %d", len(done))
			}
			for i, c := range done {
				want := bytes.Repeat([]byte{byte('a' + i)}, 4096)
				if !bytes.Equal(c.Data, want) {
					t.Errorf("block %d corrupted", i)
				}
			}
			if d.Submitted != 16 || d.Completed != 16 {
				t.Errorf("stats %d/%d", d.Submitted, d.Completed)
			}
			if err := d.Teardown(); err != nil {
				t.Fatalf("teardown: %v", err)
			}
		})
	}
}

func TestNVMeDriverValidation(t *testing.T) {
	fx := storageFixtures(t)[0]
	d, err := NewNVMeDriver(fx.mm, fx.prot, fx.eng, bdf, 4096, 16, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Write(0, nil); err == nil {
		t.Error("empty write should fail")
	}
	if _, err := d.Write(0, make([]byte, mem.PageSize+1)); err == nil {
		t.Error("oversized write should fail")
	}
	if _, err := d.Read(0, 0); err == nil {
		t.Error("zero read should fail")
	}
	// Out-of-range block completes with an LBA error status.
	if _, err := d.Read(999, 4096); err != nil {
		t.Fatal(err)
	}
	done, err := d.Poll(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != 1 || done[0].Status != device.NVMeStatusLBA {
		t.Errorf("completions %+v, want one LBA error", done)
	}
	if err := d.Teardown(); err != nil {
		t.Fatal(err)
	}
}

func TestSATADriverOutOfOrder(t *testing.T) {
	for _, fx := range storageFixtures(t) {
		t.Run(fx.name, func(t *testing.T) {
			d := NewSATADriver(fx.mm, fx.prot, fx.eng, bdf, 4096, 1024)
			if fx.name == "riommu" {
				if _, ok := fx.prot.(SlotMapper); !ok {
					t.Fatal("rIOMMU driver should implement SlotMapper")
				}
			}
			for blk := uint64(0); blk < 16; blk++ {
				if _, err := d.SubmitWrite(blk, bytes.Repeat([]byte{byte(blk + 1)}, 4096)); err != nil {
					t.Fatalf("write %d: %v", blk, err)
				}
			}
			rng := rand.New(rand.NewSource(99))
			results, err := d.CompleteAll(rng)
			if err != nil {
				t.Fatalf("out-of-order completion: %v", err)
			}
			if len(results) != 16 {
				t.Fatalf("completed %d", len(results))
			}
			// Read everything back (again out of order) and verify.
			for blk := uint64(0); blk < 16; blk++ {
				if _, err := d.SubmitRead(blk, 4096); err != nil {
					t.Fatal(err)
				}
			}
			results, err = d.CompleteAll(rng)
			if err != nil {
				t.Fatal(err)
			}
			seen := map[int]bool{}
			for _, r := range results {
				seen[r.Slot] = true
				// Slot == block for this submission pattern.
				want := bytes.Repeat([]byte{byte(r.Slot + 1)}, 4096)
				if !bytes.Equal(r.Data, want) {
					t.Errorf("slot %d data corrupted", r.Slot)
				}
			}
			if len(seen) != 16 {
				t.Error("duplicate completions")
			}
			if err := d.Teardown(rng); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestSATADriverSlotExhaustion(t *testing.T) {
	fx := storageFixtures(t)[0]
	d := NewSATADriver(fx.mm, fx.prot, fx.eng, bdf, 4096, 1024)
	for i := 0; i < device.SATASlots; i++ {
		if _, err := d.SubmitRead(0, 512); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if _, err := d.SubmitRead(0, 512); err == nil {
		t.Error("33rd submit should fail")
	}
	if _, err := d.CompleteAll(rand.New(rand.NewSource(1))); err != nil {
		t.Fatal(err)
	}
	if _, err := d.SubmitRead(0, 512); err != nil {
		t.Errorf("submit after drain: %v", err)
	}
}
