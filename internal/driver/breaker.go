package driver

// Circuit breaking for repeatedly-failing devices. PR 1's supervisor handles
// individual faults (retry, reset, degrade); the breaker handles the device
// that keeps failing anyway: after TripAfter consecutive failures or a blown
// error budget it opens, the device is detached from its translation unit
// (Isolator → dma.Router Blackhole route), and every operation fast-fails
// with ErrQuarantined until a virtual-clock backoff expires. The first
// operation after that is a probe: the device is tentatively re-admitted
// (half-open); success closes the breaker, failure re-isolates it with a
// doubled backoff, capped at MaxBackoffCycles. All timing is virtual-clock,
// so campaign quarantine windows are seed-deterministic.

// BreakerState is the classic three-state circuit-breaker machine.
type BreakerState uint8

// The breaker states.
const (
	BreakerClosed   BreakerState = iota // normal operation
	BreakerOpen                         // quarantined: operations fast-fail
	BreakerHalfOpen                     // backoff expired: one probe in flight
)

// String names the state for reports.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "invalid"
	}
}

// Isolator detaches a device from (and re-admits it to) its DMA translation
// path; sim.System.IsolatorFor builds one over dma.Router.
type Isolator interface {
	Isolate() error
	Readmit() error
}

// Breaker is a per-device circuit breaker on virtual time. The zero value is
// unusable; NewBreaker supplies the defaults. A Supervisor with a nil
// Breaker never trips (the PR 1 behavior).
type Breaker struct {
	// TripAfter opens the breaker after this many consecutive failures
	// (0 disables the consecutive trigger).
	TripAfter uint64
	// Budget opens the breaker when more than Budget failures accumulate
	// within a BudgetWindowCycles window (0 disables the budget trigger).
	Budget             uint64
	BudgetWindowCycles uint64

	// BackoffCycles is the first quarantine length; each failed probe
	// doubles it up to MaxBackoffCycles.
	BackoffCycles    uint64
	MaxBackoffCycles uint64
	// RejectCycles is charged per fast-failed operation while open (the cost
	// of bouncing off the quarantine check).
	RejectCycles uint64

	state    BreakerState
	consec   uint64 // consecutive failures while closed
	winStart uint64 // error-budget window start (virtual cycles)
	winFails uint64
	backoff  uint64 // current quarantine length
	reopenAt uint64 // virtual time the quarantine expires

	// Trips counts closed→open transitions, Probes open→half-open,
	// Readmissions half-open→closed.
	Trips, Probes, Readmissions uint64
}

// NewBreaker returns a breaker with campaign-scale defaults: trip on 4
// consecutive failures or >16 failures per 5M-cycle window, quarantine for
// 100k cycles doubling to 1.6M.
func NewBreaker() *Breaker {
	return &Breaker{
		TripAfter:          4,
		Budget:             16,
		BudgetWindowCycles: 5_000_000,
		BackoffCycles:      100_000,
		MaxBackoffCycles:   1_600_000,
		RejectCycles:       100,
	}
}

// State returns the current breaker state.
func (b *Breaker) State() BreakerState { return b.state }

// Quarantined reports whether an operation at virtual time now would be
// rejected (open, backoff not yet expired).
func (b *Breaker) Quarantined(now uint64) bool {
	return b.state == BreakerOpen && now < b.reopenAt
}

// Allow decides whether an operation may proceed at virtual time now. While
// open it transitions to half-open (a probe) once the backoff expires; the
// caller is responsible for re-admitting the device before probing.
func (b *Breaker) Allow(now uint64) bool {
	switch b.state {
	case BreakerOpen:
		if now < b.reopenAt {
			return false
		}
		b.state = BreakerHalfOpen
		b.Probes++
		return true
	default:
		return true
	}
}

// OnSuccess records a successful operation. It reports whether this was a
// successful probe (half-open → closed), i.e. the device earned its way back.
func (b *Breaker) OnSuccess(uint64) bool {
	b.consec = 0
	if b.state == BreakerHalfOpen {
		b.state = BreakerClosed
		b.backoff = b.BackoffCycles
		b.Readmissions++
		return true
	}
	return false
}

// OnFailure records a failed operation at virtual time now. It reports
// whether the caller must (re-)isolate the device: either the breaker just
// tripped (closed → open) or a probe failed and quarantine resumes with a
// doubled backoff (half-open → open).
func (b *Breaker) OnFailure(now uint64) bool {
	if b.BudgetWindowCycles > 0 && now-b.winStart > b.BudgetWindowCycles {
		b.winStart = now
		b.winFails = 0
	}
	b.winFails++
	b.consec++
	switch b.state {
	case BreakerHalfOpen:
		// Failed probe: back to quarantine, longer this time.
		b.backoff *= 2
		if b.MaxBackoffCycles > 0 && b.backoff > b.MaxBackoffCycles {
			b.backoff = b.MaxBackoffCycles
		}
		b.state = BreakerOpen
		b.reopenAt = now + b.backoff
		return true
	case BreakerClosed:
		tripped := (b.TripAfter > 0 && b.consec >= b.TripAfter) ||
			(b.Budget > 0 && b.winFails > b.Budget)
		if tripped {
			if b.backoff == 0 {
				b.backoff = b.BackoffCycles
			}
			b.state = BreakerOpen
			b.reopenAt = now + b.backoff
			b.Trips++
			return true
		}
	}
	return false
}
