package driver

import (
	"fmt"

	"riommu/internal/device"
	"riommu/internal/dma"
	"riommu/internal/mem"
	"riommu/internal/pci"
)

// Multi-queue support (§2.3): NICs "may employ multiple Rx/Tx rings per
// port to promote scalability, as different rings can be handled
// concurrently by different cores". Each queue is an independent NICDriver
// over its own ring pair; under rIOMMU protection each queue's Rx and Tx
// buffers live in their own flat tables, so each queue gets its own rIOTLB
// entries and its own end-of-burst invalidations.

// Ring-ID layout for a multi-queue device: flat table 0 holds the
// persistent ring-page mappings of every queue; queue q's dynamic buffers
// use tables 1+2q (Rx) and 2+2q (Tx).
func queueRingRx(q int) int { return 1 + 2*q }
func queueRingTx(q int) int { return 2 + 2*q }

// RIOMMURingSizesQ returns the flat-table sizes for a NIC with `queues`
// queue pairs of the given profile.
func RIOMMURingSizesQ(p device.NICProfile, queues int) []uint32 {
	sizes := make([]uint32, 1+2*queues)
	sizes[0] = uint32(2 + 2*queues) // static: Rx+Tx ring mapping per queue
	for q := 0; q < queues; q++ {
		sizes[queueRingRx(q)] = 2 * p.RxEntries * uint32(p.BuffersPerPacket)
		sizes[queueRingTx(q)] = 2 * p.TxEntries * uint32(p.BuffersPerPacket)
	}
	return sizes
}

// MQNIC is a multi-queue NIC: one NICDriver (and device-model queue) per
// ring pair, sharing the device identity and protection domain.
type MQNIC struct {
	Queues []*NICDriver
	nics   []*device.NIC
	next   int // round-robin transmit cursor
}

// NewMQNIC builds a NIC with the given number of queue pairs.
func NewMQNIC(mm *mem.PhysMem, prot Protection, eng *dma.Engine, profile device.NICProfile, bdf pci.BDF, queues int) (*MQNIC, error) {
	if queues < 1 {
		return nil, fmt.Errorf("driver: need at least one queue, got %d", queues)
	}
	mq := &MQNIC{}
	for q := 0; q < queues; q++ {
		drv, nic, err := newNICDriverQueue(mm, prot, eng, profile, bdf, q)
		if err != nil {
			return nil, fmt.Errorf("driver: queue %d: %w", q, err)
		}
		mq.Queues = append(mq.Queues, drv)
		mq.nics = append(mq.nics, nic)
	}
	return mq, nil
}

// NIC returns the device model of queue q.
func (m *MQNIC) NIC(q int) *device.NIC { return m.nics[q] }

// Send transmits on the next queue round-robin (a simple RSS stand-in).
func (m *MQNIC) Send(payload []byte) error {
	q := m.next
	m.next = (m.next + 1) % len(m.Queues)
	return m.Queues[q].Send(payload)
}

// PumpAndReapAll drains every queue's transmit path, returning total packets.
func (m *MQNIC) PumpAndReapAll() (int, error) {
	total := 0
	for _, drv := range m.Queues {
		if _, err := drv.PumpTx(int(drv.TxRing().Pending())); err != nil {
			return total, err
		}
		n, err := drv.ReapTx()
		if err != nil {
			return total, err
		}
		total += n
	}
	return total, nil
}

// Deliver places a frame on queue q's receive path.
func (m *MQNIC) Deliver(q int, frame []byte) error { return m.Queues[q].Deliver(frame) }

// ReapRxAll runs every queue's Rx interrupt handler.
func (m *MQNIC) ReapRxAll() ([][]byte, error) {
	var frames [][]byte
	for _, drv := range m.Queues {
		fs, err := drv.ReapRx()
		if err != nil {
			return frames, err
		}
		frames = append(frames, fs...)
	}
	return frames, nil
}

// Recover reinitializes every queue pair in order — the OS response to a
// device-level fault on a multi-queue NIC resets the whole port, not a
// single channel. The first queue that fails to recover aborts (the device
// is left for the supervisor's next escalation step). Implements
// driver.Recoverable, so an MQNIC can run under a Supervisor like the
// single-queue drivers.
func (m *MQNIC) Recover() error {
	for q, drv := range m.Queues {
		if err := drv.Recover(); err != nil {
			return fmt.Errorf("driver: queue %d recover: %w", q, err)
		}
	}
	return nil
}

// Progress sums forward progress across all queues (Recoverable's hang
// signal: the watchdog sees the port wedged only if every queue is stuck).
func (m *MQNIC) Progress() uint64 {
	var total uint64
	for _, drv := range m.Queues {
		total += drv.Progress()
	}
	return total
}

// Teardown releases every queue.
func (m *MQNIC) Teardown() error {
	var lastErr error
	for _, drv := range m.Queues {
		if err := drv.Teardown(); err != nil {
			lastErr = err
		}
	}
	return lastErr
}
