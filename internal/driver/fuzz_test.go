package driver

import (
	"testing"

	"riommu/internal/core"
	"riommu/internal/cycles"
	"riommu/internal/device"
	"riommu/internal/dma"
	"riommu/internal/mem"
)

// isPow2 reports whether v is a power of two.
func isPow2(v uint32) bool { return v != 0 && v&(v-1) == 0 }

// FuzzMQNICRingLayout fuzzes the multi-queue flat-table layout against its
// invariants: queue q's Rx/Tx ring IDs never collide (with each other, with
// another queue's, or with the static table 0), every dynamic table size is
// the power-of-two 2*entries*buffersPerPacket the rIOTLB-friendly layout
// requires, and the whole geometry round-trips through real driver setup —
// a core.Driver over the generated sizes plus an MQNIC that tears down
// cleanly.
func FuzzMQNICRingLayout(f *testing.F) {
	f.Add(uint8(1), uint8(0), uint8(0), false)
	f.Add(uint8(4), uint8(1), uint8(2), true)
	f.Add(uint8(8), uint8(2), uint8(0), true)
	f.Add(uint8(16), uint8(2), uint8(2), false)
	f.Fuzz(func(t *testing.T, queuesRaw, rxExp, txExp uint8, mlx bool) {
		queues := 1 + int(queuesRaw)%8
		profile := device.ProfileBRCM
		if mlx {
			profile = device.ProfileMLX
		}
		profile.RxEntries = 64 << (rxExp % 3) // 64, 128, 256
		profile.TxEntries = 64 << (txExp % 3)

		sizes := RIOMMURingSizesQ(profile, queues)
		if len(sizes) != 1+2*queues {
			t.Fatalf("len(sizes) = %d, want %d", len(sizes), 1+2*queues)
		}
		if sizes[0] != uint32(2+2*queues) {
			t.Fatalf("static table size = %d, want %d", sizes[0], 2+2*queues)
		}
		seen := map[int]bool{0: true}
		for q := 0; q < queues; q++ {
			rx, tx := queueRingRx(q), queueRingTx(q)
			for _, id := range []int{rx, tx} {
				if id <= 0 || id >= len(sizes) {
					t.Fatalf("queue %d ring id %d outside table range [1,%d)", q, id, len(sizes))
				}
				if seen[id] {
					t.Fatalf("queue %d ring id %d collides with an earlier table", q, id)
				}
				seen[id] = true
			}
			wantRx := 2 * profile.RxEntries * uint32(profile.BuffersPerPacket)
			wantTx := 2 * profile.TxEntries * uint32(profile.BuffersPerPacket)
			if sizes[rx] != wantRx || sizes[tx] != wantTx {
				t.Fatalf("queue %d sizes = (%d, %d), want (%d, %d)", q, sizes[rx], sizes[tx], wantRx, wantTx)
			}
			if !isPow2(sizes[rx]) || !isPow2(sizes[tx]) {
				t.Fatalf("queue %d table sizes (%d, %d) not powers of two", q, sizes[rx], sizes[tx])
			}
		}

		// Round-trip: the generated layout must build a working rIOMMU
		// driver and a full multi-queue NIC (rings allocated, Rx filled),
		// then tear down without leaking a mapping.
		mm, err := mem.New(1 << 14 * mem.PageSize)
		if err != nil {
			t.Fatal(err)
		}
		defer mm.Release()
		clk := &cycles.Clock{}
		model := cycles.DefaultModel()
		hw := core.New(clk, &model, mm)
		drv, err := core.NewDriver(clk, &model, mm, hw, bdf, sizes, true)
		if err != nil {
			t.Fatalf("core.NewDriver(%v): %v", sizes, err)
		}
		mq, err := NewMQNIC(mm, drv, dma.NewEngine(mm, hw), profile, bdf, queues)
		if err != nil {
			t.Fatalf("NewMQNIC(queues=%d): %v", queues, err)
		}
		if err := mq.Teardown(); err != nil {
			t.Fatalf("teardown: %v", err)
		}
	})
}
