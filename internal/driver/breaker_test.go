package driver

import (
	"errors"
	"fmt"
	"testing"

	"riommu/internal/cycles"
)

// fakeIsolator records quarantine transitions.
type fakeIsolator struct {
	isolated               bool
	isolates, readmits     int
	isolateErr, readmitErr error
}

func (f *fakeIsolator) Isolate() error {
	f.isolates++
	if f.isolateErr != nil {
		return f.isolateErr
	}
	f.isolated = true
	return nil
}

func (f *fakeIsolator) Readmit() error {
	f.readmits++
	if f.readmitErr != nil {
		return f.readmitErr
	}
	f.isolated = false
	return nil
}

func newBreakerSup(fd *fakeDriver) (*Supervisor, *fakeIsolator, *cycles.Clock) {
	clk := &cycles.Clock{}
	s := NewSupervisor(clk, supBDF, fd)
	s.Breaker = NewBreaker()
	iso := &fakeIsolator{}
	s.Isolator = iso
	return s, iso, clk
}

func failOp() error { return fmt.Errorf("device fault") }

// TestSentinelErrors: every recovery outcome is distinguishable with
// errors.Is — the point of the exported sentinels.
func TestSentinelErrors(t *testing.T) {
	clk := &cycles.Clock{}
	fd := &fakeDriver{}
	s := NewSupervisor(clk, supBDF, fd)

	err := s.Do(failOp)
	if !errors.Is(err, ErrRetriesExhausted) {
		t.Errorf("exhausted retries not wrapped in ErrRetriesExhausted: %v", err)
	}

	// Watchdog hang whose recovery fails.
	fd.recoverErr = fmt.Errorf("reset register stuck")
	s.Watch() // prime
	if _, werr := s.Watch(); !errors.Is(werr, ErrWatchdogHang) {
		t.Errorf("failed hang recovery not wrapped in ErrWatchdogHang: %v", werr)
	}
	fd.recoverErr = nil

	// Degradation failure.
	s2 := NewSupervisor(clk, supBDF, fd)
	s2.DegradeAfter = 1
	s2.DegradeFn = func() error { return fmt.Errorf("no fallback unit") }
	fails := 1
	err = s2.Do(func() error {
		if fails > 0 {
			fails--
			return fmt.Errorf("once")
		}
		return nil
	})
	if !errors.Is(err, ErrDegraded) {
		t.Errorf("degradation failure not wrapped in ErrDegraded: %v", err)
	}
}

// TestRetryBackoffCeilingSaturates: with many attempts the doubling backoff
// must clamp at MaxBackoffCycles instead of growing geometrically.
func TestRetryBackoffCeilingSaturates(t *testing.T) {
	clk := &cycles.Clock{}
	fd := &fakeDriver{}
	s := NewSupervisor(clk, supBDF, fd)
	s.Policy = RetryPolicy{MaxAttempts: 6, BackoffCycles: 1_000, MaxBackoffCycles: 2_000}
	err := s.Do(failOp)
	if !errors.Is(err, ErrRetriesExhausted) {
		t.Fatalf("want exhaustion, got %v", err)
	}
	// Backoffs charged: 1000, 2000, then clamped at 2000 for the rest.
	wantBackoff := uint64(1_000 + 2_000 + 2_000 + 2_000 + 2_000)
	got := clk.Total(cycles.Recovery) - 5*s.ResetCycles // 5 reinits between 6 attempts
	if got != wantBackoff {
		t.Errorf("backoff cycles = %d, want %d (ceiling not applied)", got, wantBackoff)
	}

	// Unbounded policy (ceiling 0) keeps doubling.
	clk2 := &cycles.Clock{}
	s2 := NewSupervisor(clk2, supBDF, &fakeDriver{})
	s2.Policy = RetryPolicy{MaxAttempts: 4, BackoffCycles: 1_000}
	_ = s2.Do(failOp)
	want2 := uint64(1_000+2_000+4_000) + 3*s2.ResetCycles
	if got2 := clk2.Total(cycles.Recovery); got2 != want2 {
		t.Errorf("unbounded backoff cycles = %d, want %d", got2, want2)
	}
}

// TestWatchdogReprimesAfterReset: a supervisor-level regression check on top
// of the unit test — after a handled hang the next Watch must prime, not
// fire, even when the recovered driver's progress counter moved backwards.
func TestWatchdogReprimesAfterReset(t *testing.T) {
	clk := &cycles.Clock{}
	fd := &fakeDriver{progress: 100}
	s := NewSupervisor(clk, supBDF, fd)
	s.Watch() // prime at 100
	if fired, err := s.Watch(); !fired || err != nil {
		t.Fatalf("hang not handled: fired=%v err=%v", fired, err)
	}
	// Recover reset the device: progress restarts from zero and then stalls
	// there for one check — the re-primed watchdog must treat the first
	// post-reset check as priming, not as "no progress since 100".
	fd.progress = 0
	if fired, _ := s.Watch(); fired {
		t.Error("watch fired on the priming check after reset")
	}
	if fired, _ := s.Watch(); !fired {
		t.Error("genuine post-reset stall not detected")
	}
}

// TestOpsWhileDegraded: after degradation the supervisor keeps operating,
// never re-degrades, and failures keep being retried normally.
func TestOpsWhileDegraded(t *testing.T) {
	clk := &cycles.Clock{}
	fd := &fakeDriver{}
	s := NewSupervisor(clk, supBDF, fd)
	s.DegradeAfter = 1
	degrades := 0
	s.DegradeFn = func() error { degrades++; return nil }

	for round := 0; round < 5; round++ {
		fails := 1
		if err := s.Do(func() error {
			if fails > 0 {
				fails--
				return fmt.Errorf("round %d", round)
			}
			return nil
		}); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	if degrades != 1 || s.Stats.Degradations != 1 {
		t.Errorf("degraded %d times (stats %d), want exactly 1", degrades, s.Stats.Degradations)
	}
	if !s.Degraded() {
		t.Error("Degraded() false after degradation")
	}
	if s.Stats.Recoveries != 5 {
		t.Errorf("Recoveries = %d, want 5 (ops after degradation still recover)", s.Stats.Recoveries)
	}
}

// TestBreakerTripsAndQuarantines: repeated failures trip the breaker, the
// device is isolated, and subsequent ops fast-fail with ErrQuarantined
// without invoking the operation at all — never looping over reinit.
func TestBreakerTripsAndQuarantines(t *testing.T) {
	fd := &fakeDriver{}
	s, iso, _ := newBreakerSup(fd)

	for i := uint64(0); i < s.Breaker.TripAfter; i++ {
		if err := s.Do(failOp); errors.Is(err, ErrQuarantined) {
			t.Fatalf("quarantined after only %d failures", i)
		}
	}
	if s.Breaker.State() != BreakerOpen || s.Breaker.Trips != 1 {
		t.Fatalf("breaker state %s trips %d, want open/1", s.Breaker.State(), s.Breaker.Trips)
	}
	if !iso.isolated || iso.isolates != 1 {
		t.Fatalf("device not isolated exactly once: %+v", iso)
	}

	ran := false
	err := s.Do(func() error { ran = true; return nil })
	if !errors.Is(err, ErrQuarantined) {
		t.Fatalf("op while quarantined: %v", err)
	}
	if ran {
		t.Error("quarantined op still executed")
	}
	if s.Stats.Rejected == 0 {
		t.Error("rejected op not counted")
	}
}

// TestBreakerProbeReadmission: once the virtual-clock backoff expires the
// next op re-admits the device and probes it; success closes the breaker.
func TestBreakerProbeReadmission(t *testing.T) {
	fd := &fakeDriver{}
	s, iso, clk := newBreakerSup(fd)
	for i := uint64(0); i < s.Breaker.TripAfter; i++ {
		_ = s.Do(failOp)
	}
	if s.Breaker.State() != BreakerOpen {
		t.Fatal("breaker did not open")
	}
	// Let the quarantine expire on the virtual clock.
	clk.Charge(cycles.Recovery, s.Breaker.BackoffCycles)
	if err := s.Do(func() error { return nil }); err != nil {
		t.Fatalf("probe failed: %v", err)
	}
	if s.Breaker.State() != BreakerClosed || s.Breaker.Readmissions != 1 || s.Breaker.Probes != 1 {
		t.Errorf("state %s readmissions %d probes %d, want closed/1/1",
			s.Breaker.State(), s.Breaker.Readmissions, s.Breaker.Probes)
	}
	if iso.isolated || iso.readmits != 1 {
		t.Errorf("device not re-admitted exactly once: %+v", iso)
	}
}

// TestBreakerFailedProbeDoublesBackoff: a failing probe re-isolates the
// device and the quarantine doubles, saturating at MaxBackoffCycles.
func TestBreakerFailedProbeDoublesBackoff(t *testing.T) {
	fd := &fakeDriver{}
	s, iso, clk := newBreakerSup(fd)
	s.Breaker.MaxBackoffCycles = 4 * s.Breaker.BackoffCycles
	for i := uint64(0); i < s.Breaker.TripAfter; i++ {
		_ = s.Do(failOp)
	}
	base := s.Breaker.BackoffCycles
	wantBackoffs := []uint64{2 * base, 4 * base, 4 * base} // doubling then clamped
	for i, want := range wantBackoffs {
		clk.Charge(cycles.Recovery, s.Breaker.MaxBackoffCycles) // expire any backoff
		if err := s.Do(failOp); errors.Is(err, ErrQuarantined) {
			t.Fatalf("probe %d rejected instead of attempted", i)
		}
		if s.Breaker.State() != BreakerOpen {
			t.Fatalf("probe %d: state %s, want open", i, s.Breaker.State())
		}
		if got := s.Breaker.backoff; got != want {
			t.Errorf("probe %d: backoff %d, want %d", i, got, want)
		}
	}
	if iso.isolates != 4 { // initial trip + three failed probes
		t.Errorf("isolates = %d, want 4", iso.isolates)
	}
}

// TestReinitFailingRepeatedlyTripsBreaker: the ISSUE's edge case — a device
// whose Recover always fails must end up quarantined (fast-fail), not stuck
// in an unbounded retry/reinit loop.
func TestReinitFailingRepeatedlyTripsBreaker(t *testing.T) {
	fd := &fakeDriver{recoverErr: fmt.Errorf("device gone")}
	s, iso, _ := newBreakerSup(fd)
	for i := 0; i < 20; i++ {
		err := s.Do(failOp)
		if err == nil {
			t.Fatalf("round %d: Do succeeded with a dead device", i)
		}
		if errors.Is(err, ErrQuarantined) {
			if i < int(s.Breaker.TripAfter) {
				t.Fatalf("quarantined too early (round %d)", i)
			}
			if !iso.isolated {
				t.Fatal("quarantined but not isolated")
			}
			// Reinit attempts must have stopped growing: quarantined ops
			// never reach the retry loop.
			before := fd.recovers
			_ = s.Do(failOp)
			if fd.recovers != before {
				t.Error("quarantined op still reinitialized the device")
			}
			return
		}
	}
	t.Fatal("20 rounds of failing reinit never tripped the breaker")
}

// TestSupervisorSLOAccounting: outage bookkeeping is exact on the virtual
// clock — one outage from first failure to next success.
func TestSupervisorSLOAccounting(t *testing.T) {
	clk := &cycles.Clock{}
	fd := &fakeDriver{}
	s := NewSupervisor(clk, supBDF, fd)
	s.Policy = RetryPolicy{MaxAttempts: 1} // no retries: failures surface directly

	if err := s.Do(func() error { return nil }); err != nil {
		t.Fatal(err)
	}
	if slo := s.SLO(); slo.Outages != 0 || slo.DowntimeCycles != 0 {
		t.Fatalf("clean op opened an outage: %+v", slo)
	}

	_ = s.Do(failOp) // outage opens at current clk
	clk.Charge(cycles.Recovery, 1_000)
	_ = s.Do(failOp) // still down: same outage
	clk.Charge(cycles.Recovery, 2_000)
	if err := s.Do(func() error { return nil }); err != nil {
		t.Fatal(err)
	}
	slo := s.SLO()
	if slo.Outages != 1 {
		t.Errorf("Outages = %d, want 1", slo.Outages)
	}
	if slo.DowntimeCycles != 3_000 {
		t.Errorf("DowntimeCycles = %d, want 3000", slo.DowntimeCycles)
	}
	if slo.MTTRCycles() != 3_000 {
		t.Errorf("MTTR = %v, want 3000", slo.MTTRCycles())
	}
	if av := slo.Availability(30_000); av != 0.9 {
		t.Errorf("Availability = %v, want 0.9", av)
	}

	// An open outage is counted up to "now" without mutating the ledger.
	_ = s.Do(failOp)
	clk.Charge(cycles.Recovery, 500)
	if slo := s.SLO(); slo.Outages != 2 || slo.DowntimeCycles != 3_500 {
		t.Errorf("open outage not counted: %+v", slo)
	}
	if s.slo.Outages != 1 {
		t.Error("SLO() mutated the underlying ledger")
	}
}
