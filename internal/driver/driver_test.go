package driver

import (
	"bytes"
	"testing"

	"riommu/internal/device"
	"riommu/internal/dma"
	"riommu/internal/iommu"
	"riommu/internal/mem"
	"riommu/internal/pci"
	"riommu/internal/ring"
)

var bdf = pci.NewBDF(0, 3, 0)

func TestBufferPoolCarving(t *testing.T) {
	mm := mustMem(t, 16*mem.PageSize)
	p := NewBufferPool(mm, 2048)
	if p.BufSize() != 2048 {
		t.Fatalf("BufSize = %d", p.BufSize())
	}
	a, err := p.Get()
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Get()
	if err != nil {
		t.Fatal(err)
	}
	// Two 2 KiB buffers share the first frame.
	if mem.PFNOf(a) != mem.PFNOf(b) {
		t.Errorf("first two buffers on different frames: %#x %#x", a, b)
	}
	if a == b {
		t.Error("duplicate buffer")
	}
	if p.Outstanding() != 2 {
		t.Errorf("Outstanding = %d", p.Outstanding())
	}
	p.Put(a)
	p.Put(b)
	if err := p.Destroy(); err != nil {
		t.Fatal(err)
	}
}

func TestBufferPoolDefaults(t *testing.T) {
	mm := mustMem(t, 16*mem.PageSize)
	if NewBufferPool(mm, 0).BufSize() != DefaultBufferSize {
		t.Error("default buffer size not applied")
	}
	if NewBufferPool(mm, 3*mem.PageSize).BufSize() != mem.PageSize {
		t.Error("oversized buffers should clamp to a page")
	}
}

func TestBufferPoolDestroyGuards(t *testing.T) {
	mm := mustMem(t, 16*mem.PageSize)
	p := NewBufferPool(mm, 2048)
	pa, _ := p.Get()
	if err := p.Destroy(); err == nil {
		t.Error("Destroy with outstanding buffers should fail")
	}
	p.Put(pa)
	if err := p.Destroy(); err != nil {
		t.Fatal(err)
	}
}

func TestBufferPoolGrows(t *testing.T) {
	mm := mustMem(t, 64*mem.PageSize)
	p := NewBufferPool(mm, mem.PageSize)
	seen := map[mem.PA]bool{}
	for i := 0; i < 20; i++ {
		pa, err := p.Get()
		if err != nil {
			t.Fatal(err)
		}
		if seen[pa] {
			t.Fatal("duplicate buffer while growing")
		}
		seen[pa] = true
	}
}

func TestNoProtection(t *testing.T) {
	var p NoProtection
	iova, err := p.Map(0, mem.PA(0x1234), 64, pci.DirBidi)
	if err != nil || iova != 0x1234 {
		t.Errorf("Map = %#x, %v", iova, err)
	}
	if err := p.Unmap(0, 0x1234, 64, true); err != nil {
		t.Errorf("Unmap: %v", err)
	}
}

// identityNIC builds a NICDriver over NoProtection/Identity for direct
// driver-level tests.
func identityNIC(t *testing.T, profile device.NICProfile) (*NICDriver, *device.NIC, *mem.PhysMem) {
	t.Helper()
	mm := mustMem(t, 1<<14*mem.PageSize)
	eng := dma.NewEngine(mm, iommu.Identity{})
	drv, nic, err := NewNICDriver(mm, NoProtection{}, eng, profile, bdf)
	if err != nil {
		t.Fatal(err)
	}
	return drv, nic, mm
}

func TestRIOMMURingSizes(t *testing.T) {
	sizes := RIOMMURingSizes(device.ProfileMLX)
	if len(sizes) != 3 {
		t.Fatalf("sizes = %v", sizes)
	}
	if sizes[RingStatic] < 2 {
		t.Error("static ring too small")
	}
	wantRx := 2 * device.ProfileMLX.RxEntries * uint32(device.ProfileMLX.BuffersPerPacket)
	if sizes[RingRx] != wantRx {
		t.Errorf("RingRx size = %d, want %d", sizes[RingRx], wantRx)
	}
}

func TestRxRingStartsFull(t *testing.T) {
	drv, _, _ := identityNIC(t, device.ProfileBRCM)
	if !drv.RxRing().Full() {
		t.Error("Rx ring should start full of posted buffers")
	}
	if err := drv.Teardown(); err != nil {
		t.Fatal(err)
	}
}

func TestSendEmptyPayload(t *testing.T) {
	drv, _, _ := identityNIC(t, device.ProfileBRCM)
	if err := drv.Send(nil); err == nil {
		t.Error("empty payload should fail")
	}
}

func TestSendInlineValidation(t *testing.T) {
	drv, nic, _ := identityNIC(t, device.ProfileBRCM)
	nic.CaptureTx = true
	if err := drv.SendInline(nil); err == nil {
		t.Error("empty inline payload should fail")
	}
	if err := drv.SendInline(bytes.Repeat([]byte{1}, 9)); err == nil {
		t.Error("9-byte inline payload should fail")
	}
	if err := drv.SendInline([]byte{0xaa, 0xbb}); err != nil {
		t.Fatal(err)
	}
	if n, err := drv.PumpTx(1); err != nil || n != 1 {
		t.Fatalf("PumpTx = %d, %v", n, err)
	}
	if !bytes.Equal(nic.LastTx, []byte{0xaa, 0xbb}) {
		t.Errorf("inline wire payload = %v", nic.LastTx)
	}
	if n, err := drv.ReapTx(); err != nil || n != 1 {
		t.Fatalf("ReapTx = %d, %v", n, err)
	}
}

func TestMixedInlineAndBufferedReap(t *testing.T) {
	drv, _, _ := identityNIC(t, device.ProfileMLX) // 2 buffers/packet
	if err := drv.Send(bytes.Repeat([]byte{1}, 500)); err != nil {
		t.Fatal(err)
	}
	if err := drv.SendInline([]byte{2}); err != nil {
		t.Fatal(err)
	}
	if err := drv.Send(bytes.Repeat([]byte{3}, 500)); err != nil {
		t.Fatal(err)
	}
	if n, err := drv.PumpTx(10); err != nil || n != 3 {
		t.Fatalf("PumpTx = %d, %v", n, err)
	}
	n, err := drv.ReapTx()
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("reaped %d packets, want 3 (2 buffered + 1 inline)", n)
	}
	if err := drv.Teardown(); err != nil {
		t.Fatal(err)
	}
}

func TestTxRingBackpressure(t *testing.T) {
	profile := device.ProfileBRCM
	profile.TxEntries = 8
	drv, _, _ := identityNIC(t, profile)
	sent := 0
	for {
		if err := drv.Send([]byte{1}); err != nil {
			break
		}
		sent++
		if sent > 16 {
			t.Fatal("no backpressure")
		}
	}
	if sent != 7 { // size-1 capacity
		t.Errorf("accepted %d sends before full, want 7", sent)
	}
	// Drain and send again.
	if _, err := drv.PumpTx(sent); err != nil {
		t.Fatal(err)
	}
	if _, err := drv.ReapTx(); err != nil {
		t.Fatal(err)
	}
	if err := drv.Send([]byte{1}); err != nil {
		t.Errorf("send after drain: %v", err)
	}
}

func TestRxDeliverReapRoundTrip(t *testing.T) {
	drv, _, _ := identityNIC(t, device.ProfileMLX)
	frame := bytes.Repeat([]byte{0x42}, 700)
	for i := 0; i < 4; i++ {
		if err := drv.Deliver(frame); err != nil {
			t.Fatal(err)
		}
	}
	frames, err := drv.ReapRx()
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 4 {
		t.Fatalf("got %d frames", len(frames))
	}
	for _, f := range frames {
		if !bytes.Equal(f, frame) {
			t.Error("frame corrupted")
		}
	}
	// Ring was refilled.
	if !drv.RxRing().Full() {
		t.Error("Rx ring not refilled after reap")
	}
	// An empty reap is a no-op.
	frames, err = drv.ReapRx()
	if err != nil || frames != nil {
		t.Errorf("empty reap = %v, %v", frames, err)
	}
}

func TestDriverStats(t *testing.T) {
	drv, _, _ := identityNIC(t, device.ProfileBRCM)
	for i := 0; i < 5; i++ {
		if err := drv.Send([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := drv.PumpTx(5); err != nil {
		t.Fatal(err)
	}
	if _, err := drv.ReapTx(); err != nil {
		t.Fatal(err)
	}
	if err := drv.Deliver([]byte{9}); err != nil {
		t.Fatal(err)
	}
	if _, err := drv.ReapRx(); err != nil {
		t.Fatal(err)
	}
	if drv.TxQueued != 5 || drv.TxReaped != 5 || drv.RxReceived != 1 {
		t.Errorf("stats: queued=%d reaped=%d rx=%d", drv.TxQueued, drv.TxReaped, drv.RxReceived)
	}
	if drv.Profile().Name != "brcm" {
		t.Error("Profile accessor")
	}
	if drv.NIC() == nil || drv.TxRing() == nil {
		t.Error("accessors")
	}
}

// descriptorsCarryIOVAs: with a ring.Ring inspection, posted Rx descriptors
// must carry the addresses Map returned (here identity, so PAs).
func TestDescriptorsCarryMappedAddresses(t *testing.T) {
	drv, _, mm := identityNIC(t, device.ProfileBRCM)
	d, err := drv.RxRing().ReadSlot(0)
	if err != nil {
		t.Fatal(err)
	}
	if d.Addr == 0 || d.Addr >= mm.Size() {
		t.Errorf("descriptor address %#x not a valid identity-mapped PA", d.Addr)
	}
	if d.Flags&ring.FlagReady == 0 {
		t.Error("posted descriptor not ready")
	}
}
