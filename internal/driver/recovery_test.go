package driver

import (
	"fmt"
	"testing"

	"riommu/internal/cycles"
	"riommu/internal/pci"
)

// fakeDriver is a scriptable Recoverable for unit-testing the supervisor.
type fakeDriver struct {
	progress   uint64
	recovers   int
	recoverErr error
}

func (f *fakeDriver) Recover() error {
	f.recovers++
	return f.recoverErr
}

func (f *fakeDriver) Progress() uint64 { return f.progress }

var supBDF = pci.NewBDF(0, 7, 0)

func TestWatchdogDetectsStall(t *testing.T) {
	clk := &cycles.Clock{}
	w := NewWatchdog(clk)
	if w.Check(0) {
		t.Error("first check must only prime")
	}
	if !w.Check(0) {
		t.Error("no progress not detected")
	}
	if w.Check(1) {
		t.Error("progress misreported as a hang")
	}
	if w.Fires != 1 || w.Checks != 3 {
		t.Errorf("Fires=%d Checks=%d", w.Fires, w.Checks)
	}
	if clk.Total(cycles.Recovery) != 3*w.CheckCycles {
		t.Errorf("recovery cycles %d, want %d", clk.Total(cycles.Recovery), 3*w.CheckCycles)
	}
	w.Reset()
	if w.Check(1) {
		t.Error("check after Reset must only prime")
	}
}

func TestSupervisorRetrySucceeds(t *testing.T) {
	clk := &cycles.Clock{}
	fd := &fakeDriver{}
	s := NewSupervisor(clk, supBDF, fd)
	fails := 2
	err := s.Do(func() error {
		if fails > 0 {
			fails--
			return fmt.Errorf("transient fault")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if s.Stats.Retries != 2 || s.Stats.Recoveries != 2 || s.Stats.Unrecovered != 0 {
		t.Errorf("stats %+v", s.Stats)
	}
	if fd.recovers != 2 {
		t.Errorf("driver recovered %d times, want 2", fd.recovers)
	}
	// Backoff doubles: 1000 + 2000, plus two resets.
	want := s.Policy.BackoffCycles + 2*s.Policy.BackoffCycles + 2*s.ResetCycles
	if got := clk.Total(cycles.Recovery); got != want {
		t.Errorf("recovery cycles %d, want %d", got, want)
	}
}

func TestSupervisorExhaustsRetries(t *testing.T) {
	clk := &cycles.Clock{}
	fd := &fakeDriver{}
	s := NewSupervisor(clk, supBDF, fd)
	err := s.Do(func() error { return fmt.Errorf("permanent fault") })
	if err == nil {
		t.Fatal("Do succeeded on a permanent fault")
	}
	if s.Stats.Unrecovered != 1 {
		t.Errorf("Unrecovered = %d, want 1", s.Stats.Unrecovered)
	}
	if s.Stats.Retries != uint64(s.Policy.MaxAttempts-1) {
		t.Errorf("Retries = %d, want %d", s.Stats.Retries, s.Policy.MaxAttempts-1)
	}
}

func TestSupervisorWatchRecoversHang(t *testing.T) {
	clk := &cycles.Clock{}
	fd := &fakeDriver{progress: 5}
	s := NewSupervisor(clk, supBDF, fd)
	if fired, err := s.Watch(); fired || err != nil {
		t.Fatalf("priming watch fired: %v %v", fired, err)
	}
	fired, err := s.Watch() // progress still 5: hang
	if err != nil || !fired {
		t.Fatalf("stalled watch: fired=%v err=%v", fired, err)
	}
	if s.Stats.WatchdogFires != 1 || s.Stats.Recoveries != 1 || fd.recovers != 1 {
		t.Errorf("stats %+v, recovers %d", s.Stats, fd.recovers)
	}
	fd.progress = 6
	if fired, _ := s.Watch(); fired {
		t.Error("watch fired right after recovery (watchdog not re-primed)")
	}
}

func TestSupervisorDegradesAfterThreshold(t *testing.T) {
	clk := &cycles.Clock{}
	fd := &fakeDriver{}
	s := NewSupervisor(clk, supBDF, fd)
	s.DegradeAfter = 2
	degraded := 0
	s.DegradeFn = func() error { degraded++; return nil }
	for i := 0; i < 4; i++ {
		calls := 0
		err := s.Do(func() error {
			calls++
			if calls == 1 {
				return fmt.Errorf("fault %d", i)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
	}
	if degraded != 1 {
		t.Errorf("DegradeFn ran %d times, want exactly 1", degraded)
	}
	if !s.Degraded() || s.Stats.Degradations != 1 {
		t.Errorf("Degraded=%v stats %+v", s.Degraded(), s.Stats)
	}
}

type recSink struct{ actions []uint8 }

func (r *recSink) RecordRecovery(a uint8, _ pci.BDF) { r.actions = append(r.actions, a) }

func TestSupervisorRecordsActions(t *testing.T) {
	clk := &cycles.Clock{}
	fd := &fakeDriver{}
	s := NewSupervisor(clk, supBDF, fd)
	sink := &recSink{}
	s.Sink = sink
	fails := 1
	if err := s.Do(func() error {
		if fails > 0 {
			fails--
			return fmt.Errorf("once")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(sink.actions) != 2 || sink.actions[0] != ActRetry || sink.actions[1] != ActReset {
		t.Errorf("recorded actions %v, want [retry reset]", sink.actions)
	}
}
