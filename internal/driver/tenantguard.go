package driver

import (
	"fmt"

	"riommu/internal/cycles"
)

// TenantGuard is the tenant-scoped circuit breaker: one Breaker shared by
// every Supervisor of one tenant's devices, with an isolator per device.
// Failures from any of the tenant's devices spend the same error budget;
// when it trips, every device of the tenant is quarantined at once —
// blast-radius control at the tenant boundary, not the device boundary.
// Supervisors of other tenants never touch this guard, so quarantining
// tenant A cannot move tenant B's ledgers by even a cycle.
type TenantGuard struct {
	// Tenant is the guarded tenant's domain ID (diagnostics only).
	Tenant int
	// Breaker holds the trip/backoff policy; replace or tune before use.
	Breaker *Breaker

	clk       *cycles.Clock
	isolators []Isolator

	// IsolateCycles/ReadmitCycles are charged (to the guarded tenant's own
	// clock) per tenant-wide quarantine transition.
	IsolateCycles, ReadmitCycles uint64

	quarantined bool
	// Quarantines counts tenant-wide trips; Readmissions successful
	// probe-driven re-admissions.
	Quarantines, Readmissions uint64
}

// NewTenantGuard builds a guard charging the tenant's clock.
func NewTenantGuard(clk *cycles.Clock, tenant int) *TenantGuard {
	return &TenantGuard{
		Tenant:        tenant,
		Breaker:       NewBreaker(),
		clk:           clk,
		IsolateCycles: 20_000,
		ReadmitCycles: 20_000,
	}
}

// AddIsolator registers one device's isolator under the tenant's umbrella.
func (g *TenantGuard) AddIsolator(iso Isolator) {
	if iso != nil {
		g.isolators = append(g.isolators, iso)
	}
}

// Quarantined reports whether the tenant is currently isolated.
func (g *TenantGuard) Quarantined() bool { return g.quarantined }

// Allow gates one operation of any of the tenant's supervisors. A false
// return means the tenant is quarantined and the operation must fast-fail.
// When the quarantine backoff has expired, the first Allow re-admits every
// device (half-open probe); the probing operation's outcome then decides
// via OnSuccess/OnFailure.
func (g *TenantGuard) Allow(now uint64) (bool, error) {
	wasOpen := g.Breaker.State() == BreakerOpen
	if !g.Breaker.Allow(now) {
		return false, nil
	}
	if wasOpen {
		g.clk.Charge(cycles.Recovery, g.ReadmitCycles)
		for _, iso := range g.isolators {
			if err := iso.Readmit(); err != nil {
				return false, fmt.Errorf("driver: re-admitting tenant %d: %w", g.Tenant, err)
			}
		}
		g.quarantined = false
		g.Readmissions++
	}
	return true, nil
}

// OnSuccess reports a successful operation by one of the tenant's devices.
func (g *TenantGuard) OnSuccess(now uint64) {
	g.Breaker.OnSuccess(now)
}

// OnFailure reports a failed operation; when it trips the breaker, every
// device of the tenant is isolated.
func (g *TenantGuard) OnFailure(now uint64) error {
	if !g.Breaker.OnFailure(now) {
		return nil
	}
	g.clk.Charge(cycles.Recovery, g.IsolateCycles)
	for _, iso := range g.isolators {
		if err := iso.Isolate(); err != nil {
			return fmt.Errorf("driver: isolating tenant %d: %w", g.Tenant, err)
		}
	}
	g.quarantined = true
	g.Quarantines++
	return nil
}
