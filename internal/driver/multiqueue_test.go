package driver

import (
	"bytes"
	"testing"

	"riommu/internal/core"
	"riommu/internal/cycles"
	"riommu/internal/device"
	"riommu/internal/dma"
	"riommu/internal/mem"
)

// mqFixture wires a 4-queue NIC under real rIOMMU protection.
func mqFixture(t *testing.T, queues int) (*MQNIC, *core.RIOMMU) {
	t.Helper()
	mm := mustMem(t, 1<<14*mem.PageSize)
	clk := &cycles.Clock{}
	model := cycles.DefaultModel()
	hw := core.New(clk, &model, mm)
	profile := device.ProfileBRCM
	profile.RxEntries = 64
	profile.TxEntries = 64
	drv, err := core.NewDriver(clk, &model, mm, hw, bdf, RIOMMURingSizesQ(profile, queues), true)
	if err != nil {
		t.Fatal(err)
	}
	eng := dma.NewEngine(mm, hw)
	mq, err := NewMQNIC(mm, drv, eng, profile, bdf, queues)
	if err != nil {
		t.Fatal(err)
	}
	return mq, hw
}

func TestMQNICValidation(t *testing.T) {
	mm := mustMem(t, 256*mem.PageSize)
	eng := dma.NewEngine(mm, nil)
	if _, err := NewMQNIC(mm, NoProtection{}, eng, device.ProfileBRCM, bdf, 0); err == nil {
		t.Error("zero queues should fail")
	}
}

func TestMQNICRoundRobinSend(t *testing.T) {
	mq, _ := mqFixture(t, 4)
	payload := bytes.Repeat([]byte{7}, 600)
	for i := 0; i < 8; i++ {
		if err := mq.Send(payload); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	// Round-robin: each of the 4 queues holds 2 packets.
	for q, drv := range mq.Queues {
		if got := drv.TxRing().Pending(); got != 2 {
			t.Errorf("queue %d pending = %d, want 2", q, got)
		}
	}
	n, err := mq.PumpAndReapAll()
	if err != nil {
		t.Fatal(err)
	}
	if n != 8 {
		t.Errorf("reaped %d packets", n)
	}
	if err := mq.Teardown(); err != nil {
		t.Fatal(err)
	}
}

func TestMQNICPerQueueRx(t *testing.T) {
	mq, _ := mqFixture(t, 2)
	if err := mq.Deliver(0, []byte("q0")); err != nil {
		t.Fatal(err)
	}
	if err := mq.Deliver(1, []byte("q1")); err != nil {
		t.Fatal(err)
	}
	frames, err := mq.ReapRxAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 2 || string(frames[0]) != "q0" || string(frames[1]) != "q1" {
		t.Errorf("frames = %q", frames)
	}
	if err := mq.Teardown(); err != nil {
		t.Fatal(err)
	}
}

// TestMQNICIndependentRIOTLBEntries verifies the scalability property: each
// queue's flat tables get their own rIOTLB entries, so concurrent queues do
// not thrash each other's single entry.
func TestMQNICIndependentRIOTLBEntries(t *testing.T) {
	const queues = 4
	mq, hw := mqFixture(t, queues)
	payload := bytes.Repeat([]byte{1}, 600)
	// Interleave traffic across all queues.
	for i := 0; i < 4*queues; i++ {
		if err := mq.Send(payload); err != nil {
			t.Fatal(err)
		}
	}
	for _, drv := range mq.Queues {
		if _, err := drv.PumpTx(4); err != nil {
			t.Fatal(err)
		}
	}
	// One rIOTLB entry per active flat table: 4 Tx tables + the static
	// table (descriptor fetches).
	if got := hw.TLBEntries(); got != queues+1 {
		t.Errorf("rIOTLB entries = %d, want %d (one per active ring)", got, queues+1)
	}
	// Interleaving across queues must not defeat prefetching within each
	// queue: per queue the 4 sequential buffer accesses hit the prefetched
	// next entry after the first.
	st := hw.Stats()
	if st.PrefetchHits < uint64(queues*(4-1)) {
		t.Errorf("prefetch hits = %d, want >= %d despite cross-queue interleaving",
			st.PrefetchHits, queues*3)
	}
	for _, drv := range mq.Queues {
		if _, err := drv.ReapTx(); err != nil {
			t.Fatal(err)
		}
	}
	if err := mq.Teardown(); err != nil {
		t.Fatal(err)
	}
}

// TestMQNICBurstInvalidations: invalidations stay one-per-burst-per-queue.
func TestMQNICBurstInvalidations(t *testing.T) {
	const queues = 2
	mq, hw := mqFixture(t, queues)
	payload := bytes.Repeat([]byte{1}, 600)
	for i := 0; i < 10*queues; i++ {
		if err := mq.Send(payload); err != nil {
			t.Fatal(err)
		}
	}
	before := hw.Stats().Invalidations
	if _, err := mq.PumpAndReapAll(); err != nil {
		t.Fatal(err)
	}
	if got := hw.Stats().Invalidations - before; got != queues {
		t.Errorf("invalidations = %d for %d per-queue bursts, want %d", got, queues, queues)
	}
	if err := mq.Teardown(); err != nil {
		t.Fatal(err)
	}
}
