package driver

import (
	"fmt"

	"riommu/internal/mem"
)

// BufferPool hands out fixed-size target buffers carved from page frames.
// With the default 2 KiB buffer size two buffers share each 4 KiB page,
// which is the situation §4 highlights: baseline page-granular protection
// leaves an unmapped buffer reachable while its page-mate is still mapped,
// whereas rIOMMU's byte-granular rPTEs do not.
type BufferPool struct {
	mm      *mem.PhysMem
	bufSize uint32
	free    []mem.PA
	frames  []mem.PFN
	out     int // buffers currently handed out
}

// DefaultBufferSize fits an MTU-sized packet plus headroom.
const DefaultBufferSize = 2048

// NewBufferPool creates a pool that will carve buffers of bufSize bytes
// (DefaultBufferSize if 0). Frames are allocated lazily as the pool grows.
func NewBufferPool(mm *mem.PhysMem, bufSize uint32) *BufferPool {
	if bufSize == 0 {
		bufSize = DefaultBufferSize
	}
	if bufSize > mem.PageSize {
		bufSize = mem.PageSize
	}
	return &BufferPool{mm: mm, bufSize: bufSize}
}

// BufSize returns the fixed buffer size.
func (p *BufferPool) BufSize() uint32 { return p.bufSize }

// Outstanding returns how many buffers are currently handed out.
func (p *BufferPool) Outstanding() int { return p.out }

// Get returns a free buffer's physical address, growing the pool if needed.
func (p *BufferPool) Get() (mem.PA, error) {
	if len(p.free) == 0 {
		f, err := p.mm.AllocFrame()
		if err != nil {
			return 0, fmt.Errorf("driver: growing buffer pool: %w", err)
		}
		p.frames = append(p.frames, f)
		for off := uint32(0); off+p.bufSize <= mem.PageSize; off += p.bufSize {
			p.free = append(p.free, f.PA()+mem.PA(off))
		}
	}
	pa := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	p.out++
	return pa, nil
}

// GetN fills pas with free buffers. It hands out exactly the addresses, in
// exactly the order, that len(pas) scalar Gets would — pop the free list
// from the end, growing by one frame only when it runs dry — so batch and
// scalar callers see identical buffer placement.
func (p *BufferPool) GetN(pas []mem.PA) error {
	for i := range pas {
		if len(p.free) == 0 {
			f, err := p.mm.AllocFrame()
			if err != nil {
				// Undo the pops so the pool is untouched on failure.
				for j := i - 1; j >= 0; j-- {
					p.free = append(p.free, pas[j])
				}
				return fmt.Errorf("driver: growing buffer pool: %w", err)
			}
			p.frames = append(p.frames, f)
			for off := uint32(0); off+p.bufSize <= mem.PageSize; off += p.bufSize {
				p.free = append(p.free, f.PA()+mem.PA(off))
			}
		}
		pas[i] = p.free[len(p.free)-1]
		p.free = p.free[:len(p.free)-1]
	}
	p.out += len(pas)
	return nil
}

// PutN returns pas to the pool in reverse order, restoring the free list to
// exactly the state it would have had if the buffers had never been taken.
// Used by batch callers to back out unused tail entries after an error.
func (p *BufferPool) PutN(pas []mem.PA) {
	for i := len(pas) - 1; i >= 0; i-- {
		p.free = append(p.free, pas[i])
	}
	p.out -= len(pas)
}

// Put returns a buffer to the pool.
func (p *BufferPool) Put(pa mem.PA) {
	p.free = append(p.free, pa)
	p.out--
}

// Destroy frees every frame the pool ever allocated. All buffers must have
// been returned (and unpinned by their protection driver) first.
func (p *BufferPool) Destroy() error {
	if p.out != 0 {
		return fmt.Errorf("driver: destroying pool with %d buffers outstanding", p.out)
	}
	for _, f := range p.frames {
		if err := p.mm.FreeFrame(f); err != nil {
			return err
		}
	}
	p.frames = nil
	p.free = nil
	return nil
}
