package driver

import (
	"errors"
	"fmt"

	"riommu/internal/cycles"
	"riommu/internal/pci"
)

// This file implements the driver-level fault-recovery machinery layered on
// the fault-injection engine (package faults): bounded retry with
// virtual-clock backoff, a watchdog that detects hung devices by the absence
// of forward progress, graceful degradation to a safer protection mode when
// a device keeps faulting, and (breaker.go) circuit breaking that
// quarantines a device that keeps failing anyway. Everything is charged to
// the virtual clock's Recovery component, so campaigns can report exactly
// how many cycles fault handling costs (cmd/riommu-faults).

// Sentinel errors for the recovery outcomes callers need to distinguish;
// every path wraps them with %w, so use errors.Is — never string matching.
var (
	// ErrRetriesExhausted: every attempt of an operation failed; the last
	// underlying error is wrapped alongside.
	ErrRetriesExhausted = errors.New("driver: retries exhausted")
	// ErrWatchdogHang: a watchdog-detected hang could not be recovered.
	ErrWatchdogHang = errors.New("driver: watchdog hang recovery failed")
	// ErrDegraded: switching the device to degraded protection failed.
	ErrDegraded = errors.New("driver: protection degradation failed")
	// ErrQuarantined: the circuit breaker holds the device isolated;
	// operations fast-fail until the quarantine backoff expires.
	ErrQuarantined = errors.New("driver: device quarantined")
)

// Recovery action codes, carried in trace EvRecovery records' Dir field.
const (
	ActRetry   uint8 = 1 // an operation was retried after a fault
	ActReset   uint8 = 2 // the device was reinitialized (Recover)
	ActDegrade uint8 = 3 // protection was degraded to a stricter mode
	ActProbe   uint8 = 4 // quarantine expired; device tentatively re-admitted
	ActIsolate uint8 = 5 // circuit breaker quarantined the device
	ActReject  uint8 = 6 // an operation fast-failed while quarantined
)

// RecoverySink observes recovery actions; *trace.Trace satisfies it.
type RecoverySink interface {
	RecordRecovery(action uint8, bdf pci.BDF)
}

// RecoveryStats aggregates a Supervisor's fault-handling activity.
type RecoveryStats struct {
	Retries       uint64 // individual retry attempts
	Recoveries    uint64 // successful device reinitializations
	WatchdogFires uint64 // hangs detected by the watchdog
	Degradations  uint64 // protection-mode degradations performed
	Unrecovered   uint64 // operations abandoned after exhausting retries
	Rejected      uint64 // operations fast-failed while quarantined
}

// SLOStats is the supervisor's recovery-SLO ledger, all in virtual cycles:
// an outage runs from the first failed Do to the next successful one, so
// MTTR and availability are pure functions of the seed.
type SLOStats struct {
	Outages             uint64
	DowntimeCycles      uint64
	LongestOutageCycles uint64
}

// MTTRCycles is the mean time (virtual cycles) to recover from an outage.
func (s SLOStats) MTTRCycles() float64 {
	if s.Outages == 0 {
		return 0
	}
	return float64(s.DowntimeCycles) / float64(s.Outages)
}

// Availability is uptime as a fraction of the given total elapsed cycles.
func (s SLOStats) Availability(totalCycles uint64) float64 {
	if totalCycles == 0 {
		return 1
	}
	av := 1 - float64(s.DowntimeCycles)/float64(totalCycles)
	if av < 0 {
		return 0
	}
	return av
}

// RetryPolicy bounds the retry loop: at most MaxAttempts tries of the
// operation, with a virtual-clock backoff that starts at BackoffCycles and
// doubles after each failed attempt (charged to cycles.Recovery), saturating
// at MaxBackoffCycles (0 = unbounded).
type RetryPolicy struct {
	MaxAttempts      int
	BackoffCycles    uint64
	MaxBackoffCycles uint64
}

// DefaultRetryPolicy retries three times starting at a 1,000-cycle backoff —
// small next to a device reset (~ResetCycles) but enough to model the
// latency cost of fault handling — and never backs off longer than one
// device reset.
var DefaultRetryPolicy = RetryPolicy{MaxAttempts: 3, BackoffCycles: 1_000, MaxBackoffCycles: 50_000}

// Recoverable is the driver capability the recovery layer needs: a full
// device/mapping reinitialization (the OS response to an I/O page fault, §4)
// and a monotonic progress counter the watchdog samples.
type Recoverable interface {
	Recover() error
	Progress() uint64
}

// Watchdog detects hung devices: each Check samples the driver's progress
// counter and reports a hang when it has not advanced since the previous
// Check. Every check charges CheckCycles to the Recovery component — the
// periodic timer work a real watchdog costs even when nothing is wrong.
type Watchdog struct {
	clk *cycles.Clock

	// CheckCycles is charged per Check (the timer callback).
	CheckCycles uint64

	last   uint64
	primed bool
	Fires  uint64 // hangs detected
	Checks uint64 // total checks performed
}

// NewWatchdog creates a watchdog charging the given clock.
func NewWatchdog(clk *cycles.Clock) *Watchdog {
	return &Watchdog{clk: clk, CheckCycles: 200}
}

// Check samples progress and reports whether the device appears hung (no
// forward progress since the previous Check). The first call only primes the
// baseline and never fires.
func (w *Watchdog) Check(progress uint64) bool {
	w.clk.Charge(cycles.Recovery, w.CheckCycles)
	w.Checks++
	hung := w.primed && progress == w.last
	w.last, w.primed = progress, true
	if hung {
		w.Fires++
	}
	return hung
}

// Reset re-primes the watchdog (after a device reinitialization, whose
// progress counters may move arbitrarily).
func (w *Watchdog) Reset() { w.primed = false }

// Supervisor ties the pieces together for one device: it runs driver
// operations under the retry policy, reinitializes the device when retries
// alone cannot clear the fault, watches for hangs, and — when the device
// keeps needing recovery — degrades its protection via DegradeFn.
type Supervisor struct {
	clk    *cycles.Clock
	bdf    pci.BDF
	target Recoverable

	Policy   RetryPolicy
	Watchdog *Watchdog

	// ResetCycles is the cost of one device reinitialization (Recover):
	// quiescing the device, tearing down and re-creating its mappings.
	ResetCycles uint64

	// DegradeFn, when set, switches the device to a stricter/safer
	// protection mode (e.g. rIOMMU -> baseline strict); it is invoked once,
	// after DegradeAfter device recoveries, and costs DegradeCycles.
	DegradeFn     func() error
	DegradeAfter  uint64
	DegradeCycles uint64
	degraded      bool

	// Sink, when non-nil, records every recovery action (typically
	// *trace.Trace).
	Sink RecoverySink

	// Breaker, when non-nil, circuit-breaks the device: repeated failures
	// quarantine it (operations fast-fail with ErrQuarantined) until a
	// virtual-clock backoff expires and a probe re-admits it. Isolator is
	// the physical detach/re-admit (typically a dma.Router blackhole route);
	// a nil Isolator makes quarantine purely logical (fast-fail only).
	Breaker  *Breaker
	Isolator Isolator
	// IsolateCycles/ReadmitCycles are charged per quarantine transition.
	IsolateCycles, ReadmitCycles uint64

	// Guard, when non-nil, is the tenant-scoped circuit breaker shared by
	// every supervisor of one tenant's devices. It is consulted before the
	// per-device breaker and fed the outcome of every operation, so any
	// device of the tenant can spend the tenant's error budget — and a trip
	// quarantines them all.
	Guard *TenantGuard

	Stats RecoveryStats

	slo       SLOStats
	down      bool
	downSince uint64
}

// NewSupervisor wraps a recoverable driver for the device bdf.
func NewSupervisor(clk *cycles.Clock, bdf pci.BDF, target Recoverable) *Supervisor {
	return &Supervisor{
		clk:           clk,
		bdf:           bdf,
		target:        target,
		Policy:        DefaultRetryPolicy,
		Watchdog:      NewWatchdog(clk),
		ResetCycles:   50_000, // ~16 µs at 3.1 GHz: ring teardown + refill
		DegradeAfter:  8,
		DegradeCycles: 200_000, // rebuild page tables + remap under new unit
		IsolateCycles: 20_000,  // detach the route, drain in-flight state
		ReadmitCycles: 20_000,
	}
}

// Degraded reports whether DegradeFn has run.
func (s *Supervisor) Degraded() bool { return s.degraded }

func (s *Supervisor) record(action uint8) {
	if s.Sink != nil {
		s.Sink.RecordRecovery(action, s.bdf)
	}
}

// reinit performs one charged device recovery and the degradation check.
func (s *Supervisor) reinit() error {
	s.clk.Charge(cycles.Recovery, s.ResetCycles)
	s.record(ActReset)
	if err := s.target.Recover(); err != nil {
		return err
	}
	s.Stats.Recoveries++
	s.Watchdog.Reset()
	if !s.degraded && s.DegradeFn != nil && s.Stats.Recoveries >= s.DegradeAfter {
		s.clk.Charge(cycles.Recovery, s.DegradeCycles)
		s.record(ActDegrade)
		if err := s.DegradeFn(); err != nil {
			return fmt.Errorf("%w: %w", ErrDegraded, err)
		}
		s.degraded = true
		s.Stats.Degradations++
	}
	return nil
}

// attempt runs op under the retry policy: after each failure it backs off
// (doubling, saturating at MaxBackoffCycles), reinitializes the device, and
// retries. When every attempt fails the fault is counted unrecovered and the
// last error returned wrapped in ErrRetriesExhausted.
func (s *Supervisor) attempt(op func() error) error {
	attempts := s.Policy.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	backoff := s.Policy.BackoffCycles
	var err error
	for try := 0; try < attempts; try++ {
		if try > 0 {
			s.clk.Charge(cycles.Recovery, backoff)
			backoff *= 2
			if max := s.Policy.MaxBackoffCycles; max > 0 && backoff > max {
				backoff = max
			}
			s.Stats.Retries++
			s.record(ActRetry)
			if rerr := s.reinit(); rerr != nil {
				return fmt.Errorf("driver: recovery failed: %w (after %v)", rerr, err)
			}
		}
		if err = op(); err == nil {
			return nil
		}
	}
	s.Stats.Unrecovered++
	return fmt.Errorf("%w after %d attempts: %w", ErrRetriesExhausted, attempts, err)
}

// Do runs op through the circuit breaker and the retry policy, and keeps
// the SLO ledger. While quarantined it fast-fails with ErrQuarantined; the
// first call after the quarantine backoff expires tentatively re-admits the
// device and probes it — success closes the breaker, failure re-isolates
// with a doubled backoff.
func (s *Supervisor) Do(op func() error) error {
	if s.Guard != nil {
		ok, gerr := s.Guard.Allow(s.clk.Now())
		if gerr != nil {
			s.noteOutcome(true)
			return gerr
		}
		if !ok {
			s.clk.Charge(cycles.Recovery, s.Guard.Breaker.RejectCycles)
			s.Stats.Rejected++
			s.record(ActReject)
			s.noteOutcome(true)
			return fmt.Errorf("%w: tenant %d: %s", ErrQuarantined, s.Guard.Tenant, s.bdf)
		}
	}
	if s.Breaker != nil {
		wasOpen := s.Breaker.State() == BreakerOpen
		if !s.Breaker.Allow(s.clk.Now()) {
			s.clk.Charge(cycles.Recovery, s.Breaker.RejectCycles)
			s.Stats.Rejected++
			s.record(ActReject)
			s.noteOutcome(true)
			return fmt.Errorf("%w: %s", ErrQuarantined, s.bdf)
		}
		if wasOpen {
			// Allow moved open → half-open: this operation is the probe.
			// Physically re-admit the device first so the probe exercises
			// the real DMA path rather than the blackhole.
			s.clk.Charge(cycles.Recovery, s.ReadmitCycles)
			s.record(ActProbe)
			if s.Isolator != nil {
				if err := s.Isolator.Readmit(); err != nil {
					s.noteOutcome(true)
					return fmt.Errorf("driver: re-admitting %s: %w", s.bdf, err)
				}
			}
		}
	}
	err := s.attempt(op)
	if s.Breaker != nil {
		if err != nil {
			if s.Breaker.OnFailure(s.clk.Now()) {
				if ierr := s.isolate(); ierr != nil {
					err = fmt.Errorf("%w; %w", err, ierr)
				}
			}
		} else {
			s.Breaker.OnSuccess(s.clk.Now())
		}
	}
	if s.Guard != nil {
		if err != nil {
			if gerr := s.Guard.OnFailure(s.clk.Now()); gerr != nil {
				err = fmt.Errorf("%w; %w", err, gerr)
			}
		} else {
			s.Guard.OnSuccess(s.clk.Now())
		}
	}
	s.noteOutcome(err != nil)
	return err
}

func (s *Supervisor) isolate() error {
	s.clk.Charge(cycles.Recovery, s.IsolateCycles)
	s.record(ActIsolate)
	if s.Isolator == nil {
		return nil
	}
	if err := s.Isolator.Isolate(); err != nil {
		return fmt.Errorf("driver: isolating %s: %w", s.bdf, err)
	}
	return nil
}

// noteOutcome advances the SLO ledger: a failure opens an outage (if none is
// running), a success closes it.
func (s *Supervisor) noteOutcome(failed bool) {
	now := s.clk.Now()
	if failed {
		if !s.down {
			s.down, s.downSince = true, now
		}
		return
	}
	if s.down {
		d := now - s.downSince
		s.slo.Outages++
		s.slo.DowntimeCycles += d
		if d > s.slo.LongestOutageCycles {
			s.slo.LongestOutageCycles = d
		}
		s.down = false
	}
}

// SLO returns the recovery-SLO ledger; an outage still in progress is
// counted up to the current virtual time.
func (s *Supervisor) SLO() SLOStats {
	out := s.slo
	if s.down {
		d := s.clk.Now() - s.downSince
		out.Outages++
		out.DowntimeCycles += d
		if d > out.LongestOutageCycles {
			out.LongestOutageCycles = d
		}
	}
	return out
}

// Watch runs one watchdog check; on a detected hang it reinitializes the
// device. It reports whether a hang was handled. A hang spends circuit-
// breaker error budget even when the reinit succeeds; while the device is
// quarantined the watchdog stands down (the breaker owns re-admission).
func (s *Supervisor) Watch() (bool, error) {
	if s.Breaker != nil && s.Breaker.Quarantined(s.clk.Now()) {
		s.clk.Charge(cycles.Recovery, s.Breaker.RejectCycles)
		return false, nil
	}
	if !s.Watchdog.Check(s.target.Progress()) {
		return false, nil
	}
	s.Stats.WatchdogFires++
	if s.Breaker != nil {
		if s.Breaker.OnFailure(s.clk.Now()) {
			if ierr := s.isolate(); ierr != nil {
				return true, fmt.Errorf("%w: %w", ErrWatchdogHang, ierr)
			}
		}
	}
	if err := s.reinit(); err != nil {
		return true, fmt.Errorf("%w: %w", ErrWatchdogHang, err)
	}
	return true, nil
}
