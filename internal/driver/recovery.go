package driver

import (
	"fmt"

	"riommu/internal/cycles"
	"riommu/internal/pci"
)

// This file implements the driver-level fault-recovery machinery layered on
// the fault-injection engine (package faults): bounded retry with
// virtual-clock backoff, a watchdog that detects hung devices by the absence
// of forward progress, and graceful degradation to a safer protection mode
// when a device keeps faulting. Everything is charged to the virtual clock's
// Recovery component, so campaigns can report exactly how many cycles fault
// handling costs (cmd/riommu-faults).

// Recovery action codes, carried in trace EvRecovery records' Dir field.
const (
	ActRetry   uint8 = 1 // an operation was retried after a fault
	ActReset   uint8 = 2 // the device was reinitialized (Recover)
	ActDegrade uint8 = 3 // protection was degraded to a stricter mode
)

// RecoverySink observes recovery actions; *trace.Trace satisfies it.
type RecoverySink interface {
	RecordRecovery(action uint8, bdf pci.BDF)
}

// RecoveryStats aggregates a Supervisor's fault-handling activity.
type RecoveryStats struct {
	Retries       uint64 // individual retry attempts
	Recoveries    uint64 // successful device reinitializations
	WatchdogFires uint64 // hangs detected by the watchdog
	Degradations  uint64 // protection-mode degradations performed
	Unrecovered   uint64 // operations abandoned after exhausting retries
}

// RetryPolicy bounds the retry loop: at most MaxAttempts tries of the
// operation, with a virtual-clock backoff that starts at BackoffCycles and
// doubles after each failed attempt (charged to cycles.Recovery).
type RetryPolicy struct {
	MaxAttempts   int
	BackoffCycles uint64
}

// DefaultRetryPolicy retries three times starting at a 1,000-cycle backoff —
// small next to a device reset (~ResetCycles) but enough to model the
// latency cost of fault handling.
var DefaultRetryPolicy = RetryPolicy{MaxAttempts: 3, BackoffCycles: 1_000}

// Recoverable is the driver capability the recovery layer needs: a full
// device/mapping reinitialization (the OS response to an I/O page fault, §4)
// and a monotonic progress counter the watchdog samples.
type Recoverable interface {
	Recover() error
	Progress() uint64
}

// Watchdog detects hung devices: each Check samples the driver's progress
// counter and reports a hang when it has not advanced since the previous
// Check. Every check charges CheckCycles to the Recovery component — the
// periodic timer work a real watchdog costs even when nothing is wrong.
type Watchdog struct {
	clk *cycles.Clock

	// CheckCycles is charged per Check (the timer callback).
	CheckCycles uint64

	last   uint64
	primed bool
	Fires  uint64 // hangs detected
	Checks uint64 // total checks performed
}

// NewWatchdog creates a watchdog charging the given clock.
func NewWatchdog(clk *cycles.Clock) *Watchdog {
	return &Watchdog{clk: clk, CheckCycles: 200}
}

// Check samples progress and reports whether the device appears hung (no
// forward progress since the previous Check). The first call only primes the
// baseline and never fires.
func (w *Watchdog) Check(progress uint64) bool {
	w.clk.Charge(cycles.Recovery, w.CheckCycles)
	w.Checks++
	hung := w.primed && progress == w.last
	w.last, w.primed = progress, true
	if hung {
		w.Fires++
	}
	return hung
}

// Reset re-primes the watchdog (after a device reinitialization, whose
// progress counters may move arbitrarily).
func (w *Watchdog) Reset() { w.primed = false }

// Supervisor ties the pieces together for one device: it runs driver
// operations under the retry policy, reinitializes the device when retries
// alone cannot clear the fault, watches for hangs, and — when the device
// keeps needing recovery — degrades its protection via DegradeFn.
type Supervisor struct {
	clk    *cycles.Clock
	bdf    pci.BDF
	target Recoverable

	Policy   RetryPolicy
	Watchdog *Watchdog

	// ResetCycles is the cost of one device reinitialization (Recover):
	// quiescing the device, tearing down and re-creating its mappings.
	ResetCycles uint64

	// DegradeFn, when set, switches the device to a stricter/safer
	// protection mode (e.g. rIOMMU -> baseline strict); it is invoked once,
	// after DegradeAfter device recoveries, and costs DegradeCycles.
	DegradeFn     func() error
	DegradeAfter  uint64
	DegradeCycles uint64
	degraded      bool

	// Sink, when non-nil, records every recovery action (typically
	// *trace.Trace).
	Sink RecoverySink

	Stats RecoveryStats
}

// NewSupervisor wraps a recoverable driver for the device bdf.
func NewSupervisor(clk *cycles.Clock, bdf pci.BDF, target Recoverable) *Supervisor {
	return &Supervisor{
		clk:           clk,
		bdf:           bdf,
		target:        target,
		Policy:        DefaultRetryPolicy,
		Watchdog:      NewWatchdog(clk),
		ResetCycles:   50_000, // ~16 µs at 3.1 GHz: ring teardown + refill
		DegradeAfter:  8,
		DegradeCycles: 200_000, // rebuild page tables + remap under new unit
	}
}

// Degraded reports whether DegradeFn has run.
func (s *Supervisor) Degraded() bool { return s.degraded }

func (s *Supervisor) record(action uint8) {
	if s.Sink != nil {
		s.Sink.RecordRecovery(action, s.bdf)
	}
}

// reinit performs one charged device recovery and the degradation check.
func (s *Supervisor) reinit() error {
	s.clk.Charge(cycles.Recovery, s.ResetCycles)
	s.record(ActReset)
	if err := s.target.Recover(); err != nil {
		return err
	}
	s.Stats.Recoveries++
	s.Watchdog.Reset()
	if !s.degraded && s.DegradeFn != nil && s.Stats.Recoveries >= s.DegradeAfter {
		s.clk.Charge(cycles.Recovery, s.DegradeCycles)
		s.record(ActDegrade)
		if err := s.DegradeFn(); err != nil {
			return fmt.Errorf("driver: degrading protection: %w", err)
		}
		s.degraded = true
		s.Stats.Degradations++
	}
	return nil
}

// Do runs op under the retry policy: after each failure it backs off
// (doubling), reinitializes the device, and retries. When every attempt
// fails the fault is counted unrecovered and the last error returned.
func (s *Supervisor) Do(op func() error) error {
	attempts := s.Policy.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	backoff := s.Policy.BackoffCycles
	var err error
	for try := 0; try < attempts; try++ {
		if try > 0 {
			s.clk.Charge(cycles.Recovery, backoff)
			backoff *= 2
			s.Stats.Retries++
			s.record(ActRetry)
			if rerr := s.reinit(); rerr != nil {
				return fmt.Errorf("driver: recovery failed: %w (after %v)", rerr, err)
			}
		}
		if err = op(); err == nil {
			return nil
		}
	}
	s.Stats.Unrecovered++
	return fmt.Errorf("driver: unrecovered after %d attempts: %w", attempts, err)
}

// Watch runs one watchdog check; on a detected hang it reinitializes the
// device. It reports whether a hang was handled.
func (s *Supervisor) Watch() (bool, error) {
	if !s.Watchdog.Check(s.target.Progress()) {
		return false, nil
	}
	s.Stats.WatchdogFires++
	if err := s.reinit(); err != nil {
		return true, fmt.Errorf("driver: watchdog recovery: %w", err)
	}
	return true, nil
}
