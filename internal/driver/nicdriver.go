package driver

import (
	"fmt"

	"riommu/internal/device"
	"riommu/internal/dma"
	"riommu/internal/mem"
	"riommu/internal/pci"
	"riommu/internal/ring"
)

// Ring IDs used with the rIOMMU protection driver. Each device ring is
// backed by two flat tables (§4): one static table translating the ring
// pages themselves (mapped at initialization, unmapped at teardown) and one
// dynamic table for the in-flight target buffers.
const (
	RingStatic = 0 // ring-page translations for every queue's rings
	RingRx     = 1 // queue 0's Rx target buffers
	RingTx     = 2 // queue 0's Tx target buffers
)

// RIOMMURingSizes returns the flat-table sizes a NIC with the given profile
// needs: a small static table plus one dynamic table per direction sized to
// bound the live IOVAs (L <= ring entries × buffers/packet, §4).
func RIOMMURingSizes(p device.NICProfile) []uint32 {
	return RIOMMURingSizesQ(p, 1)
}

// QueueIRQ is the driver's view of one queue's interrupt state: firing
// delivers any pending completion interrupt through the remapping hardware
// when the handler services the queue, and Drop discards pending state on a
// queue reset so a recovered queue never replays pre-reset completions.
// A nil QueueIRQ means interrupts are not modeled.
type QueueIRQ interface {
	FireRx()
	FireTx()
	Drop() int
}

// mapped tracks one live target-buffer mapping (or an inline descriptor,
// which has no mapping at all).
type mapped struct {
	pa     mem.PA
	iova   uint64
	size   uint32
	inline bool
	live   bool
}

// NICDriver is the OS network driver: it owns the Rx/Tx descriptor rings,
// keeps the Rx ring replenished with mapped buffers, maps Tx buffers as
// packets are sent, and unmaps buffers in completion-burst order with the
// end-of-burst marker on the final unmap of each burst.
type NICDriver struct {
	mm   *mem.PhysMem
	prot Protection
	pool *BufferPool
	nic  *device.NIC
	rx   *ring.Ring
	tx   *ring.Ring

	profile device.NICProfile
	ringRx  int // rIOMMU flat table for Rx buffers
	ringTx  int // rIOMMU flat table for Tx buffers

	rxSlots []mapped // per Rx slot
	txSlots []mapped // per Tx slot
	rxReap  uint32   // next Rx slot to reap
	txReap  uint32   // next Tx slot to reap

	staticIOVAs []mapped // persistent ring-page mappings

	fillPAs   [fillChunk]mem.PA // scratch for batched Rx refills
	fillIOVAs [fillChunk]uint64

	reapScratch []uint32 // reusable completed-slot list for Reap{Rx,Tx}

	irq QueueIRQ // nil: interrupts not modeled

	// Statistics.
	TxQueued   uint64
	TxReaped   uint64
	RxReceived uint64
}

// NewNICDriver allocates the descriptor rings, maps them persistently for
// the device, wires up the NIC model, and fills the Rx ring with mapped
// buffers. eng must already translate through the protection mode's
// matching hardware.
func NewNICDriver(mm *mem.PhysMem, prot Protection, eng *dma.Engine, profile device.NICProfile, bdf pci.BDF) (*NICDriver, *device.NIC, error) {
	return newNICDriverQueue(mm, prot, eng, profile, bdf, 0)
}

// newNICDriverQueue builds the driver for queue q of a (possibly
// multi-queue) NIC, using the queue's own rIOMMU flat tables.
func newNICDriverQueue(mm *mem.PhysMem, prot Protection, eng *dma.Engine, profile device.NICProfile, bdf pci.BDF, q int) (*NICDriver, *device.NIC, error) {
	rx, err := ring.New(mm, profile.RxEntries)
	if err != nil {
		return nil, nil, err
	}
	tx, err := ring.New(mm, profile.TxEntries)
	if err != nil {
		return nil, nil, err
	}
	d := &NICDriver{
		mm:      mm,
		prot:    prot,
		pool:    NewBufferPool(mm, profile.BufferBytes),
		rx:      rx,
		tx:      tx,
		profile: profile,
		ringRx:  queueRingRx(q),
		ringTx:  queueRingTx(q),
		rxSlots: make([]mapped, profile.RxEntries),
		txSlots: make([]mapped, profile.TxEntries),
	}

	// Persistently map the ring memory so the device can fetch descriptors
	// (the "first rRING" of §4; a single fine-grained mapping per ring).
	for _, r := range []*ring.Ring{rx, tx} {
		iova, err := prot.Map(RingStatic, r.BasePA(), r.Bytes(), pci.DirBidi)
		if err != nil {
			return nil, nil, fmt.Errorf("driver: mapping ring memory: %w", err)
		}
		r.SetDeviceAddr(iova)
		d.staticIOVAs = append(d.staticIOVAs, mapped{pa: r.BasePA(), iova: iova, size: r.Bytes()})
	}

	d.nic = device.NewNIC(profile, bdf, eng, rx, tx)
	if err := d.fillRx(); err != nil {
		return nil, nil, err
	}
	return d, d.nic, nil
}

// NIC returns the attached device model.
func (d *NICDriver) NIC() *device.NIC { return d.nic }

// RxRing and TxRing expose the descriptor rings (tests, experiments).
func (d *NICDriver) RxRing() *ring.Ring { return d.rx }

// TxRing returns the transmit descriptor ring.
func (d *NICDriver) TxRing() *ring.Ring { return d.tx }

// Profile returns the NIC profile.
func (d *NICDriver) Profile() device.NICProfile { return d.profile }

// SetIRQ wires the queue's interrupt source into both halves of the path:
// the driver fires/drops it, and — when the source is also a device-side
// IRQ line — the NIC model raises it on completions.
func (d *NICDriver) SetIRQ(irq QueueIRQ) {
	d.irq = irq
	if line, ok := irq.(device.IRQLine); ok {
		d.nic.IRQ = line
	} else if irq == nil {
		d.nic.IRQ = nil
	}
}

// IRQ returns the wired interrupt source (nil when not modeled).
func (d *NICDriver) IRQ() QueueIRQ { return d.irq }

// fillChunk bounds one batched refill round; the scratch lives in the
// driver struct so refills never allocate.
const fillChunk = 256

// fillRx tops the Rx ring up to capacity with freshly mapped buffers. The
// refill runs through the batch verbs — GetN, MapBatch, PostN, in chunks of
// fillChunk — which is observationally identical to posting the buffers one
// by one (same buffer placement, mapping order, charge accounting, and ring
// state) but costs three calls per chunk instead of three per buffer.
func (d *NICDriver) fillRx() error {
	size := d.pool.BufSize()
	sz := d.rx.Size()
	for {
		free := int(sz - 1 - d.rx.Pending())
		if free <= 0 {
			return nil
		}
		if free > fillChunk {
			free = fillChunk
		}
		pas := d.fillPAs[:free]
		iovas := d.fillIOVAs[:free]
		if err := d.pool.GetN(pas); err != nil {
			return err
		}
		n, merr := MapBatch(d.prot, d.ringRx, pas, size, pci.DirFromDevice, iovas)
		first, posted, perr := d.rx.PostN(iovas[:n], size)
		slot := first
		for i := 0; i < posted; i++ {
			d.rxSlots[slot] = mapped{pa: pas[i], iova: iovas[i], size: size, live: true}
			if slot++; slot == sz {
				slot = 0
			}
		}
		if perr != nil {
			// Unreachable when the fill is sized to the free slots, but
			// mirror the scalar cleanup: unmap whatever could not be posted
			// so no stale state survives, and return every unused buffer.
			for i := posted; i < n; i++ {
				if uerr := d.prot.Unmap(d.ringRx, iovas[i], size, true); uerr != nil {
					return uerr
				}
				d.pool.Put(pas[i])
			}
			d.pool.PutN(pas[n:])
			return perr
		}
		if merr != nil {
			// Restore the free list to what a scalar fill would leave: the
			// never-used tail first (in reverse, undoing the pops), then the
			// buffer whose map failed.
			d.pool.PutN(pas[n+1:])
			d.pool.Put(pas[n])
			return merr
		}
	}
}

// Send maps the packet's buffer(s) and posts the Tx descriptor(s). The
// device transmits when PumpTx runs (the doorbell/DMA stage), and buffers
// are unmapped when ReapTx processes the completion burst.
//
// For two-buffer profiles (mlx) the packet is a synthesized protocol header
// in one buffer plus the payload in a second — two map operations per
// packet, as the paper measures.
func (d *NICDriver) Send(payload []byte) error {
	if len(payload) == 0 {
		return fmt.Errorf("driver: empty payload")
	}
	pieces := d.splitTx(payload)
	if int(d.tx.Size()-1-d.tx.Pending()) < len(pieces) {
		return fmt.Errorf("driver: tx ring full")
	}
	for _, piece := range pieces {
		pa, err := d.pool.Get()
		if err != nil {
			return err
		}
		if len(piece) > 0 {
			if err := d.mm.Write(pa, piece); err != nil {
				return err
			}
		}
		size := uint32(len(piece))
		if size == 0 {
			size = 1 // descriptor must describe at least one byte
		}
		iova, err := d.prot.Map(d.ringTx, pa, size, pci.DirToDevice)
		if err != nil {
			d.pool.Put(pa)
			return err
		}
		slot, err := d.tx.Post(ring.Descriptor{Addr: iova, Len: size})
		if err != nil {
			uerr := d.prot.Unmap(d.ringTx, iova, size, true)
			d.pool.Put(pa)
			if uerr != nil {
				return uerr
			}
			return err
		}
		d.txSlots[slot] = mapped{pa: pa, iova: iova, size: size, live: true}
	}
	d.TxQueued++
	return nil
}

// SendInline posts a tiny payload (at most 8 bytes) carried inside the
// descriptor itself — the inline-send path real NICs provide (ConnectX
// BlueFlame doorbells, copybreak transmit). No buffer is allocated and no
// IOVA is mapped, which is why latency-sensitive small-message traffic pays
// only receive-side protection costs (§5.2's RR results).
func (d *NICDriver) SendInline(payload []byte) error {
	if len(payload) == 0 || len(payload) > 8 {
		return fmt.Errorf("driver: inline payload must be 1..8 bytes, got %d", len(payload))
	}
	var packed uint64
	for i, b := range payload {
		packed |= uint64(b) << (8 * i)
	}
	slot, err := d.tx.Post(ring.Descriptor{
		Addr:  packed,
		Len:   uint32(len(payload)),
		Flags: ring.FlagInline,
	})
	if err != nil {
		return err
	}
	d.txSlots[slot] = mapped{inline: true, live: true}
	d.TxQueued++
	return nil
}

// splitTx produces the per-buffer pieces for a payload: header + payload
// for two-buffer profiles, a single frame otherwise.
func (d *NICDriver) splitTx(payload []byte) [][]byte {
	if d.profile.BuffersPerPacket < 2 {
		return [][]byte{payload}
	}
	header := make([]byte, d.profile.HeaderBytes)
	for i := range header {
		header[i] = 0x5a // synthesized protocol header bytes
	}
	return [][]byte{header, payload}
}

// PumpTx lets the device transmit up to maxPackets queued packets.
func (d *NICDriver) PumpTx(maxPackets int) (int, error) {
	return d.nic.ProcessTx(maxPackets)
}

// ReapTx processes the Tx completion burst: it walks completed descriptors
// in ring order, unmapping each buffer and marking the burst end on the
// last one, then returns buffers to the pool. Returns packets reaped.
func (d *NICDriver) ReapTx() (int, error) {
	if d.irq != nil {
		d.irq.FireTx()
	}
	done := d.reapScratch[:0]
	for d.txReap != d.tx.Head() {
		desc, err := d.tx.ReadSlot(d.txReap)
		if err != nil {
			return 0, err
		}
		if desc.Flags&ring.FlagDone == 0 {
			break
		}
		done = append(done, d.txReap)
		d.txReap = (d.txReap + 1) % d.tx.Size()
	}
	d.reapScratch = done
	// The end-of-burst marker goes on the last *mapped* descriptor of the
	// burst; inline descriptors have nothing to unmap.
	lastMapped := -1
	for i, slot := range done {
		if !d.txSlots[slot].inline {
			lastMapped = i
		}
	}
	pkts := 0
	buffered := 0
	for i, slot := range done {
		m := d.txSlots[slot]
		if m.inline {
			pkts++
		} else {
			if err := d.prot.Unmap(d.ringTx, m.iova, m.size, i == lastMapped); err != nil {
				return 0, fmt.Errorf("driver: tx unmap slot %d: %w", slot, err)
			}
			buffered++
			// Retire the slot with the unmap so a failure below cannot
			// leave a live-looking slot whose mapping is already gone.
			d.pool.Put(m.pa)
		}
		d.txSlots[slot] = mapped{}
		if _, err := d.tx.Reap(slot); err != nil {
			return 0, err
		}
	}
	pkts += buffered / d.profile.BuffersPerPacket
	d.TxReaped += uint64(pkts)
	return pkts, nil
}

// Deliver simulates a packet arriving on the wire: the device DMAs it into
// the posted Rx buffers. Call ReapRx to run the driver's interrupt handler.
func (d *NICDriver) Deliver(frame []byte) error {
	return d.nic.DeliverPacket(frame)
}

// ReapRx runs the Rx completion burst: for every completed descriptor it
// unmaps the buffer (burst-end marker on the last), copies the data out to
// hand upstream, returns the buffer to the pool, and reposts a freshly
// mapped buffer. It returns the received frames.
func (d *NICDriver) ReapRx() ([][]byte, error) {
	if d.irq != nil {
		d.irq.FireRx()
	}
	done := d.reapScratch[:0]
	for d.rxReap != d.rx.Head() {
		desc, err := d.rx.ReadSlot(d.rxReap)
		if err != nil {
			return nil, err
		}
		if desc.Flags&ring.FlagDone == 0 {
			break
		}
		done = append(done, d.rxReap)
		d.rxReap = (d.rxReap + 1) % d.rx.Size()
	}
	d.reapScratch = done
	if len(done) == 0 {
		return nil, nil
	}
	var frames [][]byte
	var frame []byte
	for i, slot := range done {
		desc, err := d.rx.Reap(slot)
		if err != nil {
			return nil, err
		}
		m := d.rxSlots[slot]
		// The unmap must precede touching the buffer (per the DMA API the
		// driver must not read it earlier; see §2.1 footnote). The slot
		// state is retired with it, so a failure on the copy below cannot
		// leave a live-looking slot whose mapping is already gone (Recover
		// would double-unmap).
		if err := d.prot.Unmap(d.ringRx, m.iova, m.size, i == len(done)-1); err != nil {
			return nil, fmt.Errorf("driver: rx unmap slot %d: %w", slot, err)
		}
		d.rxSlots[slot] = mapped{}
		if desc.Len > 0 {
			// Copy straight out of simulated memory into the frame;
			// ReadInto has the same poison/fault-hook semantics as Read
			// without the intermediate allocation.
			off := len(frame)
			frame = append(frame, make([]byte, desc.Len)...)
			if err := d.mm.ReadInto(m.pa, frame[off:]); err != nil {
				d.pool.Put(m.pa)
				return nil, err
			}
		}
		d.pool.Put(m.pa)
		if (i+1)%d.profile.BuffersPerPacket == 0 {
			frames = append(frames, frame)
			frame = nil
		}
	}
	d.RxReceived += uint64(len(frames))
	if err := d.fillRx(); err != nil {
		return nil, err
	}
	return frames, nil
}

// Recover reinitializes the device path after an I/O page fault, as OSes do
// (§4): every live target-buffer mapping is torn down, the descriptor rings
// are reset, and the Rx ring is refilled with freshly mapped buffers.
// Outstanding packets are lost — exactly the semantics of a device reset.
// Unmaps are best-effort: a reset must terminate even when the fault left
// the mapping state inconsistent.
func (d *NICDriver) Recover() error {
	d.nic.ResetDevice()
	// A queue reset forfeits its in-flight completions: any latched
	// interrupt refers to descriptors the reset is about to destroy, so
	// delivering it later would replay pre-reset state.
	if d.irq != nil {
		d.irq.Drop()
	}
	for slot := range d.txSlots {
		m := d.txSlots[slot]
		if m.live && !m.inline {
			_ = d.prot.Unmap(d.ringTx, m.iova, m.size, true)
			d.pool.Put(m.pa)
		}
		d.txSlots[slot] = mapped{}
	}
	for slot := range d.rxSlots {
		m := d.rxSlots[slot]
		if m.live {
			_ = d.prot.Unmap(d.ringRx, m.iova, m.size, true)
			d.pool.Put(m.pa)
		}
		d.rxSlots[slot] = mapped{}
	}
	if err := d.rx.Reset(); err != nil {
		return err
	}
	if err := d.tx.Reset(); err != nil {
		return err
	}
	d.rxReap, d.txReap = 0, 0
	return d.fillRx()
}

// Progress returns the device's monotonic forward-progress counter for the
// recovery watchdog: packets moved in either direction.
func (d *NICDriver) Progress() uint64 { return d.nic.TxPackets + d.nic.RxPackets }

// Reattach migrates the driver to a different protection unit (graceful
// degradation: e.g. from rIOMMU to the baseline strict IOMMU after repeated
// faults). Mappings under the old unit are torn down best-effort — it may be
// the very thing that is misbehaving — then the rings are remapped and the
// Rx ring refilled under the new one.
func (d *NICDriver) Reattach(prot Protection) error {
	d.nic.ResetDevice()
	if d.irq != nil {
		d.irq.Drop() // ring reset: pending completions are void
	}
	for slot := range d.txSlots {
		m := d.txSlots[slot]
		if m.live && !m.inline {
			_ = d.prot.Unmap(d.ringTx, m.iova, m.size, true)
			d.pool.Put(m.pa)
		}
		d.txSlots[slot] = mapped{}
	}
	for slot := range d.rxSlots {
		m := d.rxSlots[slot]
		if m.live {
			_ = d.prot.Unmap(d.ringRx, m.iova, m.size, true)
			d.pool.Put(m.pa)
		}
		d.rxSlots[slot] = mapped{}
	}
	for i := len(d.staticIOVAs) - 1; i >= 0; i-- {
		_ = d.prot.Unmap(RingStatic, d.staticIOVAs[i].iova, d.staticIOVAs[i].size, i == 0)
	}
	d.staticIOVAs = d.staticIOVAs[:0]
	d.prot = prot
	for _, r := range []*ring.Ring{d.rx, d.tx} {
		iova, err := prot.Map(RingStatic, r.BasePA(), r.Bytes(), pci.DirBidi)
		if err != nil {
			return fmt.Errorf("driver: remapping ring memory: %w", err)
		}
		r.SetDeviceAddr(iova)
		d.staticIOVAs = append(d.staticIOVAs, mapped{pa: r.BasePA(), iova: iova, size: r.Bytes()})
	}
	if err := d.rx.Reset(); err != nil {
		return err
	}
	if err := d.tx.Reset(); err != nil {
		return err
	}
	d.rxReap, d.txReap = 0, 0
	return d.fillRx()
}

// Teardown drains completions, unmaps every live mapping (including the
// persistent ring mappings), and releases rings and buffers.
func (d *NICDriver) Teardown() error {
	if _, err := d.PumpTx(int(d.tx.Pending())); err != nil {
		return err
	}
	if d.irq != nil {
		defer d.irq.Drop()
	}
	if _, err := d.ReapTx(); err != nil {
		return err
	}
	// Unmap the posted Rx buffers still owned by the device.
	var lastErr error
	n := 0
	for slot := d.rxReap; slot != d.rx.Tail(); slot = (slot + 1) % d.rx.Size() {
		m := d.rxSlots[slot]
		n++
		if err := d.prot.Unmap(d.ringRx, m.iova, m.size, slot == (d.rx.Tail()+d.rx.Size()-1)%d.rx.Size()); err != nil {
			lastErr = err
			continue
		}
		d.pool.Put(m.pa)
	}
	_ = n
	for i, m := range d.staticIOVAs {
		if err := d.prot.Unmap(RingStatic, m.iova, m.size, i == len(d.staticIOVAs)-1); err != nil {
			lastErr = err
		}
	}
	if err := d.rx.Free(); err != nil {
		return err
	}
	if err := d.tx.Free(); err != nil {
		return err
	}
	if err := d.pool.Destroy(); err != nil {
		return err
	}
	return lastErr
}
