package trace

import (
	"bytes"
	"testing"
)

// FuzzReadBinary: arbitrary byte streams either parse into a trace whose
// re-encoding is a prefix-faithful round trip, or fail cleanly — never
// panic, never fabricate events beyond the input length.
func FuzzReadBinary(f *testing.F) {
	sample := sample()
	var buf bytes.Buffer
	if err := sample.WriteBinary(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return // clean failure
		}
		if tr.Len() != len(data)/recBytes {
			t.Fatalf("parsed %d events from %d bytes", tr.Len(), len(data))
		}
		var out bytes.Buffer
		if err := tr.WriteBinary(&out); err != nil {
			t.Fatal(err)
		}
		// Re-encoding must reproduce the consumed prefix except for bits
		// outside the architectural fields (kind is 1 byte, dir 1 byte —
		// both stored raw, so the round trip is exact).
		if !bytes.Equal(out.Bytes(), data[:tr.Len()*recBytes]) {
			t.Fatal("binary round trip not faithful")
		}
	})
}

// FuzzReadJSON: arbitrary text never panics the JSON trace reader.
func FuzzReadJSON(f *testing.F) {
	var buf bytes.Buffer
	if err := sample().WriteJSON(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add("")
	f.Add("{\"kind\":99}\n{bad")

	f.Fuzz(func(t *testing.T, data string) {
		tr, err := ReadJSON(bytes.NewReader([]byte(data)))
		if err == nil && tr == nil {
			t.Fatal("nil trace without error")
		}
	})
}
