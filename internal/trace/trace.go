// Package trace records and replays DMA address streams. The paper's §5.4
// methodology modified KVM/QEMU's IOMMU layer to log the DMAs of emulated
// devices and fed the traces to simulated TLB prefetchers; we do the same by
// logging every translation our simulated devices perform, with binary and
// JSON codecs for storage.
package trace

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"riommu/internal/mem"
	"riommu/internal/pci"
)

// EventKind distinguishes the record types in a trace.
type EventKind uint8

// Trace event kinds.
const (
	// EvTranslate is a DMA translation (an IOVA page access).
	EvTranslate EventKind = iota
	// EvMap is an OS map of an IOVA page.
	EvMap
	// EvUnmap is an OS unmap (invalidation) of an IOVA page.
	EvUnmap
	// EvFault is an injected fault; the fault class rides in the Dir field
	// (the record layout has no spare byte) and Page holds the fault address.
	EvFault
	// EvRecovery is a driver recovery action; the action code rides in the
	// Dir field.
	EvRecovery
)

func (k EventKind) String() string {
	switch k {
	case EvTranslate:
		return "translate"
	case EvMap:
		return "map"
	case EvUnmap:
		return "unmap"
	case EvFault:
		return "fault"
	case EvRecovery:
		return "recovery"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Event is one trace record.
type Event struct {
	Kind EventKind `json:"kind"`
	BDF  pci.BDF   `json:"bdf"`
	// Page is the IOVA page number accessed/mapped/unmapped.
	Page uint64 `json:"page"`
	// Dir is the DMA direction for EvTranslate events.
	Dir pci.Dir `json:"dir"`
}

// Trace is an in-memory event sequence.
type Trace struct {
	Events []Event
}

// Record appends an event.
func (t *Trace) Record(kind EventKind, bdf pci.BDF, iova uint64, dir pci.Dir) {
	t.Events = append(t.Events, Event{Kind: kind, BDF: bdf, Page: iova >> mem.PageShift, Dir: dir})
}

// RecordFault satisfies the fault engine's Sink interface: injections appear
// inline in the trace, interleaved with the DMAs they perturb. The class is
// carried in the Dir field and the raw fault address in Page (not shifted:
// fault addresses — descriptor slots, cachelines — are finer than pages).
func (t *Trace) RecordFault(class uint8, bdf pci.BDF, addr uint64) {
	t.Events = append(t.Events, Event{Kind: EvFault, BDF: bdf, Page: addr, Dir: pci.Dir(class)})
}

// RecordRecovery logs a driver recovery action (retry, reset, degrade…); the
// action code is carried in the Dir field.
func (t *Trace) RecordRecovery(action uint8, bdf pci.BDF) {
	t.Events = append(t.Events, Event{Kind: EvRecovery, BDF: bdf, Dir: pci.Dir(action)})
}

// Len returns the number of events.
func (t *Trace) Len() int { return len(t.Events) }

// Accesses returns only the translation events.
func (t *Trace) Accesses() []Event {
	var out []Event
	for _, e := range t.Events {
		if e.Kind == EvTranslate {
			out = append(out, e)
		}
	}
	return out
}

// binary format: 1-byte kind, 2-byte bdf, 1-byte dir, 8-byte page, LE.
const recBytes = 12

// WriteBinary streams the trace in the compact binary format.
func (t *Trace) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var rec [recBytes]byte
	for _, e := range t.Events {
		rec[0] = byte(e.Kind)
		binary.LittleEndian.PutUint16(rec[1:], uint16(e.BDF))
		rec[3] = byte(e.Dir)
		binary.LittleEndian.PutUint64(rec[4:], e.Page)
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary parses a binary trace stream.
func ReadBinary(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	t := &Trace{}
	var rec [recBytes]byte
	for {
		_, err := io.ReadFull(br, rec[:])
		if err == io.EOF {
			return t, nil
		}
		if err != nil {
			return nil, fmt.Errorf("trace: short record: %w", err)
		}
		t.Events = append(t.Events, Event{
			Kind: EventKind(rec[0]),
			BDF:  pci.BDF(binary.LittleEndian.Uint16(rec[1:])),
			Dir:  pci.Dir(rec[3]),
			Page: binary.LittleEndian.Uint64(rec[4:]),
		})
	}
}

// WriteJSON streams the trace as JSON lines.
func (t *Trace) WriteJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range t.Events {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSON parses a JSON-lines trace.
func ReadJSON(r io.Reader) (*Trace, error) {
	dec := json.NewDecoder(r)
	t := &Trace{}
	for {
		var e Event
		err := dec.Decode(&e)
		if err == io.EOF {
			return t, nil
		}
		if err != nil {
			return nil, fmt.Errorf("trace: bad JSON record: %w", err)
		}
		t.Events = append(t.Events, e)
	}
}

// Recorder wraps a Translator, logging every translation into a Trace. It
// implements the same Translate signature it wraps, so it can be spliced
// between the DMA engine and the translation hardware.
type Recorder struct {
	Inner interface {
		Translate(bdf pci.BDF, iova uint64, size uint32, dir pci.Dir) (mem.PA, error)
	}
	Trace *Trace
}

// Translate records the access and forwards to the wrapped translator.
func (r *Recorder) Translate(bdf pci.BDF, iova uint64, size uint32, dir pci.Dir) (mem.PA, error) {
	r.Trace.Record(EvTranslate, bdf, iova, dir)
	return r.Inner.Translate(bdf, iova, size, dir)
}
