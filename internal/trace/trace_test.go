package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"riommu/internal/iommu"
	"riommu/internal/mem"
	"riommu/internal/pci"
)

var dev = pci.NewBDF(0, 3, 0)

func sample() *Trace {
	t := &Trace{}
	t.Record(EvMap, dev, 0x10000, pci.DirFromDevice)
	t.Record(EvTranslate, dev, 0x10000, pci.DirFromDevice)
	t.Record(EvTranslate, dev, 0x10234, pci.DirFromDevice)
	t.Record(EvUnmap, dev, 0x10000, pci.DirNone)
	return t
}

func TestRecordPages(t *testing.T) {
	tr := sample()
	if tr.Len() != 4 {
		t.Fatalf("Len = %d", tr.Len())
	}
	// Addresses are recorded as page numbers.
	if tr.Events[1].Page != 0x10 {
		t.Errorf("page = %#x, want 0x10", tr.Events[1].Page)
	}
	// Same page, different offsets: same page number.
	if tr.Events[2].Page != 0x10 {
		t.Errorf("page = %#x", tr.Events[2].Page)
	}
	acc := tr.Accesses()
	if len(acc) != 2 {
		t.Errorf("Accesses = %d", len(acc))
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	tr := sample()
	var buf bytes.Buffer
	if err := tr.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Events) != len(tr.Events) {
		t.Fatalf("events = %d", len(got.Events))
	}
	for i := range tr.Events {
		if got.Events[i] != tr.Events[i] {
			t.Errorf("event %d = %+v, want %+v", i, got.Events[i], tr.Events[i])
		}
	}
}

func TestBinaryTruncated(t *testing.T) {
	tr := sample()
	var buf bytes.Buffer
	if err := tr.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBinary(bytes.NewReader(buf.Bytes()[:buf.Len()-3])); err == nil {
		t.Error("truncated stream should fail")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	tr := sample()
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tr.Events {
		if got.Events[i] != tr.Events[i] {
			t.Errorf("event %d mismatch", i)
		}
	}
	if _, err := ReadJSON(strings.NewReader("{bad json")); err == nil {
		t.Error("bad JSON should fail")
	}
}

func TestBinaryRoundTripProperty(t *testing.T) {
	prop := func(kinds []uint8, pages []uint64) bool {
		tr := &Trace{}
		n := len(kinds)
		if len(pages) < n {
			n = len(pages)
		}
		for i := 0; i < n; i++ {
			tr.Events = append(tr.Events, Event{
				Kind: EventKind(kinds[i] % 3),
				BDF:  dev,
				Page: pages[i],
				Dir:  pci.Dir(kinds[i] % 4),
			})
		}
		var buf bytes.Buffer
		if err := tr.WriteBinary(&buf); err != nil {
			return false
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		if len(got.Events) != len(tr.Events) {
			return false
		}
		for i := range tr.Events {
			if got.Events[i] != tr.Events[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestRecorder(t *testing.T) {
	tr := &Trace{}
	rec := &Recorder{Inner: iommu.Identity{}, Trace: tr}
	pa, err := rec.Translate(dev, 0x5123, 64, pci.DirToDevice)
	if err != nil || pa != mem.PA(0x5123) {
		t.Fatalf("Translate = %#x, %v", pa, err)
	}
	if tr.Len() != 1 || tr.Events[0].Page != 5 || tr.Events[0].Kind != EvTranslate {
		t.Errorf("recorded %+v", tr.Events)
	}
}

func TestEventKindString(t *testing.T) {
	if EvTranslate.String() != "translate" || EvMap.String() != "map" ||
		EvUnmap.String() != "unmap" || EventKind(9).String() != "kind(9)" {
		t.Error("EventKind names wrong")
	}
}
