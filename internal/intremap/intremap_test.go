package intremap

import (
	"testing"

	"riommu/internal/cycles"
	"riommu/internal/pci"
)

func newRemapper(t *testing.T, cfg Config) (*Remapper, *cycles.Clock, *cycles.Clock) {
	t.Helper()
	cpu, dev := &cycles.Clock{}, &cycles.Clock{}
	model := cycles.DefaultModel()
	r, err := New(cfg, cpu, dev, &model)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return r, cpu, dev
}

func TestTableGeometry(t *testing.T) {
	if _, err := NewTable(-1); err == nil {
		t.Fatal("order -1 accepted")
	}
	if _, err := NewTable(16); err == nil {
		t.Fatal("order 16 accepted")
	}
	tb, err := NewTable(3)
	if err != nil {
		t.Fatal(err)
	}
	if tb.Size() != 8 {
		t.Fatalf("size = %d, want 8", tb.Size())
	}
}

func TestAllocLowestFree(t *testing.T) {
	tb, _ := NewTable(3)
	bdf := pci.NewBDF(0, 3, 0)
	for i := 0; i < 4; i++ {
		idx, err := tb.Alloc(bdf, uint8(0x20+i), 0, false)
		if err != nil {
			t.Fatal(err)
		}
		if idx != i {
			t.Fatalf("alloc %d landed at %d", i, idx)
		}
	}
	if err := tb.Free(1); err != nil {
		t.Fatal(err)
	}
	idx, err := tb.Alloc(bdf, 0x30, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if idx != 1 {
		t.Fatalf("reuse landed at %d, want 1", idx)
	}
}

func TestVectorAliasRejected(t *testing.T) {
	tb, _ := NewTable(4)
	a, b := pci.NewBDF(0, 3, 0), pci.NewBDF(0, 4, 0)
	if _, err := tb.Alloc(a, 0x20, 0, false); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Alloc(a, 0x20, 1, false); err == nil {
		t.Fatal("duplicate (bdf,vector) accepted")
	}
	// A different BDF may reuse the vector number: vectors are per-source.
	if _, err := tb.Alloc(b, 0x20, 0, false); err != nil {
		t.Fatalf("cross-BDF vector reuse rejected: %v", err)
	}
}

func TestTableFull(t *testing.T) {
	tb, _ := NewTable(2)
	bdf := pci.NewBDF(0, 3, 0)
	for i := 0; i < 4; i++ {
		if _, err := tb.Alloc(bdf, uint8(i), 0, false); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tb.Alloc(bdf, 0x40, 0, false); err == nil {
		t.Fatal("overfull alloc accepted")
	}
}

func TestFreeBDF(t *testing.T) {
	tb, _ := NewTable(4)
	a, b := pci.NewBDF(0, 3, 0), pci.NewBDF(0, 4, 0)
	for i := 0; i < 3; i++ {
		if _, err := tb.Alloc(a, uint8(i), 0, false); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tb.Alloc(b, 9, 0, false); err != nil {
		t.Fatal(err)
	}
	freed := tb.FreeBDF(a)
	if len(freed) != 3 || tb.Live() != 1 || tb.LiveFor(a) != 0 || tb.LiveFor(b) != 1 {
		t.Fatalf("FreeBDF: freed=%v live=%d", freed, tb.Live())
	}
}

func TestDeliverPaths(t *testing.T) {
	r, cpu, dev := newRemapper(t, Config{TableOrder: 4})
	nic := pci.NewBDF(0, 3, 0)
	evil := pci.NewBDF(0, 6, 0)
	idx, err := r.Alloc(nic, 0x20, 2, false)
	if err != nil {
		t.Fatal(err)
	}

	var got []Delivery
	r.SetSink(func(d Delivery) { got = append(got, d) })

	if o := r.Deliver(nic, idx, 0, 0); o != Delivered {
		t.Fatalf("own vector: %v", o)
	}
	if o := r.Deliver(evil, idx, 0, 0); o != BlockedSourceMismatch {
		t.Fatalf("spoof: %v", o)
	}
	if o := r.Deliver(evil, 13, 0, 0); o != BlockedNotPresent {
		t.Fatalf("unmapped: %v", o)
	}
	if o := r.Deliver(evil, 1000, 0, 0); o != BlockedBadIndex {
		t.Fatalf("bad index: %v", o)
	}
	if len(got) != 1 || got[0].Vector != 0x20 || got[0].Core != 2 {
		t.Fatalf("deliveries: %+v", got)
	}
	st := r.Stats()
	if st.Delivered != 1 || st.Blocked() != 3 || st.CacheMisses == 0 {
		t.Fatalf("stats: %+v", st)
	}
	if cpu.Total(cycles.IntRemap) == 0 || dev.Total(cycles.IntRemap) == 0 {
		t.Fatal("no int-remap cycles charged")
	}
	// Second delivery hits the IEC.
	before := r.Stats().CacheHits
	if o := r.Deliver(nic, idx, 0, 0); o != Delivered {
		t.Fatal("second delivery refused")
	}
	if r.Stats().CacheHits != before+1 {
		t.Fatal("IEC hit not recorded")
	}
}

func TestStrictFreeClosesWindow(t *testing.T) {
	r, _, _ := newRemapper(t, Config{TableOrder: 4})
	nic := pci.NewBDF(0, 3, 0)
	idx, _ := r.Alloc(nic, 0x20, 0, false)
	r.Deliver(nic, idx, 0, 0) // warm the IEC
	if err := r.Free(idx); err != nil {
		t.Fatal(err)
	}
	if o := r.Deliver(nic, idx, 0, 0); o != BlockedNotPresent {
		t.Fatalf("replay after strict free: %v", o)
	}
	if r.Stats().StaleDelivered != 0 {
		t.Fatal("strict mode delivered stale")
	}
}

func TestDeferredFreeLeavesStaleWindow(t *testing.T) {
	r, _, _ := newRemapper(t, Config{TableOrder: 4, DeferredInv: true, DeferBatch: 8})
	nic := pci.NewBDF(0, 3, 0)
	idx, _ := r.Alloc(nic, 0x20, 0, false)
	r.Deliver(nic, idx, 0, 0) // warm the IEC
	if err := r.Free(idx); err != nil {
		t.Fatal(err)
	}
	if r.PendingInvalidations() != 1 {
		t.Fatalf("pending = %d", r.PendingInvalidations())
	}
	// Stale window: the IEC still delivers the freed entry.
	if o := r.Deliver(nic, idx, 0, 0); o != Delivered {
		t.Fatalf("stale replay blocked too early: %v", o)
	}
	if r.Stats().StaleDelivered != 1 {
		t.Fatalf("stale not counted: %+v", r.Stats())
	}
	// The forced flush closes it.
	r.FlushIEC()
	if r.PendingInvalidations() != 0 {
		t.Fatal("flush left queue")
	}
	if o := r.Deliver(nic, idx, 0, 0); o != BlockedNotPresent {
		t.Fatalf("replay after flush: %v", o)
	}
}

func TestDeferredBatchFlush(t *testing.T) {
	r, _, _ := newRemapper(t, Config{TableOrder: 6, DeferredInv: true, DeferBatch: 4})
	nic := pci.NewBDF(0, 3, 0)
	for i := 0; i < 4; i++ {
		idx, err := r.Alloc(nic, uint8(i), 0, false)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Free(idx); err != nil {
			t.Fatal(err)
		}
	}
	if r.PendingInvalidations() != 0 {
		t.Fatalf("batch did not flush: pending=%d", r.PendingInvalidations())
	}
	if r.Stats().IECGlobalFlushes != 1 {
		t.Fatalf("flushes = %d", r.Stats().IECGlobalFlushes)
	}
}

func TestPassThroughDelivers(t *testing.T) {
	r, _, _ := newRemapper(t, Config{PassThrough: true})
	var got []Delivery
	r.SetSink(func(d Delivery) { got = append(got, d) })
	if o := r.Deliver(pci.NewBDF(0, 3, 0), -1, 0x24, 3); o != Delivered {
		t.Fatalf("pass-through blocked: %v", o)
	}
	if len(got) != 1 || got[0].Vector != 0x24 || got[0].Core != 3 || got[0].Index != -1 {
		t.Fatalf("delivery: %+v", got)
	}
}

func TestRetarget(t *testing.T) {
	r, _, _ := newRemapper(t, Config{TableOrder: 4})
	nic := pci.NewBDF(0, 3, 0)
	idx, _ := r.Alloc(nic, 0x20, 0, false)
	r.Deliver(nic, idx, 0, 0) // warm IEC with core 0
	if err := r.Retarget(idx, 5); err != nil {
		t.Fatal(err)
	}
	var got []Delivery
	r.SetSink(func(d Delivery) { got = append(got, d) })
	r.Deliver(nic, idx, 0, 0)
	if len(got) != 1 || got[0].Core != 5 {
		t.Fatalf("retargeted delivery: %+v", got)
	}
}

func TestSourceLatchAndDrop(t *testing.T) {
	r, _, _ := newRemapper(t, Config{TableOrder: 4})
	nic := pci.NewBDF(0, 3, 0)
	src, err := r.NewSource(nic, 0, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	var got []Delivery
	r.SetSink(func(d Delivery) { got = append(got, d) })

	// Three raises coalesce into one delivery.
	src.RaiseRx()
	src.RaiseRx()
	src.RaiseRx()
	src.FireRx()
	src.FireRx() // nothing pending: no second delivery
	if len(got) != 1 || got[0].Vector != VectorBase || got[0].Core != 1 {
		t.Fatalf("coalesced delivery: %+v", got)
	}

	// Dropped raises never deliver (queue reset semantics).
	src.RaiseTx()
	src.RaiseRx()
	if n := src.Drop(); n != 2 {
		t.Fatalf("Drop = %d", n)
	}
	src.FireRx()
	src.FireTx()
	if len(got) != 1 {
		t.Fatalf("post-drop replay: %+v", got)
	}

	// Close frees the IRTEs and silences the source.
	src.Close()
	src.RaiseRx()
	src.FireRx()
	if len(got) != 1 || r.Table().Live() != 0 {
		t.Fatalf("closed source leaked: live=%d deliveries=%d", r.Table().Live(), len(got))
	}
}

func TestSourceVectorsDistinctAcrossQueues(t *testing.T) {
	r, _, _ := newRemapper(t, Config{TableOrder: 6})
	nic := pci.NewBDF(0, 3, 0)
	seen := map[uint8]bool{}
	for q := 0; q < 4; q++ {
		src, err := r.NewSource(nic, q, q, true)
		if err != nil {
			t.Fatal(err)
		}
		rx, tx := src.Indices()
		for _, idx := range []int{rx, tx} {
			e, ok := r.Table().At(idx)
			if !ok || !e.Present {
				t.Fatalf("queue %d IRTE %d missing", q, idx)
			}
			if seen[e.Vector] {
				t.Fatalf("vector %#x aliased", e.Vector)
			}
			seen[e.Vector] = true
			if !e.Posted || e.DestCore != q {
				t.Fatalf("queue %d entry %+v", q, e)
			}
		}
	}
}
