package intremap

import "riommu/internal/pci"

// Source is one queue's pair of MSI-X vectors (Rx completion, Tx
// completion) plus the edge-triggered pending latch between the device
// model and the driver's reap paths. The device raises (RaiseRx/RaiseTx)
// when it completes work; the driver fires (FireRx/FireTx) when it services
// the queue, which coalesces any pending raises into one message through
// the remapper — the NAPI-style model the paper's interrupt-driven
// configuration assumes.
//
// Source implements the device-side device.IRQLine and the driver-side
// driver.QueueIRQ interfaces.
type Source struct {
	rem  *Remapper
	bdf  pci.BDF
	core int

	rxIdx, txIdx int // IRTE indices, -1 in pass-through
	rxVec, txVec uint8

	pendRx, pendTx uint32
	droppedRx      uint64
	droppedTx      uint64
	closed         bool
}

// VectorBase is the first vector number handed to queue 0 (the x86
// external-interrupt floor).
const VectorBase = 0x20

// NewSource allocates the Rx/Tx vector pair for one queue of a device,
// targeting destCore. In pass-through mode no IRTEs exist and deliveries
// use the vector/core values directly (compatibility format).
func (r *Remapper) NewSource(bdf pci.BDF, queue, destCore int, posted bool) (*Source, error) {
	s := &Source{
		rem:   r,
		bdf:   bdf,
		core:  destCore,
		rxIdx: -1,
		txIdx: -1,
		rxVec: uint8(VectorBase + 2*queue),
		txVec: uint8(VectorBase + 2*queue + 1),
	}
	if r.cfg.PassThrough {
		return s, nil
	}
	var err error
	if s.rxIdx, err = r.Alloc(bdf, s.rxVec, destCore, posted); err != nil {
		return nil, err
	}
	if s.txIdx, err = r.Alloc(bdf, s.txVec, destCore, posted); err != nil {
		_ = r.Free(s.rxIdx)
		return nil, err
	}
	return s, nil
}

// RaiseRx latches a pending Rx-completion interrupt (device side).
func (s *Source) RaiseRx() {
	if !s.closed {
		s.pendRx++
	}
}

// RaiseTx latches a pending Tx-completion interrupt (device side).
func (s *Source) RaiseTx() {
	if !s.closed {
		s.pendTx++
	}
}

// FireRx delivers the pending Rx interrupt, if any, through the remapper.
func (s *Source) FireRx() {
	if s.closed || s.pendRx == 0 {
		return
	}
	s.pendRx = 0
	s.rem.Deliver(s.bdf, s.rxIdx, s.rxVec, s.core)
}

// FireTx delivers the pending Tx interrupt, if any, through the remapper.
func (s *Source) FireTx() {
	if s.closed || s.pendTx == 0 {
		return
	}
	s.pendTx = 0
	s.rem.Deliver(s.bdf, s.txIdx, s.txVec, s.core)
}

// Drop discards all pending interrupt state without delivery (queue reset:
// a recovered queue must not replay pre-reset completions). It returns how
// many latched raises were discarded.
func (s *Source) Drop() int {
	n := int(s.pendRx) + int(s.pendTx)
	s.droppedRx += uint64(s.pendRx)
	s.droppedTx += uint64(s.pendTx)
	s.pendRx, s.pendTx = 0, 0
	return n
}

// Dropped returns the cumulative raises discarded by Drop.
func (s *Source) Dropped() uint64 { return s.droppedRx + s.droppedTx }

// Pending returns the currently latched (undelivered) raise count.
func (s *Source) Pending() int { return int(s.pendRx) + int(s.pendTx) }

// Close drops pending state and frees the source's IRTEs; after Close the
// source neither latches nor delivers (the device is gone).
func (s *Source) Close() {
	if s.closed {
		return
	}
	s.Drop()
	s.closed = true
	if s.rxIdx >= 0 {
		_ = s.rem.Free(s.rxIdx)
	}
	if s.txIdx >= 0 {
		_ = s.rem.Free(s.txIdx)
	}
}

// Closed reports whether Close has run.
func (s *Source) Closed() bool { return s.closed }

// Indices returns the (rx, tx) IRTE indices (-1, -1 in pass-through).
func (s *Source) Indices() (int, int) { return s.rxIdx, s.txIdx }
