package intremap

import (
	"testing"

	"riommu/internal/pci"
)

// FuzzIRTEAllocator drives random alloc/free/retarget/deliver sequences
// against the remap table and checks the geometry invariants after every
// operation: the live count matches the present entries, per-BDF counts
// agree, the free hint never skips a free slot below it, and no (BDF,
// vector) pair ever aliases across two live entries.
func FuzzIRTEAllocator(f *testing.F) {
	f.Add([]byte{0x00, 0x11, 0x42, 0x80, 0x01, 0x23})
	f.Add([]byte{0xff, 0xfe, 0xfd, 0x00, 0x00, 0x00, 0x10, 0x20})
	f.Add([]byte{0x03, 0x03, 0x03, 0x43, 0x43, 0x83, 0xc3})
	f.Fuzz(func(t *testing.T, ops []byte) {
		tb, err := NewTable(5) // 32 entries: small enough to fill
		if err != nil {
			t.Fatal(err)
		}
		bdfs := []pci.BDF{pci.NewBDF(0, 3, 0), pci.NewBDF(0, 4, 0), pci.NewBDF(0, 5, 1)}
		var allocated []int
		for i := 0; i+1 < len(ops); i += 2 {
			op, arg := ops[i], ops[i+1]
			switch op % 4 {
			case 0: // alloc
				bdf := bdfs[int(arg)%len(bdfs)]
				vec := arg % 64
				idx, err := tb.Alloc(bdf, vec, int(arg)%4, arg&0x80 != 0)
				if err == nil {
					allocated = append(allocated, idx)
					e, ok := tb.At(idx)
					if !ok || !e.Present || e.BDF != bdf || e.Vector != vec {
						t.Fatalf("alloc produced wrong entry %+v", e)
					}
				}
			case 1: // free a previously allocated slot
				if len(allocated) > 0 {
					j := int(arg) % len(allocated)
					_ = tb.Free(allocated[j])
					allocated = append(allocated[:j], allocated[j+1:]...)
				}
			case 2: // free an arbitrary (possibly invalid) index
				idx := int(arg) % (tb.Size() + 4)
				if err := tb.Free(idx); err == nil {
					for j, a := range allocated {
						if a == idx {
							allocated = append(allocated[:j], allocated[j+1:]...)
							break
						}
					}
				}
			case 3: // retarget
				_ = tb.Retarget(int(arg)%(tb.Size()+4), int(arg)%8)
			}
			checkInvariants(t, tb)
		}
	})
}

func checkInvariants(t *testing.T, tb *Table) {
	t.Helper()
	live := 0
	perBDF := map[pci.BDF]int{}
	seen := map[uint32]int{}
	for i := 0; i < tb.Size(); i++ {
		e, ok := tb.At(i)
		if !ok {
			t.Fatalf("index %d out of range of its own table", i)
		}
		if !e.Present {
			continue
		}
		live++
		perBDF[e.BDF]++
		k := uint32(e.BDF)<<8 | uint32(e.Vector)
		if prev, dup := seen[k]; dup {
			t.Fatalf("(bdf,vector) alias: entries %d and %d both hold %s/%#x",
				prev, i, e.BDF, e.Vector)
		}
		seen[k] = i
	}
	if live != tb.Live() {
		t.Fatalf("live count drift: counted %d, table says %d", live, tb.Live())
	}
	for bdf, n := range perBDF {
		if tb.LiveFor(bdf) != n {
			t.Fatalf("per-BDF drift for %s: counted %d, table says %d", bdf, n, tb.LiveFor(bdf))
		}
	}
	// Allocation must still succeed whenever a slot is free.
	if tb.Live() < tb.Size() {
		probe := pci.NewBDF(7, 7, 7)
		idx, err := tb.Alloc(probe, 0xff, 0, false)
		if err != nil {
			t.Fatalf("alloc failed with %d free slots: %v", tb.Size()-tb.Live(), err)
		}
		if e, _ := tb.At(idx); !e.Present {
			t.Fatal("probe alloc not present")
		}
		if err := tb.Free(idx); err != nil {
			t.Fatalf("probe free: %v", err)
		}
	}
}
