package intremap

import (
	"riommu/internal/cycles"
	"riommu/internal/pci"
)

// Outcome classifies what the remapping hardware did with one interrupt
// message. Every blocked message carries the reason it was refused, so the
// campaign gate can verify that nothing was silently dropped or silently
// let through.
type Outcome int

const (
	// Delivered: the message passed remapping and reached a core.
	Delivered Outcome = iota
	// BlockedBadIndex: the remappable-format handle was outside the table.
	BlockedBadIndex
	// BlockedNotPresent: the IRTE was not present (never allocated, or
	// already invalidated in the IEC as well).
	BlockedNotPresent
	// BlockedSourceMismatch: source-id verification failed — the requester
	// BDF did not match the IRTE's owner (a spoofed interrupt).
	BlockedSourceMismatch
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case Delivered:
		return "delivered"
	case BlockedBadIndex:
		return "blocked/bad-index"
	case BlockedNotPresent:
		return "blocked/not-present"
	case BlockedSourceMismatch:
		return "blocked/source-mismatch"
	default:
		return "outcome(?)"
	}
}

// Delivery describes one interrupt that reached a core.
type Delivery struct {
	Source pci.BDF // requester on the wire
	Index  int     // IRTE index, -1 in pass-through (compatibility format)
	Vector uint8
	Core   int
	Posted bool
	// Stale is set when the delivery came from an IEC entry whose backing
	// IRTE has since been freed or rewritten — the deferred-invalidation
	// window in action. The remapper knows this (it owns the table) but
	// real hardware would not; the shadow oracle judges independently.
	Stale bool
}

// Observer mirrors table maintenance and deliveries into an external
// recorder (the interrupt shadow oracle). Implementations must not charge
// clocks or consume randomness.
type Observer interface {
	OnIRTEAlloc(index int, e IRTE)
	OnIRTEFree(index int, e IRTE)
	OnIRTERetarget(index int, e IRTE)
	OnIntDelivered(d Delivery)
	OnIntBlocked(src pci.BDF, index int, o Outcome)
}

// Stats counts remapper activity. All counters are cumulative.
type Stats struct {
	Requested      uint64 // total messages presented to the remapper
	Delivered      uint64
	PostedDeliv    uint64 // subset of Delivered using posted delivery
	StaleDelivered uint64 // subset of Delivered from a stale IEC entry

	BlockedBadIndex       uint64
	BlockedNotPresent     uint64
	BlockedSourceMismatch uint64

	CacheHits   uint64
	CacheMisses uint64

	Allocs, Frees, Retargets uint64
	IECInvEntries            uint64 // strict per-entry IEC invalidations
	IECDeferQueued           uint64 // deferred invalidations queued
	IECGlobalFlushes         uint64
}

// Blocked returns the total number of refused messages.
func (s Stats) Blocked() uint64 {
	return s.BlockedBadIndex + s.BlockedNotPresent + s.BlockedSourceMismatch
}

// Config selects the remapper's policy.
type Config struct {
	// TableOrder is log2 of the IRT size (default 8 → 256 entries).
	TableOrder int
	// PassThrough disables remapping entirely (none/hwpt/swpt modes):
	// compatibility-format messages deliver unchecked using the hints the
	// source supplies. No table exists.
	PassThrough bool
	// DeferredInv queues IEC invalidations and amortizes them with one
	// global flush per batch (defer/defer+ modes), opening the
	// stale-delivery window. When false, every free invalidates its IEC
	// entry synchronously (strict and rIOMMU modes: the table is small and
	// interrupt frees are rare, so there is nothing to batch).
	DeferredInv bool
	// DeferBatch is the flush batch size (default 32).
	DeferBatch int
}

// Remapper is the interrupt-remapping unit plus the OS-side table
// management. The device/IOMMU-side work (IRTE walks, IEC lookups) charges
// clkDev; the OS/core-side work (table programming, IEC invalidation,
// interrupt dispatch) charges clkCPU — mirroring the CPU/Dev split of the
// DMA side. Both charge component cycles.IntRemap.
type Remapper struct {
	cfg   Config
	cpu   *cycles.Clock
	dev   *cycles.Clock
	model *cycles.Model

	table  *Table
	iec    map[int]IRTE // interrupt entry cache: index -> entry snapshot
	deferQ []int        // IEC invalidations awaiting the batched flush

	obs  Observer
	sink func(Delivery)

	stats Stats
}

// New builds a remapper charging the given clocks.
func New(cfg Config, cpu, dev *cycles.Clock, model *cycles.Model) (*Remapper, error) {
	if cfg.TableOrder == 0 {
		cfg.TableOrder = 8
	}
	if cfg.DeferBatch == 0 {
		cfg.DeferBatch = 32
	}
	r := &Remapper{cfg: cfg, cpu: cpu, dev: dev, model: model}
	if !cfg.PassThrough {
		t, err := NewTable(cfg.TableOrder)
		if err != nil {
			return nil, err
		}
		r.table = t
		r.iec = make(map[int]IRTE)
	}
	return r, nil
}

// SetObserver installs the shadow oracle mirror.
func (r *Remapper) SetObserver(o Observer) { r.obs = o }

// SetSink installs a delivery callback (the equivalence recorder, or the
// multicore engine's per-core accounting). Called only for delivered
// interrupts, after clock charges.
func (r *Remapper) SetSink(fn func(Delivery)) { r.sink = fn }

// Stats returns a copy of the counters.
func (r *Remapper) Stats() Stats { return r.stats }

// PassThrough reports whether the remapper is in compatibility mode.
func (r *Remapper) PassThrough() bool { return r.cfg.PassThrough }

// Table exposes the remap table (nil in pass-through mode).
func (r *Remapper) Table() *Table { return r.table }

// PendingInvalidations returns the number of queued (un-flushed) IEC
// invalidations in deferred mode.
func (r *Remapper) PendingInvalidations() int { return len(r.deferQ) }

// Alloc programs a new IRTE for (bdf, vector) → destCore. The programming
// write is charged CPU-side (an uncached table write plus fence).
func (r *Remapper) Alloc(bdf pci.BDF, vector uint8, destCore int, posted bool) (int, error) {
	if r.cfg.PassThrough {
		return -1, nil
	}
	idx, err := r.table.Alloc(bdf, vector, destCore, posted)
	if err != nil {
		return -1, err
	}
	r.cpu.Charge(cycles.IntRemap, r.model.IRTEWalk)
	r.stats.Allocs++
	if r.obs != nil {
		e, _ := r.table.At(idx)
		r.obs.OnIRTEAlloc(idx, e)
	}
	return idx, nil
}

// Free clears an IRTE and invalidates its IEC entry — synchronously in
// strict mode, queued for the amortized global flush in deferred mode.
func (r *Remapper) Free(index int) error {
	if r.cfg.PassThrough {
		return nil
	}
	e, ok := r.table.At(index)
	if !ok || !e.Present {
		if !ok {
			return ErrBadIndex
		}
		return ErrNotPresent
	}
	if err := r.table.Free(index); err != nil {
		return err
	}
	r.stats.Frees++
	r.invalidate(index)
	if r.obs != nil {
		r.obs.OnIRTEFree(index, e)
	}
	return nil
}

// FreeBDF tears down every IRTE owned by bdf (surprise removal / detach)
// and returns how many were freed.
func (r *Remapper) FreeBDF(bdf pci.BDF) int {
	if r.cfg.PassThrough {
		return 0
	}
	type freed struct {
		i int
		e IRTE
	}
	var fs []freed
	for i := 0; i < r.table.Size(); i++ {
		if e, _ := r.table.At(i); e.Present && e.BDF == bdf {
			fs = append(fs, freed{i, e})
		}
	}
	for _, f := range fs {
		_ = r.table.Free(f.i)
		r.stats.Frees++
		r.invalidate(f.i)
		if r.obs != nil {
			r.obs.OnIRTEFree(f.i, f.e)
		}
	}
	return len(fs)
}

// Retarget moves a live IRTE to a new destination core and invalidates its
// IEC entry so the change takes effect.
func (r *Remapper) Retarget(index, destCore int) error {
	if r.cfg.PassThrough {
		return nil
	}
	if err := r.table.Retarget(index, destCore); err != nil {
		return err
	}
	r.cpu.Charge(cycles.IntRemap, r.model.IRTEWalk)
	r.stats.Retargets++
	r.invalidate(index)
	if r.obs != nil {
		e, _ := r.table.At(index)
		r.obs.OnIRTERetarget(index, e)
	}
	return nil
}

// invalidate removes index from the IEC per policy.
func (r *Remapper) invalidate(index int) {
	if r.cfg.DeferredInv {
		r.deferQ = append(r.deferQ, index)
		r.cpu.Charge(cycles.IntRemap, r.model.IECDeferOp)
		r.stats.IECDeferQueued++
		if len(r.deferQ) >= r.cfg.DeferBatch {
			r.flushIEC(false)
		}
		return
	}
	delete(r.iec, index)
	r.cpu.Charge(cycles.IntRemap, r.model.IECInvEntry)
	r.stats.IECInvEntries++
}

// FlushIEC forces the global IEC flush, draining any queued deferred
// invalidations (device teardown flushes in-flight invalidations).
func (r *Remapper) FlushIEC() {
	if r.cfg.PassThrough {
		return
	}
	r.flushIEC(true)
}

func (r *Remapper) flushIEC(counted bool) {
	if counted {
		r.cpu.Charge(cycles.IntRemap, r.model.IECGlobalFlush)
	} else {
		// Amortized behind the queue ops already counted, like the DMA
		// side's deferred global IOTLB flush.
		r.cpu.ChargeFree(cycles.IntRemap, r.model.IECGlobalFlush)
	}
	r.iec = make(map[int]IRTE)
	r.deferQ = r.deferQ[:0]
	r.stats.IECGlobalFlushes++
}

// Deliver presents one interrupt message to the remapping unit.
//
// src is the requester id on the wire; index the remappable-format handle.
// hintVector/hintCore describe what the raw compatibility-format message
// would carry — used verbatim in pass-through mode (no remapping hardware)
// so that delivery logs are comparable across protection modes.
func (r *Remapper) Deliver(src pci.BDF, index int, hintVector uint8, hintCore int) Outcome {
	r.stats.Requested++
	if r.cfg.PassThrough {
		r.cpu.Charge(cycles.IntRemap, r.model.IntDeliver)
		r.stats.Delivered++
		r.emit(Delivery{Source: src, Index: -1, Vector: hintVector, Core: hintCore})
		return Delivered
	}
	if index < 0 || index >= r.table.Size() {
		// Caught by the geometry check before any table fetch.
		r.dev.Charge(cycles.IntRemap, r.model.IRTECacheHit)
		r.stats.BlockedBadIndex++
		r.blocked(src, index, BlockedBadIndex)
		return BlockedBadIndex
	}
	e, cached := r.iec[index]
	if cached {
		r.dev.Charge(cycles.IntRemap, r.model.IRTECacheHit)
		r.stats.CacheHits++
	} else {
		r.dev.Charge(cycles.IntRemap, r.model.IRTEWalk)
		r.stats.CacheMisses++
		e, _ = r.table.At(index)
		if e.Present {
			r.iec[index] = e
		}
	}
	if !e.Present {
		r.stats.BlockedNotPresent++
		r.blocked(src, index, BlockedNotPresent)
		return BlockedNotPresent
	}
	if e.BDF != src {
		// Source-id verification (SVT): requester must own the IRTE.
		r.stats.BlockedSourceMismatch++
		r.blocked(src, index, BlockedSourceMismatch)
		return BlockedSourceMismatch
	}
	cur, _ := r.table.At(index)
	stale := cached && (!cur.Present || cur != e)
	if e.Posted {
		r.cpu.Charge(cycles.IntRemap, r.model.IntPost)
		r.stats.PostedDeliv++
	} else {
		r.cpu.Charge(cycles.IntRemap, r.model.IntDeliver)
	}
	r.stats.Delivered++
	if stale {
		r.stats.StaleDelivered++
	}
	r.emit(Delivery{Source: src, Index: index, Vector: e.Vector, Core: e.DestCore, Posted: e.Posted, Stale: stale})
	return Delivered
}

func (r *Remapper) emit(d Delivery) {
	if r.sink != nil {
		r.sink(d)
	}
	if r.obs != nil {
		r.obs.OnIntDelivered(d)
	}
}

func (r *Remapper) blocked(src pci.BDF, index int, o Outcome) {
	if r.obs != nil {
		r.obs.OnIntBlocked(src, index, o)
	}
}
