// Package intremap models the interrupt-remapping half of the IOMMU: the
// VT-d-style interrupt remap table (IRT), its per-entry interrupt entry
// cache (IEC), and the delivery path that turns a device's remappable-format
// MSI/MSI-X message into a (vector, core) dispatch — or blocks it.
//
// The paper (§2, §6) models only DMA translation; this package supplies the
// other half so the chaos campaigns can exercise the full hot-plug attack
// surface: an interrupt from a hostile or vanished device must never reach a
// core it does not own. The same costing discipline applies as on the DMA
// side: every hardware walk, cache hit, invalidation, and dispatch charges a
// virtual clock (component cycles.IntRemap), and the deferred modes reuse
// the batched-invalidation trade-off — a freed IRTE may keep delivering from
// the IEC until the amortized global flush, the interrupt analog of the
// stale-IOTLB window.
package intremap

import (
	"errors"
	"fmt"

	"riommu/internal/pci"
)

// IRTE is one interrupt-remap-table entry: the remapped destination of a
// remappable-format MSI, gated by the source-id (BDF) of the requester.
type IRTE struct {
	Present  bool
	BDF      pci.BDF // source-id the requester must match (SVT verification)
	Vector   uint8   // remapped vector delivered to the core
	DestCore int     // destination core (APIC destination analog)
	Posted   bool    // posted delivery (descriptor write + notify) vs direct dispatch
}

// Table errors.
var (
	ErrTableFull   = errors.New("intremap: remap table full")
	ErrBadIndex    = errors.New("intremap: IRTE index out of range")
	ErrNotPresent  = errors.New("intremap: IRTE not present")
	ErrVectorInUse = errors.New("intremap: vector already allocated for source")
	ErrTableGeom   = errors.New("intremap: table size must be a power of two")
)

// Table is the in-memory interrupt remap table: a power-of-two array of
// IRTEs with lowest-free-index allocation (deterministic, like the hardware
// table the OS scans for a free slot). It additionally enforces the OS-level
// invariant that a (source BDF, vector) pair maps to at most one live IRTE,
// so vectors never alias across entries of the same device.
type Table struct {
	entries []IRTE
	live    int
	hint    int             // lowest possibly-free index
	byKey   map[uint32]int  // (bdf,vector) -> live index
	byBDF   map[pci.BDF]int // live-entry count per source
}

func key(bdf pci.BDF, vector uint8) uint32 {
	return uint32(bdf)<<8 | uint32(vector)
}

// NewTable builds a table with 2^order entries (order 0..15).
func NewTable(order int) (*Table, error) {
	if order < 0 || order > 15 {
		return nil, fmt.Errorf("%w: order %d", ErrTableGeom, order)
	}
	return &Table{
		entries: make([]IRTE, 1<<order),
		byKey:   make(map[uint32]int),
		byBDF:   make(map[pci.BDF]int),
	}, nil
}

// Size returns the number of table slots.
func (t *Table) Size() int { return len(t.entries) }

// Live returns the number of present entries.
func (t *Table) Live() int { return t.live }

// LiveFor returns the number of present entries owned by bdf.
func (t *Table) LiveFor(bdf pci.BDF) int { return t.byBDF[bdf] }

// At returns a copy of the entry at index and whether the index is in range.
func (t *Table) At(index int) (IRTE, bool) {
	if index < 0 || index >= len(t.entries) {
		return IRTE{}, false
	}
	return t.entries[index], true
}

// Alloc claims the lowest free slot for (bdf, vector) targeting destCore.
func (t *Table) Alloc(bdf pci.BDF, vector uint8, destCore int, posted bool) (int, error) {
	if _, dup := t.byKey[key(bdf, vector)]; dup {
		return -1, fmt.Errorf("%w: %s vector %#x", ErrVectorInUse, bdf, vector)
	}
	if t.live == len(t.entries) {
		return -1, ErrTableFull
	}
	i := t.hint
	for t.entries[i].Present {
		i++
		if i == len(t.entries) {
			i = 0
		}
	}
	t.entries[i] = IRTE{Present: true, BDF: bdf, Vector: vector, DestCore: destCore, Posted: posted}
	t.live++
	t.hint = i + 1
	if t.hint == len(t.entries) {
		t.hint = 0
	}
	t.byKey[key(bdf, vector)] = i
	t.byBDF[bdf]++
	return i, nil
}

// Free clears the entry at index.
func (t *Table) Free(index int) error {
	if index < 0 || index >= len(t.entries) {
		return ErrBadIndex
	}
	e := t.entries[index]
	if !e.Present {
		return ErrNotPresent
	}
	delete(t.byKey, key(e.BDF, e.Vector))
	if t.byBDF[e.BDF]--; t.byBDF[e.BDF] == 0 {
		delete(t.byBDF, e.BDF)
	}
	t.entries[index] = IRTE{}
	t.live--
	if index < t.hint {
		t.hint = index
	}
	return nil
}

// FreeBDF clears every entry owned by bdf and returns the freed indices in
// ascending order (surprise removal tears down the whole device).
func (t *Table) FreeBDF(bdf pci.BDF) []int {
	var freed []int
	for i := range t.entries {
		if t.entries[i].Present && t.entries[i].BDF == bdf {
			freed = append(freed, i)
		}
	}
	for _, i := range freed {
		_ = t.Free(i)
	}
	return freed
}

// Retarget redirects a live entry to a new destination core (interrupt
// affinity change), keeping source and vector.
func (t *Table) Retarget(index, destCore int) error {
	if index < 0 || index >= len(t.entries) {
		return ErrBadIndex
	}
	if !t.entries[index].Present {
		return ErrNotPresent
	}
	t.entries[index].DestCore = destCore
	return nil
}
