// Package cycles provides the deterministic virtual clock and the cycle cost
// model that every simulated component charges against.
//
// The reproduction follows the paper's validated performance methodology
// (§3.3, §5.1): for high-bandwidth I/O the throughput of the system is
// entirely determined by the number of CPU cycles the core spends per packet,
// dominated by IOVA map/unmap work. The authors simulated rIOMMU on real
// hardware by spending cycles (busy-waiting); we simulate all seven IOMMU
// protection modes by executing the real data-structure algorithms and
// charging a virtual clock with per-primitive costs calibrated against the
// paper's Table 1.
//
// The clock is strictly deterministic: no wall-clock time is ever consulted.
package cycles

import "fmt"

// Component identifies a row of the paper's Table 1 cost breakdown, plus the
// catch-all rows used elsewhere in the evaluation.
type Component int

// Table 1 components. MapIOVAAlloc..MapOther break down the map function;
// UnmapIOVAFind..UnmapOther break down unmap. Other components account for
// the remaining per-packet work ("other" bar of Figure 7) and device-side
// activity that the paper shows does not gate throughput.
const (
	MapIOVAAlloc   Component = iota // map: allocate an IOVA integer
	MapPageTable                    // map: insert translation into page table
	MapOther                        // map: remaining bookkeeping
	UnmapIOVAFind                   // unmap: find the IOVA in allocator structures
	UnmapIOVAFree                   // unmap: release the IOVA integer
	UnmapPageTable                  // unmap: remove translation from page table
	UnmapIOTLBInv                   // unmap: IOTLB invalidation (or defer queueing)
	UnmapOther                      // unmap: remaining bookkeeping
	Stack                           // TCP/IP + interrupt processing ("other" bar)
	App                             // application-level processing (Apache, Memcached)
	DeviceSide                      // device/IOMMU-side work (tracked, not throughput-gating)
	Recovery                        // fault handling: retries, watchdog resets, degradation
	LockContention                  // multi-core: spinlock acquire + backoff on shared structures
	IntRemap                        // interrupt remapping: IRTE walks, IEC maintenance, delivery
	Stage2                          // nested translation: stage-2 (GPA→HPA) walks, TLB upkeep, invalidations
	numComponents
)

var componentNames = [...]string{
	MapIOVAAlloc:   "map/iova-alloc",
	MapPageTable:   "map/page-table",
	MapOther:       "map/other",
	UnmapIOVAFind:  "unmap/iova-find",
	UnmapIOVAFree:  "unmap/iova-free",
	UnmapPageTable: "unmap/page-table",
	UnmapIOTLBInv:  "unmap/iotlb-inv",
	UnmapOther:     "unmap/other",
	Stack:          "stack",
	App:            "app",
	DeviceSide:     "device-side",
	Recovery:       "recovery",
	LockContention: "lock-contention",
	IntRemap:       "int-remap",
	Stage2:         "stage2",
}

// String returns the stable human-readable name of the component.
func (c Component) String() string {
	if c < 0 || int(c) >= len(componentNames) {
		return fmt.Sprintf("component(%d)", int(c))
	}
	return componentNames[c]
}

// NumComponents is the number of distinct accounting components.
const NumComponents = int(numComponents)

// Components lists every component in declaration order.
func Components() []Component {
	out := make([]Component, NumComponents)
	for i := range out {
		out[i] = Component(i)
	}
	return out
}

// Clock is a deterministic virtual CPU cycle counter with per-component
// attribution. The zero value is ready to use.
//
// Clock is not safe for concurrent use; the simulator is single-threaded by
// design (the paper's single-core server configuration).
type Clock struct {
	now     uint64
	byComp  [numComponents]uint64
	charges [numComponents]uint64 // number of Charge calls per component
}

// Now returns the current virtual time in cycles.
func (c *Clock) Now() uint64 { return c.now }

// Charge advances the clock by n cycles attributed to component comp.
func (c *Clock) Charge(comp Component, n uint64) {
	c.now += n
	c.byComp[comp] += n
	c.charges[comp]++
}

// ChargeFree attributes n cycles to comp without counting a new charge event.
// It is used for follow-on costs that belong to an operation already counted
// (e.g. the amortized global flush behind a deferred invalidation).
func (c *Clock) ChargeFree(comp Component, n uint64) {
	c.now += n
	c.byComp[comp] += n
}

// ChargeN records n charge events of cost cycles each against comp in one
// call. It is exactly equivalent to calling Charge(comp, cost) n times —
// same total, same event count — and exists so batched operations (e.g. a
// MapBatch of N ring entries) do not pay per-entry accounting overhead.
func (c *Clock) ChargeN(comp Component, n, cost uint64) {
	c.now += n * cost
	c.byComp[comp] += n * cost
	c.charges[comp] += n
}

// ChargeFreeN is the batched form of ChargeFree: n follow-on costs of cost
// cycles each, with no charge events counted.
func (c *Clock) ChargeFreeN(comp Component, n, cost uint64) {
	c.now += n * cost
	c.byComp[comp] += n * cost
}

// Total returns the cycles attributed to comp since the last Reset.
func (c *Clock) Total(comp Component) uint64 { return c.byComp[comp] }

// Count returns how many Charge events were recorded for comp.
func (c *Clock) Count(comp Component) uint64 { return c.charges[comp] }

// Average returns the mean cycles per Charge event for comp, or 0 if none.
func (c *Clock) Average(comp Component) float64 {
	if c.charges[comp] == 0 {
		return 0
	}
	return float64(c.byComp[comp]) / float64(c.charges[comp])
}

// Reset zeroes the clock and all per-component accounting.
func (c *Clock) Reset() {
	c.now = 0
	for i := range c.byComp {
		c.byComp[i] = 0
		c.charges[i] = 0
	}
}

// Snapshot captures the current per-component totals.
func (c *Clock) Snapshot() Snapshot {
	var s Snapshot
	s.Now = c.now
	copy(s.ByComponent[:], c.byComp[:])
	copy(s.Charges[:], c.charges[:])
	return s
}

// Restore overwrites the clock's entire accounting state with a previously
// captured snapshot. Together with Snapshot it lets a scheduler multiplex one
// physical Clock across several virtual cores: save the outgoing core's
// state, restore the incoming core's, and every component keeps charging the
// same *Clock pointer it was built with.
func (c *Clock) Restore(s Snapshot) {
	c.now = s.Now
	copy(c.byComp[:], s.ByComponent[:])
	copy(c.charges[:], s.Charges[:])
}

// Snapshot is an immutable copy of a Clock's accounting state.
type Snapshot struct {
	Now         uint64
	ByComponent [numComponents]uint64
	Charges     [numComponents]uint64
}

// Sub returns the accounting delta s - earlier.
func (s Snapshot) Sub(earlier Snapshot) Snapshot {
	var d Snapshot
	d.Now = s.Now - earlier.Now
	for i := range s.ByComponent {
		d.ByComponent[i] = s.ByComponent[i] - earlier.ByComponent[i]
		d.Charges[i] = s.Charges[i] - earlier.Charges[i]
	}
	return d
}

// Total returns the cycles attributed to comp in the snapshot.
func (s Snapshot) Total(comp Component) uint64 { return s.ByComponent[comp] }

// Average returns the mean cycles per charge for comp in the snapshot.
func (s Snapshot) Average(comp Component) float64 {
	if s.Charges[comp] == 0 {
		return 0
	}
	return float64(s.ByComponent[comp]) / float64(s.Charges[comp])
}
