package cycles

// Model holds the per-primitive cycle costs used by the simulated data
// structures and drivers. The defaults are calibrated against the paper's
// Table 1 (measured on the mlx setup: Xeon E3-1220 @ 3.10 GHz, Linux 3.4.64)
// so that the strict/strict+/defer/defer+ map/unmap breakdowns and
// C_none = 1,816 cycles/packet land near the published numbers.
//
// Costs come in two kinds:
//
//   - Fixed hardware/driver primitives (memory barrier, cacheline flush,
//     IOTLB invalidation) charged per invocation.
//   - Per-step algorithmic costs (red-black-tree node visit, radix-tree level)
//     multiplied by the number of steps the *real* algorithm actually takes,
//     so asymptotic pathologies (the Linux IOVA allocator's linear scans) are
//     reproduced by construction, not assumed.
type Model struct {
	// ClockGHz is the core clock speed S in GHz (paper: 3.10).
	ClockGHz float64

	// MemoryBarrier is the cost of one full memory barrier (wmb/mb pair in
	// the Linux driver paths).
	MemoryBarrier uint64

	// CachelineFlush is the cost of one clflush of a page-table cacheline,
	// needed when the IOMMU page walker is not coherent with CPU caches.
	CachelineFlush uint64

	// IOTLBInvEntry is the cost of invalidating a single IOTLB entry through
	// the invalidation queue and waiting for completion (Table 1: 2,127).
	IOTLBInvEntry uint64

	// IOTLBGlobalFlush is the cost of flushing the entire IOTLB (deferred
	// mode processes ~250 queued invalidations with one global flush).
	IOTLBGlobalFlush uint64

	// DeferQueueOp is the per-unmap cost of queueing a deferred invalidation
	// (Table 1 defer: iotlb inv = 9 cycles).
	DeferQueueOp uint64

	// RBNodeVisit is the cost of touching one red-black-tree node during the
	// Linux IOVA allocator's gap search (pointer chase, likely cache miss).
	RBNodeVisit uint64

	// RBFindVisit is the per-node cost of the logarithmic lookup performed
	// when unmapping (finding the iova struct by address).
	RBFindVisit uint64

	// RBInsertFixed is the fixed overhead of rb-insert rebalancing beyond
	// the search itself; RBEraseFixed the same for rb_erase plus the iova
	// struct free (Table 1 strict "iova free": 159).
	RBInsertFixed uint64
	RBEraseFixed  uint64

	// ConstFindVisit is the per-node lookup cost in the "+" allocator's
	// tree, which holds live plus cached-free ranges and is therefore
	// deeper (Table 1: strict+ "iova find" 418 vs strict 249).
	ConstFindVisit uint64

	// FreelistOp is the cost of a constant-time allocator operation in the
	// "+" modes (magazine/freelist push or pop; Table 1 strict+: 92).
	FreelistOp uint64

	// PTELevelWrite is the cost of updating one level of the radix page
	// table (entry write + dirty accounting), excluding barriers/flushes.
	PTELevelWrite uint64

	// PTELevelWalk is the software cost of descending one radix level while
	// locating the leaf PTE slot.
	PTELevelWalk uint64

	// PTEMapInit is the extra leaf set-up work on map (present-bit logic,
	// permission encoding, dirty accounting) that unmap does not pay,
	// accounting for Table 1's map/page-table (588) exceeding unmap's (438).
	PTEMapInit uint64

	// MapFixed / UnmapFixed are the remaining fixed map/unmap bookkeeping
	// ("other" rows of Table 1: 44 and 26 cycles in strict mode).
	MapFixed   uint64
	UnmapFixed uint64

	// DeferUnmapExtra is the extra unmap bookkeeping in deferred mode
	// (managing the flush queue; Table 1 defer "other": 205 vs 26).
	DeferUnmapExtra uint64

	// rIOMMU driver costs (Figure 11). Calibrated so that on the mlx
	// profile riommu ≈ 0.77× and riommu− ≈ 0.52× the no-IOMMU throughput
	// (§5.2): roughly 135 cycles per map and 120 per unmap in coherent
	// mode, with sync_mem adding a flush + barrier per op when incoherent
	// (the paper's "~1.1K cycles per packet" delta for 4 ops).
	//
	// RMapAllocFixed: the locked tail/nmapped increments (IOVA allocation).
	// RPTEWrite: filling or clearing one 128-bit rPTE.
	// RMapFixed: remaining map bookkeeping (IOVA packing, checks).
	// RUnmapFreeFixed: the nmapped decrement (IOVA deallocation).
	// RUnmapFixed: remaining unmap bookkeeping.
	RMapAllocFixed  uint64
	RPTEWrite       uint64
	RMapFixed       uint64
	RUnmapFreeFixed uint64
	RUnmapFixed     uint64

	// PassthroughOp is the per-(un)map cost of the kernel's DMA-API
	// abstraction layer when the IOMMU is enabled in pass-through mode:
	// the map/unmap calls still run, translate nothing, and burn ~200
	// cycles per packet in total (§5.1's HWpt/SWpt observation; mlx has 4
	// ops per packet, hence 50 per op).
	PassthroughOp uint64

	// IOTLBMiss is the device-side cost of a baseline IOMMU page walk on an
	// IOTLB miss (§5.3 measured ~1,532 cycles ≈ 0.5 µs). Charged to
	// DeviceSide: it does not gate throughput in the interrupt-driven
	// model, but is visible to the §5.3 polling microbenchmark.
	IOTLBMiss uint64

	// RIOTLBFetch is the device-side cost of an rIOMMU flat-table fetch
	// that was not satisfied by the prefetched next entry (one DRAM read).
	RIOTLBFetch uint64

	// Interrupt remapping costs (VT-d-style, §2 analog for the MSI path).
	//
	// IRTEWalk: hardware fetch of one interrupt-remap-table entry on an
	// interrupt-entry-cache miss (an uncached DRAM read plus source-id
	// validation), charged device-side like the IOTLB walks.
	// IRTECacheHit: an IEC hit — on-die lookup, roughly an L2 access.
	// IECInvEntry: invalidating one IEC entry through the invalidation
	// queue and waiting for completion (same queued-invalidation machinery
	// as IOTLBInvEntry, slightly cheaper: no page-walk state to fence).
	// IECGlobalFlush: flushing the whole IEC (the deferred path amortizes
	// one flush over a batch of queued frees).
	// IECDeferOp: queueing one deferred IEC invalidation.
	// IntDeliver: core-side interrupt dispatch (IDT vectoring + EOI).
	// IntPost: posted delivery — writing the posted-interrupt descriptor
	// and sending the notification event instead of a full dispatch.
	IRTEWalk       uint64
	IRTECacheHit   uint64
	IECInvEntry    uint64
	IECGlobalFlush uint64
	IECDeferOp     uint64
	IntDeliver     uint64
	IntPost        uint64

	// Two-stage (nested) translation costs, charged to the Stage2 component
	// of the hypervisor's clock. The stage-2 table is the same 4-level radix
	// structure as the baseline IOMMU's, but it is walked by hardware only on
	// a stage-2 TLB miss and maintained by the hypervisor, not the guest.
	//
	// Stage2Walk: a hardware GPA→HPA radix walk on a stage-2 TLB miss.
	// Cheaper than IOTLBMiss: no context-entry fetch — the device directory
	// already pinned the domain (cf. the shared stage-2 design of Koenig et
	// al. for RISC-V SVA IOMMUs).
	// Stage2InvEntry: invalidating one stage-2 TLB entry through the
	// per-domain invalidation queue and waiting for completion.
	// Stage2GlobalFlush: flushing a domain's entire stage-2 TLB (teardown,
	// or the batch drain of a flooded invalidation queue).
	// Stage2MapPage / Stage2UnmapPage: hypervisor-side bookkeeping per
	// stage-2 page beyond the radix-table writes themselves (frame ledger,
	// ballooning accounting) — the PiBooster-style paravirtual split keeps
	// these off the guest's map/unmap path entirely.
	// BalloonOp: the per-page cost of a balloon hypercall, charged to the
	// calling guest's core (the one stage-2 operation guests can trigger).
	Stage2Walk        uint64
	Stage2InvEntry    uint64
	Stage2GlobalFlush uint64
	Stage2MapPage     uint64
	Stage2UnmapPage   uint64
	BalloonOp         uint64

	// HotAttach / HotDetach are the lifecycle-transition costs of bringing
	// a hot-plugged device to Live (config-space setup, MSI-X table init)
	// and of tearing one down after surprise removal (route teardown,
	// draining in-flight invalidations). Charged to the Recovery component.
	HotAttach uint64
	HotDetach uint64
}

// DefaultModel returns the cost model calibrated to the paper's mlx setup.
func DefaultModel() Model {
	return Model{
		ClockGHz:          3.10,
		MemoryBarrier:     30,
		CachelineFlush:    250,
		IOTLBInvEntry:     2127,
		IOTLBGlobalFlush:  2150,
		DeferQueueOp:      9,
		RBNodeVisit:       60,
		RBFindVisit:       18,
		RBInsertFixed:     40,
		RBEraseFixed:      155,
		ConstFindVisit:    30,
		FreelistOp:        46,
		PTELevelWrite:     50,
		PTELevelWalk:      25,
		PTEMapInit:        130,
		MapFixed:          44,
		UnmapFixed:        26,
		DeferUnmapExtra:   180,
		PassthroughOp:     50,
		RMapAllocFixed:    25,
		RPTEWrite:         40,
		RMapFixed:         40,
		RUnmapFreeFixed:   15,
		RUnmapFixed:       35,
		IOTLBMiss:         1532,
		RIOTLBFetch:       180,
		IRTEWalk:          320,
		IRTECacheHit:      24,
		IECInvEntry:       1830,
		IECGlobalFlush:    1950,
		IECDeferOp:        9,
		IntDeliver:        640,
		IntPost:           150,
		Stage2Walk:        1180,
		Stage2InvEntry:    1940,
		Stage2GlobalFlush: 2050,
		Stage2MapPage:     90,
		Stage2UnmapPage:   70,
		BalloonOp:         420,
		HotAttach:         30000,
		HotDetach:         42000,
	}
}

// Scaled returns a copy of the model with the per-operation driver and
// hardware costs multiplied by f. It models a different machine generation:
// the paper's brcm setup (Linux 3.11, a different chipset) exhibits visibly
// cheaper per-(un)map costs than the mlx setup, as derived from the CPU
// ratios of Table 2. The clock speed, the DRAM-latency-dominated rbtree
// node visits, and the device-side walk costs are machine physics and stay
// fixed.
func (m Model) Scaled(f float64) Model {
	scale := func(v *uint64) { *v = uint64(float64(*v)*f + 0.5) }
	for _, v := range []*uint64{
		&m.MemoryBarrier, &m.CachelineFlush, &m.IOTLBInvEntry,
		&m.IOTLBGlobalFlush, &m.DeferQueueOp, &m.RBFindVisit,
		&m.RBInsertFixed, &m.RBEraseFixed, &m.ConstFindVisit, &m.FreelistOp,
		&m.PTELevelWrite, &m.PTELevelWalk, &m.PTEMapInit, &m.MapFixed,
		&m.UnmapFixed, &m.DeferUnmapExtra, &m.RMapAllocFixed, &m.RPTEWrite,
		&m.RMapFixed, &m.RUnmapFreeFixed, &m.RUnmapFixed,
		&m.IECInvEntry, &m.IECGlobalFlush, &m.IECDeferOp,
		&m.IntDeliver, &m.IntPost, &m.HotAttach, &m.HotDetach,
		&m.Stage2InvEntry, &m.Stage2GlobalFlush, &m.Stage2MapPage,
		&m.Stage2UnmapPage, &m.BalloonOp,
	} {
		scale(v)
	}
	return m
}

// Seconds converts a cycle count to seconds under the model's clock.
func (m Model) Seconds(cyc uint64) float64 {
	return float64(cyc) / (m.ClockGHz * 1e9)
}

// Micros converts a cycle count to microseconds.
func (m Model) Micros(cyc uint64) float64 { return m.Seconds(cyc) * 1e6 }

// CyclesPerSecond returns S, the clock speed in cycles per second.
func (m Model) CyclesPerSecond() float64 { return m.ClockGHz * 1e9 }
