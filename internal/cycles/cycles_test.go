package cycles

import (
	"math"
	"testing"
	"testing/quick"
)

func TestClockZeroValue(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatalf("zero clock Now = %d, want 0", c.Now())
	}
	for _, comp := range Components() {
		if c.Total(comp) != 0 || c.Count(comp) != 0 {
			t.Fatalf("zero clock has accounting for %v", comp)
		}
	}
}

func TestChargeAdvancesAndAttributes(t *testing.T) {
	var c Clock
	c.Charge(MapIOVAAlloc, 100)
	c.Charge(MapIOVAAlloc, 50)
	c.Charge(UnmapIOTLBInv, 2127)

	if got := c.Now(); got != 2277 {
		t.Errorf("Now = %d, want 2277", got)
	}
	if got := c.Total(MapIOVAAlloc); got != 150 {
		t.Errorf("Total(MapIOVAAlloc) = %d, want 150", got)
	}
	if got := c.Count(MapIOVAAlloc); got != 2 {
		t.Errorf("Count(MapIOVAAlloc) = %d, want 2", got)
	}
	if got := c.Average(MapIOVAAlloc); got != 75 {
		t.Errorf("Average(MapIOVAAlloc) = %v, want 75", got)
	}
	if got := c.Total(UnmapIOTLBInv); got != 2127 {
		t.Errorf("Total(UnmapIOTLBInv) = %d, want 2127", got)
	}
}

func TestChargeFreeDoesNotCount(t *testing.T) {
	var c Clock
	c.Charge(UnmapIOTLBInv, 9)
	c.ChargeFree(UnmapIOTLBInv, 2150)
	if got := c.Count(UnmapIOTLBInv); got != 1 {
		t.Errorf("Count = %d, want 1", got)
	}
	if got := c.Total(UnmapIOTLBInv); got != 2159 {
		t.Errorf("Total = %d, want 2159", got)
	}
	if got := c.Now(); got != 2159 {
		t.Errorf("Now = %d, want 2159", got)
	}
}

func TestAverageEmpty(t *testing.T) {
	var c Clock
	if got := c.Average(Stack); got != 0 {
		t.Errorf("Average of uncharged component = %v, want 0", got)
	}
}

func TestReset(t *testing.T) {
	var c Clock
	c.Charge(Stack, 1816)
	c.Reset()
	if c.Now() != 0 || c.Total(Stack) != 0 || c.Count(Stack) != 0 {
		t.Errorf("Reset did not clear state: now=%d total=%d count=%d",
			c.Now(), c.Total(Stack), c.Count(Stack))
	}
}

func TestSnapshotSub(t *testing.T) {
	var c Clock
	c.Charge(MapPageTable, 588)
	before := c.Snapshot()
	c.Charge(MapPageTable, 590)
	c.Charge(App, 1000)
	delta := c.Snapshot().Sub(before)

	if got := delta.Total(MapPageTable); got != 590 {
		t.Errorf("delta Total(MapPageTable) = %d, want 590", got)
	}
	if got := delta.Total(App); got != 1000 {
		t.Errorf("delta Total(App) = %d, want 1000", got)
	}
	if got := delta.Now; got != 1590 {
		t.Errorf("delta Now = %d, want 1590", got)
	}
	if got := delta.Average(MapPageTable); got != 590 {
		t.Errorf("delta Average(MapPageTable) = %v, want 590", got)
	}
}

func TestSnapshotAverageEmpty(t *testing.T) {
	var s Snapshot
	if got := s.Average(App); got != 0 {
		t.Errorf("empty snapshot Average = %v, want 0", got)
	}
}

func TestComponentString(t *testing.T) {
	cases := map[Component]string{
		MapIOVAAlloc:  "map/iova-alloc",
		UnmapIOTLBInv: "unmap/iotlb-inv",
		Stack:         "stack",
		Component(99): "component(99)",
		Component(-1): "component(-1)",
	}
	for comp, want := range cases {
		if got := comp.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(comp), got, want)
		}
	}
}

func TestComponentsList(t *testing.T) {
	comps := Components()
	if len(comps) != NumComponents {
		t.Fatalf("len(Components()) = %d, want %d", len(comps), NumComponents)
	}
	for i, comp := range comps {
		if int(comp) != i {
			t.Errorf("Components()[%d] = %v", i, comp)
		}
	}
}

// Property: the clock total always equals the sum of per-component totals.
func TestClockConservation(t *testing.T) {
	f := func(charges []uint8) bool {
		var c Clock
		for i, n := range charges {
			comp := Component(i % NumComponents)
			c.Charge(comp, uint64(n))
		}
		var sum uint64
		for _, comp := range Components() {
			sum += c.Total(comp)
		}
		return sum == c.Now()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Snapshot/Sub is consistent with direct accounting.
func TestSnapshotSubProperty(t *testing.T) {
	f := func(a, b []uint8) bool {
		var c Clock
		for i, n := range a {
			c.Charge(Component(i%NumComponents), uint64(n))
		}
		s1 := c.Snapshot()
		for i, n := range b {
			c.Charge(Component(i%NumComponents), uint64(n))
		}
		d := c.Snapshot().Sub(s1)
		var want uint64
		for _, n := range b {
			want += uint64(n)
		}
		return d.Now == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestModelConversions(t *testing.T) {
	m := DefaultModel()
	if m.ClockGHz != 3.10 {
		t.Fatalf("ClockGHz = %v, want 3.10", m.ClockGHz)
	}
	// 3.1e9 cycles == 1 second.
	if got := m.Seconds(3_100_000_000); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("Seconds(3.1e9) = %v, want 1", got)
	}
	if got := m.Micros(3100); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("Micros(3100) = %v, want 1", got)
	}
	if got := m.CyclesPerSecond(); got != 3.1e9 {
		t.Errorf("CyclesPerSecond = %v, want 3.1e9", got)
	}
}

func TestDefaultModelTable1Anchors(t *testing.T) {
	m := DefaultModel()
	// The headline hardware costs must match Table 1's direct measurements.
	if m.IOTLBInvEntry != 2127 {
		t.Errorf("IOTLBInvEntry = %d, want 2127 (Table 1)", m.IOTLBInvEntry)
	}
	if m.DeferQueueOp != 9 {
		t.Errorf("DeferQueueOp = %d, want 9 (Table 1 defer iotlb inv)", m.DeferQueueOp)
	}
	if m.MapFixed != 44 {
		t.Errorf("MapFixed = %d, want 44 (Table 1 strict map other)", m.MapFixed)
	}
}

func TestScaledModel(t *testing.T) {
	m := DefaultModel()
	s := m.Scaled(0.5)
	// Driver/hardware per-op costs halve (rounded).
	if s.IOTLBInvEntry != 1064 {
		t.Errorf("scaled IOTLBInvEntry = %d, want 1064", s.IOTLBInvEntry)
	}
	if s.CachelineFlush != m.CachelineFlush/2 {
		t.Errorf("scaled CachelineFlush = %d", s.CachelineFlush)
	}
	if s.FreelistOp != m.FreelistOp/2 {
		t.Errorf("scaled FreelistOp = %d", s.FreelistOp)
	}
	// Machine physics stay fixed: clock, DRAM-bound rbtree visits,
	// device-side walk costs.
	if s.ClockGHz != m.ClockGHz {
		t.Error("Scaled must not change the clock")
	}
	if s.RBNodeVisit != m.RBNodeVisit {
		t.Error("Scaled must not change the DRAM-bound node visit cost")
	}
	if s.IOTLBMiss != m.IOTLBMiss || s.RIOTLBFetch != m.RIOTLBFetch {
		t.Error("Scaled must not change device-side costs")
	}
	// Scaling by 1 is the identity.
	if m.Scaled(1.0) != m {
		t.Error("Scaled(1.0) should be the identity")
	}
}
