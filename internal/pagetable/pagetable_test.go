package pagetable

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"riommu/internal/cycles"
	"riommu/internal/mem"
	"riommu/internal/pci"
)

func newSpace(t *testing.T, coherent bool) (*Space, *mem.PhysMem, *cycles.Clock) {
	t.Helper()
	mm := mustMem(t, 1024*mem.PageSize)
	clk := &cycles.Clock{}
	model := cycles.DefaultModel()
	s, err := NewSpace(mm, clk, &model, coherent)
	if err != nil {
		t.Fatal(err)
	}
	return s, mm, clk
}

func TestMapWalkUnmap(t *testing.T) {
	s, mm, _ := newSpace(t, false)
	target, _ := mm.AllocFrame()

	iova := uint64(0x42000)
	if err := s.Map(iova, target, pci.DirBidi); err != nil {
		t.Fatalf("Map: %v", err)
	}
	if s.Mapped() != 1 {
		t.Errorf("Mapped = %d, want 1", s.Mapped())
	}

	pa, perm, err := s.Walk(iova+0x123, pci.DirFromDevice)
	if err != nil {
		t.Fatalf("Walk: %v", err)
	}
	if pa != target.PA()+0x123 {
		t.Errorf("Walk pa = %#x, want %#x", pa, target.PA()+0x123)
	}
	if perm != pci.DirBidi {
		t.Errorf("Walk perm = %v, want bidi", perm)
	}

	if err := s.Unmap(iova); err != nil {
		t.Fatalf("Unmap: %v", err)
	}
	if s.Mapped() != 0 {
		t.Errorf("Mapped = %d after unmap", s.Mapped())
	}
	if _, _, err := s.Walk(iova, pci.DirFromDevice); err == nil {
		t.Fatal("Walk after Unmap should fault")
	}
}

func TestWalkFaultReasons(t *testing.T) {
	s, mm, _ := newSpace(t, true)
	target, _ := mm.AllocFrame()

	// Not present.
	_, _, err := s.Walk(0x5000, pci.DirToDevice)
	var f *Fault
	if !errors.As(err, &f) || f.Reason != FaultNotPresent {
		t.Errorf("unmapped walk fault = %v, want not-present", err)
	}

	// Permission: map Rx-only, attempt Tx.
	if err := s.Map(0x5000, target, pci.DirFromDevice); err != nil {
		t.Fatal(err)
	}
	_, _, err = s.Walk(0x5000, pci.DirToDevice)
	if !errors.As(err, &f) || f.Reason != FaultPermission {
		t.Errorf("perm walk fault = %v, want permission", err)
	}
	if f.Error() == "" {
		t.Error("empty fault message")
	}

	// Reserved: out of the 48-bit range.
	_, _, err = s.Walk(MaxIOVA, pci.DirToDevice)
	if !errors.As(err, &f) || f.Reason != FaultReserved {
		t.Errorf("reserved walk fault = %v, want reserved", err)
	}
}

func TestMapValidation(t *testing.T) {
	s, mm, _ := newSpace(t, true)
	target, _ := mm.AllocFrame()

	if err := s.Map(0x1001, target, pci.DirBidi); err == nil {
		t.Error("unaligned Map should fail")
	}
	if err := s.Map(MaxIOVA, target, pci.DirBidi); err == nil {
		t.Error("out-of-range Map should fail")
	}
	if err := s.Map(0x1000, target, pci.DirNone); err == nil {
		t.Error("Map with no permissions should fail")
	}
	if err := s.Map(0x1000, target, pci.DirBidi); err != nil {
		t.Fatal(err)
	}
	if err := s.Map(0x1000, target, pci.DirBidi); err == nil {
		t.Error("double Map should fail")
	}
}

func TestUnmapValidation(t *testing.T) {
	s, _, _ := newSpace(t, true)
	if err := s.Unmap(0x2000); err == nil {
		t.Error("Unmap of unmapped IOVA should fail")
	}
	if err := s.Unmap(MaxIOVA); err == nil {
		t.Error("Unmap out of range should fail")
	}
	if err := s.Unmap(0x2001); err == nil {
		t.Error("Unmap unaligned should fail")
	}
}

func TestDirectionalPermissions(t *testing.T) {
	s, mm, _ := newSpace(t, true)
	tx, _ := mm.AllocFrame()
	rx, _ := mm.AllocFrame()

	if err := s.Map(0x10000, tx, pci.DirToDevice); err != nil {
		t.Fatal(err)
	}
	if err := s.Map(0x11000, rx, pci.DirFromDevice); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Walk(0x10000, pci.DirToDevice); err != nil {
		t.Errorf("Tx walk on Tx mapping: %v", err)
	}
	if _, _, err := s.Walk(0x10000, pci.DirFromDevice); err == nil {
		t.Error("Rx walk on Tx mapping should fault")
	}
	if _, _, err := s.Walk(0x11000, pci.DirFromDevice); err != nil {
		t.Errorf("Rx walk on Rx mapping: %v", err)
	}
	if _, _, err := s.Walk(0x11000, pci.DirToDevice); err == nil {
		t.Error("Tx walk on Rx mapping should fault")
	}
}

func TestPageGranularitySharing(t *testing.T) {
	// Two "buffers" on the same page: baseline protection is page-granular
	// (§4) — unmapping is per page, so the whole page goes at once, and a
	// walk to any offset in a mapped page succeeds. This is the imprecision
	// rIOMMU eliminates; here we document the baseline behaviour.
	s, mm, _ := newSpace(t, true)
	target, _ := mm.AllocFrame()
	if err := s.Map(0x20000, target, pci.DirBidi); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Walk(0x20000+100, pci.DirFromDevice); err != nil {
		t.Errorf("offset 100: %v", err)
	}
	if _, _, err := s.Walk(0x20000+3000, pci.DirFromDevice); err != nil {
		t.Errorf("offset 3000 (second buffer on same page): %v", err)
	}
}

func TestIncoherentCostsMore(t *testing.T) {
	sInc, mmI, clkI := newSpace(t, false)
	sCoh, mmC, clkC := newSpace(t, true)
	fi, _ := mmI.AllocFrame()
	fc, _ := mmC.AllocFrame()

	if err := sInc.Map(0x3000, fi, pci.DirBidi); err != nil {
		t.Fatal(err)
	}
	if err := sCoh.Map(0x3000, fc, pci.DirBidi); err != nil {
		t.Fatal(err)
	}
	inc := clkI.Total(cycles.MapPageTable)
	coh := clkC.Total(cycles.MapPageTable)
	if inc <= coh {
		t.Errorf("incoherent map cost %d should exceed coherent %d", inc, coh)
	}
}

func TestMapCostCountsOneOperation(t *testing.T) {
	s, mm, clk := newSpace(t, false)
	f, _ := mm.AllocFrame()
	if err := s.Map(0x4000, f, pci.DirBidi); err != nil {
		t.Fatal(err)
	}
	if got := clk.Count(cycles.MapPageTable); got != 1 {
		t.Errorf("map charged %d operations, want 1", got)
	}
	if err := s.Unmap(0x4000); err != nil {
		t.Fatal(err)
	}
	if got := clk.Count(cycles.UnmapPageTable); got != 1 {
		t.Errorf("unmap charged %d operations, want 1", got)
	}
}

func TestDestroyFreesAllFrames(t *testing.T) {
	mm := mustMem(t, 1024*mem.PageSize)
	clk := &cycles.Clock{}
	model := cycles.DefaultModel()
	before := mm.FreeFrames()

	s, err := NewSpace(mm, clk, &model, true)
	if err != nil {
		t.Fatal(err)
	}
	target, _ := mm.AllocFrame()
	// Spread mappings across distinct subtrees to force intermediate tables.
	for i := 0; i < 16; i++ {
		iova := uint64(i) << 30 // distinct T2 subtrees
		if err := s.Map(iova, target, pci.DirBidi); err != nil {
			t.Fatal(err)
		}
	}
	if s.TableFrames() <= 1 {
		t.Error("expected intermediate tables to be allocated")
	}
	if err := s.Destroy(); err != nil {
		t.Fatal(err)
	}
	if err := mm.FreeFrame(target); err != nil {
		t.Fatal(err)
	}
	if got := mm.FreeFrames(); got != before {
		t.Errorf("frame leak: FreeFrames = %d, want %d", got, before)
	}
}

// Property: an arbitrary interleaving of maps/unmaps agrees with a shadow map.
func TestShadowConsistencyProperty(t *testing.T) {
	prop := func(seed int64, nops uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		mm := mustMem(t, 2048*mem.PageSize)
		clk := &cycles.Clock{}
		model := cycles.DefaultModel()
		s, err := NewSpace(mm, clk, &model, false)
		if err != nil {
			return false
		}
		target, _ := mm.AllocFrame()
		shadow := map[uint64]bool{}
		iovas := make([]uint64, 32)
		for i := range iovas {
			iovas[i] = uint64(rng.Intn(1<<24)) << mem.PageShift
		}
		for op := 0; op < int(nops); op++ {
			iova := iovas[rng.Intn(len(iovas))]
			if shadow[iova] {
				if err := s.Unmap(iova); err != nil {
					return false
				}
				delete(shadow, iova)
			} else {
				if err := s.Map(iova, target, pci.DirBidi); err != nil {
					return false
				}
				shadow[iova] = true
			}
		}
		// Verify every tracked IOVA agrees with the hardware walk.
		for _, iova := range iovas {
			_, _, err := s.Walk(iova, pci.DirFromDevice)
			if shadow[iova] != (err == nil) {
				return false
			}
		}
		if s.Mapped() != len(shadow) {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestHierarchyAttachLookup(t *testing.T) {
	mm := mustMem(t, 1024*mem.PageSize)
	clk := &cycles.Clock{}
	model := cycles.DefaultModel()

	h, err := NewHierarchy(mm)
	if err != nil {
		t.Fatal(err)
	}
	s1, _ := NewSpace(mm, clk, &model, true)
	s2, _ := NewSpace(mm, clk, &model, true)
	d1 := pci.NewBDF(0, 3, 0)
	d2 := pci.NewBDF(0, 3, 1) // same bus, shares context table
	d3 := pci.NewBDF(5, 0, 0)

	if err := h.Attach(d1, s1); err != nil {
		t.Fatal(err)
	}
	if err := h.Attach(d2, s2); err != nil {
		t.Fatal(err)
	}
	if err := h.Attach(d3, s1); err != nil {
		t.Fatal(err)
	}
	if err := h.Attach(d1, s2); err == nil {
		t.Error("duplicate attach should fail")
	}

	got, err := h.Lookup(d1)
	if err != nil || got != s1 {
		t.Errorf("Lookup(d1) = %v, %v; want s1", got, err)
	}
	got, err = h.Lookup(d2)
	if err != nil || got != s2 {
		t.Errorf("Lookup(d2) = %v, %v; want s2", got, err)
	}
	if _, err := h.Lookup(pci.NewBDF(9, 0, 0)); err == nil {
		t.Error("Lookup of unattached bus should fail")
	}
	if _, err := h.Lookup(pci.NewBDF(0, 4, 0)); err == nil {
		t.Error("Lookup of unattached devfn should fail")
	}

	if err := h.Detach(d2); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Lookup(d2); err == nil {
		t.Error("Lookup after Detach should fail")
	}
	if err := h.Detach(d2); err == nil {
		t.Error("double Detach should fail")
	}
	if h.Space(d1) != s1 {
		t.Error("Space(d1) != s1")
	}
	if err := h.Destroy(); err != nil {
		t.Fatal(err)
	}
}
