// Package pagetable implements the baseline IOMMU translation structures as
// specified by Intel VT-d and described in the paper's §2.2: a root table
// indexed by PCI bus number, context tables indexed by device+function, and a
// 4-level radix tree of I/O page tables mapping 48-bit IOVAs to physical
// frames. All tables live in simulated physical memory (package mem) and the
// hardware walk reads them from there, so translation is exercised against
// real bytes.
//
// The OS-side Map/Unmap operations charge the virtual clock for the work the
// paper attributes to the "page table" rows of Table 1: descending the radix
// tree, writing entries, and — when the I/O page walker is not coherent with
// the CPU caches — the explicit memory barriers and cacheline flushes needed
// to publish the update.
package pagetable

import (
	"fmt"

	"riommu/internal/cycles"
	"riommu/internal/mem"
	"riommu/internal/pci"
)

// Architectural geometry of the VT-d radix tree (§2.2).
const (
	// Levels is the depth of the radix tree (T1..T4).
	Levels = 4
	// IndexBits is the number of IOVA bits consumed per level.
	IndexBits = 9
	// EntriesPerTable is the fan-out of each table page (2^9).
	EntriesPerTable = 1 << IndexBits
	// VABits is the number of meaningful IOVA bits (36-bit VPN + 12-bit offset).
	VABits = Levels*IndexBits + mem.PageShift
	// MaxIOVA is the first IOVA beyond the translatable range.
	MaxIOVA = uint64(1) << VABits
)

// PTE bit layout (simplified VT-d second-level entry).
const (
	pteRead  = 1 << 0 // device may read (transmit direction)
	pteWrite = 1 << 1 // device may write (receive direction)
	pteAddr  = ^uint64(mem.PageMask) & ((1 << 52) - 1)
)

// FaultReason classifies why a walk failed, mirroring VT-d fault reporting.
type FaultReason int

const (
	// FaultNotPresent: a table or leaf entry along the path was absent.
	FaultNotPresent FaultReason = iota
	// FaultPermission: the leaf entry denies the requested direction.
	FaultPermission
	// FaultReserved: the IOVA exceeds the translatable range.
	FaultReserved
)

func (r FaultReason) String() string {
	switch r {
	case FaultNotPresent:
		return "not-present"
	case FaultPermission:
		return "permission"
	case FaultReserved:
		return "reserved"
	default:
		return fmt.Sprintf("fault(%d)", int(r))
	}
}

// Fault is an I/O page fault raised by a failed hardware walk or an invalid
// OS mapping operation.
type Fault struct {
	Reason FaultReason
	IOVA   uint64
	Want   pci.Dir
}

func (f *Fault) Error() string {
	return fmt.Sprintf("pagetable: I/O page fault (%s) iova=%#x dir=%s", f.Reason, f.IOVA, f.Want)
}

// Space is one I/O virtual address space (a protection domain): a 4-level
// radix tree rooted at a single table page.
type Space struct {
	mm       *mem.PhysMem
	clk      *cycles.Clock
	model    *cycles.Model
	coherent bool // is the I/O page walk coherent with CPU caches?

	root   mem.PFN
	tables []mem.PFN // every table frame ever allocated, for teardown/leak checks
	mapped int       // live leaf mappings
}

// NewSpace allocates an empty address space. coherent selects whether OS
// updates require explicit cacheline flushes (the paper's system was not
// coherent; Intel had only recently begun shipping coherent walkers).
func NewSpace(mm *mem.PhysMem, clk *cycles.Clock, model *cycles.Model, coherent bool) (*Space, error) {
	root, err := mm.AllocFrame()
	if err != nil {
		return nil, fmt.Errorf("pagetable: allocating root: %w", err)
	}
	return &Space{
		mm:       mm,
		clk:      clk,
		model:    model,
		coherent: coherent,
		root:     root,
		tables:   []mem.PFN{root},
	}, nil
}

// Root returns the physical frame of the top-level table (what a context
// entry points at).
func (s *Space) Root() mem.PFN { return s.root }

// Mapped returns the number of live leaf mappings.
func (s *Space) Mapped() int { return s.mapped }

// TableFrames returns how many table pages the tree currently owns.
func (s *Space) TableFrames() int { return len(s.tables) }

// indices splits the 36-bit virtual page number into the four 9-bit radix
// indices i1..i4.
func indices(iova uint64) [Levels]int {
	var ix [Levels]int
	vpn := iova >> mem.PageShift
	for l := Levels - 1; l >= 0; l-- {
		ix[l] = int(vpn & (EntriesPerTable - 1))
		vpn >>= IndexBits
	}
	return ix
}

func entryPA(table mem.PFN, index int) mem.PA {
	return table.PA() + mem.PA(index*8)
}

// syncEntry models publishing a table update to the IOMMU: a memory barrier
// always, plus a cacheline flush and trailing barrier when the walker is
// incoherent (the paper's sync_mem, Figure 11, applied to the baseline too).
func (s *Space) syncEntry(comp cycles.Component) {
	s.clk.ChargeFree(comp, s.model.MemoryBarrier)
	if !s.coherent {
		s.clk.ChargeFree(comp, s.model.CachelineFlush)
		s.clk.ChargeFree(comp, s.model.MemoryBarrier)
	}
}

// Map inserts the translation iova -> frame with the given permission mask.
// The IOVA must be page-aligned (baseline IOMMU protection is page-granular,
// §4) and previously unmapped. Intermediate tables are allocated on demand.
func (s *Space) Map(iova uint64, frame mem.PFN, perm pci.Dir) error {
	if iova >= MaxIOVA || iova&mem.PageMask != 0 {
		return &Fault{Reason: FaultReserved, IOVA: iova, Want: perm}
	}
	if perm == pci.DirNone {
		return fmt.Errorf("pagetable: mapping %#x with no permissions", iova)
	}
	s.clk.Charge(cycles.MapPageTable, 0) // count the operation; cycles accrue below
	ix := indices(iova)
	table := s.root
	for l := 0; l < Levels-1; l++ {
		s.clk.ChargeFree(cycles.MapPageTable, s.model.PTELevelWalk)
		pa := entryPA(table, ix[l])
		e, err := s.mm.ReadU64(pa)
		if err != nil {
			return err
		}
		if e&(pteRead|pteWrite) == 0 {
			next, err := s.mm.AllocFrame()
			if err != nil {
				return fmt.Errorf("pagetable: allocating level-%d table: %w", l+2, err)
			}
			s.tables = append(s.tables, next)
			e = uint64(next.PA()) | pteRead | pteWrite
			if err := s.mm.WriteU64(pa, e); err != nil {
				return err
			}
			s.clk.ChargeFree(cycles.MapPageTable, s.model.PTELevelWrite)
			s.syncEntry(cycles.MapPageTable)
		}
		table = mem.PFNOf(mem.PA(e & pteAddr))
	}
	leafPA := entryPA(table, ix[Levels-1])
	s.clk.ChargeFree(cycles.MapPageTable, s.model.PTELevelWalk)
	old, err := s.mm.ReadU64(leafPA)
	if err != nil {
		return err
	}
	if old&(pteRead|pteWrite) != 0 {
		return fmt.Errorf("pagetable: iova %#x already mapped", iova)
	}
	e := uint64(frame.PA()) & pteAddr
	if perm.Allows(pci.DirToDevice) || perm == pci.DirBidi {
		e |= pteRead
	}
	if perm.Allows(pci.DirFromDevice) || perm == pci.DirBidi {
		e |= pteWrite
	}
	if err := s.mm.WriteU64(leafPA, e); err != nil {
		return err
	}
	s.clk.ChargeFree(cycles.MapPageTable, s.model.PTELevelWrite+s.model.PTEMapInit)
	s.syncEntry(cycles.MapPageTable)
	s.mapped++
	return nil
}

// Unmap removes the translation for iova. It is an error to unmap an
// unmapped IOVA (the OS driver tracks liveness; a mismatch indicates a bug).
func (s *Space) Unmap(iova uint64) error {
	if iova >= MaxIOVA || iova&mem.PageMask != 0 {
		return &Fault{Reason: FaultReserved, IOVA: iova}
	}
	s.clk.Charge(cycles.UnmapPageTable, 0)
	ix := indices(iova)
	table := s.root
	for l := 0; l < Levels-1; l++ {
		s.clk.ChargeFree(cycles.UnmapPageTable, s.model.PTELevelWalk)
		e, err := s.mm.ReadU64(entryPA(table, ix[l]))
		if err != nil {
			return err
		}
		if e&(pteRead|pteWrite) == 0 {
			return &Fault{Reason: FaultNotPresent, IOVA: iova}
		}
		table = mem.PFNOf(mem.PA(e & pteAddr))
	}
	leafPA := entryPA(table, ix[Levels-1])
	s.clk.ChargeFree(cycles.UnmapPageTable, s.model.PTELevelWalk)
	old, err := s.mm.ReadU64(leafPA)
	if err != nil {
		return err
	}
	if old&(pteRead|pteWrite) == 0 {
		return &Fault{Reason: FaultNotPresent, IOVA: iova}
	}
	if err := s.mm.WriteU64(leafPA, 0); err != nil {
		return err
	}
	s.clk.ChargeFree(cycles.UnmapPageTable, s.model.PTELevelWrite)
	s.syncEntry(cycles.UnmapPageTable)
	s.mapped--
	return nil
}

// Walk performs the hardware page walk for iova: four dependent reads from
// simulated memory, returning the translated physical address and the leaf
// permissions. The caller (the IOMMU model) charges device-side cycles; Walk
// itself only touches memory.
func (s *Space) Walk(iova uint64, want pci.Dir) (mem.PA, pci.Dir, error) {
	if iova >= MaxIOVA {
		return 0, 0, &Fault{Reason: FaultReserved, IOVA: iova, Want: want}
	}
	ix := indices(iova)
	table := s.root
	var leaf uint64
	for l := 0; l < Levels; l++ {
		e, err := s.mm.ReadU64(entryPA(table, ix[l]))
		if err != nil {
			return 0, 0, err
		}
		if e&(pteRead|pteWrite) == 0 {
			return 0, 0, &Fault{Reason: FaultNotPresent, IOVA: iova, Want: want}
		}
		if l == Levels-1 {
			leaf = e
		} else {
			table = mem.PFNOf(mem.PA(e & pteAddr))
		}
	}
	perm := permOf(leaf)
	if !perm.Allows(want) {
		return 0, 0, &Fault{Reason: FaultPermission, IOVA: iova, Want: want}
	}
	return mem.PA(leaf&pteAddr) | mem.PA(iova&mem.PageMask), perm, nil
}

// Lookup is the OS-side (software) walk: it resolves iova to its physical
// address and permissions without enforcing a DMA direction. Used by the
// driver when tearing down a mapping; charges nothing.
func (s *Space) Lookup(iova uint64) (mem.PA, pci.Dir, error) {
	if iova >= MaxIOVA {
		return 0, 0, &Fault{Reason: FaultReserved, IOVA: iova}
	}
	ix := indices(iova)
	table := s.root
	var leaf uint64
	for l := 0; l < Levels; l++ {
		e, err := s.mm.ReadU64(entryPA(table, ix[l]))
		if err != nil {
			return 0, 0, err
		}
		if e&(pteRead|pteWrite) == 0 {
			return 0, 0, &Fault{Reason: FaultNotPresent, IOVA: iova}
		}
		if l == Levels-1 {
			leaf = e
		} else {
			table = mem.PFNOf(mem.PA(e & pteAddr))
		}
	}
	return mem.PA(leaf&pteAddr) | mem.PA(iova&mem.PageMask), permOf(leaf), nil
}

func permOf(pte uint64) pci.Dir {
	var d pci.Dir
	if pte&pteRead != 0 {
		d |= pci.DirToDevice
	}
	if pte&pteWrite != 0 {
		d |= pci.DirFromDevice
	}
	return d
}

// Destroy releases every table frame owned by the space. The space must not
// be used afterwards.
func (s *Space) Destroy() error {
	for _, f := range s.tables {
		if err := s.mm.FreeFrame(f); err != nil {
			return err
		}
	}
	s.tables = nil
	s.mapped = 0
	return nil
}
