package pagetable

import (
	"fmt"

	"riommu/internal/mem"
	"riommu/internal/pci"
)

// Context-entry bit layout (simplified VT-d): bit 0 = present, bits 12..51 =
// physical address of the attached domain's root table page.
const (
	ctxPresent = 1 << 0
	ctxAddr    = pteAddr
)

// Hierarchy models the per-IOMMU device lookup structures of Figure 2: the
// root table, indexed by the 8-bit bus number, whose entries point to context
// tables, indexed by the 8-bit device+function concatenation, whose entries
// point to the root of the attached address space's radix tree. Both tables
// live in simulated physical memory and are read by the hardware lookup.
type Hierarchy struct {
	mm   *mem.PhysMem
	root mem.PFN

	contextTables map[uint8]mem.PFN  // bus -> context table frame
	spaces        map[pci.BDF]*Space // OS-side handle to the attached spaces
	frames        []mem.PFN          // for teardown

	// last caches the most recent successful Lookup. The fast path still
	// re-reads both table entries from simulated memory and compares them to
	// the cached values — table corruption is detected exactly as before —
	// but it skips the map lookups and error-path formatting machinery.
	last struct {
		valid           bool
		bdf             pci.BDF
		rootPA, ctxPA   mem.PA // addresses of the two table entries
		rootVal, ctxVal uint64 // values they held when the cache was filled
		sp              *Space
	}
}

// NewHierarchy allocates an empty root table.
func NewHierarchy(mm *mem.PhysMem) (*Hierarchy, error) {
	root, err := mm.AllocFrame()
	if err != nil {
		return nil, fmt.Errorf("pagetable: allocating root table: %w", err)
	}
	return &Hierarchy{
		mm:            mm,
		root:          root,
		contextTables: make(map[uint8]mem.PFN),
		spaces:        make(map[pci.BDF]*Space),
		frames:        []mem.PFN{root},
	}, nil
}

// Attach binds an address space to a device, creating the bus's context
// table on demand.
func (h *Hierarchy) Attach(bdf pci.BDF, space *Space) error {
	h.last.valid = false // a reused root frame could alias the cached entry
	if _, dup := h.spaces[bdf]; dup {
		return fmt.Errorf("pagetable: device %s already attached", bdf)
	}
	ct, ok := h.contextTables[bdf.Bus()]
	if !ok {
		f, err := h.mm.AllocFrame()
		if err != nil {
			return fmt.Errorf("pagetable: allocating context table: %w", err)
		}
		ct = f
		h.contextTables[bdf.Bus()] = ct
		h.frames = append(h.frames, ct)
		rootEntry := h.root.PA() + mem.PA(int(bdf.Bus())*8)
		if err := h.mm.WriteU64(rootEntry, uint64(ct.PA())|ctxPresent); err != nil {
			return err
		}
	}
	ctxEntry := ct.PA() + mem.PA(int(bdf.DevFn())*8)
	if err := h.mm.WriteU64(ctxEntry, uint64(space.Root().PA())|ctxPresent); err != nil {
		return err
	}
	h.spaces[bdf] = space
	return nil
}

// Detach unbinds a device. The address space itself is not destroyed.
func (h *Hierarchy) Detach(bdf pci.BDF) error {
	h.last.valid = false
	if _, ok := h.spaces[bdf]; !ok {
		return fmt.Errorf("pagetable: device %s not attached", bdf)
	}
	ct := h.contextTables[bdf.Bus()]
	if err := h.mm.WriteU64(ct.PA()+mem.PA(int(bdf.DevFn())*8), 0); err != nil {
		return err
	}
	delete(h.spaces, bdf)
	return nil
}

// Lookup performs the hardware root/context walk: two dependent memory reads
// resolving the BDF to the attached space's radix root. It returns the
// OS-side Space handle after verifying the in-memory tables agree with it,
// so a corrupted table is detected rather than papered over.
func (h *Hierarchy) Lookup(bdf pci.BDF) (*Space, error) {
	if h.last.valid && h.last.bdf == bdf {
		// Re-read and verify both entries; ReadU64 is side-effect-free, so
		// on any mismatch or error falling through repeats the reads with
		// byte-identical outcomes.
		re, err1 := h.mm.ReadU64(h.last.rootPA)
		ce, err2 := h.mm.ReadU64(h.last.ctxPA)
		if err1 == nil && err2 == nil && re == h.last.rootVal && ce == h.last.ctxVal {
			return h.last.sp, nil
		}
		h.last.valid = false
	}
	re, err := h.mm.ReadU64(h.root.PA() + mem.PA(int(bdf.Bus())*8))
	if err != nil {
		return nil, err
	}
	if re&ctxPresent == 0 {
		return nil, fmt.Errorf("pagetable: no context table for bus %#x", bdf.Bus())
	}
	ct := mem.PA(re & ctxAddr)
	ce, err := h.mm.ReadU64(ct + mem.PA(int(bdf.DevFn())*8))
	if err != nil {
		return nil, err
	}
	if ce&ctxPresent == 0 {
		return nil, fmt.Errorf("pagetable: device %s not present in context table", bdf)
	}
	sp := h.spaces[bdf]
	if sp == nil || uint64(sp.Root().PA()) != ce&ctxAddr {
		return nil, fmt.Errorf("pagetable: context entry for %s does not match attached space", bdf)
	}
	h.last.valid = true
	h.last.bdf = bdf
	h.last.rootPA = h.root.PA() + mem.PA(int(bdf.Bus())*8)
	h.last.ctxPA = ct + mem.PA(int(bdf.DevFn())*8)
	h.last.rootVal, h.last.ctxVal = re, ce
	h.last.sp = sp
	return sp, nil
}

// Space returns the OS-side handle for an attached device, or nil.
func (h *Hierarchy) Space(bdf pci.BDF) *Space { return h.spaces[bdf] }

// Destroy frees the root and context table frames (not the attached spaces).
func (h *Hierarchy) Destroy() error {
	h.last.valid = false
	for _, f := range h.frames {
		if err := h.mm.FreeFrame(f); err != nil {
			return err
		}
	}
	h.frames = nil
	h.contextTables = nil
	h.spaces = nil
	return nil
}
